package hwtwbg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestExample51PhaseReport drives Example 5.1 (Figure 5.2: nested
// cycles {T1,T2,T3} and {T1,T2}, a victim salvaged at Step 3) through
// the public API and checks that the activation report decomposes the
// stop-the-world pause into the documented phases. Run with -v to see
// the report EXPERIMENTS.md E20 quotes.
func TestExample51PhaseReport(t *testing.T) {
	paperCosts := map[TxnID]float64{1: 6, 2: 4, 3: 1}
	m := Open(Options{Cost: func(id TxnID) float64 { return paperCosts[id] }})
	defer m.Close()
	ctx := context.Background()

	t1, t2, t3 := m.Begin(), m.Begin(), m.Begin()
	if err := t1.Lock(ctx, "R1", S); err != nil {
		t.Fatal(err)
	}
	if err := t2.Lock(ctx, "R2", S); err != nil {
		t.Fatal(err)
	}
	if err := t3.Lock(ctx, "R2", S); err != nil {
		t.Fatal(err)
	}
	errs := map[TxnID]chan error{
		t1.ID(): make(chan error, 1),
		t2.ID(): make(chan error, 1),
		t3.ID(): make(chan error, 1),
	}
	go func() { errs[t2.ID()] <- t2.Lock(ctx, "R1", X) }()
	waitBlocked(t, m, t2.ID())
	go func() { errs[t3.ID()] <- t3.Lock(ctx, "R1", S) }()
	waitBlocked(t, m, t3.ID())
	go func() { errs[t1.ID()] <- t1.Lock(ctx, "R2", X) }()
	waitBlocked(t, m, t1.ID())

	st := m.Detect()
	// The paper's resolution: T3 (cost 1) picked for the big cycle, T2
	// (cost 4) for {T1,T2}; Step 3 aborts T2 first, which unblocks T3 —
	// T3 is salvaged and only T2 dies.
	if st.Aborted != 1 || st.Salvaged != 1 {
		t.Fatalf("stats = %+v, want 1 abort and 1 salvage\n%s", st, m.Snapshot())
	}
	if err := <-errs[t2.ID()]; !errors.Is(err, ErrAborted) {
		t.Fatalf("t2 err = %v, want ErrAborted", err)
	}
	if err := <-errs[t3.ID()]; err != nil {
		t.Fatalf("salvaged t3 err = %v", err)
	}

	reports, total := m.Activations()
	if total != 1 || len(reports) != 1 {
		t.Fatalf("activations: %d/%d", len(reports), total)
	}
	rep := reports[0]
	if rep.Aborted != 1 || rep.Salvaged != 1 || rep.CyclesSearched != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Total < rep.Build+rep.Search+rep.Resolve {
		t.Fatalf("phase times exceed the total: %+v", rep)
	}
	t.Logf("activation report: %v", rep)
	t.Logf("phases: acquire=%v build=%v search=%v resolve=%v wake=%v total=%v",
		rep.Acquire, rep.Build, rep.Search, rep.Resolve, rep.Wake, rep.Total)

	// Unwind: t3 commits, granting t1's X on R2.
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-errs[t1.ID()]; err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardStressHistograms runs a contended multi-shard workload
// under the background detector and sanity-checks the aggregated
// histograms; with -v it prints the wait-latency and queue-depth
// distributions plus the cumulative phase breakdown (the E20 stress
// numbers).
func TestCrossShardStressHistograms(t *testing.T) {
	m := Open(Options{Shards: 8, Period: time.Millisecond, HistorySize: 256})
	defer m.Close()
	const (
		workers = 8
		rounds  = 200
		hotKeys = 6
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for i := 0; i < rounds; i++ {
				tx := m.Begin()
				// Two hot resources in random order: plenty of blocking
				// and a steady supply of real deadlocks for the detector.
				a := ResourceID(fmt.Sprintf("hot%d", rng.Intn(hotKeys)))
				b := ResourceID(fmt.Sprintf("hot%d", rng.Intn(hotKeys)))
				if err := tx.Lock(ctx, a, X); err != nil {
					tx.Abort()
					continue
				}
				// Yield while holding the first lock so workers interleave
				// even on a single hardware thread.
				runtime.Gosched()
				if err := tx.Lock(ctx, b, X); err != nil {
					tx.Abort()
					continue
				}
				tx.Commit()
			}
		}(int64(w + 1))
	}
	wg.Wait()

	snap := m.MetricsSnapshot()
	if snap.Total.Blocked == 0 {
		t.Fatal("stress produced no blocking")
	}
	if snap.Detector.Runs == 0 {
		t.Fatal("background detector never ran")
	}
	if snap.Total.WaitNs.Count == 0 || snap.Total.QueueDepth.Count != snap.Total.Blocked {
		t.Fatalf("histograms inconsistent: wait=%d queue=%d blocked=%d",
			snap.Total.WaitNs.Count, snap.Total.QueueDepth.Count, snap.Total.Blocked)
	}
	total := snap.Phases.Acquire + snap.Phases.Build + snap.Phases.Search +
		snap.Phases.Resolve + snap.Phases.Wake
	if snap.Detector.Runs > 0 && total <= 0 {
		t.Fatalf("phase totals empty after %d runs", snap.Detector.Runs)
	}
	t.Logf("detector: %+v", snap.Detector)
	t.Logf("phase totals over %d runs: acquire=%v build=%v search=%v resolve=%v wake=%v",
		snap.Detector.Runs, snap.Phases.Acquire, snap.Phases.Build,
		snap.Phases.Search, snap.Phases.Resolve, snap.Phases.Wake)
	t.Logf("lock wait (ns):\n%v", snap.Total.WaitNs)
	t.Logf("queue depth at enqueue:\n%v", snap.Total.QueueDepth)
}
