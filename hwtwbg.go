// Package hwtwbg is a deadlock-detecting lock manager for Go programs,
// implementing Young-Chul Park's periodic deadlock detection and
// resolution algorithm over the Holder/Waiter Transaction Waited-By
// Graph (H/W-TWBG, Univ. of Ulsan Journal of Engineering Research 1991 /
// ICDE 1992 line of work).
//
// The manager provides strict two-phase locking with the five multiple-
// granularity lock modes (IS, IX, S, SIX, X), first-in-first-out
// scheduling with lock conversions, and a background detector that
// periodically finds every deadlock and resolves each one either by
// aborting a minimum-cost victim (TDR-1) or — uniquely to this
// algorithm — by repositioning queued requests so that nobody at all is
// aborted (TDR-2).
//
// The concurrent facade is sharded: resources are hash-striped over S
// independent lock tables (Options.Shards, default derived from
// GOMAXPROCS), each with its own mutex, so transactions touching
// different resources proceed in parallel on different cores. The
// periodic detector briefly stops the world — it takes every shard lock,
// runs the paper's algorithm over the merged table, applies TDR-1/TDR-2
// resolutions back into the owning shards, and releases — so cross-shard
// deadlocks are found and resolved exactly as a single-table manager
// would, at a cost paid once per period rather than on every operation.
//
// Typical use:
//
//	lm := hwtwbg.Open(hwtwbg.Options{Period: 50 * time.Millisecond})
//	defer lm.Close()
//
//	t := lm.Begin()
//	if err := t.Lock(ctx, "accounts/42", hwtwbg.X); err != nil {
//	    // hwtwbg.ErrAborted: this transaction was chosen as a deadlock
//	    // victim; roll back and retry.
//	}
//	// ... do the work ...
//	t.Commit()
//
// Lock blocks until the lock is granted, the context is cancelled, or
// the transaction is sacrificed to break a deadlock. All methods are
// safe for concurrent use.
package hwtwbg

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hwtwbg/internal/audit"
	"hwtwbg/internal/detect"
	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
	"hwtwbg/journal"
)

// AuditReport is one activation's runtime-invariant audit outcome; see
// Options.Audit. AuditViolation is one broken invariant within it.
type (
	AuditReport    = audit.Report
	AuditViolation = audit.Violation
)

// auditReportCap bounds the audit-report ring kept by AuditReports.
const auditReportCap = 256

// Mode is a lock mode; see the Comp and Conv tables of the MGL protocol.
type Mode = lock.Mode

// The six lock modes.
const (
	NL  = lock.NL
	IS  = lock.IS
	IX  = lock.IX
	SIX = lock.SIX
	S   = lock.S
	X   = lock.X
)

// Comp reports whether two lock modes are compatible (Table 1 of the
// paper).
func Comp(a, b Mode) bool { return lock.Comp(a, b) }

// Conv returns the combined mode after converting a granted lock to
// additionally cover a requested mode (Table 2 of the paper).
func Conv(granted, requested Mode) Mode { return lock.Conv(granted, requested) }

// ParseMode converts "IS", "IX", "S", "SIX", "X" or "NL" to a Mode.
func ParseMode(s string) (Mode, error) { return lock.Parse(s) }

// TxnID identifies a transaction.
type TxnID = table.TxnID

// ResourceID identifies a lockable resource.
type ResourceID = table.ResourceID

// Errors returned by the manager.
var (
	// ErrAborted: the transaction was aborted — either chosen as a
	// deadlock victim or cancelled mid-wait — and holds nothing.
	ErrAborted = errors.New("hwtwbg: transaction aborted")
	// ErrDone: the transaction already committed or aborted.
	ErrDone = errors.New("hwtwbg: transaction already finished")
	// ErrClosed: the manager has been closed.
	ErrClosed = errors.New("hwtwbg: manager closed")
)

// Detector activation strategies; see Options.Detector.
const (
	// DetectorSnapshot (the default) copies each shard out under its own
	// mutex — briefly, one shard at a time — and runs the paper's
	// algorithm over the merged snapshot with no shard locks held.
	// Because shards are copied at different instants the view can be
	// torn, so every resolution is re-validated against the live shards
	// (validate-then-act) before it is applied; candidates whose cycle
	// evidence no longer holds are dropped and counted in
	// Stats.FalseCycles. The hot grant path is never stalled for longer
	// than one shard's copy-out.
	DetectorSnapshot = "snapshot"
	// DetectorSTW freezes every shard (all shard locks in index order)
	// for the whole activation — the PR 1 behavior, kept for
	// differential testing and as a fallback. Grant-path stalls are the
	// full activation long, but no validation is ever needed.
	DetectorSTW = "stw"
)

// IncrementalMode selects whether the snapshot detector reuses clean
// shards' copies between activations; see Options.IncrementalSnapshot.
type IncrementalMode int8

const (
	// IncrementalDefault (the zero value) selects the default, which is
	// incremental snapshots on.
	IncrementalDefault IncrementalMode = iota
	// IncrementalOn enables incremental snapshots explicitly: a shard
	// whose mutation epoch is unchanged since the detector's last copy
	// is not recopied — its region of the snapshot arena is reused —
	// and the dirty shards are copied concurrently across a bounded
	// worker pool. Per-activation copy cost becomes proportional to
	// churn rather than table size.
	IncrementalOn
	// IncrementalOff forces a full serial copy-out every activation,
	// kept selectable so incremental and full modes can be A/B compared
	// in one process. Detection decisions are identical either way.
	IncrementalOff
)

// Background-detector scheduling strategies; see Options.Scheduling.
const (
	// SchedulingFixed (also selected by "") re-runs the detector every
	// Options.Period, unconditionally.
	SchedulingFixed = "fixed"
	// SchedulingAdaptive is the halve-on-deadlock / double-on-idle
	// heuristic: the period is halved after an activation that found a
	// deadlock (down to Period/8, floored at 100µs) and doubled after an
	// idle one (up to MaxPeriod).
	SchedulingAdaptive = "adaptive"
	// SchedulingCostModel derives the period from the online cost model
	// (Ling/Chen/Chiang): T* = sqrt(2·D̂/(λ̂·ρ̂)) from the measured
	// deadlock formation rate, detection cost and deadlock persistence
	// cost, clamped to [Period/8 (≥100µs), MaxPeriod]. See CostModel.
	SchedulingCostModel = "costmodel"
)

// Options configures a Manager.
type Options struct {
	// Period is the detection interval. Zero disables the background
	// detector; call Detect manually.
	Period time.Duration
	// Detector selects the activation strategy: DetectorSnapshot
	// (default, also chosen by "") or DetectorSTW.
	Detector string
	// Scheduling selects how the background detector's period evolves
	// between activations: SchedulingFixed (default, also chosen by ""),
	// SchedulingAdaptive (the halve/double heuristic) or
	// SchedulingCostModel (the Ling/Chen/Chiang cost-minimizing period,
	// derived online; see CostModel). It has no effect when Period is
	// zero. CurrentPeriod reports the live value.
	Scheduling string
	// AdaptivePeriod is the legacy spelling of Scheduling:
	// SchedulingAdaptive, honored when Scheduling is empty.
	AdaptivePeriod bool
	// MaxPeriod caps the adaptive/cost-model period (default 8×Period).
	MaxPeriod time.Duration
	// Shards is the number of lock-table stripes, rounded up to a power
	// of two. Zero derives it from runtime.GOMAXPROCS(0). One shard
	// reproduces the serial facade (every resource behind one mutex).
	Shards int
	// IncrementalSnapshot controls whether the snapshot detector skips
	// recopying shards whose mutation epoch is unchanged since its last
	// activation, reusing their region of the snapshot arena and copying
	// only the dirty shards (concurrently, when there are enough). The
	// default (zero value) is on; IncrementalOff restores the full
	// serial copy-out for A/B comparison. Ignored under DetectorSTW.
	IncrementalSnapshot IncrementalMode
	// Cost prices victim candidates. Nil selects the built-in metric
	// (locks held + 1), so younger transactions die first. Cost is
	// called with the world stopped (every shard lock held) and must
	// not call back into the Manager.
	Cost func(TxnID) float64
	// DisableTDR2 turns off resolution-by-repositioning; every deadlock
	// is then resolved by aborting a victim.
	DisableTDR2 bool
	// OnVictim, if non-nil, is called (outside all manager locks) with
	// the id of every transaction aborted by the detector.
	OnVictim func(TxnID)
	// Tracer, if non-nil, receives lifecycle hooks: requests, blocks,
	// grants, aborts and detector activations. Hooks fire outside the
	// shard mutexes (the OnVictim discipline); see Tracer.
	Tracer Tracer
	// HistorySize bounds both the deadlock-event history returned by
	// History and the activation-report ring returned by Activations
	// (default 128; negative disables recording).
	HistorySize int
	// JournalSize is the flight recorder's capacity in records per ring
	// (one lock-free ring per shard plus a control ring for lifecycle and
	// detector events), rounded up to a power of two. Zero selects the
	// default (4096 records per ring); negative disables the journal
	// entirely. The recorder overwrites oldest-first and its hot-path
	// writes never allocate or block, so leaving it on costs a few dozen
	// nanoseconds per lock event; see Journal.
	JournalSize int
	// Audit arms the runtime invariant auditor: after every detector
	// activation the paper's proved properties are re-verified from
	// scratch against the tables and the resolutions the detector
	// reported (see internal/audit). The auditor only exists in builds
	// tagged `invariants` — in a plain build this field is accepted but
	// inert — and it is expensive (it re-runs the reachability oracle per
	// activation), so it is meant for tests, never production.
	Audit bool

	// Test hooks (package-internal; zero values select production
	// behavior). schedTick replaces the background loop's timer — the
	// loop runs one activation per value received, so tests drive the
	// scheduler without wall-clock sleeps. schedNotify, when non-nil,
	// receives the period chosen after each background activation
	// (non-blocking send; size the channel for the ticks driven). now
	// replaces the cost model's clock.
	schedTick   <-chan time.Time
	schedNotify chan<- time.Duration
	now         func() time.Time
}

// Stats accumulates detector activity over the manager's lifetime.
type Stats struct {
	Runs           int // detector activations
	CyclesSearched int // cycles found and resolved (the paper's c', summed)
	Aborted        int // victims aborted
	Repositioned   int // deadlocks resolved without any abort (TDR-2)
	Salvaged       int // victims rescued at Step 3 because an earlier abort unblocked them

	// FalseCycles counts snapshot-detector resolutions dropped at
	// validation because the cycle seen in the (possibly torn) snapshot
	// no longer held against the live shards; nothing was aborted or
	// repositioned for them. Always zero under DetectorSTW.
	FalseCycles int
	// Validations counts validate-then-act attempts by the snapshot
	// detector (applied + dropped). Always zero under DetectorSTW.
	Validations int

	// ShardsCopied and ShardsSkipped count, across snapshot-detector
	// activations, the shards recopied into the snapshot versus reused
	// because their mutation epoch was unchanged (see
	// Options.IncrementalSnapshot). With incremental snapshots off every
	// activation copies all shards; both stay zero under DetectorSTW.
	ShardsCopied  int
	ShardsSkipped int

	// STWTotal/STWLast/STWMax record the worst stall a detector
	// activation imposes on the grant path: under DetectorSTW the full
	// stop-the-world pause; under DetectorSnapshot the longest time any
	// single shard mutex was held for copy-out (the snapshot detector
	// never stops the world). Total accumulates across activations, Last
	// and Max are the most recent and worst single-activation values; in
	// the Stats returned by one Detect call all three are that
	// activation's stall.
	STWTotal time.Duration
	STWLast  time.Duration
	STWMax   time.Duration
}

// ShardStat describes one shard's lifetime activity.
type ShardStat struct {
	Grants        uint64 // lock requests granted by this shard (immediate and hand-off)
	MutexAcquires uint64 // hot-path shard-mutex rounds (lock/commit/abort/wake re-checks)
	FlatCombined  uint64 // published requests applied by a combiner's drain
}

// ActivationReport decomposes one detector activation: when it ran,
// what the stop-the-world pause was spent on, and what the algorithm
// saw and did. The most recent reports are kept in a ring (see
// Activations) alongside the deadlock-event history, and each report is
// handed to Options.Tracer's OnActivation.
//
// Under DetectorSTW, Total ≈ Acquire + Build + Search + Resolve + Wake:
// Acquire is the cost of taking every shard lock in index order (how
// long the detector waited for in-flight operations to drain),
// Build/Search/Resolve are the paper's Steps 1–3 (TST construction; the
// O(n + e·(c′+1)) directed walk including TDR-2 queue repositionings;
// abort confirmation and queue rescheduling), and Wake covers applying
// the wakes and releasing the shard locks.
//
// Under DetectorSnapshot, Total ≈ Acquire + Copy + Build + Search +
// Resolve + Validate: Acquire is the summed wait to take each shard
// mutex one at a time, Copy the summed per-shard copy-out into the
// snapshot arena (MaxShardHold is the worst single shard's hold — the
// only stall the activation imposes on the grant path), Build/Search/
// Resolve run over the snapshot with no locks held, and Validate covers
// re-verifying every resolution against the live shards and applying
// the survivors (including their wakeups; Wake stays zero).
//
// The json tags are the activation wire vocabulary; the wireschema
// analyzer checks the PhaseTotals accumulator's subset against them.
//
//hwlint:wire emit actphase
type ActivationReport struct {
	Time time.Time `json:"time"`
	Seq  int       `json:"seq"` // 1-based activation number

	Acquire  time.Duration `json:"acquire_ns"`
	Copy     time.Duration `json:"copy_ns"` // snapshot only: summed copy-out
	Build    time.Duration `json:"build_ns"`
	Search   time.Duration `json:"search_ns"`
	Resolve  time.Duration `json:"resolve_ns"`
	Validate time.Duration `json:"validate_ns"` // snapshot only: validate-then-act
	Wake     time.Duration `json:"wake_ns"`
	Total    time.Duration `json:"total_ns"` // the full activation (STW: the whole pause)

	// MaxShardHold is the longest any single shard mutex was held by
	// this activation: the copy-out hold under DetectorSnapshot, the
	// whole pause under DetectorSTW.
	MaxShardHold time.Duration `json:"max_shard_hold_ns"`

	Vertices       int `json:"vertices"`    // the graph's n
	Edges          int `json:"edges"`       // the graph's e
	EdgeVisits     int `json:"edge_visits"` // Step 2 cursor operations
	CyclesSearched int `json:"cycles"`      // the paper's c'
	Aborted        int `json:"aborted"`
	Repositioned   int `json:"repositioned"`
	Salvaged       int `json:"salvaged"`
	FalseCycles    int `json:"false_cycles"` // snapshot only: resolutions dropped at validation
	Validations    int `json:"validations"`  // snapshot only: validate-then-act attempts (applied + dropped)

	// ShardsCopied/ShardsSkipped decompose the snapshot copy phase:
	// shards recopied because their mutation epoch changed (or because
	// incremental snapshots are off) versus shards whose previous copy
	// was reused as-is. Both zero under DetectorSTW.
	ShardsCopied  int `json:"shards_copied"`
	ShardsSkipped int `json:"shards_skipped"`
}

// String renders a one-line summary of the activation.
func (r ActivationReport) String() string {
	return fmt.Sprintf("activation %d: total=%v (acquire=%v copy=%v build=%v search=%v resolve=%v validate=%v wake=%v hold=%v) shards=%d/%d n=%d e=%d c'=%d aborted=%d repositioned=%d salvaged=%d false=%d validations=%d",
		r.Seq, r.Total, r.Acquire, r.Copy, r.Build, r.Search, r.Resolve, r.Validate, r.Wake, r.MaxShardHold,
		r.ShardsCopied, r.ShardsCopied+r.ShardsSkipped,
		r.Vertices, r.Edges, r.CyclesSearched, r.Aborted, r.Repositioned, r.Salvaged, r.FalseCycles, r.Validations)
}

// Manager is a goroutine-safe lock manager with a sharded lock table
// and periodic deadlock detection. Create one with Open.
type Manager struct {
	opts   Options
	shards []*shard
	mask   uint32 // len(shards)-1; shard count is a power of two
	mt     *multiTable
	det    *detect.Detector

	// snap is the reusable snapshot arena and snapDet the detector bound
	// to its merged view; both are touched only under detMu.
	// incremental selects dirty-shard-only copy-out (see
	// Options.IncrementalSnapshot); holdSample enables per-shard timing
	// of the copy phase (off when no ActivationReport consumer exists);
	// dirtyScratch is the reusable dirty-shard index list.
	snap         *table.Snapshot
	snapDet      *detect.Detector
	incremental  bool
	holdSample   bool
	dirtyScratch []int

	// detMu serializes detector activations (background and manual)
	// and Close; it is always acquired before any shard lock.
	detMu sync.Mutex

	// curPeriod is the live detection interval in nanoseconds (equals
	// Options.Period unless Scheduling is tuning it).
	curPeriod atomic.Int64

	// cost is the online detection-scheduling cost model; always
	// maintained (it is a handful of mutexed float updates per
	// activation) so its state is observable even when Scheduling is not
	// "costmodel". schedMin/schedMax are the period bounds every
	// scheduling strategy clamps to.
	cost               *costModel
	schedMin, schedMax time.Duration

	// testHookAfterCopy, if set, runs between the copy-out and the
	// algorithm, with no locks held — tests use it to mutate the live
	// tables and force a torn snapshot.
	testHookAfterCopy func()

	// jr is the flight recorder: one lock-free ring per shard plus a
	// control ring (Options.JournalSize). Nil when disabled.
	jr *journal.Journal

	// mu guards stats, phases, the history/activation/postmortem rings
	// and the audit records only.
	mu           sync.Mutex
	stats        Stats
	phases       PhaseTotals
	history      *historyRing
	activations  *ring[ActivationReport]
	postmortems  *ring[Postmortem]
	auditRuns    int
	auditReports []audit.Report

	closed atomic.Bool
	nextID atomic.Int64
	// condemned holds the ids of transactions marked for an externally-
	// initiated abort (deadlock victims, Close) that the owning
	// goroutine has not yet observed; entries are consumed on
	// observation, so the map is empty in steady state and the hot
	// path's check of it is a lock-free load that almost always misses.
	condemned sync.Map

	stop chan struct{}
	done chan struct{}
}

// Open creates a Manager and, when opts.Period > 0, starts its
// background detector.
func Open(opts Options) *Manager {
	n := opts.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	n = ceilPow2(n)
	m := &Manager{
		opts:   opts,
		shards: make([]*shard, n),
		mask:   uint32(n - 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for i := range m.shards {
		m.shards[i] = &shard{tb: table.New(), waiters: make(map[TxnID]chan struct{}), met: &shardMetrics{}}
	}
	if opts.JournalSize >= 0 {
		per := opts.JournalSize
		if per == 0 {
			per = 4096
		}
		m.jr = journal.New(n, per)
		for i := range m.shards {
			m.shards[i].jr = m.jr.Ring(i)
		}
	}
	m.mt = &multiTable{shards: m.shards}
	size := opts.HistorySize
	if size == 0 {
		size = 128
	}
	if size < 0 {
		size = 0
	}
	m.history = newHistoryRing(size)
	m.activations = newRing[ActivationReport](size)
	m.postmortems = newRing[Postmortem](size)
	cost := opts.Cost
	if cost == nil {
		cost = func(id TxnID) float64 { return float64(m.mt.heldCount(id) + 1) }
	}
	m.det = detect.New(m.mt, detect.Config{Cost: cost, DisableTDR2: opts.DisableTDR2})
	m.snap = table.NewSnapshot()
	snapCost := opts.Cost
	if snapCost == nil {
		// The default metric prices a candidate from the snapshot itself,
		// since the live shards are unlocked while the algorithm runs.
		snapCost = func(id TxnID) float64 { return float64(m.snap.Table().HeldCount(id) + 1) }
	}
	// The detector runs over the snapshot's view, whose resource
	// iteration is restricted to resources that can contribute graph
	// edges (exactly output-preserving; see table.SnapView).
	m.snapDet = detect.New(m.snap.View(), detect.Config{Cost: snapCost, DisableTDR2: opts.DisableTDR2})
	m.incremental = opts.IncrementalSnapshot != IncrementalOff
	// Per-shard copy timing exists for ActivationReport consumers (the
	// history ring and tracers); with both disabled, the copy phase is
	// timed as one block instead of per shard.
	m.holdSample = size > 0 || opts.Tracer != nil
	m.cost = newCostModel(opts.now)
	m.schedMin, m.schedMax = schedBounds(opts.Period, opts.MaxPeriod)
	m.curPeriod.Store(int64(opts.Period))
	if opts.Period > 0 {
		go m.loop(opts.Period)
	} else {
		close(m.done)
	}
	return m
}

// scheduling resolves Options.Scheduling, honoring the legacy
// AdaptivePeriod flag; unknown values fall back to fixed (mirroring how
// an unknown Options.Detector falls back to snapshot).
func (m *Manager) scheduling() string {
	switch m.opts.Scheduling {
	case SchedulingAdaptive, SchedulingCostModel:
		return m.opts.Scheduling
	case "", SchedulingFixed:
		if m.opts.Scheduling == "" && m.opts.AdaptivePeriod {
			return SchedulingAdaptive
		}
	}
	return SchedulingFixed
}

// schedBounds derives the period clamp every self-tuning scheduler
// uses: min is period/8 floored at 100µs, max is MaxPeriod (default
// 8×period; with no base period at all, 10s — the model is then
// advisory only, since no background loop runs).
func schedBounds(period, maxPeriod time.Duration) (min, max time.Duration) {
	min = period / 8
	if min < 100*time.Microsecond {
		min = 100 * time.Microsecond
	}
	max = maxPeriod
	if max <= 0 {
		if period > 0 {
			max = 8 * period
		} else {
			max = 10 * time.Second
		}
	}
	if max < min {
		max = min
	}
	return min, max
}

// nextAdaptivePeriod is the halve-on-deadlock / double-on-idle step,
// kept pure so the schedule is unit-testable without a clock.
func nextAdaptivePeriod(cur time.Duration, foundDeadlock bool, min, max time.Duration) time.Duration {
	if foundDeadlock {
		cur /= 2
		if cur < min {
			cur = min
		}
		return cur
	}
	cur *= 2
	if cur > max {
		cur = max
	}
	return cur
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (m *Manager) loop(period time.Duration) {
	defer close(m.done)
	sched := m.scheduling()
	cur := period
	var timer *time.Timer
	tick := m.opts.schedTick
	if tick == nil {
		timer = time.NewTimer(cur)
		defer timer.Stop()
		tick = timer.C
	}
	for {
		select {
		case <-m.stop:
			return
		case <-tick:
			st := m.Detect()
			switch sched {
			case SchedulingAdaptive:
				// The frequency/cost heuristic: finding a deadlock suggests
				// the workload is conflict-heavy, so check sooner; an idle
				// pass suggests the opposite, so back off.
				cur = nextAdaptivePeriod(cur, st.CyclesSearched > 0, m.schedMin, m.schedMax)
			case SchedulingCostModel:
				cur = m.cost.period(cur, m.schedMin, m.schedMax)
			}
			m.curPeriod.Store(int64(cur))
			if n := m.opts.schedNotify; n != nil {
				select {
				case n <- cur:
				default:
				}
			}
			if timer != nil {
				timer.Reset(cur)
			}
		}
	}
}

// CurrentPeriod returns the live detection interval: Options.Period, or
// the self-tuned value when Scheduling is adaptive or costmodel. Zero
// means the background detector is disabled.
func (m *Manager) CurrentPeriod() time.Duration {
	return time.Duration(m.curPeriod.Load())
}

// CostModel returns the online detection-scheduling cost model's state:
// the estimated deadlock formation rate, measured detection and
// persistence costs, and the cost-minimizing period they imply. The
// model is always maintained; it only *drives* the detector under
// Options.Scheduling "costmodel" (otherwise the reported period is what
// the model would choose).
func (m *Manager) CostModel() CostModelState {
	cur := m.CurrentPeriod()
	if cur <= 0 {
		cur = m.opts.Period
	}
	return m.cost.state(cur, m.schedMin, m.schedMax)
}

// Close stops the background detector and aborts every live
// transaction. Lock calls in flight return ErrAborted (or ErrClosed).
func (m *Manager) Close() {
	m.detMu.Lock()
	if m.closed.Load() {
		m.detMu.Unlock()
		return
	}
	m.closed.Store(true)
	close(m.stop)
	m.stopTheWorld()
	for _, s := range m.shards {
		for _, id := range s.tb.Txns() {
			s.tb.Abort(id)
			m.condemned.Store(id, struct{}{})
		}
		s.epoch.bump()
		s.wakeAll()
	}
	m.resumeTheWorld()
	m.detMu.Unlock()
	<-m.done
}

// Detect runs one activation of the periodic detection-resolution
// algorithm immediately and returns what it did. Under DetectorSTW the
// activation stops the world: it takes every shard lock in index order,
// runs the paper's algorithm over the merged table, and applies the
// resolutions. Under DetectorSnapshot (the default) it copies each
// shard out one at a time, runs the algorithm over the merged snapshot
// with no locks held, and applies each resolution only after
// re-validating its cycle against the live shards. Either way, a
// deadlock whose cycle spans resources in different shards is handled
// identically to one confined to a single shard.
func (m *Manager) Detect() Stats {
	m.detMu.Lock()
	defer m.detMu.Unlock()
	if m.closed.Load() {
		return Stats{}
	}
	if m.opts.Detector == DetectorSTW {
		return m.detectSTW()
	}
	return m.detectSnapshot()
}

// detectSTW is the stop-the-world activation. Caller holds detMu.
func (m *Manager) detectSTW() Stats {
	start := time.Now()
	m.stopTheWorld()
	acquired := time.Now()
	pre := m.auditPreSTW()
	res := m.det.Run()
	resolved := time.Now()
	for _, v := range res.Aborted {
		m.condemned.Store(v, struct{}{})
		for _, s := range m.shards {
			s.wake(v)
		}
	}
	for _, g := range res.Granted {
		m.shardFor(g.Resource).wake(g.Txn)
	}
	m.auditPostSTW(pre, res)
	m.resumeTheWorld()
	now := time.Now()
	pause := now.Sub(start)

	rep := ActivationReport{
		Time:           now,
		Acquire:        acquired.Sub(start),
		Build:          res.BuildTime,
		Search:         res.SearchTime,
		Resolve:        res.ResolveTime,
		Wake:           now.Sub(resolved),
		Total:          pause,
		MaxShardHold:   pause,
		Vertices:       res.Vertices,
		Edges:          res.Edges,
		EdgeVisits:     res.EdgeVisits,
		CyclesSearched: res.CyclesSearched,
		Aborted:        len(res.Aborted),
		Repositioned:   len(res.Repositioned),
		Salvaged:       len(res.Salvaged),
	}
	events := make([]Event, 0, len(res.Aborted)+len(res.Repositioned)+len(res.Salvaged))
	for _, v := range res.Aborted {
		events = append(events, Event{Time: now, Kind: EventVictim, Txn: v})
	}
	for _, rp := range res.Repositioned {
		events = append(events, Event{Time: now, Kind: EventReposition, Txn: rp.Junction, Resource: rp.Resource})
	}
	for _, sv := range res.Salvaged {
		events = append(events, Event{Time: now, Kind: EventSalvage, Txn: sv})
	}
	return m.recordActivation(rep, pause, 0, res.Aborted, events, res.Resolutions)
}

// recordActivation folds one finished activation into the cumulative
// stats, phase totals and rings, then — outside all locks — journals
// the activation (with the cycle-edge evidence of every resolution it
// acted on), generates the deadlock postmortems, and fires the OnVictim
// and tracer hooks. stall is the worst grant-path stall the activation
// caused (the whole pause for STW, the longest single-shard copy hold
// for snapshot); it feeds the Stats.STW* gauges. resolutions carries
// the cycles the activation resolved (salvaged and, for STW, all of
// them; snapshot callers pass only the validated survivors). The
// returned Stats describes this activation alone.
func (m *Manager) recordActivation(rep ActivationReport, stall time.Duration, validations int, victims []TxnID, events []Event, resolutions []detect.Resolution) Stats {
	rep.Validations = validations
	activation := Stats{
		Runs:           1,
		CyclesSearched: rep.CyclesSearched,
		Aborted:        rep.Aborted,
		Repositioned:   rep.Repositioned,
		Salvaged:       rep.Salvaged,
		FalseCycles:    rep.FalseCycles,
		Validations:    validations,
		ShardsCopied:   rep.ShardsCopied,
		ShardsSkipped:  rep.ShardsSkipped,
		STWTotal:       stall,
		STWLast:        stall,
		STWMax:         stall,
	}
	m.mu.Lock()
	m.stats.Runs++
	m.stats.CyclesSearched += rep.CyclesSearched
	m.stats.Aborted += rep.Aborted
	m.stats.Repositioned += rep.Repositioned
	m.stats.Salvaged += rep.Salvaged
	m.stats.FalseCycles += rep.FalseCycles
	m.stats.Validations += validations
	m.stats.ShardsCopied += rep.ShardsCopied
	m.stats.ShardsSkipped += rep.ShardsSkipped
	m.stats.STWTotal += stall
	m.stats.STWLast = stall
	if stall > m.stats.STWMax {
		m.stats.STWMax = stall
	}
	rep.Seq = m.stats.Runs
	m.phases.add(rep)
	m.activations.add(rep)
	for _, ev := range events {
		m.history.add(ev)
	}
	m.mu.Unlock()

	m.cost.observeActivation(rep)
	m.journalActivation(rep, events, resolutions)
	m.generatePostmortems(rep, resolutions)

	if cb := m.opts.OnVictim; cb != nil {
		for _, v := range victims {
			cb(v)
		}
	}
	if tr := m.opts.Tracer; tr != nil {
		tr.OnActivation(rep)
	}
	return activation
}

// journalActivation writes one activation's detector events into the
// control ring: the activation span, each resolution action, and the
// cycle-edge evidence of every cycle acted on (the records a postmortem
// is reconstructed from). Called outside all manager locks.
func (m *Manager) journalActivation(rep ActivationReport, events []Event, resolutions []detect.Resolution) {
	if m.jr == nil {
		return
	}
	ctl := m.jr.Control()
	ts := rep.Time.UnixNano()
	rec := journal.Record{TS: ts, Txn: int64(rep.Seq), Arg: uint64(rep.Total), Kind: journal.KindDetect, Aux: uint32(rep.CyclesSearched)}
	ctl.Emit(&rec)
	if len(m.shards) > 1 && rep.ShardsCopied+rep.ShardsSkipped > 0 {
		cr := journal.Record{TS: ts, Txn: int64(rep.Seq), Arg: uint64(rep.ShardsCopied), Kind: journal.KindDetectCopy, Aux: uint32(rep.ShardsSkipped)}
		ctl.Emit(&cr)
	}
	for _, ev := range events {
		r := journal.Record{TS: ts, Txn: int64(ev.Txn), Aux: uint32(rep.Seq)}
		switch ev.Kind {
		case EventVictim:
			r.Kind = journal.KindVictim
		case EventReposition:
			r.Kind = journal.KindReposition
			r.SetResource(string(ev.Resource))
		case EventSalvage:
			r.Kind = journal.KindSalvage
		}
		ctl.Emit(&r)
	}
	for i := range resolutions {
		res := &resolutions[i]
		if res.Salvaged {
			continue
		}
		for _, e := range res.Cycle {
			r := journal.Record{TS: ts, Txn: int64(e.From), Arg: uint64(e.To), Kind: journal.KindCycleEdge, Mode: uint8(e.Mode), Aux: uint32(rep.Seq)}
			r.SetResource(string(e.Resource))
			ctl.Emit(&r)
		}
	}
}

// Journal returns the manager's flight recorder, or nil when it was
// disabled (Options.JournalSize < 0). Snapshots taken from it are safe
// at any rate — readers never block the hot path.
func (m *Manager) Journal() *journal.Journal { return m.jr }

// Stats returns the cumulative detector statistics.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// AuditRuns reports how many detector activations the runtime invariant
// auditor has checked. It stays zero unless the binary was built with
// -tags=invariants and the manager was opened with Options.Audit.
func (m *Manager) AuditRuns() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.auditRuns
}

// AuditReports returns the invariant auditor's per-activation reports,
// oldest first (the most recent 256 are kept; clean reports included so
// tests can assert the auditor actually ran). Empty unless built with
// -tags=invariants and opened with Options.Audit.
func (m *Manager) AuditReports() []AuditReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]AuditReport(nil), m.auditReports...)
}

// ShardStats returns per-shard activity counters, one entry per shard
// in shard-index order. The counters are atomic, so no shard lock is
// taken; MetricsSnapshot returns the full per-shard breakdown.
func (m *Manager) ShardStats() []ShardStat {
	out := make([]ShardStat, len(m.shards))
	for i, s := range m.shards {
		out[i] = ShardStat{
			Grants:        s.met.grants.Load(),
			MutexAcquires: s.met.mutexAcquires.Load(),
			FlatCombined:  s.met.flatCombined.Load(),
		}
	}
	return out
}

// NumShards returns the shard count the manager was opened with (after
// rounding up to a power of two).
func (m *Manager) NumShards() int { return len(m.shards) }

// Snapshot returns the lock table rendered in the paper's notation, one
// resource per line, from a consistent stop-the-world view.
func (m *Manager) Snapshot() string {
	m.stopTheWorld()
	defer m.resumeTheWorld()
	return m.mt.String()
}

// DOT renders the current H/W-TWBG in Graphviz format.
func (m *Manager) DOT() string {
	m.stopTheWorld()
	defer m.resumeTheWorld()
	return twbg.Build(m.mt).DOT()
}

// Blocked reports whether transaction id is currently waiting for a
// lock (diagnostic).
func (m *Manager) Blocked(id TxnID) bool {
	for _, s := range m.shards {
		s.mu.Lock()
		b := s.tb.Blocked(id)
		s.mu.Unlock()
		if b {
			return true
		}
	}
	return false
}

// Deadlocked reports whether the current state contains a deadlock
// (diagnostic; the background detector clears them every period).
func (m *Manager) Deadlocked() bool {
	m.stopTheWorld()
	defer m.resumeTheWorld()
	return twbg.Build(m.mt).HasCycle()
}

func (m *Manager) String() string {
	return fmt.Sprintf("hwtwbg.Manager(period=%v, shards=%d)", m.opts.Period, len(m.shards))
}
