// Package hwtwbg is a deadlock-detecting lock manager for Go programs,
// implementing Young-Chul Park's periodic deadlock detection and
// resolution algorithm over the Holder/Waiter Transaction Waited-By
// Graph (H/W-TWBG, Univ. of Ulsan Journal of Engineering Research 1991 /
// ICDE 1992 line of work).
//
// The manager provides strict two-phase locking with the five multiple-
// granularity lock modes (IS, IX, S, SIX, X), first-in-first-out
// scheduling with lock conversions, and a background detector that
// periodically finds every deadlock and resolves each one either by
// aborting a minimum-cost victim (TDR-1) or — uniquely to this
// algorithm — by repositioning queued requests so that nobody at all is
// aborted (TDR-2).
//
// Typical use:
//
//	lm := hwtwbg.Open(hwtwbg.Options{Period: 50 * time.Millisecond})
//	defer lm.Close()
//
//	t := lm.Begin()
//	if err := t.Lock(ctx, "accounts/42", hwtwbg.X); err != nil {
//	    // hwtwbg.ErrAborted: this transaction was chosen as a deadlock
//	    // victim; roll back and retry.
//	}
//	// ... do the work ...
//	t.Commit()
//
// Lock blocks until the lock is granted, the context is cancelled, or
// the transaction is sacrificed to break a deadlock. All methods are
// safe for concurrent use.
package hwtwbg

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

// Mode is a lock mode; see the Comp and Conv tables of the MGL protocol.
type Mode = lock.Mode

// The six lock modes.
const (
	NL  = lock.NL
	IS  = lock.IS
	IX  = lock.IX
	SIX = lock.SIX
	S   = lock.S
	X   = lock.X
)

// Comp reports whether two lock modes are compatible (Table 1 of the
// paper).
func Comp(a, b Mode) bool { return lock.Comp(a, b) }

// Conv returns the combined mode after converting a granted lock to
// additionally cover a requested mode (Table 2 of the paper).
func Conv(granted, requested Mode) Mode { return lock.Conv(granted, requested) }

// ParseMode converts "IS", "IX", "S", "SIX", "X" or "NL" to a Mode.
func ParseMode(s string) (Mode, error) { return lock.Parse(s) }

// TxnID identifies a transaction.
type TxnID = table.TxnID

// ResourceID identifies a lockable resource.
type ResourceID = table.ResourceID

// Errors returned by the manager.
var (
	// ErrAborted: the transaction was aborted — either chosen as a
	// deadlock victim or cancelled mid-wait — and holds nothing.
	ErrAborted = errors.New("hwtwbg: transaction aborted")
	// ErrDone: the transaction already committed or aborted.
	ErrDone = errors.New("hwtwbg: transaction already finished")
	// ErrClosed: the manager has been closed.
	ErrClosed = errors.New("hwtwbg: manager closed")
)

// Options configures a Manager.
type Options struct {
	// Period is the detection interval. Zero disables the background
	// detector; call Detect manually.
	Period time.Duration
	// Cost prices victim candidates. Nil selects the built-in metric
	// (locks held + 1), so younger transactions die first.
	Cost func(TxnID) float64
	// DisableTDR2 turns off resolution-by-repositioning; every deadlock
	// is then resolved by aborting a victim.
	DisableTDR2 bool
	// OnVictim, if non-nil, is called (outside the manager lock) with
	// the id of every transaction aborted by the detector.
	OnVictim func(TxnID)
	// HistorySize bounds the deadlock-event history returned by
	// History (default 128; negative disables recording).
	HistorySize int
}

// Stats accumulates detector activity over the manager's lifetime.
type Stats struct {
	Runs           int // detector activations
	CyclesSearched int // cycles found and resolved (the paper's c', summed)
	Aborted        int // victims aborted
	Repositioned   int // deadlocks resolved without any abort (TDR-2)
	Salvaged       int // victims rescued at Step 3 because an earlier abort unblocked them
}

// Manager is a goroutine-safe lock manager with periodic deadlock
// detection. Create one with Open.
type Manager struct {
	mu      sync.Mutex
	tb      *table.Table
	det     *detect.Detector
	opts    Options
	waiters map[TxnID]chan struct{} // closed when the waiter should re-check its fate
	// pendingAbort holds externally-initiated aborts (deadlock victims,
	// Close) not yet observed by the owning goroutine; entries are
	// consumed on observation, so the set stays small.
	pendingAbort map[TxnID]bool
	stats        Stats
	history      *historyRing
	closed       bool

	stop chan struct{}
	done chan struct{}

	nextID TxnID
}

// Open creates a Manager and, when opts.Period > 0, starts its
// background detector.
func Open(opts Options) *Manager {
	m := &Manager{
		tb:           table.New(),
		opts:         opts,
		waiters:      make(map[TxnID]chan struct{}),
		pendingAbort: make(map[TxnID]bool),
		nextID:       1,
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	size := opts.HistorySize
	if size == 0 {
		size = 128
	}
	if size < 0 {
		size = 0
	}
	m.history = newHistoryRing(size)
	cost := opts.Cost
	if cost == nil {
		cost = func(id TxnID) float64 { return float64(len(m.tb.Held(id)) + 1) }
	}
	m.det = detect.New(m.tb, detect.Config{Cost: cost, DisableTDR2: opts.DisableTDR2})
	if opts.Period > 0 {
		go m.loop(opts.Period)
	} else {
		close(m.done)
	}
	return m
}

func (m *Manager) loop(period time.Duration) {
	defer close(m.done)
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.Detect()
		}
	}
}

// Close stops the background detector and aborts every live
// transaction. Lock calls in flight return ErrAborted (or ErrClosed).
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.stop)
	for _, id := range m.tb.Txns() {
		m.tb.Abort(id)
		m.pendingAbort[id] = true
	}
	m.wakeAll()
	m.mu.Unlock()
	<-m.done
}

// Detect runs one activation of the periodic detection-resolution
// algorithm immediately and returns what it did.
func (m *Manager) Detect() Stats {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Stats{}
	}
	res := m.det.Run()
	m.stats.Runs++
	m.stats.CyclesSearched += res.CyclesSearched
	m.stats.Aborted += len(res.Aborted)
	m.stats.Repositioned += len(res.Repositioned)
	m.stats.Salvaged += len(res.Salvaged)
	now := time.Now()
	for _, v := range res.Aborted {
		m.pendingAbort[v] = true
		m.wake(v)
		m.history.add(Event{Time: now, Kind: EventVictim, Txn: v})
	}
	for _, rp := range res.Repositioned {
		m.history.add(Event{Time: now, Kind: EventReposition, Txn: rp.Junction, Resource: rp.Resource})
	}
	for _, sv := range res.Salvaged {
		m.history.add(Event{Time: now, Kind: EventSalvage, Txn: sv})
	}
	m.wakeGrants(res.Granted)
	activation := Stats{
		Runs:           1,
		CyclesSearched: res.CyclesSearched,
		Aborted:        len(res.Aborted),
		Repositioned:   len(res.Repositioned),
		Salvaged:       len(res.Salvaged),
	}
	cb := m.opts.OnVictim
	victims := res.Aborted
	m.mu.Unlock()
	if cb != nil {
		for _, v := range victims {
			cb(v)
		}
	}
	return activation
}

// Stats returns the cumulative detector statistics.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Snapshot returns the lock table rendered in the paper's notation, one
// resource per line.
func (m *Manager) Snapshot() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tb.String()
}

// DOT renders the current H/W-TWBG in Graphviz format.
func (m *Manager) DOT() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return twbg.Build(m.tb).DOT()
}

// Blocked reports whether transaction id is currently waiting for a
// lock (diagnostic).
func (m *Manager) Blocked(id TxnID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tb.Blocked(id)
}

// Deadlocked reports whether the current state contains a deadlock
// (diagnostic; the background detector clears them every period).
func (m *Manager) Deadlocked() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return twbg.Build(m.tb).HasCycle()
}

// wakeAll signals every waiter to re-check its state. Called with mu
// held; channels are closed exactly once because they are replaced on
// every wake.
func (m *Manager) wakeAll() {
	for id, ch := range m.waiters {
		close(ch)
		delete(m.waiters, id)
	}
}

// wake signals one waiter, if present.
func (m *Manager) wake(id TxnID) {
	if ch, ok := m.waiters[id]; ok {
		close(ch)
		delete(m.waiters, id)
	}
}

func (m *Manager) wakeGrants(grants []table.Grant) {
	for _, g := range grants {
		m.wake(g.Txn)
	}
}

func (m *Manager) String() string {
	return fmt.Sprintf("hwtwbg.Manager(period=%v)", m.opts.Period)
}
