package hwtwbg

import (
	"context"
	"math"
	"testing"
	"time"
)

// fakeClock hands out timestamps advancing a fixed step per call.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

// TestCostModelConvergence drives the estimator with a synthetic,
// perfectly regular workload under an injected clock and checks the
// derived period converges to the closed form T* = sqrt(2·D/(λ·ρ)):
// one deadlock every 10ms (λ = 100/s), activations costing D = 1ms,
// victim spans of 5ms under a 10ms period (ρ = 2·5/10 = 1), giving
// T* = sqrt(2·10⁶ / (10⁻⁷·1)) ns ≈ 4.472ms.
func TestCostModelConvergence(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0), step: 10 * time.Millisecond}
	cm := newCostModel(clk.now)
	for i := 0; i < 200; i++ {
		cm.observeActivation(ActivationReport{Total: time.Millisecond, CyclesSearched: 1})
		cm.observeVictimWait(5*time.Millisecond, 10*time.Millisecond)
	}
	st := cm.state(10*time.Millisecond, 100*time.Microsecond, time.Second)
	if st.Samples != 200 || st.Deadlocks != 200 || st.VictimWaits != 200 {
		t.Fatalf("counters = %d/%d/%d, want 200/200/200", st.Samples, st.Deadlocks, st.VictimWaits)
	}
	if got, want := st.RatePerSec, 100.0; math.Abs(got-want)/want > 0.01 {
		t.Fatalf("rate = %v/s, want ~%v/s", got, want)
	}
	if st.DetectCost != time.Millisecond {
		t.Fatalf("detect cost = %v, want 1ms (constant samples)", st.DetectCost)
	}
	if st.PersistCost != 5*time.Millisecond {
		t.Fatalf("persist cost = %v, want 5ms (constant samples)", st.PersistCost)
	}
	if math.Abs(st.StallRate-1.0) > 1e-9 {
		t.Fatalf("stall rate = %v, want 1", st.StallRate)
	}
	want := time.Duration(math.Sqrt(2 * 1e6 / 1e-7)) // ≈ 4.472ms
	if diff := math.Abs(float64(st.Period - want)); diff/float64(want) > 0.01 {
		t.Fatalf("derived period = %v, want ~%v", st.Period, want)
	}
}

// TestCostModelIdleClampsToMax: with no deadlock in the window λ̂ = 0
// and the period pins to the scheduler's maximum.
func TestCostModelIdleClampsToMax(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0), step: 10 * time.Millisecond}
	cm := newCostModel(clk.now)
	for i := 0; i < 10; i++ {
		cm.observeActivation(ActivationReport{Total: time.Millisecond})
	}
	if got := cm.period(10*time.Millisecond, time.Millisecond, 80*time.Millisecond); got != 80*time.Millisecond {
		t.Fatalf("idle period = %v, want clamped to 80ms max", got)
	}
}

// TestCostModelClampsToMin: a deadlock storm (high λ̂) cannot push the
// derived period below the scheduler's floor.
func TestCostModelClampsToMin(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	cm := newCostModel(clk.now)
	for i := 0; i < 100; i++ {
		cm.observeActivation(ActivationReport{Total: 10 * time.Microsecond, CyclesSearched: 8})
		cm.observeVictimWait(4*time.Millisecond, time.Millisecond)
	}
	if got := cm.period(time.Millisecond, 500*time.Microsecond, 80*time.Millisecond); got != 500*time.Microsecond {
		t.Fatalf("storm period = %v, want clamped to 500µs min", got)
	}
}

// TestCostModelRateDecays: the rate window forgets — a burst of
// deadlocks followed by a long quiet stretch drives λ̂ (and with it the
// derived period) back toward idle.
func TestCostModelRateDecays(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0), step: 10 * time.Millisecond}
	cm := newCostModel(clk.now)
	for i := 0; i < 50; i++ {
		cm.observeActivation(ActivationReport{Total: time.Millisecond, CyclesSearched: 1})
	}
	burst := cm.state(10*time.Millisecond, 100*time.Microsecond, time.Hour).RatePerSec
	// Quiet: several decay constants of idle activations.
	clk.step = 30 * time.Second
	for i := 0; i < 10; i++ {
		cm.observeActivation(ActivationReport{Total: time.Millisecond})
	}
	quiet := cm.state(10*time.Millisecond, 100*time.Microsecond, time.Hour).RatePerSec
	if quiet >= burst/100 {
		t.Fatalf("rate did not decay: burst %v/s, quiet %v/s", burst, quiet)
	}
}

// TestCostModelVictimWaitWithoutPeriod: a victim caught by a manual
// Detect (no background loop, period 0) still updates P̂ but cannot
// contribute a stall-rate sample.
func TestCostModelVictimWaitWithoutPeriod(t *testing.T) {
	cm := newCostModel(nil)
	cm.observeVictimWait(3*time.Millisecond, 0)
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if cm.persistNs != float64(3*time.Millisecond) {
		t.Fatalf("persistNs = %v, want 3ms", time.Duration(cm.persistNs))
	}
	if cm.stallRate != 0 {
		t.Fatalf("stallRate = %v, want untouched", cm.stallRate)
	}
	if cm.victimWaits != 1 {
		t.Fatalf("victimWaits = %d, want 1", cm.victimWaits)
	}
}

// TestSchedulingCostModel drives a manager under Scheduling "costmodel"
// tick by tick: idle activations pin the period at MaxPeriod (λ̂ = 0);
// after a real deadlock is formed, caught and charged to the model, the
// derived period drops below the maximum and the victim's wait span
// lands in the persistence estimate.
func TestSchedulingCostModel(t *testing.T) {
	tick := make(chan time.Time)
	notify := make(chan time.Duration, 1)
	clk := &fakeClock{t: time.Unix(0, 0), step: 10 * time.Millisecond}
	m := Open(Options{
		Period:      4 * time.Millisecond,
		MaxPeriod:   32 * time.Millisecond,
		Scheduling:  SchedulingCostModel,
		Shards:      1,
		schedTick:   tick,
		schedNotify: notify,
		now:         clk.now,
	})
	defer m.Close()
	step := func() time.Duration {
		t.Helper()
		tick <- time.Time{}
		select {
		case d := <-notify:
			return d
		case <-time.After(5 * time.Second):
			t.Fatal("scheduler never reported a period")
			return 0
		}
	}
	// Idle: no deadlocks in the window, so λ̂ = 0 and the model backs
	// off to MaxPeriod immediately (not the adaptive doubling walk).
	for i := 0; i < 3; i++ {
		if got := step(); got != 32*time.Millisecond {
			t.Fatalf("idle tick %d: period = %v, want MaxPeriod", i, got)
		}
	}

	ctx := context.Background()
	a, b := m.Begin(), m.Begin()
	if err := a.Lock(ctx, "cm/u", X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(ctx, "cm/v", X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- a.Lock(ctx, "cm/v", X) }()
	waitBlocked(t, m, a.ID())
	go func() { errs <- b.Lock(ctx, "cm/u", X) }()
	waitBlocked(t, m, b.ID())
	got := step()
	if got >= 32*time.Millisecond {
		t.Fatalf("post-deadlock period = %v, want below MaxPeriod", got)
	}
	if got < m.schedMin {
		t.Fatalf("post-deadlock period = %v, below scheduler floor %v", got, m.schedMin)
	}
	<-errs
	<-errs

	st := m.CostModel()
	if st.Deadlocks == 0 {
		t.Fatalf("cost model saw no deadlock: %+v", st)
	}
	if st.VictimWaits == 0 || st.PersistCost <= 0 {
		t.Fatalf("victim wait span not charged: %+v", st)
	}
	if st.RatePerSec <= 0 {
		t.Fatalf("rate estimate = %v, want positive after a deadlock", st.RatePerSec)
	}
	if st.Samples < 4 {
		t.Fatalf("samples = %d, want every tick observed", st.Samples)
	}
}
