package hwtwbg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitBlocked polls until id is blocked (test orchestration helper).
func waitBlocked(t *testing.T, m *Manager, id TxnID) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !m.Blocked(id) {
		if time.Now().After(deadline) {
			t.Fatalf("T%d never blocked", id)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestBasicLockCommit(t *testing.T) {
	m := Open(Options{})
	defer m.Close()
	tx := m.Begin()
	if err := tx.Lock(context.Background(), "a", S); err != nil {
		t.Fatal(err)
	}
	if err := tx.Lock(context.Background(), "b", X); err != nil {
		t.Fatal(err)
	}
	held := tx.Held()
	if len(held) != 2 || held[0] != "a" || held[1] != "b" {
		t.Fatalf("held = %v", held)
	}
	if tx.Mode("a") != S || tx.Mode("b") != X || tx.Mode("c") != NL {
		t.Fatal("modes wrong")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrDone) {
		t.Fatalf("second commit: %v", err)
	}
	if err := tx.Lock(context.Background(), "a", S); !errors.Is(err, ErrDone) {
		t.Fatalf("lock after commit: %v", err)
	}
	if err := tx.Err(); !errors.Is(err, ErrDone) {
		t.Fatalf("Err() = %v", err)
	}
}

func TestBlockAndGrant(t *testing.T) {
	m := Open(Options{})
	defer m.Close()
	a := m.Begin()
	b := m.Begin()
	if err := a.Lock(context.Background(), "r", X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- b.Lock(context.Background(), "r", S)
	}()
	waitBlocked(t, m, b.ID())
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("b.Lock: %v", err)
	}
	if b.Mode("r") != S {
		t.Fatalf("b holds %v", b.Mode("r"))
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockResolvedByBackgroundDetector(t *testing.T) {
	var victims atomic.Int32
	m := Open(Options{
		Period:   2 * time.Millisecond,
		OnVictim: func(TxnID) { victims.Add(1) },
	})
	defer m.Close()
	a := m.Begin()
	b := m.Begin()
	ctx := context.Background()
	if err := a.Lock(ctx, "x", X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(ctx, "y", X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- a.Lock(ctx, "y", X) }()
	go func() { errs <- b.Lock(ctx, "x", X) }()
	e1, e2 := <-errs, <-errs
	// Exactly one of the two must have been aborted.
	aborted := 0
	if errors.Is(e1, ErrAborted) {
		aborted++
	}
	if errors.Is(e2, ErrAborted) {
		aborted++
	}
	if aborted != 1 {
		t.Fatalf("errors: %v / %v, want exactly one ErrAborted", e1, e2)
	}
	if victims.Load() != 1 {
		t.Fatalf("OnVictim called %d times", victims.Load())
	}
	st := m.Stats()
	if st.Aborted != 1 || st.Runs == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The survivor can finish.
	for _, tx := range []*Txn{a, b} {
		if tx.Err() == nil {
			if err := tx.Commit(); err != nil {
				t.Fatalf("survivor commit: %v", err)
			}
		}
	}
}

func TestManualDetectAndTDR2(t *testing.T) {
	// Build Example 5.1's shape of problem through the public API using
	// three goroutines, resolve with a manual Detect, and check the
	// reposition-free path (this scenario resolves by abort) plus a
	// TDR-2 scenario (queue reorder, nobody dies).
	m := Open(Options{}) // no background detector
	defer m.Close()
	ctx := context.Background()

	// TDR-2 scenario: T1 holds IS on q; T2 queues X; T3 queues IS and
	// then T1 upgrades to S... simpler: reuse the structure where an
	// incompatible head blocks a compatible waiter that a cycle runs
	// through. We reproduce Example 4.1's R2 in miniature:
	//   holder T1(IS); queue: T2(X), T3(S); T3 also holds "h" which T1
	//   wants.
	t1 := m.Begin()
	t2 := m.Begin()
	t3 := m.Begin()
	if err := t1.Lock(ctx, "q", IS); err != nil {
		t.Fatal(err)
	}
	if err := t3.Lock(ctx, "h", X); err != nil {
		t.Fatal(err)
	}
	lockErr := make(chan error, 3)
	go func() { lockErr <- t2.Lock(ctx, "q", X) }()
	waitBlocked(t, m, t2.ID())
	go func() { lockErr <- t3.Lock(ctx, "q", S) }()
	waitBlocked(t, m, t3.ID())
	go func() { lockErr <- t1.Lock(ctx, "h", S) }() // closes the cycle T1->T3->(queue)->T1
	waitBlocked(t, m, t1.ID())
	if !m.Deadlocked() {
		t.Fatalf("expected deadlock:\n%s", m.Snapshot())
	}
	st := m.Detect()
	if st.Repositioned != 1 || st.Aborted != 0 {
		t.Fatalf("activation = %+v, want one repositioning and no aborts\n%s", st, m.Snapshot())
	}
	if m.Deadlocked() {
		t.Fatalf("deadlock remains:\n%s", m.Snapshot())
	}
	// T3's S on q must now be granted (it moved ahead of T2's X).
	if err := <-lockErr; err != nil {
		t.Fatalf("first unblocked lock: %v", err)
	}
	if t3.Mode("q") != S {
		t.Fatalf("t3 q mode = %v\n%s", t3.Mode("q"), m.Snapshot())
	}
	// Unwind: t3 commits, freeing h for t1; then t1 commits freeing q
	// for t2.
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-lockErr; err != nil {
		t.Fatalf("t1's lock: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-lockErr; err != nil {
		t.Fatalf("t2's lock: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestContextCancelAbortsTransaction(t *testing.T) {
	m := Open(Options{})
	defer m.Close()
	a := m.Begin()
	b := m.Begin()
	if err := a.Lock(context.Background(), "r", X); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Lock(ctx, "r", X) }()
	waitBlocked(t, m, b.ID())
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// b is aborted entirely.
	if err := b.Err(); !errors.Is(err, ErrAborted) {
		t.Fatalf("b.Err() = %v", err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTryLock(t *testing.T) {
	m := Open(Options{})
	defer m.Close()
	a := m.Begin()
	b := m.Begin()
	ok, err := a.TryLock("r", X)
	if err != nil || !ok {
		t.Fatalf("a: %v %v", ok, err)
	}
	ok, err = b.TryLock("r", S)
	if err != nil || ok {
		t.Fatalf("b must be refused: %v %v", ok, err)
	}
	if m.Blocked(b.ID()) {
		t.Fatal("TryLock must not queue")
	}
	// Covered re-request succeeds trivially.
	ok, err = a.TryLock("r", S)
	if err != nil || !ok {
		t.Fatalf("covered: %v %v", ok, err)
	}
	// Upgrade probe: b holds nothing; a holds X; new resource works.
	ok, err = b.TryLock("other", IX)
	if err != nil || !ok {
		t.Fatalf("other: %v %v", ok, err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	ok, err = b.TryLock("r", S)
	if err != nil || !ok {
		t.Fatalf("after commit: %v %v", ok, err)
	}
	b.Abort()
	if _, err := b.TryLock("r", S); !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
}

func TestAbortWakesWaiters(t *testing.T) {
	m := Open(Options{})
	defer m.Close()
	a := m.Begin()
	b := m.Begin()
	if err := a.Lock(context.Background(), "r", X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.Lock(context.Background(), "r", X) }()
	waitBlocked(t, m, b.ID())
	a.Abort()
	if err := <-done; err != nil {
		t.Fatalf("b.Lock after a.Abort: %v", err)
	}
	a.Abort() // double abort is a no-op
	if err := a.Err(); !errors.Is(err, ErrAborted) {
		t.Fatalf("a.Err() = %v", err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseAbortsEverything(t *testing.T) {
	m := Open(Options{Period: time.Millisecond})
	a := m.Begin()
	b := m.Begin()
	if err := a.Lock(context.Background(), "r", X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.Lock(context.Background(), "r", X) }()
	waitBlocked(t, m, b.ID())
	m.Close()
	if err := <-done; !errors.Is(err, ErrAborted) {
		t.Fatalf("waiter after Close: %v", err)
	}
	if err := a.Lock(context.Background(), "s", S); !errors.Is(err, ErrAborted) && !errors.Is(err, ErrClosed) {
		t.Fatalf("lock after Close: %v", err)
	}
	tx := m.Begin()
	if err := tx.Lock(context.Background(), "s", S); !errors.Is(err, ErrClosed) {
		t.Fatalf("new txn after Close: %v", err)
	}
	m.Close() // double close is a no-op
	if st := m.Detect(); st != (Stats{}) {
		t.Fatalf("Detect after Close = %+v", st)
	}
}

func TestSnapshotAndDOT(t *testing.T) {
	m := Open(Options{})
	defer m.Close()
	a := m.Begin()
	if err := a.Lock(context.Background(), "acct", S); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Snapshot(), "acct(S)") {
		t.Errorf("Snapshot:\n%s", m.Snapshot())
	}
	if !strings.Contains(m.DOT(), "digraph HWTWBG") {
		t.Errorf("DOT:\n%s", m.DOT())
	}
	if !strings.Contains(m.String(), "hwtwbg.Manager") {
		t.Errorf("String: %s", m.String())
	}
}

func TestModeHelpers(t *testing.T) {
	if !Comp(S, IS) || Comp(IX, SIX) {
		t.Error("Comp re-export wrong")
	}
	if Conv(IX, S) != SIX {
		t.Error("Conv re-export wrong")
	}
	got, err := ParseMode("SIX")
	if err != nil || got != SIX {
		t.Errorf("ParseMode = %v, %v", got, err)
	}
	if _, err := ParseMode("nah"); err == nil {
		t.Error("ParseMode must reject garbage")
	}
}

// TestStress hammers the manager from many goroutines with a fast
// detector; run with -race. Every transaction eventually commits or is
// retried after victimization; at the end nothing is deadlocked.
func TestStress(t *testing.T) {
	m := Open(Options{Period: time.Millisecond})
	defer m.Close()
	const workers = 16
	const txnsPerWorker = 30
	var wg sync.WaitGroup
	var commits, victimRetries atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < txnsPerWorker; i++ {
			retry:
				tx := m.Begin()
				n := 2 + rng.Intn(3)
				for j := 0; j < n; j++ {
					r := ResourceID(fmt.Sprintf("r%d", rng.Intn(6)))
					mode := S
					if rng.Intn(2) == 0 {
						mode = X
					}
					if err := tx.Lock(context.Background(), r, mode); err != nil {
						if errors.Is(err, ErrAborted) {
							victimRetries.Add(1)
							goto retry
						}
						t.Errorf("lock: %v", err)
						return
					}
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				commits.Add(1)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	if got := commits.Load(); got != workers*txnsPerWorker {
		t.Fatalf("commits = %d, want %d", got, workers*txnsPerWorker)
	}
	if m.Deadlocked() {
		t.Fatal("deadlock at end of stress run")
	}
	t.Logf("stress: %d commits, %d victim retries, stats %+v",
		commits.Load(), victimRetries.Load(), m.Stats())
}

func TestConversionThroughPublicAPI(t *testing.T) {
	m := Open(Options{Period: time.Millisecond})
	defer m.Close()
	ctx := context.Background()
	a := m.Begin()
	b := m.Begin()
	if err := a.Lock(ctx, "r", S); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(ctx, "r", S); err != nil {
		t.Fatal(err)
	}
	// Both upgrade to X: a conversion deadlock the detector must break.
	errs := make(chan error, 2)
	go func() { errs <- a.Lock(ctx, "r", X) }()
	go func() { errs <- b.Lock(ctx, "r", X) }()
	e1, e2 := <-errs, <-errs
	okCount, abortCount := 0, 0
	for _, e := range []error{e1, e2} {
		switch {
		case e == nil:
			okCount++
		case errors.Is(e, ErrAborted):
			abortCount++
		default:
			t.Fatalf("unexpected error: %v", e)
		}
	}
	if okCount != 1 || abortCount != 1 {
		t.Fatalf("e1=%v e2=%v", e1, e2)
	}
	for _, tx := range []*Txn{a, b} {
		if tx.Err() == nil {
			if tx.Mode("r") != X {
				t.Fatalf("survivor mode = %v", tx.Mode("r"))
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestHistory(t *testing.T) {
	m := Open(Options{HistorySize: 4})
	defer m.Close()
	ctx := context.Background()
	// Generate three deadlocks sequentially.
	for i := 0; i < 3; i++ {
		a, b := m.Begin(), m.Begin()
		ra := ResourceID(fmt.Sprintf("h%da", i))
		rb := ResourceID(fmt.Sprintf("h%db", i))
		if err := a.Lock(ctx, ra, X); err != nil {
			t.Fatal(err)
		}
		if err := b.Lock(ctx, rb, X); err != nil {
			t.Fatal(err)
		}
		errs := make(chan error, 2)
		go func() { errs <- a.Lock(ctx, rb, X) }()
		go func() { errs <- b.Lock(ctx, ra, X) }()
		waitBlocked(t, m, a.ID())
		waitBlocked(t, m, b.ID())
		if st := m.Detect(); st.Aborted != 1 {
			t.Fatalf("round %d: %+v", i, st)
		}
		<-errs
		<-errs
		for _, tx := range []*Txn{a, b} {
			if tx.Err() == nil {
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	events, total := m.History()
	if total != 3 || len(events) != 3 {
		t.Fatalf("history = %v (total %d)", events, total)
	}
	for _, e := range events {
		if e.Kind != EventVictim || e.Txn == 0 || e.Time.IsZero() {
			t.Fatalf("bad event %+v", e)
		}
		if !strings.HasPrefix(e.String(), "victim T") {
			t.Fatalf("String() = %q", e.String())
		}
	}
	if EventReposition.String() != "reposition" || EventSalvage.String() != "salvage" {
		t.Error("kind names")
	}
	if got := (Event{Kind: EventReposition, Txn: 3, Resource: "R2"}).String(); got != "reposition R2 at junction T3" {
		t.Errorf("String() = %q", got)
	}
	if got := EventKind(9).String(); got != "EventKind(9)" {
		t.Errorf("String() = %q", got)
	}
}

func TestHistoryRingWraps(t *testing.T) {
	h := newHistoryRing(2)
	for i := 1; i <= 5; i++ {
		h.add(Event{Txn: TxnID(i)})
	}
	ev := h.items()
	if len(ev) != 2 || ev[0].Txn != 4 || ev[1].Txn != 5 || h.total != 5 {
		t.Fatalf("events = %v, total %d", ev, h.total)
	}
	// Disabled history must not panic.
	h0 := newHistoryRing(0)
	h0.add(Event{Txn: 1})
	if len(h0.items()) != 0 {
		t.Fatal("disabled history retained events")
	}
}

func TestEdgesExport(t *testing.T) {
	m := Open(Options{})
	defer m.Close()
	a := m.Begin()
	b := m.Begin()
	if err := a.Lock(context.Background(), "r", X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.Lock(context.Background(), "r", S) }()
	waitBlocked(t, m, b.ID())
	edges := m.Edges()
	if len(edges) != 1 {
		t.Fatalf("edges = %v", edges)
	}
	e := edges[0]
	if e.From != a.ID() || e.To != b.ID() || e.Resource != "r" || !e.Holder {
		t.Fatalf("edge = %+v", e)
	}
	a.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := m.Edges(); len(got) != 0 {
		t.Fatalf("edges after grant = %v", got)
	}
	b.Commit()
}
