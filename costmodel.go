package hwtwbg

import (
	"math"
	"sync"
	"time"
)

// The online detection-scheduling cost model (Ling/Chen/Chiang, "On
// Optimal Deadlock Detection Scheduling"). The expected cost per unit
// time of running the detector every T is
//
//	C(T) = D/T + λ·ρ·T/2
//
// where D is the cost of one activation, λ the deadlock formation rate,
// and ρ the cost rate of a persisting deadlock (stalled transactions
// accruing wait, so a deadlock that forms uniformly within a period
// persists T/2 in expectation and costs ρ·T/2). Minimizing over T gives
// the cost-minimizing period
//
//	T* = sqrt(2·D / (λ·ρ)).
//
// All three inputs are measured online from the detector's own
// telemetry — the same records the flight recorder journals:
//
//   - λ from cycle counts per activation over elapsed wall clock
//     (KindDetect records carry the cycle count), kept as an
//     exponentially time-decayed window so the estimate tracks workload
//     shifts instead of averaging over the process lifetime;
//   - D as an EWMA of ActivationReport.Total (the full activation,
//     acquire/copy/build/search/resolve/validate/wake);
//   - ρ from deadlock victim wait spans: a victim aborted after
//     waiting S under a live period T implies the broken cycle accrued
//     roughly S ≈ (ρ/members)·T/2 stalled time per member, so each span
//     contributes the sample 2·S/T to the EWMA of ρ (floored at 1 when
//     deriving — a persisting deadlock stalls at least one transaction).
//
// With no deadlock observed in the decay window λ̂ → 0 and T* → ∞, so
// the derived period clamps to the scheduler's maximum — the model
// checks as rarely as allowed until conflict pressure reappears.
type costModel struct {
	now func() time.Time

	mu      sync.Mutex
	lastObs time.Time // previous activation observation (zero until first)

	// Exponentially time-decayed observation window for the rate.
	obsNs  float64 // decayed observed nanoseconds
	cycles float64 // decayed deadlock (cycle) count

	detectNs  float64 // EWMA activation cost, ns
	persistNs float64 // EWMA victim wait span, ns
	stallRate float64 // EWMA stalled-transaction accrual rate ρ

	samples     int    // activations observed
	deadlocks   uint64 // lifetime cycles observed
	victimWaits uint64 // lifetime victim wait-span samples
	periodNs    int64  // last derived period (0 until first derivation)
}

// costEWMAAlpha weights new samples into the cost EWMAs; costDecayTau
// is the rate window's e-folding time — observations older than a few
// τ effectively stop influencing λ̂.
const (
	costEWMAAlpha = 0.2
	costDecayTau  = 30 * time.Second
)

func newCostModel(now func() time.Time) *costModel {
	if now == nil {
		now = time.Now
	}
	return &costModel{now: now}
}

func ewma(prev, sample float64) float64 {
	if prev == 0 {
		return sample
	}
	return prev + costEWMAAlpha*(sample-prev)
}

// observeActivation folds one finished detector activation into the
// model: the activation's cost into D̂ and its cycle count — over the
// wall clock elapsed since the previous activation — into λ̂.
func (cm *costModel) observeActivation(rep ActivationReport) {
	now := cm.now()
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if !cm.lastObs.IsZero() {
		dt := now.Sub(cm.lastObs)
		if dt > 0 {
			decay := math.Exp(-float64(dt) / float64(costDecayTau))
			cm.obsNs = cm.obsNs*decay + float64(dt)
			cm.cycles = cm.cycles*decay + float64(rep.CyclesSearched)
		}
	}
	cm.lastObs = now
	cm.detectNs = ewma(cm.detectNs, float64(rep.Total))
	cm.samples++
	cm.deadlocks += uint64(rep.CyclesSearched)
}

// observeVictimWait folds one deadlock victim's wait span (how long the
// transaction had been blocked when the detector aborted it) into the
// persistence-cost estimate. period is the detection interval that was
// live while the victim waited; when it is unknown (manual Detect with
// no background loop) the span still updates P̂ but not ρ̂.
func (cm *costModel) observeVictimWait(span, period time.Duration) {
	if span <= 0 {
		return
	}
	cm.mu.Lock()
	defer cm.mu.Unlock()
	cm.persistNs = ewma(cm.persistNs, float64(span))
	cm.victimWaits++
	if period > 0 {
		cm.stallRate = ewma(cm.stallRate, 2*float64(span)/float64(period))
	}
}

// period derives the cost-minimizing detection interval T* =
// sqrt(2·D/(λ·ρ)), clamped to [min, max]. cur is the interval in
// effect, used as the detection-cost fallback before any activation has
// been observed.
func (cm *costModel) period(cur, min, max time.Duration) time.Duration {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.periodLocked(cur, min, max)
}

func (cm *costModel) periodLocked(cur, min, max time.Duration) time.Duration {
	out := max
	if lambda := cm.rateLocked(); lambda > 0 {
		d := cm.detectNs
		if d <= 0 {
			d = float64(cur)
		}
		rho := cm.stallRate
		if rho < 1 {
			rho = 1
		}
		opt := time.Duration(math.Sqrt(2 * d / (lambda * rho)))
		if opt < out {
			out = opt
		}
	}
	if out < min {
		out = min
	}
	if out > max {
		out = max
	}
	cm.periodNs = int64(out)
	return out
}

// rateLocked is λ̂ in deadlocks per nanosecond.
func (cm *costModel) rateLocked() float64 {
	if cm.obsNs <= 0 {
		return 0
	}
	return cm.cycles / cm.obsNs
}

// CostModelState is a point-in-time view of the detection-scheduling
// cost model: the estimated deadlock formation rate, the measured
// detection and persistence costs, and the cost-minimizing period those
// estimates imply. Exposed via Manager.CostModel, MetricsSnapshot, the
// hwtwbg_costmodel_* Prometheus series, the STATS wire keys and the
// debug server's /costmodel endpoint.
type CostModelState struct {
	// Samples counts detector activations folded into the model;
	// Deadlocks the cycles they carried; VictimWaits the victim
	// wait-span observations.
	Samples     int    `json:"samples"`
	Deadlocks   uint64 `json:"deadlocks"`
	VictimWaits uint64 `json:"victim_waits"`
	// RatePerSec is λ̂, the estimated deadlock formation rate
	// (exponentially time-decayed, e-folding 30s).
	RatePerSec float64 `json:"rate_per_sec"`
	// DetectCost is D̂, the EWMA cost of one detector activation.
	DetectCost time.Duration `json:"detect_cost_ns"`
	// PersistCost is P̂, the EWMA deadlock victim wait span — how much
	// blocked time one caught deadlock had accrued.
	PersistCost time.Duration `json:"persist_cost_ns"`
	// StallRate is ρ̂, the estimated stalled-transaction accrual rate of
	// a persisting deadlock (dimensionless; floored at 1 when deriving).
	StallRate float64 `json:"stall_rate"`
	// Period is the cost-minimizing detection interval T* =
	// sqrt(2·D̂/(λ̂·ρ̂)), clamped to the scheduler's bounds. Under
	// Options.Scheduling "costmodel" this drives the background
	// detector; under other schedulings it is advisory.
	Period time.Duration `json:"period_ns"`
}

// state snapshots the model, deriving a fresh period under the given
// bounds.
func (cm *costModel) state(cur, min, max time.Duration) CostModelState {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return CostModelState{
		Samples:     cm.samples,
		Deadlocks:   cm.deadlocks,
		VictimWaits: cm.victimWaits,
		RatePerSec:  cm.rateLocked() * 1e9,
		DetectCost:  time.Duration(cm.detectNs),
		PersistCost: time.Duration(cm.persistNs),
		StallRate:   cm.stallRate,
		Period:      cm.periodLocked(cur, min, max),
	}
}
