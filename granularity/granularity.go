// Package granularity layers the multiple granularity locking protocol
// over the public hwtwbg lock manager: define a hierarchy (or a general
// DAG, e.g. files reachable both from the database and from an index)
// once, then lock nodes in any of the five modes; the required intention
// locks on ancestors are acquired automatically, root first.
//
// Because hwtwbg.Txn.Lock blocks until granted, a multi-step acquisition
// here simply blocks at the contended ancestor; if the transaction is
// chosen as a deadlock victim anywhere along the path, Lock returns
// hwtwbg.ErrAborted and the whole transaction is gone (strict 2PL), so
// callers retry exactly as they would for a flat lock.
//
// The paper's Section 2 claims its model "integrates without changes
// into a system that supports a resource hierarchy"; this package is
// that integration on the concurrent API (internal/mgl is the
// deterministic equivalent used by the simulator).
package granularity

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"hwtwbg"
)

// Errors reported by the package.
var (
	ErrUnknownNode   = errors.New("granularity: unknown node")
	ErrDuplicateNode = errors.New("granularity: node already defined")
	ErrNoParent      = errors.New("granularity: parent not defined")
)

// Intention returns the intention mode required on every proper
// ancestor of a node locked in mode m: IS for read-side modes (IS, S)
// and IX for write-side modes (IX, SIX, X).
func Intention(m hwtwbg.Mode) hwtwbg.Mode {
	switch m {
	case hwtwbg.IS, hwtwbg.S:
		return hwtwbg.IS
	default:
		return hwtwbg.IX
	}
}

// Graph is a granularity graph: a forest when every node has one
// parent, a DAG when nodes are added with several. It must be fully
// built before use and is immutable (and therefore goroutine-safe)
// afterwards.
type Graph struct {
	parents map[hwtwbg.ResourceID][]hwtwbg.ResourceID
	sealed  atomic.Bool
}

// New returns an empty granularity graph.
func New() *Graph {
	return &Graph{parents: make(map[hwtwbg.ResourceID][]hwtwbg.ResourceID)}
}

// AddRoot defines a top-level resource.
func (g *Graph) AddRoot(id hwtwbg.ResourceID) error {
	return g.add(id, nil)
}

// Add defines a resource under one or more existing parents.
func (g *Graph) Add(id hwtwbg.ResourceID, parents ...hwtwbg.ResourceID) error {
	if len(parents) == 0 {
		return fmt.Errorf("granularity: node %s needs at least one parent (use AddRoot)", id)
	}
	return g.add(id, parents)
}

func (g *Graph) add(id hwtwbg.ResourceID, parents []hwtwbg.ResourceID) error {
	if g.sealed.Load() {
		return errors.New("granularity: graph is sealed (a transaction already used it)")
	}
	if _, ok := g.parents[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	for _, p := range parents {
		if _, ok := g.parents[p]; !ok {
			return fmt.Errorf("%w: %s", ErrNoParent, p)
		}
	}
	g.parents[id] = append([]hwtwbg.ResourceID(nil), parents...)
	return nil
}

// Contains reports whether id is defined.
func (g *Graph) Contains(id hwtwbg.ResourceID) bool {
	_, ok := g.parents[id]
	return ok
}

// Lock acquires mode on node id for t, taking the protocol's intention
// locks along the way: IS on one root path for read-side modes, IX on
// every ancestor (all paths) for write-side modes, ancestors before
// descendants. Steps the transaction's held modes already cover are
// skipped, so upgrades work naturally.
func (g *Graph) Lock(ctx context.Context, t *hwtwbg.Txn, id hwtwbg.ResourceID, mode hwtwbg.Mode) error {
	g.sealed.Store(true)
	if _, ok := g.parents[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	intent := Intention(mode)
	var chain []hwtwbg.ResourceID
	if intent == hwtwbg.IS {
		chain = g.readPath(id)
	} else {
		chain = g.ancestors(id)
	}
	for _, rid := range chain {
		if hwtwbg.Conv(t.Mode(rid), intent) == t.Mode(rid) {
			continue // already covered
		}
		if err := t.Lock(ctx, rid, intent); err != nil {
			return err
		}
	}
	if hwtwbg.Conv(t.Mode(id), mode) == t.Mode(id) {
		return nil
	}
	return t.Lock(ctx, id, mode)
}

// readPath returns one root-to-id chain (excluding id), following the
// first-listed parent at each step.
func (g *Graph) readPath(id hwtwbg.ResourceID) []hwtwbg.ResourceID {
	var rev []hwtwbg.ResourceID
	cur := id
	for {
		ps := g.parents[cur]
		if len(ps) == 0 {
			break
		}
		rev = append(rev, ps[0])
		cur = ps[0]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ancestors returns every node from which id is reachable, ancestors
// before descendants (longest root distance, ties by id) so write-side
// acquisition is deterministic and top-down.
func (g *Graph) ancestors(id hwtwbg.ResourceID) []hwtwbg.ResourceID {
	seen := map[hwtwbg.ResourceID]bool{}
	var collect func(n hwtwbg.ResourceID)
	collect = func(n hwtwbg.ResourceID) {
		for _, p := range g.parents[n] {
			if !seen[p] {
				seen[p] = true
				collect(p)
			}
		}
	}
	collect(id)
	out := make([]hwtwbg.ResourceID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := g.depth(out[i]), g.depth(out[j])
		if di != dj {
			return di < dj
		}
		return out[i] < out[j]
	})
	return out
}

func (g *Graph) depth(n hwtwbg.ResourceID) int {
	best := 0
	for _, p := range g.parents[n] {
		if d := g.depth(p) + 1; d > best {
			best = d
		}
	}
	return best
}
