package granularity_test

import (
	"context"
	"fmt"

	"hwtwbg"
	"hwtwbg/granularity"
)

// Example locks a row for writing: the intention locks on the database
// and table are taken automatically, root first.
func Example() {
	g := granularity.New()
	g.AddRoot("db")
	g.Add("users", "db")
	g.Add("users/row42", "users")

	lm := hwtwbg.Open(hwtwbg.Options{})
	defer lm.Close()

	tx := lm.Begin()
	if err := g.Lock(context.Background(), tx, "users/row42", hwtwbg.X); err != nil {
		panic(err)
	}
	fmt.Println("db:", tx.Mode("db"))
	fmt.Println("users:", tx.Mode("users"))
	fmt.Println("row:", tx.Mode("users/row42"))
	tx.Commit()
	// Output:
	// db: IX
	// users: IX
	// row: X
}
