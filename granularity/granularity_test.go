package granularity

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hwtwbg"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddRoot("db"))
	must(g.Add("area", "db"))
	must(g.Add("index", "db"))
	must(g.Add("file1", "area", "index"))
	must(g.Add("file2", "area"))
	must(g.Add("rec1", "file1"))
	must(g.Add("rec2", "file1"))
	return g
}

func TestBuildErrors(t *testing.T) {
	g := testGraph(t)
	if err := g.AddRoot("db"); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("err = %v", err)
	}
	if err := g.Add("x", "nope"); !errors.Is(err, ErrNoParent) {
		t.Fatalf("err = %v", err)
	}
	if err := g.Add("orphan"); err == nil {
		t.Fatal("parentless Add must fail")
	}
	if !g.Contains("rec1") || g.Contains("zzz") {
		t.Fatal("Contains wrong")
	}
}

func TestSealAfterUse(t *testing.T) {
	g := testGraph(t)
	lm := hwtwbg.Open(hwtwbg.Options{})
	defer lm.Close()
	tx := lm.Begin()
	defer tx.Abort()
	if err := g.Lock(context.Background(), tx, "rec1", hwtwbg.S); err != nil {
		t.Fatal(err)
	}
	if err := g.AddRoot("late"); err == nil {
		t.Fatal("graph must seal after first use")
	}
}

func TestIntention(t *testing.T) {
	cases := map[hwtwbg.Mode]hwtwbg.Mode{
		hwtwbg.IS: hwtwbg.IS, hwtwbg.S: hwtwbg.IS,
		hwtwbg.IX: hwtwbg.IX, hwtwbg.SIX: hwtwbg.IX, hwtwbg.X: hwtwbg.IX,
	}
	for m, want := range cases {
		if got := Intention(m); got != want {
			t.Errorf("Intention(%v) = %v, want %v", m, got, want)
		}
	}
}

func TestWriterTakesAllPaths(t *testing.T) {
	g := testGraph(t)
	lm := hwtwbg.Open(hwtwbg.Options{})
	defer lm.Close()
	ctx := context.Background()
	tx := lm.Begin()
	defer tx.Abort()
	if err := g.Lock(ctx, tx, "rec1", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	for rid, want := range map[hwtwbg.ResourceID]hwtwbg.Mode{
		"db": hwtwbg.IX, "area": hwtwbg.IX, "index": hwtwbg.IX,
		"file1": hwtwbg.IX, "rec1": hwtwbg.X,
	} {
		if got := tx.Mode(rid); got != want {
			t.Errorf("Mode(%s) = %v, want %v", rid, got, want)
		}
	}
	if got := tx.Mode("file2"); got != hwtwbg.NL {
		t.Errorf("file2 = %v, want untouched", got)
	}
}

func TestReaderTakesOnePath(t *testing.T) {
	g := testGraph(t)
	lm := hwtwbg.Open(hwtwbg.Options{})
	defer lm.Close()
	tx := lm.Begin()
	defer tx.Abort()
	if err := g.Lock(context.Background(), tx, "rec1", hwtwbg.S); err != nil {
		t.Fatal(err)
	}
	if got := tx.Mode("index"); got != hwtwbg.NL {
		t.Errorf("reader touched the index path: %v", got)
	}
	if got := tx.Mode("area"); got != hwtwbg.IS {
		t.Errorf("area = %v", got)
	}
}

func TestUnknownNode(t *testing.T) {
	g := testGraph(t)
	lm := hwtwbg.Open(hwtwbg.Options{})
	defer lm.Close()
	tx := lm.Begin()
	defer tx.Abort()
	if err := g.Lock(context.Background(), tx, "nope", hwtwbg.S); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpgradeConvertsIntentions(t *testing.T) {
	g := testGraph(t)
	lm := hwtwbg.Open(hwtwbg.Options{})
	defer lm.Close()
	ctx := context.Background()
	tx := lm.Begin()
	defer tx.Abort()
	if err := g.Lock(ctx, tx, "rec1", hwtwbg.S); err != nil {
		t.Fatal(err)
	}
	if err := g.Lock(ctx, tx, "rec1", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	if got := tx.Mode("area"); got != hwtwbg.IX {
		t.Errorf("area after upgrade = %v", got)
	}
	if got := tx.Mode("rec1"); got != hwtwbg.X {
		t.Errorf("rec1 = %v", got)
	}
}

// TestConcurrentBlockAndGrant: a writer blocks an index scan until it
// commits — through the public, blocking API.
func TestConcurrentBlockAndGrant(t *testing.T) {
	g := testGraph(t)
	lm := hwtwbg.Open(hwtwbg.Options{})
	defer lm.Close()
	ctx := context.Background()
	w := lm.Begin()
	if err := g.Lock(ctx, w, "rec1", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	scanner := lm.Begin()
	go func() { done <- g.Lock(ctx, scanner, "index", hwtwbg.S) }()
	select {
	case err := <-done:
		t.Fatalf("index scan returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := scanner.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlockThroughIntentionsResolved: crossing scan-then-write
// transactions deadlock at the container level; the background detector
// sacrifices one; both logical jobs finish via retry.
func TestDeadlockThroughIntentionsResolved(t *testing.T) {
	g := testGraph(t)
	lm := hwtwbg.Open(hwtwbg.Options{Period: 2 * time.Millisecond})
	defer lm.Close()
	ctx := context.Background()
	job := func(scan, write hwtwbg.ResourceID) error {
		return lm.Do(ctx, func(tx *hwtwbg.Txn) error {
			if err := g.Lock(ctx, tx, scan, hwtwbg.S); err != nil {
				return err
			}
			time.Sleep(3 * time.Millisecond) // force the overlap
			return g.Lock(ctx, tx, write, hwtwbg.X)
		})
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs <- job("area", "rec1") }()  // S(area) then X needs IX on index too
	go func() { defer wg.Done(); errs <- job("index", "rec2") }() // S(index) then X needs IX on area too
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("job failed: %v", err)
		}
	}
	if lm.Deadlocked() {
		t.Fatal("deadlock left behind")
	}
	if st := lm.Stats(); st.Aborted == 0 && st.Repositioned == 0 {
		t.Log("note: no deadlock actually formed on this run (timing)")
	}
}
