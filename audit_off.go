//go:build !invariants

package hwtwbg

import "hwtwbg/internal/detect"

// Without the `invariants` build tag the runtime invariant auditor
// compiles to nothing: the pre hooks return nil and the post hooks are
// empty, so the detector paths pay only two inlined nil-returning calls
// per activation. See audit_on.go for the real implementation.

type auditState struct{}

func (m *Manager) auditPreSTW() *auditState { return nil }

func (m *Manager) auditPostSTW(*auditState, detect.Result) {}

func (m *Manager) auditPreSnapshot() *auditState { return nil }

func (m *Manager) auditPostSnapshot(*auditState, detect.Result) {}
