package hwtwbg_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hwtwbg"
)

// ExampleManager shows the basic begin-lock-commit flow.
func ExampleManager() {
	lm := hwtwbg.Open(hwtwbg.Options{}) // no background detector: Detect manually
	defer lm.Close()

	t := lm.Begin()
	if err := t.Lock(context.Background(), "table/users", hwtwbg.IX); err != nil {
		panic(err)
	}
	if err := t.Lock(context.Background(), "row/42", hwtwbg.X); err != nil {
		panic(err)
	}
	fmt.Println(lm.Snapshot())
	if err := t.Commit(); err != nil {
		panic(err)
	}
	// Output:
	// row/42(X): Holder((T1, X, NL)) Queue()
	// table/users(IX): Holder((T1, IX, NL)) Queue()
}

// ExampleManager_Detect resolves a deadlock manually and shows which
// transaction was sacrificed.
func ExampleManager_Detect() {
	lm := hwtwbg.Open(hwtwbg.Options{
		// Make T1 precious so T2 is always the victim.
		Cost: func(id hwtwbg.TxnID) float64 { return float64(id) },
	})
	defer lm.Close()
	ctx := context.Background()

	t1, t2 := lm.Begin(), lm.Begin()
	t1.Lock(ctx, "A", hwtwbg.X)
	t2.Lock(ctx, "B", hwtwbg.X)

	done := make(chan error, 2)
	go func() { done <- t1.Lock(ctx, "B", hwtwbg.X) }()
	go func() { done <- t2.Lock(ctx, "A", hwtwbg.X) }()
	for lm.Blocked(t1.ID()) == false || lm.Blocked(t2.ID()) == false {
		time.Sleep(time.Millisecond)
	}

	st := lm.Detect()
	fmt.Printf("aborted %d transaction(s)\n", st.Aborted)
	e1, e2 := <-done, <-done
	fmt.Println("one ErrAborted:", errors.Is(e1, hwtwbg.ErrAborted) != errors.Is(e2, hwtwbg.ErrAborted))
	// Output:
	// aborted 1 transaction(s)
	// one ErrAborted: true
}

// ExampleTxn_TryLock probes a lock without risking a wait.
func ExampleTxn_TryLock() {
	lm := hwtwbg.Open(hwtwbg.Options{})
	defer lm.Close()

	a, b := lm.Begin(), lm.Begin()
	a.Lock(context.Background(), "r", hwtwbg.X)
	ok, _ := b.TryLock("r", hwtwbg.S)
	fmt.Println("granted:", ok)
	// Output:
	// granted: false
}

// ExampleComp demonstrates the compatibility matrix (Table 1 of the
// paper).
func ExampleComp() {
	fmt.Println(hwtwbg.Comp(hwtwbg.S, hwtwbg.IS))
	fmt.Println(hwtwbg.Comp(hwtwbg.IX, hwtwbg.SIX))
	// Output:
	// true
	// false
}

// ExampleConv demonstrates the conversion matrix (Table 2 of the
// paper): holding IX and re-requesting S yields SIX.
func ExampleConv() {
	fmt.Println(hwtwbg.Conv(hwtwbg.IX, hwtwbg.S))
	// Output:
	// SIX
}
