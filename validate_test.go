// Regression tests for validate.go's edge re-verification: each test
// uses testHookAfterCopy to mutate the live tables between the
// snapshot copy-out and the algorithm, so the detector proposes a
// resolution whose evidence has drifted in one specific way, and
// validation must drop it through that branch — W-edge queue adjacency
// changed, ECR-2 first-conflicting member changed, ECR-1 conversion
// evidence gone, cycle resources evaporated entirely. The companion
// torn-snapshot test (TestSnapshotFalseCycle) covers the simplest
// drift, a cycle party cancelling.
package hwtwbg

import (
	"context"
	"errors"
	"testing"
)

// TestValidateWAdjacencyDrift breaks a cycle's W edge without touching
// its H edges: the cycle runs down a queue [T2, T4, T3] and the middle
// waiter T4 — a bystander, not deadlocked — cancels after copy-out.
// Live, From (T2) is still queued in the recorded mode but its
// successor is now T3, not T4, so the W-edge adjacency check fails and
// the resolution is dropped. The deadlock itself is still real (the
// cycle re-forms as T1→T2→T3→T1), so the next activation must resolve
// it — by TDR-2, nobody aborted.
func TestValidateWAdjacencyDrift(t *testing.T) {
	m := Open(Options{Shards: 4, Audit: true})
	defer m.Close()
	bg := context.Background()
	t1, t2, t3, t4 := m.Begin(), m.Begin(), m.Begin(), m.Begin()
	if err := t1.Lock(bg, "q", IS); err != nil {
		t.Fatal(err)
	}
	if err := t3.Lock(bg, "h", X); err != nil {
		t.Fatal(err)
	}
	lockErr := make(chan error, 3)
	go func() { lockErr <- t2.Lock(bg, "q", X) }()
	waitBlocked(t, m, t2.ID())
	ctx4, cancel4 := context.WithCancel(bg)
	defer cancel4()
	err4 := make(chan error, 1)
	go func() { err4 <- t4.Lock(ctx4, "q", S) }()
	waitBlocked(t, m, t4.ID())
	go func() { lockErr <- t3.Lock(bg, "q", S) }()
	waitBlocked(t, m, t3.ID())
	go func() { lockErr <- t1.Lock(bg, "h", S) }()
	waitBlocked(t, m, t1.ID())
	if !m.Deadlocked() {
		t.Fatalf("expected deadlock:\n%s", m.Snapshot())
	}

	m.testHookAfterCopy = func() {
		cancel4()
		if err := <-err4; !errors.Is(err, context.Canceled) {
			t.Errorf("t4.Lock = %v, want context.Canceled", err)
		}
	}
	st := m.Detect()
	m.testHookAfterCopy = nil
	if st.CyclesSearched != 1 || st.FalseCycles != 1 || st.Validations != 1 {
		t.Fatalf("activation = %+v, want the one cycle dropped at validation", st)
	}
	if st.Aborted != 0 || st.Repositioned != 0 {
		t.Fatalf("activation acted on drifted evidence: %+v", st)
	}
	// The drifted cycle was real; the re-formed one must be caught now.
	if !m.Deadlocked() {
		t.Fatalf("deadlock should have survived the dropped resolution:\n%s", m.Snapshot())
	}
	st = m.Detect()
	if st.Repositioned != 1 || st.Aborted != 0 || st.FalseCycles != 0 {
		t.Fatalf("second activation = %+v, want one TDR-2 repositioning", st)
	}
	// Unwind: t3's repositioned S is granted, then commits free h and q.
	if err := <-lockErr; err != nil {
		t.Fatalf("repositioned lock: %v", err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-lockErr; err != nil {
		t.Fatalf("t1's lock: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-lockErr; err != nil {
		t.Fatalf("t2's lock: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	assertAuditClean(t, m)
}

// TestValidateECR2FirstConflictDrift breaks a cycle's ECR-2 H edge by
// changing which queue member conflicts first: the recorded target T2
// cancels, leaving the bystander T4 as A's first conflicting waiter.
// edgeHolds must notice the mismatch (Step 1 stops at the first
// conflict, so an edge to anyone else is different evidence) and drop
// the resolution; T2's departure also dissolved the deadlock, so
// nothing remains to resolve.
func TestValidateECR2FirstConflictDrift(t *testing.T) {
	m := Open(Options{Shards: 4, Audit: true})
	defer m.Close()
	bg := context.Background()
	t1, t2, t4 := m.Begin(), m.Begin(), m.Begin()
	if err := t1.Lock(bg, "A", X); err != nil {
		t.Fatal(err)
	}
	if err := t2.Lock(bg, "B", X); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(bg)
	defer cancel2()
	err2 := make(chan error, 1)
	go func() { err2 <- t2.Lock(ctx2, "A", X) }()
	waitBlocked(t, m, t2.ID())
	err4 := make(chan error, 1)
	go func() { err4 <- t4.Lock(bg, "A", X) }()
	waitBlocked(t, m, t4.ID())
	err1 := make(chan error, 1)
	go func() { err1 <- t1.Lock(bg, "B", X) }()
	waitBlocked(t, m, t1.ID())
	if !m.Deadlocked() {
		t.Fatalf("expected deadlock:\n%s", m.Snapshot())
	}

	m.testHookAfterCopy = func() {
		cancel2()
		if err := <-err2; !errors.Is(err, context.Canceled) {
			t.Errorf("t2.Lock = %v, want context.Canceled", err)
		}
	}
	st := m.Detect()
	m.testHookAfterCopy = nil
	if st.CyclesSearched != 1 || st.FalseCycles != 1 {
		t.Fatalf("activation = %+v, want the one cycle dropped at validation", st)
	}
	if st.Aborted != 0 || st.Repositioned != 0 {
		t.Fatalf("activation acted on drifted evidence: %+v", st)
	}
	// t2's abort freed B for t1; t1's commit then frees A for t4.
	if err := <-err1; err != nil {
		t.Fatalf("t1's lock: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-err4; err != nil {
		t.Fatalf("t4's lock: %v", err)
	}
	if err := t4.Commit(); err != nil {
		t.Fatal(err)
	}
	if evs, _ := m.History(); len(evs) != 0 {
		t.Fatalf("dropped cycle left history events: %v", evs)
	}
	assertAuditClean(t, m)
}

// TestValidateECR1ConversionDrift drifts a cycle built on an ECR-1
// edge: t2 and t3 both hold S on r, t3's X conversion is blocked by
// t2's grant (ECR-1: t2→t3), and t2 waits for B which t3 holds. After
// copy-out t2 cancels; its S grant is released, the X conversion is
// granted, and the recorded ECR-1 evidence — t2 a fellow holder in
// conflict — is gone. Validation must drop the resolution without
// aborting anyone.
func TestValidateECR1ConversionDrift(t *testing.T) {
	m := Open(Options{Shards: 4, Audit: true})
	defer m.Close()
	bg := context.Background()
	t2, t3 := m.Begin(), m.Begin()
	if err := t2.Lock(bg, "r", S); err != nil {
		t.Fatal(err)
	}
	if err := t3.Lock(bg, "r", S); err != nil {
		t.Fatal(err)
	}
	if err := t3.Lock(bg, "B", X); err != nil {
		t.Fatal(err)
	}
	err3 := make(chan error, 1)
	go func() { err3 <- t3.Lock(bg, "r", X) }() // conversion S→X, blocked by t2's S
	waitBlocked(t, m, t3.ID())
	ctx2, cancel2 := context.WithCancel(bg)
	defer cancel2()
	err2 := make(chan error, 1)
	go func() { err2 <- t2.Lock(ctx2, "B", X) }()
	waitBlocked(t, m, t2.ID())
	if !m.Deadlocked() {
		t.Fatalf("expected conversion deadlock:\n%s", m.Snapshot())
	}

	m.testHookAfterCopy = func() {
		cancel2()
		if err := <-err2; !errors.Is(err, context.Canceled) {
			t.Errorf("t2.Lock = %v, want context.Canceled", err)
		}
	}
	st := m.Detect()
	m.testHookAfterCopy = nil
	if st.CyclesSearched != 1 || st.FalseCycles != 1 {
		t.Fatalf("activation = %+v, want the one cycle dropped at validation", st)
	}
	if st.Aborted != 0 || st.Repositioned != 0 {
		t.Fatalf("activation acted on drifted evidence: %+v", st)
	}
	// t2's departure granted the conversion.
	if err := <-err3; err != nil {
		t.Fatalf("t3's conversion: %v", err)
	}
	if got := t3.Mode("r"); got != X {
		t.Fatalf("t3 r mode = %v, want X", got)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	assertAuditClean(t, m)
}

// TestValidateEvaporatedResource drifts a cycle all the way to nothing:
// after copy-out one party cancels, the survivor is granted and
// commits, and both cycle resources are released empty — so validation
// finds no live resource behind the evidence at all and must drop the
// resolution.
func TestValidateEvaporatedResource(t *testing.T) {
	m := Open(Options{Shards: 4, Audit: true})
	defer m.Close()
	bg := context.Background()
	a, b := m.Begin(), m.Begin()
	if err := a.Lock(bg, "x", X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(bg, "y", X); err != nil {
		t.Fatal(err)
	}
	aErr := make(chan error, 1)
	go func() { aErr <- a.Lock(bg, "y", X) }()
	waitBlocked(t, m, a.ID())
	bCtx, cancelB := context.WithCancel(bg)
	defer cancelB()
	bErr := make(chan error, 1)
	go func() { bErr <- b.Lock(bCtx, "x", X) }()
	waitBlocked(t, m, b.ID())
	if !m.Deadlocked() {
		t.Fatalf("expected deadlock:\n%s", m.Snapshot())
	}

	m.testHookAfterCopy = func() {
		cancelB()
		if err := <-bErr; !errors.Is(err, context.Canceled) {
			t.Errorf("b.Lock = %v, want context.Canceled", err)
		}
		// b's abort granted a's pending request; retire a too, so both
		// cycle resources are released with empty queues.
		if err := <-aErr; err != nil {
			t.Errorf("a.Lock = %v, want granted by b's departure", err)
		}
		if err := a.Commit(); err != nil {
			t.Errorf("a.Commit: %v", err)
		}
	}
	st := m.Detect()
	m.testHookAfterCopy = nil
	if st.CyclesSearched != 1 || st.FalseCycles != 1 || st.Validations != 1 {
		t.Fatalf("activation = %+v, want the one cycle dropped at validation", st)
	}
	if st.Aborted != 0 || st.Repositioned != 0 || st.Salvaged != 0 {
		t.Fatalf("activation acted on evaporated evidence: %+v", st)
	}
	if evs, _ := m.History(); len(evs) != 0 {
		t.Fatalf("dropped cycle left history events: %v", evs)
	}
	assertAuditClean(t, m)
}
