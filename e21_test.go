package hwtwbg

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// stallStress runs the E20 contended workload (8 workers, two random
// hot X locks each, real deadlocks throughout) under the given detector
// strategy and returns the manager's lifetime stats plus the worst
// per-activation numbers.
func stallStress(t *testing.T, detector string) (Stats, time.Duration) {
	t.Helper()
	m := Open(Options{Shards: 8, Period: time.Millisecond, Detector: detector, HistorySize: 512})
	defer m.Close()
	const (
		workers = 8
		rounds  = 150
		hotKeys = 6
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for i := 0; i < rounds; i++ {
				tx := m.Begin()
				a := ResourceID(fmt.Sprintf("hot%d", rng.Intn(hotKeys)))
				b := ResourceID(fmt.Sprintf("hot%d", rng.Intn(hotKeys)))
				if err := tx.Lock(ctx, a, X); err != nil {
					tx.Abort()
					continue
				}
				runtime.Gosched()
				if err := tx.Lock(ctx, b, X); err != nil {
					tx.Abort()
					continue
				}
				tx.Commit()
			}
		}(int64(w + 1))
	}
	wg.Wait()

	st := m.Stats()
	var worstActivation time.Duration
	reps, _ := m.Activations()
	for _, r := range reps {
		if r.Total > worstActivation {
			worstActivation = r.Total
		}
	}
	return st, worstActivation
}

// TestE21StallComparison is the EXPERIMENTS.md E21 harness: the same
// deadlock-heavy workload under DetectorSTW and DetectorSnapshot, with
// Stats.STWMax as the worst stall either detector imposed on the grant
// path (the full pause for STW, the longest single-shard copy hold for
// snapshot). The snapshot detector must stall the grant path less than
// stop-the-world does — that is this PR's claim. Run with -v for the
// numbers E21 quotes.
func TestE21StallComparison(t *testing.T) {
	stSTW, worstSTW := stallStress(t, DetectorSTW)
	stSnap, worstSnap := stallStress(t, DetectorSnapshot)

	if stSTW.Runs == 0 || stSnap.Runs == 0 {
		t.Fatalf("detector idle: stw %d runs, snapshot %d runs", stSTW.Runs, stSnap.Runs)
	}
	if stSTW.Aborted == 0 || stSnap.Aborted == 0 {
		t.Fatalf("workload produced no deadlocks: stw %+v, snapshot %+v", stSTW, stSnap)
	}
	t.Logf("stw:      runs=%d cycles=%d aborted=%d stall max=%v mean=%v (worst activation %v)",
		stSTW.Runs, stSTW.CyclesSearched, stSTW.Aborted, stSTW.STWMax,
		stSTW.STWTotal/time.Duration(stSTW.Runs), worstSTW)
	t.Logf("snapshot: runs=%d cycles=%d aborted=%d stall max=%v mean=%v (worst activation %v, false=%d validations=%d)",
		stSnap.Runs, stSnap.CyclesSearched, stSnap.Aborted, stSnap.STWMax,
		stSnap.STWTotal/time.Duration(stSnap.Runs), worstSnap, stSnap.FalseCycles, stSnap.Validations)

	// The headline: the grant-path stall must drop. STW holds every
	// shard for the whole activation (build+search+resolve); the
	// snapshot detector's stall is one shard's copy-out, a strict
	// subset of that work. The gate is on the mean — the max is a
	// single sample and one unlucky preemption mid-copy on a loaded
	// host can inflate it past a lucky STW run (it is logged above and
	// quoted in E21 from quiet runs).
	meanSTW := stSTW.STWTotal / time.Duration(stSTW.Runs)
	meanSnap := stSnap.STWTotal / time.Duration(stSnap.Runs)
	if meanSnap >= meanSTW {
		t.Errorf("mean grant-path stall did not drop: snapshot %v vs stw %v", meanSnap, meanSTW)
	}
	if stSnap.STWMax >= stSTW.STWMax {
		t.Logf("note: max stall sample inflated by scheduling noise (snapshot %v vs stw %v)", stSnap.STWMax, stSTW.STWMax)
	}
}
