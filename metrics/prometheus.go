package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4), hand-rolled so the
// module stays stdlib-only. The writers emit the conventional triplet
// for histograms (…_bucket with cumulative le labels, …_sum, …_count)
// and plain lines for counters and gauges.

// fmtLabels renders a label map as {k="v",…} with keys sorted, or ""
// when empty.
func fmtLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels returns a copy of base with extra added (extra wins).
func mergeLabels(base map[string]string, k, v string) map[string]string {
	out := make(map[string]string, len(base)+1)
	for bk, bv := range base {
		out[bk] = bv
	}
	out[k] = v
	return out
}

// WriteCounter emits one counter sample with a HELP/TYPE header.
func WriteCounter(w io.Writer, name, help string, labels map[string]string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s%s %d\n", name, help, name, name, fmtLabels(labels), v)
}

// WriteCounterSample emits one counter sample without headers (for
// families with several label sets; emit the header once via
// WriteHeader).
func WriteCounterSample(w io.Writer, name string, labels map[string]string, v uint64) {
	fmt.Fprintf(w, "%s%s %d\n", name, fmtLabels(labels), v)
}

// WriteGauge emits one gauge sample with a HELP/TYPE header.
func WriteGauge(w io.Writer, name, help string, labels map[string]string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s%s %.9g\n", name, help, name, name, fmtLabels(labels), v)
}

// WriteHeader emits a HELP/TYPE pair for a metric family.
func WriteHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteHistogram emits a histogram snapshot in Prometheus text format.
// Observed values are multiplied by scale before exposition (pass 1e-9
// for nanosecond observations exposed as seconds, 1 for unit-less
// values). Empty buckets beyond the last non-empty one are elided —
// cumulative counts make trailing all-equal lines redundant — but the
// mandatory le="+Inf" bucket, _sum and _count are always present.
func WriteHistogram(w io.Writer, name, help string, labels map[string]string, s HistogramSnapshot, scale float64) {
	WriteHeader(w, name, help, "histogram")
	last := 0
	for i, b := range s.Buckets {
		if b != 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last && i < NumBuckets-1; i++ {
		cum += s.Buckets[i]
		le := float64(BucketUpper(i)) * scale
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, fmtLabels(mergeLabels(labels, "le", fmt.Sprintf("%.9g", le))), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, fmtLabels(mergeLabels(labels, "le", "+Inf")), s.Count)
	fmt.Fprintf(w, "%s_sum%s %.9g\n", name, fmtLabels(labels), float64(s.Sum)*scale)
	fmt.Fprintf(w, "%s_count%s %d\n", name, fmtLabels(labels), s.Count)
}
