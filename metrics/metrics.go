// Package metrics provides the lock-free instrumentation primitives of
// the hwtwbg lock manager: cache-line-friendly atomic counters and
// log₂-bucketed histograms that cost a handful of atomic adds on the
// hot path and never allocate.
//
// The design follows the per-core stats counters of production
// transaction engines (Gray & Reuter's lock-manager accounting;
// ddtxn's per-worker counters): writers touch only their own shard's
// padded metric block, so counting never introduces cross-core cache
// traffic beyond what the protected data structure already pays, and
// readers assemble a consistent-enough snapshot from atomic loads
// without stopping anything.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use. Counters meant to be updated from different cores
// should live in separately allocated (or padded) blocks; see the
// hwtwbg shard metrics for the intended layout.
//
// hwlint:atomics-only — fields may only be touched via their methods.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// NumBuckets is the number of histogram buckets. Bucket 0 counts exact
// zeros; bucket i (1 ≤ i < NumBuckets-1) counts values v with
// 2^(i-1) ≤ v < 2^i; the last bucket is the overflow for everything
// ≥ 2^(NumBuckets-2). With 34 buckets a nanosecond-valued histogram
// spans 1ns to ~4.3s before overflowing — wider than any sane lock
// wait — and a queue-depth histogram wastes only unreachable tail
// buckets.
const NumBuckets = 34

// Histogram is a log₂-bucketed histogram of non-negative integer
// observations (typically nanoseconds or queue depths). Observe is
// three atomic adds and no allocation; the zero value is ready to use.
//
// hwlint:atomics-only — fields may only be touched via their methods.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	i := bits.Len64(v) // 0 for v == 0, else floor(log2(v)) + 1
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// BucketUpper returns the inclusive upper bound of bucket i; the last
// bucket is unbounded and returns math.MaxUint64.
func BucketUpper(i int) uint64 {
	if i >= NumBuckets-1 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot returns an atomic-read copy of the histogram. Concurrent
// observers may land between the bucket loads, so the snapshot is not a
// point-in-time cut, but every recorded value appears in at most one
// snapshot bucket and counters never run backwards.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a plain-value copy of a Histogram, suitable for
// merging, quantile estimation and exposition.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64
}

// Merge adds o into s bucket by bucket.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0, 1]): the inclusive upper bound of the first bucket at which the
// cumulative count reaches q·Count. Empty histograms return 0.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= target {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// String renders a compact ASCII histogram, one line per non-empty
// bucket, for debug pages and experiment write-ups.
func (s HistogramSnapshot) String() string {
	if s.Count == 0 {
		return "(empty)"
	}
	var max uint64
	for _, b := range s.Buckets {
		if b > max {
			max = b
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d sum=%d mean=%.1f\n", s.Count, s.Sum, s.Mean())
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		bar := int(n * 40 / max)
		if bar == 0 {
			bar = 1
		}
		var hi string
		if i == NumBuckets-1 {
			hi = "+Inf"
		} else {
			hi = fmt.Sprintf("%d", BucketUpper(i))
		}
		fmt.Fprintf(&b, "  ≤%-12s %8d %s\n", hi, n, strings.Repeat("#", bar))
	}
	return b.String()
}
