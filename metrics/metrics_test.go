package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatal("zero value must read 0")
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestBucketIndexAndBounds(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 32, NumBuckets - 1}, {math.MaxUint64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must be <= the upper bound of its own bucket and >
	// the upper bound of the previous one.
	for _, v := range []uint64{0, 1, 2, 3, 100, 1e6, 1e9} {
		i := bucketIndex(v)
		if v > BucketUpper(i) {
			t.Errorf("v=%d > upper(%d)=%d", v, i, BucketUpper(i))
		}
		if i > 0 && v <= BucketUpper(i-1) {
			t.Errorf("v=%d <= upper(%d)=%d", v, i-1, BucketUpper(i-1))
		}
	}
	if BucketUpper(NumBuckets-1) != math.MaxUint64 {
		t.Fatal("last bucket must be unbounded")
	}
}

func TestHistogramObserveSnapshotMerge(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 1, 3, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1005 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if s.Buckets[0] != 1 || s.Buckets[1] != 2 || s.Buckets[2] != 1 || s.Buckets[10] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	if m := s.Mean(); m != 201 {
		t.Fatalf("mean = %v", m)
	}
	var total HistogramSnapshot
	total.Merge(s)
	total.Merge(s)
	if total.Count != 10 || total.Sum != 2010 || total.Buckets[1] != 4 {
		t.Fatalf("merged = %+v", total)
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
	for i := 0; i < 90; i++ {
		h.Observe(10) // bucket 4, upper 15
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket 10, upper 1023
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 15 {
		t.Fatalf("p50 = %d, want 15", q)
	}
	if q := s.Quantile(0.99); q != 1023 {
		t.Fatalf("p99 = %d, want 1023", q)
	}
	// Clamping.
	if q := s.Quantile(-1); q != 15 {
		t.Fatalf("q<0 = %d", q)
	}
	if q := s.Quantile(2); q != 1023 {
		t.Fatalf("q>1 = %d", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, each = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(uint64(g*each + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*each {
		t.Fatalf("count = %d", s.Count)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().String(); got != "(empty)" {
		t.Fatalf("empty = %q", got)
	}
	h.Observe(5)
	out := h.Snapshot().String()
	if !strings.Contains(out, "count=1") || !strings.Contains(out, "#") {
		t.Fatalf("out = %q", out)
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	var h Histogram
	h.Observe(1000) // 1µs in ns
	h.Observe(0)
	var b strings.Builder
	WriteHistogram(&b, "test_seconds", "help text", map[string]string{"shard": "0"}, h.Snapshot(), 1e-9)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="+Inf",shard="0"} 2`,
		`test_seconds_count{shard="0"} 2`,
		`test_seconds_sum{shard="0"} 1e-06`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative counts: the bucket containing 0 must already count 1.
	if !strings.Contains(out, `test_seconds_bucket{le="0",shard="0"} 1`) {
		t.Errorf("zero bucket missing in:\n%s", out)
	}
}

func TestWriteCounterAndGauge(t *testing.T) {
	var b strings.Builder
	WriteCounter(&b, "c_total", "a counter", nil, 7)
	WriteGauge(&b, "g", "a gauge", map[string]string{"x": "y"}, 1.5)
	out := b.String()
	for _, want := range []string{
		"# TYPE c_total counter", "c_total 7",
		"# TYPE g gauge", `g{x="y"} 1.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
