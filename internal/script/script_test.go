package script

import (
	"strings"
	"testing"

	"hwtwbg/internal/lock"
)

const example41Script = `
# Example 4.1 of the paper.
lock T1 R1 IX
lock T2 R1 IS
lock T3 R1 IX
lock T4 R1 IS
lock T7 R2 IS
wait T2 R1 S      # conversion IS->S blocks
wait T1 R1 S      # conversion IX->SIX blocks
wait T5 R1 IX
wait T6 R1 S
wait T7 R1 IX
wait T8 R2 X
wait T9 R2 IX
wait T3 R2 S
wait T4 R2 X
dump
detect
dump
`

func TestParseBasics(t *testing.T) {
	stmts, err := ParseString("lock T1 R1 IX\nwait T2 R1 X # trailing\n\ncommit T1\nabort T2\ncost T3 2.5\ndetect\ndump\ngraph\nreq T4 R2 S\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 9 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
	if stmts[0].Op != OpLock || stmts[0].Txn != 1 || stmts[0].Res != "R1" || stmts[0].Mode != lock.IX {
		t.Fatalf("stmt[0] = %+v", stmts[0])
	}
	if stmts[4].Op != OpCost || stmts[4].Cost != 2.5 {
		t.Fatalf("stmt[4] = %+v", stmts[4])
	}
	if stmts[8].Op != OpReq {
		t.Fatalf("stmt[8] = %+v", stmts[8])
	}
	if got := stmts[0].String(); got != "lock T1 R1 IX" {
		t.Errorf("String = %q", got)
	}
	if got := stmts[2].String(); got != "commit T1" {
		t.Errorf("String = %q", got)
	}
	if got := stmts[4].String(); got != "cost T3 2.5" {
		t.Errorf("String = %q", got)
	}
	if got := stmts[5].String(); got != "detect" {
		t.Errorf("String = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"frobnicate T1",
		"lock T1 R1",
		"lock X1 R1 S",
		"lock T0 R1 S",
		"lock Tx R1 S",
		"lock T1 R1 Q",
		"commit",
		"commit T1 extra",
		"cost T1",
		"cost T1 zebra",
		"detect now",
		"dump it",
		"graph all",
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) should fail", bad)
		}
	}
}

func TestExecutorExample41(t *testing.T) {
	stmts, err := ParseString(example41Script)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	e := NewExecutor(&out)
	if err := e.Run(stmts); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	wantBefore := "R2(IS): Holder((T7, IS, NL)) Queue((T8, X) (T9, IX) (T3, S) (T4, X))"
	wantAfter := "R2(IX): Holder((T9, IX, NL) (T7, IS, NL)) Queue((T3, S) (T8, X) (T4, X))"
	if !strings.Contains(s, wantBefore) {
		t.Errorf("missing pre-detect state in:\n%s", s)
	}
	if !strings.Contains(s, wantAfter) {
		t.Errorf("missing post-detect state in:\n%s", s)
	}
	if !strings.Contains(s, "aborted=[]") {
		t.Errorf("Example 4.1 must resolve without aborts:\n%s", s)
	}
}

func TestExecutorExpectationFailures(t *testing.T) {
	e := NewExecutor(nil)
	stmts, _ := ParseString("lock T1 R1 X\nlock T2 R1 X\n")
	if err := e.Run(stmts); err == nil || !strings.Contains(err.Error(), "expected grant") {
		t.Fatalf("err = %v", err)
	}
	e2 := NewExecutor(nil)
	stmts2, _ := ParseString("wait T1 R1 X\n")
	if err := e2.Run(stmts2); err == nil || !strings.Contains(err.Error(), "expected block") {
		t.Fatalf("err = %v", err)
	}
	// Table errors propagate with line numbers.
	e3 := NewExecutor(nil)
	stmts3, _ := ParseString("lock T1 R1 X\nwait T2 R1 X\nreq T2 R2 S\n")
	if err := e3.Run(stmts3); err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v", err)
	}
	// Commit while blocked propagates too.
	e4 := NewExecutor(nil)
	stmts4, _ := ParseString("lock T1 R1 X\nwait T2 R1 X\ncommit T2\n")
	if err := e4.Run(stmts4); err == nil {
		t.Fatal("commit of blocked txn must fail")
	}
}

func TestExecutorEchoAndGraph(t *testing.T) {
	var out strings.Builder
	e := NewExecutor(&out)
	e.Echo = true
	stmts, _ := ParseString("lock T1 R1 X\nwait T2 R1 S\ngraph\ncommit T1\nabort T2\ncost T2 3\n")
	if err := e.Run(stmts); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"> lock T1 R1 X", "granted", "blocked", "T1->T2[H@R1]", "grant T2+=S@R1"} {
		if !strings.Contains(s, want) {
			t.Errorf("echo output missing %q:\n%s", want, s)
		}
	}
	if e.Costs.Cost(2) != 3 {
		t.Error("cost statement not applied")
	}
}

func TestExecutorNilOut(t *testing.T) {
	e := NewExecutor(nil)
	stmts, _ := ParseString("lock T1 R1 S\ndump\ngraph\ndetect\n")
	if err := e.Run(stmts); err != nil {
		t.Fatal(err)
	}
}
