// Package script implements a small line-oriented scenario language for
// describing lock-table histories — the situations the paper prints in
// its examples — so they can be replayed by tests and the command-line
// tools (lockstep, twbgdot).
//
// Syntax (one statement per line; '#' starts a comment):
//
//	lock   T1 R1 IX    request that must be granted immediately
//	wait   T3 R1 S     request that must block
//	req    T5 R1 IX    request with no expectation
//	commit T1          commit (release all locks)
//	abort  T2          abort
//	cost   T3 1.5      set the victim cost of T3
//	detect             run one periodic detection-resolution activation
//	dump               print the lock table in the paper's notation
//	graph              print the H/W-TWBG edges
//
// Transactions are written T<n>; resources are arbitrary words; modes
// are the paper's spellings (IS, IX, S, SIX, X).
package script

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

// Op is a statement kind.
type Op uint8

// Statement kinds.
const (
	OpLock Op = iota // request, expect grant
	OpWait           // request, expect block
	OpReq            // request, no expectation
	OpCommit
	OpAbort
	OpCost
	OpDetect
	OpDump
	OpGraph
)

var opNames = map[Op]string{
	OpLock: "lock", OpWait: "wait", OpReq: "req", OpCommit: "commit",
	OpAbort: "abort", OpCost: "cost", OpDetect: "detect", OpDump: "dump",
	OpGraph: "graph",
}

// String returns the statement keyword.
func (o Op) String() string { return opNames[o] }

// Stmt is one parsed statement.
type Stmt struct {
	Op   Op
	Txn  table.TxnID
	Res  table.ResourceID
	Mode lock.Mode
	Cost float64
	Line int
}

// String reassembles the statement's source form.
func (s Stmt) String() string {
	switch s.Op {
	case OpLock, OpWait, OpReq:
		return fmt.Sprintf("%v %v %s %v", s.Op, s.Txn, string(s.Res), s.Mode)
	case OpCommit, OpAbort:
		return fmt.Sprintf("%v %v", s.Op, s.Txn)
	case OpCost:
		return fmt.Sprintf("%v %v %g", s.Op, s.Txn, s.Cost)
	default:
		return s.Op.String()
	}
}

// Parse reads a scenario.
func Parse(r io.Reader) ([]Stmt, error) {
	var out []Stmt
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		st, err := parseStmt(fields)
		if err != nil {
			return nil, fmt.Errorf("script: line %d: %w", lineNo, err)
		}
		st.Line = lineNo
		out = append(out, st)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("script: %w", err)
	}
	return out, nil
}

// ParseString parses a scenario held in a string.
func ParseString(s string) ([]Stmt, error) { return Parse(strings.NewReader(s)) }

func parseStmt(fields []string) (Stmt, error) {
	var st Stmt
	switch fields[0] {
	case "lock", "wait", "req":
		switch fields[0] {
		case "lock":
			st.Op = OpLock
		case "wait":
			st.Op = OpWait
		default:
			st.Op = OpReq
		}
		if len(fields) != 4 {
			return st, fmt.Errorf("%s wants: %s T<n> <resource> <mode>", fields[0], fields[0])
		}
		txn, err := parseTxn(fields[1])
		if err != nil {
			return st, err
		}
		mode, err := lock.Parse(fields[3])
		if err != nil {
			return st, err
		}
		st.Txn, st.Res, st.Mode = txn, table.ResourceID(fields[2]), mode
	case "commit", "abort":
		if fields[0] == "commit" {
			st.Op = OpCommit
		} else {
			st.Op = OpAbort
		}
		if len(fields) != 2 {
			return st, fmt.Errorf("%s wants: %s T<n>", fields[0], fields[0])
		}
		txn, err := parseTxn(fields[1])
		if err != nil {
			return st, err
		}
		st.Txn = txn
	case "cost":
		st.Op = OpCost
		if len(fields) != 3 {
			return st, fmt.Errorf("cost wants: cost T<n> <value>")
		}
		txn, err := parseTxn(fields[1])
		if err != nil {
			return st, err
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return st, fmt.Errorf("bad cost %q", fields[2])
		}
		st.Txn, st.Cost = txn, v
	case "detect":
		st.Op = OpDetect
	case "dump":
		st.Op = OpDump
	case "graph":
		st.Op = OpGraph
	default:
		return st, fmt.Errorf("unknown statement %q", fields[0])
	}
	if len(fields) > 1 && (st.Op == OpDetect || st.Op == OpDump || st.Op == OpGraph) {
		return st, fmt.Errorf("%s takes no arguments", fields[0])
	}
	return st, nil
}

func parseTxn(s string) (table.TxnID, error) {
	if !strings.HasPrefix(s, "T") {
		return 0, fmt.Errorf("bad transaction %q (want T<n>)", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad transaction %q (want T<n>)", s)
	}
	return table.TxnID(n), nil
}
