package script

import (
	"fmt"
	"io"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

// Executor replays a scenario against a fresh lock table, checking the
// grant/block expectations of lock and wait statements and writing any
// dump/graph/detect output to Out.
type Executor struct {
	Table *table.Table
	Costs *detect.CostTable
	// Out receives dump, graph and detect reports; nil discards them.
	Out io.Writer
	// Echo additionally prints each statement and its outcome.
	Echo bool
}

// NewExecutor returns an executor with a fresh table and a uniform cost
// table (default cost 1).
func NewExecutor(out io.Writer) *Executor {
	return &Executor{Table: table.New(), Costs: detect.NewCostTable(1), Out: out}
}

func (e *Executor) printf(format string, args ...any) {
	if e.Out != nil {
		fmt.Fprintf(e.Out, format, args...)
	}
}

// Run replays the statements, stopping at the first failed expectation
// or table error.
func (e *Executor) Run(stmts []Stmt) error {
	for _, st := range stmts {
		if err := e.Step(st); err != nil {
			return err
		}
	}
	return nil
}

// Step executes one statement.
func (e *Executor) Step(st Stmt) error {
	if e.Echo {
		e.printf("> %v\n", st)
	}
	switch st.Op {
	case OpLock, OpWait, OpReq:
		granted, err := e.Table.Request(st.Txn, st.Res, st.Mode)
		if err != nil {
			return fmt.Errorf("line %d: %v: %w", st.Line, st, err)
		}
		if st.Op == OpLock && !granted {
			return fmt.Errorf("line %d: %v: expected grant but the request blocked", st.Line, st)
		}
		if st.Op == OpWait && granted {
			return fmt.Errorf("line %d: %v: expected block but the request was granted", st.Line, st)
		}
		if e.Echo {
			if granted {
				e.printf("  granted\n")
			} else {
				e.printf("  blocked\n")
			}
		}
	case OpCommit:
		grants, err := e.Table.Release(st.Txn)
		if err != nil {
			return fmt.Errorf("line %d: %v: %w", st.Line, st, err)
		}
		e.echoGrants(grants)
	case OpAbort:
		e.echoGrants(e.Table.Abort(st.Txn))
	case OpCost:
		e.Costs.Set(st.Txn, st.Cost)
	case OpDetect:
		res := detect.New(e.Table, detect.Config{Costs: e.Costs}).Run()
		e.printf("detect: cycles=%d aborted=%v salvaged=%v repositioned=%v granted=%v\n",
			res.CyclesSearched, res.Aborted, res.Salvaged, res.Repositioned, res.Granted)
	case OpDump:
		e.printf("%s", e.Table.String())
	case OpGraph:
		g := twbg.Build(e.Table)
		for _, edge := range g.Edges() {
			e.printf("%v\n", edge)
		}
		if cycles := g.Cycles(64); len(cycles) > 0 {
			e.printf("cycles: %d\n", len(cycles))
		}
	default:
		return fmt.Errorf("line %d: unhandled op %v", st.Line, st.Op)
	}
	return nil
}

func (e *Executor) echoGrants(grants []table.Grant) {
	if !e.Echo {
		return
	}
	for _, g := range grants {
		e.printf("  grant %v\n", g)
	}
}
