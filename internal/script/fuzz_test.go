package script

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics, that whatever parses
// re-parses identically through Stmt.String, and that the executor
// survives any parsable input (expectation failures and table errors
// are fine; crashes are not).
func FuzzParse(f *testing.F) {
	f.Add("lock T1 R1 IX\nwait T2 R1 X\ncommit T1\n")
	f.Add("# comment\nreq T3 R2 SIX\nabort T3\ndetect\ndump\ngraph\n")
	f.Add("cost T9 2.25\nlock T9 a-b.c X\n")
	f.Add("lock T1 R1 S # with trailing comment\n")
	f.Add("wait\nT1\n\n\nlock T1 R1")
	f.Fuzz(func(t *testing.T, input string) {
		stmts, err := ParseString(input)
		if err != nil {
			return
		}
		// Round trip: the String form of every statement must parse
		// back to an equivalent statement.
		var b strings.Builder
		for _, st := range stmts {
			b.WriteString(st.String())
			b.WriteString("\n")
		}
		again, err := ParseString(b.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", b.String(), err)
		}
		if len(again) != len(stmts) {
			t.Fatalf("re-parse count %d != %d", len(again), len(stmts))
		}
		for i := range stmts {
			a, c := stmts[i], again[i]
			if a.Op != c.Op || a.Txn != c.Txn || a.Res != c.Res || a.Mode != c.Mode || a.Cost != c.Cost {
				t.Fatalf("round trip mismatch: %+v vs %+v", a, c)
			}
		}
		// The executor must not panic on any parsable script.
		e := NewExecutor(nil)
		_ = e.Run(stmts)
	})
}
