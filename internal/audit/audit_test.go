package audit

import (
	"strings"
	"testing"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

// deadlockedPair builds the canonical two-transaction cross deadlock:
// T1 holds A and waits for B, T2 holds B and waits for A, plus T4
// holding C with T5 queued behind it (blocked but not deadlocked).
func deadlockedPair(t *testing.T) *table.Table {
	t.Helper()
	tb := table.New()
	mustReq := func(txn table.TxnID, rid table.ResourceID, m lock.Mode, wantGranted bool) {
		t.Helper()
		g, err := tb.Request(txn, rid, m)
		if err != nil {
			t.Fatalf("Request(%v,%v,%v): %v", txn, rid, m, err)
		}
		if g != wantGranted {
			t.Fatalf("Request(%v,%v,%v) granted=%v, want %v", txn, rid, m, g, wantGranted)
		}
	}
	mustReq(1, "A", lock.X, true)
	mustReq(2, "B", lock.X, true)
	mustReq(1, "B", lock.X, false)
	mustReq(2, "A", lock.X, false)
	mustReq(4, "C", lock.X, true)
	mustReq(5, "C", lock.X, false)
	return tb
}

func TestChecksCleanOnRealDeadlock(t *testing.T) {
	tb := deadlockedPair(t)
	g := twbg.Build(tb)
	if vs := CheckGraph(g); len(vs) != 0 {
		t.Errorf("CheckGraph on a Build'd graph: %v", vs)
	}
	if vs := CheckTables([]*table.Table{tb}); len(vs) != 0 {
		t.Errorf("CheckTables on a valid table: %v", vs)
	}
	// The genuine resolution: the detector aborts T2, whose cycle is
	// T1 -(H@B)-> ... in either orientation; use the edge set Build saw.
	rs := []detect.Resolution{{
		Victim: 2,
		Cycle: []detect.CycleEdge{
			{From: 1, To: 2, Resource: "A", Mode: lock.X},
			{From: 2, To: 1, Resource: "B", Mode: lock.X},
		},
	}}
	if vs := CheckResolutions(g, tb, rs); len(vs) != 0 {
		t.Errorf("CheckResolutions on the genuine cycle: %v", vs)
	}
	// Resolve it the way the detector would and re-check acyclicity.
	post := tb.Clone()
	post.Abort(2)
	if vs := CheckAcyclic(post); len(vs) != 0 {
		t.Errorf("CheckAcyclic after aborting the victim: %v", vs)
	}
}

func TestCheckAcyclicFlagsSurvivingCycle(t *testing.T) {
	tb := deadlockedPair(t)
	vs := CheckAcyclic(tb)
	if len(vs) != 1 || vs[0].Rule != "acyclic" {
		t.Fatalf("CheckAcyclic on a deadlocked table = %v, want one acyclic violation", vs)
	}
}

func TestCheckTablesFlagsDoubleWait(t *testing.T) {
	// T2 waits in two shards at once — impossible for a sequential
	// transaction (Axiom 1), but each shard on its own looks fine.
	tb1 := table.New()
	tb1.Request(1, "A", lock.X)
	tb1.Request(2, "A", lock.X)
	tb2 := table.New()
	tb2.Request(3, "B", lock.X)
	tb2.Request(2, "B", lock.X)
	vs := CheckTables([]*table.Table{tb1, tb2})
	if len(vs) != 1 || vs[0].Rule != "single-wait" {
		t.Fatalf("CheckTables on a double-waiting txn = %v, want one single-wait violation", vs)
	}
}

func TestCheckResolutionsFlagsFabricatedCycles(t *testing.T) {
	tb := deadlockedPair(t)
	g := twbg.Build(tb)
	cases := []struct {
		name string
		rs   []detect.Resolution
		want string // substring of some violation detail
	}{
		{"no evidence", []detect.Resolution{{Victim: 2}}, "no cycle evidence"},
		{"not closed", []detect.Resolution{{Victim: 2, Cycle: []detect.CycleEdge{
			{From: 1, To: 2, Resource: "A", Mode: lock.X},
			{From: 1, To: 2, Resource: "B", Mode: lock.X},
		}}}, "not closed"},
		{"unknown vertex", []detect.Resolution{{Victim: 9, Cycle: []detect.CycleEdge{
			{From: 9, To: 1, Resource: "A", Mode: lock.X},
			{From: 1, To: 9, Resource: "B", Mode: lock.X},
		}}}, "not a vertex"},
		{"not deadlocked", []detect.Resolution{{Victim: 5, Cycle: []detect.CycleEdge{
			{From: 4, To: 5, Resource: "C", Mode: lock.X},
			{From: 5, To: 4, Resource: "C", Mode: lock.X},
		}}}, "not in the oracle's deadlock set"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vs := CheckResolutions(g, tb, tc.rs)
			for _, v := range vs {
				if v.Rule == "genuine-cycle" && strings.Contains(v.Detail, tc.want) {
					return
				}
			}
			t.Fatalf("violations %v contain no genuine-cycle violation matching %q", vs, tc.want)
		})
	}
}

func TestReportString(t *testing.T) {
	clean := Report{Seq: 1, Detector: "stw"}
	if !clean.Ok() || !strings.Contains(clean.String(), "ok") {
		t.Fatalf("clean report: Ok=%v String=%q", clean.Ok(), clean.String())
	}
	bad := Report{Seq: 2, Detector: "snapshot", Violations: []Violation{{Rule: "acyclic", Detail: "boom"}}}
	if bad.Ok() {
		t.Fatal("report with violations claims Ok")
	}
	for _, want := range []string{"snapshot", "acyclic", "boom", "1 violation"} {
		if !strings.Contains(bad.String(), want) {
			t.Fatalf("bad report string %q missing %q", bad.String(), want)
		}
	}
}
