// Package audit re-verifies the paper's proved properties on live data
// structures. The detector's correctness rests on theorems (cycles in
// the H/W-TWBG are exactly the deadlocks — Theorem 1; the TDR resolves
// every cycle, TDR-2 without creating new ones — Theorem 4.1 / Lemma
// 4.1; queues keep the UPR and total-mode invariants — Theorem 3.1) and
// the code carries them as comments. This package carries them as
// checks: after every detector activation (build tag `invariants` +
// Options.Audit on the manager) each property is recomputed from
// scratch — the graph rebuilt by the ECR rules, deadlocks re-derived by
// the Definition-1 oracle, tables re-validated — and any divergence
// between what the detector did and what the theorems allow becomes a
// structured Violation that fails the test run.
//
// The checks are deliberately independent of the detector's own
// bookkeeping: they never read its TST, cursors or cost cache, only the
// tables and the resolutions it reported.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

// Violation is one broken invariant.
type Violation struct {
	// Rule names the property: "w-successor", "trrp-cover",
	// "table-invariant", "single-wait", "genuine-cycle", "acyclic".
	Rule string
	// Detail says what was observed.
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Report is one activation's audit outcome.
type Report struct {
	Seq        int    // 1-based audited-activation number
	Detector   string // "stw" or "snapshot"
	Violations []Violation
}

// Ok reports whether every property held.
func (r Report) Ok() bool { return len(r.Violations) == 0 }

func (r Report) String() string {
	if r.Ok() {
		return fmt.Sprintf("audit %d (%s): ok", r.Seq, r.Detector)
	}
	parts := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		parts[i] = v.String()
	}
	return fmt.Sprintf("audit %d (%s): %d violation(s): %s", r.Seq, r.Detector, len(r.Violations), strings.Join(parts, "; "))
}

// CheckGraph verifies the H/W-TWBG's structural lemmas on a graph built
// by the ECR rules:
//
//   - every transaction has at most one W successor (a transaction
//     waits in at most one queue, with one adjacent follower — the
//     property behind Lemma 1's "no W-only cycle");
//   - the TRRP decomposition covers the graph as Lemma 4.1 requires:
//     every TRRP is one H edge followed by the W chain below it in the
//     same resource's queue, and every edge lies on at least one TRRP.
func CheckGraph(g *twbg.Graph) []Violation {
	var out []Violation
	wOut := map[table.TxnID]int{}
	for _, e := range g.Edges() {
		if e.Label == twbg.W {
			wOut[e.From]++
		}
	}
	for _, v := range g.Vertices() {
		if wOut[v] > 1 {
			out = append(out, Violation{"w-successor", fmt.Sprintf("%v has %d W successors, want at most 1", v, wOut[v])})
		}
	}

	type ekey struct {
		from, to table.TxnID
		label    twbg.Label
		resource table.ResourceID
	}
	key := func(e twbg.Edge) ekey { return ekey{e.From, e.To, e.Label, e.Resource} }
	covered := map[ekey]bool{}
	for _, p := range g.TRRPs() {
		if len(p.Edges) == 0 || p.Edges[0].Label != twbg.H {
			out = append(out, Violation{"trrp-cover", fmt.Sprintf("TRRP %v does not start with an H edge", p)})
			continue
		}
		covered[key(p.Edges[0])] = true
		prev := p.Edges[0]
		for _, e := range p.Edges[1:] {
			if e.Label != twbg.W || e.Resource != p.Resource || e.From != prev.To {
				out = append(out, Violation{"trrp-cover", fmt.Sprintf("TRRP %v is not an H edge followed by its queue's W chain (edge %v)", p, e)})
			}
			covered[key(e)] = true
			prev = e
		}
	}
	for _, e := range g.Edges() {
		if !covered[key(e)] {
			out = append(out, Violation{"trrp-cover", fmt.Sprintf("edge %v lies on no TRRP; the decomposition does not cover the graph", e)})
		}
	}
	return out
}

// CheckTables verifies the queue invariants on every shard table —
// blocked-prefix shape, total-mode fold, pairwise-compatible grants, no
// stranded grantable upgrader (Theorem 3.1), UPR positioning, wait
// bookkeeping (table.Validate) — plus the cross-shard half of Axiom 1:
// a transaction waits in at most one shard.
func CheckTables(tables []*table.Table) []Violation {
	var out []Violation
	waits := map[table.TxnID]int{}
	var ids []table.TxnID
	for i, tb := range tables {
		if err := tb.Validate(); err != nil {
			out = append(out, Violation{"table-invariant", fmt.Sprintf("shard %d: %v", i, err)})
		}
		for _, id := range tb.Txns() {
			if _, _, ok := tb.WaitingOn(id); ok {
				if waits[id] == 0 {
					ids = append(ids, id)
				}
				waits[id]++
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if waits[id] > 1 {
			out = append(out, Violation{"single-wait", fmt.Sprintf("%v waits in %d shards; a sequential transaction has at most one outstanding request (Axiom 1)", id, waits[id])})
		}
	}
	return out
}

// CheckResolutions verifies that every cycle the detector reported was
// a genuine deadlock of the pre-activation state:
//
//   - the cycle's edge list is closed (each To is the next From);
//   - its transactions are vertices of the independently rebuilt
//     pre-activation graph, and members of the Definition-1 oracle's
//     deadlock set computed on pre (Theorem 1: cycle ⇔ deadlock) —
//     including cycles found after earlier TDR-2 repositionings, since
//     repositioning must not manufacture deadlocked-looking states
//     (Lemma 4.1);
//   - the first cycle's edges exist verbatim in the pre-activation
//     graph (later cycles may legitimately ride on repositioned W
//     edges, so only their vertices are checked).
//
// pre may be nil when no pre-activation table is available; the oracle
// check is then skipped.
func CheckResolutions(g *twbg.Graph, pre *table.Table, rs []detect.Resolution) []Violation {
	var out []Violation
	var dead map[table.TxnID]bool
	if pre != nil {
		dead = map[table.TxnID]bool{}
		for _, id := range twbg.DeadlockSet(pre) {
			dead[id] = true
		}
	}
	verts := map[table.TxnID]bool{}
	for _, v := range g.Vertices() {
		verts[v] = true
	}
	for i, r := range rs {
		if len(r.Cycle) == 0 {
			out = append(out, Violation{"genuine-cycle", fmt.Sprintf("resolution %d (victim %v) carries no cycle evidence", i, r.Victim)})
			continue
		}
		for j, e := range r.Cycle {
			next := r.Cycle[(j+1)%len(r.Cycle)]
			if e.To != next.From {
				out = append(out, Violation{"genuine-cycle", fmt.Sprintf("resolution %d: edge list not closed at %v->%v / %v->%v", i, e.From, e.To, next.From, next.To)})
			}
			if !verts[e.From] {
				out = append(out, Violation{"genuine-cycle", fmt.Sprintf("resolution %d: %v is not a vertex of the pre-activation graph", i, e.From)})
			}
			if dead != nil && !dead[e.From] {
				out = append(out, Violation{"genuine-cycle", fmt.Sprintf("resolution %d: %v is not in the oracle's deadlock set; the reported cycle is not a genuine deadlock", i, e.From)})
			}
			if i == 0 && !g.HasEdge(e.From, e.To) {
				out = append(out, Violation{"genuine-cycle", fmt.Sprintf("resolution 0: edge %v->%v does not exist in the pre-activation graph", e.From, e.To)})
			}
		}
	}
	return out
}

// CheckAcyclic verifies Theorem 4.1's outcome: after the activation
// applied its resolutions (aborts and TDR-2 repositionings), the
// rebuilt H/W-TWBG contains no cycle.
func CheckAcyclic(src twbg.Source) []Violation {
	if twbg.Build(src).HasCycle() {
		return []Violation{{"acyclic", "post-resolution H/W-TWBG still contains a cycle; the TDR did not resolve every deadlock (Theorem 4.1)"}}
	}
	return nil
}
