// Package mgl implements the multiple granularity locking protocol on
// top of the lock table: a resource hierarchy (e.g. database -> area ->
// file -> record) and a Locker that acquires the intention locks the MGL
// protocol of Gray requires along the root-to-target path.
//
// Section 2 of the paper claims its model "integrates without changes
// into a system that supports a resource hierarchy"; this package is that
// integration. Intention locks are ordinary IS/IX locks in the same
// table, so deadlocks through intention locks are detected and resolved
// by the same H/W-TWBG machinery.
package mgl

import (
	"errors"
	"fmt"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

// Errors reported by the package.
var (
	ErrUnknownNode   = errors.New("mgl: unknown node")
	ErrDuplicateNode = errors.New("mgl: node already defined")
	ErrNoParent      = errors.New("mgl: parent not defined")
	ErrBusy          = errors.New("mgl: transaction has a pending acquisition; call Resume")
	ErrNotPending    = errors.New("mgl: transaction has no pending acquisition")
	ErrStillBlocked  = errors.New("mgl: transaction is still blocked")
)

// Hierarchy is a forest of lockable resources. Nodes are added
// parent-first; it is immutable while Lockers use it.
type Hierarchy struct {
	parent map[table.ResourceID]table.ResourceID
	roots  []table.ResourceID
}

// NewHierarchy returns an empty hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{parent: make(map[table.ResourceID]table.ResourceID)}
}

// AddRoot defines a top-level resource (e.g. the database).
func (h *Hierarchy) AddRoot(id table.ResourceID) error {
	if _, ok := h.parent[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	h.parent[id] = ""
	h.roots = append(h.roots, id)
	return nil
}

// Add defines a resource under an existing parent.
func (h *Hierarchy) Add(id, parent table.ResourceID) error {
	if _, ok := h.parent[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	if _, ok := h.parent[parent]; !ok {
		return fmt.Errorf("%w: %s", ErrNoParent, parent)
	}
	h.parent[id] = parent
	return nil
}

// Roots returns the top-level resources in definition order.
func (h *Hierarchy) Roots() []table.ResourceID {
	return append([]table.ResourceID(nil), h.roots...)
}

// Contains reports whether id is defined.
func (h *Hierarchy) Contains(id table.ResourceID) bool {
	_, ok := h.parent[id]
	return ok
}

// Path returns the root-to-id chain, inclusive.
func (h *Hierarchy) Path(id table.ResourceID) ([]table.ResourceID, error) {
	if _, ok := h.parent[id]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	var rev []table.ResourceID
	for cur := id; cur != ""; cur = h.parent[cur] {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// Intention returns the intention mode the MGL protocol requires on every
// proper ancestor of a node locked in mode m: IS for read-side modes
// (IS, S) and IX for write-side modes (IX, SIX, X).
func Intention(m lock.Mode) lock.Mode {
	switch m {
	case lock.IS, lock.S:
		return lock.IS
	default:
		return lock.IX
	}
}

// step is one pending lock acquisition.
type step struct {
	rid  table.ResourceID
	mode lock.Mode
}

// Locker acquires MGL locks against a lock table. Acquisition proceeds
// root to target; when an intermediate request blocks, the remaining
// steps are parked and Resume continues them after the transaction is
// granted (the table model forbids a blocked transaction from issuing
// further requests).
type Locker struct {
	tb      *table.Table
	h       *Hierarchy
	pending map[table.TxnID][]step
}

// NewLocker returns a locker over tb using hierarchy h.
func NewLocker(tb *table.Table, h *Hierarchy) *Locker {
	return &Locker{tb: tb, h: h, pending: make(map[table.TxnID][]step)}
}

// Lock acquires mode on node id for txn, taking the required intention
// locks on all ancestors first. It reports whether the whole path was
// granted; on false the transaction is blocked at some step and the rest
// is parked for Resume.
func (l *Locker) Lock(txn table.TxnID, id table.ResourceID, mode lock.Mode) (granted bool, err error) {
	if _, busy := l.pending[txn]; busy {
		return false, fmt.Errorf("%w: %v", ErrBusy, txn)
	}
	path, err := l.h.Path(id)
	if err != nil {
		return false, err
	}
	steps := make([]step, 0, len(path))
	intent := Intention(mode)
	for _, rid := range path[:len(path)-1] {
		steps = append(steps, step{rid, intent})
	}
	steps = append(steps, step{id, mode})
	return l.run(txn, steps)
}

// Resume continues a parked acquisition after the transaction was
// granted the lock it blocked on. It reports whether the plan completed;
// false means the transaction blocked again further down the path.
func (l *Locker) Resume(txn table.TxnID) (granted bool, err error) {
	steps, ok := l.pending[txn]
	if !ok {
		return false, fmt.Errorf("%w: %v", ErrNotPending, txn)
	}
	if l.tb.Blocked(txn) {
		return false, fmt.Errorf("%w: %v", ErrStillBlocked, txn)
	}
	delete(l.pending, txn)
	return l.run(txn, steps)
}

// Pending reports whether txn has a parked acquisition.
func (l *Locker) Pending(txn table.TxnID) bool {
	_, ok := l.pending[txn]
	return ok
}

// Drop forgets txn's parked acquisition (after an abort).
func (l *Locker) Drop(txn table.TxnID) { delete(l.pending, txn) }

func (l *Locker) run(txn table.TxnID, steps []step) (bool, error) {
	for i, s := range steps {
		// Skip steps the transaction's held mode already covers.
		if lock.Covers(l.tb.HeldMode(txn, s.rid), s.mode) {
			continue
		}
		g, err := l.tb.Request(txn, s.rid, s.mode)
		if err != nil {
			return false, err
		}
		if !g {
			if i+1 < len(steps) {
				l.pending[txn] = steps[i+1:]
			}
			return false, nil
		}
	}
	return true, nil
}
