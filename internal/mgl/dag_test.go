package mgl

import (
	"errors"
	"testing"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

// graysDAG builds the classic granularity graph from Gray's paper: a
// database with areas and files, plus an index that also reaches file1.
//
//	db ----> area ----> file1, file2
//	db ----> index ---> file1
//	file1 -> rec1, rec2
func graysDAG(t *testing.T) *DAG {
	t.Helper()
	d := NewDAG()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.AddRoot("db"))
	must(d.Add("area", "db"))
	must(d.Add("index", "db"))
	must(d.Add("file1", "area", "index"))
	must(d.Add("file2", "area"))
	must(d.Add("rec1", "file1"))
	must(d.Add("rec2", "file1"))
	return d
}

func TestDAGConstructionErrors(t *testing.T) {
	d := graysDAG(t)
	if err := d.AddRoot("db"); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("err = %v", err)
	}
	if err := d.Add("rec1", "file1"); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("err = %v", err)
	}
	if err := d.Add("x", "nope"); !errors.Is(err, ErrNoParent) {
		t.Fatalf("err = %v", err)
	}
	if err := d.Add("orphan"); err == nil {
		t.Fatal("parentless Add must fail")
	}
	if !d.Contains("index") || d.Contains("zzz") {
		t.Fatal("Contains wrong")
	}
	if _, err := d.Ancestors("zzz"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.ReadPath("zzz"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestAncestorsTopological(t *testing.T) {
	d := graysDAG(t)
	anc, err := d.Ancestors("rec1")
	if err != nil {
		t.Fatal(err)
	}
	// All of db, area, index, file1 — ancestors before descendants.
	want := []table.ResourceID{"db", "area", "index", "file1"}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors = %v", anc)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Fatalf("Ancestors = %v, want %v", anc, want)
		}
	}
	rp, err := d.ReadPath("rec1")
	if err != nil {
		t.Fatal(err)
	}
	// First-parent path: file1 -> area -> db, root first.
	if len(rp) != 3 || rp[0] != "db" || rp[1] != "area" || rp[2] != "file1" {
		t.Fatalf("ReadPath = %v", rp)
	}
}

// TestWriterLocksAllPaths: an X on file1 must place IX on BOTH the area
// path and the index path, so an index-side reader conflicts correctly.
func TestWriterLocksAllPaths(t *testing.T) {
	d := graysDAG(t)
	tb := table.New()
	l := NewDAGLocker(tb, d)
	if g, err := l.Lock(1, "file1", lock.X); err != nil || !g {
		t.Fatalf("writer: %v %v", g, err)
	}
	for rid, want := range map[table.ResourceID]lock.Mode{
		"db": lock.IX, "area": lock.IX, "index": lock.IX, "file1": lock.X,
	} {
		if got := tb.HeldMode(1, rid); got != want {
			t.Errorf("HeldMode(T1,%s) = %v, want %v", rid, got, want)
		}
	}
	// A whole-index S scan must block (IX vs S at the index).
	if g, err := l.Lock(2, "index", lock.S); err != nil || g {
		t.Fatalf("index scan: %v %v", g, err)
	}
	if rid, _, _ := tb.WaitingOn(2); rid != "index" {
		t.Fatalf("T2 waits at %v", rid)
	}
}

// TestReaderUsesOnePath: a read-side lock takes intentions along one
// path only, so it does not conflict with writers elsewhere.
func TestReaderUsesOnePath(t *testing.T) {
	d := graysDAG(t)
	tb := table.New()
	l := NewDAGLocker(tb, d)
	if g, _ := l.Lock(1, "rec1", lock.S); !g {
		t.Fatal("reader failed")
	}
	if got := tb.HeldMode(1, "index"); got != lock.NL {
		t.Fatalf("reader touched the index path: %v", got)
	}
	if got := tb.HeldMode(1, "area"); got != lock.IS {
		t.Fatalf("area = %v", got)
	}
	// The asymmetry is the point of Gray's rule: a writer through the
	// index still conflicts at file1, where the reader holds S... via
	// the record's parent chain the reader holds IS on file1.
	if got := tb.HeldMode(1, "file1"); got != lock.IS {
		t.Fatalf("file1 = %v", got)
	}
	if g, _ := l.Lock(2, "file1", lock.X); g {
		t.Fatal("index-path writer must block against the reader's IS on file1")
	}
}

func TestDAGBlockedMidPathResume(t *testing.T) {
	d := graysDAG(t)
	tb := table.New()
	l := NewDAGLocker(tb, d)
	if g, _ := l.Lock(1, "index", lock.S); !g {
		t.Fatal("T1 failed")
	}
	// T2's write to rec1 needs IX on index: blocked mid-path.
	g, err := l.Lock(2, "rec1", lock.X)
	if err != nil || g {
		t.Fatalf("T2: %v %v", g, err)
	}
	if rid, _, _ := tb.WaitingOn(2); rid != "index" {
		t.Fatalf("T2 waits at %v", rid)
	}
	if !l.Pending(2) {
		t.Fatal("pending steps expected")
	}
	if _, err := l.Lock(2, "file2", lock.S); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v", err)
	}
	if _, err := l.Resume(2); !errors.Is(err, ErrStillBlocked) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tb.Release(1); err != nil {
		t.Fatal(err)
	}
	done, err := l.Resume(2)
	if err != nil || !done {
		t.Fatalf("Resume: %v %v", done, err)
	}
	if got := tb.HeldMode(2, "rec1"); got != lock.X {
		t.Fatalf("rec1 = %v", got)
	}
	if _, err := l.Resume(2); !errors.Is(err, ErrNotPending) {
		t.Fatalf("err = %v", err)
	}
	l.Drop(2) // no-op
}

// TestDAGDeadlockDetected: two writers through different paths deadlock
// at the shared descendants; the detector resolves it.
func TestDAGDeadlockDetected(t *testing.T) {
	d := graysDAG(t)
	tb := table.New()
	l := NewDAGLocker(tb, d)
	// T1 scans the index (S); T2 scans the area (S); then each writes a
	// record: T1 needs IX on area (blocked by T2's S), T2 needs IX on
	// index (blocked by T1's S) — wait: write-side ancestor order is
	// topological (area before index), so arrange the conflict to cross.
	if g, _ := l.Lock(1, "index", lock.S); !g {
		t.Fatal("T1")
	}
	if g, _ := l.Lock(2, "area", lock.S); !g {
		t.Fatal("T2")
	}
	if g, _ := l.Lock(1, "rec1", lock.X); g { // needs IX on area: blocks on T2
		t.Fatal("T1 should block")
	}
	if g, _ := l.Lock(2, "rec2", lock.X); g { // needs IX on index: blocks on T1
		t.Fatal("T2 should block")
	}
	if !twbg.Deadlocked(tb) {
		t.Fatalf("expected deadlock:\n%s", tb)
	}
	res := detect.New(tb, detect.Config{}).Run()
	if len(res.Aborted) != 1 {
		t.Fatalf("aborted = %v", res.Aborted)
	}
	l.Drop(res.Aborted[0])
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
	survivor := table.TxnID(3) - res.Aborted[0]
	if tb.Blocked(survivor) {
		t.Fatal("survivor still blocked")
	}
	if l.Pending(survivor) {
		if done, err := l.Resume(survivor); err != nil || !done {
			t.Fatalf("survivor resume: %v %v\n%s", done, err, tb)
		}
	}
}

// TestDAGEquivalentToTreeOnTrees: on a tree-shaped graph the DAG locker
// grants exactly what the tree locker grants.
func TestDAGEquivalentToTreeOnTrees(t *testing.T) {
	h := testHierarchy(t)
	d := NewDAG()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.AddRoot("db"))
	must(d.Add("area1", "db"))
	must(d.Add("area2", "db"))
	must(d.Add("file1", "area1"))
	must(d.Add("file2", "area2"))
	must(d.Add("rec1", "file1"))
	must(d.Add("rec2", "file1"))
	must(d.Add("rec3", "file2"))

	ops := []struct {
		txn  table.TxnID
		id   table.ResourceID
		mode lock.Mode
	}{
		{1, "rec1", lock.X}, {2, "rec2", lock.S}, {3, "file2", lock.S},
		{2, "rec2", lock.X}, {4, "rec3", lock.S}, {1, "area1", lock.IX},
	}
	tb1 := table.New()
	tb2 := table.New()
	lt := NewLocker(tb1, h)
	ld := NewDAGLocker(tb2, d)
	for _, op := range ops {
		if tb1.Blocked(op.txn) || tb2.Blocked(op.txn) {
			continue
		}
		g1, err1 := lt.Lock(op.txn, op.id, op.mode)
		g2, err2 := ld.Lock(op.txn, op.id, op.mode)
		if (err1 == nil) != (err2 == nil) || g1 != g2 {
			t.Fatalf("divergence at %+v: tree (%v,%v) dag (%v,%v)", op, g1, err1, g2, err2)
		}
	}
	if tb1.String() != tb2.String() {
		t.Fatalf("states diverged:\n%s\nvs\n%s", tb1, tb2)
	}
}
