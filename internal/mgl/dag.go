package mgl

import (
	"fmt"
	"sort"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

// DAG is a directed acyclic graph of lockable resources — Gray's general
// granularity graph, where a node (say a file) can be reachable both
// through the database hierarchy and through an index. The locking rule
// generalizes the tree protocol:
//
//   - to acquire IS or S on a node, hold IS (or stronger) on at least
//     ONE parent — equivalently, along at least one root path;
//   - to acquire IX, SIX or X on a node, hold IX (or stronger) on ALL
//     parents, recursively: on every node from which the target is
//     reachable.
//
// This guarantees that an implicit lock on a node (taken by locking an
// ancestor) is never invisible to a writer coming through another path.
type DAG struct {
	parents map[table.ResourceID][]table.ResourceID
	roots   []table.ResourceID
}

// NewDAG returns an empty granularity graph.
func NewDAG() *DAG {
	return &DAG{parents: make(map[table.ResourceID][]table.ResourceID)}
}

// AddRoot defines a top-level resource.
func (d *DAG) AddRoot(id table.ResourceID) error {
	if _, ok := d.parents[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	d.parents[id] = nil
	d.roots = append(d.roots, id)
	return nil
}

// Add defines a resource under one or more existing parents.
func (d *DAG) Add(id table.ResourceID, parents ...table.ResourceID) error {
	if _, ok := d.parents[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	if len(parents) == 0 {
		return fmt.Errorf("mgl: node %s needs at least one parent (use AddRoot)", id)
	}
	for _, p := range parents {
		if _, ok := d.parents[p]; !ok {
			return fmt.Errorf("%w: %s", ErrNoParent, p)
		}
	}
	d.parents[id] = append([]table.ResourceID(nil), parents...)
	return nil
}

// Contains reports whether id is defined.
func (d *DAG) Contains(id table.ResourceID) bool {
	_, ok := d.parents[id]
	return ok
}

// Ancestors returns every node from which id is reachable (excluding id
// itself), in a deterministic topological order (ancestors before
// descendants; ties by id).
func (d *DAG) Ancestors(id table.ResourceID) ([]table.ResourceID, error) {
	if _, ok := d.parents[id]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	seen := map[table.ResourceID]bool{}
	var collect func(n table.ResourceID)
	collect = func(n table.ResourceID) {
		for _, p := range d.parents[n] {
			if !seen[p] {
				seen[p] = true
				collect(p)
			}
		}
	}
	collect(id)
	out := make([]table.ResourceID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	d.topoSort(out)
	return out, nil
}

// ReadPath returns one root-to-id chain (excluding id), choosing the
// first-listed parent at every step — the single path a read-side lock
// follows.
func (d *DAG) ReadPath(id table.ResourceID) ([]table.ResourceID, error) {
	if _, ok := d.parents[id]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	var rev []table.ResourceID
	cur := id
	for {
		ps := d.parents[cur]
		if len(ps) == 0 {
			break
		}
		rev = append(rev, ps[0])
		cur = ps[0]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// depth returns the longest root distance of n (memoless; graphs are
// small and acyclic by construction).
func (d *DAG) depth(n table.ResourceID) int {
	best := 0
	for _, p := range d.parents[n] {
		if dp := d.depth(p) + 1; dp > best {
			best = dp
		}
	}
	return best
}

// topoSort orders nodes ancestors-first (by longest root distance, then
// id) so lock acquisition is deterministic and top-down.
func (d *DAG) topoSort(nodes []table.ResourceID) {
	sort.Slice(nodes, func(i, j int) bool {
		di, dj := d.depth(nodes[i]), d.depth(nodes[j])
		if di != dj {
			return di < dj
		}
		return nodes[i] < nodes[j]
	})
}

// DAGLocker acquires Gray-protocol locks on a DAG against a lock table,
// parking mid-path blocks exactly like Locker.
type DAGLocker struct {
	tb      *table.Table
	d       *DAG
	pending map[table.TxnID][]step
}

// NewDAGLocker returns a locker over tb using graph d.
func NewDAGLocker(tb *table.Table, d *DAG) *DAGLocker {
	return &DAGLocker{tb: tb, d: d, pending: make(map[table.TxnID][]step)}
}

// Lock acquires mode on node id for txn: IS on one root path for
// read-side modes, IX on every ancestor for write-side modes, then mode
// on the node itself. False with nil error means the transaction
// blocked; park state is kept for Resume.
func (l *DAGLocker) Lock(txn table.TxnID, id table.ResourceID, mode lock.Mode) (granted bool, err error) {
	if _, busy := l.pending[txn]; busy {
		return false, fmt.Errorf("%w: %v", ErrBusy, txn)
	}
	var chain []table.ResourceID
	intent := Intention(mode)
	if intent == lock.IS {
		chain, err = l.d.ReadPath(id)
	} else {
		chain, err = l.d.Ancestors(id)
	}
	if err != nil {
		return false, err
	}
	steps := make([]step, 0, len(chain)+1)
	for _, rid := range chain {
		steps = append(steps, step{rid, intent})
	}
	steps = append(steps, step{id, mode})
	return l.run(txn, steps)
}

// Resume continues a parked acquisition; see Locker.Resume.
func (l *DAGLocker) Resume(txn table.TxnID) (granted bool, err error) {
	steps, ok := l.pending[txn]
	if !ok {
		return false, fmt.Errorf("%w: %v", ErrNotPending, txn)
	}
	if l.tb.Blocked(txn) {
		return false, fmt.Errorf("%w: %v", ErrStillBlocked, txn)
	}
	delete(l.pending, txn)
	return l.run(txn, steps)
}

// Pending reports whether txn has a parked acquisition.
func (l *DAGLocker) Pending(txn table.TxnID) bool {
	_, ok := l.pending[txn]
	return ok
}

// Drop forgets txn's parked acquisition (after an abort).
func (l *DAGLocker) Drop(txn table.TxnID) { delete(l.pending, txn) }

func (l *DAGLocker) run(txn table.TxnID, steps []step) (bool, error) {
	for i, s := range steps {
		if lock.Covers(l.tb.HeldMode(txn, s.rid), s.mode) {
			continue
		}
		g, err := l.tb.Request(txn, s.rid, s.mode)
		if err != nil {
			return false, err
		}
		if !g {
			if i+1 < len(steps) {
				l.pending[txn] = steps[i+1:]
			}
			return false, nil
		}
	}
	return true, nil
}
