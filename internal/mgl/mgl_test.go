package mgl

import (
	"errors"
	"testing"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

// testHierarchy builds db -> area1,area2 -> files -> records.
func testHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h := NewHierarchy()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(h.AddRoot("db"))
	must(h.Add("area1", "db"))
	must(h.Add("area2", "db"))
	must(h.Add("file1", "area1"))
	must(h.Add("file2", "area2"))
	must(h.Add("rec1", "file1"))
	must(h.Add("rec2", "file1"))
	must(h.Add("rec3", "file2"))
	return h
}

func TestHierarchyConstruction(t *testing.T) {
	h := testHierarchy(t)
	if err := h.AddRoot("db"); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("err = %v", err)
	}
	if err := h.Add("rec1", "file1"); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("err = %v", err)
	}
	if err := h.Add("x", "nope"); !errors.Is(err, ErrNoParent) {
		t.Fatalf("err = %v", err)
	}
	if !h.Contains("rec3") || h.Contains("zzz") {
		t.Fatal("Contains wrong")
	}
	if rs := h.Roots(); len(rs) != 1 || rs[0] != "db" {
		t.Fatalf("Roots = %v", rs)
	}
	p, err := h.Path("rec1")
	if err != nil {
		t.Fatal(err)
	}
	want := []table.ResourceID{"db", "area1", "file1", "rec1"}
	if len(p) != len(want) {
		t.Fatalf("Path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Path = %v, want %v", p, want)
		}
	}
	if _, err := h.Path("zzz"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestIntention(t *testing.T) {
	cases := map[lock.Mode]lock.Mode{
		lock.IS: lock.IS, lock.S: lock.IS,
		lock.IX: lock.IX, lock.SIX: lock.IX, lock.X: lock.IX,
	}
	for m, want := range cases {
		if got := Intention(m); got != want {
			t.Errorf("Intention(%v) = %v, want %v", m, got, want)
		}
	}
}

func TestLockAcquiresIntentions(t *testing.T) {
	h := testHierarchy(t)
	tb := table.New()
	l := NewLocker(tb, h)
	g, err := l.Lock(1, "rec1", lock.X)
	if err != nil || !g {
		t.Fatalf("Lock: %v %v", g, err)
	}
	for rid, want := range map[table.ResourceID]lock.Mode{
		"db": lock.IX, "area1": lock.IX, "file1": lock.IX, "rec1": lock.X,
	} {
		if got := tb.HeldMode(1, rid); got != want {
			t.Errorf("HeldMode(T1,%s) = %v, want %v", rid, got, want)
		}
	}
	// A reader of a different record proceeds: the intention locks are
	// compatible (the "fine granularity concurrency" property).
	g, err = l.Lock(2, "rec2", lock.S)
	if err != nil || !g {
		t.Fatalf("reader: %v %v\n%s", g, err, tb)
	}
	// But a reader of the same record blocks at the record.
	g, err = l.Lock(3, "rec1", lock.S)
	if err != nil || g {
		t.Fatalf("conflicting reader: %v %v", g, err)
	}
	if rid, _, ok := tb.WaitingOn(3); !ok || rid != "rec1" {
		t.Fatalf("T3 waits at %v, want rec1", rid)
	}
}

func TestCoarseLockBlocksAtTheTop(t *testing.T) {
	h := testHierarchy(t)
	tb := table.New()
	l := NewLocker(tb, h)
	if g, _ := l.Lock(1, "rec1", lock.X); !g {
		t.Fatal("T1 lock failed")
	}
	// A whole-file S lock conflicts with T1's IX on file1.
	g, err := l.Lock(2, "file1", lock.S)
	if err != nil || g {
		t.Fatalf("file lock: %v %v", g, err)
	}
	if rid, _, ok := tb.WaitingOn(2); !ok || rid != "file1" {
		t.Fatalf("T2 waits at %v, want file1", rid)
	}
	// T2 blocked on the LAST step: nothing pending, the grant completes
	// the acquisition.
	if l.Pending(2) {
		t.Fatal("no steps should be pending")
	}
	if _, err := tb.Release(1); err != nil {
		t.Fatal(err)
	}
	if tb.Blocked(2) {
		t.Fatal("T2 must be granted after T1's release")
	}
	if got := tb.HeldMode(2, "file1"); got != lock.S {
		t.Fatalf("T2 holds %v on file1", got)
	}
}

func TestBlockedMidPathAndResume(t *testing.T) {
	h := testHierarchy(t)
	tb := table.New()
	l := NewLocker(tb, h)
	// T1 takes S on area1, so T2's IX intention on area1 blocks mid-path.
	if g, _ := l.Lock(1, "area1", lock.S); !g {
		t.Fatal("T1 failed")
	}
	g, err := l.Lock(2, "rec1", lock.X)
	if err != nil || g {
		t.Fatalf("T2: %v %v", g, err)
	}
	if rid, _, ok := tb.WaitingOn(2); !ok || rid != "area1" {
		t.Fatalf("T2 waits at %v, want area1", rid)
	}
	if !l.Pending(2) {
		t.Fatal("T2 must have pending steps (file1, rec1)")
	}
	// Busy transactions cannot start another acquisition.
	if _, err := l.Lock(2, "rec3", lock.S); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v", err)
	}
	// Resume before the grant fails.
	if _, err := l.Resume(2); !errors.Is(err, ErrStillBlocked) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tb.Release(1); err != nil {
		t.Fatal(err)
	}
	done, err := l.Resume(2)
	if err != nil || !done {
		t.Fatalf("Resume: %v %v", done, err)
	}
	if got := tb.HeldMode(2, "rec1"); got != lock.X {
		t.Fatalf("T2 holds %v on rec1", got)
	}
	if _, err := l.Resume(2); !errors.Is(err, ErrNotPending) {
		t.Fatalf("err = %v", err)
	}
}

func TestLockUnknownNode(t *testing.T) {
	l := NewLocker(table.New(), testHierarchy(t))
	if _, err := l.Lock(1, "nope", lock.S); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestDropPending(t *testing.T) {
	h := testHierarchy(t)
	tb := table.New()
	l := NewLocker(tb, h)
	if g, _ := l.Lock(1, "area1", lock.X); !g {
		t.Fatal("T1 failed")
	}
	if g, _ := l.Lock(2, "rec1", lock.X); g {
		t.Fatal("T2 should block")
	}
	tb.Abort(2)
	l.Drop(2)
	if l.Pending(2) {
		t.Fatal("pending not dropped")
	}
}

// TestMGLDeadlockDetected: deadlock arising purely through intention
// locks is caught by the standard detector — the paper's "integrates
// without changes" claim.
func TestMGLDeadlockDetected(t *testing.T) {
	h := testHierarchy(t)
	tb := table.New()
	l := NewLocker(tb, h)
	// T1: S on file1; T2: S on file2; then each wants X on a record of
	// the other's file: the IX intentions deadlock at the file level.
	if g, _ := l.Lock(1, "file1", lock.S); !g {
		t.Fatal("T1")
	}
	if g, _ := l.Lock(2, "file2", lock.S); !g {
		t.Fatal("T2")
	}
	if g, _ := l.Lock(1, "rec3", lock.X); g { // blocks at file2 (IX vs S)
		t.Fatal("T1 should block")
	}
	if g, _ := l.Lock(2, "rec1", lock.X); g { // blocks at file1
		t.Fatal("T2 should block")
	}
	if !twbg.Deadlocked(tb) {
		t.Fatalf("expected a deadlock:\n%s", tb)
	}
	res := detect.New(tb, detect.Config{}).Run()
	if len(res.Aborted) != 1 {
		t.Fatalf("aborted = %v", res.Aborted)
	}
	l.Drop(res.Aborted[0])
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
	// The survivor must be able to finish its acquisition.
	survivor := table.TxnID(3) - res.Aborted[0]
	if tb.Blocked(survivor) {
		t.Fatalf("survivor %v still blocked:\n%s", survivor, tb)
	}
	if l.Pending(survivor) {
		if done, err := l.Resume(survivor); err != nil || !done {
			t.Fatalf("survivor resume: %v %v\n%s", done, err, tb)
		}
	}
}

// TestUpgradePath: re-locking a node in a stronger mode converts in
// place, including the intention ancestors (IS -> IX).
func TestUpgradePath(t *testing.T) {
	h := testHierarchy(t)
	tb := table.New()
	l := NewLocker(tb, h)
	if g, _ := l.Lock(1, "rec1", lock.S); !g {
		t.Fatal("read lock failed")
	}
	if got := tb.HeldMode(1, "file1"); got != lock.IS {
		t.Fatalf("file1 = %v", got)
	}
	if g, _ := l.Lock(1, "rec1", lock.X); !g {
		t.Fatal("upgrade failed")
	}
	if got := tb.HeldMode(1, "file1"); got != lock.IX {
		t.Fatalf("file1 after upgrade = %v", got)
	}
	if got := tb.HeldMode(1, "rec1"); got != lock.X {
		t.Fatalf("rec1 = %v", got)
	}
}

func TestSIXPattern(t *testing.T) {
	// The classic SIX use: scan a file (S) while updating some records
	// (IX) == SIX on the file.
	h := testHierarchy(t)
	tb := table.New()
	l := NewLocker(tb, h)
	if g, _ := l.Lock(1, "file1", lock.S); !g {
		t.Fatal("S failed")
	}
	if g, _ := l.Lock(1, "file1", lock.IX); !g {
		t.Fatal("IX conversion failed")
	}
	if got := tb.HeldMode(1, "file1"); got != lock.SIX {
		t.Fatalf("file1 = %v, want SIX", got)
	}
	// An IS reader of another record may pass (IS vs SIX compatible)...
	if g, _ := l.Lock(2, "rec2", lock.S); g {
		// Comp(S's intention IS, SIX) holds at file1, and rec2 is free.
		if got := tb.HeldMode(2, "rec2"); got != lock.S {
			t.Fatalf("rec2 = %v", got)
		}
	} else {
		t.Fatalf("IS traffic must pass SIX:\n%s", tb)
	}
	// ...but another writer's IX must block at the file.
	if g, _ := l.Lock(3, "rec1", lock.X); g {
		t.Fatal("IX must conflict with SIX")
	}
	if rid, _, _ := tb.WaitingOn(3); rid != "file1" {
		t.Fatalf("T3 waits at %v", rid)
	}
}
