// Package sim is the workload testbed: a deterministic closed-loop
// transaction-processing simulator in the style of the performance
// studies the paper builds on (Agrawal/Carey/McVoy TSE'87,
// Agrawal/Carey/Livny TODS'87, Pun/Belford TSE'87). A fixed number of
// terminals run transactions of a configurable length against a pool of
// resources with configurable skew, write fraction and lock-conversion
// fraction; deadlocks are handled by a pluggable Resolver; the simulator
// reports throughput, aborts, wasted work, wait time and (optionally)
// deadlock detection latency measured against the ground-truth oracle.
//
// The paper itself has no experimental section; this simulator is the
// substitute testbed that exercises the identical lock-table code paths
// and lets the benchmarks compare the H/W-TWBG detector with the
// re-implemented baselines (see DESIGN.md, experiments E9-E11, E14).
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
	"hwtwbg/internal/txn"
)

// Resolver is the deadlock-handling strategy interface. The periodic
// H/W-TWBG detector, the re-implemented baselines and the timeout scheme
// all satisfy it structurally.
type Resolver interface {
	// Name identifies the strategy in reports.
	Name() string
	// OnBlocked is invoked right after a request blocked; continuous
	// detectors resolve here. It returns the victims it aborted.
	OnBlocked(txn table.TxnID, now int64) []table.TxnID
	// OnTick is invoked on every detection-period boundary; periodic
	// detectors resolve here. It returns the victims it aborted.
	OnTick(now int64) []table.TxnID
	// Forget tells the resolver a transaction is no longer blocked
	// (granted, committed or aborted) so per-block state can be dropped.
	Forget(txn table.TxnID)
}

// Config parameterizes a run. Zero values are replaced by the defaults
// noted on each field.
type Config struct {
	Terminals int     // concurrent transactions (default 8)
	Resources int     // size of the resource pool (default 32)
	TxnLength int     // lock requests per transaction (default 6)
	WriteFrac float64 // probability a request is X rather than S (default 0.3)
	ConvFrac  float64 // probability a read is later upgraded to X (default 0)
	MGLModes  bool    // mix IS/IX/SIX traffic in (default off: pure S/X)
	HotFrac   float64 // fraction of resources forming the hot spot (default 0.2)
	HotProb   float64 // probability a request goes to the hot spot (default 0)
	ThinkTime int64   // ticks between a terminal's operations (default 1)
	Restart   int64   // ticks before an aborted transaction restarts (default 2)
	Period    int64   // resolver tick period (default 10)
	Duration  int64   // total ticks to simulate (default 10000)
	Seed      int64   // PRNG seed (default 1)

	// MeasureLatency turns on per-tick oracle checks to measure how long
	// deadlocks persist before the strategy clears them. Quadratic in
	// the number of live transactions; enable for experiments, not for
	// throughput benchmarking.
	MeasureLatency bool
}

func (c Config) withDefaults() Config {
	if c.Terminals == 0 {
		c.Terminals = 8
	}
	if c.Resources == 0 {
		c.Resources = 32
	}
	if c.TxnLength == 0 {
		c.TxnLength = 6
	}
	if c.WriteFrac == 0 {
		c.WriteFrac = 0.3
	}
	if c.HotFrac == 0 {
		c.HotFrac = 0.2
	}
	if c.ThinkTime == 0 {
		c.ThinkTime = 1
	}
	if c.Restart == 0 {
		c.Restart = 2
	}
	if c.Period == 0 {
		c.Period = 10
	}
	if c.Duration == 0 {
		c.Duration = 10000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Metrics reports one run.
type Metrics struct {
	Strategy string
	Config   Config

	Commits  int // transactions committed
	Aborts   int // victim aborts (deadlock resolution)
	Restarts int // victim restarts performed

	WastedOps int   // operations performed by transactions that were later aborted
	WaitTicks int64 // total ticks terminals spent blocked
	// MaxRestarts is the largest number of times any single logical
	// transaction was victimized and restarted — the livelock/starvation
	// indicator (Section 1 of the paper raises this concern about [8]).
	MaxRestarts int

	waits []int64 // individual completed wait durations (for percentiles)

	DeadlockEpisodes  int   // distinct intervals during which the oracle saw a deadlock (MeasureLatency only)
	DeadlockTicks     int64 // total ticks some deadlock persisted (MeasureLatency only)
	Repositionings    int   // TDR-2 applications (Park resolver only)
	SalvagedVictims   int   // victims rescued at Step 3 (Park resolver only)
	ResolverEdgeVisit int   // cumulative Step 2 edge visits (Park resolver only)
}

// WaitPercentile returns the p-th percentile (0 < p <= 100) of
// individual completed wait durations, or 0 when nothing ever waited.
func (m Metrics) WaitPercentile(p float64) int64 {
	if len(m.waits) == 0 {
		return 0
	}
	sorted := append([]int64(nil), m.waits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Waits returns how many individual waits completed.
func (m Metrics) Waits() int { return len(m.waits) }

// Throughput returns commits per 1000 ticks.
func (m Metrics) Throughput() float64 {
	if m.Config.Duration == 0 {
		return 0
	}
	return float64(m.Commits) * 1000 / float64(m.Config.Duration)
}

// MeanDeadlockTicks returns the average persistence of a deadlock
// episode (detection + resolution latency).
func (m Metrics) MeanDeadlockTicks() float64 {
	if m.DeadlockEpisodes == 0 {
		return 0
	}
	return float64(m.DeadlockTicks) / float64(m.DeadlockEpisodes)
}

// String prints a one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("%-26s commits=%-6d aborts=%-5d wasted=%-6d wait=%-8d tput=%.1f",
		m.Strategy, m.Commits, m.Aborts, m.WastedOps, m.WaitTicks, m.Throughput())
}

// Factory builds a Resolver bound to a freshly created manager. The
// manager supplies both the lock table and the cost metrics.
type Factory func(m *txn.Manager) Resolver

// op is one scripted transaction step.
type op struct {
	rid    table.ResourceID
	mode   lock.Mode
	commit bool
}

// terminal is one closed-loop client.
type terminal struct {
	cur          *txn.Txn
	plan         []op
	next         int
	nextAt       int64
	blocked      bool
	blockedSince int64
	restartAt    int64 // when >0, begin a restarted transaction at this tick
}

// Sim is one simulation run.
type Sim struct {
	cfg      Config
	rng      *rand.Rand
	mgr      *txn.Manager
	resolver Resolver
	term     []*terminal
	owner    map[table.TxnID]*terminal
	metrics  Metrics
	deadAt   int64 // tick the current deadlock episode began, -1 if none
}

// New builds a simulation with the given workload and strategy.
func New(cfg Config, f Factory) *Sim {
	cfg = cfg.withDefaults()
	s := &Sim{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		mgr:    txn.NewManager(),
		owner:  make(map[table.TxnID]*terminal),
		deadAt: -1,
	}
	s.resolver = f(s.mgr)
	s.metrics.Strategy = s.resolver.Name()
	s.metrics.Config = cfg
	for i := 0; i < cfg.Terminals; i++ {
		t := &terminal{}
		s.begin(t)
		t.nextAt = int64(i) % cfg.ThinkTime // stagger start-up
		s.term = append(s.term, t)
	}
	return s
}

// Run executes the configured duration and returns the metrics.
func Run(cfg Config, f Factory) Metrics {
	s := New(cfg, f)
	for i := int64(0); i < s.cfg.Duration; i++ {
		s.Tick()
	}
	return s.Metrics()
}

// Metrics returns the counters accumulated so far.
func (s *Sim) Metrics() Metrics { return s.metrics }

// Manager exposes the underlying transaction manager (tests observe it).
func (s *Sim) Manager() *txn.Manager { return s.mgr }

// Tick advances the simulation by one logical time unit.
func (s *Sim) Tick() {
	now := s.mgr.Clock()

	for _, t := range s.term {
		s.step(t, now)
	}
	if now%s.cfg.Period == 0 {
		s.applyVictims(s.resolver.OnTick(now), now)
	}
	s.sweep(now)
	if s.cfg.MeasureLatency {
		s.trackDeadlock(now)
	}
	s.mgr.Tick()
}

// step lets one terminal act if it is due.
func (s *Sim) step(t *terminal, now int64) {
	if t.restartAt > 0 {
		if now < t.restartAt {
			return
		}
		old := t.cur
		t.cur = s.mgr.Restart(old)
		s.owner[t.cur.ID] = t
		t.plan = s.makePlan()
		t.next = 0
		t.restartAt = 0
		t.nextAt = now
		s.metrics.Restarts++
		if t.cur.Restarts > s.metrics.MaxRestarts {
			s.metrics.MaxRestarts = t.cur.Restarts
		}
	}
	if t.blocked || t.cur.Done() || now < t.nextAt {
		return
	}
	o := t.plan[t.next]
	if o.commit {
		if err := s.mgr.Commit(t.cur); err != nil {
			panic("sim: commit failed: " + err.Error())
		}
		s.metrics.Commits++
		s.begin(t)
		t.nextAt = now + s.cfg.ThinkTime
		return
	}
	granted, err := s.mgr.Request(t.cur, o.rid, o.mode)
	if err != nil {
		panic("sim: request failed: " + err.Error())
	}
	t.next++
	if granted {
		t.nextAt = now + s.cfg.ThinkTime
		return
	}
	t.blocked = true
	t.blockedSince = now
	s.applyVictims(s.resolver.OnBlocked(t.cur.ID, now), now)
}

// begin starts a fresh transaction on a terminal.
func (s *Sim) begin(t *terminal) {
	t.cur = s.mgr.Begin()
	t.plan = s.makePlan()
	t.next = 0
	t.blocked = false
	t.restartAt = 0
	s.owner[t.cur.ID] = t
}

// makePlan scripts one transaction: TxnLength lock requests followed by
// a commit, with optional upgrade (conversion) steps.
func (s *Sim) makePlan() []op {
	cfg := s.cfg
	plan := make([]op, 0, cfg.TxnLength+1)
	var reads []table.ResourceID
	for i := 0; i < cfg.TxnLength; i++ {
		rid := s.pickResource()
		mode := lock.S
		switch {
		case len(reads) > 0 && s.rng.Float64() < cfg.ConvFrac:
			// Upgrade an earlier read: a lock conversion.
			rid = reads[s.rng.Intn(len(reads))]
			mode = lock.X
		case s.rng.Float64() < cfg.WriteFrac:
			mode = lock.X
		default:
			reads = append(reads, rid)
		}
		if cfg.MGLModes && s.rng.Float64() < 0.4 {
			switch mode {
			case lock.S:
				mode = lock.IS
			case lock.X:
				if s.rng.Float64() < 0.3 {
					mode = lock.SIX
				} else {
					mode = lock.IX
				}
			}
		}
		plan = append(plan, op{rid: rid, mode: mode})
	}
	return append(plan, op{commit: true})
}

// pickResource samples the resource pool with the configured hot spot.
func (s *Sim) pickResource() table.ResourceID {
	cfg := s.cfg
	hot := int(float64(cfg.Resources) * cfg.HotFrac)
	if hot < 1 {
		hot = 1
	}
	var n int
	if s.rng.Float64() < cfg.HotProb {
		n = s.rng.Intn(hot)
	} else {
		n = s.rng.Intn(cfg.Resources)
	}
	return table.ResourceID(fmt.Sprintf("R%d", n))
}

// applyVictims reconciles resolver-aborted transactions with the
// terminals that own them.
func (s *Sim) applyVictims(victims []table.TxnID, now int64) {
	for _, v := range victims {
		s.mgr.MarkAborted(v)
		s.resolver.Forget(v)
		t := s.owner[v]
		if t == nil {
			continue
		}
		s.metrics.Aborts++
		s.metrics.WastedOps += t.cur.Ops
		if t.blocked {
			s.metrics.WaitTicks += now - t.blockedSince
			s.metrics.waits = append(s.metrics.waits, now-t.blockedSince)
			t.blocked = false
		}
		t.restartAt = now + s.cfg.Restart
	}
	if pr, ok := s.resolver.(interface{ Park() ParkStats }); ok {
		st := pr.Park()
		s.metrics.Repositionings = st.Repositionings
		s.metrics.SalvagedVictims = st.Salvaged
		s.metrics.ResolverEdgeVisit = st.EdgeVisits
	}
}

// sweep notices grants: blocked terminals whose transactions the table
// no longer blocks resume at the next think boundary.
func (s *Sim) sweep(now int64) {
	tb := s.mgr.Table()
	for _, t := range s.term {
		if !t.blocked || t.cur.Done() {
			continue
		}
		if tb.Blocked(t.cur.ID) {
			continue
		}
		t.blocked = false
		s.metrics.WaitTicks += now - t.blockedSince
		s.metrics.waits = append(s.metrics.waits, now-t.blockedSince)
		t.nextAt = now + s.cfg.ThinkTime
		s.resolver.Forget(t.cur.ID)
	}
	s.mgr.Sync()
}

// trackDeadlock measures deadlock persistence against the oracle.
func (s *Sim) trackDeadlock(now int64) {
	dead := twbg.Deadlocked(s.mgr.Table())
	switch {
	case dead && s.deadAt < 0:
		s.deadAt = now
		s.metrics.DeadlockEpisodes++
	case !dead && s.deadAt >= 0:
		s.metrics.DeadlockTicks += now - s.deadAt
		s.deadAt = -1
	}
}
