package sim

import (
	"testing"

	"hwtwbg/internal/twbg"
	"hwtwbg/internal/txn"
)

// contention is a deadlock-prone workload used across the tests.
var contention = Config{
	Terminals: 8,
	Resources: 10,
	TxnLength: 5,
	WriteFrac: 0.5,
	HotProb:   0.6,
	HotFrac:   0.3,
	Period:    10,
	Duration:  8000,
	Seed:      42,
}

func TestRunMakesProgressAllStrategies(t *testing.T) {
	for name, f := range AllStrategies(contention.Period) {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			m := Run(contention, f)
			// The timeout strategy is legitimately slow under this
			// hotspot (deadlocks persist for the whole wait limit); it
			// only has to make progress, not compete.
			minCommits := 100
			if name == "timeout" {
				minCommits = 20
			}
			if m.Commits < minCommits {
				t.Fatalf("%s: commits = %d, the workload is stuck", name, m.Commits)
			}
			if m.Strategy == "" {
				t.Error("strategy name missing")
			}
			if m.Throughput() <= 0 {
				t.Error("throughput must be positive")
			}
			if m.String() == "" {
				t.Error("String() empty")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(contention, Park)
	b := Run(contention, Park)
	if a.String() != b.String() || a.Repositionings != b.Repositionings ||
		a.Restarts != b.Restarts || a.SalvagedVictims != b.SalvagedVictims ||
		a.Waits() != b.Waits() {
		t.Fatalf("same seed, different metrics:\n%+v\n%+v", a, b)
	}
	c := contention
	c.Seed = 43
	d := Run(c, Park)
	if a.Commits == d.Commits && a.Aborts == d.Aborts && a.WaitTicks == d.WaitTicks {
		t.Fatal("different seeds produced identical runs; PRNG not wired in")
	}
}

func TestNoDeadlockSurvivesTheRun(t *testing.T) {
	s := New(contention, Park)
	for i := int64(0); i < 4000; i++ {
		s.Tick()
		// At every period boundary the table must be deadlock-free
		// right after the tick.
		if (s.mgr.Clock()-1)%contention.Period == 0 {
			if twbg.Deadlocked(s.mgr.Table()) {
				t.Fatalf("tick %d: deadlock survived a period boundary", i)
			}
		}
	}
}

func TestDeadlocksActuallyHappen(t *testing.T) {
	m := Run(contention, Park)
	if m.Aborts == 0 && m.Repositionings == 0 {
		t.Fatal("the contention workload produced no deadlocks; the comparisons are vacuous")
	}
}

// TestTDR2FiresUnderConversionLoad (experiment E11): with conversions
// and shared traffic, some deadlocks must be resolved by repositioning.
func TestTDR2FiresUnderConversionLoad(t *testing.T) {
	cfg := contention
	cfg.ConvFrac = 0.3
	cfg.WriteFrac = 0.2
	cfg.Duration = 12000
	m := Run(cfg, Park)
	if m.Repositionings == 0 {
		t.Fatalf("no TDR-2 repositionings under conversion load: %+v", m)
	}
	ablation := Run(cfg, ParkNoTDR2)
	if ablation.Repositionings != 0 {
		t.Fatal("ablation must not reposition")
	}
	if m.Aborts >= ablation.Aborts {
		t.Logf("warning: TDR-2 did not reduce aborts on this seed (%d vs %d)", m.Aborts, ablation.Aborts)
	}
}

// TestDetectionLatency (experiment E9): the single-edge periodic
// detector leaves deadlocks in place longer than the H/W-TWBG detector
// under the same workload and period.
func TestDetectionLatency(t *testing.T) {
	cfg := contention
	cfg.MeasureLatency = true
	cfg.Duration = 6000
	park := Run(cfg, Park)
	agr := Run(cfg, Agrawal)
	if park.DeadlockEpisodes == 0 || agr.DeadlockEpisodes == 0 {
		t.Fatalf("no deadlock episodes measured: park=%d agrawal=%d",
			park.DeadlockEpisodes, agr.DeadlockEpisodes)
	}
	if agr.MeanDeadlockTicks() < park.MeanDeadlockTicks() {
		t.Errorf("single-edge detector resolved faster than H/W-TWBG: %.1f vs %.1f ticks",
			agr.MeanDeadlockTicks(), park.MeanDeadlockTicks())
	}
	t.Logf("mean deadlock persistence: park=%.1f agrawal=%.1f ticks",
		park.MeanDeadlockTicks(), agr.MeanDeadlockTicks())
}

// TestVictimQuality (experiment E10): abort-the-requester wastes more
// work than min-cost selection over a long run.
func TestVictimQuality(t *testing.T) {
	cfg := contention
	cfg.Duration = 20000
	park := Run(cfg, Park)
	elm := Run(cfg, Elmagarmid)
	if park.Aborts == 0 || elm.Aborts == 0 {
		t.Fatalf("no aborts: park=%d elm=%d", park.Aborts, elm.Aborts)
	}
	perAbortPark := float64(park.WastedOps) / float64(park.Aborts)
	perAbortElm := float64(elm.WastedOps) / float64(elm.Aborts)
	t.Logf("wasted ops per abort: park=%.2f elmagarmid=%.2f", perAbortPark, perAbortElm)
	if perAbortElm < perAbortPark*0.8 {
		t.Errorf("abort-the-requester wasted less per abort than min-cost: %.2f vs %.2f",
			perAbortElm, perAbortPark)
	}
}

func TestMGLModeMix(t *testing.T) {
	cfg := contention
	cfg.MGLModes = true
	cfg.Duration = 6000
	m := Run(cfg, Park)
	if m.Commits < 100 {
		t.Fatalf("MGL-mode workload stuck: %+v", m)
	}
}

func TestConfigDefaults(t *testing.T) {
	got := Config{}.withDefaults()
	if got.Terminals == 0 || got.Resources == 0 || got.TxnLength == 0 ||
		got.Period == 0 || got.Duration == 0 || got.Seed == 0 ||
		got.ThinkTime == 0 || got.Restart == 0 || got.WriteFrac == 0 || got.HotFrac == 0 {
		t.Fatalf("defaults missing: %+v", got)
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := Metrics{}
	if m.Throughput() != 0 || m.MeanDeadlockTicks() != 0 {
		t.Fatal("zero-value metrics must not divide by zero")
	}
	m.Commits = 500
	m.Config.Duration = 1000
	if m.Throughput() != 500 {
		t.Fatalf("Throughput = %v", m.Throughput())
	}
	m.DeadlockEpisodes = 4
	m.DeadlockTicks = 10
	if m.MeanDeadlockTicks() != 2.5 {
		t.Fatalf("MeanDeadlockTicks = %v", m.MeanDeadlockTicks())
	}
}

func TestParkResolverDirect(t *testing.T) {
	m := txn.NewManager()
	r := Park(m)
	if r.Name() != "park-hwtwbg" {
		t.Errorf("Name = %q", r.Name())
	}
	if got := r.OnBlocked(1, 0); got != nil {
		t.Error("OnBlocked must be nil")
	}
	if got := r.OnTick(0); len(got) != 0 {
		t.Errorf("OnTick on empty table = %v", got)
	}
	r.Forget(1)
	pr := r.(*ParkResolver)
	if pr.Park() != (ParkStats{}) {
		t.Errorf("stats = %+v", pr.Park())
	}
}

func TestUniformCostVariant(t *testing.T) {
	cfg := contention
	cfg.Duration = 4000
	m := Run(cfg, ParkUniformCost)
	if m.Strategy != "park-uniform-cost" || m.Commits == 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestRestartsFollowAborts(t *testing.T) {
	m := Run(contention, WFGContinuous)
	if m.Aborts == 0 {
		t.Skip("no aborts on this seed")
	}
	if m.Restarts == 0 {
		t.Fatal("aborted transactions never restarted")
	}
	if m.Restarts > m.Aborts {
		t.Fatalf("restarts=%d > aborts=%d", m.Restarts, m.Aborts)
	}
}

func TestWaitPercentiles(t *testing.T) {
	m := Run(contention, Park)
	if m.Waits() == 0 {
		t.Fatal("no waits recorded under contention")
	}
	p50 := m.WaitPercentile(50)
	p99 := m.WaitPercentile(99)
	if p50 < 0 || p99 < p50 {
		t.Fatalf("p50=%d p99=%d", p50, p99)
	}
	if max := m.WaitPercentile(100); max < p99 {
		t.Fatalf("p100=%d < p99=%d", max, p99)
	}
	var zero Metrics
	if zero.WaitPercentile(50) != 0 || zero.Waits() != 0 {
		t.Fatal("zero-value metrics percentile")
	}
}
