package sim

import (
	"testing"

	"hwtwbg/internal/twbg"
)

// TestPreventionShape (the detection-vs-prevention axis of reference
// [2]): both prevention schemes make progress, never leave a deadlock
// standing past a tick, and abort far more transactions than the
// detection-based H/W-TWBG resolver on the same workload — they kill on
// conflict, not on deadlock.
func TestPreventionShape(t *testing.T) {
	cfg := contention
	cfg.Duration = 8000
	park := Run(cfg, Park)
	for _, f := range []Factory{WaitDie, WoundWait} {
		m := Run(cfg, f)
		if m.Commits < 100 {
			t.Fatalf("%s: commits = %d, stuck", m.Strategy, m.Commits)
		}
		if m.Aborts <= park.Aborts {
			t.Errorf("%s aborted %d <= park's %d; prevention should abort far more on this workload",
				m.Strategy, m.Aborts, park.Aborts)
		}
		t.Logf("%s", m.String())
	}
	t.Logf("%s", park.String())
}

// TestPreventionNeverDeadlocks: run the closed loop and assert at every
// period boundary that no deadlock stands (the sweep repairs the
// conversion hole within a period).
func TestPreventionNeverDeadlocks(t *testing.T) {
	for _, f := range []Factory{WaitDie, WoundWait} {
		cfg := contention
		cfg.ConvFrac = 0.3 // exercise the conversion hole
		cfg.Duration = 3000
		s := New(cfg, f)
		for i := int64(0); i < cfg.Duration; i++ {
			s.Tick()
			if (s.mgr.Clock()-1)%cfg.Period == 0 {
				if twbg.Deadlocked(s.mgr.Table()) {
					t.Fatalf("%s: deadlock survived a period boundary at tick %d", f(s.mgr).Name(), i)
				}
			}
		}
		if s.Metrics().Commits == 0 {
			t.Fatalf("no commits")
		}
	}
}
