package sim

import (
	"hwtwbg/internal/baseline/agrawal"
	"hwtwbg/internal/baseline/elmagarmid"
	"hwtwbg/internal/baseline/jiang"
	"hwtwbg/internal/baseline/prevent"
	"hwtwbg/internal/baseline/timeout"
	"hwtwbg/internal/baseline/wfg"
	"hwtwbg/internal/continuous"
	"hwtwbg/internal/detect"
	"hwtwbg/internal/table"
	"hwtwbg/internal/txn"
)

// ParkStats accumulates the Park-specific counters across activations.
type ParkStats struct {
	Repositionings int
	Salvaged       int
	EdgeVisits     int
}

// ParkResolver adapts the periodic H/W-TWBG detection-resolution
// algorithm (internal/detect) to the Resolver interface.
type ParkResolver struct {
	d     *detect.Detector
	label string
	stats ParkStats
}

// Name identifies the strategy in reports.
func (p *ParkResolver) Name() string { return p.label }

// OnBlocked is a no-op: the algorithm is periodic.
func (p *ParkResolver) OnBlocked(table.TxnID, int64) []table.TxnID { return nil }

// OnTick performs one periodic activation.
func (p *ParkResolver) OnTick(now int64) []table.TxnID {
	res := p.d.Run()
	p.stats.Repositionings += len(res.Repositioned)
	p.stats.Salvaged += len(res.Salvaged)
	p.stats.EdgeVisits += res.EdgeVisits
	return res.Aborted
}

// Forget is a no-op: the detector rebuilds its state each activation.
func (p *ParkResolver) Forget(table.TxnID) {}

// Park returns the accumulated Park-specific counters.
func (p *ParkResolver) Park() ParkStats { return p.stats }

// Park is the reference strategy: the paper's periodic H/W-TWBG
// detector with locks-held victim costs.
func Park(m *txn.Manager) Resolver {
	return &ParkResolver{
		label: "park-hwtwbg",
		d:     detect.New(m.Table(), detect.Config{Cost: m.CostByLocks}),
	}
}

// ParkNoTDR2 is the ablation: identical except TDR-2 is disabled, so
// every deadlock is resolved by abort.
func ParkNoTDR2(m *txn.Manager) Resolver {
	return &ParkResolver{
		label: "park-no-tdr2",
		d:     detect.New(m.Table(), detect.Config{Cost: m.CostByLocks, DisableTDR2: true}),
	}
}

// ParkUniformCost is the ablation with constant victim costs.
func ParkUniformCost(m *txn.Manager) Resolver {
	return &ParkResolver{
		label: "park-uniform-cost",
		d:     detect.New(m.Table(), detect.Config{}),
	}
}

// continuousResolver adapts the continuous detector so the simulator
// can also harvest its TDR-2 statistics.
type continuousResolver struct {
	*continuous.Detector
}

// Park exposes the continuous detector's counters in ParkStats form.
func (c continuousResolver) Park() ParkStats {
	_, _, reps := c.Stats()
	return ParkStats{Repositionings: reps}
}

// ParkContinuous is the reconstruction of the COMPSAC'91 continuous
// companion: the same H/W-TWBG + TDR machinery activated on every block.
func ParkContinuous(m *txn.Manager) Resolver {
	d := continuous.New(m.Table())
	d.Cost = m.CostByLocks
	return continuousResolver{d}
}

// WFGContinuous is the textbook continuous wait-for-graph detector with
// min-cost victims.
func WFGContinuous(m *txn.Manager) Resolver {
	d := wfg.New(m.Table())
	d.Cost = m.CostByLocks
	return d
}

// WFGPeriodic is the same detector activated periodically.
func WFGPeriodic(m *txn.Manager) Resolver {
	d := wfg.New(m.Table())
	d.Cost = m.CostByLocks
	d.Periodic = true
	return d
}

// Agrawal is the single-edge periodic detector of Agrawal/Carey/DeWitt.
func Agrawal(m *txn.Manager) Resolver {
	d := agrawal.New(m.Table())
	d.Cost = m.CostByLocks
	return d
}

// Elmagarmid is the continuous abort-the-requester detector.
func Elmagarmid(m *txn.Manager) Resolver {
	return elmagarmid.New(m.Table())
}

// Jiang is the continuous matrix-based detector.
func Jiang(m *txn.Manager) Resolver {
	d := jiang.New(m.Table())
	d.Cost = m.CostByLocks
	return d
}

// WaitDie is the non-preemptive timestamp prevention scheme of
// Rosenkrantz et al. (the detection-vs-prevention axis of reference [2]).
func WaitDie(m *txn.Manager) Resolver {
	return prevent.New(m.Table(), prevent.WaitDie, m.PriorityOf)
}

// WoundWait is the preemptive timestamp prevention scheme.
func WoundWait(m *txn.Manager) Resolver {
	return prevent.New(m.Table(), prevent.WoundWait, m.PriorityOf)
}

// Timeout builds the graph-free strategy with the given wait limit.
func Timeout(limit int64) Factory {
	return func(m *txn.Manager) Resolver {
		return timeout.New(m.Table(), limit)
	}
}

// AllStrategies returns the full comparison lineup used by the
// benchmark tables (timeout limit chosen relative to the period).
func AllStrategies(period int64) map[string]Factory {
	return map[string]Factory{
		"park-hwtwbg":     Park,
		"park-no-tdr2":    ParkNoTDR2,
		"park-continuous": ParkContinuous,
		"wfg-continuous":  WFGContinuous,
		"wfg-periodic":    WFGPeriodic,
		"agrawal":         Agrawal,
		"elmagarmid":      Elmagarmid,
		"jiang":           Jiang,
		"wait-die":        WaitDie,
		"wound-wait":      WoundWait,
		"timeout":         Timeout(5 * period),
	}
}
