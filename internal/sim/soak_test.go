package sim

import (
	"testing"

	"hwtwbg/internal/twbg"
)

// TestSoak runs every strategy over several seeds and workload mixes,
// asserting the global safety properties throughout: progress, no
// deadlock outliving its resolution discipline, restarts bounded by
// aborts. It is the long-haul regression net; -short skips it.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	mixes := []Config{
		{Terminals: 6, Resources: 12, TxnLength: 4, WriteFrac: 0.3, HotProb: 0.4, Period: 5, Duration: 5000},
		{Terminals: 12, Resources: 8, TxnLength: 6, WriteFrac: 0.6, HotProb: 0.7, HotFrac: 0.25, Period: 20, Duration: 5000},
		{Terminals: 8, Resources: 16, TxnLength: 5, WriteFrac: 0.2, ConvFrac: 0.4, HotProb: 0.5, Period: 10, Duration: 5000},
		{Terminals: 10, Resources: 10, TxnLength: 5, WriteFrac: 0.4, MGLModes: true, HotProb: 0.5, Period: 10, Duration: 5000},
	}
	for name, f := range AllStrategies(10) {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for mi, base := range mixes {
				for seed := int64(1); seed <= 3; seed++ {
					cfg := base
					cfg.Seed = seed
					s := New(cfg, f)
					for i := int64(0); i < cfg.Duration; i++ {
						s.Tick()
					}
					if err := s.mgr.Table().Validate(); err != nil {
						t.Fatalf("mix %d seed %d: table invariant broken: %v", mi, seed, err)
					}
					m := s.Metrics()
					if m.Commits == 0 {
						t.Errorf("mix %d seed %d: no commits", mi, seed)
					}
					if m.Restarts > m.Aborts {
						t.Errorf("mix %d seed %d: restarts %d > aborts %d", mi, seed, m.Restarts, m.Aborts)
					}
					// After a final resolution pass, nothing may be
					// deadlocked — with two documented exceptions:
					// agrawal's single-edge graph can miss deadlocks
					// indefinitely (experiment E9), and timeout clears
					// them only after its wait limit.
					switch name {
					case "agrawal":
						// No end-state guarantee: missed detection is
						// the point of this baseline.
					case "timeout":
						s.resolver.OnTick(s.mgr.Clock() + 10*cfg.Period + 1)
						if twbg.Deadlocked(s.mgr.Table()) {
							t.Errorf("mix %d seed %d: deadlock survived the timeout limit:\n%s", mi, seed, s.mgr.Table())
						}
					default:
						s.resolver.OnTick(s.mgr.Clock())
						if twbg.Deadlocked(s.mgr.Table()) {
							t.Errorf("mix %d seed %d: deadlock at end of run:\n%s", mi, seed, s.mgr.Table())
						}
					}
				}
			}
		})
	}
}
