package twbg

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

// tableSeq generates random reachable lock tables for quick.Check.
type tableSeq []uint16

// Generate implements quick.Generator.
func (tableSeq) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size*6 + 10)
	s := make(tableSeq, n)
	for i := range s {
		s[i] = uint16(r.Uint32())
	}
	return reflect.ValueOf(s)
}

func (s tableSeq) table() *table.Table {
	tb := table.New()
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	resources := []table.ResourceID{"g1", "g2", "g3", "g4"}
	for _, code := range s {
		txn := table.TxnID(code&0x07 + 1)
		switch (code >> 3) % 8 {
		case 6:
			if !tb.Blocked(txn) {
				tb.Release(txn)
			}
		case 7:
			tb.Abort(txn)
		default:
			if tb.Blocked(txn) {
				continue
			}
			tb.Request(txn, resources[(code>>6)%4], modes[int(code>>8)%len(modes)])
		}
	}
	return tb
}

// TestQuickTRRPStructure: on any reachable state, the TRRP decomposition
// has exactly one path per H edge; every path starts with its H edge
// followed only by W edges of the same resource, chained head-to-tail.
func TestQuickTRRPStructure(t *testing.T) {
	f := func(s tableSeq) bool {
		g := Build(s.table())
		hEdges := 0
		for _, e := range g.Edges() {
			if e.Label == H {
				hEdges++
			}
		}
		paths := g.TRRPs()
		if len(paths) != hEdges {
			return false
		}
		for _, p := range paths {
			if p.Edges[0].Label != H {
				return false
			}
			for i, e := range p.Edges {
				if e.Resource != p.Resource {
					return false
				}
				if i > 0 {
					if e.Label != W || p.Edges[i-1].To != e.From {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickWEdgesMirrorQueues: the W edges of the graph are exactly the
// adjacent pairs of every queue.
func TestQuickWEdgesMirrorQueues(t *testing.T) {
	f := func(s tableSeq) bool {
		tb := s.table()
		g := Build(tb)
		want := make(map[Edge]bool)
		for _, r := range tb.Resources() {
			q := r.Queue()
			for i := 0; i+1 < len(q); i++ {
				want[Edge{From: q[i].Txn, To: q[i+1].Txn, Label: W, Resource: r.ID(), Mode: q[i].Blocked}] = true
			}
		}
		got := 0
		for _, e := range g.Edges() {
			if e.Label != W {
				continue
			}
			if !want[e] {
				return false
			}
			got++
		}
		return got == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickEdgesPointAtBlockedTargets: every H/W edge targets a blocked
// transaction (only blocked transactions wait on someone).
func TestQuickEdgeTargetsBlocked(t *testing.T) {
	f := func(s tableSeq) bool {
		tb := s.table()
		g := Build(tb)
		for _, e := range g.Edges() {
			if !tb.Blocked(e.To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
