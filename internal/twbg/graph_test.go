package twbg

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

func mustReq(t *testing.T, tb *table.Table, txn table.TxnID, rid table.ResourceID, m lock.Mode, wantGrant bool) {
	t.Helper()
	g, err := tb.Request(txn, rid, m)
	if err != nil {
		t.Fatalf("Request(%v,%s,%v): %v", txn, rid, m, err)
	}
	if g != wantGrant {
		t.Fatalf("Request(%v,%s,%v): granted=%v, want %v\n%s", txn, rid, m, g, wantGrant, tb)
	}
}

// example41 builds the exact situation of Example 4.1 of the paper.
func example41(t *testing.T) *table.Table {
	t.Helper()
	tb := table.New()
	mustReq(t, tb, 1, "R1", lock.IX, true)
	mustReq(t, tb, 2, "R1", lock.IS, true)
	mustReq(t, tb, 3, "R1", lock.IX, true)
	mustReq(t, tb, 4, "R1", lock.IS, true)
	mustReq(t, tb, 7, "R2", lock.IS, true)
	mustReq(t, tb, 2, "R1", lock.S, false)
	mustReq(t, tb, 1, "R1", lock.S, false)
	mustReq(t, tb, 5, "R1", lock.IX, false)
	mustReq(t, tb, 6, "R1", lock.S, false)
	mustReq(t, tb, 7, "R1", lock.IX, false)
	mustReq(t, tb, 8, "R2", lock.X, false)
	mustReq(t, tb, 9, "R2", lock.IX, false)
	mustReq(t, tb, 3, "R2", lock.S, false)
	mustReq(t, tb, 4, "R2", lock.X, false)
	return tb
}

// example51 builds the situation of Example 5.1.
func example51(t *testing.T) *table.Table {
	t.Helper()
	tb := table.New()
	mustReq(t, tb, 1, "R1", lock.S, true)
	mustReq(t, tb, 2, "R2", lock.S, true)
	mustReq(t, tb, 3, "R2", lock.S, true)
	mustReq(t, tb, 2, "R1", lock.X, false)
	mustReq(t, tb, 3, "R1", lock.S, false)
	mustReq(t, tb, 1, "R2", lock.X, false)
	return tb
}

func edgeSet(g *Graph) map[string]bool {
	s := make(map[string]bool)
	for _, e := range g.Edges() {
		s[fmt.Sprintf("%v->%v:%v", e.From, e.To, e.Label)] = true
	}
	return s
}

// TestExample41Graph checks Figure 4.1 of the paper edge by edge
// (experiment E4).
func TestExample41Graph(t *testing.T) {
	g := Build(example41(t))
	want := []string{
		// R1 ECR-1: T1 blocks T2's S upgrade (gm IX); T3's IX blocks both upgrades.
		"T1->T2:H", "T3->T1:H", "T3->T2:H",
		// R1 ECR-2: T5 conflicts with T1 and T2 (their bm); T6 with T3 (gm IX);
		// T4 blocks nobody.
		"T1->T5:H", "T2->T5:H", "T3->T6:H",
		// R1 ECR-3.
		"T5->T6:W", "T6->T7:W",
		// R2 ECR-2 and ECR-3.
		"T7->T8:H", "T8->T9:W", "T9->T3:W", "T3->T4:W",
	}
	got := edgeSet(g)
	if len(got) != len(want) {
		t.Errorf("edge count = %d, want %d: %v", len(got), len(want), g.Edges())
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing edge %s", w)
		}
	}
	if g.NumEdges() != len(want) {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

// TestExample41Cycles verifies the four elementary cycles the paper
// counts in Figure 4.1.
func TestExample41Cycles(t *testing.T) {
	g := Build(example41(t))
	cycles := g.Cycles(0)
	if len(cycles) != 4 {
		t.Fatalf("found %d cycles, want 4: %v", len(cycles), cycles)
	}
	var canon []string
	for _, c := range cycles {
		parts := make([]string, len(c))
		for i, v := range c {
			parts[i] = v.String()
		}
		canon = append(canon, strings.Join(parts, ","))
	}
	sort.Strings(canon)
	want := []string{
		"T1,T2,T5,T6,T7,T8,T9,T3", // the cycle the paper walks through
		"T1,T5,T6,T7,T8,T9,T3",
		"T2,T5,T6,T7,T8,T9,T3",
		"T3,T6,T7,T8,T9",
	}
	sort.Strings(want)
	for i := range want {
		if canon[i] != want[i] {
			t.Errorf("cycle %d = %s, want %s", i, canon[i], want[i])
		}
	}
	if !g.HasCycle() {
		t.Error("HasCycle must be true")
	}
}

// TestExample41TRRPs verifies the TRRP decomposition, including the four
// TRRPs of the paper's chosen cycle: (T1,T2), (T2,T5,T6,T7),
// (T7,T8,T9,T3), (T3,T1).
func TestExample41TRRPs(t *testing.T) {
	g := Build(example41(t))
	var reprs []string
	for _, p := range g.TRRPs() {
		reprs = append(reprs, p.String())
	}
	// One TRRP per H edge: 7 H edges.
	if len(reprs) != 7 {
		t.Fatalf("got %d TRRPs: %v", len(reprs), reprs)
	}
	for _, want := range []string{
		"(T1, T2)",
		"(T2, T5, T6, T7)",
		"(T7, T8, T9, T3, T4)", // full queue tail; the cycle uses its prefix
		"(T3, T1)",
		"(T3, T2)",
		"(T1, T5, T6, T7)",
		"(T3, T6, T7)",
	} {
		found := false
		for _, r := range reprs {
			if r == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing TRRP %s in %v", want, reprs)
		}
	}
}

// TestExample51Graph checks Figure 5.2: cycles {T1,T2,T3} and {T1,T2}.
func TestExample51Graph(t *testing.T) {
	g := Build(example51(t))
	want := []string{"T1->T2:H", "T2->T3:W", "T2->T1:H", "T3->T1:H"}
	got := edgeSet(g)
	if len(got) != len(want) {
		t.Errorf("edges = %v", g.Edges())
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing edge %s", w)
		}
	}
	cycles := g.Cycles(0)
	if len(cycles) != 2 {
		t.Fatalf("cycles = %v, want 2", cycles)
	}
}

// TestExample41Properties: after TDR-2 repositioning and rescheduling
// (the paper's modified situation) the graph must be acyclic
// (Figure 4.2) — here built through the table operations directly.
func TestExample41ModifiedAcyclic(t *testing.T) {
	tb := example41(t)
	tb.RepositionAVST("R2", 3)
	tb.ScheduleQueue("R2")
	g := Build(tb)
	if g.HasCycle() {
		t.Fatalf("modified situation must be acyclic:\n%s\n%s", tb, g.DOT())
	}
	if Deadlocked(tb) {
		t.Fatal("modified situation must not be deadlocked")
	}
}

// TestCycleIffDeadlock is the Theorem 1 property test (experiment E13):
// on thousands of random lock-table states, the H/W-TWBG has a cycle
// exactly when the ground-truth oracle says the system is deadlocked.
func TestCycleIffDeadlock(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := table.New()
		for step := 0; step < 1500; step++ {
			txn := table.TxnID(1 + rng.Intn(10))
			switch op := rng.Intn(12); {
			case op < 8:
				if tb.Blocked(txn) {
					continue
				}
				rid := table.ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(5)))
				if _, err := tb.Request(txn, rid, modes[rng.Intn(len(modes))]); err != nil {
					t.Fatal(err)
				}
			case op < 10:
				if tb.Blocked(txn) {
					continue
				}
				if _, err := tb.Release(txn); err != nil {
					t.Fatal(err)
				}
			default:
				tb.Abort(txn)
			}
			g := Build(tb)
			cyc := g.HasCycle()
			dead := Deadlocked(tb)
			if cyc != dead {
				t.Fatalf("seed %d step %d: HasCycle=%v but Deadlocked=%v\n%s\n%s",
					seed, step, cyc, dead, tb, g.DOT())
			}
			if dead {
				// Clear the deadlock so the run continues: abort one
				// member of the deadlock set.
				set := DeadlockSet(tb)
				tb.Abort(set[rng.Intn(len(set))])
			}
		}
	}
}

// TestGraphStructuralLemmas checks Lemmas 1-3 on random deadlocked
// states: every cycle contains at least two H edges (hence at least two
// TRRPs) and no cycle is W-only.
func TestGraphStructuralLemmas(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	checked := 0
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := table.New()
		for step := 0; step < 400; step++ {
			txn := table.TxnID(1 + rng.Intn(8))
			if tb.Blocked(txn) {
				continue
			}
			rid := table.ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(4)))
			if _, err := tb.Request(txn, rid, modes[rng.Intn(len(modes))]); err != nil {
				t.Fatal(err)
			}
			g := Build(tb)
			for _, cyc := range g.Cycles(50) {
				checked++
				hCount := 0
				for i, v := range cyc {
					next := cyc[(i+1)%len(cyc)]
					found := false
					for _, e := range g.Out(v) {
						if e.To == next {
							found = true
							if e.Label == H {
								hCount++
							}
							break
						}
					}
					if !found {
						t.Fatalf("cycle %v has no edge %v->%v", cyc, v, next)
					}
				}
				if hCount < 2 {
					t.Fatalf("cycle %v has %d H edges; Lemma 3 requires >= 2\n%s", cyc, hCount, tb)
				}
			}
			if g.HasCycle() {
				set := DeadlockSet(tb)
				tb.Abort(set[rng.Intn(len(set))])
			}
		}
	}
	if checked == 0 {
		t.Fatal("no cycles were generated; the property was never exercised")
	}
}

// TestAxiom1 verifies that no transaction ever has more than one
// outgoing W edge (a transaction is in at most one queue).
func TestAxiom1SingleWEdge(t *testing.T) {
	g := Build(example41(t))
	for _, v := range g.Vertices() {
		wCount := 0
		for _, e := range g.Out(v) {
			if e.Label == W {
				wCount++
			}
		}
		if wCount > 1 {
			t.Errorf("%v has %d outgoing W edges", v, wCount)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := Build(table.New())
	if g.HasCycle() || g.NumEdges() != 0 || len(g.Vertices()) != 0 {
		t.Fatal("empty table must produce an empty graph")
	}
	if cs := g.Cycles(0); len(cs) != 0 {
		t.Fatalf("cycles = %v", cs)
	}
	if Deadlocked(table.New()) {
		t.Fatal("empty table must not be deadlocked")
	}
}

func TestCyclesLimit(t *testing.T) {
	g := Build(example41(t))
	if cs := g.Cycles(2); len(cs) != 2 {
		t.Fatalf("limit 2 returned %d cycles", len(cs))
	}
	if cs := g.Cycles(1); len(cs) != 1 {
		t.Fatalf("limit 1 returned %d cycles", len(cs))
	}
}

func TestDOT(t *testing.T) {
	g := Build(example51(t))
	dot := g.DOT()
	for _, want := range []string{"digraph HWTWBG", "T1 -> T2", "style=dashed", "style=solid", "W@R1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestHasEdgeAndLabels(t *testing.T) {
	g := Build(example51(t))
	if !g.HasEdge(1, 2) || g.HasEdge(3, 2) {
		t.Error("HasEdge wrong")
	}
	if H.String() != "H" || W.String() != "W" {
		t.Error("label strings wrong")
	}
	e := Edge{From: 1, To: 2, Label: H, Resource: "R1"}
	if e.String() != "T1->T2[H@R1]" {
		t.Errorf("Edge.String() = %q", e.String())
	}
}

// TestDeadlockSetMinimalExample: the classic two-transaction deadlock.
func TestDeadlockSetTwoTxn(t *testing.T) {
	tb := table.New()
	mustReq(t, tb, 1, "A", lock.X, true)
	mustReq(t, tb, 2, "B", lock.X, true)
	mustReq(t, tb, 1, "B", lock.X, false)
	mustReq(t, tb, 2, "A", lock.X, false)
	set := DeadlockSet(tb)
	if len(set) != 2 || set[0] != 1 || set[1] != 2 {
		t.Fatalf("DeadlockSet = %v", set)
	}
	g := Build(tb)
	if !g.HasCycle() {
		t.Fatal("two-txn deadlock must have a cycle")
	}
}

// TestConversionDeadlockDetected: the S->X double-upgrade deadlock is a
// cycle made purely of ECR-1 edges between two blocked upgraders.
func TestConversionDeadlockDetected(t *testing.T) {
	tb := table.New()
	mustReq(t, tb, 1, "A", lock.S, true)
	mustReq(t, tb, 2, "A", lock.S, true)
	mustReq(t, tb, 1, "A", lock.X, false)
	mustReq(t, tb, 2, "A", lock.X, false)
	g := Build(tb)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatalf("expected mutual H edges, got %v", g.Edges())
	}
	if !g.HasCycle() || !Deadlocked(tb) {
		t.Fatal("conversion deadlock must be detected")
	}
}

func BenchmarkBuildExample41(b *testing.B) {
	tb := table.New()
	reqs := []struct {
		txn  table.TxnID
		rid  table.ResourceID
		mode lock.Mode
	}{
		{1, "R1", lock.IX}, {2, "R1", lock.IS}, {3, "R1", lock.IX}, {4, "R1", lock.IS},
		{7, "R2", lock.IS}, {2, "R1", lock.S}, {1, "R1", lock.S}, {5, "R1", lock.IX},
		{6, "R1", lock.S}, {7, "R1", lock.IX}, {8, "R2", lock.X}, {9, "R2", lock.IX},
		{3, "R2", lock.S}, {4, "R2", lock.X},
	}
	for _, r := range reqs {
		if _, err := tb.Request(r.txn, r.rid, r.mode); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := Build(tb)
		if !g.HasCycle() {
			b.Fatal("must have cycle")
		}
	}
}
