// Package twbg implements the Holder/Waiter Transaction Waited-By Graph
// (H/W-TWBG) of Section 4 of the paper: a directed graph over transaction
// identifiers in which an edge Ti -> Tj labeled H or W means the
// completion of Ti is waited by Tj (Tj waits for Ti), Ti being either a
// holder of the resource Tj waits on (H) or another waiter preceding Tj
// in its queue (W).
//
// The graph is built from a lock-table snapshot by the three Edge
// Construction Rules (ECR). The package also provides the TRRP
// (Transaction Resource Request Path) decomposition, cycle detection and
// elementary-cycle enumeration (Johnson-style, used by tests and tools;
// the production detector in internal/detect never enumerates cycles),
// and Graphviz DOT export.
package twbg

import (
	"fmt"
	"sort"
	"strings"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

// Label distinguishes holder edges from waiter edges.
type Label uint8

const (
	// H labels an edge whose source holds the resource the target waits on.
	H Label = iota
	// W labels an edge between two adjacent waiters in a queue.
	W
)

// String returns "H" or "W".
func (l Label) String() string {
	if l == H {
		return "H"
	}
	return "W"
}

// Edge is one H/W-TWBG edge: To waits for the completion of From.
type Edge struct {
	From, To table.TxnID
	Label    Label
	Resource table.ResourceID // the resource that induced the edge
	Mode     lock.Mode        // W edges: the source's blocked mode (the TST encoding); H edges: NL
}

// String prints "T1->T2[H@R1]".
func (e Edge) String() string {
	return fmt.Sprintf("%v->%v[%v@%s]", e.From, e.To, e.Label, string(e.Resource))
}

// TRRP is a Transaction Resource Request Path: one H-labeled edge
// followed by the (possibly empty) chain of W-labeled edges below it in
// the same resource's queue. A TRRP shows a partial status of the holder
// list and the queue of a single resource.
type TRRP struct {
	Resource table.ResourceID
	Edges    []Edge // Edges[0] is the H edge; the rest are W edges
}

// Vertices returns the transactions along the path, head first.
func (p TRRP) Vertices() []table.TxnID {
	vs := []table.TxnID{p.Edges[0].From}
	for _, e := range p.Edges {
		vs = append(vs, e.To)
	}
	return vs
}

// String prints "(T7, T8, T9, T3)" as the paper writes TRRPs.
func (p TRRP) String() string {
	parts := make([]string, 0, len(p.Edges)+1)
	for _, v := range p.Vertices() {
		parts = append(parts, v.String())
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Graph is an immutable H/W-TWBG snapshot.
type Graph struct {
	edges []Edge
	out   map[table.TxnID][]Edge
	verts []table.TxnID
}

// Source is what Build reads: any lock table (or multi-shard adapter)
// that can iterate its locked resources in id order.
type Source interface {
	EachResource(f func(*table.Resource) bool)
}

// Build constructs the H/W-TWBG for the current state of tb by applying
// the Edge Construction Rules to every locked resource:
//
//	ECR-1: for holder entries (Ti,gmi,bmi) preceding (Tj,gmj,bmj):
//	       if !Comp(gmi,bmj) or !Comp(bmi,bmj) add Ti->Tj (H);
//	       if !Comp(bmi,gmj) add Tj->Ti (H).
//	ECR-2: for each holder entry, add an H edge to the first queue
//	       member whose blocked mode conflicts with its gm or bm.
//	ECR-3: add a W edge between each pair of adjacent queue members.
func Build(tb Source) *Graph {
	g := &Graph{out: make(map[table.TxnID][]Edge)}
	seen := make(map[table.TxnID]bool)
	addVert := func(t table.TxnID) {
		if !seen[t] {
			seen[t] = true
			g.verts = append(g.verts, t)
		}
	}
	add := func(e Edge) {
		g.edges = append(g.edges, e)
		g.out[e.From] = append(g.out[e.From], e)
		addVert(e.From)
		addVert(e.To)
	}
	tb.EachResource(func(r *table.Resource) bool {
		hn, qn := r.NumHolders(), r.QueueLen()
		// ECR-1.
		for i := 0; i < hn; i++ {
			hi := r.HolderAt(i)
			for j := i + 1; j < hn; j++ {
				hj := r.HolderAt(j)
				if !lock.Comp(hi.Granted, hj.Blocked) || !lock.Comp(hi.Blocked, hj.Blocked) {
					add(Edge{From: hi.Txn, To: hj.Txn, Label: H, Resource: r.ID()})
				}
				if !lock.Comp(hi.Blocked, hj.Granted) {
					add(Edge{From: hj.Txn, To: hi.Txn, Label: H, Resource: r.ID()})
				}
			}
		}
		// ECR-2.
		for i := 0; i < hn; i++ {
			h := r.HolderAt(i)
			for j := 0; j < qn; j++ {
				w := r.QueueAt(j)
				if !lock.Comp(w.Blocked, h.Granted) || !lock.Comp(w.Blocked, h.Blocked) {
					add(Edge{From: h.Txn, To: w.Txn, Label: H, Resource: r.ID()})
					break
				}
			}
		}
		// ECR-3.
		for i := 0; i+1 < qn; i++ {
			add(Edge{From: r.QueueAt(i).Txn, To: r.QueueAt(i + 1).Txn, Label: W, Resource: r.ID(), Mode: r.QueueAt(i).Blocked})
		}
		// Holders and lone queue members are vertices even without edges.
		for i := 0; i < hn; i++ {
			addVert(r.HolderAt(i).Txn)
		}
		for i := 0; i < qn; i++ {
			addVert(r.QueueAt(i).Txn)
		}
		return true
	})
	sort.Slice(g.verts, func(i, j int) bool { return g.verts[i] < g.verts[j] })
	return g
}

// Edges returns all edges in deterministic construction order
// (resources sorted by id; ECR-1, ECR-2, ECR-3 within each).
func (g *Graph) Edges() []Edge { return append([]Edge(nil), g.edges...) }

// Vertices returns all transactions appearing in the graph, sorted.
func (g *Graph) Vertices() []table.TxnID { return append([]table.TxnID(nil), g.verts...) }

// Out returns the outgoing edges of v in construction order.
func (g *Graph) Out(v table.TxnID) []Edge { return append([]Edge(nil), g.out[v]...) }

// HasEdge reports whether an edge from -> to exists with any label.
func (g *Graph) HasEdge(from, to table.TxnID) bool {
	for _, e := range g.out[from] {
		if e.To == to {
			return true
		}
	}
	return false
}

// NumEdges returns the edge count (the paper's e).
func (g *Graph) NumEdges() int { return len(g.edges) }

// TRRPs decomposes the graph into its Transaction Resource Request
// Paths: for every H edge, the path consisting of that edge followed by
// all W edges below its target in the same resource's queue.
func (g *Graph) TRRPs() []TRRP {
	// Index W edges by (resource, source txn); a queue member has at
	// most one successor.
	wNext := make(map[string]Edge)
	key := func(rid table.ResourceID, t table.TxnID) string {
		return string(rid) + "/" + t.String()
	}
	for _, e := range g.edges {
		if e.Label == W {
			wNext[key(e.Resource, e.From)] = e
		}
	}
	var out []TRRP
	for _, e := range g.edges {
		if e.Label != H {
			continue
		}
		p := TRRP{Resource: e.Resource, Edges: []Edge{e}}
		cur := e.To
		for {
			w, ok := wNext[key(e.Resource, cur)]
			if !ok {
				break
			}
			p.Edges = append(p.Edges, w)
			cur = w.To
		}
		out = append(out, p)
	}
	return out
}

// HasCycle reports whether the graph contains a directed cycle
// (equivalently, per Theorem 1, whether the system is deadlocked).
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[table.TxnID]int, len(g.verts))
	var visit func(v table.TxnID) bool
	visit = func(v table.TxnID) bool {
		color[v] = gray
		for _, e := range g.out[v] {
			switch color[e.To] {
			case white:
				if visit(e.To) {
					return true
				}
			case gray:
				return true
			}
		}
		color[v] = black
		return false
	}
	for _, v := range g.verts {
		if color[v] == white && visit(v) {
			return true
		}
	}
	return false
}

// Cycles enumerates the elementary cycles of the graph, each returned as
// the vertex sequence starting from its smallest transaction id. The
// enumeration is capped at limit cycles (limit <= 0 means no cap). This
// is Johnson's problem [15]; the paper's detector deliberately avoids it,
// so Cycles exists for tests, tools and analyses only.
func (g *Graph) Cycles(limit int) [][]table.TxnID {
	var out [][]table.TxnID
	blockedOnPath := make(map[table.TxnID]bool)
	var path []table.TxnID
	var dfs func(start, v table.TxnID) bool // returns false when the cap is hit
	dfs = func(start, v table.TxnID) bool {
		path = append(path, v)
		blockedOnPath[v] = true
		defer func() {
			path = path[:len(path)-1]
			delete(blockedOnPath, v)
		}()
		for _, e := range g.out[v] {
			if e.To == start {
				out = append(out, append([]table.TxnID(nil), path...))
				if limit > 0 && len(out) >= limit {
					return false
				}
				continue
			}
			// Only explore vertices greater than start so each cycle is
			// found exactly once, rooted at its minimum vertex.
			if e.To < start || blockedOnPath[e.To] {
				continue
			}
			if !dfs(start, e.To) {
				return false
			}
		}
		return true
	}
	for _, v := range g.verts {
		if !dfs(v, v) {
			break
		}
	}
	return out
}

// DOT renders the graph in Graphviz format; H edges are solid, W edges
// dashed, and every edge is annotated with its resource.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph HWTWBG {\n  rankdir=LR;\n  node [shape=circle];\n")
	for _, v := range g.verts {
		fmt.Fprintf(&b, "  %v;\n", v)
	}
	for _, e := range g.edges {
		style := "solid"
		if e.Label == W {
			style = "dashed"
		}
		fmt.Fprintf(&b, "  %v -> %v [label=%q, style=%s];\n", e.From, e.To, fmt.Sprintf("%v@%s", e.Label, string(e.Resource)), style)
	}
	b.WriteString("}\n")
	return b.String()
}
