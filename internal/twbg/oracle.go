package twbg

import "hwtwbg/internal/table"

// Deadlocked is the ground-truth deadlock oracle implementing
// Definition 1 of the paper's appendix directly: the system is in a
// deadlock iff there is a non-empty set of blocked transactions that can
// never proceed even if every other transaction runs to completion and
// releases its resources.
//
// It works on a clone of the table by repeatedly committing every
// runnable transaction (the maximal-release assumption) until none is
// left; any survivors form a deadlock set. It is exponential-free but
// O(n^2) in the worst case, and exists to validate Theorem 1 (cycle in
// H/W-TWBG <=> deadlock) in tests and analyses; production code uses the
// graph.
func Deadlocked(tb *table.Table) bool {
	return len(DeadlockSet(tb)) > 0
}

// DeadlockSet returns the maximal deadlock set of the current state: the
// transactions that cannot proceed no matter how the runnable ones
// complete. The result is sorted; it is empty iff the system is
// deadlock-free.
func DeadlockSet(tb *table.Table) []table.TxnID {
	c := tb.Clone()
	for {
		progressed := false
		for _, txn := range c.Txns() {
			if !c.Blocked(txn) {
				if _, err := c.Release(txn); err != nil {
					// Cannot happen: only blocked commits fail.
					panic("twbg: oracle release failed: " + err.Error())
				}
				progressed = true
			}
		}
		if !progressed {
			return c.Txns()
		}
	}
}
