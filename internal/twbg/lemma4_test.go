package twbg

import (
	"fmt"
	"math/rand"
	"testing"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

// TestLemma4UniqueEdgesInMDS checks the appendix's Lemma 4: in a
// minimal deadlock set, once every other transaction is removed from
// the system, each member has exactly one incoming and one outgoing
// edge in the H/W-TWBG (i.e. the members form a simple cycle).
//
// The test finds elementary cycles on random deadlocked states, reduces
// each candidate on a clone by removing every non-member (committing
// runnable transactions, aborting blocked ones), verifies the remnant
// is still deadlocked with exactly the candidate as its deadlock set
// (minimality), and then checks the degree property.
func TestLemma4UniqueEdgesInMDS(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	verified := 0
	for seed := int64(900); seed < 940; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := table.New()
		for step := 0; step < 300; step++ {
			txn := table.TxnID(1 + rng.Intn(8))
			if tb.Blocked(txn) {
				continue
			}
			rid := table.ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(4)))
			if _, err := tb.Request(txn, rid, modes[rng.Intn(len(modes))]); err != nil {
				t.Fatal(err)
			}
			g := Build(tb)
			for _, cyc := range g.Cycles(8) {
				if checkLemma4(t, tb, cyc) {
					verified++
				}
			}
			if g.HasCycle() {
				set := DeadlockSet(tb)
				tb.Abort(set[rng.Intn(len(set))])
			}
		}
	}
	if verified < 20 {
		t.Fatalf("only %d minimal deadlock sets verified; the lemma was barely exercised", verified)
	}
	t.Logf("verified Lemma 4 on %d minimal deadlock sets", verified)
}

// checkLemma4 reduces the state to the candidate set and, if the
// candidate is a minimal deadlock set, asserts the degree property.
// It reports whether the candidate was verified.
func checkLemma4(t *testing.T, tb *table.Table, candidate []table.TxnID) bool {
	t.Helper()
	member := make(map[table.TxnID]bool, len(candidate))
	for _, v := range candidate {
		member[v] = true
	}
	c := tb.Clone()
	// Remove every non-member: commit the runnable, abort the blocked,
	// looping because removals unblock others.
	for {
		progressed := false
		for _, id := range c.Txns() {
			if member[id] {
				continue
			}
			if c.Blocked(id) {
				c.Abort(id)
			} else if _, err := c.Release(id); err != nil {
				t.Fatal(err)
			}
			progressed = true
		}
		if !progressed {
			break
		}
	}
	// The candidate is an MDS only if (a) the remnant deadlock set is
	// exactly the candidate and (b) no proper subset is a deadlock set.
	// (b) holds iff aborting any single member clears every deadlock:
	// if some proper subset S' were deadlocked, it would survive the
	// abort of a member outside S'. Note an elementary cycle of the
	// full graph need not be minimal in this sense — a smaller inner
	// cycle can be doing the real deadlocking.
	set := DeadlockSet(c)
	if len(set) != len(candidate) {
		return false
	}
	for _, id := range set {
		if !member[id] {
			return false
		}
	}
	for _, m := range candidate {
		probe := c.Clone()
		probe.Abort(m)
		if Deadlocked(probe) {
			return false // a proper subset is still deadlocked: not minimal
		}
	}
	g := Build(c)
	in := make(map[table.TxnID]int)
	out := make(map[table.TxnID]int)
	for _, e := range g.Edges() {
		// Only count edges within the member set; the reduced table may
		// retain granted-but-idle members' edges to nothing else anyway.
		if member[e.From] && member[e.To] {
			out[e.From]++
			in[e.To]++
		}
	}
	for _, v := range candidate {
		if in[v] != 1 || out[v] != 1 {
			t.Fatalf("Lemma 4 violated: %v has in=%d out=%d in reduced state:\n%s\n%s",
				v, in[v], out[v], c, g.DOT())
		}
	}
	return true
}
