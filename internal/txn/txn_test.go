package txn

import (
	"errors"
	"testing"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

func TestLifecycle(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	if a.ID != 1 || b.ID != 2 {
		t.Fatalf("ids = %v, %v", a.ID, b.ID)
	}
	if g, err := m.Request(a, "X", lock.X); err != nil || !g {
		t.Fatalf("a lock: %v %v", g, err)
	}
	if g, err := m.Request(b, "X", lock.S); err != nil || g {
		t.Fatalf("b lock: %v %v", g, err)
	}
	if b.Status() != Blocked {
		t.Fatalf("b status = %v", b.Status())
	}
	if err := m.Commit(a); err != nil {
		t.Fatal(err)
	}
	if a.Status() != Committed || !a.Done() {
		t.Fatalf("a status = %v", a.Status())
	}
	if b.Status() != Active {
		t.Fatalf("b must be unblocked by a's commit, got %v", b.Status())
	}
	if err := m.Commit(b); err != nil {
		t.Fatal(err)
	}
	if got := m.Active(); len(got) != 0 {
		t.Fatalf("Active() = %v", got)
	}
}

func TestRequestErrors(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	if _, err := m.Request(a, "X", lock.X); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Request(b, "X", lock.X); err != nil {
		t.Fatal(err)
	}
	// Blocked transactions cannot request or commit.
	if _, err := m.Request(b, "Y", lock.S); !errors.Is(err, ErrNotActive) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Commit(b); !errors.Is(err, ErrNotActive) {
		t.Fatalf("err = %v", err)
	}
	m.Abort(a)
	if a.Status() != Aborted {
		t.Fatalf("a = %v", a.Status())
	}
	// Committing an aborted transaction fails; double abort is a no-op.
	if err := m.Commit(a); !errors.Is(err, ErrNotActive) {
		t.Fatalf("err = %v", err)
	}
	m.Abort(a)
	// b got the lock when a aborted.
	if b.Status() != Active {
		t.Fatalf("b = %v", b.Status())
	}
	if err := m.AbortID(99); !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v", err)
	}
	if err := m.AbortID(b.ID); err != nil {
		t.Fatal(err)
	}
}

func TestRestartCarriesCount(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	m.Abort(a)
	b := m.Restart(a)
	if b.Restarts != 1 || b.ID == a.ID {
		t.Fatalf("restart = %+v", b)
	}
	m.Abort(b)
	c := m.Restart(b)
	if c.Restarts != 2 {
		t.Fatalf("restarts = %d", c.Restarts)
	}
}

func TestCostMetrics(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	m.Tick()
	m.Tick()
	b := m.Begin()
	if _, err := m.Request(a, "R1", lock.S); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Request(a, "R2", lock.IX); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Request(b, "R3", lock.S); err != nil {
		t.Fatal(err)
	}
	m.Tick()
	if got := m.LocksHeld(a.ID); got != 2 {
		t.Errorf("LocksHeld(a) = %d", got)
	}
	if got := m.Age(a.ID); got != 3 {
		t.Errorf("Age(a) = %d", got)
	}
	if got := m.Age(b.ID); got != 1 {
		t.Errorf("Age(b) = %d", got)
	}
	if got := m.Work(a.ID); got != 2 {
		t.Errorf("Work(a) = %d", got)
	}
	if m.CostByLocks(a.ID) != 3 || m.CostByAge(a.ID) != 4 || m.CostByWork(a.ID) != 3 {
		t.Errorf("costs = %v %v %v", m.CostByLocks(a.ID), m.CostByAge(a.ID), m.CostByWork(a.ID))
	}
	if m.CostCombined(a.ID) != 10 {
		t.Errorf("combined = %v", m.CostCombined(a.ID))
	}
	// Unknown ids cost the floor values.
	if m.Age(99) != 0 || m.Work(99) != 0 || m.CostByLocks(99) != 1 {
		t.Error("unknown id metrics")
	}
	if m.Clock() != 3 {
		t.Errorf("clock = %d", m.Clock())
	}
}

// TestDetectorIntegration wires a manager to the periodic detector: two
// transactions deadlock, the detector aborts the cheaper one, and after
// MarkAborted+Sync the manager's statuses are consistent.
func TestDetectorIntegration(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	if _, err := m.Request(a, "RA", lock.X); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Request(b, "RB", lock.X); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Request(a, "RB", lock.X); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Request(b, "RA", lock.X); err != nil {
		t.Fatal(err)
	}
	costs := detect.NewCostTable(1)
	costs.Set(a.ID, 10)
	d := detect.New(m.Table(), detect.Config{Costs: costs})
	res := d.Run()
	if len(res.Aborted) != 1 || res.Aborted[0] != b.ID {
		t.Fatalf("aborted = %v, want %v", res.Aborted, b.ID)
	}
	for _, v := range res.Aborted {
		m.MarkAborted(v)
	}
	m.Sync()
	if b.Status() != Aborted {
		t.Fatalf("b = %v", b.Status())
	}
	if a.Status() != Active {
		t.Fatalf("a = %v (should hold both locks now)", a.Status())
	}
	if got := m.Table().HeldMode(a.ID, "RB"); got != lock.X {
		t.Fatalf("a holds %v on RB", got)
	}
	if err := m.Commit(a); err != nil {
		t.Fatal(err)
	}
}

func TestGetAndActive(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	if got, ok := m.Get(a.ID); !ok || got != a {
		t.Fatal("Get failed")
	}
	if _, ok := m.Get(42); ok {
		t.Fatal("Get(42) should fail")
	}
	ids := m.Active()
	if len(ids) != 1 || ids[0] != a.ID {
		t.Fatalf("Active = %v", ids)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Active: "active", Blocked: "blocked", Committed: "committed",
		Aborted: "aborted", Status(9): "Status(9)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestMarkAbortedUnknownAndDone(t *testing.T) {
	m := NewManager()
	m.MarkAborted(7) // unknown: no-op
	a := m.Begin()
	if err := m.Commit(a); err != nil {
		t.Fatal(err)
	}
	m.MarkAborted(a.ID) // done: must not flip status
	if a.Status() != Committed {
		t.Fatalf("a = %v", a.Status())
	}
}

func TestSyncAfterTDR2(t *testing.T) {
	// Reproduce a TDR-2 resolution via the manager: statuses must
	// refresh without any abort.
	m := NewManager()
	txns := make(map[table.TxnID]*Txn)
	begin := func() *Txn { tx := m.Begin(); txns[tx.ID] = tx; return tx }
	req := func(tx *Txn, rid table.ResourceID, mo lock.Mode) {
		t.Helper()
		if _, err := m.Request(tx, rid, mo); err != nil {
			t.Fatal(err)
		}
	}
	t1, t2, t3, t4, t5, t6, t7, t8, t9 := begin(), begin(), begin(), begin(), begin(), begin(), begin(), begin(), begin()
	req(t1, "R1", lock.IX)
	req(t2, "R1", lock.IS)
	req(t3, "R1", lock.IX)
	req(t4, "R1", lock.IS)
	req(t7, "R2", lock.IS)
	req(t2, "R1", lock.S)
	req(t1, "R1", lock.S)
	req(t5, "R1", lock.IX)
	req(t6, "R1", lock.S)
	req(t7, "R1", lock.IX)
	req(t8, "R2", lock.X)
	req(t9, "R2", lock.IX)
	req(t3, "R2", lock.S)
	req(t4, "R2", lock.X)

	res := detect.New(m.Table(), detect.Config{}).Run()
	if len(res.Aborted) != 0 || len(res.Repositioned) != 1 {
		t.Fatalf("res = %+v", res)
	}
	m.Sync()
	if t9.Status() != Active {
		t.Fatalf("T9 = %v, want active after TDR-2 grant", t9.Status())
	}
	for _, tx := range []*Txn{t1, t2, t3, t5, t6, t8} {
		if tx.Status() != Blocked {
			t.Fatalf("%v = %v, want blocked", tx.ID, tx.Status())
		}
	}
}
