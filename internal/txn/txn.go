// Package txn provides a deterministic strict two-phase-locking
// transaction manager over the lock table: transaction lifecycle
// (begin, lock, commit, abort, restart), per-transaction accounting, and
// the victim-cost metrics of Section 5 of the paper ("number of locks it
// holds, starting time of it, the amount of CPU and I/O time which has
// been consumed, and so on").
//
// The manager is single-threaded like the table; the workload simulator
// and the examples drive it with a logical clock. The public hwtwbg
// package provides the goroutine-safe equivalent.
package txn

import (
	"errors"
	"fmt"
	"sort"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

// Status is a transaction's lifecycle state.
type Status uint8

const (
	// Active transactions may issue lock requests.
	Active Status = iota
	// Blocked transactions wait for a lock.
	Blocked
	// Committed transactions have released their locks via commit.
	Committed
	// Aborted transactions were rolled back (deadlock victim or user
	// abort) and may be restarted under a fresh identifier.
	Aborted
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Blocked:
		return "blocked"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Txn is one transaction instance. A restarted transaction is a new Txn
// with a new ID; Restarts counts how many predecessors it had.
type Txn struct {
	ID    table.TxnID
	Start int64 // logical time Begin was called
	// Priority is the timestamp used by prevention schemes (wait-die,
	// wound-wait): smaller is older. For a fresh transaction it encodes
	// (Start, ID) — the id breaks ties between transactions born on the
	// same tick, which the schemes need for totality — and it is
	// inherited across restarts, which is what makes them livelock-free.
	Priority int64
	Ops      int // lock requests issued (granted or not)
	Restarts int // times this logical transaction was aborted and restarted
	status   Status
}

// Status returns the transaction's lifecycle state.
func (t *Txn) Status() Status { return t.status }

// Done reports whether the transaction finished (committed or aborted).
func (t *Txn) Done() bool { return t.status == Committed || t.status == Aborted }

// Manager owns a lock table and the transactions running against it.
type Manager struct {
	tb     *table.Table
	txns   map[table.TxnID]*Txn
	nextID table.TxnID
	now    int64
}

// NewManager returns a manager over a fresh lock table.
func NewManager() *Manager {
	return &Manager{tb: table.New(), txns: make(map[table.TxnID]*Txn), nextID: 1}
}

// Errors reported by the manager.
var (
	ErrNotActive = errors.New("txn: transaction is not active")
	ErrUnknown   = errors.New("txn: unknown transaction")
)

// Table exposes the underlying lock table (detectors attach to it).
func (m *Manager) Table() *table.Table { return m.tb }

// Clock returns the current logical time.
func (m *Manager) Clock() int64 { return m.now }

// Tick advances the logical clock by one.
func (m *Manager) Tick() { m.now++ }

// Begin starts a new transaction.
func (m *Manager) Begin() *Txn {
	t := &Txn{ID: m.nextID, Start: m.now, Priority: m.now<<32 | int64(m.nextID), status: Active}
	m.nextID++
	m.txns[t.ID] = t
	return t
}

// Restart begins a successor of an aborted transaction: a fresh ID with
// the restart count and the original priority carried over.
func (m *Manager) Restart(old *Txn) *Txn {
	t := m.Begin()
	t.Restarts = old.Restarts + 1
	t.Priority = old.Priority
	return t
}

// PriorityOf returns the prevention-scheme timestamp of id (smaller is
// older); unknown transactions rank newest.
func (m *Manager) PriorityOf(id table.TxnID) int64 {
	if t, ok := m.txns[id]; ok {
		return t.Priority
	}
	return 1 << 62
}

// Get returns the transaction with the given id.
func (m *Manager) Get(id table.TxnID) (*Txn, bool) {
	t, ok := m.txns[id]
	return t, ok
}

// Active returns the ids of all live (active or blocked) transactions,
// sorted.
func (m *Manager) Active() []table.TxnID {
	var out []table.TxnID
	for id, t := range m.txns {
		if !t.Done() {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Request asks for a lock on behalf of t. When the request blocks, t's
// status becomes Blocked until a grant or abort; the manager refreshes
// blocked statuses whenever grants happen.
func (m *Manager) Request(t *Txn, rid table.ResourceID, mode lock.Mode) (granted bool, err error) {
	if t.status != Active {
		return false, fmt.Errorf("%w: %v is %v", ErrNotActive, t.ID, t.status)
	}
	t.Ops++
	granted, err = m.tb.Request(t.ID, rid, mode)
	if err != nil {
		return false, err
	}
	if !granted {
		t.status = Blocked
	}
	return granted, nil
}

// Commit releases all of t's locks and marks it committed. Transactions
// unblocked by the released locks become Active again.
func (m *Manager) Commit(t *Txn) error {
	if t.status != Active {
		return fmt.Errorf("%w: %v is %v", ErrNotActive, t.ID, t.status)
	}
	grants, err := m.tb.Release(t.ID)
	if err != nil {
		return err
	}
	t.status = Committed
	m.applyGrants(grants)
	return nil
}

// Abort rolls t back, releasing everything it holds or waits for.
func (m *Manager) Abort(t *Txn) {
	if t.Done() {
		return
	}
	grants := m.tb.Abort(t.ID)
	t.status = Aborted
	m.applyGrants(grants)
}

// AbortID aborts by transaction id; deadlock resolvers report victims
// this way.
func (m *Manager) AbortID(id table.TxnID) error {
	t, ok := m.txns[id]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknown, id)
	}
	m.Abort(t)
	return nil
}

// Sync refreshes the Blocked/Active status of every live transaction
// from the lock table. Detectors mutate the table behind the manager's
// back (TDR-2 repositionings, victim aborts and the grants they cause);
// call Sync after running one.
func (m *Manager) Sync() {
	for id, t := range m.txns {
		if t.Done() {
			continue
		}
		switch {
		case m.tb.Blocked(id):
			t.status = Blocked
		case t.status == Blocked:
			t.status = Active
		}
	}
}

// MarkAborted records that a detector chose id as a victim and already
// removed it from the table.
func (m *Manager) MarkAborted(id table.TxnID) {
	if t, ok := m.txns[id]; ok && !t.Done() {
		t.status = Aborted
	}
}

func (m *Manager) applyGrants(grants []table.Grant) {
	for _, g := range grants {
		if t, ok := m.txns[g.Txn]; ok && t.status == Blocked {
			t.status = Active
		}
	}
}

// LocksHeld counts the locks id currently holds (a victim-cost metric).
func (m *Manager) LocksHeld(id table.TxnID) int { return len(m.tb.Held(id)) }

// Age returns how long id has been running on the logical clock (a
// victim-cost metric: older transactions cost more to abort).
func (m *Manager) Age(id table.TxnID) int64 {
	if t, ok := m.txns[id]; ok {
		return m.now - t.Start
	}
	return 0
}

// Work returns the number of operations id has issued (a stand-in for
// the CPU/IO-consumed metric).
func (m *Manager) Work(id table.TxnID) int {
	if t, ok := m.txns[id]; ok {
		return t.Ops
	}
	return 0
}

// CostByLocks prices a victim by locks held (+1 so the cost is never 0).
func (m *Manager) CostByLocks(id table.TxnID) float64 {
	return float64(m.LocksHeld(id) + 1)
}

// CostByAge prices a victim by its age (+1).
func (m *Manager) CostByAge(id table.TxnID) float64 {
	return float64(m.Age(id) + 1)
}

// CostByWork prices a victim by work performed (+1).
func (m *Manager) CostByWork(id table.TxnID) float64 {
	return float64(m.Work(id) + 1)
}

// CostCombined mixes the three metrics with equal weight, the "some
// combination of the above metrics" of Section 5.
func (m *Manager) CostCombined(id table.TxnID) float64 {
	return m.CostByLocks(id) + m.CostByAge(id) + m.CostByWork(id)
}
