package table

import (
	"fmt"
	"math/rand"
	"testing"

	"hwtwbg/internal/lock"
)

// checkInvariants asserts every structural invariant the scheduling
// policy of Section 3 guarantees at quiescence (between operations).
func checkInvariants(t *testing.T, tb *Table) {
	t.Helper()
	waiters := make(map[TxnID]ResourceID)
	for _, r := range tb.Resources() {
		// 1. The blocked upgraders form a prefix of the holder list.
		seenGranted := false
		for _, h := range r.Holders() {
			if h.Blocked == lock.NL {
				seenGranted = true
			} else if seenGranted {
				t.Fatalf("%s: blocked upgrader %v after a granted holder", r.ID(), h)
			}
		}
		// 2. tm is exactly the conversion-fold of gm and bm over holders.
		want := lock.NL
		for _, h := range r.Holders() {
			want = lock.Join(want, h.Granted, h.Blocked)
		}
		if r.TotalMode() != want {
			t.Fatalf("%s: tm = %v, fold = %v\n%s", r.ID(), r.TotalMode(), want, r)
		}
		// 3. Granted modes are pairwise compatible.
		hs := r.Holders()
		for i := range hs {
			for j := i + 1; j < len(hs); j++ {
				if !lock.Comp(hs[i].Granted, hs[j].Granted) {
					t.Fatalf("%s: incompatible granted modes %v vs %v", r.ID(), hs[i], hs[j])
				}
			}
		}
		// 4. No blocked upgrader is grantable at quiescence
		//    (Theorem 3.1: rescheduling never strands a grantable one).
		for _, h := range hs {
			if h.Blocked == lock.NL {
				continue
			}
			grantable := true
			for _, o := range hs {
				if o.Txn != h.Txn && !lock.Comp(h.Blocked, o.Granted) {
					grantable = false
					break
				}
			}
			if grantable {
				t.Fatalf("%s: blocked upgrader %v is grantable but stranded\n%s", r.ID(), h, r)
			}
		}
		// 5. The queue head is incompatible with tm at quiescence.
		if q := r.Queue(); len(q) > 0 && lock.Comp(q[0].Blocked, r.TotalMode()) {
			t.Fatalf("%s: queue head %v compatible with tm %v but not granted", r.ID(), q[0], r.TotalMode())
		}
		// 6. Axiom 1: no transaction appears twice across all queues, and
		//    wait bookkeeping matches the physical structures.
		for i, q := range r.Queue() {
			if prev, dup := waiters[q.Txn]; dup {
				t.Fatalf("%v queued at both %s and %s", q.Txn, prev, r.ID())
			}
			waiters[q.Txn] = r.ID()
			if rid, m, ok := tb.WaitingOn(q.Txn); !ok || rid != r.ID() || m != q.Blocked {
				t.Fatalf("WaitingOn(%v) = %v,%v,%v; queued at %s pos %d", q.Txn, rid, m, ok, r.ID(), i)
			}
			if _, holds := r.Holder(q.Txn); holds {
				t.Fatalf("%v both holds and queues at %s", q.Txn, r.ID())
			}
		}
		for _, h := range r.Holders() {
			if h.Blocked != lock.NL {
				if prev, dup := waiters[h.Txn]; dup {
					t.Fatalf("%v waits at both %s and %s", h.Txn, prev, r.ID())
				}
				waiters[h.Txn] = r.ID()
				if rid, m, ok := tb.WaitingOn(h.Txn); !ok || rid != r.ID() || m != h.Blocked {
					t.Fatalf("WaitingOn(%v) = %v,%v,%v; upgrading at %s", h.Txn, rid, m, ok, r.ID())
				}
				if !tb.Upgrading(h.Txn) {
					t.Fatalf("%v blocked in holder list but not Upgrading", h.Txn)
				}
			}
		}
	}
	// 7. Every transaction the table believes is blocked really appears
	//    in some queue or blocked prefix.
	for _, txn := range tb.Txns() {
		if tb.Blocked(txn) {
			if _, ok := waiters[txn]; !ok {
				t.Fatalf("%v marked blocked but not found in any structure", txn)
			}
		}
	}
}

// TestRandomWorkloadInvariants drives the table with a long random
// operation stream (requests, conversions, commits, aborts) and checks
// all invariants after every operation (experiment E12's property side).
func TestRandomWorkloadInvariants(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tb := New()
			const nTxn, nRes = 12, 6
			for step := 0; step < 4000; step++ {
				txn := TxnID(1 + rng.Intn(nTxn))
				switch op := rng.Intn(10); {
				case op < 7: // request
					if tb.Blocked(txn) {
						break
					}
					rid := ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(nRes)))
					m := modes[rng.Intn(len(modes))]
					if _, err := tb.Request(txn, rid, m); err != nil {
						t.Fatalf("step %d: Request(%v,%s,%v): %v", step, txn, rid, m, err)
					}
				case op < 9: // commit
					if tb.Blocked(txn) {
						break
					}
					if _, err := tb.Release(txn); err != nil {
						t.Fatalf("step %d: Release(%v): %v", step, txn, err)
					}
				default: // abort (allowed even while blocked)
					tb.Abort(txn)
				}
				checkInvariants(t, tb)
			}
		})
	}
}

// TestRandomAbortAllUnblocks aborts every transaction and verifies the
// table drains completely regardless of the tangle it was in.
func TestRandomAbortAllUnblocks(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	rng := rand.New(rand.NewSource(7))
	tb := New()
	for step := 0; step < 2000; step++ {
		txn := TxnID(1 + rng.Intn(20))
		if tb.Blocked(txn) {
			continue
		}
		rid := ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(8)))
		if _, err := tb.Request(txn, rid, modes[rng.Intn(len(modes))]); err != nil {
			t.Fatal(err)
		}
	}
	for txn := TxnID(1); txn <= 20; txn++ {
		tb.Abort(txn)
		checkInvariants(t, tb)
	}
	if len(tb.Resources()) != 0 {
		t.Fatalf("resources remain after aborting everyone:\n%s", tb)
	}
	if len(tb.Txns()) != 0 {
		t.Fatalf("transactions remain: %v", tb.Txns())
	}
}

func BenchmarkRequestGrant(b *testing.B) {
	tb := New()
	for i := 0; i < b.N; i++ {
		txn := TxnID(i%1000 + 1)
		if _, err := tb.Request(txn, "hot", lock.IS); err != nil {
			b.Fatal(err)
		}
		if i%1000 == 999 {
			for j := 1; j <= 1000; j++ {
				tb.Abort(TxnID(j))
			}
		}
	}
}

func BenchmarkRequestConflictAndAbort(b *testing.B) {
	tb := New()
	for i := 0; i < b.N; i++ {
		a, c := TxnID(2*i+1), TxnID(2*i+2)
		if _, err := tb.Request(a, "hot", lock.X); err != nil {
			b.Fatal(err)
		}
		if _, err := tb.Request(c, "hot", lock.X); err != nil {
			b.Fatal(err)
		}
		tb.Abort(a) // grants c
		tb.Abort(c)
	}
}
