package table

import "hwtwbg/internal/lock"

// WouldGrant predicts, without mutating anything, whether Request(txn,
// rid, m) would be granted immediately. It mirrors the grant tests of
// the scheduling policy (Section 3) exactly:
//
//   - a conversion is granted when the combined mode Conv(gm, m) equals
//     the current gm, or is compatible with every other holder's gm;
//   - a new requestor is granted when the queue is empty and m is
//     compatible with the total mode.
//
// A request the table would refuse with an error (blocked requestor,
// bad mode, null txn) reports false. TryLock is built on this
// prediction; the crosscheck test in wouldgrant_test.go verifies it
// against actual Request outcomes over randomized tables.
func (t *Table) WouldGrant(txn TxnID, rid ResourceID, m lock.Mode) bool {
	if txn == None || !m.Valid() || m == lock.NL {
		return false
	}
	if st, ok := t.txns[txn]; ok && st.waitingOn != nil {
		return false
	}
	r := t.resources[rid]
	if r == nil {
		return true
	}
	if i := r.holderIndex(txn); i >= 0 {
		h := r.holders[i]
		newMode := lock.Conv(h.Granted, m)
		if newMode == h.Granted {
			return true
		}
		return t.compatibleWithOtherHolders(r, txn, newMode)
	}
	return len(r.queue) == 0 && lock.Comp(m, r.total)
}

// HeldCount returns the number of resources on which txn has a holder
// entry, without allocating. The manager's default victim-cost metric
// (locks held + 1) calls this once per candidate during detection.
func (t *Table) HeldCount(txn TxnID) int {
	st, ok := t.txns[txn]
	if !ok {
		return 0
	}
	return len(st.held)
}
