package table

import (
	"testing"

	"hwtwbg/internal/lock"
)

// FuzzTableOps decodes an arbitrary byte string into a stream of table
// operations and checks that no operation sequence can panic the table
// or break its structural invariants. Byte pairs decode as
// (op, argument): request (with txn/resource/mode packed into the
// argument), commit, or abort.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x10, 0x23, 0x20, 0x01})
	f.Add([]byte("crossing locks"))
	f.Add([]byte{0x00, 0x3f, 0x00, 0x00, 0x10, 0x3f, 0x20, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		tb := New()
		modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%3, data[i+1]
			txn := TxnID(arg&0x07 + 1)
			switch op {
			case 0:
				if tb.Blocked(txn) {
					continue
				}
				rid := ResourceID([]string{"a", "b", "c", "d"}[(arg>>3)&0x03])
				m := modes[int(arg>>5)%len(modes)]
				if _, err := tb.Request(txn, rid, m); err != nil {
					t.Fatalf("Request(%v,%s,%v): %v", txn, rid, m, err)
				}
			case 1:
				if tb.Blocked(txn) {
					continue
				}
				if _, err := tb.Release(txn); err != nil {
					t.Fatalf("Release(%v): %v", txn, err)
				}
			default:
				tb.Abort(txn)
			}
			fuzzCheckInvariants(t, tb)
		}
	})
}

// fuzzCheckInvariants is a trimmed copy of the invariant checker used
// by the random-workload test, kept separate so fuzzing stays fast.
func fuzzCheckInvariants(t *testing.T, tb *Table) {
	for _, r := range tb.Resources() {
		want := lock.NL
		granted := false
		for _, h := range r.Holders() {
			want = lock.Join(want, h.Granted, h.Blocked)
			if h.Blocked == lock.NL {
				granted = true
			} else if granted {
				t.Fatalf("%s: blocked upgrader after granted holder", r.ID())
			}
		}
		if r.TotalMode() != want {
			t.Fatalf("%s: tm=%v fold=%v", r.ID(), r.TotalMode(), want)
		}
		if q := r.Queue(); len(q) > 0 && lock.Comp(q[0].Blocked, r.TotalMode()) {
			t.Fatalf("%s: grantable queue head %v stranded", r.ID(), q[0])
		}
	}
}
