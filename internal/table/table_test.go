package table

import (
	"strings"
	"testing"

	"hwtwbg/internal/lock"
)

// mustGrant issues a request that the test expects to be granted.
func mustGrant(t *testing.T, tb *Table, txn TxnID, rid ResourceID, m lock.Mode) {
	t.Helper()
	g, err := tb.Request(txn, rid, m)
	if err != nil {
		t.Fatalf("Request(%v,%s,%v): %v", txn, rid, m, err)
	}
	if !g {
		t.Fatalf("Request(%v,%s,%v) unexpectedly blocked:\n%s", txn, rid, m, tb)
	}
}

// mustBlock issues a request that the test expects to block.
func mustBlock(t *testing.T, tb *Table, txn TxnID, rid ResourceID, m lock.Mode) {
	t.Helper()
	g, err := tb.Request(txn, rid, m)
	if err != nil {
		t.Fatalf("Request(%v,%s,%v): %v", txn, rid, m, err)
	}
	if g {
		t.Fatalf("Request(%v,%s,%v) unexpectedly granted:\n%s", txn, rid, m, tb)
	}
}

// example31 builds the situation of Example 3.1 of the paper just before
// T1's re-request.
func example31(t *testing.T) *Table {
	t.Helper()
	tb := New()
	mustGrant(t, tb, 1, "R1", lock.IS)
	mustGrant(t, tb, 2, "R1", lock.IX)
	mustBlock(t, tb, 3, "R1", lock.S)
	mustBlock(t, tb, 4, "R1", lock.X)
	return tb
}

// TestExample31 reproduces Example 3.1 (experiment E3): T1 holding IS on
// R1 re-requests S; Conv(IS,S)=S is incompatible with T2's IX, so T1
// blocks in the holder list. The printed state must match the paper
// (modulo the paper's own typo in the total mode: by its Section 2
// definition tm = Conv(Conv(Conv(IS,S),IX),NL) = SIX, not the printed IX).
func TestExample31(t *testing.T) {
	tb := example31(t)
	if got := tb.Resource("R1").String(); got != "R1(IX): Holder((T1, IS, NL) (T2, IX, NL)) Queue((T3, S) (T4, X))" {
		t.Fatalf("before conversion:\n got %s", got)
	}
	mustBlock(t, tb, 1, "R1", lock.S)
	want := "R1(SIX): Holder((T1, IS, S) (T2, IX, NL)) Queue((T3, S) (T4, X))"
	if got := tb.Resource("R1").String(); got != want {
		t.Fatalf("after conversion:\n got  %s\n want %s", got, want)
	}
	if rid, m, ok := tb.WaitingOn(1); !ok || rid != "R1" || m != lock.S {
		t.Fatalf("WaitingOn(T1) = %v,%v,%v; want R1,S,true", rid, m, ok)
	}
	if !tb.Upgrading(1) {
		t.Fatal("T1 must be marked as an upgrader")
	}
	if tb.Upgrading(3) {
		t.Fatal("T3 waits in the queue, not as an upgrader")
	}
}

// buildExample41 constructs the two-resource situation of Example 4.1.
func buildExample41(t *testing.T) *Table {
	t.Helper()
	tb := New()
	mustGrant(t, tb, 1, "R1", lock.IX)
	mustGrant(t, tb, 2, "R1", lock.IS)
	mustGrant(t, tb, 3, "R1", lock.IX)
	mustGrant(t, tb, 4, "R1", lock.IS)
	mustGrant(t, tb, 7, "R2", lock.IS)
	mustBlock(t, tb, 2, "R1", lock.S)  // conversion IS->S, blocked by IX holders
	mustBlock(t, tb, 1, "R1", lock.S)  // conversion IX->SIX, blocked by T3's IX
	mustBlock(t, tb, 5, "R1", lock.IX) // queue
	mustBlock(t, tb, 6, "R1", lock.S)  // queue
	mustBlock(t, tb, 7, "R1", lock.IX) // queue
	mustBlock(t, tb, 8, "R2", lock.X)  // queue
	mustBlock(t, tb, 9, "R2", lock.IX) // queue
	mustBlock(t, tb, 3, "R2", lock.S)  // queue
	mustBlock(t, tb, 4, "R2", lock.X)  // queue
	return tb
}

// TestExample41State checks that the construction reproduces the exact
// lock-table lines the paper prints for Example 4.1 (experiment E4),
// including the UPR-2 ordering of T1 before T2 in the holder list.
func TestExample41State(t *testing.T) {
	tb := buildExample41(t)
	wantR1 := "R1(SIX): Holder((T1, IX, SIX) (T2, IS, S) (T3, IX, NL) (T4, IS, NL)) Queue((T5, IX) (T6, S) (T7, IX))"
	wantR2 := "R2(IS): Holder((T7, IS, NL)) Queue((T8, X) (T9, IX) (T3, S) (T4, X))"
	if got := tb.Resource("R1").String(); got != wantR1 {
		t.Errorf("R1:\n got  %s\n want %s", got, wantR1)
	}
	if got := tb.Resource("R2").String(); got != wantR2 {
		t.Errorf("R2:\n got  %s\n want %s", got, wantR2)
	}
}

// TestExample41TDR2 applies TDR-2 at T3's junction as the paper does
// (victim T8) and checks the repositioned queue, then the Step 3 queue
// scheduling and the resulting modified situation of Figure 4.2.
func TestExample41TDR2(t *testing.T) {
	tb := buildExample41(t)
	av, st := tb.RepositionAVST("R2", 3)
	if len(av) != 2 || av[0].Txn != 9 || av[1].Txn != 3 {
		t.Fatalf("AV = %v, want [(T9, IX) (T3, S)]", av)
	}
	if len(st) != 1 || st[0].Txn != 8 {
		t.Fatalf("ST = %v, want [(T8, X)]", st)
	}
	want := "R2(IS): Holder((T7, IS, NL)) Queue((T9, IX) (T3, S) (T8, X) (T4, X))"
	if got := tb.Resource("R2").String(); got != want {
		t.Fatalf("after reposition:\n got  %s\n want %s", got, want)
	}
	grants := tb.ScheduleQueue("R2")
	if len(grants) != 1 || grants[0].Txn != 9 || grants[0].Mode != lock.IX {
		t.Fatalf("grants = %v, want T9 granted IX", grants)
	}
	// The paper's modified situation: T9 granted, T3 still blocked.
	want = "R2(IX): Holder((T9, IX, NL) (T7, IS, NL)) Queue((T3, S) (T8, X) (T4, X))"
	if got := tb.Resource("R2").String(); got != want {
		t.Fatalf("modified situation:\n got  %s\n want %s", got, want)
	}
	if tb.Blocked(9) {
		t.Error("T9 must be unblocked after the grant")
	}
	if !tb.Blocked(3) || !tb.Blocked(8) {
		t.Error("T3 and T8 must remain blocked")
	}
}

// TestExample51 reproduces the lock-table side of Example 5.1: the
// initial situation, then T2's abort, which must grant T3 at R1 (T3 is
// then no longer deadlocked), yielding the final states the paper prints.
func TestExample51(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "R1", lock.S)
	mustGrant(t, tb, 2, "R2", lock.S)
	mustGrant(t, tb, 3, "R2", lock.S)
	mustBlock(t, tb, 2, "R1", lock.X)
	mustBlock(t, tb, 3, "R1", lock.S) // compatible but queued behind T2
	mustBlock(t, tb, 1, "R2", lock.X)

	wantR1 := "R1(S): Holder((T1, S, NL)) Queue((T2, X) (T3, S))"
	wantR2 := "R2(S): Holder((T2, S, NL) (T3, S, NL)) Queue((T1, X))"
	if got := tb.Resource("R1").String(); got != wantR1 {
		t.Fatalf("R1:\n got  %s\n want %s", got, wantR1)
	}
	if got := tb.Resource("R2").String(); got != wantR2 {
		t.Fatalf("R2:\n got  %s\n want %s", got, wantR2)
	}

	grants := tb.Abort(2)
	if len(grants) != 1 || grants[0].Txn != 3 || grants[0].Resource != "R1" {
		t.Fatalf("aborting T2 should grant T3 at R1, got %v", grants)
	}
	wantR1 = "R1(S): Holder((T3, S, NL) (T1, S, NL)) Queue()"
	wantR2 = "R2(S): Holder((T3, S, NL)) Queue((T1, X))"
	if got := tb.Resource("R1").String(); got != wantR1 {
		t.Errorf("R1 after abort:\n got  %s\n want %s", got, wantR1)
	}
	if got := tb.Resource("R2").String(); got != wantR2 {
		t.Errorf("R2 after abort:\n got  %s\n want %s", got, wantR2)
	}
}

func TestImmediateGrantAndCompatibility(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "A", lock.S)
	mustGrant(t, tb, 2, "A", lock.S)
	mustGrant(t, tb, 3, "A", lock.IS)
	mustBlock(t, tb, 4, "A", lock.IX) // IX incompatible with S
	// A compatible request after the queue is non-empty must still queue.
	mustBlock(t, tb, 5, "A", lock.IS)
	q := tb.Resource("A").Queue()
	if len(q) != 2 || q[0].Txn != 4 || q[1].Txn != 5 {
		t.Fatalf("queue = %v", q)
	}
}

func TestCoveredReRequestIsNoop(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "A", lock.SIX)
	before := tb.Resource("A").String()
	mustGrant(t, tb, 1, "A", lock.IS) // SIX covers IS
	mustGrant(t, tb, 1, "A", lock.S)  // SIX covers S
	mustGrant(t, tb, 1, "A", lock.IX) // SIX covers IX
	if got := tb.Resource("A").String(); got != before {
		t.Fatalf("covered re-requests must not change state:\n got  %s\n want %s", got, before)
	}
}

func TestConversionGrantedImmediately(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "A", lock.IS)
	mustGrant(t, tb, 2, "A", lock.IS)
	mustGrant(t, tb, 1, "A", lock.IX) // IX compatible with T2's IS
	if got := tb.HeldMode(1, "A"); got != lock.IX {
		t.Fatalf("T1 mode = %v, want IX", got)
	}
	if got := tb.Resource("A").TotalMode(); got != lock.IX {
		t.Fatalf("tm = %v, want IX", got)
	}
}

func TestRequestWhileBlockedFails(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "A", lock.X)
	mustBlock(t, tb, 2, "A", lock.X)
	if _, err := tb.Request(2, "B", lock.S); err != ErrBlocked {
		t.Fatalf("err = %v, want ErrBlocked", err)
	}
	// Blocked upgraders cannot issue requests either.
	mustGrant(t, tb, 3, "C", lock.IS)
	mustGrant(t, tb, 4, "C", lock.IX)
	mustBlock(t, tb, 3, "C", lock.S)
	if _, err := tb.Request(3, "D", lock.S); err != ErrBlocked {
		t.Fatalf("err = %v, want ErrBlocked", err)
	}
}

func TestCommitWhileBlockedFails(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "A", lock.X)
	mustBlock(t, tb, 2, "A", lock.S)
	if _, err := tb.Release(2); err != ErrCommitWhileBlocked {
		t.Fatalf("err = %v, want ErrCommitWhileBlocked", err)
	}
}

func TestBadArgs(t *testing.T) {
	tb := New()
	if _, err := tb.Request(0, "A", lock.S); err != ErrBadTxn {
		t.Fatalf("txn 0: err = %v", err)
	}
	if _, err := tb.Request(1, "A", lock.NL); err != ErrBadMode {
		t.Fatalf("mode NL: err = %v", err)
	}
	if _, err := tb.Request(1, "A", lock.Mode(99)); err != ErrBadMode {
		t.Fatalf("mode 99: err = %v", err)
	}
	if _, err := tb.Release(0); err != ErrBadTxn {
		t.Fatalf("release 0: err = %v", err)
	}
	if g, err := tb.Release(42); err != nil || g != nil {
		t.Fatalf("release of unknown txn: %v, %v", g, err)
	}
	if g := tb.Abort(42); g != nil {
		t.Fatalf("abort of unknown txn: %v", g)
	}
}

func TestReleaseGrantsQueueInOrder(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "A", lock.X)
	mustBlock(t, tb, 2, "A", lock.S)
	mustBlock(t, tb, 3, "A", lock.IS)
	mustBlock(t, tb, 4, "A", lock.X)
	mustBlock(t, tb, 5, "A", lock.S)
	grants, err := tb.Release(1)
	if err != nil {
		t.Fatal(err)
	}
	// S and IS are granted; X stops the scan; T5 stays queued behind it.
	if len(grants) != 2 || grants[0].Txn != 2 || grants[1].Txn != 3 {
		t.Fatalf("grants = %v, want T2 then T3", grants)
	}
	q := tb.Resource("A").Queue()
	if len(q) != 2 || q[0].Txn != 4 || q[1].Txn != 5 {
		t.Fatalf("queue = %v, want [(T4, X) (T5, S)]", q)
	}
}

func TestReleaseGrantsBlockedConversionFirst(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "A", lock.IS)
	mustGrant(t, tb, 2, "A", lock.IX)
	mustBlock(t, tb, 1, "A", lock.S) // blocked on T2's IX; tm = SIX
	mustBlock(t, tb, 3, "A", lock.S) // queued: Comp(S, SIX) is false
	grants, err := tb.Release(2)
	if err != nil {
		t.Fatal(err)
	}
	// T1's conversion to S is granted, then T3's S from the queue.
	if len(grants) != 2 || grants[0].Txn != 1 || grants[0].Mode != lock.S || grants[1].Txn != 3 {
		t.Fatalf("grants = %v", grants)
	}
	r := tb.Resource("A")
	if h, _ := r.Holder(1); h.Granted != lock.S || h.Blocked != lock.NL {
		t.Fatalf("T1 entry = %v", h)
	}
	if got := r.TotalMode(); got != lock.S {
		t.Fatalf("tm = %v, want S", got)
	}
}

// A pending (blocked) conversion must hold back compatible queue grants
// through the total mode: that is the whole point of tm vs. group mode.
func TestTotalModeBlocksQueueBehindPendingUpgrade(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "A", lock.IS)
	mustGrant(t, tb, 2, "A", lock.IS)
	mustGrant(t, tb, 3, "A", lock.IS)
	mustBlock(t, tb, 1, "A", lock.X) // conversion IS->X pending; tm = X
	mustBlock(t, tb, 4, "A", lock.IS)
	grants, err := tb.Release(2)
	if err != nil {
		t.Fatal(err)
	}
	// T1's upgrade still blocked by T3; T4's IS would be compatible with
	// the group mode (IS) but must NOT be granted because tm is X.
	if len(grants) != 0 {
		t.Fatalf("grants = %v, want none", grants)
	}
	grants, err = tb.Release(3)
	if err != nil {
		t.Fatal(err)
	}
	// Now T1 upgrades to X; T4 must stay queued.
	if len(grants) != 1 || grants[0].Txn != 1 || grants[0].Mode != lock.X {
		t.Fatalf("grants = %v, want T1 X", grants)
	}
	if !tb.Blocked(4) {
		t.Fatal("T4 must remain blocked behind the upgraded X lock")
	}
}

func TestAbortQueueHeadSchedulesQueue(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "A", lock.S)
	mustBlock(t, tb, 2, "A", lock.X)
	mustBlock(t, tb, 3, "A", lock.S)
	grants := tb.Abort(2)
	if len(grants) != 1 || grants[0].Txn != 3 {
		t.Fatalf("grants = %v, want T3", grants)
	}
}

func TestAbortMiddleQueueMemberGrantsNothing(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "A", lock.S)
	mustBlock(t, tb, 2, "A", lock.X)
	mustBlock(t, tb, 3, "A", lock.S)
	grants := tb.Abort(3)
	if len(grants) != 0 {
		t.Fatalf("grants = %v, want none", grants)
	}
	if q := tb.Resource("A").Queue(); len(q) != 1 || q[0].Txn != 2 {
		t.Fatalf("queue = %v", q)
	}
}

func TestAbortBlockedUpgraderReleasesGrantToo(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "A", lock.S)
	mustGrant(t, tb, 2, "A", lock.S)
	mustBlock(t, tb, 2, "A", lock.X) // upgrade S->X blocked by T1
	mustBlock(t, tb, 3, "A", lock.S) // queued behind tm=X
	grants := tb.Abort(2)
	// T2 disappears entirely; tm drops to S; T3's S is granted.
	if len(grants) != 1 || grants[0].Txn != 3 {
		t.Fatalf("grants = %v, want T3", grants)
	}
	if _, ok := tb.Resource("A").Holder(2); ok {
		t.Fatal("T2 must be fully removed")
	}
}

func TestReleaseRemovesEmptyResource(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "A", lock.X)
	if _, err := tb.Release(1); err != nil {
		t.Fatal(err)
	}
	if tb.Resource("A") != nil {
		t.Fatal("empty resource must be deleted from the table")
	}
	if got := len(tb.Txns()); got != 0 {
		t.Fatalf("Txns() = %v", tb.Txns())
	}
}

func TestHeldAndTxns(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "A", lock.S)
	mustGrant(t, tb, 1, "B", lock.IX)
	mustGrant(t, tb, 2, "C", lock.X)
	held := tb.Held(1)
	if len(held) != 2 || held[0] != "A" || held[1] != "B" {
		t.Fatalf("Held(T1) = %v", held)
	}
	txns := tb.Txns()
	if len(txns) != 2 || txns[0] != 1 || txns[1] != 2 {
		t.Fatalf("Txns() = %v", txns)
	}
	if got := tb.HeldMode(1, "B"); got != lock.IX {
		t.Fatalf("HeldMode(T1,B) = %v", got)
	}
	if got := tb.HeldMode(1, "C"); got != lock.NL {
		t.Fatalf("HeldMode(T1,C) = %v", got)
	}
	if got := tb.HeldMode(1, "Z"); got != lock.NL {
		t.Fatalf("HeldMode(T1,Z) = %v", got)
	}
}

func TestUPR1GroupsCompatibleUpgrades(t *testing.T) {
	// Two IS holders block on S upgrades behind an IX holder; their
	// blocked modes are compatible (S,S), so UPR-1 groups them and a
	// single release grants both.
	tb := New()
	mustGrant(t, tb, 1, "A", lock.IS)
	mustGrant(t, tb, 2, "A", lock.IS)
	mustGrant(t, tb, 3, "A", lock.IX)
	mustBlock(t, tb, 1, "A", lock.S)
	mustBlock(t, tb, 2, "A", lock.S)
	hs := tb.Resource("A").Holders()
	if hs[0].Txn != 2 || hs[1].Txn != 1 {
		// UPR-1 puts T2 right before the first compatible blocked entry (T1).
		t.Fatalf("holders = %v, want T2 before T1", hs)
	}
	grants, err := tb.Release(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 2 {
		t.Fatalf("grants = %v, want both upgrades", grants)
	}
}

func TestUPR3DeadlockedUpgradersStayBehind(t *testing.T) {
	// Classic conversion deadlock: two S holders both upgrade to X.
	// Neither can ever be granted while the other exists
	// (Observation 3.1 case 3).
	tb := New()
	mustGrant(t, tb, 1, "A", lock.S)
	mustGrant(t, tb, 2, "A", lock.S)
	mustBlock(t, tb, 1, "A", lock.X)
	mustBlock(t, tb, 2, "A", lock.X)
	hs := tb.Resource("A").Holders()
	if len(hs) != 2 || hs[0].Blocked != lock.X || hs[1].Blocked != lock.X {
		t.Fatalf("holders = %v", hs)
	}
	// UPR-1 does not apply (X incompatible with X); UPR-2 does not apply
	// (!Comp(X, S)); UPR-3 puts T2 after T1.
	if hs[0].Txn != 1 || hs[1].Txn != 2 {
		t.Fatalf("holders = %v, want T1 before T2", hs)
	}
}

// TestUPR2OrdersOneWaySchedulable reproduces Observation 3.1(2): if
// Comp(bmi, gmj) and !Comp(gmi, bmj), Ti can be scheduled before Tj but
// not vice versa, so UPR-2 must put Ti first even if Tj blocked earlier.
func TestUPR2OrdersOneWaySchedulable(t *testing.T) {
	// From Example 4.1: T2 (IS->S) blocks first, then T1 (IX->SIX).
	// Comp(bm1=SIX, gm2=IS) holds and !Comp(bm2=S, gm1=IX), so T1 goes
	// before T2.
	tb := New()
	mustGrant(t, tb, 1, "A", lock.IX)
	mustGrant(t, tb, 2, "A", lock.IS)
	mustGrant(t, tb, 3, "A", lock.IX) // keeps both upgrades blocked
	mustBlock(t, tb, 2, "A", lock.S)
	mustBlock(t, tb, 1, "A", lock.S) // IX->SIX
	hs := tb.Resource("A").Holders()
	if hs[0].Txn != 1 || hs[1].Txn != 2 {
		t.Fatalf("holders = %v, want T1 before T2 (UPR-2)", hs)
	}
	// Release T3: T1's SIX is now compatible with the other holder's
	// granted mode (IS), grant it; T2's S then waits on T1's SIX.
	grants, err := tb.Release(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 1 || grants[0].Txn != 1 || grants[0].Mode != lock.SIX {
		t.Fatalf("grants = %v, want T1 SIX", grants)
	}
	if !tb.Blocked(2) {
		t.Fatal("T2's upgrade must still be blocked by T1's SIX")
	}
}

func TestNoLivelock(t *testing.T) {
	// A stream of compatible IS requests arriving after an X waiter must
	// queue behind it, so the X waiter is granted as soon as the holders
	// leave: FIFO prevents livelock (Section 1's critique of [8]).
	tb := New()
	mustGrant(t, tb, 1, "A", lock.IS)
	mustBlock(t, tb, 2, "A", lock.X)
	for i := TxnID(3); i < 20; i++ {
		mustBlock(t, tb, i, "A", lock.IS)
	}
	grants, err := tb.Release(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) == 0 || grants[0].Txn != 2 || grants[0].Mode != lock.X {
		t.Fatalf("grants = %v, want T2's X first", grants)
	}
	if len(grants) != 1 {
		t.Fatalf("grants = %v; IS requests must stay behind the X lock", grants)
	}
}

func TestStringFormatting(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "R1", lock.S)
	mustGrant(t, tb, 2, "R2", lock.X)
	mustBlock(t, tb, 1, "R2", lock.S)
	out := tb.String()
	if !strings.Contains(out, "R1(S): Holder((T1, S, NL)) Queue()") {
		t.Errorf("missing R1 line in:\n%s", out)
	}
	if !strings.Contains(out, "R2(X): Holder((T2, X, NL)) Queue((T1, S))") {
		t.Errorf("missing R2 line in:\n%s", out)
	}
	if g := (Grant{Txn: 3, Resource: "R9", Mode: lock.IX}); g.String() != "T3+=IX@R9" {
		t.Errorf("Grant.String() = %q", g.String())
	}
}

func TestCloneIsDeep(t *testing.T) {
	tb := buildExample41(t)
	c := tb.Clone()
	if c.String() != tb.String() {
		t.Fatalf("clone differs:\n%s\nvs\n%s", c.String(), tb.String())
	}
	// Mutating the clone must not affect the original.
	c.Abort(1)
	if c.String() == tb.String() {
		t.Fatal("clone shares state with original")
	}
	if !tb.Blocked(1) {
		t.Fatal("original lost T1's blocked state")
	}
	// Wait edges in the clone must point at cloned resources.
	if rid, _, ok := c.WaitingOn(5); !ok || rid != "R1" {
		t.Fatalf("clone WaitingOn(T5) = %v,%v", rid, ok)
	}
}

func TestWaitingOnNotBlocked(t *testing.T) {
	tb := New()
	mustGrant(t, tb, 1, "A", lock.S)
	if _, _, ok := tb.WaitingOn(1); ok {
		t.Fatal("granted txn must not be waiting")
	}
	if _, _, ok := tb.WaitingOn(99); ok {
		t.Fatal("unknown txn must not be waiting")
	}
}

func TestRepositionAVSTEdgeCases(t *testing.T) {
	tb := New()
	if av, st := tb.RepositionAVST("nope", 1); av != nil || st != nil {
		t.Fatal("missing resource must return nil, nil")
	}
	mustGrant(t, tb, 1, "A", lock.S)
	mustBlock(t, tb, 2, "A", lock.X)
	if av, st := tb.RepositionAVST("A", 99); av != nil || st != nil {
		t.Fatal("txn not in queue must return nil, nil")
	}
	// Prefix of a single incompatible entry: AV empty, ST = {T2}.
	av, st := tb.RepositionAVST("A", 2)
	if len(av) != 0 || len(st) != 1 || st[0].Txn != 2 {
		t.Fatalf("av=%v st=%v", av, st)
	}
}

func TestScheduleQueueMissingResource(t *testing.T) {
	tb := New()
	if g := tb.ScheduleQueue("nope"); g != nil {
		t.Fatalf("grants = %v", g)
	}
}
