// Package table implements the lock table and the scheduling policy of
// Section 3 of the paper: strict two-phase locking with the five MGL lock
// modes, first-in-first-out queues, lock conversions, the incrementally
// maintained total mode, and the Upgrader Positioning Rule (UPR).
//
// The table is the sequential core of the system: one logical operation at
// a time, no internal locking. Concurrency is layered on top by the public
// hwtwbg package; deadlock detection is layered on top by internal/detect,
// which reads and mutates the table through the methods defined here.
//
// Terminology follows the paper: each locked resource has a holder list
// (entries carry a granted mode gm and a blocked mode bm, bm != NL meaning
// the holder is blocked in a lock conversion), a queue of blocked new
// requestors, and a total mode tm = Conv(gm1, bm1, gm2, bm2, ...) folded
// over every holder entry.
package table

import (
	"errors"
	"fmt"
	"sort"

	"hwtwbg/internal/lock"
)

// TxnID identifies a transaction. The paper assigns integer identifiers
// 1..N; 0 is reserved as "no transaction".
type TxnID int

// None is the null transaction id.
const None TxnID = 0

// String prints the paper's Ti notation.
func (t TxnID) String() string { return fmt.Sprintf("T%d", int(t)) }

// ResourceID identifies a lockable resource (the paper's rid).
type ResourceID string

// HolderEntry is one member of a resource's holder list: (tid, gm, bm) in
// the paper's notation. Blocked == lock.NL means the holder is not blocked;
// otherwise the holder has requested a conversion to Blocked and waits.
type HolderEntry struct {
	Txn     TxnID
	Granted lock.Mode // gm: the mode currently held
	Blocked lock.Mode // bm: the conversion target, or NL
}

// String prints the paper's "(T1, IX, SIX)" form.
func (h HolderEntry) String() string {
	return fmt.Sprintf("(%v, %v, %v)", h.Txn, h.Granted, h.Blocked)
}

// QueueEntry is one member of a resource's queue: (tid, bm).
type QueueEntry struct {
	Txn     TxnID
	Blocked lock.Mode // bm: the requested mode
}

// String prints the paper's "(T5, IX)" form.
func (q QueueEntry) String() string {
	return fmt.Sprintf("(%v, %v)", q.Txn, q.Blocked)
}

// Grant records that a blocked request became granted during rescheduling.
type Grant struct {
	Txn      TxnID
	Resource ResourceID
	Mode     lock.Mode // the mode now effectively granted (after conversion)
}

// String prints a grant as "T3+=S@R1".
func (g Grant) String() string {
	return fmt.Sprintf("%v+=%v@%s", g.Txn, g.Mode, string(g.Resource))
}

// Resource is the lock-table entry for one locked resource. Its holder
// list keeps all blocked upgraders (bm != NL) before all granted holders
// (bm == NL); the blocked prefix is ordered by the UPR, and newly granted
// entries are inserted at the head of the granted suffix (this reproduces
// the holder orders printed in the paper's examples).
type Resource struct {
	id      ResourceID
	total   lock.Mode // tm
	holders []HolderEntry
	queue   []QueueEntry
}

// ID returns the resource identifier.
func (r *Resource) ID() ResourceID { return r.id }

// TotalMode returns tm, the conversion-fold of every holder's granted and
// blocked modes.
func (r *Resource) TotalMode() lock.Mode { return r.total }

// Holders returns a copy of the holder list in table order.
func (r *Resource) Holders() []HolderEntry {
	out := make([]HolderEntry, len(r.holders))
	copy(out, r.holders)
	return out
}

// Queue returns a copy of the queue in FIFO order.
func (r *Resource) Queue() []QueueEntry {
	out := make([]QueueEntry, len(r.queue))
	copy(out, r.queue)
	return out
}

// NumHolders returns the holder-list length without copying.
func (r *Resource) NumHolders() int { return len(r.holders) }

// HolderAt returns the i-th holder entry (0-based, table order).
func (r *Resource) HolderAt(i int) HolderEntry { return r.holders[i] }

// QueueLen returns the queue length without copying.
func (r *Resource) QueueLen() int { return len(r.queue) }

// QueueAt returns the i-th queue entry (0-based, FIFO order).
func (r *Resource) QueueAt(i int) QueueEntry { return r.queue[i] }

// Holder returns the holder entry of txn, if present.
func (r *Resource) Holder(txn TxnID) (HolderEntry, bool) {
	if i := r.holderIndex(txn); i >= 0 {
		return r.holders[i], true
	}
	return HolderEntry{}, false
}

// String prints the resource in the paper's notation, e.g.
// "R1(SIX): Holder((T1, IX, SIX) (T2, IS, S)) Queue((T5, IX) (T6, S))".
func (r *Resource) String() string {
	s := fmt.Sprintf("%s(%v): Holder(", string(r.id), r.total)
	for i, h := range r.holders {
		if i > 0 {
			s += " "
		}
		s += h.String()
	}
	s += ") Queue("
	for i, q := range r.queue {
		if i > 0 {
			s += " "
		}
		s += q.String()
	}
	return s + ")"
}

func (r *Resource) holderIndex(txn TxnID) int {
	for i, h := range r.holders {
		if h.Txn == txn {
			return i
		}
	}
	return -1
}

func (r *Resource) queueIndex(txn TxnID) int {
	for i, q := range r.queue {
		if q.Txn == txn {
			return i
		}
	}
	return -1
}

// blockedLen returns the length of the blocked-upgrader prefix of the
// holder list.
func (r *Resource) blockedLen() int {
	n := 0
	for n < len(r.holders) && r.holders[n].Blocked != lock.NL {
		n++
	}
	return n
}

// recomputeTotal refolds tm from scratch, as Section 3 prescribes after a
// holder is deleted.
func (r *Resource) recomputeTotal() {
	tm := lock.NL
	for _, h := range r.holders {
		tm = lock.Conv(lock.Conv(tm, h.Granted), h.Blocked)
	}
	r.total = tm
}

// txnState tracks the per-transaction side of the table (the TST's pr and
// holding information).
type txnState struct {
	held      []*Resource // resources where the txn has a holder entry, in acquisition order
	waitingOn *Resource   // resource where the txn is blocked, nil if runnable
	waitMode  lock.Mode   // mode the txn waits to acquire (bm)
	upgrading bool        // blocked inside the holder list (conversion) rather than the queue
}

// Table is the lock manager state: all locked resources plus per-
// transaction wait/hold bookkeeping. The zero value is not usable; call
// New.
type Table struct {
	// DisableUPR is the Upgrader Positioning Rule ablation: blocked
	// conversions keep pure arrival order instead of the UPR order. Set
	// it before issuing requests. Without the UPR, a grantable upgrade
	// can be stranded behind an ungrantable one (Theorem 3.1 no longer
	// holds) and the resulting mutual blockage becomes an ECR-1 cycle —
	// a deadlock the detector must resolve by abort where the UPR would
	// simply have granted. Validate reports such strandings as errors,
	// so do not combine the ablation with Validate.
	DisableUPR bool

	resources map[ResourceID]*Resource
	txns      map[TxnID]*txnState

	// resCache is the sorted resource list, rebuilt lazily when the
	// resource set changes; detectors walk it on every activation.
	resCache []*Resource
	resDirty bool

	// grantBuf is the reusable grant scratch: Release/Abort/ScheduleQueue
	// results live here until the next table operation, so the contended
	// hand-off path allocates nothing in steady state.
	grantBuf []Grant

	// resFree and stFree recycle Resource and txnState records: a
	// resource deleted when its last holder leaves, and a transaction's
	// state deleted at commit/abort, go here instead of to the garbage
	// collector, keeping their slice capacities for the next
	// request/first-touch. Nothing outside the table retains these
	// pointers across operations (Holders/Queue/Held return copies, the
	// snapshot copies into its own arena), so recycling is invisible.
	resFree []*Resource
	stFree  []*txnState
}

// freeListCap bounds each freelist so a burst of churn cannot pin an
// arbitrary amount of memory forever.
const freeListCap = 256

// New returns an empty lock table.
func New() *Table {
	return &Table{
		resources: make(map[ResourceID]*Resource),
		txns:      make(map[TxnID]*txnState),
		// Full-capacity freelists up front: retire never reallocates,
		// so churn-heavy paths (detector aborts, release storms) stay
		// allocation-free after construction.
		resFree: make([]*Resource, 0, freeListCap),
		stFree:  make([]*txnState, 0, freeListCap),
	}
}

// Errors reported by Table operations.
var (
	// ErrBlocked: a transaction issued a lock request while it was
	// already blocked; the paper's model forbids this ("a transaction
	// cannot request another resource when being blocked").
	ErrBlocked = errors.New("table: transaction is blocked and cannot issue requests")
	// ErrCommitWhileBlocked: Release (commit) was called for a blocked
	// transaction.
	ErrCommitWhileBlocked = errors.New("table: blocked transaction cannot commit")
	// ErrBadTxn: operation on the null transaction id.
	ErrBadTxn = errors.New("table: invalid transaction id 0")
	// ErrBadMode: a request for NL or an undefined mode.
	ErrBadMode = errors.New("table: invalid lock mode for a request")
)

func (t *Table) state(txn TxnID) *txnState {
	st, ok := t.txns[txn]
	if !ok {
		if n := len(t.stFree); n > 0 {
			st = t.stFree[n-1]
			t.stFree = t.stFree[:n-1]
		} else {
			st = &txnState{} //hwlint:allow allocbudget -- freelist miss: recycled by retireState, amortized out of steady-state allocs/op (BENCH_PR8)
		}
		t.txns[txn] = st
	}
	return st
}

// retireState recycles a txnState whose transaction just left the
// table. The caller has already deleted it from t.txns.
func (t *Table) retireState(st *txnState) {
	if len(t.stFree) >= freeListCap {
		return
	}
	st.held = st.held[:0]
	st.waitingOn = nil
	st.waitMode = lock.NL
	st.upgrading = false
	t.stFree = append(t.stFree, st)
}

// retireResource recycles a Resource record that just became unlocked
// and unqueued. The caller has already deleted it from t.resources.
func (t *Table) retireResource(r *Resource) {
	if len(t.resFree) >= freeListCap {
		return
	}
	r.id = ""
	r.total = lock.NL
	r.holders = r.holders[:0]
	r.queue = r.queue[:0]
	t.resFree = append(t.resFree, r)
}

// Resource returns the table entry for rid, or nil if rid is not locked.
func (t *Table) Resource(rid ResourceID) *Resource { return t.resources[rid] }

// Resources returns all locked resources sorted by id. The slice is
// freshly allocated; EachResource iterates without copying.
func (t *Table) Resources() []*Resource {
	t.refreshCache()
	return append([]*Resource(nil), t.resCache...)
}

// EachResource calls f for every locked resource in id order, stopping
// if f returns false. It does not allocate; f must not create or
// release resources.
func (t *Table) EachResource(f func(*Resource) bool) {
	t.refreshCache()
	for _, r := range t.resCache {
		if !f(r) {
			return
		}
	}
}

func (t *Table) refreshCache() {
	if !t.resDirty && t.resCache != nil && len(t.resCache) == len(t.resources) {
		return
	}
	t.resCache = t.resCache[:0]
	for _, r := range t.resources {
		t.resCache = append(t.resCache, r)
	}
	sort.Slice(t.resCache, func(i, j int) bool { return t.resCache[i].id < t.resCache[j].id })
	t.resDirty = false
}

// Blocked reports whether txn is currently blocked (waiting in a queue or
// on a conversion).
func (t *Table) Blocked(txn TxnID) bool {
	st, ok := t.txns[txn]
	return ok && st.waitingOn != nil
}

// WaitingOn returns the resource id txn is blocked on, the mode it waits
// for, and whether it is blocked at all. This is the TST's pr attribute.
func (t *Table) WaitingOn(txn TxnID) (ResourceID, lock.Mode, bool) {
	st, ok := t.txns[txn]
	if !ok || st.waitingOn == nil {
		return "", lock.NL, false
	}
	return st.waitingOn.id, st.waitMode, true
}

// Upgrading reports whether txn is blocked inside a holder list (a lock
// conversion) as opposed to a queue.
func (t *Table) Upgrading(txn TxnID) bool {
	st, ok := t.txns[txn]
	return ok && st.waitingOn != nil && st.upgrading
}

// Held returns the ids of the resources on which txn has a holder entry,
// in acquisition order.
func (t *Table) Held(txn TxnID) []ResourceID {
	st, ok := t.txns[txn]
	if !ok {
		return nil
	}
	out := make([]ResourceID, len(st.held))
	for i, r := range st.held {
		out[i] = r.id
	}
	return out
}

// AppendHeld appends the ids of the resources on which txn has a holder
// entry to dst, in acquisition order, and returns the extended slice —
// the allocation-free form of Held for callers that bring their own
// scratch.
func (t *Table) AppendHeld(dst []ResourceID, txn TxnID) []ResourceID {
	st, ok := t.txns[txn]
	if !ok {
		return dst
	}
	for _, r := range st.held {
		dst = append(dst, r.id)
	}
	return dst
}

// HeldMode returns the granted mode txn holds on rid (NL if none).
func (t *Table) HeldMode(txn TxnID, rid ResourceID) lock.Mode {
	r := t.resources[rid]
	if r == nil {
		return lock.NL
	}
	if h, ok := r.Holder(txn); ok {
		return h.Granted
	}
	return lock.NL
}

// Txns returns the ids of every transaction known to the table (holding
// or waiting), sorted.
func (t *Table) Txns() []TxnID {
	out := make([]TxnID, 0, len(t.txns))
	for id, st := range t.txns {
		if len(st.held) == 0 && st.waitingOn == nil {
			continue
		}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String prints every locked resource in the paper's notation, one per
// line, sorted by resource id.
func (t *Table) String() string {
	s := ""
	for _, r := range t.Resources() {
		if len(r.holders) == 0 && len(r.queue) == 0 {
			continue
		}
		s += r.String() + "\n"
	}
	return s
}

// Clone returns a deep copy of the table. Analyses that need to try
// hypothetical schedules (e.g. the deadlock ground-truth oracle in the
// twbg tests) work on clones.
func (t *Table) Clone() *Table {
	c := New()
	c.DisableUPR = t.DisableUPR
	for rid, r := range t.resources {
		nr := &Resource{id: rid, total: r.total}
		nr.holders = append([]HolderEntry(nil), r.holders...)
		nr.queue = append([]QueueEntry(nil), r.queue...)
		c.resources[rid] = nr
	}
	for id, st := range t.txns {
		ns := &txnState{waitMode: st.waitMode, upgrading: st.upgrading}
		for _, r := range st.held {
			ns.held = append(ns.held, c.resources[r.id])
		}
		if st.waitingOn != nil {
			ns.waitingOn = c.resources[st.waitingOn.id]
		}
		c.txns[id] = ns
	}
	return c
}
