package table

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hwtwbg/internal/lock"
)

// TestValidateCleanStates: Validate passes after every operation of a
// random workload (it encodes the same invariants the test-local
// checker asserts; the two are kept deliberately redundant).
func TestValidateCleanStates(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	rng := rand.New(rand.NewSource(11))
	tb := New()
	for step := 0; step < 3000; step++ {
		txn := TxnID(1 + rng.Intn(10))
		switch op := rng.Intn(10); {
		case op < 7:
			if tb.Blocked(txn) {
				continue
			}
			rid := ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(5)))
			if _, err := tb.Request(txn, rid, modes[rng.Intn(len(modes))]); err != nil {
				t.Fatal(err)
			}
		case op < 9:
			if tb.Blocked(txn) {
				continue
			}
			if _, err := tb.Release(txn); err != nil {
				t.Fatal(err)
			}
		default:
			tb.Abort(txn)
		}
		if err := tb.Validate(); err != nil {
			t.Fatalf("step %d: %v\n%s", step, err, tb)
		}
	}
}

// TestValidateDetectsCorruption: hand-corrupt each invariant and check
// Validate names it.
func TestValidateDetectsCorruption(t *testing.T) {
	build := func() (*Table, *Resource) {
		tb := New()
		tb.Request(1, "R", lock.IS)
		tb.Request(2, "R", lock.IX)
		tb.Request(1, "R", lock.S) // blocked upgrade
		tb.Request(3, "R", lock.X) // queued
		return tb, tb.Resource("R")
	}

	tb, r := build()
	r.holders[0], r.holders[1] = r.holders[1], r.holders[0] // granted before blocked
	if err := tb.Validate(); err == nil || !strings.Contains(err.Error(), "after a granted holder") {
		t.Fatalf("err = %v", err)
	}

	tb, r = build()
	r.total = lock.IS
	if err := tb.Validate(); err == nil || !strings.Contains(err.Error(), "fold") {
		t.Fatalf("err = %v", err)
	}

	tb, r = build()
	r.holders[1].Granted = lock.X // incompatible with upgrader's IS? IS-X conflict
	r.recomputeTotal()
	if err := tb.Validate(); err == nil {
		t.Fatal("corrupted granted modes not detected")
	}

	tb, r = build()
	r.holders[0].Blocked = lock.IS // trivially grantable upgrade left in place
	r.recomputeTotal()
	if err := tb.Validate(); err == nil || !strings.Contains(err.Error(), "stranded") {
		t.Fatalf("err = %v", err)
	}

	tb, r = build()
	r.queue[0].Blocked = lock.IS // head compatible with tm
	st := tb.txns[3]
	st.waitMode = lock.IS
	if err := tb.Validate(); err == nil || !strings.Contains(err.Error(), "queue head") {
		t.Fatalf("err = %v", err)
	}

	tb, r = build()
	r.queue = append(r.queue, QueueEntry{Txn: 1, Blocked: lock.X}) // T1 waits twice
	if err := tb.Validate(); err == nil {
		t.Fatal("double wait not detected")
	}

	tb, r = build()
	tb.txns[3].waitMode = lock.S // bookkeeping mismatch
	if err := tb.Validate(); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("err = %v", err)
	}

	tb, _ = build()
	tb.txns[9] = &txnState{waitingOn: tb.Resource("R")} // phantom waiter
	if err := tb.Validate(); err == nil || !strings.Contains(err.Error(), "no structure") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := New().Validate(); err != nil {
		t.Fatal(err)
	}
}
