package table

import "hwtwbg/internal/lock"

// Grant results are accumulated in a per-table scratch buffer that is
// reused across calls: the slice returned by Release, Abort and
// ScheduleQueue is valid only until the next Table operation. Every
// caller in the tree consumes the grants immediately (waking waiters
// under the shard mutex, or copying into a Result); a caller that needs
// to retain them across operations must copy. This keeps the contended
// commit/abort hand-off path allocation-free in steady state.

// resetGrants truncates the scratch buffer for a new top-level call.
func (t *Table) resetGrants() {
	t.grantBuf = t.grantBuf[:0]
}

// takeGrants returns the accumulated grants, or nil if there were none
// (callers and tests rely on nil for "nothing granted").
func (t *Table) takeGrants() []Grant {
	if len(t.grantBuf) == 0 {
		return nil
	}
	return t.grantBuf
}

// Release commits txn: every lock it holds is released (strict two-phase
// locking releases everything at once) and each affected resource is
// rescheduled. It returns the requests that became granted as a result,
// in scheduling order; the slice is reused by the next table operation.
// A blocked transaction cannot commit.
func (t *Table) Release(txn TxnID) ([]Grant, error) {
	if txn == None {
		return nil, ErrBadTxn
	}
	st, ok := t.txns[txn]
	if !ok {
		return nil, nil
	}
	if st.waitingOn != nil {
		return nil, ErrCommitWhileBlocked
	}
	t.resetGrants()
	t.removeFromAll(txn, st)
	delete(t.txns, txn)
	t.retireState(st)
	return t.takeGrants(), nil
}

// Abort removes txn from the system entirely: its holder entries (granted
// or blocked in conversion) are deleted and the affected resources
// rescheduled, and its queue entry, if any, is deleted — rescheduling the
// queue when txn was its first member, per Section 3. It returns the
// requests that became granted as a result; the slice is reused by the
// next table operation.
func (t *Table) Abort(txn TxnID) []Grant {
	st, ok := t.txns[txn]
	if !ok || txn == None {
		return nil
	}
	t.resetGrants()
	// Remove a queue entry first (a txn is in at most one queue).
	if st.waitingOn != nil && !st.upgrading {
		r := st.waitingOn
		if i := r.queueIndex(txn); i >= 0 {
			wasHead := i == 0
			r.queue = append(r.queue[:i], r.queue[i+1:]...)
			if wasHead {
				t.grantFromQueue(r)
			}
		}
		st.waitingOn = nil
	}
	t.removeFromAll(txn, st)
	delete(t.txns, txn)
	t.retireState(st)
	return t.takeGrants()
}

// removeFromAll deletes txn's holder entries from every resource it
// touches and reschedules each, appending the resulting grants to the
// scratch buffer. A blocked conversion entry is removed wholesale (abort
// releases the granted mode too).
func (t *Table) removeFromAll(txn TxnID, st *txnState) {
	for _, r := range st.held {
		if i := r.holderIndex(txn); i >= 0 {
			r.holders = append(r.holders[:i], r.holders[i+1:]...)
			t.rescheduleAfterHolderRemoval(r)
		}
	}
	// A blocked upgrader's holder entry lives on st.waitingOn's list but
	// the resource is already in st.held (it held the lock before the
	// conversion), so the loop above covers it.
	st.held = st.held[:0]
	st.waitingOn = nil
}

// rescheduleAfterHolderRemoval implements the first rescheduling case of
// Section 3: a member of the holder list was forced out (commit or
// abort). The total mode is recomputed from scratch; then blocked
// conversions are scanned from the front of the holder list, granting
// until one cannot be granted or a non-blocked entry is reached; finally
// queue members are granted from the front while their blocked mode is
// compatible with the total mode. Grants are appended to the scratch
// buffer.
func (t *Table) rescheduleAfterHolderRemoval(r *Resource) {
	r.recomputeTotal()
	// Grant blocked conversions from the front of the blocked prefix.
	for {
		if len(r.holders) == 0 || r.holders[0].Blocked == lock.NL {
			break
		}
		h := r.holders[0]
		if !t.compatibleWithOtherHolders(r, h.Txn, h.Blocked) {
			break
		}
		// Grant: substitute bm for gm, clear bm, move the entry to the
		// head of the granted suffix ("put after the blocked holders").
		r.holders = r.holders[1:]
		granted := HolderEntry{Txn: h.Txn, Granted: h.Blocked}
		r.insertGranted(granted)
		st := t.state(h.Txn)
		st.waitingOn = nil
		st.upgrading = false
		t.grantBuf = append(t.grantBuf, Grant{Txn: h.Txn, Resource: r.id, Mode: granted.Granted})
		// tm already included bm, so it is unchanged by the grant.
	}
	t.grantFromQueue(r)
	if len(r.holders) == 0 && len(r.queue) == 0 {
		delete(t.resources, r.id)
		t.resDirty = true
		t.retireResource(r)
	}
}

// grantFromQueue grants queue members from the front while the first
// waiter's blocked mode is compatible with the total mode, as Section 3
// prescribes for both rescheduling cases, appending the grants to the
// scratch buffer.
func (t *Table) grantFromQueue(r *Resource) {
	for len(r.queue) > 0 && lock.Comp(r.queue[0].Blocked, r.total) {
		q := r.queue[0]
		r.queue = r.queue[1:]
		r.insertGranted(HolderEntry{Txn: q.Txn, Granted: q.Blocked})
		r.total = lock.Conv(r.total, q.Blocked)
		st := t.state(q.Txn)
		st.held = append(st.held, r)
		st.waitingOn = nil
		st.upgrading = false
		t.grantBuf = append(t.grantBuf, Grant{Txn: q.Txn, Resource: r.id, Mode: q.Blocked})
	}
}

// ScheduleQueue runs the queue-grant process on rid without any removal.
// Step 3 of the periodic algorithm calls this for every resource in the
// change-list after a TDR-2 repositioning. The returned slice is reused
// by the next table operation.
func (t *Table) ScheduleQueue(rid ResourceID) []Grant {
	r := t.resources[rid]
	if r == nil {
		return nil
	}
	t.resetGrants()
	t.grantFromQueue(r)
	return t.takeGrants()
}

// PeekAVST computes, without mutating anything, the AV/ST split of
// TDR-2 (Definition 4.1) on resource rid: among the queue entries from
// the front up to and including transaction j, AV holds those whose
// blocked modes are compatible with the total mode and ST the
// incompatible ones, both in queue order. Victim selection uses this to
// price a TDR-2 candidate (cost = sum of ST costs / 2) before deciding.
func (t *Table) PeekAVST(rid ResourceID, j TxnID) (av, st []QueueEntry) {
	r := t.resources[rid]
	if r == nil {
		return nil, nil
	}
	end := r.queueIndex(j)
	if end < 0 {
		return nil, nil
	}
	for _, q := range r.queue[:end+1] {
		if lock.Comp(q.Blocked, r.total) {
			av = append(av, q)
		} else {
			st = append(st, q)
		}
	}
	return av, st
}

// RepositionAVST performs the queue surgery of TDR-2 (Definition 4.1) on
// resource rid: among the queue entries from the front up to and
// including transaction j, the entries whose blocked modes are compatible
// with the total mode (the set AV) move to the front keeping their
// relative order, followed by the incompatible ones (the set ST), followed
// by the untouched suffix. It returns copies of AV and ST. It does not
// grant anything; call ScheduleQueue afterwards (the algorithm defers that
// to Step 3 via the change-list).
func (t *Table) RepositionAVST(rid ResourceID, j TxnID) (av, st []QueueEntry) {
	r := t.resources[rid]
	if r == nil {
		return nil, nil
	}
	end := r.queueIndex(j)
	if end < 0 {
		return nil, nil
	}
	av, st = t.PeekAVST(rid, j)
	reordered := make([]QueueEntry, 0, len(r.queue))
	reordered = append(reordered, av...)
	reordered = append(reordered, st...)
	reordered = append(reordered, r.queue[end+1:]...)
	copy(r.queue, reordered)
	return av, st
}
