package table

import "hwtwbg/internal/lock"

// Request asks the table to grant txn a lock of mode m on resource rid,
// implementing the scheduling policy of Section 3 of the paper:
//
//   - If txn already holds rid the request is a lock conversion: the new
//     mode Conv(gm, m) is granted immediately when it is compatible with
//     the granted mode of every other holder; otherwise txn blocks inside
//     the holder list and is repositioned by the UPR.
//   - Otherwise txn is a new requestor: it is granted immediately only
//     when the queue is empty and m is compatible with the total mode;
//     otherwise it is appended to the FIFO queue.
//
// Request reports whether the lock was granted. When granted is false the
// transaction is blocked and must not issue further requests until it is
// granted (by a later Release/Abort/ScheduleQueue) or aborted; violating
// this returns ErrBlocked.
func (t *Table) Request(txn TxnID, rid ResourceID, m lock.Mode) (granted bool, err error) {
	res, err := t.RequestEx(txn, rid, m)
	return res.Granted, err
}

// RequestResult reports what a RequestEx did, for instrumentation: the
// grant outcome, whether the request was a lock conversion by an
// existing holder, and — when the request blocked — how many requests
// sat in front of it (the queue length for a fresh requestor, the
// blocked-upgrader prefix length for a blocked conversion, counting the
// newcomer itself).
type RequestResult struct {
	Granted    bool
	Conversion bool
	QueueDepth int
}

// RequestEx is Request with an instrumentation-grade result. The core
// manager uses it to maintain per-shard counters (conversions vs fresh
// requests, queue depth at enqueue) without a second table probe.
//
// The budget is the uncontended-path gate (BENCH_PR8: 1 alloc/op): the
// one countable site is the Resource record minted on a freelist miss;
// everything else rides on recycled capacity (freelists, per-record
// slice reuse, map writes amortized by Go's runtime).
//
//hwlint:hotpath allocs=1
func (t *Table) RequestEx(txn TxnID, rid ResourceID, m lock.Mode) (RequestResult, error) {
	if txn == None {
		return RequestResult{}, ErrBadTxn
	}
	if !m.Valid() || m == lock.NL {
		return RequestResult{}, ErrBadMode
	}
	st := t.state(txn)
	if st.waitingOn != nil {
		return RequestResult{}, ErrBlocked
	}
	r := t.resources[rid]
	if r == nil {
		if n := len(t.resFree); n > 0 {
			r = t.resFree[n-1]
			t.resFree = t.resFree[:n-1]
			r.id = rid
		} else {
			r = &Resource{id: rid, total: lock.NL}
		}
		t.resources[rid] = r
		t.resDirty = true
	}

	if i := r.holderIndex(txn); i >= 0 {
		res := RequestResult{Conversion: true, Granted: t.convert(st, r, i, m)}
		if !res.Granted {
			res.QueueDepth = r.blockedLen()
		}
		return res, nil
	}
	res := RequestResult{Granted: t.newRequest(st, r, txn, m)}
	if !res.Granted {
		res.QueueDepth = len(r.queue)
	}
	return res, nil
}

// convert handles a re-request by an existing holder (a lock conversion).
func (t *Table) convert(st *txnState, r *Resource, i int, m lock.Mode) bool {
	h := &r.holders[i]
	newMode := lock.Conv(h.Granted, m)
	if newMode == h.Granted {
		// The held mode already covers the request; nothing to do.
		return true
	}
	if t.compatibleWithOtherHolders(r, h.Txn, newMode) {
		h.Granted = newMode
		r.total = lock.Conv(r.total, m)
		return true
	}
	// Block the conversion: record bm, fold the request into tm, and
	// reposition the entry among the blocked upgraders per the UPR.
	entry := *h
	entry.Blocked = newMode
	r.total = lock.Conv(r.total, m)
	r.holders = append(r.holders[:i], r.holders[i+1:]...)
	if t.DisableUPR {
		r.insertAfterBlocked(entry)
	} else {
		r.insertUpgrader(entry)
	}
	st.waitingOn = r
	st.waitMode = newMode
	st.upgrading = true
	return false
}

// newRequest handles a request by a transaction that holds nothing on r.
func (t *Table) newRequest(st *txnState, r *Resource, txn TxnID, m lock.Mode) bool {
	if len(r.queue) == 0 && lock.Comp(m, r.total) {
		// Immediate grants of new requestors keep arrival order at the
		// end of the holder list (the paper's initial example states).
		r.holders = append(r.holders, HolderEntry{Txn: txn, Granted: m})
		r.total = lock.Conv(r.total, m)
		st.held = append(st.held, r)
		return true
	}
	r.queue = append(r.queue, QueueEntry{Txn: txn, Blocked: m})
	st.waitingOn = r
	st.waitMode = m
	st.upgrading = false
	return false
}

// compatibleWithOtherHolders reports whether mode m is compatible with the
// granted mode of every holder of r other than txn (the grant test for
// conversions, Section 3).
func (t *Table) compatibleWithOtherHolders(r *Resource, txn TxnID, m lock.Mode) bool {
	for _, h := range r.holders {
		if h.Txn != txn && !lock.Comp(m, h.Granted) {
			return false
		}
	}
	return true
}

// insertUpgrader places a freshly blocked conversion entry into the
// blocked prefix of the holder list according to the Upgrader Positioning
// Rule of Section 3:
//
//	UPR-1: before the first blocked entry whose bm is compatible with
//	       the newcomer's bm;
//	UPR-2: otherwise, before the first blocked entry whose gm is
//	       compatible with the newcomer's bm and whose bm is not
//	       compatible with the newcomer's gm;
//	UPR-3: otherwise, after every blocked entry (and before every
//	       granted one).
func (r *Resource) insertUpgrader(e HolderEntry) {
	n := r.blockedLen()
	pos := n // UPR-3 default: end of the blocked prefix
	// UPR-1.
	for i := 0; i < n; i++ {
		if lock.Comp(r.holders[i].Blocked, e.Blocked) {
			pos = i
			goto place
		}
	}
	// UPR-2.
	for i := 0; i < n; i++ {
		if lock.Comp(r.holders[i].Granted, e.Blocked) && !lock.Comp(r.holders[i].Blocked, e.Granted) {
			pos = i
			goto place
		}
	}
place:
	r.holders = append(r.holders, HolderEntry{})
	copy(r.holders[pos+1:], r.holders[pos:])
	r.holders[pos] = e
}

// insertAfterBlocked appends a blocked entry at the end of the blocked
// prefix regardless of compatibility — arrival order, the UPR ablation.
func (r *Resource) insertAfterBlocked(e HolderEntry) {
	pos := r.blockedLen()
	r.holders = append(r.holders, HolderEntry{})
	copy(r.holders[pos+1:], r.holders[pos:])
	r.holders[pos] = e
}

// insertGranted places a re-granted (bm == NL) entry at the head of the
// granted suffix, i.e. immediately after the blocked upgraders ("all the
// newly granted ones are put after the blocked holders", Section 3). This
// matches the holder orders the paper prints after rescheduling in
// Examples 4.1 (modified situation) and 5.1.
func (r *Resource) insertGranted(e HolderEntry) {
	pos := r.blockedLen()
	r.holders = append(r.holders, HolderEntry{})
	copy(r.holders[pos+1:], r.holders[pos:])
	r.holders[pos] = e
}
