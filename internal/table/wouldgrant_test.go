package table

import (
	"math/rand"
	"testing"

	"hwtwbg/internal/lock"
)

// TestWouldGrantMatchesRequest drives randomized tables through long
// request/release/abort sequences and checks, before every single
// Request, that WouldGrant predicted its immediate outcome exactly.
// This is the contract TryLock is built on: WouldGrant true ⇒ Request
// grants now; WouldGrant false ⇒ Request either queues or errors.
func TestWouldGrantMatchesRequest(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := New()
		const txns, resources, steps = 8, 5, 400
		for step := 0; step < steps; step++ {
			txn := TxnID(1 + rng.Intn(txns))
			switch op := rng.Intn(10); {
			case op < 7: // request
				rid := ResourceID('a' + rune(rng.Intn(resources)))
				m := modes[rng.Intn(len(modes))]
				predicted := tb.WouldGrant(txn, rid, m)
				granted, err := tb.Request(txn, rid, m)
				if err != nil {
					if predicted {
						t.Fatalf("seed %d step %d: WouldGrant(T%d,%s,%v)=true but Request errored: %v",
							seed, step, txn, rid, m, err)
					}
					continue
				}
				if granted != predicted {
					t.Fatalf("seed %d step %d: WouldGrant(T%d,%s,%v)=%v but Request granted=%v\n%s",
						seed, step, txn, rid, m, predicted, granted, tb)
				}
			case op < 9: // release (only legal when not blocked)
				if !tb.Blocked(txn) {
					if _, err := tb.Release(txn); err != nil {
						t.Fatalf("seed %d step %d: release T%d: %v", seed, step, txn, err)
					}
				}
			default: // abort (always legal)
				tb.Abort(txn)
			}
			// HeldCount must agree with the allocating Held everywhere.
			for id := TxnID(1); id <= txns; id++ {
				if got, want := tb.HeldCount(id), len(tb.Held(id)); got != want {
					t.Fatalf("seed %d step %d: HeldCount(T%d)=%d, Held=%d", seed, step, id, got, want)
				}
			}
		}
	}
}

// TestWouldGrantRefusals pins the explicit refusal cases.
func TestWouldGrantRefusals(t *testing.T) {
	tb := New()
	if tb.WouldGrant(None, "r", lock.X) {
		t.Fatal("granted to the null transaction")
	}
	if tb.WouldGrant(1, "r", lock.NL) {
		t.Fatal("granted NL")
	}
	if tb.WouldGrant(1, "r", lock.Mode(99)) {
		t.Fatal("granted an invalid mode")
	}
	// A blocked transaction may not issue new requests.
	if _, err := tb.Request(1, "r", lock.X); err != nil {
		t.Fatal(err)
	}
	if granted, err := tb.Request(2, "r", lock.X); err != nil || granted {
		t.Fatalf("granted=%v err=%v", granted, err)
	}
	if tb.WouldGrant(2, "other", lock.S) {
		t.Fatal("granted to a blocked transaction")
	}
	// An empty resource always grants.
	if !tb.WouldGrant(3, "fresh", lock.X) {
		t.Fatal("refused a fresh resource")
	}
}
