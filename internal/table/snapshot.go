package table

// Snapshot is a reusable deep copy of one or more lock tables, merged
// into a single *Table view. The sharded manager fills one per detector
// activation — each shard calls CopyInto under its own mutex, one shard
// at a time — and the detector then runs over Table() with no shard
// locks held at all.
//
// Storage is arena-pooled: Resource and txnState records live in fixed
// chunks that are recycled by Reset, and the per-record slices keep
// their capacity across activations, so a steady-state copy-out
// allocates (almost) nothing. The arenas are chunked rather than a
// single slice so that growing them never moves records that the merged
// table's maps already point at.
type Snapshot struct {
	tb *Table

	resChunks [][]Resource
	resUsed   int
	stChunks  [][]txnState
	stUsed    int
}

// snapChunk is the arena allocation unit.
const snapChunk = 64

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{tb: New()}
}

// Table returns the merged table view. It implements everything a
// detector needs (including mutation: aborts and repositionings applied
// to a snapshot stay in the snapshot). The pointer is stable across
// Reset, so a detect.Detector can be bound to it once.
func (s *Snapshot) Table() *Table { return s.tb }

// Reset clears the snapshot for a new round of CopyInto calls, keeping
// every arena and slice capacity for reuse.
func (s *Snapshot) Reset() {
	clear(s.tb.resources)
	clear(s.tb.txns)
	s.tb.resCache = s.tb.resCache[:0]
	s.tb.resDirty = true
	s.resUsed = 0
	s.stUsed = 0
}

// allocResource hands out a recycled Resource record.
func (s *Snapshot) allocResource() *Resource {
	ci, off := s.resUsed/snapChunk, s.resUsed%snapChunk
	if ci == len(s.resChunks) {
		s.resChunks = append(s.resChunks, make([]Resource, snapChunk))
	}
	s.resUsed++
	r := &s.resChunks[ci][off]
	r.holders = r.holders[:0]
	r.queue = r.queue[:0]
	return r
}

// allocTxnState hands out a recycled txnState record.
func (s *Snapshot) allocTxnState() *txnState {
	ci, off := s.stUsed/snapChunk, s.stUsed%snapChunk
	if ci == len(s.stChunks) {
		s.stChunks = append(s.stChunks, make([]txnState, snapChunk))
	}
	s.stUsed++
	st := &s.stChunks[ci][off]
	st.held = st.held[:0]
	st.waitingOn = nil
	st.waitMode = 0
	st.upgrading = false
	return st
}

// CopyInto deep-copies every resource and every transaction's wait/hold
// bookkeeping from t into s. The caller must serialize CopyInto against
// mutations of t (the sharded manager holds t's shard mutex); distinct
// source tables may be copied into the same snapshot sequentially, and
// a transaction whose locks span several source tables has its held
// list merged. Resource identity is assumed disjoint between source
// tables (each resource lives in exactly one shard).
func (t *Table) CopyInto(s *Snapshot) {
	for rid, r := range t.resources {
		nr := s.allocResource()
		nr.id = rid
		nr.total = r.total
		nr.holders = append(nr.holders, r.holders...)
		nr.queue = append(nr.queue, r.queue...)
		s.tb.resources[rid] = nr
	}
	s.tb.resDirty = true
	for id, st := range t.txns {
		if len(st.held) == 0 && st.waitingOn == nil {
			continue
		}
		ns, ok := s.tb.txns[id]
		if !ok {
			ns = s.allocTxnState()
			s.tb.txns[id] = ns
		}
		for _, r := range st.held {
			ns.held = append(ns.held, s.tb.resources[r.id])
		}
		// A torn multi-shard copy can show one transaction waiting in
		// two shards (it was granted and moved on between the copy
		// instants); keep the first wait seen so the merged view stays
		// deterministic given the copy order.
		if st.waitingOn != nil && ns.waitingOn == nil {
			ns.waitingOn = s.tb.resources[st.waitingOn.id]
			ns.waitMode = st.waitMode
			ns.upgrading = st.upgrading
		}
	}
}
