package table

import (
	"cmp"
	"math/bits"
	"slices"

	"hwtwbg/internal/lock"
)

// Snapshot is a reusable deep copy of one or more lock tables, merged
// into a single *Table view. The sharded manager fills one per detector
// activation — each shard is copied under its own mutex — and the
// detector then runs over the merge with no shard locks held at all.
//
// Storage is split into per-shard sub-snapshots so the copy can be
// incremental: each source shard owns a private arena of Resource and
// fragment records plus the sorted id lists describing what it
// contributed last round. A shard whose mutation epoch is unchanged is
// skipped entirely — its records stay byte-for-byte in place, still
// wired into the merged table — and only dirty shards are recopied and
// re-merged (diffing the old and new id lists, so the merge cost is
// proportional to churn, not table size). Records are recycled through
// per-sub freelists, so a steady-state copy-out allocates (almost)
// nothing whether the round is incremental or full.
//
// Two filling disciplines share the machinery:
//
//   - indexed (the incremental detector): BeginRound, then per shard
//     either ShardClean (skip) or CopyShard+FinishShard, then one
//     MergeShards call with the dirty indexes. CopyShard for distinct
//     indexes may run concurrently; everything else is serial.
//   - sequential (legacy CopyInto): each call copies one table into the
//     next index and merges immediately. Reset starts a new round.
//
// Detection runs over View, which restricts the resource iteration to
// resources that can contribute graph edges (see SnapView). Mutating
// the snapshot through the view (a detector applying its resolutions)
// marks it dirty, and the next BeginRound/Reset rebuilds everything
// from scratch — mutation breaks the sub-arena/merge invariants, and
// deadlock resolutions are rare enough that a one-round full recopy
// costs nothing in steady state.
type Snapshot struct {
	tb   *Table
	subs []*subSnapshot
	seq  int // next index for sequential CopyInto rounds

	// stFree recycles merged txnState records (unbounded: holds at most
	// the peak live-transaction count, like the sub arenas).
	stFree []*txnState

	// affected is the per-merge scratch set of transactions whose merged
	// state must be rebuilt (every txn added to or removed from a dirty
	// shard this round).
	affected map[TxnID]struct{}

	// fragShards maps each transaction to the bitmask of sub indexes
	// holding a fragment for it, so rebuilding a merged state visits
	// only the shards that contribute. Maintained only while the shard
	// count fits a word (useMask); beyond that the rebuild scans all
	// subs.
	fragShards map[TxnID]uint64
	useMask    bool

	// active is the merged, id-sorted list of resources that can
	// contribute graph edges (queued waiters or blocked conversions).
	active []*Resource

	// mutated is set when the snapshot was modified through its view;
	// the next round invalidates every sub instead of reusing them.
	mutated bool

	view     SnapView
	mergeOne [1]int
}

// subSnapshot is one source shard's contribution: a private record
// arena plus the sorted contents lists from the current and previous
// rounds (the merge diffs them).
type subSnapshot struct {
	epoch uint64 // source shard mutation epoch at copy time
	valid bool   // a copy is present and reusable

	res   map[ResourceID]*Resource
	frags map[TxnID]*txnFrag

	rids, prevRids   []ResourceID
	txids, prevTxids []TxnID
	active           []*Resource

	resFree  []*Resource
	fragFree []*txnFrag
}

// txnFrag is one transaction's footprint within a single shard: the
// held resources (pointing at the sub's own records) and the wait, if
// the transaction is blocked in this shard.
type txnFrag struct {
	held      []*Resource
	wait      *Resource
	waitMode  lock.Mode
	upgrading bool
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	s := &Snapshot{
		tb:         New(),
		affected:   make(map[TxnID]struct{}),
		fragShards: make(map[TxnID]uint64),
		useMask:    true,
	}
	s.view.s = s
	return s
}

// Table returns the merged table view. It implements everything a
// detector needs (including mutation: aborts and repositionings applied
// to a snapshot stay in the snapshot). The pointer is stable across
// Reset, so a detect.Detector can be bound to it once.
func (s *Snapshot) Table() *Table { return s.tb }

// View returns the detection-facing view of the merged table. The
// pointer is stable across rounds.
func (s *Snapshot) View() *SnapView { return &s.view }

// Reset clears the snapshot for a new sequential round of CopyInto
// calls, keeping every arena and slice capacity for reuse.
func (s *Snapshot) Reset() {
	s.invalidate()
	s.seq = 0
}

// invalidate forgets every copy: all records are retired to their
// freelists (capacities preserved) and the merged table is emptied.
func (s *Snapshot) invalidate() {
	for _, sub := range s.subs {
		for rid, r := range sub.res {
			delete(sub.res, rid)
			sub.retireRes(r)
		}
		for id, f := range sub.frags {
			delete(sub.frags, id)
			sub.retireFrag(f)
		}
		sub.rids = sub.rids[:0]
		sub.prevRids = sub.prevRids[:0]
		sub.txids = sub.txids[:0]
		sub.prevTxids = sub.prevTxids[:0]
		sub.active = sub.active[:0]
		sub.valid = false
		sub.epoch = 0
	}
	for id, st := range s.tb.txns {
		delete(s.tb.txns, id)
		s.freeState(st)
	}
	clear(s.tb.resources)
	clear(s.fragShards)
	clear(s.affected)
	s.tb.resCache = s.tb.resCache[:0]
	s.tb.resDirty = true
	// The detector's view mutators retire records it deletes into the
	// merged table's own freelists; those records belong to the sub
	// arenas, so drop the aliases.
	s.tb.resFree = s.tb.resFree[:0]
	s.tb.stFree = s.tb.stFree[:0]
	s.active = s.active[:0]
	s.mutated = false
}

// BeginRound prepares an indexed round over n source shards. If the
// previous round's snapshot was mutated (a detector applied
// resolutions to it), every sub is invalidated so the whole table is
// recopied.
func (s *Snapshot) BeginRound(n int) {
	s.ensureSubs(n)
	if s.mutated {
		s.invalidate()
	}
}

func (s *Snapshot) ensureSubs(n int) {
	for len(s.subs) < n {
		s.subs = append(s.subs, &subSnapshot{
			res:   make(map[ResourceID]*Resource),
			frags: make(map[TxnID]*txnFrag),
		})
	}
	s.useMask = len(s.subs) <= 64
}

// ShardClean reports whether sub i holds a reusable copy taken at
// exactly the given source epoch. A clean shard needs no CopyShard,
// FinishShard, or merge attention this round.
func (s *Snapshot) ShardClean(i int, epoch uint64) bool {
	sub := s.subs[i]
	return sub.valid && sub.epoch == epoch
}

// ShardHadWaiters reports whether sub i's last copy contributed any
// active resources (queued waiters or blocked conversions) — the
// pre-filter deciding whether a clean shard can possibly affect the
// graph.
func (s *Snapshot) ShardHadWaiters(i int) bool {
	return len(s.subs[i].active) > 0
}

// CopyShard deep-copies table t into sub i, recording the source's
// mutation epoch. The caller must hold t's mutex for the duration;
// calls for distinct indexes may run concurrently (each touches only
// its own sub). FinishShard(i) must follow before MergeShards sees i.
func (s *Snapshot) CopyShard(t *Table, i int, epoch uint64) {
	sub := s.subs[i]
	sub.prevRids, sub.rids = sub.rids, sub.prevRids[:0]
	sub.prevTxids, sub.txids = sub.txids, sub.prevTxids[:0]
	sub.active = sub.active[:0]
	for rid, r := range t.resources {
		nr := sub.res[rid]
		if nr == nil {
			nr = sub.allocRes()
			sub.res[rid] = nr
		}
		nr.id = rid
		nr.total = r.total
		nr.holders = append(nr.holders[:0], r.holders...)
		nr.queue = append(nr.queue[:0], r.queue...)
		sub.rids = append(sub.rids, rid)
		if len(nr.queue) > 0 || nr.blockedLen() > 0 {
			sub.active = append(sub.active, nr)
		}
	}
	for id, st := range t.txns {
		if len(st.held) == 0 && st.waitingOn == nil {
			continue
		}
		f := sub.frags[id]
		if f == nil {
			f = sub.allocFrag()
			sub.frags[id] = f
		}
		f.held = f.held[:0]
		for _, r := range st.held {
			f.held = append(f.held, sub.res[r.id])
		}
		if st.waitingOn != nil {
			f.wait = sub.res[st.waitingOn.id]
			f.waitMode = st.waitMode
			f.upgrading = st.upgrading
		} else {
			f.wait = nil
			f.waitMode = lock.NL
			f.upgrading = false
		}
		sub.txids = append(sub.txids, id)
	}
	sub.epoch = epoch
	sub.valid = true
}

// FinishShard sorts sub i's contents lists. It is split from CopyShard
// so the sorting happens outside the source shard's mutex.
func (s *Snapshot) FinishShard(i int) {
	sub := s.subs[i]
	slices.Sort(sub.rids)
	slices.Sort(sub.txids)
	slices.SortFunc(sub.active, func(a, b *Resource) int { return cmp.Compare(a.id, b.id) })
}

// MergeShards folds the listed dirty subs into the merged table:
// resources and fragments that disappeared since the sub's previous
// copy are retired, new ones wired in, and the merged wait/hold state
// of every transaction touched by a dirty shard is rebuilt (reading the
// clean shards' fragments in place). Merge cost is proportional to the
// dirty shards' content, not the table.
func (s *Snapshot) MergeShards(dirty []int) {
	if len(dirty) == 0 {
		return
	}
	clear(s.affected)
	setChanged := false
	for _, i := range dirty {
		sub := s.subs[i]
		// Resource diff: prevRids and rids are sorted.
		a, b := sub.prevRids, sub.rids
		x, y := 0, 0
		for x < len(a) || y < len(b) {
			switch {
			case y >= len(b) || (x < len(a) && a[x] < b[y]):
				rid := a[x]
				x++
				if r := sub.res[rid]; r != nil {
					delete(sub.res, rid)
					delete(s.tb.resources, rid)
					sub.retireRes(r)
				}
				setChanged = true
			case x >= len(a) || b[y] < a[x]:
				rid := b[y]
				y++
				s.tb.resources[rid] = sub.res[rid]
				setChanged = true
			default:
				// Unchanged id: the record was rewritten in place and the
				// merged table already points at it.
				x++
				y++
			}
		}
		// Fragment diff: every txn present in either round is affected.
		bit := uint64(1) << uint(i&63)
		a2, b2 := sub.prevTxids, sub.txids
		x, y = 0, 0
		for x < len(a2) || y < len(b2) {
			switch {
			case y >= len(b2) || (x < len(a2) && a2[x] < b2[y]):
				id := a2[x]
				x++
				if f := sub.frags[id]; f != nil {
					delete(sub.frags, id)
					sub.retireFrag(f)
				}
				if s.useMask {
					if m := s.fragShards[id] &^ bit; m == 0 {
						delete(s.fragShards, id)
					} else {
						s.fragShards[id] = m
					}
				}
				s.affected[id] = struct{}{}
			case x >= len(a2) || b2[y] < a2[x]:
				id := b2[y]
				y++
				if s.useMask {
					s.fragShards[id] |= bit
				}
				s.affected[id] = struct{}{}
			default:
				s.affected[a2[x]] = struct{}{}
				x++
				y++
			}
		}
	}
	if setChanged {
		s.tb.resDirty = true
	}
	for id := range s.affected {
		s.rebuildTxn(id)
	}
	s.rebuildActive()
}

// rebuildTxn reassembles the merged wait/hold state of one transaction
// from its per-shard fragments, in ascending sub index order — the same
// order a sequential full copy visits shards, so the merged held list
// and the "first wait seen" tie-break (a torn multi-shard copy can show
// one transaction waiting in two shards) are byte-identical to a full
// copy of the same sub contents.
func (s *Snapshot) rebuildTxn(id TxnID) {
	st := s.tb.txns[id]
	if st != nil {
		st.held = st.held[:0]
		st.waitingOn = nil
		st.waitMode = lock.NL
		st.upgrading = false
	}
	add := func(f *txnFrag) {
		if st == nil {
			st = s.allocState()
			s.tb.txns[id] = st
		}
		st.held = append(st.held, f.held...)
		if f.wait != nil && st.waitingOn == nil {
			st.waitingOn = f.wait
			st.waitMode = f.waitMode
			st.upgrading = f.upgrading
		}
	}
	if s.useMask {
		for m := s.fragShards[id]; m != 0; {
			i := bits.TrailingZeros64(m)
			m &^= 1 << uint(i)
			if f := s.subs[i].frags[id]; f != nil {
				add(f)
			}
		}
	} else {
		for _, sub := range s.subs {
			if !sub.valid {
				continue
			}
			if f := sub.frags[id]; f != nil {
				add(f)
			}
		}
	}
	if st != nil && len(st.held) == 0 && st.waitingOn == nil {
		delete(s.tb.txns, id)
		s.freeState(st)
	}
}

// rebuildActive reassembles the merged id-sorted active-resource list
// from the per-sub lists.
func (s *Snapshot) rebuildActive() {
	s.active = s.active[:0]
	for _, sub := range s.subs {
		if !sub.valid {
			continue
		}
		s.active = append(s.active, sub.active...)
	}
	slices.SortFunc(s.active, func(a, b *Resource) int { return cmp.Compare(a.id, b.id) })
}

// CopyInto deep-copies every resource and every transaction's wait/hold
// bookkeeping from t into s, sequential discipline: the first call
// after Reset fills sub 0, the next sub 1, and so on, merging as it
// goes. The caller must serialize CopyInto against mutations of t (the
// sharded manager holds t's shard mutex); a transaction whose locks
// span several source tables has its held list merged. Resource
// identity is assumed disjoint between source tables (each resource
// lives in exactly one shard).
func (t *Table) CopyInto(s *Snapshot) {
	i := s.seq
	s.seq++
	s.ensureSubs(i + 1)
	s.CopyShard(t, i, 0)
	s.FinishShard(i)
	s.mergeOne[0] = i
	s.MergeShards(s.mergeOne[:])
}

func (s *Snapshot) allocState() *txnState {
	if n := len(s.stFree); n > 0 {
		st := s.stFree[n-1]
		s.stFree = s.stFree[:n-1]
		return st
	}
	return &txnState{}
}

func (s *Snapshot) freeState(st *txnState) {
	st.held = st.held[:0]
	st.waitingOn = nil
	st.waitMode = lock.NL
	st.upgrading = false
	s.stFree = append(s.stFree, st)
}

func (sub *subSnapshot) allocRes() *Resource {
	if n := len(sub.resFree); n > 0 {
		r := sub.resFree[n-1]
		sub.resFree = sub.resFree[:n-1]
		return r
	}
	return &Resource{}
}

func (sub *subSnapshot) retireRes(r *Resource) {
	r.id = ""
	r.total = lock.NL
	r.holders = r.holders[:0]
	r.queue = r.queue[:0]
	sub.resFree = append(sub.resFree, r)
}

func (sub *subSnapshot) allocFrag() *txnFrag {
	if n := len(sub.fragFree); n > 0 {
		f := sub.fragFree[n-1]
		sub.fragFree = sub.fragFree[:n-1]
		return f
	}
	return &txnFrag{}
}

func (sub *subSnapshot) retireFrag(f *txnFrag) {
	f.held = f.held[:0]
	f.wait = nil
	f.waitMode = lock.NL
	f.upgrading = false
	sub.fragFree = append(sub.fragFree, f)
}

// SnapView is the detection-facing view of a snapshot: reads delegate
// to the merged table, but EachResource iterates only the *active*
// resources — those with a queued waiter or a blocked conversion.
// Resources with neither contribute no vertex and no edge to the
// H/W-TWBG (every W-edge needs a queue entry; every H-edge needs a
// blocked party, and NL is compatible with every mode), so skipping
// them is exactly output-preserving while making the build scan
// proportional to contention rather than table size.
//
// Mutations (a detector applying TDR-1/TDR-2 to its own input) are
// forwarded to the merged table and mark the snapshot mutated, forcing
// the next round to recopy every shard — the sub-arena bookkeeping no
// longer matches the merged table after surgery.
type SnapView struct {
	s *Snapshot
}

// EachResource calls f for every active resource in id order, stopping
// if f returns false.
func (v *SnapView) EachResource(f func(*Resource) bool) {
	for _, r := range v.s.active {
		if !f(r) {
			return
		}
	}
}

// Resource returns the merged table entry for rid, or nil.
func (v *SnapView) Resource(rid ResourceID) *Resource { return v.s.tb.Resource(rid) }

// WaitingOn reports the merged wait state of txn.
func (v *SnapView) WaitingOn(txn TxnID) (ResourceID, lock.Mode, bool) {
	return v.s.tb.WaitingOn(txn)
}

// PeekAVST delegates to the merged table.
func (v *SnapView) PeekAVST(rid ResourceID, j TxnID) (av, st []QueueEntry) {
	return v.s.tb.PeekAVST(rid, j)
}

// RepositionAVST applies TDR-2 queue surgery to the snapshot and marks
// it mutated.
func (v *SnapView) RepositionAVST(rid ResourceID, j TxnID) (av, st []QueueEntry) {
	v.s.mutated = true
	return v.s.tb.RepositionAVST(rid, j)
}

// Abort applies a TDR-1 abort to the snapshot and marks it mutated.
func (v *SnapView) Abort(txn TxnID) []Grant {
	v.s.mutated = true
	return v.s.tb.Abort(txn)
}

// ScheduleQueue reschedules a queue in the snapshot and marks it
// mutated.
func (v *SnapView) ScheduleQueue(rid ResourceID) []Grant {
	v.s.mutated = true
	return v.s.tb.ScheduleQueue(rid)
}
