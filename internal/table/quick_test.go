package table

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hwtwbg/internal/lock"
)

// opSeq is a random operation sequence for testing/quick: each element
// encodes one table operation.
type opSeq []uint16

// Generate implements quick.Generator.
func (opSeq) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size*4 + 8)
	s := make(opSeq, n)
	for i := range s {
		s[i] = uint16(r.Uint32())
	}
	return reflect.ValueOf(s)
}

// replay drives a fresh table with the sequence and returns it.
func replay(s opSeq) *Table {
	tb := New()
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	resources := []ResourceID{"q1", "q2", "q3"}
	for _, code := range s {
		txn := TxnID(code&0x07 + 1)
		switch (code >> 3) % 8 {
		case 6:
			if !tb.Blocked(txn) {
				tb.Release(txn)
			}
		case 7:
			tb.Abort(txn)
		default:
			if tb.Blocked(txn) {
				continue
			}
			rid := resources[(code>>6)%3]
			m := modes[int(code>>8)%len(modes)]
			tb.Request(txn, rid, m)
		}
	}
	return tb
}

// TestQuickRepositionPreservesQueue: for any reachable state and any
// queued transaction j, RepositionAVST permutes exactly the prefix up
// to j — same multiset overall, AV then ST both in their original
// relative order, suffix untouched — and the AV/ST split matches the
// compatibility definition.
func TestQuickRepositionPreservesQueue(t *testing.T) {
	f := func(s opSeq, pick uint8) bool {
		tb := replay(s)
		// Find a resource with a non-empty queue.
		var r *Resource
		for _, res := range tb.Resources() {
			if len(res.Queue()) > 0 {
				r = res
				break
			}
		}
		if r == nil {
			return true // nothing to test on this sequence
		}
		before := r.Queue()
		j := before[int(pick)%len(before)].Txn
		av, st := tb.RepositionAVST(r.ID(), j)
		after := r.Queue()

		if len(after) != len(before) {
			return false
		}
		// The suffix beyond j's old position is untouched.
		idx := 0
		for i, q := range before {
			if q.Txn == j {
				idx = i
				break
			}
		}
		for i := idx + 1; i < len(before); i++ {
			if after[i] != before[i] {
				return false
			}
		}
		// The prefix is exactly AV then ST.
		if len(av)+len(st) != idx+1 {
			return false
		}
		for i, q := range av {
			if after[i] != q {
				return false
			}
		}
		for i, q := range st {
			if after[len(av)+i] != q {
				return false
			}
		}
		// Split correctness and original relative orders.
		ai, si := 0, 0
		for _, q := range before[:idx+1] {
			if lock.Comp(q.Blocked, r.TotalMode()) {
				if ai >= len(av) || av[ai] != q {
					return false
				}
				ai++
			} else {
				if si >= len(st) || st[si] != q {
					return false
				}
				si++
			}
		}
		return ai == len(av) && si == len(st)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneEquivalence: a clone renders identically and evolves
// identically under a common suffix of operations.
func TestQuickCloneEquivalence(t *testing.T) {
	f := func(s, suffix opSeq) bool {
		tb := replay(s)
		c := tb.Clone()
		if tb.String() != c.String() {
			return false
		}
		// Apply the same suffix to both.
		apply := func(target *Table) {
			modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
			resources := []ResourceID{"q1", "q2", "q3"}
			for _, code := range suffix {
				txn := TxnID(code&0x07 + 1)
				switch (code >> 3) % 8 {
				case 6:
					if !target.Blocked(txn) {
						target.Release(txn)
					}
				case 7:
					target.Abort(txn)
				default:
					if target.Blocked(txn) {
						continue
					}
					target.Request(txn, resources[(code>>6)%3], modes[int(code>>8)%len(modes)])
				}
			}
		}
		apply(tb)
		apply(c)
		return tb.String() == c.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickTotalModeNeverWeakens: within a single resource's lifetime
// between holder removals, tm only climbs the lattice as requests
// arrive (grants and blocks both fold in).
func TestQuickTotalModeNeverWeakens(t *testing.T) {
	f := func(codes []uint16) bool {
		tb := New()
		modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
		prev := lock.NL
		for _, code := range codes {
			txn := TxnID(code&0x0f + 1)
			if tb.Blocked(txn) {
				continue
			}
			m := modes[int(code>>4)%len(modes)]
			if _, err := tb.Request(txn, "R", m); err != nil {
				return false
			}
			r := tb.Resource("R")
			if r == nil {
				return false
			}
			tm := r.TotalMode()
			if !lock.Covers(tm, prev) {
				return false // tm must climb while no one leaves
			}
			prev = tm
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
