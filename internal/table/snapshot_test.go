package table

import (
	"fmt"
	"testing"

	"hwtwbg/internal/lock"
)

// buildSnapshotFixture fills t with a mix of holders, blocked
// conversions and queue waiters across several resources.
func buildSnapshotFixture(t *testing.T, tb *Table) {
	t.Helper()
	mustReq := func(txn TxnID, rid ResourceID, m lock.Mode, wantGranted bool) {
		t.Helper()
		g, err := tb.Request(txn, rid, m)
		if err != nil {
			t.Fatalf("Request(%d, %s, %v): %v", txn, rid, m, err)
		}
		if g != wantGranted {
			t.Fatalf("Request(%d, %s, %v) granted=%v, want %v", txn, rid, m, g, wantGranted)
		}
	}
	mustReq(1, "R1", lock.IX, true)
	mustReq(2, "R1", lock.IX, true)
	mustReq(1, "R1", lock.SIX, false) // blocked conversion
	mustReq(3, "R1", lock.X, false)   // queue
	mustReq(4, "R1", lock.IS, false)  // queue behind an incompatible waiter
	mustReq(2, "R2", lock.S, true)
	mustReq(5, "R3", lock.X, true)  // T5 holds R3...
	mustReq(5, "R2", lock.X, false) // ...and then queues on R2
}

func TestSnapshotCopyInto(t *testing.T) {
	src := New()
	buildSnapshotFixture(t, src)

	s := NewSnapshot()
	src.CopyInto(s)
	got := s.Table()

	if got.String() != src.String() {
		t.Fatalf("snapshot table differs from source:\n got:\n%s\nwant:\n%s", got.String(), src.String())
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("snapshot table invalid: %v", err)
	}
	for _, txn := range src.Txns() {
		wantRid, wantMode, wantOk := src.WaitingOn(txn)
		gotRid, gotMode, gotOk := got.WaitingOn(txn)
		if wantRid != gotRid || wantMode != gotMode || wantOk != gotOk {
			t.Errorf("WaitingOn(%d): snapshot (%s, %v, %v), source (%s, %v, %v)",
				txn, gotRid, gotMode, gotOk, wantRid, wantMode, wantOk)
		}
		if a, b := got.HeldCount(txn), src.HeldCount(txn); a != b {
			t.Errorf("HeldCount(%d): snapshot %d, source %d", txn, a, b)
		}
		if got.Upgrading(txn) != src.Upgrading(txn) {
			t.Errorf("Upgrading(%d) differs", txn)
		}
	}

	// Mutating the snapshot must not leak into the source.
	got.Abort(3)
	if src.String() == got.String() {
		t.Fatalf("aborting in the snapshot changed nothing (shared state?)")
	}
	if !src.Blocked(3) {
		t.Fatalf("source lost T3's blocked state after a snapshot-side abort")
	}
}

func TestSnapshotMergesShardedTables(t *testing.T) {
	// Two "shards": T1 holds in a and waits in b; T2 the reverse.
	a, b := New(), New()
	if g, _ := a.Request(1, "Ra", lock.X); !g {
		t.Fatal("setup: T1 should hold Ra")
	}
	if g, _ := b.Request(2, "Rb", lock.X); !g {
		t.Fatal("setup: T2 should hold Rb")
	}
	if g, _ := b.Request(1, "Rb", lock.X); g {
		t.Fatal("setup: T1 should block on Rb")
	}
	if g, _ := a.Request(2, "Ra", lock.X); g {
		t.Fatal("setup: T2 should block on Ra")
	}

	s := NewSnapshot()
	a.CopyInto(s)
	b.CopyInto(s)
	got := s.Table()

	if n := got.HeldCount(1); n != 1 {
		t.Errorf("merged HeldCount(1) = %d, want 1", n)
	}
	if rid, _, ok := got.WaitingOn(1); !ok || rid != "Rb" {
		t.Errorf("merged WaitingOn(1) = (%s, %v), want (Rb, true)", rid, ok)
	}
	if rid, _, ok := got.WaitingOn(2); !ok || rid != "Ra" {
		t.Errorf("merged WaitingOn(2) = (%s, %v), want (Ra, true)", rid, ok)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("merged snapshot invalid: %v", err)
	}
}

func TestSnapshotResetReuse(t *testing.T) {
	src := New()
	buildSnapshotFixture(t, src)
	s := NewSnapshot()

	// Warm up the arenas, then verify a Reset+CopyInto round trip is
	// (nearly) allocation-free and still faithful.
	src.CopyInto(s)
	want := s.Table().String()
	allocs := testing.AllocsPerRun(50, func() {
		s.Reset()
		src.CopyInto(s)
	})
	if got := s.Table().String(); got != want {
		t.Fatalf("reused snapshot differs:\n got:\n%s\nwant:\n%s", got, want)
	}
	// Map reinsertion may allocate a little; copy-out must not scale
	// allocations with table size.
	if allocs > 4 {
		t.Errorf("Reset+CopyInto allocates %.0f objects/run after warm-up, want <= 4", allocs)
	}
}

func TestSnapshotTableStableAcrossReset(t *testing.T) {
	s := NewSnapshot()
	before := s.Table()
	src := New()
	buildSnapshotFixture(t, src)
	src.CopyInto(s)
	s.Reset()
	if s.Table() != before {
		t.Fatalf("Table() pointer changed across Reset; detectors bind to it once")
	}
}

func TestSnapshotTornWaitKeepsFirst(t *testing.T) {
	// A torn copy can present one transaction as waiting in two source
	// tables; the merge keeps the first wait seen.
	a, b := New(), New()
	a.Request(9, "Ra", lock.X)
	a.Request(1, "Ra", lock.X) // T1 waits in a
	b.Request(8, "Rb", lock.X)
	b.Request(1, "Rb", lock.X) // and "again" in b

	s := NewSnapshot()
	a.CopyInto(s)
	b.CopyInto(s)
	rid, _, ok := s.Table().WaitingOn(1)
	if !ok || rid != "Ra" {
		t.Fatalf("WaitingOn(1) = (%s, %v), want first-seen (Ra, true)", rid, ok)
	}
	// The stale queue entry in Rb remains (the validate-then-act layer
	// is what protects against acting on it), but the table must still
	// be internally consistent enough to walk.
	if r := s.Table().Resource("Rb"); r == nil || r.QueueLen() != 1 {
		t.Fatalf("Rb queue not copied")
	}
}

func BenchmarkSnapshotCopyInto(b *testing.B) {
	src := New()
	for i := 0; i < 64; i++ {
		rid := ResourceID(fmt.Sprintf("R%02d", i))
		src.Request(TxnID(i+1), rid, lock.S)
		src.Request(TxnID(i+65), rid, lock.S)
		src.Request(TxnID(i+129), rid, lock.X) // one waiter per resource
	}
	s := NewSnapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		src.CopyInto(s)
	}
}
