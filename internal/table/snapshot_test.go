package table

import (
	"fmt"
	"testing"

	"hwtwbg/internal/lock"
)

// buildSnapshotFixture fills t with a mix of holders, blocked
// conversions and queue waiters across several resources.
func buildSnapshotFixture(t *testing.T, tb *Table) {
	t.Helper()
	mustReq := func(txn TxnID, rid ResourceID, m lock.Mode, wantGranted bool) {
		t.Helper()
		g, err := tb.Request(txn, rid, m)
		if err != nil {
			t.Fatalf("Request(%d, %s, %v): %v", txn, rid, m, err)
		}
		if g != wantGranted {
			t.Fatalf("Request(%d, %s, %v) granted=%v, want %v", txn, rid, m, g, wantGranted)
		}
	}
	mustReq(1, "R1", lock.IX, true)
	mustReq(2, "R1", lock.IX, true)
	mustReq(1, "R1", lock.SIX, false) // blocked conversion
	mustReq(3, "R1", lock.X, false)   // queue
	mustReq(4, "R1", lock.IS, false)  // queue behind an incompatible waiter
	mustReq(2, "R2", lock.S, true)
	mustReq(5, "R3", lock.X, true)  // T5 holds R3...
	mustReq(5, "R2", lock.X, false) // ...and then queues on R2
}

func TestSnapshotCopyInto(t *testing.T) {
	src := New()
	buildSnapshotFixture(t, src)

	s := NewSnapshot()
	src.CopyInto(s)
	got := s.Table()

	if got.String() != src.String() {
		t.Fatalf("snapshot table differs from source:\n got:\n%s\nwant:\n%s", got.String(), src.String())
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("snapshot table invalid: %v", err)
	}
	for _, txn := range src.Txns() {
		wantRid, wantMode, wantOk := src.WaitingOn(txn)
		gotRid, gotMode, gotOk := got.WaitingOn(txn)
		if wantRid != gotRid || wantMode != gotMode || wantOk != gotOk {
			t.Errorf("WaitingOn(%d): snapshot (%s, %v, %v), source (%s, %v, %v)",
				txn, gotRid, gotMode, gotOk, wantRid, wantMode, wantOk)
		}
		if a, b := got.HeldCount(txn), src.HeldCount(txn); a != b {
			t.Errorf("HeldCount(%d): snapshot %d, source %d", txn, a, b)
		}
		if got.Upgrading(txn) != src.Upgrading(txn) {
			t.Errorf("Upgrading(%d) differs", txn)
		}
	}

	// Mutating the snapshot must not leak into the source.
	got.Abort(3)
	if src.String() == got.String() {
		t.Fatalf("aborting in the snapshot changed nothing (shared state?)")
	}
	if !src.Blocked(3) {
		t.Fatalf("source lost T3's blocked state after a snapshot-side abort")
	}
}

func TestSnapshotMergesShardedTables(t *testing.T) {
	// Two "shards": T1 holds in a and waits in b; T2 the reverse.
	a, b := New(), New()
	if g, _ := a.Request(1, "Ra", lock.X); !g {
		t.Fatal("setup: T1 should hold Ra")
	}
	if g, _ := b.Request(2, "Rb", lock.X); !g {
		t.Fatal("setup: T2 should hold Rb")
	}
	if g, _ := b.Request(1, "Rb", lock.X); g {
		t.Fatal("setup: T1 should block on Rb")
	}
	if g, _ := a.Request(2, "Ra", lock.X); g {
		t.Fatal("setup: T2 should block on Ra")
	}

	s := NewSnapshot()
	a.CopyInto(s)
	b.CopyInto(s)
	got := s.Table()

	if n := got.HeldCount(1); n != 1 {
		t.Errorf("merged HeldCount(1) = %d, want 1", n)
	}
	if rid, _, ok := got.WaitingOn(1); !ok || rid != "Rb" {
		t.Errorf("merged WaitingOn(1) = (%s, %v), want (Rb, true)", rid, ok)
	}
	if rid, _, ok := got.WaitingOn(2); !ok || rid != "Ra" {
		t.Errorf("merged WaitingOn(2) = (%s, %v), want (Ra, true)", rid, ok)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("merged snapshot invalid: %v", err)
	}
}

func TestSnapshotResetReuse(t *testing.T) {
	src := New()
	buildSnapshotFixture(t, src)
	s := NewSnapshot()

	// Warm up the arenas, then verify a Reset+CopyInto round trip is
	// (nearly) allocation-free and still faithful.
	src.CopyInto(s)
	want := s.Table().String()
	allocs := testing.AllocsPerRun(50, func() {
		s.Reset()
		src.CopyInto(s)
	})
	if got := s.Table().String(); got != want {
		t.Fatalf("reused snapshot differs:\n got:\n%s\nwant:\n%s", got, want)
	}
	// Map reinsertion may allocate a little; copy-out must not scale
	// allocations with table size.
	if allocs > 4 {
		t.Errorf("Reset+CopyInto allocates %.0f objects/run after warm-up, want <= 4", allocs)
	}
}

func TestSnapshotTableStableAcrossReset(t *testing.T) {
	s := NewSnapshot()
	before := s.Table()
	src := New()
	buildSnapshotFixture(t, src)
	src.CopyInto(s)
	s.Reset()
	if s.Table() != before {
		t.Fatalf("Table() pointer changed across Reset; detectors bind to it once")
	}
}

func TestSnapshotTornWaitKeepsFirst(t *testing.T) {
	// A torn copy can present one transaction as waiting in two source
	// tables; the merge keeps the first wait seen.
	a, b := New(), New()
	a.Request(9, "Ra", lock.X)
	a.Request(1, "Ra", lock.X) // T1 waits in a
	b.Request(8, "Rb", lock.X)
	b.Request(1, "Rb", lock.X) // and "again" in b

	s := NewSnapshot()
	a.CopyInto(s)
	b.CopyInto(s)
	rid, _, ok := s.Table().WaitingOn(1)
	if !ok || rid != "Ra" {
		t.Fatalf("WaitingOn(1) = (%s, %v), want first-seen (Ra, true)", rid, ok)
	}
	// The stale queue entry in Rb remains (the validate-then-act layer
	// is what protects against acting on it), but the table must still
	// be internally consistent enough to walk.
	if r := s.Table().Resource("Rb"); r == nil || r.QueueLen() != 1 {
		t.Fatalf("Rb queue not copied")
	}
}

// fullCopy runs one complete indexed round over srcs, copying every
// shard at the given epoch.
func fullCopy(s *Snapshot, srcs []*Table, epoch uint64) {
	s.BeginRound(len(srcs))
	dirty := make([]int, 0, len(srcs))
	for i, t := range srcs {
		s.CopyShard(t, i, epoch)
		s.FinishShard(i)
		dirty = append(dirty, i)
	}
	s.MergeShards(dirty)
}

// TestSnapshotShardCleanEpoch pins the skip decision: a sub is clean
// only when it holds a copy taken at exactly the source's current
// epoch, and detector-side mutation invalidates every sub at the next
// BeginRound.
func TestSnapshotShardCleanEpoch(t *testing.T) {
	a, b := New(), New()
	a.Request(1, "Ra", lock.X)
	b.Request(2, "Rb", lock.X)
	b.Request(3, "Rb", lock.X) // T3 waits, so an abort has something to mutate

	s := NewSnapshot()
	s.BeginRound(2)
	if s.ShardClean(0, 0) || s.ShardClean(1, 0) {
		t.Fatal("fresh subs report clean")
	}
	fullCopy(s, []*Table{a, b}, 3)
	if !s.ShardClean(0, 3) || !s.ShardClean(1, 3) {
		t.Fatal("copied subs not clean at their copy epoch")
	}
	if s.ShardClean(0, 4) {
		t.Fatal("sub clean at an epoch it was not copied at")
	}

	// A detector mutation (abort applied to the snapshot) poisons every
	// sub: the next round must recopy from scratch.
	s.View().Abort(2)
	s.BeginRound(2)
	if s.ShardClean(0, 3) || s.ShardClean(1, 3) {
		t.Fatal("subs still clean after a snapshot-side mutation")
	}
	fullCopy(s, []*Table{a, b}, 4)
	if got, want := s.Table().String(), func() string {
		ref := NewSnapshot()
		fullCopy(ref, []*Table{a, b}, 4)
		return ref.Table().String()
	}(); got != want {
		t.Fatalf("recopy after mutation differs:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshotIncrementalSkipReuse checks the tentpole path: after a
// full round, mutating only one source shard and recopying only it
// yields a merged table byte-identical to a full recopy, and the
// untouched shard's records are reused in place (same pointers).
func TestSnapshotIncrementalSkipReuse(t *testing.T) {
	cold, hot := New(), New()
	buildSnapshotFixture(t, cold)
	hot.Request(20, "H1", lock.X)
	hot.Request(21, "H1", lock.X) // waiter

	s := NewSnapshot()
	fullCopy(s, []*Table{cold, hot}, 1)
	coldRes := s.Table().Resource("R1")
	if coldRes == nil {
		t.Fatal("cold shard's R1 missing from the merge")
	}

	// Mutate the hot shard only: the waiter leaves, a new resource and a
	// new waiter arrive.
	hot.Abort(21)
	hot.Request(22, "H2", lock.X)
	hot.Request(23, "H1", lock.S) // blocks behind T20's X

	// Incremental round: shard 0 is clean at epoch 1 and skipped; only
	// shard 1 is recopied at its new epoch.
	s.BeginRound(2)
	if !s.ShardClean(0, 1) {
		t.Fatal("cold shard not clean")
	}
	if s.ShardClean(1, 2) {
		t.Fatal("hot shard clean at a bumped epoch")
	}
	s.CopyShard(hot, 1, 2)
	s.FinishShard(1)
	s.MergeShards([]int{1})

	ref := NewSnapshot()
	fullCopy(ref, []*Table{cold, hot}, 2)
	if got, want := s.Table().String(), ref.Table().String(); got != want {
		t.Fatalf("incremental merge differs from full copy:\n got:\n%s\nwant:\n%s", got, want)
	}
	if err := s.Table().Validate(); err != nil {
		t.Fatalf("incremental merge invalid: %v", err)
	}
	if s.Table().Resource("R1") != coldRes {
		t.Fatal("skipped shard's resource was recopied, not reused in place")
	}
	if rid, _, ok := s.Table().WaitingOn(23); !ok || rid != "H1" {
		t.Fatalf("WaitingOn(23) = (%s, %v), want (H1, true)", rid, ok)
	}
	if s.Table().Blocked(21) {
		t.Fatal("aborted waiter survived the incremental recopy")
	}
}

// TestSnapshotIncrementalDeletes drives the two-pointer diff in the
// delete direction: resources and transactions that vanish from a
// recopied shard must vanish from the merge.
func TestSnapshotIncrementalDeletes(t *testing.T) {
	a, b := New(), New()
	a.Request(1, "Ra", lock.S)
	b.Request(2, "Rb1", lock.X)
	b.Request(2, "Rb2", lock.X)
	b.Request(3, "Rb1", lock.S) // waiter

	s := NewSnapshot()
	fullCopy(s, []*Table{a, b}, 1)
	if s.Table().Resource("Rb2") == nil || !s.Table().Blocked(3) {
		t.Fatal("setup: first round incomplete")
	}

	b.Abort(3) // waiter leaves: Rb1 queue empties
	b.Abort(2) // holder leaves: Rb1 and Rb2 disappear entirely

	s.BeginRound(2)
	s.CopyShard(b, 1, 2)
	s.FinishShard(1)
	s.MergeShards([]int{1})

	if r := s.Table().Resource("Rb1"); r != nil {
		t.Fatalf("Rb1 survived its last holder: %v", r)
	}
	if r := s.Table().Resource("Rb2"); r != nil {
		t.Fatalf("Rb2 survived its last holder: %v", r)
	}
	if s.Table().HeldCount(2) != 0 || s.Table().Blocked(3) {
		t.Fatal("aborted transactions survived the incremental merge")
	}
	if s.Table().HeldCount(1) != 1 {
		t.Fatal("skipped shard's holder lost")
	}
	if err := s.Table().Validate(); err != nil {
		t.Fatalf("post-delete merge invalid: %v", err)
	}
}

// TestSnapshotViewActiveFilter checks the W-edge pre-filter: the
// detection view iterates only resources that can contribute graph
// elements (a queue or a blocked conversion), while the merged table
// itself still holds everything.
func TestSnapshotViewActiveFilter(t *testing.T) {
	quiet, busy := New(), New()
	quiet.Request(1, "Q1", lock.S) // held, nobody waiting
	quiet.Request(2, "Q2", lock.X) // held, nobody waiting
	busy.Request(3, "B1", lock.X)
	busy.Request(4, "B1", lock.S) // waiter -> active

	s := NewSnapshot()
	fullCopy(s, []*Table{quiet, busy}, 1)

	if s.ShardHadWaiters(0) {
		t.Fatal("quiet shard reports waiters")
	}
	if !s.ShardHadWaiters(1) {
		t.Fatal("busy shard reports no waiters")
	}
	var seen []ResourceID
	s.View().EachResource(func(r *Resource) bool {
		seen = append(seen, r.ID())
		return true
	})
	if len(seen) != 1 || seen[0] != "B1" {
		t.Fatalf("view iterated %v, want just the active B1", seen)
	}
	// The full merge still knows the quiet resources — audits and
	// validation read the table, not the filtered view.
	if s.Table().Resource("Q1") == nil || s.Table().Resource("Q2") == nil {
		t.Fatal("quiet resources missing from the merged table")
	}

	// Draining the busy queue and recopying must empty the view.
	busy.Abort(4)
	s.BeginRound(2)
	s.CopyShard(busy, 1, 2)
	s.FinishShard(1)
	s.MergeShards([]int{1})
	n := 0
	s.View().EachResource(func(*Resource) bool { n++; return true })
	if n != 0 {
		t.Fatalf("view iterated %d resources after the last waiter left, want 0", n)
	}
}

// TestSnapshotIncrementalRoundAllocs extends the arena-reuse guarantee
// to the incremental round shape: steady-state rounds that recopy one
// dirty shard out of several allocate (nearly) nothing.
func TestSnapshotIncrementalRoundAllocs(t *testing.T) {
	cold, hot := New(), New()
	buildSnapshotFixture(t, cold)
	hot.Request(30, "H1", lock.X)

	s := NewSnapshot()
	fullCopy(s, []*Table{cold, hot}, 1)
	epoch := uint64(1)
	dirty := []int{1}
	allocs := testing.AllocsPerRun(50, func() {
		epoch++
		hot.Request(31, "H1", lock.S)
		hot.Abort(31)
		s.BeginRound(2)
		s.CopyShard(hot, 1, epoch)
		s.FinishShard(1)
		s.MergeShards(dirty)
	})
	if allocs > 4 {
		t.Errorf("incremental round allocates %.0f objects/run after warm-up, want <= 4", allocs)
	}
}

func BenchmarkSnapshotCopyInto(b *testing.B) {
	src := New()
	for i := 0; i < 64; i++ {
		rid := ResourceID(fmt.Sprintf("R%02d", i))
		src.Request(TxnID(i+1), rid, lock.S)
		src.Request(TxnID(i+65), rid, lock.S)
		src.Request(TxnID(i+129), rid, lock.X) // one waiter per resource
	}
	s := NewSnapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		src.CopyInto(s)
	}
}
