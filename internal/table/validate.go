package table

import (
	"fmt"

	"hwtwbg/internal/lock"
)

// Validate checks every structural invariant the scheduling policy
// guarantees at quiescence and returns the first violation found, or
// nil. It exists as a debugging and testing aid: the invariants are
// maintained by construction, and the property-test suite calls
// Validate after every operation of long random workloads.
//
// The invariants:
//
//  1. blocked upgraders form a prefix of every holder list;
//  2. the total mode equals the conversion-fold of every holder's
//     granted and blocked modes;
//  3. granted modes are pairwise compatible;
//  4. no blocked upgrader is grantable (Theorem 3.1: rescheduling never
//     strands one);
//  5. the queue head is incompatible with the total mode;
//  6. no transaction waits in two places (Axiom 1), and the per-
//     transaction wait bookkeeping matches the physical structures.
func (t *Table) Validate() error {
	waiters := make(map[TxnID]ResourceID)
	for _, r := range t.Resources() {
		if err := t.validateResource(r, waiters); err != nil {
			return err
		}
	}
	for id, st := range t.txns {
		if st.waitingOn == nil {
			continue
		}
		if _, ok := waiters[id]; !ok {
			return fmt.Errorf("table: %v marked blocked but present in no structure", id)
		}
	}
	return nil
}

func (t *Table) validateResource(r *Resource, waiters map[TxnID]ResourceID) error {
	// 1. Blocked prefix.
	seenGranted := false
	for _, h := range r.holders {
		if h.Blocked == lock.NL {
			seenGranted = true
		} else if seenGranted {
			return fmt.Errorf("table: %s: blocked upgrader %v after a granted holder", r.id, h)
		}
	}
	// 2. Total mode.
	want := lock.NL
	for _, h := range r.holders {
		want = lock.Join(want, h.Granted, h.Blocked)
	}
	if r.total != want {
		return fmt.Errorf("table: %s: tm=%v but fold=%v", r.id, r.total, want)
	}
	// 3. Pairwise-compatible granted modes.
	for i := range r.holders {
		for j := i + 1; j < len(r.holders); j++ {
			if !lock.Comp(r.holders[i].Granted, r.holders[j].Granted) {
				return fmt.Errorf("table: %s: incompatible granted modes %v vs %v",
					r.id, r.holders[i], r.holders[j])
			}
		}
	}
	// 4. No stranded grantable upgrader.
	for _, h := range r.holders {
		if h.Blocked == lock.NL {
			continue
		}
		grantable := true
		for _, o := range r.holders {
			if o.Txn != h.Txn && !lock.Comp(h.Blocked, o.Granted) {
				grantable = false
				break
			}
		}
		if grantable {
			return fmt.Errorf("table: %s: blocked upgrader %v is grantable but stranded", r.id, h)
		}
	}
	// 5. Queue head incompatible with tm.
	if len(r.queue) > 0 && lock.Comp(r.queue[0].Blocked, r.total) {
		return fmt.Errorf("table: %s: queue head %v compatible with tm %v but not granted",
			r.id, r.queue[0], r.total)
	}
	// 6. Wait bookkeeping and Axiom 1.
	for _, q := range r.queue {
		if prev, dup := waiters[q.Txn]; dup {
			return fmt.Errorf("table: %v queued at both %s and %s", q.Txn, prev, r.id)
		}
		waiters[q.Txn] = r.id
		st := t.txns[q.Txn]
		if st == nil || st.waitingOn != r || st.waitMode != q.Blocked || st.upgrading {
			return fmt.Errorf("table: %v's wait bookkeeping inconsistent with queue of %s", q.Txn, r.id)
		}
		if _, holds := r.Holder(q.Txn); holds {
			return fmt.Errorf("table: %v both holds and queues at %s", q.Txn, r.id)
		}
	}
	for _, h := range r.holders {
		if h.Blocked == lock.NL {
			continue
		}
		if prev, dup := waiters[h.Txn]; dup {
			return fmt.Errorf("table: %v waits at both %s and %s", h.Txn, prev, r.id)
		}
		waiters[h.Txn] = r.id
		st := t.txns[h.Txn]
		if st == nil || st.waitingOn != r || st.waitMode != h.Blocked || !st.upgrading {
			return fmt.Errorf("table: %v's wait bookkeeping inconsistent with holder list of %s", h.Txn, r.id)
		}
	}
	return nil
}
