package table

import (
	"testing"

	"hwtwbg/internal/lock"
)

// TestUPRAblation demonstrates what the Upgrader Positioning Rule buys
// (Theorem 3.1 and Observation 3.1(2)): on the Example 4.1 upgrade
// pattern, the UPR orders T1's SIX conversion before T2's S conversion,
// so releasing the last blocker grants T1 cleanly. With arrival order
// instead, T1's grantable upgrade is stranded behind T2's ungrantable
// one: neither can proceed, the mutual blockage is an ECR-1 cycle, and
// a transaction must be aborted where the UPR needed none.
func TestUPRAblation(t *testing.T) {
	build := func(disable bool) *Table {
		tb := New()
		tb.DisableUPR = disable
		tb.Request(1, "A", lock.IX)
		tb.Request(2, "A", lock.IS)
		tb.Request(3, "A", lock.IX) // keeps both conversions blocked
		tb.Request(2, "A", lock.S)  // arrives first
		tb.Request(1, "A", lock.S)  // IX->SIX, arrives second
		return tb
	}

	// With the UPR: T1 precedes T2 (UPR-2); T3's release grants T1.
	withUPR := build(false)
	grants, err := withUPR.Release(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 1 || grants[0].Txn != 1 || grants[0].Mode != lock.SIX {
		t.Fatalf("with UPR: grants = %v, want T1's SIX", grants)
	}
	if err := withUPR.Validate(); err != nil {
		t.Fatalf("with UPR: %v", err)
	}

	// Without the UPR: arrival order [T2, T1]; the reschedule stops at
	// T2 (ungrantable against T1's IX) and strands T1's grantable SIX.
	without := build(true)
	grants, err = without.Release(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 0 {
		t.Fatalf("without UPR: grants = %v, want none (stranding)", grants)
	}
	hs := without.Resource("A").Holders()
	if hs[0].Txn != 2 || hs[1].Txn != 1 {
		t.Fatalf("without UPR: holder order = %v, want [T2 T1]", hs)
	}
	// The stranding shows up as a Validate error (Theorem 3.1 violated)...
	if err := without.Validate(); err == nil {
		t.Fatal("without UPR: stranded grantable upgrade not reported")
	}
	// ...and as a mutual-blockage cycle the detector must break by abort
	// (checked from the graph side in the twbg/detect packages; here we
	// just confirm both remain blocked).
	if !without.Blocked(1) || !without.Blocked(2) {
		t.Fatal("without UPR: expected both conversions to stay blocked")
	}
}
