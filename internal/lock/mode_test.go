package lock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCompatibilityMatrixTable1 checks every cell of Table 1 of the paper
// against the implementation (experiment E1).
func TestCompatibilityMatrixTable1(t *testing.T) {
	// Rows in the order the paper prints them: NL IS IX SIX S X.
	// t=true, f=false, transcribed cell by cell from Table 1.
	want := map[Mode]map[Mode]bool{
		NL:  {NL: true, IS: true, IX: true, SIX: true, S: true, X: true},
		IS:  {NL: true, IS: true, IX: true, SIX: true, S: true, X: false},
		IX:  {NL: true, IS: true, IX: true, SIX: false, S: false, X: false},
		SIX: {NL: true, IS: true, IX: false, SIX: false, S: false, X: false},
		S:   {NL: true, IS: true, IX: false, SIX: false, S: true, X: false},
		X:   {NL: true, IS: false, IX: false, SIX: false, S: false, X: false},
	}
	for _, a := range Modes {
		for _, b := range Modes {
			if got := Comp(a, b); got != want[a][b] {
				t.Errorf("Comp(%v, %v) = %v, Table 1 says %v", a, b, got, want[a][b])
			}
		}
	}
}

// TestConversionMatrixTable2 checks every cell of Table 2 of the paper
// (experiment E2).
func TestConversionMatrixTable2(t *testing.T) {
	want := map[Mode]map[Mode]Mode{
		NL:  {NL: NL, IS: IS, IX: IX, SIX: SIX, S: S, X: X},
		IS:  {NL: IS, IS: IS, IX: IX, SIX: SIX, S: S, X: X},
		IX:  {NL: IX, IS: IX, IX: IX, SIX: SIX, S: SIX, X: X},
		SIX: {NL: SIX, IS: SIX, IX: SIX, SIX: SIX, S: SIX, X: X},
		S:   {NL: S, IS: S, IX: SIX, SIX: SIX, S: S, X: X},
		X:   {NL: X, IS: X, IX: X, SIX: X, S: X, X: X},
	}
	for _, a := range Modes {
		for _, b := range Modes {
			if got := Conv(a, b); got != want[a][b] {
				t.Errorf("Conv(%v, %v) = %v, Table 2 says %v", a, b, got, want[a][b])
			}
		}
	}
}

// The paper's running examples from Section 2.
func TestPaperExamplesSection2(t *testing.T) {
	if !Comp(S, IS) {
		t.Error("paper: Comp(S, IS) must be true")
	}
	if Comp(IX, SIX) {
		t.Error("paper: Comp(IX, SIX) must be false")
	}
	if got := Conv(IX, S); got != SIX {
		t.Errorf("paper: Conv(IX, S) = %v, want SIX", got)
	}
}

func TestCompSymmetric(t *testing.T) {
	for _, a := range Modes {
		for _, b := range Modes {
			if Comp(a, b) != Comp(b, a) {
				t.Errorf("Comp(%v,%v) != Comp(%v,%v)", a, b, b, a)
			}
		}
	}
}

func TestConvLatticeLaws(t *testing.T) {
	for _, a := range Modes {
		if Conv(a, a) != a {
			t.Errorf("Conv not idempotent at %v", a)
		}
		if Conv(a, NL) != a || Conv(NL, a) != a {
			t.Errorf("NL is not identity at %v", a)
		}
		for _, b := range Modes {
			if Conv(a, b) != Conv(b, a) {
				t.Errorf("Conv not commutative at (%v,%v)", a, b)
			}
			for _, c := range Modes {
				if Conv(Conv(a, b), c) != Conv(a, Conv(b, c)) {
					t.Errorf("Conv not associative at (%v,%v,%v)", a, b, c)
				}
			}
		}
	}
}

// Converting to a stronger mode can only shrink the compatibility set:
// if Comp(Conv(a,b), c) then Comp(a, c). This is what makes the total
// mode a sound single-value summary of a holder list.
func TestConvMonotoneInCompatibility(t *testing.T) {
	for _, a := range Modes {
		for _, b := range Modes {
			j := Conv(a, b)
			for _, c := range Modes {
				if Comp(j, c) && !Comp(a, c) {
					t.Errorf("Comp(Conv(%v,%v)=%v, %v) but !Comp(%v, %v)", a, b, j, c, a, c)
				}
			}
		}
	}
}

// The total mode must be a sound grant test: a new mode m is compatible
// with every member of a set of modes iff ... only the "only if" half
// holds with Comp(m, join); the paper relies on exactly that direction
// plus its converse for the specific sets produced by the protocol.
// Here we check soundness: compatible with the join implies compatible
// with every element.
func TestJoinSoundness(t *testing.T) {
	f := func(raw []uint8, mr uint8) bool {
		m := Mode(mr % uint8(numModes))
		j := NL
		ms := make([]Mode, 0, len(raw))
		for _, r := range raw {
			mm := Mode(r % uint8(numModes))
			ms = append(ms, mm)
			j = Conv(j, mm)
		}
		if !Comp(m, j) {
			return true // nothing claimed
		}
		for _, mm := range ms {
			if !Comp(m, mm) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCoversAndStronger(t *testing.T) {
	cases := []struct {
		a, b     Mode
		covers   bool
		stronger bool
	}{
		{X, S, true, true},
		{SIX, IX, true, true},
		{SIX, S, true, true},
		{S, IX, false, false},
		{IX, S, false, false},
		{S, S, true, false},
		{NL, NL, true, false},
		{IS, NL, true, true},
		{X, X, true, false},
	}
	for _, c := range cases {
		if got := Covers(c.a, c.b); got != c.covers {
			t.Errorf("Covers(%v,%v) = %v, want %v", c.a, c.b, got, c.covers)
		}
		if got := Stronger(c.a, c.b); got != c.stronger {
			t.Errorf("Stronger(%v,%v) = %v, want %v", c.a, c.b, got, c.stronger)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, m := range Modes {
		got, err := Parse(m.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("Parse(%q) = %v, want %v", m.String(), got, m)
		}
	}
	if _, err := Parse("Z"); err == nil {
		t.Error("Parse(\"Z\") should fail")
	}
	if _, err := Parse("is"); err == nil {
		t.Error("Parse is case sensitive; Parse(\"is\") should fail")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on garbage should panic")
		}
	}()
	MustParse("garbage")
}

func TestStringInvalid(t *testing.T) {
	if got := Mode(250).String(); got != "Mode(250)" {
		t.Errorf("invalid mode String = %q", got)
	}
	if Mode(250).Valid() {
		t.Error("Mode(250) must not be Valid")
	}
}

func TestJoinVariadic(t *testing.T) {
	if Join() != NL {
		t.Error("Join() must be NL")
	}
	if Join(IS, IX) != IX {
		t.Error("Join(IS,IX) must be IX")
	}
	if Join(IS, IX, S) != SIX {
		t.Error("Join(IS,IX,S) must be SIX")
	}
	if Join(S, IS, S) != S {
		t.Error("Join(S,IS,S) must be S")
	}
}

// X is compatible only with NL; NL with everything.
func TestExtremes(t *testing.T) {
	for _, m := range Modes {
		if !Comp(NL, m) {
			t.Errorf("Comp(NL,%v) must hold", m)
		}
		if m != NL && Comp(X, m) {
			t.Errorf("Comp(X,%v) must not hold", m)
		}
	}
}

func TestRandomJoinIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Modes[rng.Intn(len(Modes))]
		b := Modes[rng.Intn(len(Modes))]
		j := Conv(a, b)
		if !Covers(j, a) || !Covers(j, b) {
			t.Fatalf("Conv(%v,%v)=%v is not an upper bound", a, b, j)
		}
	}
}

func BenchmarkComp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Comp(Modes[i%6], Modes[(i+3)%6])
	}
}

func BenchmarkConv(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Conv(Modes[i%6], Modes[(i+3)%6])
	}
}
