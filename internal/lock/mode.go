// Package lock defines the five lock modes of the multiple granularity
// locking (MGL) protocol used throughout the library, together with the
// compatibility matrix (Table 1 of the paper) and the conversion matrix
// (Table 2 of the paper).
//
// The modes are those of Gray's MGL protocol: IS (intention shared),
// IX (intention exclusive), S (shared), SIX (shared with intention
// exclusive) and X (exclusive), plus NL (no lock) as the identity.
package lock

import "fmt"

// Mode is one of the six lock modes of Section 2 of the paper.
// The zero value is NL (no lock).
type Mode uint8

// Lock modes in order of increasing exclusiveness along the conversion
// lattice NL < IS < {IX, S} < SIX < X. The numeric order of IX and S is
// arbitrary; use Conv to join modes, not <.
const (
	NL  Mode = iota // no lock
	IS              // intention shared
	IX              // intention exclusive
	SIX             // shared with intention exclusive
	S               // shared
	X               // exclusive

	numModes = 6
)

// Modes lists all six modes in the order Table 1 and Table 2 print them.
var Modes = [numModes]Mode{NL, IS, IX, SIX, S, X}

var modeNames = [numModes]string{"NL", "IS", "IX", "SIX", "S", "X"}

// String returns the paper's spelling of the mode ("NL", "IS", "IX",
// "SIX", "S" or "X").
func (m Mode) String() string {
	if !m.Valid() {
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
	return modeNames[m]
}

// Valid reports whether m is one of the six defined modes.
func (m Mode) Valid() bool { return m < numModes }

// Parse converts a mode name as printed in the paper (case sensitive:
// "NL", "IS", "IX", "SIX", "S", "X") back into a Mode.
func Parse(s string) (Mode, error) {
	for i, name := range modeNames {
		if s == name {
			return Mode(i), nil
		}
	}
	return NL, fmt.Errorf("lock: unknown lock mode %q", s)
}

// MustParse is Parse but panics on invalid input. It is intended for
// tests and package-level tables built from literals.
func MustParse(s string) Mode {
	m, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return m
}

// comp is Table 1 of the paper: comp[a][b] reports whether two lock
// requests for the same resource by two different transactions can be
// granted concurrently.
var comp = [numModes][numModes]bool{
	NL:  {NL: true, IS: true, IX: true, SIX: true, S: true, X: true},
	IS:  {NL: true, IS: true, IX: true, SIX: true, S: true, X: false},
	IX:  {NL: true, IS: true, IX: true, SIX: false, S: false, X: false},
	SIX: {NL: true, IS: true, IX: false, SIX: false, S: false, X: false},
	S:   {NL: true, IS: true, IX: false, SIX: false, S: true, X: false},
	X:   {NL: true, IS: false, IX: false, SIX: false, S: false, X: false},
}

// conv is Table 2 of the paper: conv[granted][requested] is the mode a
// transaction eventually wants to hold when it already holds the row
// mode and re-requests the column mode. It is the join (least upper
// bound) in the mode lattice.
var conv = [numModes][numModes]Mode{
	NL:  {NL: NL, IS: IS, IX: IX, SIX: SIX, S: S, X: X},
	IS:  {NL: IS, IS: IS, IX: IX, SIX: SIX, S: S, X: X},
	IX:  {NL: IX, IS: IX, IX: IX, SIX: SIX, S: SIX, X: X},
	SIX: {NL: SIX, IS: SIX, IX: SIX, SIX: SIX, S: SIX, X: X},
	S:   {NL: S, IS: S, IX: SIX, SIX: SIX, S: S, X: X},
	X:   {NL: X, IS: X, IX: X, SIX: X, S: X, X: X},
}

// Comp reports whether lock modes a and b are compatible, i.e. whether
// they can be held concurrently on the same resource by two different
// transactions (Table 1). Comp is symmetric and Comp(NL, m) is true for
// every m.
func Comp(a, b Mode) bool { return comp[a][b] }

// Conv returns the mode resulting from converting a lock granted in mode
// granted to additionally cover mode requested (Table 2). Conv is
// commutative, associative and idempotent with identity NL, so it can be
// folded over any number of modes in any order.
func Conv(granted, requested Mode) Mode { return conv[granted][requested] }

// Join folds Conv over any number of modes. Join() is NL.
func Join(ms ...Mode) Mode {
	j := NL
	for _, m := range ms {
		j = Conv(j, m)
	}
	return j
}

// Covers reports whether holding mode a makes a separate request for
// mode b redundant, i.e. Conv(a, b) == a.
func Covers(a, b Mode) bool { return conv[a][b] == a }

// Stronger reports whether a is strictly more exclusive than b in the
// conversion lattice: a covers b and a != b.
func Stronger(a, b Mode) bool { return a != b && Covers(a, b) }
