// Package timeout implements the graph-free deadlock "detector": any
// transaction blocked longer than a limit is presumed deadlocked and
// aborted. It never misses a deadlock but aborts innocents whenever a
// wait is merely long, and its detection delay is the limit itself —
// both effects the simulator experiments quantify against the H/W-TWBG
// detector.
package timeout

import (
	"sort"

	"hwtwbg/internal/table"
)

// Detector aborts transactions blocked for more than Limit logical time
// units, checked on every tick.
type Detector struct {
	tb *table.Table
	// Limit is the wait budget; a blocked transaction older than this is
	// aborted on the next tick.
	Limit int64

	since map[table.TxnID]int64
}

// New returns a detector over tb with the given wait limit.
func New(tb *table.Table, limit int64) *Detector {
	return &Detector{tb: tb, Limit: limit, since: make(map[table.TxnID]int64)}
}

// Name identifies the strategy in reports.
func (d *Detector) Name() string { return "timeout" }

// OnBlocked stamps the block time. It never aborts immediately.
func (d *Detector) OnBlocked(txn table.TxnID, now int64) []table.TxnID {
	d.since[txn] = now
	return nil
}

// Forget clears the stamp when a transaction is granted or finished.
func (d *Detector) Forget(txn table.TxnID) { delete(d.since, txn) }

// OnTick aborts every transaction whose wait exceeded the limit.
func (d *Detector) OnTick(now int64) []table.TxnID {
	var victims []table.TxnID
	for txn, t0 := range d.since {
		if now-t0 > d.Limit && d.tb.Blocked(txn) {
			victims = append(victims, txn)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	for _, v := range victims {
		d.tb.Abort(v)
		delete(d.since, v)
	}
	return victims
}
