package timeout

import (
	"testing"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

func TestAbortsOnlyAfterLimit(t *testing.T) {
	tb := table.New()
	if _, err := tb.Request(1, "A", lock.X); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Request(2, "A", lock.S); err != nil {
		t.Fatal(err)
	}
	d := New(tb, 5)
	if d.Name() != "timeout" {
		t.Errorf("Name = %q", d.Name())
	}
	if v := d.OnBlocked(2, 10); v != nil {
		t.Fatal("OnBlocked must never abort")
	}
	if v := d.OnTick(12); len(v) != 0 {
		t.Fatalf("victims at t=12: %v (limit not exceeded)", v)
	}
	v := d.OnTick(16)
	if len(v) != 1 || v[0] != 2 {
		t.Fatalf("victims at t=16: %v", v)
	}
	if tb.Blocked(2) {
		t.Fatal("T2 must be gone")
	}
	// Stamp cleared: another tick does nothing.
	if v := d.OnTick(30); len(v) != 0 {
		t.Fatalf("victims = %v", v)
	}
}

func TestForgetClearsStamp(t *testing.T) {
	tb := table.New()
	if _, err := tb.Request(1, "A", lock.X); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Request(2, "A", lock.S); err != nil {
		t.Fatal(err)
	}
	d := New(tb, 5)
	d.OnBlocked(2, 0)
	// T2 gets granted (T1 commits): the simulator calls Forget.
	if _, err := tb.Release(1); err != nil {
		t.Fatal(err)
	}
	d.Forget(2)
	if v := d.OnTick(100); len(v) != 0 {
		t.Fatalf("victims = %v after Forget", v)
	}
}

func TestStaleStampOnGrantedTxnIgnored(t *testing.T) {
	tb := table.New()
	if _, err := tb.Request(1, "A", lock.X); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Request(2, "A", lock.S); err != nil {
		t.Fatal(err)
	}
	d := New(tb, 5)
	d.OnBlocked(2, 0)
	if _, err := tb.Release(1); err != nil {
		t.Fatal(err)
	}
	// Even without Forget, a granted transaction is not aborted (the
	// tick re-checks Blocked).
	if v := d.OnTick(100); len(v) != 0 {
		t.Fatalf("victims = %v", v)
	}
}

func TestMultipleVictimsSorted(t *testing.T) {
	tb := table.New()
	if _, err := tb.Request(1, "A", lock.X); err != nil {
		t.Fatal(err)
	}
	for _, id := range []table.TxnID{5, 3, 4} {
		if _, err := tb.Request(id, "A", lock.X); err != nil {
			t.Fatal(err)
		}
		d := id // silence unused in loop clarity
		_ = d
	}
	d := New(tb, 1)
	d.OnBlocked(5, 0)
	d.OnBlocked(3, 0)
	d.OnBlocked(4, 0)
	v := d.OnTick(10)
	if len(v) != 3 || v[0] != 3 || v[1] != 4 || v[2] != 5 {
		t.Fatalf("victims = %v, want sorted [3 4 5]", v)
	}
}
