package baseline

import (
	"fmt"
	"math/rand"
	"testing"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

func req(t *testing.T, tb *table.Table, txn table.TxnID, rid table.ResourceID, m lock.Mode) bool {
	t.Helper()
	g, err := tb.Request(txn, rid, m)
	if err != nil {
		t.Fatalf("Request(%v,%s,%v): %v", txn, rid, m, err)
	}
	return g
}

func TestBlockersQueueWaiter(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "R", lock.S)  // compatible holder
	req(t, tb, 2, "R", lock.S)  // compatible holder
	req(t, tb, 3, "R", lock.IS) // compatible holder
	req(t, tb, 4, "R", lock.X)  // blocked by everyone
	req(t, tb, 5, "R", lock.IS) // blocked only by FIFO position behind T4
	if got := Blockers(tb, 4); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Blockers(T4) = %v", got)
	}
	// T5's IS is compatible with all holders: its only blocker is its
	// queue predecessor T4.
	if got := Blockers(tb, 5); len(got) != 1 || got[0] != 4 {
		t.Fatalf("Blockers(T5) = %v", got)
	}
}

func TestBlockersUpgrader(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "R", lock.IS)
	req(t, tb, 2, "R", lock.IX)
	req(t, tb, 3, "R", lock.IS)
	if g := req(t, tb, 1, "R", lock.S); g {
		t.Fatal("upgrade should block")
	}
	// Conv(IS,S)=S conflicts with T2's IX but not T3's IS.
	if got := Blockers(tb, 1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Blockers(T1) = %v", got)
	}
}

func TestBlockersPendingConversionBlocksWaiter(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "R", lock.IS)
	req(t, tb, 2, "R", lock.IS)
	if g := req(t, tb, 1, "R", lock.X); g { // pending conversion, bm=X
		t.Fatal("upgrade should block")
	}
	if g := req(t, tb, 3, "R", lock.IS); g { // queued: tm=X
		t.Fatal("T3 should queue behind the pending X")
	}
	// T3 conflicts with T1's blocked mode (X) even though T1's granted
	// mode (IS) is compatible.
	got := Blockers(tb, 3)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Blockers(T3) = %v", got)
	}
}

func TestBlockersNotBlocked(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "R", lock.S)
	if got := Blockers(tb, 1); got != nil {
		t.Fatalf("Blockers of runnable txn = %v", got)
	}
	if got := Blockers(tb, 99); got != nil {
		t.Fatalf("Blockers of unknown txn = %v", got)
	}
}

func TestCycleHelpers(t *testing.T) {
	g := map[table.TxnID][]table.TxnID{
		1: {2},
		2: {3},
		3: {1},
		4: {1},
	}
	cyc := CycleFrom(g, 1)
	if len(cyc) != 3 {
		t.Fatalf("CycleFrom = %v", cyc)
	}
	if CycleFrom(g, 4) != nil {
		t.Fatal("T4 is not on a cycle")
	}
	if AnyCycle(g) == nil {
		t.Fatal("AnyCycle missed the cycle")
	}
	if AnyCycle(map[table.TxnID][]table.TxnID{1: {2}, 2: nil}) != nil {
		t.Fatal("AnyCycle found a cycle in a DAG")
	}
}

func TestMinCost(t *testing.T) {
	cost := func(id table.TxnID) float64 { return float64(10 - id) }
	if got := MinCost([]table.TxnID{1, 2, 3}, cost); got != 3 {
		t.Fatalf("MinCost = %v", got)
	}
	// Ties break to the smallest id.
	if got := MinCost([]table.TxnID{5, 2, 7}, ConstCost); got != 2 {
		t.Fatalf("MinCost tie = %v", got)
	}
}

// TestWaitGraphMatchesOracle: on random states the full TWFG has a cycle
// exactly when the system is deadlocked — Blockers is sound and complete
// for the FIFO-with-conversions scheduler.
func TestWaitGraphMatchesOracle(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := table.New()
		for step := 0; step < 900; step++ {
			txn := table.TxnID(1 + rng.Intn(10))
			switch op := rng.Intn(12); {
			case op < 8:
				if tb.Blocked(txn) {
					continue
				}
				rid := table.ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(5)))
				if _, err := tb.Request(txn, rid, modes[rng.Intn(len(modes))]); err != nil {
					t.Fatal(err)
				}
			case op < 10:
				if tb.Blocked(txn) {
					continue
				}
				if _, err := tb.Release(txn); err != nil {
					t.Fatal(err)
				}
			default:
				tb.Abort(txn)
			}
			hasCycle := AnyCycle(WaitGraph(tb)) != nil
			dead := twbg.Deadlocked(tb)
			if hasCycle != dead {
				t.Fatalf("seed %d step %d: TWFG cycle=%v oracle=%v\n%s", seed, step, hasCycle, dead, tb)
			}
			if dead {
				set := twbg.DeadlockSet(tb)
				tb.Abort(set[rng.Intn(len(set))])
			}
		}
	}
}
