package agrawal

import (
	"testing"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

func req(t *testing.T, tb *table.Table, txn table.TxnID, rid table.ResourceID, m lock.Mode) bool {
	t.Helper()
	g, err := tb.Request(txn, rid, m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDetectsSimpleCycle(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 2, "B", lock.X)
	req(t, tb, 1, "B", lock.X)
	req(t, tb, 2, "A", lock.X)
	d := New(tb)
	v := d.OnTick(0)
	if len(v) != 1 {
		t.Fatalf("victims = %v", v)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
	if d.Name() != "agrawal-single-edge" {
		t.Errorf("Name = %q", d.Name())
	}
	if got := d.OnBlocked(1, 0); got != nil {
		t.Fatal("OnBlocked must be a no-op")
	}
	d.Forget(1) // no-op
}

// TestDelayedDetection builds the paper's Section 1 critique: T3 is
// blocked by two holders T1 and T2; the single representative edge
// points at T1, but the real cycle runs through T2, so the deadlock is
// invisible this period. Once T1 commits, the edge rotates onto T2 and
// the next period catches it (experiment E9's unit-level core).
func TestDelayedDetection(t *testing.T) {
	tb := table.New()
	req(t, tb, 3, "R2", lock.X) // T3 holds R2
	req(t, tb, 1, "R1", lock.S)
	req(t, tb, 2, "R1", lock.S)
	if g := req(t, tb, 3, "R1", lock.X); g { // blocked by T1 and T2
		t.Fatal("T3 should block")
	}
	if g := req(t, tb, 2, "R2", lock.S); g { // blocked by T3: cycle T3<->T2
		t.Fatal("T2 should block")
	}
	if !twbg.Deadlocked(tb) {
		t.Fatal("the system IS deadlocked")
	}
	d := New(tb)
	if v := d.OnTick(0); len(v) != 0 {
		t.Fatalf("single-edge graph should miss this deadlock, aborted %v", v)
	}
	// T1 commits; the representative edge of T3 now points at T2.
	if _, err := tb.Release(1); err != nil {
		t.Fatal(err)
	}
	v := d.OnTick(1)
	if len(v) != 1 {
		t.Fatalf("second period victims = %v", v)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
}

func TestVictimByCost(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 2, "B", lock.X)
	req(t, tb, 1, "B", lock.X)
	req(t, tb, 2, "A", lock.X)
	d := New(tb)
	d.Cost = func(id table.TxnID) float64 { return float64(10 - id) } // T2 cheaper
	v := d.OnTick(0)
	if len(v) != 1 || v[0] != 2 {
		t.Fatalf("victims = %v, want [T2]", v)
	}
}

func TestMultipleCyclesOneTick(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 2, "B", lock.X)
	req(t, tb, 3, "C", lock.X)
	req(t, tb, 4, "D", lock.X)
	req(t, tb, 1, "B", lock.X)
	req(t, tb, 2, "A", lock.X)
	req(t, tb, 3, "D", lock.X)
	req(t, tb, 4, "C", lock.X)
	d := New(tb)
	v := d.OnTick(0)
	if len(v) != 2 {
		t.Fatalf("victims = %v", v)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlocks remain")
	}
}

func TestFindCycleFunctionalGraph(t *testing.T) {
	// Chain into a ring: 1->2->3->4->2.
	next := map[table.TxnID]table.TxnID{1: 2, 2: 3, 3: 4, 4: 2}
	cyc := findCycle(next)
	if len(cyc) != 3 {
		t.Fatalf("cycle = %v, want the 3-ring", cyc)
	}
	if findCycle(map[table.TxnID]table.TxnID{1: 2, 2: 3}) != nil {
		t.Fatal("no cycle in a chain")
	}
	if findCycle(nil) != nil {
		t.Fatal("no cycle in an empty graph")
	}
}
