// Package agrawal re-implements the periodic deadlock detector of
// Agrawal, Carey and DeWitt ("Deadlock Detection is Cheap", SIGMOD
// Record 1983), generalized from S/X to the five MGL modes: each blocked
// transaction carries exactly ONE wait-for edge, to a single
// representative blocker, so the graph is a functional graph and cycle
// detection is O(n) pointer chasing.
//
// The single-edge representation is the scheme's selling point and its
// weakness: when a transaction is blocked by several others, only one is
// recorded, so a deadlock whose cycle runs through a non-representative
// blocker is invisible until enough other transactions finish for the
// representative edge to rotate onto the cycle. The paper's Section 1
// critique — "detection of some deadlocks can be delayed and some
// transactions may hold resources or wait for other transactions
// unnecessarily" — is exactly what the sim experiments measure.
package agrawal

import (
	"sort"

	"hwtwbg/internal/baseline"
	"hwtwbg/internal/table"
)

// Detector is the single-edge periodic detector.
type Detector struct {
	tb *table.Table
	// Cost prices victims; nil means uniform.
	Cost func(table.TxnID) float64
}

// New returns a detector over tb.
func New(tb *table.Table) *Detector { return &Detector{tb: tb} }

// Name identifies the strategy in reports.
func (d *Detector) Name() string { return "agrawal-single-edge" }

// OnBlocked is a no-op: this is a periodic scheme.
func (d *Detector) OnBlocked(table.TxnID, int64) []table.TxnID { return nil }

// Forget is a no-op: the graph is rebuilt every period.
func (d *Detector) Forget(table.TxnID) {}

// OnTick builds the single-edge graph and resolves every cycle found in
// it. With out-degree at most one the graph is functional: every cycle
// is found by chasing successors with a three-color marking, in O(n).
func (d *Detector) OnTick(now int64) []table.TxnID {
	cost := d.Cost
	if cost == nil {
		cost = baseline.ConstCost
	}
	var victims []table.TxnID
	for {
		next := d.singleEdges()
		cyc := findCycle(next)
		if cyc == nil {
			return victims
		}
		v := baseline.MinCost(cyc, cost)
		d.tb.Abort(v)
		victims = append(victims, v)
	}
}

// singleEdges picks the representative blocker of every blocked
// transaction: the smallest-id blocker, matching the deterministic "one
// of the readers is selected" of the original.
func (d *Detector) singleEdges() map[table.TxnID]table.TxnID {
	next := make(map[table.TxnID]table.TxnID)
	for _, id := range d.tb.Txns() {
		if !d.tb.Blocked(id) {
			continue
		}
		if bs := baseline.Blockers(d.tb, id); len(bs) > 0 {
			next[id] = bs[0]
		}
	}
	return next
}

// findCycle returns one cycle of the functional graph, or nil.
func findCycle(next map[table.TxnID]table.TxnID) []table.TxnID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[table.TxnID]int, len(next))
	starts := make([]table.TxnID, 0, len(next))
	for v := range next {
		starts = append(starts, v)
	}
	// Deterministic order.
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, s := range starts {
		if color[s] != white {
			continue
		}
		var chain []table.TxnID
		v := s
		for {
			color[v] = gray
			chain = append(chain, v)
			w, ok := next[v]
			if !ok || color[w] == black {
				break
			}
			if color[w] == gray {
				// Cycle: the suffix of chain starting at w.
				for i, u := range chain {
					if u == w {
						return append([]table.TxnID(nil), chain[i:]...)
					}
				}
			}
			v = w
		}
		for _, u := range chain {
			color[u] = black
		}
	}
	return nil
}
