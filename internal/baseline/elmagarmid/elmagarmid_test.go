package elmagarmid

import (
	"testing"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

func req(t *testing.T, tb *table.Table, txn table.TxnID, rid table.ResourceID, m lock.Mode) {
	t.Helper()
	if _, err := tb.Request(txn, rid, m); err != nil {
		t.Fatal(err)
	}
}

func TestAbortsTheRequester(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 2, "B", lock.X)
	req(t, tb, 1, "B", lock.X)
	req(t, tb, 2, "A", lock.X) // T2's request closes the cycle
	d := New(tb)
	v := d.OnBlocked(2, 0)
	// The current blocker (T2) is always the victim, even though a cost
	// model might have preferred T1.
	if len(v) != 1 || v[0] != 2 {
		t.Fatalf("victims = %v, want [T2]", v)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
	if tb.Blocked(1) {
		t.Fatal("T1 must have been granted B")
	}
	if d.Name() != "elmagarmid-abort-requester" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestNoCycleNoAbort(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 2, "A", lock.S)
	d := New(tb)
	if v := d.OnBlocked(2, 0); len(v) != 0 {
		t.Fatalf("victims = %v without a deadlock", v)
	}
	if v := d.OnTick(0); v != nil {
		t.Fatalf("OnTick acted: %v", v)
	}
	d.Forget(2) // no-op
}

// TestAlwaysRequesterEvenWhenExpensive quantifies the "far from optimal"
// critique: the requester may be the one holding the most locks.
func TestAlwaysRequesterEvenWhenExpensive(t *testing.T) {
	tb := table.New()
	// T2 holds many locks; T1 holds one.
	for _, r := range []table.ResourceID{"B", "C", "D", "E", "F"} {
		req(t, tb, 2, r, lock.X)
	}
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 1, "B", lock.X) // T1 waits for T2
	req(t, tb, 2, "A", lock.X) // T2's request closes the cycle: T2 dies
	d := New(tb)
	v := d.OnBlocked(2, 0)
	if len(v) != 1 || v[0] != 2 {
		t.Fatalf("victims = %v, want the expensive requester T2", v)
	}
}
