// Package elmagarmid re-implements the continuous detector of
// Elmagarmid's 1985 dissertation as the paper's Section 1 describes it:
// T-table/R-table bookkeeping (our lock table plays both roles), a cycle
// check on every block, and a resolution rule that "always aborts the
// current blocker whenever there is a deadlock" — the transaction whose
// request closed the cycle is the victim, regardless of cost.
//
// The rule is simple but, as the paper notes, "far from being optimal":
// the current blocker may be the most expensive transaction in the
// cycle. The simulator experiments measure the wasted work against the
// H/W-TWBG detector's min-cost TDR selection.
package elmagarmid

import (
	"hwtwbg/internal/baseline"
	"hwtwbg/internal/table"
)

// Detector is the continuous abort-the-requester detector.
type Detector struct {
	tb *table.Table
}

// New returns a detector over tb.
func New(tb *table.Table) *Detector { return &Detector{tb: tb} }

// Name identifies the strategy in reports.
func (d *Detector) Name() string { return "elmagarmid-abort-requester" }

// OnBlocked checks for a cycle through the newly blocked transaction and
// aborts that transaction if one exists.
func (d *Detector) OnBlocked(txn table.TxnID, now int64) []table.TxnID {
	g := baseline.WaitGraph(d.tb)
	if baseline.CycleFrom(g, txn) == nil {
		return nil
	}
	d.tb.Abort(txn)
	return []table.TxnID{txn}
}

// OnTick is a no-op: the scheme is purely continuous.
func (d *Detector) OnTick(int64) []table.TxnID { return nil }

// Forget is a no-op: no per-transaction state is kept.
func (d *Detector) Forget(table.TxnID) {}
