package wfg

import (
	"fmt"
	"math/rand"
	"testing"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

func req(t *testing.T, tb *table.Table, txn table.TxnID, rid table.ResourceID, m lock.Mode) bool {
	t.Helper()
	g, err := tb.Request(txn, rid, m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func crossDeadlock(t *testing.T) *table.Table {
	t.Helper()
	tb := table.New()
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 2, "B", lock.X)
	req(t, tb, 1, "B", lock.X)
	return tb
}

func TestContinuousDetectsOnBlock(t *testing.T) {
	tb := crossDeadlock(t)
	d := New(tb)
	d.Cost = func(id table.TxnID) float64 { return float64(id) } // T1 cheaper
	// No deadlock yet.
	if v := d.OnBlocked(1, 0); len(v) != 0 {
		t.Fatalf("victims = %v before any cycle", v)
	}
	req(t, tb, 2, "A", lock.X) // closes the cycle
	v := d.OnBlocked(2, 0)
	if len(v) != 1 || v[0] != 1 {
		t.Fatalf("victims = %v, want [T1] (min cost)", v)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
	if tb.Blocked(2) {
		t.Fatal("T2 must hold both locks now")
	}
	if d.Name() != "wfg-continuous" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestContinuousAbortsRequesterWhenCheapest(t *testing.T) {
	tb := crossDeadlock(t)
	req(t, tb, 2, "A", lock.X)
	d := New(tb) // uniform cost: tie goes to the smallest id = T1
	v := d.OnBlocked(2, 0)
	if len(v) != 1 || v[0] != 1 {
		t.Fatalf("victims = %v", v)
	}
}

func TestPeriodicMode(t *testing.T) {
	tb := crossDeadlock(t)
	req(t, tb, 2, "A", lock.X)
	d := New(tb)
	d.Periodic = true
	if d.Name() != "wfg-periodic" {
		t.Errorf("Name = %q", d.Name())
	}
	if v := d.OnBlocked(2, 0); v != nil {
		t.Fatalf("periodic OnBlocked acted: %v", v)
	}
	v := d.OnTick(0)
	if len(v) != 1 {
		t.Fatalf("victims = %v", v)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
	// Clean tick does nothing.
	if v := d.OnTick(1); len(v) != 0 {
		t.Fatalf("second tick acted: %v", v)
	}
	d2 := New(tb)
	if v := d2.OnTick(0); v != nil {
		t.Fatalf("continuous OnTick acted: %v", v)
	}
	d.Forget(1) // no-op, must not panic
}

// TestPeriodicResolvesEverything: multiple independent deadlocks in one
// tick.
func TestPeriodicResolvesMultipleCycles(t *testing.T) {
	tb := table.New()
	// Cycle 1: T1/T2 on A,B. Cycle 2: T3/T4 on C,D.
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 2, "B", lock.X)
	req(t, tb, 3, "C", lock.X)
	req(t, tb, 4, "D", lock.X)
	req(t, tb, 1, "B", lock.X)
	req(t, tb, 2, "A", lock.X)
	req(t, tb, 3, "D", lock.X)
	req(t, tb, 4, "C", lock.X)
	d := New(tb)
	d.Periodic = true
	v := d.OnTick(0)
	if len(v) != 2 {
		t.Fatalf("victims = %v, want two", v)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
}

// TestContinuousNeverLeavesDeadlock: random workload with OnBlocked after
// every block keeps the table deadlock-free at all times.
func TestContinuousNeverLeavesDeadlock(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := table.New()
		d := New(tb)
		for step := 0; step < 800; step++ {
			txn := table.TxnID(1 + rng.Intn(10))
			if tb.Blocked(txn) {
				continue
			}
			if rng.Intn(10) < 8 {
				rid := table.ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(5)))
				g, err := tb.Request(txn, rid, modes[rng.Intn(len(modes))])
				if err != nil {
					t.Fatal(err)
				}
				if !g {
					d.OnBlocked(txn, int64(step))
				}
			} else if _, err := tb.Release(txn); err != nil {
				t.Fatal(err)
			}
			if twbg.Deadlocked(tb) {
				t.Fatalf("seed %d step %d: deadlock survived continuous detection:\n%s", seed, step, tb)
			}
		}
	}
}
