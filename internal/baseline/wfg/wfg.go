// Package wfg implements the conventional continuous deadlock detector:
// on every block, build the full transaction wait-for graph and search
// for a cycle through the newly blocked transaction; resolve by aborting
// the minimum-cost member of the cycle.
//
// This is the "textbook" scheme (Bernstein/Hadzilacos/Goodman ch. 3)
// generalized to the five MGL lock modes. It detects exactly the same
// deadlocks as the H/W-TWBG but can only resolve by abort — it has no
// equivalent of TDR-2 — and its graph carries an edge per
// waiter-blocker pair rather than the H/W-TWBG's chains.
package wfg

import (
	"hwtwbg/internal/baseline"
	"hwtwbg/internal/table"
)

// Detector is the continuous full-WFG detector. It is stateless between
// activations: the graph is rebuilt from the lock table each time.
type Detector struct {
	tb *table.Table
	// Cost prices victims; nil means uniform.
	Cost func(table.TxnID) float64
	// Periodic switches the detector from continuous (resolve on every
	// block) to periodic (resolve on ticks), for like-for-like
	// comparisons with the periodic algorithms.
	Periodic bool
}

// New returns a detector over tb.
func New(tb *table.Table) *Detector { return &Detector{tb: tb} }

// Name identifies the strategy in reports.
func (d *Detector) Name() string {
	if d.Periodic {
		return "wfg-periodic"
	}
	return "wfg-continuous"
}

func (d *Detector) cost() func(table.TxnID) float64 {
	if d.Cost != nil {
		return d.Cost
	}
	return baseline.ConstCost
}

// OnBlocked resolves any deadlock the new block created (continuous
// mode). It returns the victims aborted.
func (d *Detector) OnBlocked(txn table.TxnID, now int64) []table.TxnID {
	if d.Periodic {
		return nil
	}
	var victims []table.TxnID
	for {
		g := baseline.WaitGraph(d.tb)
		cyc := baseline.CycleFrom(g, txn)
		if cyc == nil {
			return victims
		}
		v := baseline.MinCost(cyc, d.cost())
		d.tb.Abort(v)
		victims = append(victims, v)
		if v == txn {
			return victims
		}
	}
}

// OnTick resolves every deadlock present (periodic mode).
func (d *Detector) OnTick(now int64) []table.TxnID {
	if !d.Periodic {
		return nil
	}
	var victims []table.TxnID
	for {
		g := baseline.WaitGraph(d.tb)
		cyc := baseline.AnyCycle(g)
		if cyc == nil {
			return victims
		}
		v := baseline.MinCost(cyc, d.cost())
		d.tb.Abort(v)
		victims = append(victims, v)
	}
}

// Forget is a no-op: the detector keeps no per-transaction state.
func (d *Detector) Forget(table.TxnID) {}
