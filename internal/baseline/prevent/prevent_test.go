package prevent

import (
	"fmt"
	"math/rand"
	"testing"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

func req(t *testing.T, tb *table.Table, txn table.TxnID, rid table.ResourceID, m lock.Mode) bool {
	t.Helper()
	g, err := tb.Request(txn, rid, m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// identity priority: smaller id = older transaction.
func byID(id table.TxnID) int64 { return int64(id) }

func TestWaitDieYoungerRequesterDies(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "A", lock.X) // T1 old
	req(t, tb, 2, "A", lock.X) // T2 young, blocks on old T1
	p := New(tb, WaitDie, byID)
	if p.Name() != "wait-die" {
		t.Errorf("Name = %q", p.Name())
	}
	v := p.OnBlocked(2, 0)
	if len(v) != 1 || v[0] != 2 {
		t.Fatalf("victims = %v, want the young requester", v)
	}
	if tb.Blocked(2) {
		t.Fatal("T2 must be gone")
	}
}

func TestWaitDieOlderRequesterWaits(t *testing.T) {
	tb := table.New()
	req(t, tb, 2, "A", lock.X) // T2 young holds
	req(t, tb, 1, "A", lock.X) // T1 old requests: waits
	p := New(tb, WaitDie, byID)
	if v := p.OnBlocked(1, 0); len(v) != 0 {
		t.Fatalf("victims = %v, old requester must wait", v)
	}
	if !tb.Blocked(1) {
		t.Fatal("T1 must still be waiting")
	}
}

func TestWoundWaitOlderRequesterWounds(t *testing.T) {
	tb := table.New()
	req(t, tb, 2, "A", lock.X) // T2 young holds
	req(t, tb, 1, "A", lock.X) // T1 old requests: wounds T2
	p := New(tb, WoundWait, byID)
	if p.Name() != "wound-wait" {
		t.Errorf("Name = %q", p.Name())
	}
	v := p.OnBlocked(1, 0)
	if len(v) != 1 || v[0] != 2 {
		t.Fatalf("victims = %v, want the young holder wounded", v)
	}
	if tb.Blocked(1) {
		t.Fatal("T1 must have been granted after the wound")
	}
}

func TestWoundWaitYoungerRequesterWaits(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 2, "A", lock.X)
	p := New(tb, WoundWait, byID)
	if v := p.OnBlocked(2, 0); len(v) != 0 {
		t.Fatalf("victims = %v, young requester must wait", v)
	}
	if !tb.Blocked(2) {
		t.Fatal("T2 must still be waiting")
	}
}

func TestWoundWaitWoundsOnlyYoungerBlockers(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "A", lock.S) // older than requester: spared
	req(t, tb, 3, "A", lock.S) // younger: wounded
	req(t, tb, 2, "A", lock.X) // requester
	p := New(tb, WoundWait, byID)
	v := p.OnBlocked(2, 0)
	if len(v) != 1 || v[0] != 3 {
		t.Fatalf("victims = %v, want only T3", v)
	}
	// T2 still waits for the older T1.
	if !tb.Blocked(2) {
		t.Fatal("T2 must wait for T1")
	}
}

func TestOnBlockedNotBlockedNoop(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "A", lock.S)
	p := New(tb, WaitDie, byID)
	if v := p.OnBlocked(1, 0); v != nil {
		t.Fatalf("victims = %v for a runnable txn", v)
	}
	p.Forget(1)
}

// TestConversionHoleRepairedBySweep reproduces the documented decay of
// the prevention invariant through a granted conversion — a wait edge
// from a younger to an older transaction appears without any block
// event, letting a genuine deadlock form under wait-die — and checks
// that the OnTick sweep repairs it.
func TestConversionHoleRepairedBySweep(t *testing.T) {
	tb := table.New()
	p := New(tb, WaitDie, byID)
	req(t, tb, 2, "B", lock.X) // T2 (young) holds B
	req(t, tb, 1, "R", lock.IS)
	req(t, tb, 3, "R", lock.S) // T3 (youngest) holds S on R
	// T2 requests IX on R: its only blocker is the younger T3, so
	// wait-die admits the wait.
	if g := req(t, tb, 2, "R", lock.IX); g {
		t.Fatal("T2 should block")
	}
	if v := p.OnBlocked(2, 0); len(v) != 0 {
		t.Fatalf("admission should be allowed, got victims %v", v)
	}
	// T1 (oldest) upgrades IS -> S: granted immediately (compatible with
	// T3's S) — and from this instant the OLDER T1 blocks the YOUNGER
	// waiting T2, an edge wait-die would never have admitted.
	if !req(t, tb, 1, "R", lock.S) {
		t.Fatal("T1's upgrade should be granted")
	}
	// T1 now requests B, held by T2: blockers of T1 = {T2}, younger, so
	// wait-die admits this wait too. The cycle T1 -> T2 -> T1 is closed
	// and every admission decision was individually legal.
	if g := req(t, tb, 1, "B", lock.X); g {
		t.Fatal("T1 should block on B")
	}
	if v := p.OnBlocked(1, 0); len(v) != 0 {
		t.Fatalf("T1's wait is legal, got victims %v", v)
	}
	if !twbg.Deadlocked(tb) {
		t.Fatalf("expected the conversion-hole deadlock:\n%s", tb)
	}
	// The sweep aborts T2 (a blocked transaction with an older blocker).
	v := p.OnTick(1)
	if len(v) != 1 || v[0] != 2 {
		t.Fatalf("sweep victims = %v, want [T2]", v)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock survived the sweep")
	}
	if tb.Blocked(1) {
		t.Fatal("T1 must hold B now")
	}
}

// TestPreventionKeepsSystemDeadlockFree is the property that matters:
// under random workloads (including conversions) with the rule applied
// on every block and the sweep every period, no deadlock survives a
// tick boundary.
func TestPreventionKeepsSystemDeadlockFree(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	for _, scheme := range []Scheme{WaitDie, WoundWait} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			tb := table.New()
			p := New(tb, scheme, byID)
			for step := 0; step < 700; step++ {
				txn := table.TxnID(1 + rng.Intn(10))
				if tb.Blocked(txn) {
					continue
				}
				switch rng.Intn(10) {
				case 8:
					if _, err := tb.Release(txn); err != nil {
						t.Fatal(err)
					}
				case 9:
					tb.Abort(txn)
				default:
					rid := table.ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(5)))
					g, err := tb.Request(txn, rid, modes[rng.Intn(len(modes))])
					if err != nil {
						t.Fatal(err)
					}
					if !g {
						p.OnBlocked(txn, int64(step))
					}
				}
				p.OnTick(int64(step)) // the invariant-restoring sweep
				if twbg.Deadlocked(tb) {
					t.Fatalf("%s seed %d step %d: deadlock survived:\n%s",
						p.Name(), seed, step, tb)
				}
			}
		}
	}
}
