// Package prevent implements the two classic timestamp-based deadlock
// PREVENTION schemes of Rosenkrantz, Stearns and Lewis — wait-die and
// wound-wait — which the performance study the paper builds on
// (Agrawal/Carey/McVoy, IEEE TSE 1987, reference [2]) uses as the main
// alternatives to detection. They never let a deadlock form, at the
// price of aborting transactions that were not actually deadlocked:
//
//   - wait-die (non-preemptive): a requester may wait only for younger
//     transactions; if any transaction blocking it is older, the
//     requester dies (aborts) immediately.
//   - wound-wait (preemptive): an older requester wounds (aborts) every
//     younger transaction blocking it; a younger requester waits.
//
// Age is the Priority timestamp, inherited across restarts so that a
// repeatedly killed transaction eventually becomes the oldest and wins —
// the property that makes both schemes livelock-free.
//
// The simulator's comparison tables pit these against the H/W-TWBG
// detector to reproduce the detection-vs-prevention trade-off: zero
// detection cost and zero deadlock persistence versus spurious aborts
// on conflicts that would have resolved themselves.
package prevent

import (
	"hwtwbg/internal/baseline"
	"hwtwbg/internal/table"
)

// Scheme selects the prevention rule.
type Scheme uint8

const (
	// WaitDie is the non-preemptive rule: younger requesters die.
	WaitDie Scheme = iota
	// WoundWait is the preemptive rule: older requesters kill younger
	// blockers.
	WoundWait
)

// Preventer applies a prevention scheme on every block. It satisfies
// the simulator's Resolver interface.
type Preventer struct {
	tb     *table.Table
	scheme Scheme
	// Priority maps a transaction to its timestamp (smaller = older).
	// Required; the simulator supplies Manager.PriorityOf.
	Priority func(table.TxnID) int64
}

// New returns a preventer over tb with the given scheme.
func New(tb *table.Table, scheme Scheme, priority func(table.TxnID) int64) *Preventer {
	return &Preventer{tb: tb, scheme: scheme, Priority: priority}
}

// Name identifies the strategy in reports.
func (p *Preventer) Name() string {
	if p.scheme == WaitDie {
		return "wait-die"
	}
	return "wound-wait"
}

// OnBlocked applies the prevention rule to the transaction that just
// blocked, returning whatever it aborted (the requester itself under
// wait-die; younger blockers under wound-wait).
func (p *Preventer) OnBlocked(txn table.TxnID, now int64) []table.TxnID {
	blockers := baseline.Blockers(p.tb, txn)
	if len(blockers) == 0 {
		return nil
	}
	myAge := p.Priority(txn)
	switch p.scheme {
	case WaitDie:
		// Wait only if strictly older than every blocker.
		for _, b := range blockers {
			if p.Priority(b) < myAge {
				p.tb.Abort(txn)
				return []table.TxnID{txn}
			}
		}
		return nil
	default: // WoundWait
		var wounded []table.TxnID
		for _, b := range blockers {
			if p.Priority(b) > myAge {
				wounded = append(wounded, b)
			}
		}
		for _, b := range wounded {
			p.tb.Abort(b)
		}
		return wounded
	}
}

// OnTick re-validates the prevention invariant for every blocked
// transaction. In the classic S/X model this is unnecessary — the
// invariant (wait-die: waiters older than all their blockers;
// wound-wait: waiters younger) is established at block time and never
// decays. With lock conversions it can decay: a holder's granted
// upgrade may newly conflict with an already-admitted waiter, creating
// a wait edge in the forbidden direction without any block event. The
// sweep restores the invariant, bounding any deadlock's lifetime by one
// tick.
func (p *Preventer) OnTick(now int64) []table.TxnID {
	var victims []table.TxnID
	for _, txn := range p.tb.Txns() {
		if !p.tb.Blocked(txn) {
			continue
		}
		victims = append(victims, p.OnBlocked(txn, now)...)
	}
	return victims
}

// Forget is a no-op: no per-transaction state is kept.
func (p *Preventer) Forget(table.TxnID) {}
