package jiang

import (
	"fmt"
	"math/rand"
	"testing"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

func req(t *testing.T, tb *table.Table, txn table.TxnID, rid table.ResourceID, m lock.Mode) bool {
	t.Helper()
	g, err := tb.Request(txn, rid, m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDetectsAndAbortsMinCost(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 2, "B", lock.X)
	req(t, tb, 1, "B", lock.X)
	req(t, tb, 2, "A", lock.X)
	d := New(tb)
	d.Cost = func(id table.TxnID) float64 { return float64(id) }
	v := d.OnBlocked(2, 0)
	if len(v) != 1 || v[0] != 1 {
		t.Fatalf("victims = %v, want [T1]", v)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
	if d.Name() != "jiang-matrix" {
		t.Errorf("Name = %q", d.Name())
	}
	if d.OnTick(0) != nil {
		t.Fatal("OnTick must be a no-op")
	}
	d.Forget(1) // no-op
}

func TestMatrixFootprint(t *testing.T) {
	tb := table.New()
	d := New(tb)
	if d.MatrixCells() != 0 {
		t.Fatal("no activation yet")
	}
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 2, "A", lock.S)
	d.OnBlocked(2, 0)
	// Default 256 slots: (256+1)*256 cells regardless of 2 live txns —
	// the fixed footprint the H/W-TWBG avoids.
	if got := d.MatrixCells(); got != 257*256 {
		t.Fatalf("MatrixCells = %d", got)
	}
}

func TestMatrixGrows(t *testing.T) {
	tb := table.New()
	d := New(tb)
	d.Slots = 2
	// Four transactions force one doubling.
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 2, "B", lock.X)
	req(t, tb, 3, "A", lock.S)
	req(t, tb, 4, "B", lock.S)
	d.OnBlocked(4, 0)
	if d.Slots < 4 {
		t.Fatalf("Slots = %d, want >= 4", d.Slots)
	}
}

func TestNoFalsePositives(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	rng := rand.New(rand.NewSource(3))
	tb := table.New()
	d := New(tb)
	d.Slots = 4
	for step := 0; step < 600; step++ {
		txn := table.TxnID(1 + rng.Intn(8))
		if tb.Blocked(txn) {
			continue
		}
		if rng.Intn(10) < 8 {
			rid := table.ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(4)))
			g, err := tb.Request(txn, rid, modes[rng.Intn(len(modes))])
			if err != nil {
				t.Fatal(err)
			}
			if !g {
				deadBefore := twbg.Deadlocked(tb)
				v := d.OnBlocked(txn, int64(step))
				if !deadBefore && len(v) > 0 {
					t.Fatalf("step %d: aborted %v without deadlock", step, v)
				}
				if twbg.Deadlocked(tb) {
					t.Fatalf("step %d: deadlock survived:\n%s", step, tb)
				}
			}
		} else if _, err := tb.Release(txn); err != nil {
			t.Fatal(err)
		}
	}
}
