// Package jiang re-implements the continuous matrix-based detector of
// Jiang ("Deadlock Detection is Really Cheap", SIGMOD Record 1988) as
// the paper's Section 1 describes it: the TWFG is represented by an
// (n+1) x n boolean matrix over a fixed transaction-slot universe, a
// cycle is found in O(e) on each insertion, and all participants of the
// cycle are listed for victim selection.
//
// Two documented deviations from the original:
//
//   - the matrix is refilled from the lock table on each activation
//     rather than maintained incrementally; the O(e) search is
//     unaffected, only the maintenance constant differs;
//   - participant listing is by a single DFS (one cycle), not the
//     exhaustive enumeration whose worst case the paper quotes as
//     O(3^(n/3)); the benchmarks include a separate measurement of that
//     enumeration cost via twbg.Cycles.
//
// The matrix's fixed O(n^2) footprint regardless of blocking density is
// the storage cost the benchmarks compare with the H/W-TWBG's O(n+e).
package jiang

import (
	"hwtwbg/internal/baseline"
	"hwtwbg/internal/table"
)

// Detector is the continuous matrix detector.
type Detector struct {
	tb *table.Table
	// Slots is the matrix dimension n: transaction ids are mapped into
	// [0, Slots) slots. It defaults to 256 and grows on demand.
	Slots int
	// Cost prices victims; nil means uniform.
	Cost func(table.TxnID) float64

	matrix [][]bool
	ids    []table.TxnID // slot -> txn id of the current fill
	slotOf map[table.TxnID]int
}

// New returns a detector over tb.
func New(tb *table.Table) *Detector {
	return &Detector{tb: tb, Slots: 256, slotOf: make(map[table.TxnID]int)}
}

// Name identifies the strategy in reports.
func (d *Detector) Name() string { return "jiang-matrix" }

// MatrixCells returns the storage footprint of the last activation in
// matrix cells ((n+1) * n); the complexity benchmarks report it.
func (d *Detector) MatrixCells() int {
	if len(d.matrix) == 0 {
		return 0
	}
	return len(d.matrix) * len(d.matrix[0])
}

// OnBlocked refills the matrix and resolves any cycle through txn,
// aborting the minimum-cost participant.
func (d *Detector) OnBlocked(txn table.TxnID, now int64) []table.TxnID {
	cost := d.Cost
	if cost == nil {
		cost = baseline.ConstCost
	}
	var victims []table.TxnID
	for {
		d.fill()
		s, ok := d.slotOf[txn]
		if !ok {
			return victims
		}
		cyc := d.cycleFrom(s)
		if cyc == nil {
			return victims
		}
		participants := make([]table.TxnID, len(cyc))
		for i, slot := range cyc {
			participants[i] = d.ids[slot]
		}
		v := baseline.MinCost(participants, cost)
		d.tb.Abort(v)
		victims = append(victims, v)
		if v == txn {
			return victims
		}
	}
}

// OnTick is a no-op: the scheme is continuous.
func (d *Detector) OnTick(int64) []table.TxnID { return nil }

// Forget is a no-op: the matrix is refilled each activation.
func (d *Detector) Forget(table.TxnID) {}

// fill rebuilds the (n+1) x n matrix from the lock table. Row n is the
// spare row of Jiang's representation (used there for insertion
// staging); we keep the shape for the storage accounting.
func (d *Detector) fill() {
	txns := d.tb.Txns()
	n := d.Slots
	for n < len(txns) {
		n *= 2
	}
	d.Slots = n
	if len(d.matrix) != n+1 {
		d.matrix = make([][]bool, n+1)
		for i := range d.matrix {
			d.matrix[i] = make([]bool, n)
		}
	} else {
		for i := range d.matrix {
			row := d.matrix[i]
			for j := range row {
				row[j] = false
			}
		}
	}
	d.ids = d.ids[:0]
	clear(d.slotOf)
	for i, id := range txns {
		d.ids = append(d.ids, id)
		d.slotOf[id] = i
	}
	for i, id := range txns {
		for _, b := range baseline.Blockers(d.tb, id) {
			if j, ok := d.slotOf[b]; ok {
				d.matrix[i][j] = true
			}
		}
	}
}

// cycleFrom runs a DFS over matrix rows from slot s, returning the slot
// cycle through s or nil, in O(n + e) with e read off the matrix.
func (d *Detector) cycleFrom(s int) []int {
	n := len(d.ids)
	state := make([]uint8, n) // 0 white, 1 gray, 2 black
	var path []int
	var dfs func(v int) []int
	dfs = func(v int) []int {
		state[v] = 1
		path = append(path, v)
		row := d.matrix[v]
		for w := 0; w < n; w++ {
			if !row[w] {
				continue
			}
			if w == s {
				return append([]int(nil), path...)
			}
			if state[w] != 0 {
				continue
			}
			if c := dfs(w); c != nil {
				return c
			}
		}
		state[v] = 2
		path = path[:len(path)-1]
		return nil
	}
	return dfs(s)
}
