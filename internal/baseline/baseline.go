// Package baseline provides the wait-for-graph extraction shared by the
// re-implemented comparison algorithms (Agrawal/Carey/DeWitt '83,
// Elmagarmid '85, Jiang '88, plain continuous WFG, and timeout), which
// the paper's Section 1 discusses and the benchmarks compare against the
// H/W-TWBG detector.
//
// Unlike the H/W-TWBG, the classic transaction wait-for graph (TWFG)
// draws an edge from a blocked transaction to every transaction that must
// leave before it can proceed. Under the FIFO-with-conversions scheduling
// policy this means:
//
//   - a queue waiter waits for every holder whose granted or blocked mode
//     conflicts with its requested mode, and for every waiter ahead of it
//     in the queue (FIFO: it cannot be granted before they leave);
//   - a blocked upgrader waits for every other holder whose granted mode
//     conflicts with its conversion target.
//
// This graph is sound and complete for detection, but it cannot express
// TDR-2's reorder-instead-of-abort resolution, and it contains many more
// edges than the H/W-TWBG's chain structure — both differences the
// benchmarks quantify.
package baseline

import (
	"sort"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

// Blockers returns, sorted, the transactions that must complete or abort
// before txn can be granted. It is empty when txn is not blocked.
func Blockers(tb *table.Table, txn table.TxnID) []table.TxnID {
	rid, bm, ok := tb.WaitingOn(txn)
	if !ok {
		return nil
	}
	r := tb.Resource(rid)
	if r == nil {
		return nil
	}
	set := make(map[table.TxnID]bool)
	hn, qn := r.NumHolders(), r.QueueLen()
	if tb.Upgrading(txn) {
		for i := 0; i < hn; i++ {
			h := r.HolderAt(i)
			if h.Txn != txn && !lock.Comp(bm, h.Granted) {
				set[h.Txn] = true
			}
		}
	} else {
		for i := 0; i < hn; i++ {
			h := r.HolderAt(i)
			if !lock.Comp(bm, h.Granted) || !lock.Comp(bm, h.Blocked) {
				set[h.Txn] = true
			}
		}
		for i := 0; i < qn; i++ {
			q := r.QueueAt(i)
			if q.Txn == txn {
				break
			}
			set[q.Txn] = true
		}
	}
	out := make([]table.TxnID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WaitGraph returns the full TWFG adjacency: every blocked transaction
// mapped to its sorted blocker list.
func WaitGraph(tb *table.Table) map[table.TxnID][]table.TxnID {
	g := make(map[table.TxnID][]table.TxnID)
	for _, id := range tb.Txns() {
		if tb.Blocked(id) {
			g[id] = Blockers(tb, id)
		}
	}
	return g
}

// CycleFrom reports a cycle through start in the adjacency g, returned
// as the vertex sequence, or nil. It runs a DFS in O(n+e).
func CycleFrom(g map[table.TxnID][]table.TxnID, start table.TxnID) []table.TxnID {
	onPath := map[table.TxnID]bool{}
	done := map[table.TxnID]bool{}
	var path []table.TxnID
	var dfs func(v table.TxnID) []table.TxnID
	dfs = func(v table.TxnID) []table.TxnID {
		onPath[v] = true
		path = append(path, v)
		for _, w := range g[v] {
			if w == start && len(path) > 0 {
				return append([]table.TxnID(nil), path...)
			}
			if onPath[w] || done[w] {
				continue
			}
			if c := dfs(w); c != nil {
				return c
			}
		}
		onPath[v] = false
		done[v] = true
		path = path[:len(path)-1]
		return nil
	}
	return dfs(start)
}

// AnyCycle returns some cycle in g, or nil when g is acyclic.
func AnyCycle(g map[table.TxnID][]table.TxnID) []table.TxnID {
	starts := make([]table.TxnID, 0, len(g))
	for v := range g {
		starts = append(starts, v)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, v := range starts {
		if c := CycleFrom(g, v); c != nil {
			return c
		}
	}
	return nil
}

// MinCost returns the member of cycle with the smallest cost (ties to
// the smallest id).
func MinCost(cycle []table.TxnID, cost func(table.TxnID) float64) table.TxnID {
	best := cycle[0]
	bestCost := cost(best)
	for _, v := range cycle[1:] {
		c := cost(v)
		if c < bestCost || (c == bestCost && v < best) {
			best, bestCost = v, c
		}
	}
	return best
}

// ConstCost is the uniform cost function used when none is configured.
func ConstCost(table.TxnID) float64 { return 1 }
