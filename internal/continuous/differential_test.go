package continuous

import (
	"fmt"
	"math/rand"
	"testing"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

// TestDifferentialPeriodicVsContinuous generates random deadlocked
// snapshots and resolves each twice — once with the periodic detector,
// once with the continuous one — checking that both fully clear the
// deadlocks, that neither aborts on deadlock-free states, and that
// neither ever aborts more transactions than there are cycles.
func TestDifferentialPeriodicVsContinuous(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	snapshots := 0
	for seed := int64(500); seed < 540; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := table.New()
		// Grow a tangle without resolving, then snapshot when deadlocked.
		for step := 0; step < 300; step++ {
			txn := table.TxnID(1 + rng.Intn(9))
			if tb.Blocked(txn) {
				continue
			}
			rid := table.ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(4)))
			if _, err := tb.Request(txn, rid, modes[rng.Intn(len(modes))]); err != nil {
				t.Fatal(err)
			}
			if !twbg.Deadlocked(tb) {
				continue
			}
			snapshots++
			cycles := len(twbg.Build(tb).Cycles(0))

			per := tb.Clone()
			perRes := detect.New(per, detect.Config{}).Run()
			if twbg.Deadlocked(per) {
				t.Fatalf("seed %d: periodic left a deadlock:\n%s", seed, per)
			}
			if len(perRes.Aborted) > cycles {
				t.Fatalf("seed %d: periodic aborted %d > %d cycles", seed, len(perRes.Aborted), cycles)
			}

			cont := tb.Clone()
			cv := New(cont).ResolveAll()
			if twbg.Deadlocked(cont) {
				t.Fatalf("seed %d: continuous left a deadlock:\n%s", seed, cont)
			}
			if len(cv) > cycles {
				t.Fatalf("seed %d: continuous aborted %d > %d cycles", seed, len(cv), cycles)
			}

			// Clear the original and keep growing.
			set := twbg.DeadlockSet(tb)
			tb.Abort(set[rng.Intn(len(set))])
		}
	}
	if snapshots < 50 {
		t.Fatalf("only %d deadlocked snapshots generated; differential test too weak", snapshots)
	}
}
