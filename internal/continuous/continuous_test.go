package continuous

import (
	"fmt"
	"math/rand"
	"testing"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

func req(t *testing.T, tb *table.Table, txn table.TxnID, rid table.ResourceID, m lock.Mode) bool {
	t.Helper()
	g, err := tb.Request(txn, rid, m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestResolvesOnBlock(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 2, "B", lock.X)
	req(t, tb, 1, "B", lock.X)
	d := New(tb)
	if v := d.OnBlocked(1, 0); len(v) != 0 {
		t.Fatalf("no deadlock yet, aborted %v", v)
	}
	req(t, tb, 2, "A", lock.X)
	v := d.OnBlocked(2, 0)
	if len(v) != 1 {
		t.Fatalf("victims = %v", v)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
	cycles, aborts, reps := d.Stats()
	if cycles != 1 || aborts != 1 || reps != 0 {
		t.Fatalf("stats = %d %d %d", cycles, aborts, reps)
	}
	if d.Name() != "park-continuous" {
		t.Errorf("Name = %q", d.Name())
	}
	if d.OnTick(0) != nil {
		t.Error("OnTick must be a no-op")
	}
	d.Forget(1)
}

// TestExample41TDR2 resolves the paper's Example 4.1 continuously: the
// last blocking request that completes a cycle is T3's S on R2 (T4's X
// afterwards joins no cycle). TDR-2 must fire, aborting nobody.
func TestExample41TDR2(t *testing.T) {
	tb := table.New()
	d := New(tb)
	steps := []struct {
		txn table.TxnID
		rid table.ResourceID
		m   lock.Mode
	}{
		{1, "R1", lock.IX}, {2, "R1", lock.IS}, {3, "R1", lock.IX}, {4, "R1", lock.IS},
		{7, "R2", lock.IS}, {2, "R1", lock.S}, {1, "R1", lock.S}, {5, "R1", lock.IX},
		{6, "R1", lock.S}, {7, "R1", lock.IX}, {8, "R2", lock.X}, {9, "R2", lock.IX},
		{3, "R2", lock.S}, {4, "R2", lock.X},
	}
	var victims []table.TxnID
	for _, s := range steps {
		if !req(t, tb, s.txn, s.rid, s.m) {
			victims = append(victims, d.OnBlocked(s.txn, 0)...)
		}
		if twbg.Deadlocked(tb) {
			t.Fatalf("deadlock persisted after continuous activation at %v %s", s.txn, s.rid)
		}
	}
	if len(victims) != 0 {
		t.Fatalf("victims = %v; Example 4.1 resolves by TDR-2 under uniform costs", victims)
	}
	_, aborts, reps := d.Stats()
	if aborts != 0 || reps != 1 {
		t.Fatalf("aborts=%d repositionings=%d", aborts, reps)
	}
	// Continuous resolution schedules immediately: T9 is already granted.
	want := "R2(IX): Holder((T9, IX, NL) (T7, IS, NL)) Queue((T3, S) (T8, X) (T4, X))"
	if got := tb.Resource("R2").String(); got != want {
		t.Fatalf("R2:\n got  %s\n want %s", got, want)
	}
}

func TestDisableTDR2(t *testing.T) {
	tb := table.New()
	d := New(tb)
	d.DisableTDR2 = true
	req(t, tb, 1, "q", lock.IS)
	req(t, tb, 3, "tail", lock.X) // T3 holds tail and will queue on q
	req(t, tb, 2, "q", lock.X)
	req(t, tb, 3, "q", lock.S)
	req(t, tb, 1, "tail", lock.S)
	v := d.OnBlocked(1, 0)
	if len(v) != 1 {
		t.Fatalf("victims = %v", v)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
}

func TestCostsAndBoost(t *testing.T) {
	tb := table.New()
	d := New(tb)
	d.Costs = detect.NewCostTable(1)
	// Same TDR-2-friendly shape as synth.HotQueue.
	req(t, tb, 1, "q", lock.IS)
	req(t, tb, 3, "tail", lock.X) // T3 holds tail and will queue on q
	req(t, tb, 2, "q", lock.X)
	req(t, tb, 3, "q", lock.S)
	req(t, tb, 1, "tail", lock.S)
	if v := d.OnBlocked(1, 0); len(v) != 0 {
		t.Fatalf("victims = %v, want TDR-2", v)
	}
	if got := d.Costs.Cost(2); got != 2 {
		t.Fatalf("cost(T2) = %v, want boosted to 2", got)
	}
	_, _, reps := d.Stats()
	if reps != 1 {
		t.Fatalf("repositionings = %d", reps)
	}
}

func TestCostDrivenVictim(t *testing.T) {
	tb := table.New()
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 2, "B", lock.X)
	req(t, tb, 1, "B", lock.X)
	req(t, tb, 2, "A", lock.X)
	d := New(tb)
	d.Cost = func(id table.TxnID) float64 { return float64(10 - id) } // T2 cheaper
	v := d.OnBlocked(2, 0)
	if len(v) != 1 || v[0] != 2 {
		t.Fatalf("victims = %v, want [T2]", v)
	}
}

func TestResolveAll(t *testing.T) {
	tb := table.New()
	// Two disjoint deadlocks built without intervening detection.
	req(t, tb, 1, "A", lock.X)
	req(t, tb, 2, "B", lock.X)
	req(t, tb, 3, "C", lock.X)
	req(t, tb, 4, "D", lock.X)
	req(t, tb, 1, "B", lock.X)
	req(t, tb, 2, "A", lock.X)
	req(t, tb, 3, "D", lock.X)
	req(t, tb, 4, "C", lock.X)
	d := New(tb)
	v := d.ResolveAll()
	if len(v) != 2 {
		t.Fatalf("victims = %v", v)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlocks remain")
	}
	if v2 := d.ResolveAll(); len(v2) != 0 {
		t.Fatalf("second ResolveAll acted: %v", v2)
	}
}

// TestContinuousInvariant: activating on every block keeps the table
// permanently deadlock-free across random workloads, and the detector
// agrees with the periodic one on whether a deadlock existed.
func TestContinuousInvariant(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := table.New()
		d := New(tb)
		for step := 0; step < 900; step++ {
			txn := table.TxnID(1 + rng.Intn(10))
			if tb.Blocked(txn) {
				continue
			}
			switch rng.Intn(10) {
			case 8:
				if _, err := tb.Release(txn); err != nil {
					t.Fatal(err)
				}
			case 9:
				tb.Abort(txn)
			default:
				rid := table.ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(5)))
				g, err := tb.Request(txn, rid, modes[rng.Intn(len(modes))])
				if err != nil {
					t.Fatal(err)
				}
				if !g {
					deadBefore := twbg.Deadlocked(tb)
					v := d.OnBlocked(txn, int64(step))
					_, _, reps0 := d.Stats()
					_ = reps0
					if !deadBefore && len(v) > 0 {
						t.Fatalf("seed %d step %d: aborted %v without deadlock", seed, step, v)
					}
				}
			}
			if twbg.Deadlocked(tb) {
				t.Fatalf("seed %d step %d: deadlock survived continuous operation:\n%s", seed, step, tb)
			}
		}
	}
}

// TestMatchesPeriodicOnSnapshots: for random deadlocked snapshots, the
// continuous resolver's ResolveAll and the periodic detector both leave
// the table deadlock-free; victim counts may differ but neither aborts
// when TDR-2 suffices on the canonical hot-queue shape.
func TestMatchesPeriodicOnSnapshots(t *testing.T) {
	build := func() *table.Table {
		tb := table.New()
		req(t, tb, 1, "q", lock.IS)
		req(t, tb, 3, "tail", lock.X) // T3 holds tail and will queue on q
		req(t, tb, 2, "q", lock.X)
		req(t, tb, 3, "q", lock.S)
		req(t, tb, 1, "tail", lock.S)
		return tb
	}
	tb1 := build()
	cv := New(tb1).ResolveAll()
	tb2 := build()
	pr := detect.New(tb2, detect.Config{}).Run()
	if len(cv) != 0 || len(pr.Aborted) != 0 {
		t.Fatalf("continuous=%v periodic=%v; both should use TDR-2", cv, pr.Aborted)
	}
	if tb1.String() != tb2.String() {
		t.Fatalf("final states differ:\n%s\nvs\n%s", tb1, tb2)
	}
}
