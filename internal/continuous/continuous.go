// Package continuous implements the continuous companion of the
// periodic algorithm — the paper presents its periodic scheme "as a
// companion of the continuous one (17)" (Park & Scheuermann,
// COMPSAC '91). The full text of [17] is not available, so this
// reconstruction applies the identical H/W-TWBG machinery (ECR edges,
// TRRP junctions, TDR-1/TDR-2 victim selection) at the only moment a
// new deadlock can appear in a continuous regime: immediately after a
// lock request blocks.
//
// Invariant of continuous operation: between activations the system is
// deadlock-free, so any cycle must pass through the transaction that
// just blocked. Detection therefore searches only cycles through that
// transaction, in O(n+e) per activation, and resolution applies TDR
// immediately (there is no Step 3 batch: a TDR-2 repositioning
// schedules its queue on the spot, and a TDR-1 victim aborts on the
// spot, which may grant other waiters).
package continuous

import (
	"hwtwbg/internal/detect"
	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

// Detector is the continuous H/W-TWBG detector.
type Detector struct {
	tb *table.Table
	// Cost prices victim candidates; nil means every transaction costs 1.
	Cost func(table.TxnID) float64
	// Costs, when non-nil, is a mutable cost store consulted before
	// Cost and boosted after TDR-2 repositionings, exactly as in the
	// periodic algorithm.
	Costs *detect.CostTable
	// DisableTDR2 restricts resolution to aborts.
	DisableTDR2 bool

	// stats
	cycles         int
	aborts         int
	repositionings int
}

// New returns a continuous detector over tb.
func New(tb *table.Table) *Detector { return &Detector{tb: tb} }

// Name identifies the strategy in reports.
func (d *Detector) Name() string { return "park-continuous" }

// Stats returns cumulative (cycles resolved, victims aborted, TDR-2
// repositionings).
func (d *Detector) Stats() (cycles, aborts, repositionings int) {
	return d.cycles, d.aborts, d.repositionings
}

func (d *Detector) cost(t table.TxnID) float64 {
	if d.Costs != nil {
		return d.Costs.Cost(t)
	}
	if d.Cost != nil {
		return d.Cost(t)
	}
	return 1
}

// OnBlocked resolves every deadlock involving the newly blocked
// transaction, returning the victims aborted (possibly none when TDR-2
// sufficed).
func (d *Detector) OnBlocked(txn table.TxnID, now int64) []table.TxnID {
	var victims []table.TxnID
	for {
		g := twbg.Build(d.tb)
		cyc := cycleThrough(g, txn)
		if cyc == nil {
			return victims
		}
		d.cycles++
		if v, aborted := d.resolve(cyc); aborted {
			victims = append(victims, v)
			if v == txn {
				return victims
			}
		}
	}
}

// OnTick is a no-op: the scheme is continuous.
func (d *Detector) OnTick(int64) []table.TxnID { return nil }

// Forget is a no-op: the graph is rebuilt from the table each time.
func (d *Detector) Forget(table.TxnID) {}

// ResolveAll clears every deadlock in the table regardless of which
// transaction closed it (used when attaching the detector to a table
// with pre-existing tangles, e.g. in tests and tools).
func (d *Detector) ResolveAll() (victims []table.TxnID) {
	for {
		g := twbg.Build(d.tb)
		resolved := false
		for _, v := range g.Vertices() {
			if cyc := cycleThrough(g, v); cyc != nil {
				d.cycles++
				if victim, aborted := d.resolve(cyc); aborted {
					victims = append(victims, victim)
				}
				resolved = true
				break
			}
		}
		if !resolved {
			return victims
		}
	}
}

// cycleThrough returns the edges of a cycle passing through start, in
// cycle order starting at start, or nil.
func cycleThrough(g *twbg.Graph, start table.TxnID) []twbg.Edge {
	onPath := map[table.TxnID]bool{}
	var path []twbg.Edge
	var dfs func(v table.TxnID) bool
	dfs = func(v table.TxnID) bool {
		onPath[v] = true
		for _, e := range g.Out(v) {
			if e.To == start {
				path = append(path, e)
				return true
			}
			if onPath[e.To] {
				continue
			}
			path = append(path, e)
			if dfs(e.To) {
				return true
			}
			path = path[:len(path)-1]
		}
		// No un-visit of onPath: any cycle through start that runs via
		// v would have been found from v just now, so v is dead for
		// this search. This keeps the walk O(n+e).
		return false
	}
	if dfs(start) {
		return path
	}
	return nil
}

// resolve applies TDR to one cycle, returning the aborted victim (if
// resolution was by TDR-1).
func (d *Detector) resolve(cycle []twbg.Edge) (victim table.TxnID, aborted bool) {
	type candidate struct {
		junction table.TxnID
		cost     float64
		tdr2     bool
		resource table.ResourceID
	}
	best := candidate{cost: -1}
	better := func(c candidate) bool {
		switch {
		case best.cost < 0:
			return true
		case c.cost != best.cost:
			return c.cost < best.cost
		case c.tdr2 != best.tdr2:
			return c.tdr2
		default:
			return c.junction < best.junction
		}
	}
	n := len(cycle)
	for i, e := range cycle {
		// e leaves cycle vertex e.From; the junction test is on the
		// outgoing edge's label.
		if e.Label != twbg.H {
			continue
		}
		u := e.From
		if c := (candidate{junction: u, cost: d.cost(u)}); better(c) {
			best = c
		}
		if d.DisableTDR2 {
			continue
		}
		incoming := cycle[(i-1+n)%n]
		if incoming.Label != twbg.W {
			continue
		}
		rid, bm, ok := d.tb.WaitingOn(u)
		if !ok || d.tb.Upgrading(u) {
			continue
		}
		r := d.tb.Resource(rid)
		if r == nil || !lock.Comp(bm, r.TotalMode()) {
			continue
		}
		_, st := d.tb.PeekAVST(rid, u)
		sum := 0.0
		for _, q := range st {
			sum += d.cost(q.Txn)
		}
		if c := (candidate{junction: u, cost: sum / 2, tdr2: true, resource: rid}); better(c) {
			best = c
		}
	}
	if best.cost < 0 {
		panic("continuous: cycle without a junction transaction (violates Lemma 3)")
	}
	if best.tdr2 {
		_, st := d.tb.RepositionAVST(best.resource, best.junction)
		if d.Costs != nil {
			for _, q := range st {
				d.Costs.Set(q.Txn, d.Costs.Cost(q.Txn)+1)
			}
		}
		// Continuous resolution schedules the queue immediately.
		d.tb.ScheduleQueue(best.resource)
		d.repositionings++
		return 0, false
	}
	d.tb.Abort(best.junction)
	d.aborts++
	return best.junction, true
}
