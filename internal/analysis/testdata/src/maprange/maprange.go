// Package maprange is the fixture for the maprange analyzer: every way
// map iteration order can (and cannot) leak into observable output.
package maprange

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// dump writes wire output straight from a map range.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf inside map iteration"
	}
}

// build accumulates DOT-style text from a map range.
func build(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "WriteString call inside map iteration"
	}
	return b.String()
}

// keysUnsorted returns keys in randomized order.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside map iteration without a later sort"
	}
	return out
}

// keysSorted is the blessed pattern: collect, then sort.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// viaClosure hides the append inside a local closure; the scan follows
// one call level.
func viaClosure(m map[string]int) []string {
	var out []string
	app := func(k string) { out = append(out, k) } // want "append to out inside map iteration without a later sort"
	for k := range m {
		app(k)
	}
	return out
}

// sum folds into a scalar: order-insensitive, not flagged.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// invert writes map-to-map: order-insensitive, not flagged.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// perEntry appends to a slice scoped inside the loop body: each entry's
// order is self-contained, not flagged.
func perEntry(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, vs := range m {
		var dup []int
		dup = append(dup, vs...)
		out[k] = dup
	}
	return out
}
