// Package wireschema is the fixture for the wireschema analyzer:
// emit/parse marker pairs that agree, drift between their switches,
// go stale, leave coverage gaps, or point at nothing.
package wireschema

import "fmt"

// emitOK sends the metrics line.
//
//hwlint:wire emit metrics
func emitOK(a, b, c int) string {
	return fmt.Sprintf("a=%d b=%d c=%d", a, b, c)
}

// parseOK consumes every emitted key with both switches in step: no
// findings.
//
//hwlint:wire parse metrics
func parseOK(k string) (a, b, c bool) {
	switch k {
	case "a", "b", "c":
	default:
		return
	}
	switch k {
	case "a":
		a = true
	case "b":
		b = true
	case "c":
		c = true
	}
	return
}

//hwlint:wire emit drift
func emitDrift(a, b, c int) string {
	return fmt.Sprintf("d1=%d d2=%d d3=%d", a, b, c)
}

// parseDrift's validate switch knows d3 but the assign switch lost it:
// the two-switch skew that silently drops a field.
//
//hwlint:wire parse drift
func parseDrift(k string) (n int) { // want "a switch handles 2 of this parser's 3"
	switch k {
	case "d1", "d2", "d3":
	default:
		return
	}
	switch k {
	case "d1":
		n = 1
	case "d2":
		n = 2
	}
	return
}

//hwlint:wire emit stale
func emitStale(x, y int) string {
	return fmt.Sprintf("s1=%d s2=%d", x, y)
}

// parseStale still handles s3, which no emitter sends anymore.
//
//hwlint:wire parse stale
func parseStale(k string) bool { // want "stale parser entry"
	switch k {
	case "s1", "s2", "s3":
		return true
	}
	return false
}

//hwlint:wire emit gap
func emitGap(p, q, r int) string {
	return fmt.Sprintf("g1=%d g2=%d g3=%d", p, q, r)
}

// parseGap is not marked subset, so missing g3 is a coverage gap.
//
//hwlint:wire parse gap
func parseGap(k string) bool { // want "does not handle emitted"
	switch k {
	case "g1", "g2":
		return true
	}
	return false
}

// Frame is the gauge frame; its json tags are the emit vocabulary.
//
//hwlint:wire emit gauges
type Frame struct {
	Load  float64 `json:"load"`
	Depth int     `json:"depth"`
	Skew  int     `json:"skew"`
	note  string  // untagged: not on the wire
}

// dashboardKeys is the stable subset a dashboard selects by name.
//
//hwlint:wire parse gauges subset
var dashboardKeys = []string{"load", "depth"}

//hwlint:wire parse orphan subset
var orphanKeys = []string{"o1"} // want "has a parser but no emitter"

//hwlint:wire emit ghost
func emitGhost(v int) string { // want "has an emitter but no parser"
	return fmt.Sprintf("gh1=%d", v)
}

//hwlint:wire emit hollow // want "extracted no keys"
func emitHollow() string { // want "has an emitter but no parser"
	return "no key directives here"
}

// emitProm and parseProm agree on the prefix-extracted series names.
//
//hwlint:wire emit series prefix=prom_
func emitProm() string {
	return "# HELP prom_up\nprom_up 1\nprom_queue_depth 3\n"
}

//hwlint:wire parse series prefix=prom_
func parseProm(line string) bool {
	return line == "prom_up" || line == "prom_queue_depth"
}

// emitStream and parseStream model a streaming heartbeat frame: the
// emitter's prefix vocabulary gained hb_lost but the consumer never
// learned it — the gap that makes a live tail silently under-report.
//
//hwlint:wire emit stream prefix=hb_
func emitStream(seq, n, lost int) string {
	return fmt.Sprintf("HB hb_seq=%d hb_n=%d hb_lost=%d", seq, n, lost)
}

//hwlint:wire parse stream prefix=hb_
func parseStream(k string) bool { // want "does not handle emitted"
	switch k {
	case "hb_seq", "hb_n":
		return true
	}
	return false
}

//hwlint:wire sideways nochan // want "malformed annotation"
func typoWire() {}
