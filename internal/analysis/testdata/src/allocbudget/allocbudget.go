// Package allocbudget is the fixture for the allocbudget analyzer:
// //hwlint:hotpath-annotated functions whose reachable allocation
// sites are counted through helpers, mutual recursion, devirtualized
// interface calls, and pruned by //hwlint:allow.
package allocbudget

import "fmt"

type thing struct {
	id int
}

var free []*thing

// withinBudget's one countable site is the freelist-miss literal; the
// budget holds exactly, so no finding.
//
//hwlint:hotpath allocs=1
func withinBudget(id int) *thing {
	if n := len(free); n > 0 {
		t := free[n-1]
		free = free[:n-1]
		t.id = id
		return t
	}
	return &thing{id: id}
}

// overBudget charges the same site against a zero budget.
//
//hwlint:hotpath allocs=0
func overBudget(id int) *thing { // want "hot path budget allocs=0 exceeded: 1 reachable allocation sites"
	return &thing{id: id}
}

// transitive reaches its helper's make through the callgraph.
//
//hwlint:hotpath allocs=0
func transitive(n int) []int { // want "via allocbudget.scratch"
	return scratch(n)
}

func scratch(n int) []int {
	return make([]int, n)
}

// pingPongA and pingPongB are mutually recursive: the cycle's one site
// counts once, not per unrolling.
//
//hwlint:hotpath allocs=0
func pingPongA(n int) []int { // want "allocs=0 exceeded: 1 reachable allocation sites"
	if n <= 0 {
		return nil
	}
	return pingPongB(n - 1)
}

func pingPongB(n int) []int {
	buf := make([]int, 1)
	if n <= 0 {
		return buf
	}
	return pingPongA(n - 1)
}

type sink interface{ put(n int) }

type heapSink struct{ keep []*int }

func (h *heapSink) put(n int) {
	p := new(int)
	*p = n
	h.keep = append(h.keep, p)
}

// drain's interface call devirtualizes to heapSink.put by method-set
// matching; its new() is charged against drain's budget.
//
//hwlint:hotpath allocs=0
func drain(s sink) { // want "via allocbudget.heapSink.put"
	s.put(1)
}

// format reaches fmt, which is outside the audited intrinsic table:
// unbounded regardless of how large the budget is.
//
//hwlint:hotpath allocs=5
func format(x int) string { // want "statically unbounded"
	return fmt.Sprintf("val %d", x)
}

// pooled's miss-path literal is excused (and audited) by the allow.
//
//hwlint:hotpath allocs=0
func pooled() *thing {
	if n := len(free); n > 0 {
		t := free[n-1]
		free = free[:n-1]
		return t
	}
	return &thing{} //hwlint:allow allocbudget -- freelist miss; recycled, amortized out of steady state
}

// coldPath prunes the whole abort-path call edge, fmt and all.
//
//hwlint:hotpath allocs=0
func coldPath(fail bool) error {
	if fail {
		return explain() //hwlint:allow allocbudget -- cold abort path, not benched
	}
	return nil
}

func explain() error {
	return fmt.Errorf("failed with %d pooled", len(free))
}

//hwlint:hotpath allocs=lots // want "malformed annotation"
func typo() {}
