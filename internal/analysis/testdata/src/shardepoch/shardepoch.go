// Package shardepoch is the fixture for the atomics analyzer applied
// to the shard mutation epoch: the counter the incremental snapshot's
// skip decision reads without the shard mutex, so every touch must go
// through its atomic methods — a plain load or store would be a data
// race against the detector and is exactly what the analyzer bans.
package shardepoch

import (
	"sync"
	"sync/atomic"
)

// shardEpoch mirrors the lock manager's per-shard mutation counter.
//
// hwlint:atomics-only — the counter may only be touched via its methods.
type shardEpoch struct {
	v atomic.Uint64
}

func (e *shardEpoch) bump()        { e.v.Add(1) }
func (e *shardEpoch) load() uint64 { return e.v.Load() }

// shard is a miniature of the real shard: the epoch rides next to the
// mutex that guards the table it versions.
type shard struct {
	mu    sync.Mutex
	held  int
	epoch shardEpoch
}

// grant is the blessed mutation shape: table change and epoch bump both
// under the owning shard's mutex, the bump through the method.
func (s *shard) grant() {
	s.mu.Lock()
	s.held++
	s.epoch.bump()
	s.mu.Unlock()
}

// skipDecision is the blessed unlocked read: the detector loads the
// epoch through the method, without the mutex, tolerating staleness.
func skipDecision(s *shard, seen uint64) bool {
	return s.epoch.load() == seen
}

// bad touches the counter's field directly: a struct copy (which tears
// the atomic out from under concurrent bumps), an address-take that
// lets it escape the method surface, and a zeroing store that rewinds
// the version history the detector keys its reuse on.
func bad(s *shard) uint64 {
	e := s.epoch.v // want "field v of shardEpoch touched directly"
	p := &s.epoch.v // want "field v of shardEpoch touched directly"
	_ = p
	s.mu.Lock()
	s.epoch.v = atomic.Uint64{} // want "field v of shardEpoch touched directly"
	s.mu.Unlock()
	return e.Load()
}
