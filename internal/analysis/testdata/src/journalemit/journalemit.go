// Package journalemit is the fixture for the flight-recorder emission
// discipline, checked by two analyzers at once: callbacklock proves a
// journal write never happens while a shard mutex is held (the txn.go
// sites emit after Unlock, next to the tracer hooks), and atomics
// proves the ring's lock-free internals are only touched through their
// methods.
package journalemit

import (
	"sync"
	"sync/atomic"

	"hwtwbg/journal"
)

type shard struct {
	mu sync.Mutex
	jr *journal.Ring
}

// goodEmit mirrors the hot-path discipline: the record is built on the
// stack and emitted after the shard mutex is released.
func (s *shard) goodEmit(txn int64) {
	s.mu.Lock()
	granted := true
	s.mu.Unlock()
	if granted && s.jr != nil {
		rec := journal.Record{Txn: txn, Kind: journal.KindGrant}
		rec.SetResource("accounts/7")
		s.jr.Emit(&rec)
	}
}

// badEmit journals while the shard mutex is held.
func (s *shard) badEmit(txn int64) {
	s.mu.Lock()
	rec := journal.Record{Txn: txn, Kind: journal.KindBlock}
	s.jr.Emit(&rec) // want "journal.Ring.Emit while a shard mutex is held"
	s.mu.Unlock()
}

// deferredEmit is held to function end by the deferred unlock.
func (s *shard) deferredEmit(txn int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := journal.Record{Txn: txn, Kind: journal.KindAbort}
	s.jr.Emit(&rec) // want "journal.Ring.Emit while a shard mutex is held"
}

// allowedEmit is the audited escape hatch: a deliberate under-lock
// emission (say, journaling a state transition that must be atomic
// with the table change) documents itself with an allow annotation.
func (s *shard) allowedEmit(txn int64) {
	s.mu.Lock()
	rec := journal.Record{Txn: txn, Kind: journal.KindCommit}
	//hwlint:allow callbacklock -- fixture: deliberately journaled under the shard mutex
	s.jr.Emit(&rec)
	s.mu.Unlock()
}

// counters models the ring-internal pattern (journal.ringAtomics): a
// marked struct whose fields are reached only as method receivers, so
// every touch goes through sync/atomic.
//
// hwlint:atomics-only
type counters struct {
	emitted atomic.Uint64
	torn    atomic.Uint64
}

func (c *counters) inc()         { c.emitted.Add(1) }
func (c *counters) load() uint64 { return c.emitted.Load() }

type recorder struct {
	at counters
}

// goodStats goes through the methods, the only blessed access.
func (r *recorder) goodStats() uint64 {
	r.at.inc()
	return r.at.load()
}

// badStats copies the atomic field out directly — the race the atomics
// analyzer exists to catch at lint time.
func (r *recorder) badStats() atomic.Uint64 {
	return r.at.torn // want "field torn of counters touched directly"
}
