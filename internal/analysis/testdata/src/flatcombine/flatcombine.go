// Package flatcombine is the fixture for the group-acquisition and
// flat-combining discipline, checked by two analyzers at once:
// callbacklock proves a combiner's drain loop does no observer work
// (journal emission, histogram observation, tracer hooks) while it
// holds the shard mutex — the requester performs all of that on its own
// side after `done` is published — and lockorder proves the batch
// path's lock-accumulating walks over shards ascend by index.
package flatcombine

import (
	"sync"
	"sync/atomic"

	"hwtwbg/journal"
	"hwtwbg/metrics"
)

type Tracer interface {
	OnGrant(id int)
}

type fcRequest struct {
	txn  int64
	done atomic.Uint32
}

type shard struct {
	mu   sync.Mutex
	fc   [8]atomic.Pointer[fcRequest]
	jr   *journal.Ring
	hist metrics.Histogram
	cnt  metrics.Counter
	tr   Tracer
}

// goodDrain is the shipped combiner shape: table work and counter bumps
// only. The requester spins on done and does its own observer work
// after the publication fence.
func (s *shard) goodDrain() {
	s.mu.Lock()
	for i := range s.fc {
		req := s.fc[i].Load()
		if req == nil {
			continue
		}
		s.fc[i].Store(nil)
		s.cnt.Inc() // audited exception: one atomic word
		req.done.Store(1)
	}
	s.mu.Unlock()
	s.hist.Observe(1) // requester side: the mutex is released
	s.tr.OnGrant(1)
}

// badDrain performs the requester's observer work inside the combiner,
// stalling every transaction hashed to the shard.
func (s *shard) badDrain() {
	s.mu.Lock()
	for i := range s.fc {
		req := s.fc[i].Load()
		if req == nil {
			continue
		}
		s.fc[i].Store(nil)
		rec := journal.Record{Txn: req.txn, Kind: journal.KindGrant}
		s.jr.Emit(&rec)   // want "journal.Ring.Emit while a shard mutex is held"
		s.hist.Observe(1) // want "metrics.Histogram.Observe while a shard mutex is held"
		s.tr.OnGrant(1)   // want "Tracer callback OnGrant while a shard mutex is held"
		req.done.Store(1)
	}
	s.mu.Unlock()
}

type manager struct{ shards []*shard }

// batchRuns is the shipped batch shape: requests are grouped into
// per-shard runs and each run locks and unlocks its shard within one
// iteration, so at most one shard mutex is ever held and the run order
// needs no proof.
func (m *manager) batchRuns(order []int) {
	for _, i := range order {
		s := m.shards[i]
		s.mu.Lock()
		s.cnt.Inc()
		s.mu.Unlock()
	}
}

// batchAccumulate locks every touched shard up front, driven by an
// arbitrary index set — nothing proves it ascending.
func (m *manager) batchAccumulate(touched []int) {
	for _, i := range touched {
		m.shards[i].mu.Lock() // want "ascending acquisition order is unproven"
	}
	for _, i := range touched {
		m.shards[i].mu.Unlock()
	}
}

// batchAscending ranges the shard slice itself while accumulating —
// ascending by construction, the one order every multi-shard locker
// agrees on.
func (m *manager) batchAscending() {
	for _, s := range m.shards {
		s.mu.Lock()
	}
	for i := len(m.shards) - 1; i >= 0; i-- {
		m.shards[i].mu.Unlock()
	}
}
