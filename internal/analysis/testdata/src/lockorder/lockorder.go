// Package lockorder is the fixture for the lockorder analyzer: a
// miniature sharded manager exercising every accumulating-loop shape.
package lockorder

import "sync"

type shard struct{ mu sync.Mutex }

type manager struct{ shards []*shard }

// stopWorld ranges the shard slice itself: indices ascend by
// construction, so accumulating is fine.
func (m *manager) stopWorld() {
	for _, s := range m.shards {
		s.mu.Lock()
	}
}

// lockSet accumulates locks driven by an arbitrary index set — nothing
// proves it sorted.
func (m *manager) lockSet(idx []int) {
	for _, i := range idx {
		m.shards[i].mu.Lock() // want "ascending acquisition order is unproven"
	}
}

// lockDescending walks the slice backwards while accumulating.
func (m *manager) lockDescending() {
	for i := len(m.shards) - 1; i >= 0; i-- {
		m.shards[i].mu.Lock() // want "ascending acquisition order is unproven"
	}
}

// perShard locks and unlocks within one iteration: at most one mutex is
// ever held, order is irrelevant.
func (m *manager) perShard(idx []int) {
	for _, i := range idx {
		m.shards[i].mu.Lock()
		m.shards[i].mu.Unlock()
	}
}

// unlockAll releases in reverse; unlock-only loops are always fine.
func (m *manager) unlockAll() {
	for i := len(m.shards) - 1; i >= 0; i-- {
		m.shards[i].mu.Unlock()
	}
}

// allowedSet is the audited escape hatch: the annotation in the doc
// comment covers the whole function.
//
//hwlint:allow lockorder -- idx is sorted ascending by this fixture's caller
func (m *manager) allowedSet(idx []int) {
	for _, i := range idx {
		m.shards[i].mu.Lock()
	}
}
