// Package callbacklock is the fixture for the callbacklock analyzer: a
// miniature shard with a tracer, metrics, and waiter channels.
package callbacklock

import (
	"sync"

	"hwtwbg/metrics"
)

type shard struct {
	mu sync.Mutex
	ch chan struct{}
}

type Tracer interface {
	OnGrant(id int)
}

type mgr struct {
	s    *shard
	tr   Tracer
	hist metrics.Histogram
	cnt  metrics.Counter
}

// bad fires every forbidden operation between Lock and Unlock.
func (m *mgr) bad() {
	m.s.mu.Lock()
	m.cnt.Inc()          // the audited exception: one atomic add
	m.hist.Observe(1)    // want "metrics.Histogram.Observe while a shard mutex is held"
	m.tr.OnGrant(1)      // want "Tracer callback OnGrant while a shard mutex is held"
	m.s.ch <- struct{}{} // want "blocking channel send while a shard mutex is held"
	m.s.mu.Unlock()
	m.hist.Observe(2) // fine: the mutex is released
	m.tr.OnGrant(2)
}

// errPath unlocks on the early-return branch; the fall-through is still
// under the lock, but both hooks fire after their respective unlocks.
func (m *mgr) errPath(fail bool) {
	m.s.mu.Lock()
	if fail {
		m.s.mu.Unlock()
		m.tr.OnGrant(0)
		return
	}
	m.s.mu.Unlock()
	m.tr.OnGrant(1)
}

// stillHeld shows the early-return merge keeping the lock in the
// fall-through path.
func (m *mgr) stillHeld(fail bool) {
	m.s.mu.Lock()
	if fail {
		m.s.mu.Unlock()
		return
	}
	m.tr.OnGrant(1) // want "Tracer callback OnGrant while a shard mutex is held"
	m.s.mu.Unlock()
}

// wake is the shard waker's non-blocking token deposit: a send inside a
// select with a default clause cannot block and is allowed.
func (m *mgr) wake() {
	m.s.mu.Lock()
	select {
	case m.s.ch <- struct{}{}:
	default:
	}
	m.s.mu.Unlock()
}

// deferred holds the mutex to function end via defer.
func (m *mgr) deferred() {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	m.hist.Observe(3) // want "metrics.Histogram.Observe while a shard mutex is held"
}

// allowed is the audited escape hatch.
func (m *mgr) allowed() {
	m.s.mu.Lock()
	//hwlint:allow callbacklock -- fixture: this observation is deliberate
	m.hist.Observe(4)
	m.s.mu.Unlock()
}
