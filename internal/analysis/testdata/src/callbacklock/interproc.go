// Interprocedural cases: forbidden operations that reach a locked
// region only through the module callgraph — a helper one frame down,
// a mutually recursive cycle, and an interface call devirtualized by
// method-set matching. The one-level intraprocedural walk sees none of
// these; the summary propagation reports all three.
package callbacklock

// helperObserve hides the histogram observation one frame down.
func (m *mgr) helperObserve() {
	m.hist.Observe(9)
}

func (m *mgr) indirect() {
	m.s.mu.Lock()
	m.helperObserve() // want "may perform metrics.Histogram.Observe while a shard mutex is held"
	m.s.mu.Unlock()
	m.helperObserve() // fine: the mutex is released
}

// cycleA and cycleB are mutually recursive; the tracer hook inside the
// cycle surfaces in both summaries (the SCC converges to the joint
// effect set).
func (m *mgr) cycleA(n int) {
	if n <= 0 {
		return
	}
	m.cycleB(n - 1)
}

func (m *mgr) cycleB(n int) {
	m.tr.OnGrant(n)
	m.cycleA(n - 1)
}

func (m *mgr) lockedCycle() {
	m.s.mu.Lock()
	m.cycleA(3) // want "may perform Tracer callback OnGrant while a shard mutex is held"
	m.s.mu.Unlock()
}

type notifier interface{ notify() }

type chanNotifier struct{ ch chan struct{} }

func (c *chanNotifier) notify() {
	c.ch <- struct{}{}
}

func (m *mgr) lockedNotify(n notifier) {
	m.s.mu.Lock()
	n.notify() // want "may perform blocking channel send while a shard mutex is held"
	m.s.mu.Unlock()
}
