// Package atomics is the fixture for the atomics analyzer: a padded
// metric block opting in via the doc-comment marker.
package atomics

import "sync/atomic"

// counters is this fixture's per-shard metric block.
//
// hwlint:atomics-only — fields may only be touched via their methods.
type counters struct {
	hits   atomic.Uint64
	byMode [4]atomic.Uint64
}

// hit is the blessed access shape: method calls, optionally through an
// array index.
func (c *counters) hit(mode int) {
	c.hits.Add(1)
	c.byMode[mode].Add(1)
}

// read uses index-only ranging and len, both allowed.
func read(c *counters) uint64 {
	n := uint64(0)
	for i := range c.byMode {
		n += c.byMode[i].Load()
	}
	if len(c.byMode) > 0 {
		n += c.hits.Load()
	}
	return n
}

// bad touches fields directly: assignment, copy, address-take, and a
// by-value range (which copies the atomics out).
func bad(c *counters) {
	c.hits = atomic.Uint64{} // want "field hits of counters touched directly"
	h := c.hits              // want "field hits of counters touched directly"
	_ = h
	p := &c.byMode // want "field byMode of counters touched directly"
	_ = p
	for _, v := range c.byMode { // want "field byMode of counters touched directly"
		_ = v.Load()
	}
}
