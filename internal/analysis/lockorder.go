package analysis

import (
	"go/ast"
	"go/types"
)

// LockOrder enforces the sharded facade's deadlock-freedom discipline
// on its own mutexes: every code path that accumulates more than one
// shard mutex must take them in ascending shard-index order (see
// stopTheWorld/lockShards in shard.go). Statically that means a loop
// whose body locks a shard mutex without unlocking it in the same
// iteration — a lock-accumulating loop — may only range over the shard
// slice itself, which is ascending by construction. Anything else
// (index sets, descending counters, map ranges) cannot be proven
// ordered here and needs an audited //hwlint:allow annotation stating
// why the order holds.
//
// Loops that lock and unlock within one iteration hold at most one
// shard mutex at a time and are always fine.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "shard mutexes accumulated in a loop must be acquired in ascending shard-index order",
	Run:  runLockOrder,
}

func runLockOrder(p *Pass) {
	funcDecls(p, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
				if rangesShardSlice(p.Info, loop) {
					// Ranging []*shard visits indices 0,1,2,... — the one
					// acquisition order every multi-shard locker agrees on.
					return true
				}
			default:
				return true
			}
			lockPos, hasLock, hasUnlock := loopLockUse(p.Info, body)
			if hasLock && !hasUnlock {
				p.Reportf(lockPos.Pos(), "shard mutex accumulated in a loop that does not range over the shard slice; ascending acquisition order is unproven")
			}
			return true
		})
	})
}

// rangesShardSlice reports whether loop ranges over a slice or array of
// (pointers to) shard.
func rangesShardSlice(info *types.Info, loop *ast.RangeStmt) bool {
	tv, ok := info.Types[loop.X]
	if !ok {
		return false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		return isShardType(t.Elem())
	case *types.Array:
		return isShardType(t.Elem())
	}
	return false
}

// loopLockUse scans a loop body (including nested statements, excluding
// function literals) for shard-mutex Lock and Unlock calls.
func loopLockUse(info *types.Info, body *ast.BlockStmt) (lockPos ast.Node, hasLock, hasUnlock bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch d := lockDelta(info, call); {
		case d > 0:
			if !hasLock {
				lockPos = call
			}
			hasLock = true
		case d < 0:
			hasUnlock = true
		}
		return true
	})
	if lockPos == nil {
		lockPos = body
	}
	return lockPos, hasLock, hasUnlock
}
