package analysis

import (
	"go/ast"
	"go/types"
)

// NondeterministicRange guards every place where Go's randomized map
// iteration order could leak into observable behavior: wire replies,
// DOT dumps, WAL records, victim choices. The detector's whole
// determinism story (differential STW-vs-snapshot testing, byte-
// identical reruns) rests on id-sorted iteration, so a `for range` over
// a map is flagged when its body
//
//   - writes output (fmt.Fprint*, or any Write* method call), or
//   - appends to a slice declared outside the loop that is never
//     passed to a sort.*/slices.Sort* call in the same function.
//
// Collecting map keys into a slice and sorting it is the blessed
// pattern and passes; so does writing into another map or folding into
// scalars, both of which are order-insensitive. Calls to closures
// declared earlier in the same function are scanned one level deep, so
// hiding the append inside a helper literal does not dodge the rule.
var NondeterministicRange = &Analyzer{
	Name: "maprange",
	Doc:  "map iteration must not feed output or unsorted slices; sort first",
	Run:  runNondeterministicRange,
}

func runNondeterministicRange(p *Pass) {
	funcDecls(p, func(fd *ast.FuncDecl) {
		sorted := sortedObjects(p, fd)
		lits := localClosures(p, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[loop.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			scanMapRangeBody(p, loop, loop.Body, sorted, lits, map[*ast.FuncLit]bool{})
			return true
		})
	})
}

// sortedObjects collects the variables passed to a sort.* or
// slices.Sort* call anywhere in the function: appending to one of these
// inside a map range is fine, the order is re-established afterwards.
func sortedObjects(p *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(p.Info, call)
		if name == "" || len(call.Args) == 0 {
			return true
		}
		switch name {
		case "sort.Slice", "sort.SliceStable", "sort.Sort", "sort.Stable",
			"sort.Strings", "sort.Ints", "sort.Float64s",
			"slices.Sort", "slices.SortFunc", "slices.SortStableFunc":
			if obj := rootObject(p.Info, call.Args[0]); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// localClosures maps named function literals (`app := func(...) {...}`)
// to their bodies so range-body scans can follow one call level.
func localClosures(p *Pass, fd *ast.FuncDecl) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		if obj := p.Info.Defs[id]; obj != nil {
			out[obj] = lit
		} else if obj := p.Info.Uses[id]; obj != nil {
			out[obj] = lit
		}
		return true
	})
	return out
}

// scanMapRangeBody reports order-sensitive operations in one map-range
// body (or a closure it calls).
func scanMapRangeBody(p *Pass, loop *ast.RangeStmt, body ast.Node, sorted map[types.Object]bool, lits map[types.Object]*ast.FuncLit, seen map[*ast.FuncLit]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := calleeName(p.Info, n); name == "fmt.Fprint" || name == "fmt.Fprintf" || name == "fmt.Fprintln" {
				p.Reportf(n.Pos(), "%s inside map iteration: output order is randomized; iterate sorted keys instead", name)
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal && isWriteMethod(sel.Sel.Name) {
					p.Reportf(n.Pos(), "%s call inside map iteration: output order is randomized; iterate sorted keys instead", sel.Sel.Name)
					return true
				}
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if lit := lits[p.Info.Uses[id]]; lit != nil && !seen[lit] {
					seen[lit] = true
					scanMapRangeBody(p, loop, lit.Body, sorted, lits, seen)
				}
			}
		case *ast.AssignStmt:
			checkAppend(p, loop, n, sorted)
		}
		return true
	})
}

// isWriteMethod matches the io.Writer / strings.Builder / bufio.Writer
// output family.
func isWriteMethod(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo":
		return true
	}
	return false
}

// checkAppend flags `x = append(x, ...)` when x is declared outside the
// map range and never sorted in this function.
func checkAppend(p *Pass, loop *ast.RangeStmt, as *ast.AssignStmt, sorted map[types.Object]bool) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || p.Info.Uses[id] != nil && p.Info.Uses[id].Pkg() != nil {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		obj := rootObject(p.Info, as.Lhs[i])
		if obj == nil || sorted[obj] {
			continue
		}
		if obj.Pos() > loop.Pos() && obj.Pos() < loop.End() {
			continue // accumulator lives inside the loop; order cannot escape
		}
		p.Reportf(as.Pos(), "append to %s inside map iteration without a later sort: element order is randomized", obj.Name())
	}
}

// rootObject resolves the base identifier of x, x.f, x[i] etc.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}
