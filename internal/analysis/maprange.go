package analysis

import (
	"go/ast"
	"go/types"
)

// NondeterministicRange guards every place where Go's randomized map
// iteration order could leak into observable behavior: wire replies,
// DOT dumps, WAL records, victim choices. The detector's whole
// determinism story (differential STW-vs-snapshot testing, byte-
// identical reruns) rests on id-sorted iteration, so a `for range` over
// a map is flagged when its body
//
//   - writes output (fmt.Fprint*, or any Write* method call), or
//   - appends to a slice declared outside the loop that is never
//     passed to a sort.*/slices.Sort* call in the same function.
//
// Collecting map keys into a slice and sorting it is the blessed
// pattern and passes; so does writing into another map or folding into
// scalars, both of which are order-insensitive. Calls to closures
// declared earlier in the same function are scanned one level deep, so
// hiding the append inside a helper literal does not dodge the rule.
//
// Sortedness is established package-wide, not per function: a field
// appended under a map range is fine when any function in the package
// sorts that field of that type (the CopyShard/FinishShard split, where
// sorting deliberately runs outside the shard mutex), and passing the
// accumulator to a package function that sorts its parameter counts as
// sorting it (topoSort-style helpers), including through one level of
// delegation.
var NondeterministicRange = &Analyzer{
	Name: "maprange",
	Doc:  "map iteration must not feed output or unsorted slices; sort first",
	Run:  runNondeterministicRange,
}

func runNondeterministicRange(p *Pass) {
	sortedFields := packageSortedFields(p)
	sorters := packageSorters(p)
	funcDecls(p, func(fd *ast.FuncDecl) {
		sorted := sortedObjects(p, fd, sorters)
		lits := localClosures(p, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[loop.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			scanMapRangeBody(p, loop, loop.Body, sorted, sortedFields, lits, map[*ast.FuncLit]bool{})
			return true
		})
	})
}

// isSortCall matches the sort.*/slices.Sort* family by qualified name.
func isSortCall(name string) bool {
	switch name {
	case "sort.Slice", "sort.SliceStable", "sort.Sort", "sort.Stable",
		"sort.Strings", "sort.Ints", "sort.Float64s",
		"slices.Sort", "slices.SortFunc", "slices.SortStableFunc":
		return true
	}
	return false
}

// sortedObjects collects the variables whose order is re-established in
// this function: passed to a sort.*/slices.Sort* call, or to a package
// function known to sort that parameter (see packageSorters).
func sortedObjects(p *Pass, fd *ast.FuncDecl, sorters map[types.Object]map[int]bool) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if isSortCall(calleeName(p.Info, call)) {
			if obj := rootObject(p.Info, call.Args[0]); obj != nil {
				out[obj] = true
			}
			return true
		}
		if idxs := sorters[callObject(p.Info, call)]; idxs != nil {
			for i := range call.Args {
				if idxs[i] {
					if obj := rootObject(p.Info, call.Args[i]); obj != nil {
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// callObject resolves the called function or method to its object.
func callObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// packageSorters finds every function in the package that sorts one of
// its slice parameters — directly, or by handing it to another sorter —
// mapping the function object to the sorted parameter indexes. The
// delegation chain is followed to a fixpoint.
func packageSorters(p *Pass) map[types.Object]map[int]bool {
	out := map[types.Object]map[int]bool{}
	paramIdx := func(fd *ast.FuncDecl, obj types.Object) int {
		if fd.Type.Params == nil || obj == nil {
			return -1
		}
		i := 0
		for _, f := range fd.Type.Params.List {
			for _, id := range f.Names {
				if p.Info.Defs[id] == obj {
					return i
				}
				i++
			}
		}
		return -1
	}
	mark := func(fd *ast.FuncDecl, idx int) bool {
		obj := p.Info.Defs[fd.Name]
		if obj == nil || idx < 0 {
			return false
		}
		if out[obj] == nil {
			out[obj] = map[int]bool{}
		}
		if out[obj][idx] {
			return false
		}
		out[obj][idx] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		funcDecls(p, func(fd *ast.FuncDecl) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if isSortCall(calleeName(p.Info, call)) {
					if mark(fd, paramIdx(fd, rootObject(p.Info, call.Args[0]))) {
						changed = true
					}
					return true
				}
				if idxs := out[callObject(p.Info, call)]; idxs != nil {
					for i := range call.Args {
						if idxs[i] {
							if mark(fd, paramIdx(fd, rootObject(p.Info, call.Args[i]))) {
								changed = true
							}
						}
					}
				}
				return true
			})
		})
	}
	return out
}

// packageSortedFields collects "Type.field" pairs sorted anywhere in
// the package: an append to such a field under a map range is ordered
// by the time any consumer iterates it, even when the sort lives in a
// different function (run outside the mutex on purpose).
func packageSortedFields(p *Pass) map[string]bool {
	out := map[string]bool{}
	funcDecls(p, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !isSortCall(calleeName(p.Info, call)) {
				return true
			}
			if key := fieldKey(p.Info, call.Args[0]); key != "" {
				out[key] = true
			}
			return true
		})
	})
	return out
}

// fieldKey renders expression `x.f` as "TypeOfX.f", or "".
func fieldKey(info *types.Info, e ast.Expr) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return ""
	}
	n := namedType(tv.Type)
	if n == nil {
		return ""
	}
	return n.Obj().Name() + "." + sel.Sel.Name
}

// localClosures maps named function literals (`app := func(...) {...}`)
// to their bodies so range-body scans can follow one call level.
func localClosures(p *Pass, fd *ast.FuncDecl) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		if obj := p.Info.Defs[id]; obj != nil {
			out[obj] = lit
		} else if obj := p.Info.Uses[id]; obj != nil {
			out[obj] = lit
		}
		return true
	})
	return out
}

// scanMapRangeBody reports order-sensitive operations in one map-range
// body (or a closure it calls).
func scanMapRangeBody(p *Pass, loop *ast.RangeStmt, body ast.Node, sorted map[types.Object]bool, sortedFields map[string]bool, lits map[types.Object]*ast.FuncLit, seen map[*ast.FuncLit]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := calleeName(p.Info, n); name == "fmt.Fprint" || name == "fmt.Fprintf" || name == "fmt.Fprintln" {
				p.Reportf(n.Pos(), "%s inside map iteration: output order is randomized; iterate sorted keys instead", name)
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal && isWriteMethod(sel.Sel.Name) {
					p.Reportf(n.Pos(), "%s call inside map iteration: output order is randomized; iterate sorted keys instead", sel.Sel.Name)
					return true
				}
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if lit := lits[p.Info.Uses[id]]; lit != nil && !seen[lit] {
					seen[lit] = true
					scanMapRangeBody(p, loop, lit.Body, sorted, sortedFields, lits, seen)
				}
			}
		case *ast.AssignStmt:
			checkAppend(p, loop, n, sorted, sortedFields)
		}
		return true
	})
}

// isWriteMethod matches the io.Writer / strings.Builder / bufio.Writer
// output family.
func isWriteMethod(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo":
		return true
	}
	return false
}

// checkAppend flags `x = append(x, ...)` when x is declared outside the
// map range and never sorted — in this function (sorted objects) or
// anywhere in the package, for a field destination (sortedFields).
func checkAppend(p *Pass, loop *ast.RangeStmt, as *ast.AssignStmt, sorted map[types.Object]bool, sortedFields map[string]bool) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || p.Info.Uses[id] != nil && p.Info.Uses[id].Pkg() != nil {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		if key := fieldKey(p.Info, as.Lhs[i]); key != "" && sortedFields[key] {
			continue
		}
		obj := rootObject(p.Info, as.Lhs[i])
		if obj == nil || sorted[obj] {
			continue
		}
		if obj.Pos() > loop.Pos() && obj.Pos() < loop.End() {
			continue // accumulator lives inside the loop; order cannot escape
		}
		p.Reportf(as.Pos(), "append to %s inside map iteration without a later sort: element order is randomized", obj.Name())
	}
}

// rootObject resolves the base identifier of x, x.f, x[i] etc.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}
