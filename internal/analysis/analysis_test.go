package analysis

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// moduleRoot locates the module directory so fixture patterns resolve
// the same way no matter where go test chdirs us.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// wantRe extracts the expectation from a `// want "substring"` comment.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// want is one fixture expectation: a diagnostic whose message contains
// Substr must be reported on File line Line.
type want struct {
	File   string
	Line   int
	Substr string
	hit    bool
}

// collectWants scans a fixture directory's sources for expectations.
func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRe.FindStringSubmatch(sc.Text()); m != nil {
				out = append(out, &want{File: path, Line: line, Substr: m[1]})
			}
		}
		f.Close()
	}
	return out
}

// TestFixtures runs each analyzer over its seeded-violation fixture
// package and requires the diagnostics to match the `// want`
// annotations exactly: every want hit, nothing extra reported, and the
// fixtures' //hwlint:allow annotations honored.
func TestFixtures(t *testing.T) {
	root := moduleRoot(t)
	cases := []struct {
		name      string
		analyzers []*Analyzer
	}{
		{"lockorder", []*Analyzer{LockOrder}},
		{"callbacklock", []*Analyzer{CallbackUnderLock}},
		{"maprange", []*Analyzer{NondeterministicRange}},
		{"atomics", []*Analyzer{AtomicsOnly}},
		// The shard mutation epoch: bumped under the owning shard's
		// mutex but read unlocked by the incremental snapshot's skip
		// decision, so direct field access is a race by construction.
		{"shardepoch", []*Analyzer{AtomicsOnly}},
		// The flight-recorder fixture is checked by two analyzers at
		// once: emission sites must be outside shard mutexes
		// (callbacklock) and the ring internals behind their methods
		// (atomics).
		{"journalemit", []*Analyzer{CallbackUnderLock, AtomicsOnly}},
		// The flat-combining fixture is likewise checked by two: the
		// combiner's drain loop must do no observer work under the
		// shard mutex (callbacklock), and the batch path's walks over
		// shards must ascend by index (lockorder).
		{"flatcombine", []*Analyzer{CallbackUnderLock, LockOrder}},
		// The interprocedural gates: //hwlint:hotpath budgets counted
		// through helpers, recursion and devirtualized calls, and the
		// emit/parse wire-vocabulary agreement.
		{"allocbudget", []*Analyzer{AllocBudget}},
		{"wireschema", []*Analyzer{WireSchema}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rel := filepath.Join("internal", "analysis", "testdata", "src", tc.name)
			pkgs, err := Load(root, "./"+filepath.ToSlash(rel))
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("Load returned %d packages, want 1", len(pkgs))
			}
			diags := Run(pkgs, tc.analyzers)
			wants := collectWants(t, filepath.Join(root, rel))
			if len(wants) == 0 {
				t.Fatal("fixture has no // want annotations; it proves nothing")
			}
		next:
			for _, d := range diags {
				for _, w := range wants {
					if !w.hit && d.Pos.Filename == w.File && d.Pos.Line == w.Line && strings.Contains(d.Message, w.Substr) {
						w.hit = true
						continue next
					}
				}
				t.Errorf("unexpected diagnostic: %s", d)
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("missing diagnostic at %s:%d containing %q", w.File, w.Line, w.Substr)
				}
			}
		})
	}
}

// TestModuleClean runs the full analyzer set over the real module — the
// same invocation as `make lint` — and requires zero findings: every
// real violation is fixed and every allowlist entry still suppresses
// something.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := moduleRoot(t)
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("Load matched only %d packages; pattern resolution is broken", len(pkgs))
	}
	diags := Run(pkgs, All)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
