package analysis

import (
	"go/ast"
	"go/types"
)

// Shared type classification: the analyzers key on shapes, not on
// hard-coded import paths, so the same rules apply to the real module
// and to the fixture packages under testdata.

// namedType returns the named type behind t, unwrapping one pointer.
func namedType(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isShardType reports whether t is (a pointer to) a struct type named
// "shard" — the sharded lock-table stripe whose mutex the lockorder and
// callbacklock rules govern.
func isShardType(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj().Name() != "shard" {
		return false
	}
	_, ok := n.Underlying().(*types.Struct)
	return ok
}

// shardMutexCall reports whether call is `X.mu.Lock()` or
// `X.mu.Unlock()` with X of shard type, returning the method name.
func shardMutexCall(info *types.Info, call *ast.CallExpr) (method string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock") {
		return "", false
	}
	mu, ok := sel.X.(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != "mu" {
		return "", false
	}
	tv, ok := info.Types[mu.X]
	if !ok || !isShardType(tv.Type) {
		return "", false
	}
	return sel.Sel.Name, true
}

// lockDelta classifies a call's effect on the set of held shard
// mutexes: +1 for a shard Lock (or the lock-accumulating manager
// helpers stopTheWorld/lockShards), -1 for the matching unlocks, 0 for
// anything else.
func lockDelta(info *types.Info, call *ast.CallExpr) int {
	if method, ok := shardMutexCall(info, call); ok {
		if method == "Lock" {
			return 1
		}
		return -1
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "stopTheWorld", "lockShards":
			return 1
		case "resumeTheWorld", "unlockShards":
			return -1
		}
	}
	return 0
}

// calleeName returns the package-qualified name of a called package
// function ("sort.Slice") or "" when call is not one.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Name() + "." + sel.Sel.Name
	}
	return ""
}

// methodOn resolves a call of the form recv.M(...) to the name of the
// receiver's named type and its package name ("metrics", "Counter",
// "Inc"). ok is false for non-method calls.
func methodOn(info *types.Info, call *ast.CallExpr) (pkgName, typeName, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	s, isMethod := info.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal {
		return "", "", "", false
	}
	n := namedType(s.Recv())
	if n == nil {
		return "", "", "", false
	}
	pkg := ""
	if n.Obj().Pkg() != nil {
		pkg = n.Obj().Pkg().Name()
	}
	return pkg, n.Obj().Name(), sel.Sel.Name, true
}

// terminates reports whether the statement list always transfers
// control out (return, branch, or panic as its last statement), i.e.
// code after the enclosing branch is unreachable from it.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

// funcDecls yields every function declaration with a body in the pass.
func funcDecls(p *Pass, f func(*ast.FuncDecl)) {
	for _, file := range p.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				f(fd)
			}
		}
	}
}
