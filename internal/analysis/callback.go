package analysis

import (
	"go/ast"
	"go/types"
)

// CallbackUnderLock enforces the callback discipline documented on
// Tracer and Options.OnVictim: user-visible hooks and heavyweight
// metric operations fire outside the shard mutexes, because anything a
// callback does (logging, exporting, blocking) would otherwise stall
// every transaction hashed to that shard. The analyzer walks each
// function intraprocedurally, tracking how many shard mutexes are held
// (shard mu.Lock/Unlock, plus the stopTheWorld/resumeTheWorld and
// lockShards/unlockShards accumulators), and reports, while any is
// held:
//
//   - calls to methods of a Tracer interface;
//   - calls to metrics Histogram methods (Observe walks 34 buckets);
//   - flight-recorder emissions (journal Ring.Emit) — the write itself
//     is lock-free, but it reads the clock and packs a record, and the
//     journal's contract is that the hot path journals after the shard
//     mutex is released, next to the tracer hooks;
//   - channel sends, unless inside a select with a default clause
//     (the shard waker's non-blocking token deposit).
//
// Counter.Inc/Add/Load are a built-in audited exception: a Counter is
// one atomic word, and the per-shard counters are deliberately bumped
// while the shard mutex is held so the updates ride on its existing
// traffic (see shardMetrics).
var CallbackUnderLock = &Analyzer{
	Name: "callbacklock",
	Doc:  "no tracer hook, histogram observation, or blocking channel send while a shard mutex is held",
	Run:  runCallbackUnderLock,
}

func runCallbackUnderLock(p *Pass) {
	funcDecls(p, func(fd *ast.FuncDecl) {
		w := &lockWalker{p: p}
		w.stmts(fd.Body.List, 0)
	})
}

// lockWalker walks a function's statements in order, carrying the
// number of shard mutexes held. Branches whose body terminates (early
// return after an error-path Unlock) do not leak their depth into the
// fall-through path; branches that do not terminate contribute their
// maximum, erring toward "held" so drift flags rather than hides.
type lockWalker struct {
	p *Pass
	// deferredUnlock is set once a `defer mu.Unlock()` is registered:
	// later-registered deferred calls run before it, i.e. still under
	// the lock.
	deferredUnlock bool
}

func (w *lockWalker) stmts(list []ast.Stmt, depth int) int {
	for _, s := range list {
		depth = w.stmt(s, depth)
	}
	return depth
}

func (w *lockWalker) stmt(s ast.Stmt, depth int) int {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if d := lockDelta(w.p.Info, call); d != 0 {
				return depth + d
			}
		}
		w.scan(s, depth)
	case *ast.DeferStmt:
		if lockDelta(w.p.Info, s.Call) < 0 {
			// The unlock fires at function end; everything below runs
			// with the mutex still held, so keep the depth.
			w.deferredUnlock = true
			return depth
		}
		if depth > 0 || w.deferredUnlock {
			w.scan(s.Call, depth+1) // runs before the deferred unlock
		}
	case *ast.BlockStmt:
		return w.stmts(s.List, depth)
	case *ast.IfStmt:
		w.scanMaybe(s.Init, depth)
		w.scan(s.Cond, depth)
		dBody := w.stmts(s.Body.List, depth)
		dElse := depth
		var elseTerm bool
		if s.Else != nil {
			dElse = w.stmt(s.Else, depth)
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				elseTerm = terminates(blk.List)
			}
		}
		switch {
		case terminates(s.Body.List):
			return dElse
		case elseTerm:
			return dBody
		default:
			return max(dBody, dElse)
		}
	case *ast.ForStmt:
		w.scanMaybe(s.Init, depth)
		if s.Cond != nil {
			w.scan(s.Cond, depth)
		}
		return w.stmts(s.Body.List, depth)
	case *ast.RangeStmt:
		w.scan(s.X, depth)
		return w.stmts(s.Body.List, depth)
	case *ast.SwitchStmt:
		w.scanMaybe(s.Init, depth)
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, depth)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, depth)
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if send, ok := cc.Comm.(*ast.SendStmt); ok && !hasDefault && depth > 0 {
				w.p.Reportf(send.Pos(), "blocking channel send while a shard mutex is held (no default clause)")
			}
			w.stmts(cc.Body, depth)
		}
	case *ast.SendStmt:
		if depth > 0 {
			w.p.Reportf(s.Pos(), "blocking channel send while a shard mutex is held")
		}
		w.scan(s.Value, depth)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, depth)
	case *ast.GoStmt:
		// The goroutine runs without our locks; only its arguments are
		// evaluated here.
		for _, a := range s.Call.Args {
			if _, ok := a.(*ast.FuncLit); !ok {
				w.scan(a, depth)
			}
		}
	default:
		w.scan(s, depth)
	}
	return depth
}

func (w *lockWalker) scanMaybe(s ast.Stmt, depth int) {
	if s != nil {
		w.scan(s, depth)
	}
}

// scan inspects one statement or expression subtree for calls that must
// not run under a shard mutex. Function-literal bodies are skipped:
// they execute when called, not where written. Beyond the directly
// flagged operations, every call resolved through the module callgraph
// is checked against its interprocedural summary: a callee that — any
// number of frames down — emits to the journal, observes a histogram,
// fires a tracer, blocks on a channel or acquires further shard
// mutexes is reported here at the call site, with the chain that
// reaches the effect.
func (w *lockWalker) scan(n ast.Node, depth int) {
	if depth <= 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if msg := flaggedCall(w.p.Info, call); msg != "" {
			w.p.Reportf(call.Pos(), "%s while a shard mutex is held", msg)
			return true
		}
		w.scanSummary(call, depth)
		return true
	})
}

// scanSummary reports a resolved callee whose summary carries held-lock
// effects. Lock-bookkeeping calls (shard Lock/Unlock, the stop-the-
// world accumulators) are depth arithmetic handled by the statement
// walk, not effects.
func (w *lockWalker) scanSummary(call *ast.CallExpr, depth int) {
	if w.p.Mod == nil || lockDelta(w.p.Info, call) != 0 {
		return
	}
	callees, _, _, _ := w.p.Mod.resolveCall(pkgOf(w.p), call)
	reported := map[string]bool{}
	for _, callee := range callees {
		for _, e := range w.p.Mod.Effects(callee) {
			if reported[e.desc] {
				continue
			}
			reported[e.desc] = true
			chain := shortFQN(callee.FQN)
			if e.path != "" {
				chain += " -> " + e.path
			}
			w.p.Reportf(call.Pos(), "call to %s may perform %s while a shard mutex is held (via %s)",
				shortFQN(callee.FQN), e.desc, chain)
		}
	}
}

// pkgOf rebuilds the *Package view a Pass was created from, for
// callgraph resolution.
func pkgOf(p *Pass) *Package {
	return &Package{Fset: p.Fset, Files: p.Files, Types: p.Pkg, Info: p.Info}
}

// flaggedCall classifies a call that must not run under a shard mutex,
// returning a description or "".
func flaggedCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if n := namedType(s.Recv()); n != nil {
			if _, isIface := n.Underlying().(*types.Interface); isIface && n.Obj().Name() == "Tracer" {
				return "Tracer callback " + sel.Sel.Name
			}
		}
	}
	if pkg, typ, method, ok := methodOn(info, call); ok {
		if pkg == "metrics" && typ == "Histogram" {
			return "metrics.Histogram." + method
		}
		if pkg == "journal" && typ == "Ring" && method == "Emit" {
			return "journal.Ring.Emit"
		}
	}
	return ""
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
