package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// AllocBudget enforces //hwlint:hotpath allocs=N annotations: a
// function so marked may reach at most N distinct heap-allocation
// sites, counted over everything it (transitively) calls through the
// module callgraph. The 6/1/0 allocs/op numbers the benchmarks gate on
// (BENCH_PR6/PR8) become a compile-time property instead of a
// bench-only one: a new make/append/escape/external call on the hot
// path fails lint, naming the site and the call chain that reaches it.
//
// Counting is by site, not by execution: a site inside a loop counts
// once (dynamic growth stays benchsmoke's job), shared sites reached
// through several paths count once, and recursion adds nothing beyond
// the cycle's own sites. An unresolved external call (fmt, sort with
// closures, anything outside the loaded source set that is not in the
// audited intrinsic table) is unbounded and always a violation.
//
// A cold branch inside a budgeted function — the context-cancellation
// aborts, say — is excused with //hwlint:allow allocbudget on the call
// line, which prunes that whole call edge from the walk; a single
// amortized site (a freelist's miss-path literal) is excused the same
// way on its own line. Both remain audited: an allow that prunes
// nothing is reported.
var AllocBudget = &Analyzer{
	Name:   "allocbudget",
	Doc:    "//hwlint:hotpath allocs=N functions stay within their statically counted allocation budget",
	Run:    runAllocBudget,
	Module: true,
}

const hotpathPrefix = "//hwlint:hotpath"

// hotpathBudget parses a function's doc comment for the annotation,
// returning (budget, the comment, true) when present.
func hotpathBudget(fd *ast.FuncDecl) (int, *ast.Comment, bool) {
	if fd.Doc == nil {
		return 0, nil, false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathPrefix) {
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, hotpathPrefix))
			if v, ok := strings.CutPrefix(rest, "allocs="); ok {
				if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n >= 0 {
					return n, c, true
				}
			}
			return 0, c, false // malformed: reported by the caller
		}
	}
	return 0, nil, false
}

// reachedSite is one allocation site found by the budget walk, with the
// call chain that reaches it.
type reachedSite struct {
	site allocSite
	path string
}

func runAllocBudget(p *Pass) {
	mod := p.Mod
	for _, pkg := range mod.Pkgs {
		path := pkg.Types.Path()
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				budget, comment, ok := hotpathBudget(fd)
				if comment != nil && !ok {
					p.Reportf(comment.Pos(), "malformed annotation %q: want %s allocs=<n>", comment.Text, hotpathPrefix)
					continue
				}
				if comment == nil {
					continue
				}
				fn := mod.fns[declFQN(path, fd)]
				if fn == nil {
					continue
				}
				checkBudget(p, fn, budget)
			}
		}
	}
}

// checkBudget walks fn's reachable call edges collecting allocation
// sites, dedup'd by position. Edges and sites covered by an
// //hwlint:allow allocbudget annotation are pruned (and the annotation
// counted as used).
func checkBudget(p *Pass, root *Fn, budget int) {
	sites := map[token.Pos]reachedSite{}
	seen := map[*Fn]bool{}
	var visit func(fn *Fn, path string)
	visit = func(fn *Fn, path string) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		for _, s := range fn.allocs {
			if _, dup := sites[s.pos]; dup {
				continue
			}
			if p.Allowed("allocbudget", s.pos) {
				continue
			}
			sites[s.pos] = reachedSite{site: s, path: path}
		}
		for _, e := range fn.calls {
			if e.elided {
				// Optional-hook guard (if tracer != nil): the budget holds
				// for the hook-free configuration the benchmarks measure.
				continue
			}
			if p.Allowed("allocbudget", e.pos) {
				continue
			}
			next := shortFQN(e.callee.FQN)
			if path != "" {
				next = path + " -> " + next
			}
			visit(e.callee, next)
		}
	}
	visit(root, "")

	ordered := make([]reachedSite, 0, len(sites))
	for _, s := range sites {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].site.unbounded != ordered[j].site.unbounded {
			return ordered[i].site.unbounded
		}
		return ordered[i].site.pos < ordered[j].site.pos
	})

	for _, s := range ordered {
		if s.site.unbounded {
			p.Reportf(root.Decl.Name.Pos(), "%s: hot path budget allocs=%d but allocations are statically unbounded: %s at %s%s",
				shortFQN(root.FQN), budget, s.site.desc, p.Fset.Position(s.site.pos), via(s.path))
			return
		}
	}
	if len(ordered) > budget {
		var b strings.Builder
		fmt.Fprintf(&b, "%s: hot path budget allocs=%d exceeded: %d reachable allocation sites", shortFQN(root.FQN), budget, len(ordered))
		for i, s := range ordered {
			if i == 6 {
				fmt.Fprintf(&b, "; and %d more", len(ordered)-i)
				break
			}
			fmt.Fprintf(&b, "; %s at %s%s", s.site.desc, p.Fset.Position(s.site.pos), via(s.path))
		}
		p.Reportf(root.Decl.Name.Pos(), "%s", b.String())
	}
}

func via(path string) string {
	if path == "" {
		return ""
	}
	return " (via " + path + ")"
}
