// Package analysis is the stdlib-only static-analysis framework behind
// cmd/hwlint. It loads and type-checks the module's packages with
// go/parser + go/types (export data comes from `go list -export`, so no
// golang.org/x/tools dependency is needed, matching the repo's
// zero-dependency ethos) and runs a small set of analyzers that
// mechanize the project's concurrency and performance discipline:
//
//	lockorder     shard mutexes accumulated in a loop must be taken in
//	              ascending index order (range over the shard slice)
//	callbacklock  no tracer hook, histogram observation or blocking
//	              channel send between a shard Lock and its Unlock —
//	              directly or through any reachable module function
//	maprange      no wire/DOT output or unsorted slice accumulation
//	              from `for range` over a map
//	atomics       fields of the padded metric structs are touched only
//	              through their own (atomic) methods
//	allocbudget   //hwlint:hotpath allocs=N functions stay within N
//	              reachable allocation sites, counted over the whole
//	              call tree with recursion widened conservatively
//	wireschema    //hwlint:wire emit/parse endpoints of a channel agree
//	              on their key vocabulary (emitter format strings vs
//	              parser switch labels, json tags, manifests)
//
// The interprocedural rules share one module-wide index (Module): a
// callgraph over static calls plus method-set devirtualized interface
// calls, with per-function summaries of blocking effects, allocation
// sites and parameter escapes propagated to a fixpoint.
//
// A finding that is intentional is suppressed with an annotation that
// must carry a reason:
//
//	//hwlint:allow <rule> -- <reason>
//
// placed on the offending line, on the line above it, or in the doc
// comment of the enclosing function (which then covers the whole
// function). Annotations without a reason, and annotations that no
// longer suppress anything, are themselves reported — the allowlist can
// only hold audited, explained exceptions.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding: a rule violation at a position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the usual file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Rule, d.Message)
}

// Analyzer is one named check. Per-package analyzers run once per
// loaded package; Module analyzers run once over the whole loaded set
// (Pass.Pkg/Files/Info are nil for those — they work through Pass.Mod).
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(*Pass)
	Module bool
}

// All is the analyzer set cmd/hwlint runs.
var All = []*Analyzer{LockOrder, CallbackUnderLock, NondeterministicRange, AtomicsOnly, AllocBudget, WireSchema}

// Pass carries one package's parsed and type-checked state to an
// analyzer, plus the sink diagnostics are reported into. Mod is the
// module-wide index (callgraph + summaries) shared by every pass.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Mod   *Module

	rule   string
	diags  *[]Diagnostic
	allows *allowTable
}

// Reportf records a finding for the running analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether an //hwlint:allow annotation for rule covers
// pos, marking the entry used. Analyzers that prune work behind an
// allow (allocbudget skips a whole call edge) consult this directly so
// the annotation still registers as load-bearing in the unused-allow
// audit.
func (p *Pass) Allowed(rule string, pos token.Pos) bool {
	return p.allows.hit(rule, p.Fset.Position(pos))
}

// allowEntry is one parsed //hwlint:allow annotation: it suppresses
// diagnostics of Rule on lines [From, To] of File.
type allowEntry struct {
	Rule     string
	Reason   string
	File     string
	From, To int
	Pos      token.Position
	used     bool
}

const allowPrefix = "//hwlint:allow"

// collectAllows parses the //hwlint:allow annotations of a package. An
// annotation inside a function's doc comment covers the whole function;
// any other covers its own line and the next (so it can sit above the
// statement it excuses or at the end of it).
func collectAllows(fset *token.FileSet, files []*ast.File, sink *[]Diagnostic) []*allowEntry {
	var out []*allowEntry
	for _, f := range files {
		// Map doc-comment positions to the span of their function.
		type span struct{ from, to int }
		docSpan := map[*ast.CommentGroup]span{}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			docSpan[fd.Doc] = span{fset.Position(fd.Pos()).Line, fset.Position(fd.End()).Line}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				rule, reason, found := strings.Cut(rest, "--")
				rule, reason = strings.TrimSpace(rule), strings.TrimSpace(reason)
				if rule == "" || !found || reason == "" {
					*sink = append(*sink, Diagnostic{
						Pos:  pos,
						Rule: "allowlist",
						Message: fmt.Sprintf("malformed annotation %q: want %s <rule> -- <reason>",
							c.Text, allowPrefix),
					})
					continue
				}
				e := &allowEntry{Rule: rule, Reason: reason, File: pos.Filename, From: pos.Line, To: pos.Line + 1, Pos: pos}
				if s, ok := docSpan[cg]; ok {
					e.From, e.To = s.from, s.to
				}
				out = append(out, e)
			}
		}
	}
	return out
}

// allowTable is the module-wide allowlist, shared (and locked) across
// the concurrently running per-package passes.
type allowTable struct {
	mu      sync.Mutex
	entries []*allowEntry
}

// hit finds an entry covering (rule, pos), marking it used.
func (t *allowTable) hit(rule string, pos token.Position) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.entries {
		if e.Rule == rule && e.File == pos.Filename && pos.Line >= e.From && pos.Line <= e.To {
			e.used = true
			return true
		}
	}
	return false
}

// Run builds the module index (callgraph + summaries), executes the
// per-package analyzers over every package on a worker pool, then the
// module-level analyzers once, applies the allowlist, and returns the
// surviving diagnostics sorted by position. Unused and malformed allow
// annotations are reported as findings of the "allowlist" pseudo-rule.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	at := &allowTable{}
	for _, pkg := range pkgs {
		at.entries = append(at.entries, collectAllows(pkg.Fset, pkg.Files, &all)...)
	}
	mod := BuildModule(pkgs)

	var perPkg, modWide []*Analyzer
	for _, a := range analyzers {
		if a.Module {
			modWide = append(modWide, a)
		} else {
			perPkg = append(perPkg, a)
		}
	}

	// Per-package analyzers are independent of each other: fan the
	// packages out over a bounded pool and keep the results in package
	// order (the final position sort makes the output deterministic
	// regardless).
	results := make([][]Diagnostic, len(pkgs))
	sem := make(chan struct{}, max(1, runtime.NumCPU()))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, pkg *Package) {
			defer wg.Done()
			defer func() { <-sem }()
			var diags []Diagnostic
			for _, a := range perPkg {
				p := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, Mod: mod, rule: a.Name, diags: &diags, allows: at}
				a.Run(p)
			}
			results[i] = diags
		}(i, pkg)
	}
	wg.Wait()

	var diags []Diagnostic
	for _, r := range results {
		diags = append(diags, r...)
	}
	if len(pkgs) > 0 {
		for _, a := range modWide {
			p := &Pass{Fset: pkgs[0].Fset, Mod: mod, rule: a.Name, diags: &diags, allows: at}
			a.Run(p)
		}
	}

	for _, d := range diags {
		if d.Rule != "allowlist" && at.hit(d.Rule, d.Pos) {
			continue
		}
		all = append(all, d)
	}
	for _, e := range at.entries {
		if !e.used {
			all = append(all, Diagnostic{
				Pos:     e.Pos,
				Rule:    "allowlist",
				Message: fmt.Sprintf("annotation suppresses nothing: %s -- %s", e.Rule, e.Reason),
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return all
}
