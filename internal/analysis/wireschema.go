package analysis

import (
	"go/ast"
	"go/token"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// WireSchema cross-checks the keys two sides of a wire format agree
// on: the STATS key=value line the lockservice server builds against
// the switches in Client.Stats that consume it, the detector's
// ActivationReport JSON against the PhaseTotals mirror that re-parses
// a subset, the hwtrace report schema against the manifest CI greps —
// the copy_ns/acquire_ns drift PR 8 fixed by hand is exactly the bug
// class this kills at lint time.
//
// Endpoints declare themselves with a marker:
//
//	//hwlint:wire emit <channel> [prefix=<p>]
//	//hwlint:wire parse <channel> [subset] [prefix=<p>]
//
// placed on a function declaration (keys are extracted from its string
// literals: every `key=%` directive, or every token starting with the
// given prefix), on a struct type declaration (keys are the fields'
// json tags), or on a []string variable (the literal elements — a
// manifest). The analyzer then enforces, per channel:
//
//   - both sides exist: an emitter with no parser (or vice versa) is a
//     finding — a marker pointing at nothing is stale;
//   - every parsed key is emitted by someone: a parser case for a key
//     the server no longer sends is dead wire code;
//   - a parser not marked `subset` covers the full emit set: a new
//     emitted key must be consumed (or the parser downgraded to subset
//     deliberately);
//   - switch drift inside one parser: when a parsing function holds
//     several switches over the same keys (validate + assign), any
//     switch covering more than half the function's key set must cover
//     all of it — the two-switch skew that silently drops a field.
var WireSchema = &Analyzer{
	Name:   "wireschema",
	Doc:    "emitted wire/schema keys and the code that parses them stay in sync",
	Run:    runWireSchema,
	Module: true,
}

const wirePrefix = "//hwlint:wire"

var (
	keyDirectiveRe = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)=%`)
	keyTokenRe     = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)
)

// wireEndpoint is one marked emitter or parser.
type wireEndpoint struct {
	pos     token.Pos // the marker comment (malformed/no-keys findings)
	decl    token.Pos // the marked declaration (channel findings)
	name    string    // the marked declaration, for messages
	channel string
	parse   bool
	subset  bool
	prefix  string
	keys    map[string]bool
	// switches holds each switch statement's own key set when the
	// endpoint is a parsing function, for the drift check.
	switches []map[string]bool
}

func runWireSchema(p *Pass) {
	channels := map[string][]*wireEndpoint{}
	for _, pkg := range p.Mod.Pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				collectWireMarkers(p, d, channels)
			}
		}
	}

	names := make([]string, 0, len(channels))
	for name := range channels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		checkChannel(p, name, channels[name])
	}
}

// collectWireMarkers parses the markers on one declaration and
// extracts its key set.
func collectWireMarkers(p *Pass, d ast.Decl, channels map[string][]*wireEndpoint) {
	switch d := d.(type) {
	case *ast.FuncDecl:
		ep := parseWireMarker(p, d.Doc, d.Name.Name)
		if ep == nil {
			return
		}
		ep.decl = d.Name.Pos()
		extractFuncKeys(p, d, ep)
		channels[ep.channel] = append(channels[ep.channel], ep)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch spec := spec.(type) {
			case *ast.TypeSpec:
				doc := spec.Doc
				if doc == nil {
					doc = d.Doc
				}
				ep := parseWireMarker(p, doc, spec.Name.Name)
				if ep == nil {
					continue
				}
				ep.decl = spec.Name.Pos()
				st, ok := spec.Type.(*ast.StructType)
				if !ok {
					p.Reportf(ep.pos, "%s: wire marker on a non-struct type; only functions, structs and []string manifests carry keys", ep.name)
					continue
				}
				extractTagKeys(st, ep)
				channels[ep.channel] = append(channels[ep.channel], ep)
			case *ast.ValueSpec:
				doc := spec.Doc
				if doc == nil {
					doc = d.Doc
				}
				ep := parseWireMarker(p, doc, specName(spec))
				if ep == nil {
					continue
				}
				if len(spec.Names) > 0 {
					ep.decl = spec.Names[0].Pos()
				} else {
					ep.decl = spec.Pos()
				}
				extractManifestKeys(spec, ep)
				channels[ep.channel] = append(channels[ep.channel], ep)
			}
		}
	}
}

func specName(spec *ast.ValueSpec) string {
	if len(spec.Names) > 0 {
		return spec.Names[0].Name
	}
	return "?"
}

// parseWireMarker reads one //hwlint:wire line out of a doc comment.
func parseWireMarker(p *Pass, doc *ast.CommentGroup, name string) *wireEndpoint {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, wirePrefix) {
			continue
		}
		// Anything after a nested `//` is commentary, not marker syntax.
		text, _, _ := strings.Cut(strings.TrimPrefix(c.Text, wirePrefix), " //")
		fields := strings.Fields(text)
		ep := &wireEndpoint{pos: c.Pos(), name: name, keys: map[string]bool{}}
		bad := func() *wireEndpoint {
			p.Reportf(c.Pos(), "malformed annotation %q: want %s emit|parse <channel> [subset] [prefix=<p>]", c.Text, wirePrefix)
			return nil
		}
		if len(fields) < 2 {
			return bad()
		}
		switch fields[0] {
		case "emit":
		case "parse":
			ep.parse = true
		default:
			return bad()
		}
		ep.channel = fields[1]
		prefix := ""
		for _, f := range fields[2:] {
			switch {
			case f == "subset" && ep.parse:
				ep.subset = true
			case strings.HasPrefix(f, "prefix="):
				prefix = strings.TrimPrefix(f, "prefix=")
			default:
				return bad()
			}
		}
		ep.prefix = prefix
		return ep
	}
	return nil
}

// extractFuncKeys pulls the key set out of a marked function: `key=%`
// directives in its string literals (or prefix-matched tokens), plus
// each switch statement's case-label strings when parsing.
func extractFuncKeys(p *Pass, fd *ast.FuncDecl, ep *wireEndpoint) {
	var tokenRe *regexp.Regexp
	if ep.prefix != "" {
		tokenRe = regexp.MustCompile(regexp.QuoteMeta(ep.prefix) + `[A-Za-z0-9_]+`)
	}
	addLit := func(lit *ast.BasicLit, into map[string]bool) {
		if lit.Kind != token.STRING {
			return
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return
		}
		if tokenRe != nil {
			for _, m := range tokenRe.FindAllString(s, -1) {
				into[m] = true
			}
			return
		}
		for _, m := range keyDirectiveRe.FindAllStringSubmatch(s, -1) {
			into[m[1]] = true
		}
	}
	if ep.parse && ep.prefix == "" {
		// A parsing function's keys are its switch case labels — the
		// label string is the key verbatim; plain literals elsewhere
		// (error messages) are not keys.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			set := map[string]bool{}
			for _, cc := range sw.Body.List {
				for _, e := range cc.(*ast.CaseClause).List {
					if lit, ok := unparen(e).(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if s, err := strconv.Unquote(lit.Value); err == nil && keyTokenRe.MatchString(s) {
							set[s] = true
						}
					}
				}
			}
			if len(set) > 0 {
				ep.switches = append(ep.switches, set)
				for k := range set {
					ep.keys[k] = true
				}
			}
			return true
		})
	} else {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.BasicLit); ok {
				addLit(lit, ep.keys)
			}
			return true
		})
	}
	if len(ep.keys) == 0 {
		p.Reportf(ep.pos, "%s: wire marker extracted no keys; the marker is on the wrong declaration or the format moved", ep.name)
	}
}

// extractTagKeys reads a struct's json tags.
func extractTagKeys(st *ast.StructType, ep *wireEndpoint) {
	for _, f := range st.Fields.List {
		if f.Tag == nil {
			continue
		}
		raw, err := strconv.Unquote(f.Tag.Value)
		if err != nil {
			continue
		}
		tag := reflect.StructTag(raw).Get("json")
		name, _, _ := strings.Cut(tag, ",")
		if name != "" && name != "-" {
			ep.keys[name] = true
		}
	}
}

// extractManifestKeys reads a []string literal manifest.
func extractManifestKeys(spec *ast.ValueSpec, ep *wireEndpoint) {
	for _, v := range spec.Values {
		lit, ok := v.(*ast.CompositeLit)
		if !ok {
			continue
		}
		for _, el := range lit.Elts {
			if bl, ok := unparen(el).(*ast.BasicLit); ok && bl.Kind == token.STRING {
				if s, err := strconv.Unquote(bl.Value); err == nil {
					ep.keys[s] = true
				}
			}
		}
	}
}

// checkChannel enforces the emit/parse agreement for one channel.
func checkChannel(p *Pass, name string, eps []*wireEndpoint) {
	emitted := map[string]bool{}
	var emitters, parsers []*wireEndpoint
	for _, ep := range eps {
		if ep.parse {
			parsers = append(parsers, ep)
		} else {
			emitters = append(emitters, ep)
			for k := range ep.keys {
				emitted[k] = true
			}
		}
	}
	if len(emitters) == 0 {
		for _, ep := range parsers {
			p.Reportf(ep.decl, "%s: channel %q has a parser but no emitter; the emit marker is missing or the emitter was removed", ep.name, name)
		}
		return
	}
	if len(parsers) == 0 {
		for _, ep := range emitters {
			p.Reportf(ep.decl, "%s: channel %q has an emitter but no parser; the parse marker is missing or the consumer was removed", ep.name, name)
		}
		return
	}
	for _, ep := range parsers {
		for _, k := range sortedKeys(ep.keys) {
			if !emitted[k] {
				p.Reportf(ep.decl, "%s: parses key %q which no %q emitter sends; stale parser entry", ep.name, k, name)
			}
		}
		if !ep.subset {
			if missing := minus(emitted, ep.keys); len(missing) > 0 {
				p.Reportf(ep.decl, "%s: does not handle emitted %q key(s) %s; consume them or mark the parser `subset`",
					ep.name, name, strings.Join(missing, ", "))
			}
		}
		for _, sw := range ep.switches {
			if len(sw) == len(ep.keys) || 2*len(sw) <= len(ep.keys) {
				continue
			}
			missing := minus(ep.keys, sw)
			p.Reportf(ep.decl, "%s: a switch handles %d of this parser's %d %q keys; missing: %s — the validate/assign switches drifted apart",
				ep.name, len(sw), len(ep.keys), name, strings.Join(missing, ", "))
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// minus returns a's keys not in b, sorted.
func minus(a, b map[string]bool) []string {
	var out []string
	for k := range a {
		if !b[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
