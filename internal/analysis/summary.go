package analysis

// The interprocedural layer: a module-wide callgraph over every loaded
// package, with one summary per function declaration. Summaries carry
//
//   - held-lock effects: operations a function (or anything it calls)
//     may perform that must not run while a shard mutex is held —
//     tracer hooks, histogram observations, journal emission, blocking
//     channel operations, sync waits, sleeps, and acquiring further
//     shard mutexes;
//   - allocation sites: every statement that can charge a heap
//     allocation, used by the allocbudget analyzer to verify
//     //hwlint:hotpath allocs=N annotations by reachability.
//
// The callgraph is static calls plus method-set devirtualization: a
// call through an interface fans out to every module type whose
// declared method-name set covers the interface's. That matching is by
// name, not by types.Implements — packages loaded from source and
// their dependencies imported from export data live in different
// go/types universes, so object identity is only reliable *within* a
// package; across packages everything is keyed by a package-path-
// qualified name string instead.
//
// Effects are propagated bottom-up to a fixpoint (a plain worklist
// iteration: the effect lattice is a finite union, so recursion — an
// SCC in the callgraph — simply converges to the cycle's joint
// summary). Allocation accounting is a reachable-site count: a site in
// a loop still counts once (dynamic growth stays benchsmoke's job; the
// static gate catches new sites), and recursion adds no sites beyond
// the SCC's own.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Module is the whole-program index the interprocedural analyzers run
// against: every loaded package, every function declaration, and the
// computed summaries.
type Module struct {
	Pkgs []*Package

	fns map[string]*Fn // FQN -> declaration

	// typeMethods maps "pkgpath.TypeName" to the set of method names
	// declared on that type (either receiver form), used for
	// devirtualization.
	typeMethods map[string]map[string]bool
}

// Fn is one function declaration plus its computed summaries.
type Fn struct {
	FQN  string
	Pkg  *Package
	Decl *ast.FuncDecl

	calls  []callEdge
	allocs []allocSite

	// effects is the transitive held-lock effect summary, deduplicated
	// by description; populated by the fixpoint pass.
	effects []effect

	// paramEscapes[i] reports whether parameter i (0 = receiver for
	// methods) may escape: stored into a field, global, map, channel or
	// returned, or passed on to an escaping position. Used to decide
	// whether &local handed to this function heap-moves the local.
	paramEscapes []bool
}

// callEdge is one resolved call site.
type callEdge struct {
	pos    token.Pos
	callee *Fn
	devirt bool // candidate via interface method-name matching
	elided bool // inside an optional-hook nil guard: effects propagate, allocations do not
}

// effect is one held-lock effect with its provenance.
type effect struct {
	pos  token.Pos // the originating site
	desc string    // e.g. "journal.Ring.Emit", "blocking channel send"
	path string    // call chain from the summarized function, "" if local
}

// allocSite is one potential heap allocation.
type allocSite struct {
	pos       token.Pos
	desc      string
	unbounded bool // an unresolved external call: allocations unknown
}

// Effects returns fn's transitive held-lock effect summary (nil when fn
// is unknown).
func (m *Module) Effects(fn *Fn) []effect { return fn.effects }

// Fn resolves a *types.Func object to its module declaration, or nil.
func (m *Module) Fn(obj *types.Func) *Fn {
	if obj == nil {
		return nil
	}
	return m.fns[objFQN(obj)]
}

// objFQN renders a function object as its package-path-qualified name:
// "pkg/path.Func" or "pkg/path.Type.Method". The receiver's named type
// is unwrapped through one pointer so value and pointer methods
// collide, which is what the name-keyed lookup wants.
func objFQN(obj *types.Func) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedType(sig.Recv().Type()); n != nil {
			return pkg + "." + n.Obj().Name() + "." + obj.Name()
		}
		return pkg + ".?." + obj.Name()
	}
	return pkg + "." + obj.Name()
}

// declFQN renders a declaration's name in the same form as objFQN.
func declFQN(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return pkgPath + "." + id.Name + "." + fd.Name.Name
		}
		return pkgPath + ".?." + fd.Name.Name
	}
	return pkgPath + "." + fd.Name.Name
}

// shortFQN trims the module-internal package path down to its last
// element for diagnostics ("hwtwbg/journal.Ring.Emit" -> "journal.Ring.Emit").
func shortFQN(fqn string) string {
	if i := strings.LastIndex(fqn, "/"); i >= 0 {
		return fqn[i+1:]
	}
	return fqn
}

// BuildModule indexes every function declaration of the loaded
// packages, resolves call edges (static + devirtualized), collects
// local summaries, and propagates effects and parameter escapes to a
// fixpoint.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{Pkgs: pkgs, fns: map[string]*Fn{}, typeMethods: map[string]map[string]bool{}}
	for _, pkg := range pkgs {
		path := pkg.Types.Path()
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fqn := declFQN(path, fd)
				m.fns[fqn] = &Fn{FQN: fqn, Pkg: pkg, Decl: fd}
				if fd.Recv != nil {
					if i := strings.LastIndex(fqn, "."); i >= 0 {
						tname := fqn[:i]
						set := m.typeMethods[tname]
						if set == nil {
							set = map[string]bool{}
							m.typeMethods[tname] = set
						}
						set[fd.Name.Name] = true
					}
				}
			}
		}
	}
	// Escapes first: buildLocal consults paramEscapes to decide whether
	// an &local argument heap-moves, so the vectors must be at fixpoint
	// before any allocation site is charged.
	m.propagateEscapes()
	for _, fn := range m.fns {
		m.buildLocal(fn)
	}
	m.propagateEffects()
	return m
}

// candidates returns the module functions an interface method call may
// devirtualize to: every module type whose declared method-name set
// covers the interface's, matched by name. Types that satisfy the
// interface through embedding are missed (their promoted methods have
// no local declaration) — a documented under-approximation.
func (m *Module) candidates(iface *types.Interface, method string) []*Fn {
	var names []string
	for i := 0; i < iface.NumMethods(); i++ {
		names = append(names, iface.Method(i).Name())
	}
	var out []*Fn
	for tname, set := range m.typeMethods {
		covers := true
		for _, n := range names {
			if !set[n] {
				covers = false
				break
			}
		}
		if covers && set[method] {
			if fn := m.fns[tname+"."+method]; fn != nil {
				out = append(out, fn)
			}
		}
	}
	// The map range above yields candidates in random order; summaries
	// and diagnostics must not depend on it.
	sort.Slice(out, func(i, j int) bool { return out[i].FQN < out[j].FQN })
	return out
}

// resolveCall resolves one call expression against the module: the
// declared callee for a static call, devirtualization candidates for an
// interface method call. external is true when the callee lives outside
// the loaded source set (stdlib or export-data-only dependency);
// unknown is true when the callee cannot be named at all (function
// values, method expressions).
func (m *Module) resolveCall(pkg *Package, call *ast.CallExpr) (callees []*Fn, obj *types.Func, external, unknown bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch o := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			obj = o
		case *types.Builtin, *types.TypeName:
			return nil, nil, false, false // builtins and conversions are handled by the collectors
		default:
			return nil, nil, false, true // a function value: target unknown
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				cands := m.candidates(iface, fun.Sel.Name)
				o, _ := sel.Obj().(*types.Func)
				return cands, o, len(cands) == 0, false
			}
		}
		switch o := pkg.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			obj = o
		case *types.TypeName:
			return nil, nil, false, false
		default:
			return nil, nil, false, true
		}
	default:
		// Conversions like `string(x)` with a type expression, or calls
		// of call results; the collectors look at those separately.
		if _, isType := pkg.Info.Types[call.Fun]; isType && pkg.Info.Types[call.Fun].IsType() {
			return nil, nil, false, false
		}
		return nil, nil, false, true
	}
	if fn := m.fns[objFQN(obj)]; fn != nil {
		return []*Fn{fn}, obj, false, false
	}
	return nil, obj, true, false
}

// intrinsicZero reports whether an external callee is known not to
// allocate (or to amortize its allocations away, like sync.Pool): the
// audited table backing the allocation model. Matching is by package
// path of the function or its receiver type.
func intrinsicZero(obj *types.Func) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch path {
		case "sync", "sync/atomic", "context":
			// Mutex/RWMutex/WaitGroup/Pool/Once operations, atomic
			// types, context.Context accessors. Pool.Get's miss-path
			// New allocation amortizes out (documented caveat).
			return true
		case "time":
			// Duration arithmetic and formatting-free accessors.
			return name != "Format" && name != "String"
		}
		return false
	}
	switch path {
	case "math", "math/bits":
		return true // pure compute on machine words
	case "time":
		return name == "Now" || name == "Since" || name == "Duration"
	case "runtime":
		return name == "Gosched" || name == "KeepAlive"
	case "errors":
		return name == "Is" || name == "As" || name == "Unwrap"
	case "sort":
		// sort.Search and the Slice family sort in place; the closure
		// argument is charged separately as a FuncLit.
		return true
	case "slices":
		return strings.HasPrefix(name, "Sort") || name == "BinarySearch" || name == "Index" || name == "Contains"
	}
	return false
}

// blockingExternal classifies an external call that can block the
// calling goroutine, for the held-lock effect summary.
func blockingExternal(obj *types.Func) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	path, name := obj.Pkg().Path(), obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if path == "sync" && name == "Wait" {
			if n := namedType(sig.Recv().Type()); n != nil {
				return "sync." + n.Obj().Name() + ".Wait"
			}
			return "sync.Wait"
		}
		return ""
	}
	if path == "time" && name == "Sleep" {
		return "time.Sleep"
	}
	return ""
}

// nilGuardedHook reports whether an if statement has the optional-hook
// shape `if x != nil { ... }` (or `x.f != nil`) with x of interface
// type: the tracer/cost-hook guard. Allocation accounting skips the
// guarded block — the budgets hold for the hook-free configuration the
// benchmarks measure; enabling a tracer buys its own allocations
// knowingly. (Pointer-typed guards like the journal ring do NOT elide:
// journaling is part of the benched hot path.)
func nilGuardedHook(info *types.Info, s *ast.IfStmt) bool {
	bin, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	operand := bin.X
	if id, ok := bin.Y.(*ast.Ident); !ok || id.Name != "nil" {
		if id, ok := bin.X.(*ast.Ident); ok && id.Name == "nil" {
			operand = bin.Y
		} else {
			return false
		}
	}
	tv, ok := info.Types[operand]
	if !ok {
		return false
	}
	_, isIface := tv.Type.Underlying().(*types.Interface)
	return isIface
}

// localCollector walks one function body gathering call edges, local
// effects and local allocation sites.
type localCollector struct {
	m  *Module
	fn *Fn
}

func (m *Module) buildLocal(fn *Fn) {
	c := &localCollector{m: m, fn: fn}
	c.walk(fn.Decl.Body, false)
}

// walk visits statements; elided is true inside an optional-hook guard
// (allocation charges are skipped there, effects still collected —
// hooks run rarely but a blocking hook under a mutex is still a bug).
func (c *localCollector) walk(n ast.Node, elided bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The goroutine body runs outside the caller's locks and
			// outside its allocation budget; the spawn itself is a cold
			// operation no hot path performs.
			return false
		case *ast.FuncLit:
			// Closure creation allocates (captures move to the heap);
			// the body executes when called, not here.
			if !elided {
				c.site(n.Pos(), "closure allocation", false)
			}
			return false
		case *ast.IfStmt:
			if nilGuardedHook(c.fn.Pkg.Info, n) {
				if n.Init != nil {
					c.walk(n.Init, elided)
				}
				c.walk(n.Body, true)
				if n.Else != nil {
					c.walk(n.Else, elided)
				}
				return false
			}
			return true
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range n.Body.List {
				if cl.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				c.effect(n.Pos(), "blocking select")
			}
			// Visit bodies; comm clauses of a defaulted select are
			// non-blocking by construction.
			for _, cl := range n.Body.List {
				for _, s := range cl.(*ast.CommClause).Body {
					c.walk(s, elided)
				}
			}
			return false
		case *ast.SendStmt:
			c.effect(n.Pos(), "blocking channel send")
			return true
		case *ast.UnaryExpr:
			switch n.Op {
			case token.ARROW:
				c.effect(n.Pos(), "blocking channel receive")
			case token.AND:
				if _, isLit := n.X.(*ast.CompositeLit); isLit && !elided {
					c.site(n.Pos(), "composite literal allocated on the heap", false)
				}
			}
			return true
		case *ast.CompositeLit:
			if !elided {
				c.compositeSite(n, c.fn.Pkg.Info)
			}
			return true
		case *ast.CallExpr:
			c.call(n, elided)
			return true
		}
		return true
	})
}

// call classifies one call expression.
func (c *localCollector) call(call *ast.CallExpr, elided bool) {
	info := c.fn.Pkg.Info
	// Builtins and conversions first: they never resolve to a *Fn.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isB := info.Uses[id].(*types.Builtin); isB {
			if !elided {
				switch b.Name() {
				case "make", "new":
					c.site(call.Pos(), b.Name(), false)
				case "append":
					c.appendSite(call, info)
				}
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if !elided {
			c.conversionSite(call, tv.Type, info)
		}
		return
	}

	// Direct hot-path effects, matched by shape like the intraprocedural
	// analyzer so fixtures and the real module share one definition.
	if msg := flaggedCall(info, call); msg != "" {
		c.effect(call.Pos(), msg)
	}
	if d := lockDelta(info, call); d > 0 {
		c.effect(call.Pos(), "acquiring a shard mutex")
	}
	if d := lockDelta(info, call); d != 0 {
		return // lock bookkeeping, not an allocation or a callee to follow
	}

	callees, obj, external, unknown := c.m.resolveCall(c.fn.Pkg, call)
	switch {
	case len(callees) > 0:
		devirt := len(callees) > 1 || (obj != nil && c.m.fns[objFQN(obj)] != callees[0])
		for _, callee := range callees {
			c.fn.calls = append(c.fn.calls, callEdge{pos: call.Pos(), callee: callee, devirt: devirt, elided: elided})
		}
	case external:
		if desc := blockingExternal(obj); desc != "" {
			c.effect(call.Pos(), desc)
		}
		if !elided && !intrinsicZero(obj) {
			name := "?"
			if obj != nil {
				name = shortFQN(objFQN(obj))
			}
			c.site(call.Pos(), fmt.Sprintf("call to %s (external; allocations unknown)", name), true)
		}
	case unknown:
		// A function value: its target cannot be named statically.
		// Charged as unbounded — hot paths call named functions.
		if !elided {
			c.site(call.Pos(), "call through a function value (target unknown)", true)
		}
	}
	if !elided {
		escapes := unknown || (external && !intrinsicZero(obj))
		c.argSites(call, callees, obj, escapes, info)
	}
}

// conversionSite charges type conversions that copy: string <-> []byte
// and []rune. Conversions between types sharing an underlying type are
// free.
func (c *localCollector) conversionSite(call *ast.CallExpr, to types.Type, info *types.Info) {
	argT := info.Types[call.Args[0]].Type
	if argT == nil {
		return
	}
	from, dst := argT.Underlying(), to.Underlying()
	if types.Identical(from, dst) {
		return
	}
	fromStr := isString(from)
	dstStr := isString(dst)
	fromBytes := isByteSlice(from)
	dstBytes := isByteSlice(dst)
	if (fromStr && (dstBytes || isRuneSlice(dst))) || ((fromBytes || isRuneSlice(from)) && dstStr) {
		c.site(call.Pos(), "string conversion copies", false)
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Rune
}

// appendSite charges `append(dst, ...)` only when dst can grow a fresh
// backing array the caller pays for: a bare local slice variable. A
// field destination (r.holders, t.batch.ord) reuses its owner's
// capacity — the scratch-slice idiom the hot path is built on — and a
// parameter or global is the caller's capacity, all amortized and
// covered at their owner's allocation site.
func (c *localCollector) appendSite(call *ast.CallExpr, info *types.Info) {
	if len(call.Args) == 0 {
		return
	}
	dst := call.Args[0]
	id, ok := dst.(*ast.Ident)
	if !ok {
		return // selector/index destination: owner-capacity reuse
	}
	obj := info.Uses[id]
	if obj == nil {
		return
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return
	}
	fn := c.fn.Decl
	if obj.Pos() < fn.Pos() || obj.Pos() > fn.End() {
		return // package-level accumulator: its capacity, not ours
	}
	// A parameter: caller-owned capacity.
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			for _, pid := range f.Names {
				if info.Defs[pid] == obj {
					return
				}
			}
		}
	}
	c.site(call.Pos(), "append to local slice "+id.Name+" may grow", false)
}

// argSites charges address-of arguments that heap-move locals: `&x`
// (and `&T{...}` composites) escape when handed to an external callee
// or to a module function whose matching parameter escapes. Composite
// literals passed by value cost nothing; slice/map/func literals always
// allocate their backing store.
func (c *localCollector) argSites(call *ast.CallExpr, callees []*Fn, obj *types.Func, escapes bool, info *types.Info) {
	recvShift := 0
	if obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			recvShift = 1
		}
	}
	// The method receiver itself: x.M() auto-takes &x for pointer
	// methods; charge when x is a local value and the receiver escapes.
	// An expression that is already a pointer (or an interface) takes no
	// new address here, and a value-receiver method copies its receiver.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && recvShift == 1 && ptrReceiver(obj) {
		if tv, ok := info.Types[sel.X]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Pointer, *types.Interface:
			default:
				if localRoot(info, c.fn.Decl, sel.X) && (escapes || paramEscapesAt(callees, 0)) {
					c.site(call.Pos(), "receiver of "+sel.Sel.Name+" escapes; local heap-moves", false)
				}
			}
		}
	}
	for i, a := range call.Args {
		arg, ok := a.(*ast.UnaryExpr)
		if !ok || arg.Op != token.AND {
			continue
		}
		if _, isLit := arg.X.(*ast.CompositeLit); isLit {
			continue // charged by the walk's own &T{...} case
		}
		if localRoot(info, c.fn.Decl, arg.X) && (escapes || paramEscapesAt(callees, i+recvShift)) {
			c.site(arg.Pos(), "address of local escapes; it heap-moves", false)
		}
	}
}

// compositeSite charges non-struct composite literals: slice and map
// literals allocate backing storage wherever they appear. A plain
// struct literal assigned or passed by value lives on the stack (the
// escaping &T{...} form is charged by the walk's address-of case).
func (c *localCollector) compositeSite(lit *ast.CompositeLit, info *types.Info) {
	tv, ok := info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		c.site(lit.Pos(), "slice/map literal allocates", false)
	}
}

// localRoot reports whether expr's base identifier is a local variable
// of fd (not a parameter, not reached through a pointer field chain):
// only those can be heap-moved by taking their address.
func localRoot(info *types.Info, fd *ast.FuncDecl, e ast.Expr) bool {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			obj := info.Uses[v]
			if obj == nil {
				obj = info.Defs[v]
			}
			vr, ok := obj.(*types.Var)
			if !ok || vr.IsField() {
				return false
			}
			if obj.Pos() < fd.Pos() || obj.Pos() > fd.End() {
				return false
			}
			if isParamOf(info, fd, obj) {
				return false
			}
			return true
		case *ast.ParenExpr:
			e = v.X
		case *ast.SelectorExpr:
			// x.f: taking &x.f moves x only when x itself is a local
			// value; through a pointer it is already heap-resident.
			if tv, ok := info.Types[v.X]; ok {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					return false
				}
			}
			e = v.X
		case *ast.IndexExpr:
			if tv, ok := info.Types[v.X]; ok {
				if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
					return false // element of a slice: backing array already allocated
				}
			}
			e = v.X
		default:
			return false
		}
	}
}

// ptrReceiver reports whether obj is a method with a pointer receiver
// (true also when obj is unknown, to stay conservative for
// devirtualized calls where only the interface method is in hand).
func ptrReceiver(obj *types.Func) bool {
	if obj == nil {
		return true
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	if !isPtr {
		_, isPtr = sig.Recv().Type().Underlying().(*types.Interface)
	}
	return isPtr
}

func isParamOf(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				if info.Defs[id] == obj {
					return true
				}
			}
		}
		return false
	}
	return check(fd.Type.Params) || check(fd.Recv) || check(fd.Type.Results)
}

// paramEscapesAt reports whether any candidate callee lets its i'th
// parameter escape. Empty callees means "not a module call" — the
// caller decides what external and unknown targets imply; answering
// true here would make every intrinsic external call look escaping.
func paramEscapesAt(callees []*Fn, i int) bool {
	for _, fn := range callees {
		if i >= len(fn.paramEscapes) {
			return true // variadic overflow or arity mismatch: be conservative
		}
		if fn.paramEscapes[i] {
			return true
		}
	}
	return false
}

func (c *localCollector) effect(pos token.Pos, desc string) {
	for _, e := range c.fn.effects {
		if e.desc == desc && e.path == "" {
			return
		}
	}
	c.fn.effects = append(c.fn.effects, effect{pos: pos, desc: desc})
}

func (c *localCollector) site(pos token.Pos, desc string, unbounded bool) {
	c.fn.allocs = append(c.fn.allocs, allocSite{pos: pos, desc: desc, unbounded: unbounded})
}

// propagateEffects runs the bottom-up fixpoint: each function's summary
// is its local effects plus every callee's, with the call chain
// recorded for diagnostics. The union is finite (descriptions dedupe),
// so recursion converges: an SCC ends up with the joint summary of the
// whole cycle — the conservative widening.
func (m *Module) propagateEffects() {
	changed := true
	for changed {
		changed = false
		for _, fn := range m.fns {
			for _, e := range fn.calls {
				for _, ce := range e.callee.effects {
					have := false
					for _, own := range fn.effects {
						if own.desc == ce.desc {
							have = true
							break
						}
					}
					if !have {
						path := shortFQN(e.callee.FQN)
						if ce.path != "" {
							path += " -> " + ce.path
						}
						fn.effects = append(fn.effects, effect{pos: e.pos, desc: ce.desc, path: path})
						changed = true
					}
				}
			}
		}
	}
}

// propagateEscapes computes paramEscapes per function: a parameter
// escapes if its value reaches a field, global, map, slice element,
// channel, return value, closure, or an external/unknown call; passing
// it on to a module function's non-escaping parameter does not count.
// Iterated to a fixpoint (escape information is monotone).
func (m *Module) propagateEscapes() {
	for _, fn := range m.fns {
		fn.paramEscapes = make([]bool, paramCount(fn.Decl))
	}
	changed := true
	for changed {
		changed = false
		for _, fn := range m.fns {
			if escapeScan(m, fn) {
				changed = true
			}
		}
	}
}

func paramCount(fd *ast.FuncDecl) int {
	n := 0
	if fd.Recv != nil {
		n++
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			if len(f.Names) == 0 {
				n++
			} else {
				n += len(f.Names)
			}
		}
	}
	return n
}

// paramIndex maps an object to its parameter slot (receiver = 0 when
// present), or -1.
func paramIndex(info *types.Info, fd *ast.FuncDecl, obj types.Object) int {
	i := 0
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, id := range f.Names {
				if info.Defs[id] == obj {
					return 0
				}
			}
		}
		i = 1
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			if len(f.Names) == 0 {
				i++
				continue
			}
			for _, id := range f.Names {
				if info.Defs[id] == obj {
					return i
				}
				i++
			}
		}
	}
	return -1
}

// escapeScan marks parameters of fn that escape; returns true when any
// flag newly flipped.
func escapeScan(m *Module, fn *Fn) bool {
	info := fn.Pkg.Info
	fd := fn.Decl
	flipped := false
	mark := func(e ast.Expr) {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			return
		}
		if i := paramIndex(info, fd, obj); i >= 0 && i < len(fn.paramEscapes) && !fn.paramEscapes[i] {
			fn.paramEscapes[i] = true
			flipped = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				switch unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					mark(rhs)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				mark(r)
			}
		case *ast.SendStmt:
			mark(n.Value)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					mark(kv.Value)
				} else {
					mark(el)
				}
			}
		case *ast.FuncLit:
			// Conservative: anything a closure references may outlive
			// the frame.
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					mark(id)
				}
				return true
			})
			return false
		case *ast.CallExpr:
			callees, obj, external, unknown := m.resolveCall(fn.Pkg, n)
			recvShift := 0
			if obj != nil {
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					recvShift = 1
				}
			}
			escaping := unknown || (external && !intrinsicZero(obj))
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && recvShift == 1 {
				if escaping || paramEscapesAt(callees, 0) {
					mark(sel.X)
				}
			}
			for i, a := range n.Args {
				target := unparen(a)
				if u, ok := target.(*ast.UnaryExpr); ok && u.Op == token.AND {
					target = u.X
				}
				if escaping || paramEscapesAt(callees, i+recvShift) {
					mark(target)
				}
			}
		}
		return true
	})
	return flipped
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
