package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicsOnly protects the lock-free metric blocks. The per-shard
// shardMetrics struct and the metrics.Counter / metrics.Histogram types
// are read by exporters while the hot path writes them, with no mutex:
// the only safe accesses are their own methods (which go through
// sync/atomic). A direct field read, assignment, copy or address-take
// would be a data race waiting for -race to find it at runtime; this
// rule finds it at lint time.
//
// A field selector on one of these structs is therefore only legal as
// the receiver of a method call (optionally through an array index,
// `met.grantsByMode[m].Inc()`), as the operand of the len/cap builtins,
// or as an index-only range (`for i := range s.grantsByMode`). A struct
// opts into the rule by name (shardMetrics anywhere; Counter and
// Histogram in a package named metrics) or by carrying the marker
// `hwlint:atomics-only` in its declaration's doc comment.
var AtomicsOnly = &Analyzer{
	Name: "atomics",
	Doc:  "metric struct fields may only be touched via their own (atomic) methods",
	Run:  runAtomicsOnly,
}

func runAtomicsOnly(p *Pass) {
	marked := markedStructs(p)
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := p.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			owner := namedType(s.Recv())
			if owner == nil || !isAtomicsStruct(owner, marked) {
				return true
			}
			if !allowedFieldUse(sel, stack) {
				p.Reportf(sel.Pos(), "field %s of %s touched directly; use its methods (the fields are lock-free atomics)", sel.Sel.Name, owner.Obj().Name())
			}
			return true
		})
	}
}

// markedStructs collects named struct types in this package whose
// declaration doc contains the hwlint:atomics-only marker.
func markedStructs(p *Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasMarker(ts.Doc) && !hasMarker(gd.Doc) {
					continue
				}
				if obj := p.Info.Defs[ts.Name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

func hasMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if containsMarker(c.Text) {
			return true
		}
	}
	return false
}

func containsMarker(s string) bool {
	const marker = "hwlint:atomics-only"
	for i := 0; i+len(marker) <= len(s); i++ {
		if s[i:i+len(marker)] == marker {
			return true
		}
	}
	return false
}

// isAtomicsStruct reports whether the named struct type is governed by
// the rule.
func isAtomicsStruct(n *types.Named, marked map[types.Object]bool) bool {
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return false
	}
	if marked[n.Obj()] {
		return true
	}
	name := n.Obj().Name()
	if name == "shardMetrics" {
		return true
	}
	pkg := ""
	if n.Obj().Pkg() != nil {
		pkg = n.Obj().Pkg().Name()
	}
	return pkg == "metrics" && (name == "Counter" || name == "Histogram")
}

// allowedFieldUse decides whether the field selector (the last element
// of stack) appears in one of the blessed contexts.
func allowedFieldUse(sel *ast.SelectorExpr, stack []ast.Node) bool {
	// Walk outward: the selector may be wrapped in parens and array
	// indexing before the deciding parent.
	cur := ast.Node(sel)
	i := len(stack) - 2
	for ; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			cur = parent
			continue
		case *ast.IndexExpr:
			if parent.X == cur {
				cur = parent
				continue
			}
			return true // the selector is the index, not the base
		}
		break
	}
	if i < 0 {
		return false
	}
	switch parent := stack[i].(type) {
	case *ast.SelectorExpr:
		// Receiver of a method call: parent must itself be called.
		if parent.X != cur || i == 0 {
			return false
		}
		call, ok := stack[i-1].(*ast.CallExpr)
		return ok && call.Fun == parent
	case *ast.CallExpr:
		// len(met.grantsByMode) and cap(...) read no field state.
		if id, ok := parent.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			return true
		}
	case *ast.RangeStmt:
		// Index-only iteration over an array field is a counting loop;
		// ranging with a value variable would copy the atomics out.
		return parent.X == cur && parent.Value == nil
	}
	return false
}
