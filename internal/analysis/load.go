package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") with the go tool, type-checks
// every matched package, and returns them sorted by import path. Run in
// dir, which must be inside the module.
//
// This is the stdlib-only equivalent of go/packages: `go list -export
// -deps` compiles the dependency graph and reports each package's
// export-data file, which a gc-importer lookup then serves to
// go/types, so only the matched packages themselves are parsed from
// source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var roots []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range roots {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{ImportPath: p.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	return pkgs, nil
}
