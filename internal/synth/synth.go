// Package synth builds synthetic lock-table topologies with known n
// (transactions), e (edges) and c (elementary cycles), used by the
// complexity experiments (E8, E14) to measure the detector's O(n+e)
// space and O(n + e*(c'+1)) time claims, and by the benchmarks in the
// repository root.
package synth

import (
	"fmt"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

func must(granted bool, err error, wantGrant bool, what string) {
	if err != nil {
		panic("synth: " + what + ": " + err.Error())
	}
	if granted != wantGrant {
		panic(fmt.Sprintf("synth: %s: granted=%v, want %v", what, granted, wantGrant))
	}
}

func req(tb *table.Table, txn table.TxnID, rid table.ResourceID, m lock.Mode, wantGrant bool) {
	g, err := tb.Request(txn, rid, m)
	must(g, err, wantGrant, fmt.Sprintf("req %v %s %v", txn, rid, m))
}

// Chain builds a deadlock-free wait chain of n transactions: Ti holds
// R_i and (for i > 1) waits for R_{i-1} held by T_{i-1}. The H/W-TWBG
// has n vertices and n-1 edges and no cycle — the detector's O(n+e)
// no-deadlock path.
func Chain(n int) *table.Table {
	tb := table.New()
	for i := 1; i <= n; i++ {
		req(tb, table.TxnID(i), rid(i), lock.X, true)
	}
	for i := 2; i <= n; i++ {
		req(tb, table.TxnID(i), rid(i-1), lock.X, false)
	}
	return tb
}

// Rings builds k disjoint deadlock cycles of the given size (size >= 2):
// within each ring, Ti holds its own resource and waits for the next
// ring member's. Every ring is one elementary cycle, so c = c' = k.
func Rings(k, size int) *table.Table {
	if size < 2 {
		panic("synth: ring size must be >= 2")
	}
	tb := table.New()
	id := func(ring, member int) table.TxnID {
		return table.TxnID(ring*size + member + 1)
	}
	res := func(ring, member int) table.ResourceID {
		return table.ResourceID(fmt.Sprintf("r%d_%d", ring, member))
	}
	for ring := 0; ring < k; ring++ {
		for m := 0; m < size; m++ {
			req(tb, id(ring, m), res(ring, m), lock.X, true)
		}
		for m := 0; m < size; m++ {
			req(tb, id(ring, m), res(ring, (m+1)%size), lock.X, false)
		}
	}
	return tb
}

// HotQueue builds one resource with a deadlocked head: holder T1(IS),
// an X waiter T2, then n compatible S waiters T3..T_{n+2}, and finally
// T1 waits for a resource held by the last S waiter — producing a cycle
// that TDR-2 can resolve by repositioning T2 behind the S waiters
// without aborting anyone.
func HotQueue(n int) *table.Table {
	tb := table.New()
	last := table.TxnID(n + 2)
	req(tb, 1, "hot", lock.IS, true)
	req(tb, last, "tail", lock.X, true)
	req(tb, 2, "hot", lock.X, false)
	for i := 0; i < n; i++ {
		req(tb, table.TxnID(3+i), "hot", lock.S, false)
	}
	req(tb, 1, "tail", lock.S, false)
	return tb
}

// Example41Tiles replays k disjoint copies of the paper's Example 4.1,
// each contributing 4 elementary cycles (but only c' <= k resolutions,
// since one TDR-2 repositioning per copy clears all four).
func Example41Tiles(k int) *table.Table {
	tb := table.New()
	for t := 0; t < k; t++ {
		base := table.TxnID(t * 9)
		r1 := table.ResourceID(fmt.Sprintf("R1_%d", t))
		r2 := table.ResourceID(fmt.Sprintf("R2_%d", t))
		req(tb, base+1, r1, lock.IX, true)
		req(tb, base+2, r1, lock.IS, true)
		req(tb, base+3, r1, lock.IX, true)
		req(tb, base+4, r1, lock.IS, true)
		req(tb, base+7, r2, lock.IS, true)
		req(tb, base+2, r1, lock.S, false)
		req(tb, base+1, r1, lock.S, false)
		req(tb, base+5, r1, lock.IX, false)
		req(tb, base+6, r1, lock.S, false)
		req(tb, base+7, r1, lock.IX, false)
		req(tb, base+8, r2, lock.X, false)
		req(tb, base+9, r2, lock.IX, false)
		req(tb, base+3, r2, lock.S, false)
		req(tb, base+4, r2, lock.X, false)
	}
	return tb
}

// WideQueues builds m resources each with one X holder and q queued
// waiters (no deadlock): n = m*(q+1) transactions and e proportional to
// m*q edges, for scaling the no-cycle search.
func WideQueues(m, q int) *table.Table {
	tb := table.New()
	next := 1
	for r := 0; r < m; r++ {
		res := table.ResourceID(fmt.Sprintf("w%d", r))
		req(tb, table.TxnID(next), res, lock.X, true)
		next++
		for i := 0; i < q; i++ {
			req(tb, table.TxnID(next), res, lock.S, false)
			next++
		}
	}
	return tb
}

func rid(i int) table.ResourceID { return table.ResourceID(fmt.Sprintf("r%d", i)) }
