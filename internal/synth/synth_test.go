package synth

import (
	"testing"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/twbg"
)

func TestChain(t *testing.T) {
	tb := Chain(10)
	g := twbg.Build(tb)
	if g.HasCycle() {
		t.Fatal("chain must be acyclic")
	}
	if got := len(g.Vertices()); got != 10 {
		t.Fatalf("vertices = %d", got)
	}
	if got := g.NumEdges(); got != 9 {
		t.Fatalf("edges = %d", got)
	}
	res := detect.New(tb, detect.Config{}).Run()
	if res.CyclesSearched != 0 || len(res.Aborted) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRings(t *testing.T) {
	tb := Rings(4, 3)
	g := twbg.Build(tb)
	if cs := g.Cycles(0); len(cs) != 4 {
		t.Fatalf("cycles = %d, want 4", len(cs))
	}
	res := detect.New(tb, detect.Config{}).Run()
	if res.CyclesSearched != 4 {
		t.Fatalf("c' = %d, want 4", res.CyclesSearched)
	}
	if len(res.Aborted) != 4 {
		t.Fatalf("aborted = %v, want one victim per ring", res.Aborted)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlocks remain")
	}
}

func TestRingsPanicsOnTinySize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rings(1,1) must panic")
		}
	}()
	Rings(1, 1)
}

func TestHotQueueResolvedByTDR2(t *testing.T) {
	tb := HotQueue(5)
	if !twbg.Deadlocked(tb) {
		t.Fatal("HotQueue must deadlock")
	}
	res := detect.New(tb, detect.Config{}).Run()
	if len(res.Repositioned) != 1 || len(res.Aborted) != 0 {
		t.Fatalf("res = %+v, want pure TDR-2 resolution", res)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
}

func TestExample41Tiles(t *testing.T) {
	tb := Example41Tiles(3)
	g := twbg.Build(tb)
	if cs := g.Cycles(0); len(cs) != 12 {
		t.Fatalf("cycles = %d, want 12 (3 tiles x 4)", len(cs))
	}
	res := detect.New(tb, detect.Config{}).Run()
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlocks remain")
	}
	if res.CyclesSearched > 12 {
		t.Fatalf("c' = %d exceeds c = 12", res.CyclesSearched)
	}
	if len(res.Aborted) != 0 {
		t.Fatalf("aborted = %v; each tile resolves via TDR-2 under uniform costs", res.Aborted)
	}
	if len(res.Repositioned) != 3 {
		t.Fatalf("repositioned = %v, want one per tile", res.Repositioned)
	}
}

func TestWideQueues(t *testing.T) {
	tb := WideQueues(4, 5)
	g := twbg.Build(tb)
	if g.HasCycle() {
		t.Fatal("WideQueues must be acyclic")
	}
	if got := len(g.Vertices()); got != 24 {
		t.Fatalf("vertices = %d", got)
	}
}
