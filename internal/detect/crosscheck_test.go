package detect

import (
	"fmt"
	"math/rand"
	"testing"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

// TestWiringMatchesAnalyticGraph cross-validates the two independent
// implementations of the Edge Construction Rules: the detector's Step 1
// TST wiring (linked waited-lists with 0-terminated W chains) and the
// analytic twbg.Build graph. On thousands of random states they must
// describe exactly the same H edges and the same W chains.
func TestWiringMatchesAnalyticGraph(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := table.New()
		for step := 0; step < 700; step++ {
			txn := table.TxnID(1 + rng.Intn(10))
			switch op := rng.Intn(12); {
			case op < 8:
				if tb.Blocked(txn) {
					continue
				}
				rid := table.ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(5)))
				if _, err := tb.Request(txn, rid, modes[rng.Intn(len(modes))]); err != nil {
					t.Fatal(err)
				}
			case op < 10:
				if tb.Blocked(txn) {
					continue
				}
				if _, err := tb.Release(txn); err != nil {
					t.Fatal(err)
				}
			default:
				tb.Abort(txn)
			}
			compareWiring(t, tb, seed, step)
			if twbg.Deadlocked(tb) {
				set := twbg.DeadlockSet(tb)
				tb.Abort(set[rng.Intn(len(set))])
			}
		}
	}
}

func compareWiring(t *testing.T, tb *table.Table, seed int64, step int) {
	t.Helper()
	wiring := New(tb, Config{}).Wiring()
	g := twbg.Build(tb)

	// H edges from the wiring (Mode == NL, To != 0).
	type pair struct{ from, to table.TxnID }
	wantH := make(map[pair]int)
	for _, e := range g.Edges() {
		if e.Label == twbg.H {
			wantH[pair{e.From, e.To}]++
		}
	}
	gotH := make(map[pair]int)
	wEdges := 0
	for from, edges := range wiring {
		for _, e := range edges {
			if e.Mode == lock.NL {
				gotH[pair{from, e.To}]++
			} else {
				wEdges++
			}
		}
	}
	if len(gotH) != len(wantH) {
		t.Fatalf("seed %d step %d: H edge sets differ: wiring %v vs graph %v\n%s",
			seed, step, gotH, wantH, tb)
	}
	for p, n := range wantH {
		if gotH[p] != n {
			t.Fatalf("seed %d step %d: H edge %v->%v count %d vs %d\n%s",
				seed, step, p.from, p.to, gotH[p], n, tb)
		}
	}
	// W chains: one wiring W edge per queue member (0-terminated), so
	// the analytic graph's W edges must be exactly the non-terminal
	// ones.
	analyticW := 0
	for _, e := range g.Edges() {
		if e.Label == twbg.W {
			analyticW++
			// And it must appear in the wiring with the same mode.
			found := false
			for _, we := range wiring[e.From] {
				if we.Mode == e.Mode && we.To == e.To {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("seed %d step %d: analytic W edge %v missing from wiring\n%s",
					seed, step, e, tb)
			}
		}
	}
	// Terminal W edges (To == 0) correspond to queue tails: one per
	// non-empty queue.
	tails := 0
	for _, r := range tb.Resources() {
		if len(r.Queue()) > 0 {
			tails++
		}
	}
	if wEdges != analyticW+tails {
		t.Fatalf("seed %d step %d: wiring has %d W edges, want %d chained + %d tails\n%s",
			seed, step, wEdges, analyticW, tails, tb)
	}
}
