package detect

import (
	"fmt"

	"hwtwbg/internal/table"
)

// TraceKind classifies a trace event.
type TraceKind uint8

// Trace event kinds, in the vocabulary of the paper's Step 2/3
// narration.
const (
	// TraceVisit: the walk moved forward along an edge to a new vertex.
	TraceVisit TraceKind = iota
	// TraceSkip: the walk skipped an edge (end-of-queue 0 or an
	// exhausted/killed target).
	TraceSkip
	// TraceBacktrack: the walk retreated to the vertex's ancestor.
	TraceBacktrack
	// TraceCycle: an edge reached a vertex with a non-zero ancestor —
	// a deadlock cycle was detected.
	TraceCycle
	// TraceCandidate: victim selection priced one candidate.
	TraceCandidate
	// TraceVictimTDR1: a junction was selected for abortion.
	TraceVictimTDR1
	// TraceVictimTDR2: a queue repositioning was selected.
	TraceVictimTDR2
	// TraceAbort: Step 3 confirmed an abortion.
	TraceAbort
	// TraceSalvage: Step 3 rescued a victim that an earlier abort had
	// already granted.
	TraceSalvage
)

var traceNames = map[TraceKind]string{
	TraceVisit: "visit", TraceSkip: "skip", TraceBacktrack: "backtrack",
	TraceCycle: "cycle", TraceCandidate: "candidate",
	TraceVictimTDR1: "victim-tdr1", TraceVictimTDR2: "victim-tdr2",
	TraceAbort: "abort", TraceSalvage: "salvage",
}

// String returns the event kind name.
func (k TraceKind) String() string { return traceNames[k] }

// TraceEvent is one step of the periodic algorithm, emitted through
// Config.Trace. From/To carry the vertices involved (0 when not
// applicable); Cost carries a candidate's price; TDR2 marks
// repositioning candidates; Cycle carries the detected cycle for
// TraceCycle events.
type TraceEvent struct {
	Kind  TraceKind
	From  table.TxnID
	To    table.TxnID
	Cost  float64
	TDR2  bool
	Cycle []table.TxnID
}

// String renders the event as one narration line.
func (e TraceEvent) String() string {
	switch e.Kind {
	case TraceVisit:
		return fmt.Sprintf("visit %v -> %v", e.From, e.To)
	case TraceSkip:
		return fmt.Sprintf("skip edge %v -> %v", e.From, e.To)
	case TraceBacktrack:
		return fmt.Sprintf("backtrack %v -> %v", e.From, e.To)
	case TraceCycle:
		s := "cycle detected:"
		for _, v := range e.Cycle {
			s += " " + v.String()
		}
		return s
	case TraceCandidate:
		if e.TDR2 {
			return fmt.Sprintf("candidate TDR-2 at junction %v (cost %.2f)", e.From, e.Cost)
		}
		return fmt.Sprintf("candidate TDR-1 %v (cost %.2f)", e.From, e.Cost)
	case TraceVictimTDR1:
		return fmt.Sprintf("selected victim %v (abort)", e.From)
	case TraceVictimTDR2:
		return fmt.Sprintf("selected TDR-2 repositioning at junction %v", e.From)
	case TraceAbort:
		return fmt.Sprintf("step 3: abort %v", e.From)
	case TraceSalvage:
		return fmt.Sprintf("step 3: salvage %v (already granted)", e.From)
	}
	return "?"
}

// emit sends an event to the configured trace hook, if any.
func (d *Detector) emit(e TraceEvent) {
	if d.cfg.Trace != nil {
		d.cfg.Trace(e)
	}
}
