// Package detect implements the paper's periodic deadlock detection and
// resolution algorithm (Section 5): the RST/TST internal structure, the
// three-step periodic-detection-resolution procedure, the directed walk
// with ancestor/current bookkeeping, and victim selection by the TRRP
// Disconnection Rule (TDR-1 aborts a junction transaction, TDR-2
// repositions queue entries and aborts nobody).
//
// A Detector is bound to a lock table; each call to Run performs one
// periodic activation and mutates the table (queue repositionings and
// victim aborts, with the resulting grants), returning what happened.
package detect

import (
	"fmt"
	"sort"
	"time"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

// Table is the slice of the lock-table API the detector reads and
// mutates. *table.Table implements it directly; the public hwtwbg
// package also implements it with a multi-shard adapter, so one
// detector activation can run over S sharded tables as if they were a
// single merged table (the stop-the-world seam of the sharded facade).
//
// EachResource must iterate in global resource-id order: the Step 1
// wiring, and therefore every victim and TDR-2 choice, is defined over
// that order, and an adapter that iterated shard-by-shard would drift
// from the single-table detector on the same logical state.
type Table interface {
	EachResource(f func(*table.Resource) bool)
	Resource(rid table.ResourceID) *table.Resource
	WaitingOn(txn table.TxnID) (table.ResourceID, lock.Mode, bool)
	PeekAVST(rid table.ResourceID, j table.TxnID) (av, st []table.QueueEntry)
	RepositionAVST(rid table.ResourceID, j table.TxnID) (av, st []table.QueueEntry)
	Abort(txn table.TxnID) []table.Grant
	ScheduleQueue(rid table.ResourceID) []table.Grant
}

// CostFunc prices a transaction for victim selection. Lower cost means a
// cheaper victim. The paper leaves the metric open ("number of locks it
// holds, starting time, CPU and I/O time consumed, or some combination").
type CostFunc func(table.TxnID) float64

// BoostFunc bumps the cost of an ST-member transaction after its queue
// entry was repositioned by TDR-2, "to prevent the requests in ST from
// the repeated application of TDR-2".
type BoostFunc func(old float64) float64

// Config parameterizes a Detector. The zero value is usable: every
// transaction costs 1, the boost adds 1, and TDR-2 is enabled.
type Config struct {
	// Cost prices victim candidates; nil means every transaction costs 1.
	Cost CostFunc
	// Boost is applied to ST members' costs after a TDR-2 repositioning;
	// nil means old+1. It only has effect when Costs is non-nil, since
	// boosting requires a mutable cost store.
	Boost BoostFunc
	// Costs, when non-nil, is the mutable cost store consulted before
	// Cost and updated by Boost.
	Costs *CostTable
	// DisableTDR2 turns off TDR-2 candidates entirely (ablation: resolve
	// by abort only, like the conventional schemes).
	DisableTDR2 bool
	// PreferAbortOnTie breaks cost ties in favor of TDR-1 (abort) rather
	// than the default preference for TDR-2 (no abort).
	PreferAbortOnTie bool
	// Trace, when non-nil, receives one event per algorithm step — the
	// walk's moves, cycle detections, candidate pricing and Step 3
	// confirmations — letting tools narrate a run the way the paper
	// narrates its examples.
	Trace func(TraceEvent)
}

func (c Config) cost(t table.TxnID) float64 {
	if c.Costs != nil {
		return c.Costs.Cost(t)
	}
	if c.Cost != nil {
		return c.Cost(t)
	}
	return 1
}

func (c Config) boost(old float64) float64 {
	if c.Boost != nil {
		return c.Boost(old)
	}
	return old + 1
}

// CostTable is a mutable per-transaction cost store (the paper's
// cost-table). Transactions without an explicit entry cost Default.
type CostTable struct {
	// Default is the cost of transactions with no explicit entry.
	Default float64
	m       map[table.TxnID]float64
}

// NewCostTable returns a cost table whose unlisted transactions cost def.
func NewCostTable(def float64) *CostTable {
	return &CostTable{Default: def, m: make(map[table.TxnID]float64)}
}

// Cost returns the cost of t.
func (c *CostTable) Cost(t table.TxnID) float64 {
	if v, ok := c.m[t]; ok {
		return v
	}
	return c.Default
}

// Set assigns an explicit cost to t.
func (c *CostTable) Set(t table.TxnID, cost float64) {
	if c.m == nil {
		c.m = make(map[table.TxnID]float64)
	}
	c.m[t] = cost
}

// Delete removes t's entry (it reverts to Default).
func (c *CostTable) Delete(t table.TxnID) { delete(c.m, t) }

// CycleEdge is one edge of a detected cycle, with the resource that
// induced it — the evidence a snapshot-based caller needs to re-verify
// the cycle against the live lock table before acting on the resolution
// (validate-then-act). From is waited by To (To waits for From). For a
// W edge, Mode is the source's blocked mode and the edge asserts From
// sits immediately before To in Resource's queue; for an H edge
// (Mode == NL) it asserts the ECR-1/ECR-2 conflict still holds.
type CycleEdge struct {
	From, To table.TxnID
	Resource table.ResourceID
	Mode     lock.Mode // NL for H edges
}

// W reports whether the edge is a queue-adjacency (W) edge.
func (e CycleEdge) W() bool { return e.Mode != lock.NL }

// Resolution records one cycle the directed walk found and the TDR
// decision that resolved it, in discovery order. STW callers apply
// resolutions directly (the table the detector ran over was live);
// snapshot callers replay them against the live shards, re-verifying
// each Cycle first and dropping resolutions whose evidence no longer
// holds (false cycles from a torn snapshot).
type Resolution struct {
	// Cycle is the cycle's edge list in cycle order (each edge's To is
	// the next edge's From; the last edge closes back to the first).
	Cycle []CycleEdge
	// TDR2 selects the resolution kind: reposition (true) or abort.
	TDR2 bool
	// Victim is the junction transaction; for TDR-1 the one to abort,
	// for TDR-2 the junction whose queue prefix is repositioned.
	Victim table.TxnID
	// Resource is the repositioned queue (TDR-2 only).
	Resource table.ResourceID
	// Salvaged is set by Step 3 on TDR-1 resolutions whose victim was
	// rescued because an earlier abort had already granted its request;
	// a salvaged resolution needs no live action.
	Salvaged bool
}

// Reposition records one TDR-2 application: the requests in ST were moved
// right after those in AV in the queue of Resource.
type Reposition struct {
	Resource table.ResourceID
	Junction table.TxnID // the junction transaction whose TRRP was disconnected
	AV, ST   []table.QueueEntry
}

// String prints "R2: AV[(T9, IX) (T3, S)] ST[(T8, X)]".
func (r Reposition) String() string {
	s := string(r.Resource) + ": AV["
	for i, q := range r.AV {
		if i > 0 {
			s += " "
		}
		s += q.String()
	}
	s += "] ST["
	for i, q := range r.ST {
		if i > 0 {
			s += " "
		}
		s += q.String()
	}
	return s + "]"
}

// Result reports one periodic activation.
type Result struct {
	// Aborted lists the victims actually aborted at Step 3, in
	// processing order.
	Aborted []table.TxnID
	// Salvaged lists victims that were selected during Step 2 but
	// removed from the abortion list at Step 3 because an earlier abort
	// had already granted their request (Example 5.1's refinement).
	Salvaged []table.TxnID
	// Repositioned lists the TDR-2 applications of this activation; each
	// resolved (part of) a deadlock without aborting anyone.
	Repositioned []Reposition
	// Resolutions lists every cycle found, with its TDR decision and the
	// edge evidence needed to re-verify it, in discovery order. Step 3
	// marks the salvaged ones. len(Resolutions) == CyclesSearched.
	Resolutions []Resolution
	// Granted lists every request that became granted during Step 3.
	Granted []table.Grant
	// CyclesSearched is the paper's c': how many cycles the directed
	// walk actually found and resolved (c' <= c and c' <= n).
	CyclesSearched int
	// EdgeVisits counts edge-cursor operations during Step 2; it is the
	// empirical side of the O(n + e*(c'+1)) time bound.
	EdgeVisits int
	// Vertices and Edges are the n and e of this activation's graph.
	Vertices, Edges int
	// BuildTime, SearchTime and ResolveTime decompose the activation:
	// Step 1 (TST construction from the lock table), Step 2 (the
	// directed walk with TDR-1/TDR-2 victim selection, including any
	// queue repositionings) and Step 3 (abort confirmation and queue
	// rescheduling). Their sum is the algorithmic part of a detector
	// pause; the caller adds whatever synchronization it paid to get a
	// consistent table.
	BuildTime, SearchTime, ResolveTime time.Duration
}

// Detector runs the periodic-detection-resolution algorithm against a
// lock table. It is not safe for concurrent use with table mutations;
// the caller serializes (the public hwtwbg package does).
type Detector struct {
	tb  Table
	cfg Config

	// Per-run state (the TST of the paper), rebuilt by Step 1.
	verts map[table.TxnID]*vertex
	order []table.TxnID // all transaction ids, ascending ("for v := 1 to N")

	abortion    []table.TxnID
	change      []table.ResourceID
	reposs      []Reposition
	resolutions []Resolution

	cycles     int
	edgeVisits int

	// Vertex storage is pooled in fixed chunks and reused across runs,
	// so a steady-state activation allocates almost nothing: the
	// "reasonable storage complexity" of Section 5 in practice.
	chunks    [][]vertex
	usedVerts int
	grantSet  map[table.TxnID]bool
}

// vertex is one TST entry: the waited adjacency list (W edge first, then
// H edges), the resumable edge cursor, and the ancestor mark.
type vertex struct {
	edges    []wedge
	cur      int         // index into edges; len(edges) plays the role of current = nil
	ancestor table.TxnID // 0 unvisited, rootMark for the walk root, else the DFS parent
	pr       table.ResourceID
	inQueue  bool
}

// wedge is one waited-list edge: (lock, tid) in the paper's encoding,
// plus the resource that induced it (carried so that a detected cycle
// can be reported with re-verifiable evidence). Mode != NL identifies a
// W edge; To == 0 marks the end of a queue.
type wedge struct {
	Mode lock.Mode
	To   table.TxnID
	rsrc table.ResourceID
}

// rootMark is the paper's -1 ancestor value marking the walk's root.
const rootMark table.TxnID = -1

// New returns a detector bound to tb (a *table.Table, or any adapter
// satisfying the Table interface).
func New(tb Table, cfg Config) *Detector {
	return &Detector{
		tb:       tb,
		cfg:      cfg,
		verts:    make(map[table.TxnID]*vertex),
		grantSet: make(map[table.TxnID]bool),
	}
}

// vertexChunk is the pooled allocation unit.
const vertexChunk = 64

// allocVertex hands out a recycled vertex from the chunk pool.
func (d *Detector) allocVertex() *vertex {
	ci, off := d.usedVerts/vertexChunk, d.usedVerts%vertexChunk
	if ci == len(d.chunks) {
		d.chunks = append(d.chunks, make([]vertex, vertexChunk))
	}
	d.usedVerts++
	v := &d.chunks[ci][off]
	v.edges = v.edges[:0]
	v.cur = 0
	v.ancestor = 0
	v.pr = ""
	v.inQueue = false
	return v
}

// Run performs one periodic activation: Step 1 builds the H edges and
// resets the walk state, Step 2 finds and resolves cycles selecting
// victims by TDR, and Step 3 confirms aborts and grants. The table is
// left deadlock-free. The per-step wall-clock breakdown is reported in
// the Result's BuildTime/SearchTime/ResolveTime.
func (d *Detector) Run() Result {
	t0 := time.Now()
	d.step1()
	t1 := time.Now()
	d.step2()
	t2 := time.Now()
	res := d.step3()
	res.BuildTime = t1.Sub(t0)
	res.SearchTime = t2.Sub(t1)
	res.ResolveTime = time.Since(t2)
	return res
}

// WireEdge is an exported view of one TST waited-list entry, used by
// tests and the twbgdot tool to inspect the Step 1 wiring (Figure 5.1).
type WireEdge struct {
	Mode lock.Mode   // NL for H edges, the source's blocked mode for W edges
	To   table.TxnID // 0 marks the end of a queue
}

// Wiring runs Step 1 and returns the TST adjacency it builds: for each
// transaction the waited list in order (the W edge, if any, first). The
// walk state is reset, so calling Run afterwards is fine.
func (d *Detector) Wiring() map[table.TxnID][]WireEdge {
	d.step1()
	out := make(map[table.TxnID][]WireEdge, len(d.verts))
	for id, v := range d.verts {
		ws := make([]WireEdge, len(v.edges))
		for i, e := range v.edges {
			ws[i] = WireEdge{Mode: e.Mode, To: e.To}
		}
		out[id] = ws
	}
	return out
}

// step1 constructs the per-run TST: W edges from every queue (always
// conceptually present), H edges by ECR-1 and ECR-2 over every resource,
// and initializes ancestor/current plus the three global lists.
func (d *Detector) step1() {
	clear(d.verts)
	d.usedVerts = 0
	d.order = d.order[:0]
	d.abortion = d.abortion[:0]
	d.change = d.change[:0]
	d.reposs = nil      // returned to the caller; must be fresh
	d.resolutions = nil // likewise
	d.cycles = 0
	d.edgeVisits = 0

	vert := func(id table.TxnID) *vertex {
		v, ok := d.verts[id]
		if !ok {
			v = d.allocVertex()
			d.verts[id] = v
			d.order = append(d.order, id)
		}
		return v
	}
	// W edges first so they sit at the front of each waited list
	// ("the edge whose lock is not NL is put at the front").
	d.tb.EachResource(func(r *table.Resource) bool {
		qn := r.QueueLen()
		for i := 0; i < qn; i++ {
			entry := r.QueueAt(i)
			v := vert(entry.Txn)
			v.pr = r.ID()
			v.inQueue = true
			next := table.TxnID(0)
			if i+1 < qn {
				next = r.QueueAt(i + 1).Txn
			}
			v.edges = append(v.edges, wedge{Mode: entry.Blocked, To: next, rsrc: r.ID()})
		}
		return true
	})
	// H edges by ECR-1 and ECR-2.
	d.tb.EachResource(func(r *table.Resource) bool {
		hn, qn := r.NumHolders(), r.QueueLen()
		addH := func(from, to table.TxnID) {
			vert(to) // ensure the target exists as a vertex
			v := vert(from)
			v.edges = append(v.edges, wedge{Mode: lock.NL, To: to, rsrc: r.ID()})
		}
		for i := 0; i < hn; i++ {
			hi := r.HolderAt(i)
			for j := i + 1; j < hn; j++ {
				hj := r.HolderAt(j)
				if !lock.Comp(hi.Granted, hj.Blocked) || !lock.Comp(hi.Blocked, hj.Blocked) {
					addH(hi.Txn, hj.Txn)
				}
				if !lock.Comp(hi.Blocked, hj.Granted) {
					addH(hj.Txn, hi.Txn)
				}
			}
		}
		for i := 0; i < hn; i++ {
			h := r.HolderAt(i)
			for j := 0; j < qn; j++ {
				w := r.QueueAt(j)
				if !lock.Comp(w.Blocked, h.Granted) || !lock.Comp(w.Blocked, h.Blocked) {
					addH(h.Txn, w.Txn)
					break
				}
			}
		}
		return true
	})
	sort.Slice(d.order, func(i, j int) bool { return d.order[i] < d.order[j] })
	// ancestor and current start clean: ancestor = 0, current = waited.
	// (vertex zero values already satisfy this.)
}

// step2 is the directed walk of the paper: for each transaction in id
// order, walk the TST following current cursors, detecting a cycle
// whenever an edge reaches a vertex with a non-zero ancestor, resolving
// it via victim selection, and resuming at the vertex that closed it.
func (d *Detector) step2() {
	for _, root := range d.order {
		d.verts[root].ancestor = rootMark
		v := root
		for v != rootMark {
			vv := d.verts[v]
			if vv.cur >= len(vv.edges) { // current = nil
				w := vv.ancestor
				vv.ancestor = 0
				d.emit(TraceEvent{Kind: TraceBacktrack, From: v, To: w})
				v = w
				continue
			}
			e := vv.edges[vv.cur]
			d.edgeVisits++
			w := e.To
			if w == 0 || d.exhausted(w) {
				d.emit(TraceEvent{Kind: TraceSkip, From: v, To: w})
				vv.cur++ // current := link
				continue
			}
			if d.verts[w].ancestor != 0 {
				d.cycles++
				d.victimSelection(v, w)
				v = w
				continue
			}
			d.emit(TraceEvent{Kind: TraceVisit, From: v, To: w})
			d.verts[w].ancestor = v
			v = w
		}
	}
}

// exhausted reports whether w's current is nil (fully explored, or
// killed by a previous resolution).
func (d *Detector) exhausted(w table.TxnID) bool {
	vw, ok := d.verts[w]
	return !ok || vw.cur >= len(vw.edges)
}

// kill sets a vertex's current to nil so the walk never enters it again.
func (d *Detector) kill(id table.TxnID) {
	if v, ok := d.verts[id]; ok {
		v.cur = len(v.edges)
	}
}

// step3 confirms aborts and grants: victims that an earlier abort already
// granted are salvaged, the rest are aborted (releasing their locks and
// scheduling the affected resources), and finally every change-list
// resource has its queue scheduled. The abortion list is processed most
// recent first; inner cycles are detected after the outer ones they
// nest in, so this order maximizes the chance that aborting a later
// victim salvages an earlier one (Example 5.1).
func (d *Detector) step3() Result {
	res := Result{
		Repositioned:   d.reposs,
		Resolutions:    d.resolutions,
		CyclesSearched: d.cycles,
		EdgeVisits:     d.edgeVisits,
		Vertices:       len(d.order),
	}
	// A junction appears in at most one resolution (its vertex is killed
	// when selected), so victim id identifies the resolution to mark.
	byVictim := make(map[table.TxnID]*Resolution, len(d.resolutions))
	for i := range d.resolutions {
		r := &d.resolutions[i]
		if !r.TDR2 {
			byVictim[r.Victim] = r
		}
	}
	for _, v := range d.verts {
		res.Edges += len(v.edges)
	}
	clear(d.grantSet)
	grantSet := d.grantSet
	record := func(gs []table.Grant) {
		for _, g := range gs {
			grantSet[g.Txn] = true
		}
		res.Granted = append(res.Granted, gs...)
	}
	for i := len(d.abortion) - 1; i >= 0; i-- {
		v := d.abortion[i]
		if grantSet[v] {
			d.emit(TraceEvent{Kind: TraceSalvage, From: v})
			res.Salvaged = append(res.Salvaged, v)
			if r := byVictim[v]; r != nil {
				r.Salvaged = true
			}
			continue
		}
		d.emit(TraceEvent{Kind: TraceAbort, From: v})
		record(d.tb.Abort(v))
		res.Aborted = append(res.Aborted, v)
	}
	for _, rid := range d.change {
		record(d.tb.ScheduleQueue(rid))
	}
	return res
}

// String identifies the detector in logs.
func (d *Detector) String() string {
	return fmt.Sprintf("detect.Detector(%d txns known)", len(d.verts))
}
