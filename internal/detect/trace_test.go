package detect

import (
	"strings"
	"testing"

	"hwtwbg/internal/table"
)

// TestTraceExample51 narrates the Example 5.1 run and checks the trace
// contains the paper's milestones in order: the 3-cycle, T3's
// selection, the 2-cycle, T2's selection, then Step 3's abort of T2 and
// salvage of T3.
func TestTraceExample51(t *testing.T) {
	tb := example51(t)
	costs := NewCostTable(1)
	costs.Set(1, 6)
	costs.Set(2, 4)
	costs.Set(3, 1)
	var lines []string
	d := New(tb, Config{Costs: costs, Trace: func(e TraceEvent) {
		lines = append(lines, e.String())
	}})
	d.Run()
	script := strings.Join(lines, "\n")
	milestones := []string{
		"cycle detected: T1 T2 T3",
		"selected victim T3 (abort)",
		"cycle detected: T1 T2\n",
		"selected victim T2 (abort)",
		"step 3: abort T2",
		"step 3: salvage T3 (already granted)",
	}
	rest := script + "\n"
	for _, m := range milestones {
		i := strings.Index(rest, m)
		if i < 0 {
			t.Fatalf("trace missing (or out of order) %q:\n%s", m, script)
		}
		rest = rest[i+len(m):]
	}
	// Candidate pricing must show T3's TDR-1 candidate at cost 1 and the
	// TDR-2 candidate pricing ST={T2} at 4/2 = 2.
	if !strings.Contains(script, "candidate TDR-1 T3 (cost 1.00)") {
		t.Errorf("missing T3 candidate:\n%s", script)
	}
	if !strings.Contains(script, "candidate TDR-2 at junction T3 (cost 2.00)") {
		t.Errorf("missing TDR-2 candidate:\n%s", script)
	}
}

// TestTraceExample41TDR2 checks the TDR-2 selection event fires for the
// uniform-cost Example 4.1 run.
func TestTraceExample41TDR2(t *testing.T) {
	tb := example41(t)
	var events []TraceEvent
	New(tb, Config{Trace: func(e TraceEvent) { events = append(events, e) }}).Run()
	var sawTDR2, sawVisit, sawSkip, sawBacktrack bool
	for _, e := range events {
		switch e.Kind {
		case TraceVictimTDR2:
			sawTDR2 = true
			if e.From != 3 {
				t.Errorf("TDR-2 at junction %v, want T3", e.From)
			}
		case TraceVisit:
			sawVisit = true
		case TraceSkip:
			sawSkip = true
		case TraceBacktrack:
			sawBacktrack = true
		}
	}
	if !sawTDR2 || !sawVisit || !sawSkip || !sawBacktrack {
		t.Fatalf("missing event kinds: tdr2=%v visit=%v skip=%v backtrack=%v",
			sawTDR2, sawVisit, sawSkip, sawBacktrack)
	}
}

// TestTraceStrings covers every event rendering.
func TestTraceStrings(t *testing.T) {
	cases := map[string]TraceEvent{
		"visit T1 -> T2":                              {Kind: TraceVisit, From: 1, To: 2},
		"skip edge T1 -> T0":                          {Kind: TraceSkip, From: 1, To: 0},
		"backtrack T2 -> T1":                          {Kind: TraceBacktrack, From: 2, To: 1},
		"cycle detected: T1 T2":                       {Kind: TraceCycle, Cycle: []table.TxnID{1, 2}},
		"candidate TDR-1 T3 (cost 2.50)":              {Kind: TraceCandidate, From: 3, Cost: 2.5},
		"candidate TDR-2 at junction T3 (cost 0.50)":  {Kind: TraceCandidate, From: 3, Cost: 0.5, TDR2: true},
		"selected victim T9 (abort)":                  {Kind: TraceVictimTDR1, From: 9},
		"selected TDR-2 repositioning at junction T3": {Kind: TraceVictimTDR2, From: 3},
		"step 3: abort T2":                            {Kind: TraceAbort, From: 2},
		"step 3: salvage T3 (already granted)":        {Kind: TraceSalvage, From: 3},
	}
	for want, e := range cases {
		if got := e.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if got := (TraceEvent{Kind: TraceKind(99)}).String(); got != "?" {
		t.Errorf("unknown kind rendered %q, want ?", got)
	}
	if TraceVisit.String() != "visit" {
		t.Error("kind name")
	}
}
