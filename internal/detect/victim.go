package detect

import (
	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
)

// candidate is one victim option for a detected cycle.
type candidate struct {
	junction table.TxnID
	cost     float64
	tdr2     bool
	av, st   []table.QueueEntry // TDR-2 only
	resource table.ResourceID   // TDR-2 only
}

// victimSelection resolves the cycle closed by the edge v -> w, where the
// tree path from w to v is recorded in the ancestor pointers. It walks
// the cycle, collects the victim candidates defined by the TRRP
// Disconnection Rule, applies the cheapest one, and clears the ancestor
// of every backtracked vertex except w so the walk can resume at w.
//
// Candidates (Definition 4.1 and Section 4's victim strategy):
//
//   - every junction transaction — a cycle vertex whose outgoing cycle
//     edge is H-labeled, i.e. the endpoint of one TRRP and the start of
//     the next — is a TDR-1 candidate with cost Cost(junction);
//   - a junction whose incoming cycle edge is W-labeled and whose blocked
//     mode is compatible with the total mode of the resource it waits on
//     is additionally a TDR-2 candidate with cost sum(Cost(ST))/2, since
//     the ST transactions are delayed, not aborted.
func (d *Detector) victimSelection(v, w table.TxnID) {
	// Reconstruct the cycle: ancestors lead from v back to w; the edge
	// v -> w closes it. In cycle order the vertices are w, ..., v.
	var rev []table.TxnID
	for u := v; u != w; u = d.verts[u].ancestor {
		rev = append(rev, u)
	}
	cycle := make([]table.TxnID, 0, len(rev)+1)
	cycle = append(cycle, w)
	for i := len(rev) - 1; i >= 0; i-- {
		cycle = append(cycle, rev[i])
	}
	d.emit(TraceEvent{Kind: TraceCycle, From: v, To: w, Cycle: cycle})

	// outEdge(u) is the cycle edge leaving u: the edge its cursor points
	// at (cursors only advance past skipped edges, so the tree edge and
	// the closing edge are still current).
	outEdge := func(u table.TxnID) wedge {
		vu := d.verts[u]
		return vu.edges[vu.cur]
	}

	// Capture the cycle's edge evidence (for snapshot callers to
	// re-verify): the edge leaving cycle[i] targets cycle[i+1], with the
	// inducing resource recorded at Step 1 (or by a TDR-2 rewire).
	evidence := make([]CycleEdge, len(cycle))
	for i, u := range cycle {
		e := outEdge(u)
		evidence[i] = CycleEdge{
			From:     u,
			To:       cycle[(i+1)%len(cycle)],
			Resource: e.rsrc,
			Mode:     e.Mode,
		}
	}

	best := candidate{cost: -1}
	better := func(c candidate) bool {
		switch {
		case best.cost < 0:
			return true
		case c.cost != best.cost:
			return c.cost < best.cost
		case c.tdr2 != best.tdr2:
			// Tie: prefer the resolution that aborts nobody, unless
			// configured otherwise.
			return c.tdr2 != d.cfg.PreferAbortOnTie
		default:
			return c.junction < best.junction
		}
	}
	for i, u := range cycle {
		if outEdge(u).Mode != lock.NL {
			continue // outgoing cycle edge is W-labeled: u is mid-TRRP
		}
		// u is a junction: TDR-1 candidate.
		c1 := candidate{junction: u, cost: d.cfg.cost(u)}
		d.emit(TraceEvent{Kind: TraceCandidate, From: u, Cost: c1.cost})
		if better(c1) {
			best = c1
		}
		if d.cfg.DisableTDR2 {
			continue
		}
		// Incoming cycle edge: from the predecessor in cycle order (the
		// closing edge v -> w for the first vertex).
		prev := cycle[(i+len(cycle)-1)%len(cycle)]
		if outEdge(prev).Mode == lock.NL {
			continue // incoming edge is H-labeled: TDR-2 does not apply
		}
		vu := d.verts[u]
		if !vu.inQueue {
			continue
		}
		r := d.tb.Resource(vu.pr)
		if r == nil {
			continue
		}
		_, bm, ok := d.tb.WaitingOn(u)
		if !ok || !lock.Comp(bm, r.TotalMode()) {
			continue
		}
		av, st := d.tb.PeekAVST(vu.pr, u)
		sum := 0.0
		for _, q := range st {
			sum += d.cfg.cost(q.Txn)
		}
		c := candidate{junction: u, cost: sum / 2, tdr2: true, av: av, st: st, resource: vu.pr}
		d.emit(TraceEvent{Kind: TraceCandidate, From: u, Cost: c.cost, TDR2: true})
		if better(c) {
			best = c
		}
	}

	if best.cost < 0 {
		// Lemma 3 guarantees at least two TRRPs, hence at least one
		// junction, in every cycle.
		panic("detect: cycle without a junction transaction (violates Lemma 3)")
	}
	d.apply(best, evidence)

	// Backtracking: clear the ancestor of every backtracked vertex
	// except w.
	for _, u := range rev {
		d.verts[u].ancestor = 0
	}
}

// apply carries out the selected resolution and records it, with the
// cycle evidence, for snapshot callers.
func (d *Detector) apply(c candidate, evidence []CycleEdge) {
	if !c.tdr2 {
		// TDR-1: the junction will be aborted at Step 3; its vertex is
		// dead for the rest of the walk.
		d.emit(TraceEvent{Kind: TraceVictimTDR1, From: c.junction})
		d.kill(c.junction)
		d.abortion = append(d.abortion, c.junction)
		d.resolutions = append(d.resolutions, Resolution{Cycle: evidence, Victim: c.junction})
		return
	}
	d.emit(TraceEvent{Kind: TraceVictimTDR2, From: c.junction})
	// TDR-2: reposition ST right after AV in the queue, rewire the
	// resource's W edges to the new order, boost ST costs so the same
	// requests are not repositioned forever, remember the resource for
	// Step 3 scheduling, and kill the AV vertices (Lemma 4.1: they can
	// no longer be in any deadlock cycle).
	av, st := d.tb.RepositionAVST(c.resource, c.junction)
	d.rewireQueue(c.resource)
	if d.cfg.Costs != nil {
		for _, q := range st {
			d.cfg.Costs.Set(q.Txn, d.cfg.boost(d.cfg.Costs.Cost(q.Txn)))
		}
	}
	d.change = append(d.change, c.resource)
	for _, q := range av {
		d.kill(q.Txn)
	}
	d.reposs = append(d.reposs, Reposition{Resource: c.resource, Junction: c.junction, AV: av, ST: st})
	d.resolutions = append(d.resolutions, Resolution{Cycle: evidence, TDR2: true, Victim: c.junction, Resource: c.resource})
}

// rewireQueue refreshes the W edges of rid's queue members after a
// repositioning. A queue member's W edge is always the first entry of
// its waited list; only its successor changes.
func (d *Detector) rewireQueue(rid table.ResourceID) {
	r := d.tb.Resource(rid)
	if r == nil {
		return
	}
	qn := r.QueueLen()
	for i := 0; i < qn; i++ {
		entry := r.QueueAt(i)
		v, ok := d.verts[entry.Txn]
		if !ok || len(v.edges) == 0 || v.edges[0].Mode == lock.NL {
			continue
		}
		next := table.TxnID(0)
		if i+1 < qn {
			next = r.QueueAt(i + 1).Txn
		}
		v.edges[0].To = next
	}
}
