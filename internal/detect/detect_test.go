package detect

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"hwtwbg/internal/lock"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

func mustReq(t *testing.T, tb *table.Table, txn table.TxnID, rid table.ResourceID, m lock.Mode, wantGrant bool) {
	t.Helper()
	g, err := tb.Request(txn, rid, m)
	if err != nil {
		t.Fatalf("Request(%v,%s,%v): %v", txn, rid, m, err)
	}
	if g != wantGrant {
		t.Fatalf("Request(%v,%s,%v): granted=%v, want %v\n%s", txn, rid, m, g, wantGrant, tb)
	}
}

// example41 builds the exact situation of Example 4.1.
func example41(t *testing.T) *table.Table {
	t.Helper()
	tb := table.New()
	mustReq(t, tb, 1, "R1", lock.IX, true)
	mustReq(t, tb, 2, "R1", lock.IS, true)
	mustReq(t, tb, 3, "R1", lock.IX, true)
	mustReq(t, tb, 4, "R1", lock.IS, true)
	mustReq(t, tb, 7, "R2", lock.IS, true)
	mustReq(t, tb, 2, "R1", lock.S, false)
	mustReq(t, tb, 1, "R1", lock.S, false)
	mustReq(t, tb, 5, "R1", lock.IX, false)
	mustReq(t, tb, 6, "R1", lock.S, false)
	mustReq(t, tb, 7, "R1", lock.IX, false)
	mustReq(t, tb, 8, "R2", lock.X, false)
	mustReq(t, tb, 9, "R2", lock.IX, false)
	mustReq(t, tb, 3, "R2", lock.S, false)
	mustReq(t, tb, 4, "R2", lock.X, false)
	return tb
}

// example51 builds the situation of Example 5.1.
func example51(t *testing.T) *table.Table {
	t.Helper()
	tb := table.New()
	mustReq(t, tb, 1, "R1", lock.S, true)
	mustReq(t, tb, 2, "R2", lock.S, true)
	mustReq(t, tb, 3, "R2", lock.S, true)
	mustReq(t, tb, 2, "R1", lock.X, false)
	mustReq(t, tb, 3, "R1", lock.S, false)
	mustReq(t, tb, 1, "R2", lock.X, false)
	return tb
}

// TestFigure51Wiring checks the Step 1 TST wiring for Example 4.1
// (experiment E6): W edges first in each waited list, the paper's H
// edges, and 0-terminated queue tails.
func TestFigure51Wiring(t *testing.T) {
	d := New(example41(t), Config{})
	w := d.Wiring()
	want := map[table.TxnID][]WireEdge{
		1: {{lock.NL, 2}, {lock.NL, 5}},                            // H: T1->T2, T1->T5
		2: {{lock.NL, 5}},                                          // H: T2->T5
		3: {{lock.S, 4}, {lock.NL, 1}, {lock.NL, 2}, {lock.NL, 6}}, // W in R2's queue first, then H edges
		4: {{lock.X, 0}},                                           // last in R2's queue
		5: {{lock.IX, 6}},                                          // W in R1's queue
		6: {{lock.S, 7}},                                           // W
		7: {{lock.IX, 0}, {lock.NL, 8}},                            // W (last in R1's queue), then H: T7->T8
		8: {{lock.X, 9}},                                           // W
		9: {{lock.IX, 3}},                                          // W
	}
	for id, edges := range want {
		if !reflect.DeepEqual(w[id], edges) {
			t.Errorf("TST(%v).waited = %v, want %v", table.TxnID(id), w[id], edges)
		}
	}
	if len(w) != len(want) {
		t.Errorf("wiring has %d vertices, want %d: %v", len(w), len(want), w)
	}
}

// TestExample41Run runs the full periodic algorithm on Example 4.1 with
// uniform costs. With every transaction costing 1, the TDR-2 candidate
// T8 (cost 1/2) is the global minimum in every cycle that contains it,
// so the deadlocks must be resolved without aborting anybody:
// repositioning (T8, X) after (T3, S) and granting T9 (experiments E4/E5).
func TestExample41Run(t *testing.T) {
	tb := example41(t)
	res := New(tb, Config{}).Run()
	if len(res.Aborted) != 0 {
		t.Fatalf("aborted %v; Example 4.1 resolves without aborts under uniform costs", res.Aborted)
	}
	if len(res.Repositioned) != 1 {
		t.Fatalf("repositionings = %v, want exactly one", res.Repositioned)
	}
	rp := res.Repositioned[0]
	if rp.Resource != "R2" || rp.Junction != 3 {
		t.Errorf("repositioned %v, want junction T3 at R2", rp)
	}
	if got := rp.String(); got != "R2: AV[(T9, IX) (T3, S)] ST[(T8, X)]" {
		t.Errorf("Reposition.String() = %q", got)
	}
	if len(res.Granted) != 1 || res.Granted[0].Txn != 9 {
		t.Fatalf("granted = %v, want T9", res.Granted)
	}
	// Figure 4.2: the resulting state has no cycle.
	if twbg.Build(tb).HasCycle() {
		t.Fatalf("cycle remains after resolution:\n%s", tb)
	}
	want := "R2(IX): Holder((T9, IX, NL) (T7, IS, NL)) Queue((T3, S) (T8, X) (T4, X))"
	if got := tb.Resource("R2").String(); got != want {
		t.Errorf("R2:\n got  %s\n want %s", got, want)
	}
	if res.CyclesSearched == 0 {
		t.Error("CyclesSearched must be positive")
	}
	if res.CyclesSearched > 4 {
		t.Errorf("CyclesSearched = %d, must not exceed the 4 elementary cycles", res.CyclesSearched)
	}
}

// TestExample41VictimByCost forces TDR-1 by making T8's repositioning
// expensive: with cost(T8) very high and cost(T3) minimal, T3 must be
// aborted instead.
func TestExample41VictimByCost(t *testing.T) {
	tb := example41(t)
	costs := NewCostTable(10)
	costs.Set(8, 1000) // TDR-2 candidate costs 500
	costs.Set(3, 2)
	res := New(tb, Config{Costs: costs}).Run()
	if len(res.Repositioned) != 0 {
		t.Fatalf("repositioned %v, want none", res.Repositioned)
	}
	if len(res.Aborted) != 1 || res.Aborted[0] != 3 {
		t.Fatalf("aborted = %v, want [T3]", res.Aborted)
	}
	if twbg.Deadlocked(tb) {
		t.Fatalf("deadlock remains:\n%s", tb)
	}
}

// TestExample51Run reproduces the paper's Example 5.1 run end to end
// (experiment E7): costs 6, 4, 1 for T1, T2, T3; the walk from T1 finds
// {T1,T2,T3} first (W edge precedes H edges) selecting T3, then {T1,T2}
// selecting T2; Step 3 aborts T2, which grants T3, so T3 is salvaged.
func TestExample51Run(t *testing.T) {
	tb := example51(t)
	costs := NewCostTable(1)
	costs.Set(1, 6)
	costs.Set(2, 4)
	costs.Set(3, 1)
	res := New(tb, Config{Costs: costs}).Run()

	if len(res.Aborted) != 1 || res.Aborted[0] != 2 {
		t.Fatalf("aborted = %v, want [T2]", res.Aborted)
	}
	if len(res.Salvaged) != 1 || res.Salvaged[0] != 3 {
		t.Fatalf("salvaged = %v, want [T3]", res.Salvaged)
	}
	var grantedTxns []table.TxnID
	for _, g := range res.Granted {
		grantedTxns = append(grantedTxns, g.Txn)
	}
	if len(grantedTxns) != 1 || grantedTxns[0] != 3 {
		t.Fatalf("granted = %v, want [T3]", res.Granted)
	}
	if res.CyclesSearched != 2 {
		t.Errorf("CyclesSearched = %d, want 2", res.CyclesSearched)
	}
	// The paper's final state.
	wantR1 := "R1(S): Holder((T3, S, NL) (T1, S, NL)) Queue()"
	wantR2 := "R2(S): Holder((T3, S, NL)) Queue((T1, X))"
	if got := tb.Resource("R1").String(); got != wantR1 {
		t.Errorf("R1:\n got  %s\n want %s", got, wantR1)
	}
	if got := tb.Resource("R2").String(); got != wantR2 {
		t.Errorf("R2:\n got  %s\n want %s", got, wantR2)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
}

// TestNoDeadlockNoWork: a busy but deadlock-free table must produce an
// empty result and leave the table untouched.
func TestNoDeadlockNoWork(t *testing.T) {
	tb := table.New()
	mustReq(t, tb, 1, "A", lock.X, true)
	mustReq(t, tb, 2, "A", lock.S, false)
	mustReq(t, tb, 3, "A", lock.S, false)
	mustReq(t, tb, 4, "B", lock.IX, true)
	before := tb.String()
	res := New(tb, Config{}).Run()
	if len(res.Aborted)+len(res.Repositioned)+len(res.Granted)+len(res.Salvaged) != 0 {
		t.Fatalf("unexpected actions: %+v", res)
	}
	if res.CyclesSearched != 0 {
		t.Errorf("CyclesSearched = %d", res.CyclesSearched)
	}
	if tb.String() != before {
		t.Fatalf("table mutated:\n%s\nvs\n%s", tb.String(), before)
	}
}

// TestTwoTxnDeadlockAbortsCheapest: classic crossing X locks; the
// cheaper transaction is the victim.
func TestTwoTxnDeadlockAbortsCheapest(t *testing.T) {
	for _, cheap := range []table.TxnID{1, 2} {
		tb := table.New()
		mustReq(t, tb, 1, "A", lock.X, true)
		mustReq(t, tb, 2, "B", lock.X, true)
		mustReq(t, tb, 1, "B", lock.X, false)
		mustReq(t, tb, 2, "A", lock.X, false)
		costs := NewCostTable(10)
		costs.Set(cheap, 1)
		res := New(tb, Config{Costs: costs}).Run()
		if len(res.Aborted) != 1 || res.Aborted[0] != cheap {
			t.Fatalf("cheap=%v: aborted %v", cheap, res.Aborted)
		}
		if twbg.Deadlocked(tb) {
			t.Fatal("deadlock remains")
		}
		// The survivor must now hold both locks.
		other := 3 - cheap
		if len(res.Granted) != 1 || res.Granted[0].Txn != other {
			t.Fatalf("granted = %v, want %v", res.Granted, other)
		}
	}
}

// TestConversionDeadlock: the S->X double-upgrade deadlock can only be
// resolved by TDR-1 (both junctions are upgraders, not queue members).
func TestConversionDeadlock(t *testing.T) {
	tb := table.New()
	mustReq(t, tb, 1, "A", lock.S, true)
	mustReq(t, tb, 2, "A", lock.S, true)
	mustReq(t, tb, 1, "A", lock.X, false)
	mustReq(t, tb, 2, "A", lock.X, false)
	res := New(tb, Config{}).Run()
	if len(res.Aborted) != 1 {
		t.Fatalf("aborted = %v, want one victim", res.Aborted)
	}
	if len(res.Repositioned) != 0 {
		t.Fatalf("TDR-2 cannot apply to upgrader junctions: %v", res.Repositioned)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
	// The survivor's upgrade must have been granted.
	survivor := table.TxnID(3) - res.Aborted[0]
	if tb.HeldMode(survivor, "A") != lock.X {
		t.Fatalf("survivor %v holds %v, want X", survivor, tb.HeldMode(survivor, "A"))
	}
}

// TestDisableTDR2 forces abort-based resolution on Example 4.1.
func TestDisableTDR2(t *testing.T) {
	tb := example41(t)
	res := New(tb, Config{DisableTDR2: true}).Run()
	if len(res.Repositioned) != 0 {
		t.Fatalf("repositioned %v with TDR-2 disabled", res.Repositioned)
	}
	if len(res.Aborted) == 0 {
		t.Fatal("no aborts with TDR-2 disabled")
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
}

// TestPreferAbortOnTie flips the tie-breaking preference.
func TestPreferAbortOnTie(t *testing.T) {
	// Build a cycle where a TDR-1 candidate and the TDR-2 candidate have
	// equal costs: costs(T8 in ST) = 2 => TDR-2 cost 1, equal to
	// cost(T3) = 1.
	costs := NewCostTable(1)
	costs.Set(8, 2)
	tb := example41(t)
	res := New(tb, Config{Costs: costs, PreferAbortOnTie: true}).Run()
	if len(res.Aborted) == 0 {
		t.Fatalf("expected at least one abort with PreferAbortOnTie, got %+v", res)
	}
	tb2 := example41(t)
	costs2 := NewCostTable(1)
	costs2.Set(8, 2)
	res2 := New(tb2, Config{Costs: costs2}).Run()
	if len(res2.Repositioned) == 0 {
		t.Fatalf("expected TDR-2 preferred on tie, got %+v", res2)
	}
}

// TestBoostPreventsRepeatedTDR2: after a TDR-2 repositioning the ST
// costs grow, so an immediately recreated identical deadlock picks a
// different resolution eventually.
func TestBoostPreventsRepeatedTDR2(t *testing.T) {
	costs := NewCostTable(1)
	tb := example41(t)
	d := New(tb, Config{Costs: costs})
	res := d.Run()
	if len(res.Repositioned) != 1 {
		t.Fatalf("first run: %+v", res)
	}
	if got := costs.Cost(8); got != 2 {
		t.Fatalf("cost(T8) after boost = %v, want 2 (1+1)", got)
	}
}

// TestCostTable covers the cost store directly.
func TestCostTable(t *testing.T) {
	c := NewCostTable(5)
	if c.Cost(1) != 5 {
		t.Error("default cost")
	}
	c.Set(1, 2)
	if c.Cost(1) != 2 {
		t.Error("explicit cost")
	}
	c.Delete(1)
	if c.Cost(1) != 5 {
		t.Error("delete must revert to default")
	}
	var zero CostTable
	zero.Set(3, 7) // must not panic on the zero value
	if zero.Cost(3) != 7 {
		t.Error("zero-value CostTable Set/Cost")
	}
}

// TestRunIsIdempotentWhenClean: running the detector twice in a row on
// the same table does nothing the second time.
func TestRunIsIdempotentWhenClean(t *testing.T) {
	tb := example41(t)
	d := New(tb, Config{})
	d.Run()
	res := d.Run()
	if len(res.Aborted)+len(res.Repositioned)+len(res.Granted) != 0 {
		t.Fatalf("second run acted: %+v", res)
	}
}

// TestRandomWorkloadsAlwaysResolved is the workhorse property test: on
// thousands of random deadlocked states, one periodic activation leaves
// the table deadlock-free, aborts nothing when there is no deadlock, and
// never exceeds the paper's c' bounds.
func TestRandomWorkloadsAlwaysResolved(t *testing.T) {
	modes := []lock.Mode{lock.IS, lock.IX, lock.S, lock.SIX, lock.X}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := table.New()
		costs := NewCostTable(1)
		d := New(tb, Config{Costs: costs})
		live := 0
		for step := 0; step < 1200; step++ {
			txn := table.TxnID(1 + rng.Intn(14))
			switch op := rng.Intn(12); {
			case op < 9:
				if tb.Blocked(txn) {
					continue
				}
				rid := table.ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(6)))
				if _, err := tb.Request(txn, rid, modes[rng.Intn(len(modes))]); err != nil {
					t.Fatal(err)
				}
			case op < 11:
				if tb.Blocked(txn) {
					continue
				}
				if _, err := tb.Release(txn); err != nil {
					t.Fatal(err)
				}
			default:
				tb.Abort(txn)
			}
			if step%7 != 0 {
				continue // periodic: detect every few operations
			}
			deadBefore := twbg.Deadlocked(tb)
			n := len(tb.Txns())
			c := len(twbg.Build(tb).Cycles(0))
			res := d.Run()
			if twbg.Deadlocked(tb) {
				t.Fatalf("seed %d step %d: deadlock survives Run:\n%s", seed, step, tb)
			}
			if !deadBefore && (len(res.Aborted) > 0 || len(res.Repositioned) > 0) {
				t.Fatalf("seed %d step %d: actions %+v without deadlock", seed, step, res)
			}
			if deadBefore && len(res.Aborted) == 0 && len(res.Repositioned) == 0 {
				t.Fatalf("seed %d step %d: deadlock resolved by nothing?", seed, step)
			}
			if res.CyclesSearched > n {
				t.Fatalf("seed %d step %d: c'=%d > n=%d", seed, step, res.CyclesSearched, n)
			}
			if res.CyclesSearched > c {
				t.Fatalf("seed %d step %d: c'=%d > c=%d", seed, step, res.CyclesSearched, c)
			}
			live++
		}
		if live == 0 {
			t.Fatalf("seed %d: detector never ran", seed)
		}
	}
}

// TestZeroAbortResolution measures that TDR-2 really fires on workloads
// rich in queue-compatible waiters (experiment E11's unit-level check).
func TestZeroAbortResolution(t *testing.T) {
	resolvedWithoutAbort := 0
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		tb := table.New()
		// Hot-spot workload: IS/S traffic with occasional X, which
		// produces queues holding compatible waiters stuck behind
		// incompatible ones — TDR-2's habitat.
		for step := 0; step < 300; step++ {
			txn := table.TxnID(1 + rng.Intn(10))
			if tb.Blocked(txn) {
				continue
			}
			rid := table.ResourceID(fmt.Sprintf("R%d", 1+rng.Intn(3)))
			m := lock.IS
			switch rng.Intn(6) {
			case 0:
				m = lock.X
			case 1, 2:
				m = lock.S
			case 3:
				m = lock.IX
			}
			if _, err := tb.Request(txn, rid, m); err != nil {
				t.Fatal(err)
			}
			if twbg.Deadlocked(tb) {
				res := New(tb, Config{}).Run()
				if len(res.Aborted) == 0 && len(res.Repositioned) > 0 {
					resolvedWithoutAbort++
				}
				if twbg.Deadlocked(tb) {
					t.Fatalf("unresolved deadlock:\n%s", tb)
				}
			}
		}
	}
	if resolvedWithoutAbort == 0 {
		t.Fatal("TDR-2 never resolved a deadlock without aborts; the headline feature is dead")
	}
	t.Logf("deadlocks resolved with zero aborts: %d", resolvedWithoutAbort)
}

func TestDetectorString(t *testing.T) {
	d := New(table.New(), Config{})
	d.Run()
	if !strings.Contains(d.String(), "detect.Detector") {
		t.Errorf("String() = %q", d.String())
	}
}

// TestCustomBoostAndCostFuncFallback covers the Config plumbing: a
// Cost func without a CostTable, and a custom Boost applied to ST
// members.
func TestCustomBoostAndCostFuncFallback(t *testing.T) {
	// Cost func fallback (no table): min-cost victim chosen by func.
	tb := table.New()
	mustReq(t, tb, 1, "A", lock.X, true)
	mustReq(t, tb, 2, "B", lock.X, true)
	mustReq(t, tb, 1, "B", lock.X, false)
	mustReq(t, tb, 2, "A", lock.X, false)
	res := New(tb, Config{Cost: func(id table.TxnID) float64 { return float64(10 - id) }}).Run()
	if len(res.Aborted) != 1 || res.Aborted[0] != 2 {
		t.Fatalf("aborted = %v, want [T2] (cheaper by func)", res.Aborted)
	}

	// Custom Boost: doubles rather than increments.
	tb2 := example41(t)
	costs := NewCostTable(4)
	d := New(tb2, Config{Costs: costs, Boost: func(old float64) float64 { return old * 3 }})
	r2 := d.Run()
	if len(r2.Repositioned) != 1 {
		t.Fatalf("res = %+v", r2)
	}
	if got := costs.Cost(8); got != 12 {
		t.Fatalf("cost(T8) after custom boost = %v, want 12", got)
	}
}

// TestResultCounters sanity-checks the Vertices/Edges accounting.
func TestResultCounters(t *testing.T) {
	tb := example41(t)
	res := New(tb, Config{}).Run()
	if res.Vertices != 9 {
		t.Errorf("Vertices = %d, want 9", res.Vertices)
	}
	// 7 H edges + 7 W edges (one per queue member, 0-terminated).
	if res.Edges != 14 {
		t.Errorf("Edges = %d, want 14", res.Edges)
	}
}

// TestUPRAblationDeadlockResolvedByAbort completes the UPR ablation
// story (table.TestUPRAblation): without the UPR the stranded mutual
// blockage is a genuine H/W-TWBG cycle and costs an abort; with the UPR
// the same workload needs none.
func TestUPRAblationDeadlockResolvedByAbort(t *testing.T) {
	tb := table.New()
	tb.DisableUPR = true
	mustReq(t, tb, 1, "A", lock.IX, true)
	mustReq(t, tb, 2, "A", lock.IS, true)
	mustReq(t, tb, 3, "A", lock.IX, true)
	mustReq(t, tb, 2, "A", lock.S, false)
	mustReq(t, tb, 1, "A", lock.S, false)
	if _, err := tb.Release(3); err != nil {
		t.Fatal(err)
	}
	if !twbg.Deadlocked(tb) {
		t.Fatalf("expected the stranded pair to register as a deadlock:\n%s", tb)
	}
	res := New(tb, Config{}).Run()
	if len(res.Aborted) != 1 {
		t.Fatalf("aborted = %v, want exactly one (the UPR would have needed zero)", res.Aborted)
	}
	if twbg.Deadlocked(tb) {
		t.Fatal("deadlock remains")
	}
	if tb.Blocked(1) && tb.Blocked(2) {
		t.Fatal("survivor must have been granted")
	}
}
