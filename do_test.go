package hwtwbg

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoCommitsOnSuccess(t *testing.T) {
	m := Open(Options{})
	defer m.Close()
	var ran int
	err := m.Do(context.Background(), func(tx *Txn) error {
		ran++
		return tx.Lock(context.Background(), "r", X)
	})
	if err != nil || ran != 1 {
		t.Fatalf("err=%v ran=%d", err, ran)
	}
	// The lock was released by the commit.
	tx := m.Begin()
	if ok, _ := tx.TryLock("r", X); !ok {
		t.Fatal("lock not released")
	}
	tx.Abort()
}

func TestDoPropagatesUserError(t *testing.T) {
	m := Open(Options{})
	defer m.Close()
	sentinel := errors.New("boom")
	err := m.Do(context.Background(), func(tx *Txn) error {
		if err := tx.Lock(context.Background(), "r", X); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	// The transaction was aborted: lock free.
	tx := m.Begin()
	if ok, _ := tx.TryLock("r", X); !ok {
		t.Fatal("lock not released after user error")
	}
	tx.Abort()
}

func TestDoRetriesVictims(t *testing.T) {
	m := Open(Options{Period: time.Millisecond})
	defer m.Close()
	const workers = 8
	var wg sync.WaitGroup
	var commits atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				a := ResourceID(fmt.Sprintf("r%d", (n+i)%4))
				b := ResourceID(fmt.Sprintf("r%d", (n+i+1)%4))
				err := m.Do(context.Background(), func(tx *Txn) error {
					if err := tx.Lock(context.Background(), a, X); err != nil {
						return err
					}
					return tx.Lock(context.Background(), b, X)
				})
				if err != nil {
					t.Errorf("Do: %v", err)
					return
				}
				commits.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if commits.Load() != workers*20 {
		t.Fatalf("commits = %d", commits.Load())
	}
}

func TestDoRetryBudget(t *testing.T) {
	m := Open(Options{})
	defer m.Close()
	attempts := 0
	err := m.DoWith(context.Background(), DoOptions{MaxRetries: 3, MaxBackoff: time.Millisecond},
		func(tx *Txn) error {
			attempts++
			return ErrAborted
		})
	if !errors.Is(err, ErrTooManyRetries) || attempts != 3 {
		t.Fatalf("err=%v attempts=%d", err, attempts)
	}
}

func TestDoContextCancelBetweenRetries(t *testing.T) {
	m := Open(Options{})
	defer m.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := m.Do(ctx, func(tx *Txn) error { return ErrAborted })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}
