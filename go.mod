module hwtwbg

go 1.24
