package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"hwtwbg"
	"hwtwbg/journal"
)

// dumpFile runs a small workload with one resolved deadlock, encodes
// the manager's journal in the binary dump format, and writes it where
// load() will pick it up — the same bytes the debug server's
// /journal.bin serves.
func dumpFile(t *testing.T) string {
	t.Helper()
	lm := hwtwbg.Open(hwtwbg.Options{Shards: 1})
	defer lm.Close()
	ctx := context.Background()
	a, b := lm.Begin(), lm.Begin()
	if err := a.Lock(ctx, "u", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(ctx, "v", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- a.Lock(ctx, "v", hwtwbg.X) }()
	go func() { errs <- b.Lock(ctx, "u", hwtwbg.X) }()
	for !lm.Blocked(a.ID()) || !lm.Blocked(b.ID()) {
		runtime.Gosched()
	}
	if st := lm.Detect(); st.Aborted != 1 {
		t.Fatalf("aborted %d, want 1", st.Aborted)
	}
	<-errs
	<-errs

	var buf bytes.Buffer
	if err := journal.Encode(&buf, lm.Journal().Snapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "journal.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPerfettoRoundTrip pins the tool's core promise: a binary dump
// round-trips through `hwtrace perfetto` into JSON matching the Chrome
// trace-event schema (object format: traceEvents array whose entries
// carry name/ph/pid/ts, "X" spans carry dur, "M" metadata names the
// tracks).
func TestPerfettoRoundTrip(t *testing.T) {
	recs, err := load(dumpFile(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("dump decoded to zero records")
	}
	var out bytes.Buffer
	if code, err := execute("perfetto", false, nil, recs, &out); err != nil || code != 0 {
		t.Fatalf("perfetto: code %d, err %v", code, err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not JSON: %v", err)
	}
	if doc.DisplayUnit == "" {
		t.Error("displayTimeUnit missing")
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]int{}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if ph == "" || name == "" {
			t.Fatalf("event %d missing ph or name: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d missing pid: %v", i, ev)
		}
		if ph != "M" {
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event %d missing ts: %v", i, ev)
			}
		}
		if ph == "X" {
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("complete event %d missing dur: %v", i, ev)
			}
		}
		phases[ph]++
	}
	// The workload guarantees: track metadata, lifecycle instants, a
	// detector activation span and at least one blocked-wait span.
	if phases["M"] < 3 {
		t.Errorf("only %d metadata events; tracks unnamed", phases["M"])
	}
	if phases["i"] == 0 {
		t.Error("no instant events (begins/commits/victims)")
	}
	if phases["X"] == 0 {
		t.Error("no complete-span events (waits/activations)")
	}
}

// TestReportAndCat smoke-checks the other subcommands over the same
// dump, including the JSON report's schema.
func TestReportAndCat(t *testing.T) {
	recs, err := load(dumpFile(t))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code, err := execute("report", true, nil, recs, &out); err != nil || code != 0 {
		t.Fatalf("report -json: code %d, err %v", code, err)
	}
	var rep journal.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report -json output: %v", err)
	}
	if rep.Records != len(recs) || rep.Deadlocks != 1 || rep.Victims != 1 {
		t.Fatalf("report = records %d deadlocks %d victims %d, want %d/1/1",
			rep.Records, rep.Deadlocks, rep.Victims, len(recs))
	}
	if rep.Txns != 2 {
		t.Fatalf("report txns = %d, want 2", rep.Txns)
	}
	if len(rep.Resources) == 0 {
		t.Fatal("report has no contention ranking")
	}
	// The victim waited before its abort, so the wait population exists.
	if ls, ok := rep.Latencies[journal.LatencyWait]; !ok || ls.Count == 0 {
		t.Fatalf("report has no wait latency population: %+v", rep.Latencies)
	}

	out.Reset()
	if code, err := execute("report", false, nil, recs, &out); err != nil || code != 0 {
		t.Fatalf("report: code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), "cycles resolved") {
		t.Fatalf("text report missing detector summary:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "latency percentiles") {
		t.Fatalf("text report missing latency percentiles:\n%s", out.String())
	}

	out.Reset()
	if code, err := execute("cat", false, nil, recs, &out); err != nil || code != 0 {
		t.Fatalf("cat: code %d, err %v", code, err)
	}
	if lines := strings.Count(out.String(), "\n"); lines != len(recs) {
		t.Fatalf("cat printed %d lines for %d records", lines, len(recs))
	}
}

// TestSLOGate pins the -slo exit-status contract: a generous objective
// passes (exit 0), an impossible one fails (exit 1), and the JSON
// document carries the evaluated objectives alongside the report.
func TestSLOGate(t *testing.T) {
	path := dumpFile(t)

	var out, errOut bytes.Buffer
	if code := run([]string{"report", "-slo", "p99=10m", path}, &out, &errOut); code != 0 {
		t.Fatalf("generous SLO: exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("generous SLO output missing PASS:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"report", "-slo", "p50=1ns", path}, &out, &errOut); code != 1 {
		t.Fatalf("impossible SLO: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("impossible SLO output missing FAIL:\n%s", out.String())
	}

	// JSON mode: the slos array rides alongside the embedded report.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"report", "-json", "-slo", "p99=10m,commit:p95=10m", path}, &out, &errOut); code != 0 {
		t.Fatalf("json SLO: exit %d, stderr %q", code, errOut.String())
	}
	var doc struct {
		journal.Report
		SLOs []journal.SLOResult `json:"slos"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("json SLO output: %v", err)
	}
	if len(doc.SLOs) != 2 {
		t.Fatalf("json SLO results = %d, want 2", len(doc.SLOs))
	}
	for _, r := range doc.SLOs {
		if !r.OK {
			t.Fatalf("generous objective failed: %+v", r)
		}
	}
	if doc.SLOs[0].Kind != journal.LatencyWait || doc.SLOs[0].Bound != 10*time.Minute {
		t.Fatalf("first SLO = %+v, want wait p99 <= 10m", doc.SLOs[0])
	}
}

// TestNearMissSubcommand smoke-checks the standalone predictive pass.
func TestNearMissSubcommand(t *testing.T) {
	path := dumpFile(t)
	var out, errOut bytes.Buffer
	if code := run([]string{"nearmiss", "-json", path}, &out, &errOut); code != 0 {
		t.Fatalf("nearmiss: exit %d, stderr %q", code, errOut.String())
	}
	var rep journal.NearMissReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("nearmiss -json output: %v", err)
	}
}

// TestUsageErrors pins the CLI contract: usage mistakes exit 2 with the
// usage text on stderr and nothing on stdout.
func TestUsageErrors(t *testing.T) {
	path := dumpFile(t)
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"no args", nil, 2},
		{"unknown subcommand", []string{"frobnicate", path}, 2},
		{"bad flag", []string{"report", "-bogus", path}, 2},
		{"missing dump", []string{"report"}, 2},
		{"extra args", []string{"cat", path, path}, 2},
		{"bad slo spec", []string{"report", "-slo", "p42=1ms", path}, 2},
		{"bad slo bound", []string{"report", "-slo", "p99=banana", path}, 2},
		{"flag on cat", []string{"cat", "-json", path}, 2},
		{"unreadable dump", []string{"report", filepath.Join(t.TempDir(), "nope.bin")}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(tc.args, &out, &errOut); code != tc.code {
				t.Fatalf("run(%q) = %d, want %d (stderr: %q)", tc.args, code, tc.code, errOut.String())
			}
			if out.Len() != 0 {
				t.Fatalf("run(%q) wrote to stdout: %q", tc.args, out.String())
			}
			if tc.code == 2 && !strings.Contains(errOut.String(), "usage:") {
				t.Fatalf("run(%q) stderr missing usage text: %q", tc.args, errOut.String())
			}
			if errOut.Len() == 0 {
				t.Fatalf("run(%q) silent on stderr", tc.args)
			}
		})
	}
}

// TestFixtureSchema replays the checked-in deterministic dump (made by
// testdata/genjournal) through every subcommand, pinning the JSON
// schema CI greps for: a stable fixture means `hwtrace report -json`
// output only changes when the analysis intentionally does.
func TestFixtureSchema(t *testing.T) {
	fixture := filepath.Join("testdata", "journal_fixture.bin")
	if _, err := os.Stat(fixture); err != nil {
		t.Fatalf("fixture missing (regenerate with go run ./cmd/hwtrace/testdata/genjournal): %v", err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"report", "-json", fixture}, &out, &errOut); code != 0 {
		t.Fatalf("report -json over fixture: exit %d, stderr %q", code, errOut.String())
	}
	var rep journal.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("fixture report: %v", err)
	}
	if rep.Records == 0 || rep.Txns == 0 {
		t.Fatalf("fixture report empty: %+v", rep)
	}
	if rep.Deadlocks != 1 || rep.Victims != 1 {
		t.Fatalf("fixture deadlocks/victims = %d/%d, want 1/1", rep.Deadlocks, rep.Victims)
	}
	if len(rep.NearMisses.Reversals) == 0 {
		t.Fatal("fixture yields no near-miss reversals; the AB/BA workload should")
	}
	if ls, ok := rep.Latencies[journal.LatencyCommit]; !ok || ls.Count == 0 {
		t.Fatal("fixture yields no commit latency population")
	}

	for _, cmd := range []string{"report", "nearmiss", "perfetto", "cat"} {
		out.Reset()
		errOut.Reset()
		if code := run([]string{cmd, fixture}, &out, &errOut); code != 0 {
			t.Fatalf("%s over fixture: exit %d, stderr %q", cmd, code, errOut.String())
		}
		if out.Len() == 0 {
			t.Fatalf("%s over fixture produced no output", cmd)
		}
	}
}
