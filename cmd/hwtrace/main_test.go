package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"hwtwbg"
	"hwtwbg/journal"
)

// dumpFile runs a small workload with one resolved deadlock, encodes
// the manager's journal in the binary dump format, and writes it where
// load() will pick it up — the same bytes the debug server's
// /journal.bin serves.
func dumpFile(t *testing.T) string {
	t.Helper()
	lm := hwtwbg.Open(hwtwbg.Options{Shards: 1})
	defer lm.Close()
	ctx := context.Background()
	a, b := lm.Begin(), lm.Begin()
	if err := a.Lock(ctx, "u", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(ctx, "v", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- a.Lock(ctx, "v", hwtwbg.X) }()
	go func() { errs <- b.Lock(ctx, "u", hwtwbg.X) }()
	for !lm.Blocked(a.ID()) || !lm.Blocked(b.ID()) {
		runtime.Gosched()
	}
	if st := lm.Detect(); st.Aborted != 1 {
		t.Fatalf("aborted %d, want 1", st.Aborted)
	}
	<-errs
	<-errs

	var buf bytes.Buffer
	if err := journal.Encode(&buf, lm.Journal().Snapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "journal.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPerfettoRoundTrip pins the tool's core promise: a binary dump
// round-trips through `hwtrace perfetto` into JSON matching the Chrome
// trace-event schema (object format: traceEvents array whose entries
// carry name/ph/pid/ts, "X" spans carry dur, "M" metadata names the
// tracks).
func TestPerfettoRoundTrip(t *testing.T) {
	recs, err := load(dumpFile(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("dump decoded to zero records")
	}
	var out bytes.Buffer
	if err := execute("perfetto", false, recs, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not JSON: %v", err)
	}
	if doc.DisplayUnit == "" {
		t.Error("displayTimeUnit missing")
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]int{}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if ph == "" || name == "" {
			t.Fatalf("event %d missing ph or name: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d missing pid: %v", i, ev)
		}
		if ph != "M" {
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event %d missing ts: %v", i, ev)
			}
		}
		if ph == "X" {
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("complete event %d missing dur: %v", i, ev)
			}
		}
		phases[ph]++
	}
	// The workload guarantees: track metadata, lifecycle instants, a
	// detector activation span and at least one blocked-wait span.
	if phases["M"] < 3 {
		t.Errorf("only %d metadata events; tracks unnamed", phases["M"])
	}
	if phases["i"] == 0 {
		t.Error("no instant events (begins/commits/victims)")
	}
	if phases["X"] == 0 {
		t.Error("no complete-span events (waits/activations)")
	}
}

// TestReportAndCat smoke-checks the other subcommands over the same
// dump, including the JSON report's schema.
func TestReportAndCat(t *testing.T) {
	recs, err := load(dumpFile(t))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := execute("report", true, recs, &out); err != nil {
		t.Fatal(err)
	}
	var rep journal.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report -json output: %v", err)
	}
	if rep.Records != len(recs) || rep.Deadlocks != 1 || rep.Victims != 1 {
		t.Fatalf("report = records %d deadlocks %d victims %d, want %d/1/1",
			rep.Records, rep.Deadlocks, rep.Victims, len(recs))
	}
	if rep.Txns != 2 {
		t.Fatalf("report txns = %d, want 2", rep.Txns)
	}
	if len(rep.Resources) == 0 {
		t.Fatal("report has no contention ranking")
	}

	out.Reset()
	if err := execute("report", false, recs, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cycles resolved") {
		t.Fatalf("text report missing detector summary:\n%s", out.String())
	}

	out.Reset()
	if err := execute("cat", false, recs, &out); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(out.String(), "\n"); lines != len(recs) {
		t.Fatalf("cat printed %d lines for %d records", lines, len(recs))
	}

	if err := execute("frobnicate", false, recs, &out); err == nil {
		t.Fatal("unknown subcommand did not error")
	}
}
