package main

import (
	"bytes"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"hwtwbg"
	"hwtwbg/lockservice"
)

// tailServer starts a live lock server and runs a few transactions
// through it so a tail from oldest has records to deliver.
func tailServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := lockservice.Serve(ln, hwtwbg.Options{Shards: 1})
	t.Cleanup(func() { srv.Close() })
	c, err := lockservice.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetOpTag(7)
	// One contended handoff first, so a bounded tail from oldest sees a
	// waited grant early and the summary's top-contended section has
	// something to rank.
	c2, err := lockservice.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Lock("tail-res", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		if _, err := c2.Begin(); err != nil {
			done <- err
			return
		}
		if err := c2.Lock("tail-res", hwtwbg.X); err != nil {
			done <- err
			return
		}
		done <- c2.Commit()
	}()
	time.Sleep(20 * time.Millisecond)
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := c.Lock("tail-res", hwtwbg.X); err != nil {
			t.Fatal(err)
		}
		if err := c.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	return ln.Addr().String()
}

// TestTailRawNDJSON runs the real subcommand against a live server:
// `hwtrace tail -raw -count 8 -from oldest` must exit 0 and emit one
// well-formed NDJSON object per line carrying the stable schema keys.
func TestTailRawNDJSON(t *testing.T) {
	addr := tailServer(t)
	var out, errb bytes.Buffer
	code := run([]string{"tail", "-raw", "-count", "8", "-from", "oldest", "-interval", "50ms", addr}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	var records int
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("non-JSON line %q: %v", line, err)
		}
		typ, _ := obj["type"].(string)
		switch typ {
		case "record":
			records++
			for _, k := range tailSchemaKeys {
				if _, ok := obj[k]; !ok {
					t.Fatalf("record line missing schema key %q: %s", k, line)
				}
			}
		case "heartbeat", "lag":
		default:
			t.Fatalf("line with unknown type %q: %s", typ, line)
		}
	}
	if records != 8 {
		t.Fatalf("emitted %d record lines, want 8", records)
	}
}

// TestTailSummary checks the human rendering: a bounded tail with a
// fast heartbeat prints at least one summary frame with the headline
// counters.
func TestTailSummary(t *testing.T) {
	addr := tailServer(t)
	var out, errb bytes.Buffer
	code := run([]string{"tail", "-count", "8", "-from", "oldest", "-interval", "20ms", addr}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"recs=", "grants=", "detector", "top contended:", "tail-res"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary output missing %q:\n%s", want, s)
		}
	}
}

// TestTailUsageErrors pins exit 2 for malformed invocations.
func TestTailUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"tail"},                                // no address
		{"tail", "-from", "sideways", "x:1"},    // bad -from
		{"tail", "a:1", "b:2"},                  // two addresses
		{"tail", "-count", "nope", "localhost"}, // bad flag value
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Fatalf("run(%q) = %d, want 2", args, code)
		}
		if !strings.Contains(errb.String(), "usage:") {
			t.Fatalf("run(%q) stderr lacks usage:\n%s", args, errb.String())
		}
	}
}

// TestTailConnectError: an unreachable server is an analysis error
// (exit 1), not a usage error.
func TestTailConnectError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"tail", "-count", "1", "127.0.0.1:1"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
