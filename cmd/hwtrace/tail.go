package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sort"
	"time"

	"hwtwbg/journal"
	"hwtwbg/lockservice"
)

// The live consumer: `hwtrace tail` subscribes to a lock server's
// flight recorder with the TAIL verb and renders it either as a
// refreshing one-line-per-heartbeat summary for terminals, or with
// -raw as NDJSON for scripts and dashboards.

// tailSchemaKeys is the stable subset of the `tail -raw` record-object
// schema that downstream scripts key on (CI greps them out of the live
// tail smoke). The wireschema analyzer checks each against
// journal.RecordView's json tags, so renaming a streamed field that
// something downstream reads fails lint here.
//
//hwlint:wire parse tailjson subset
var tailSchemaKeys = []string{
	"ts",
	"kind",
	"txn",
	"shard",
}

// rawRecord is one NDJSON record line: {"type":"record",...RecordView}.
type rawRecord struct {
	Type string `json:"type"`
	journal.RecordView
}

// rawLag is one NDJSON lag line, emitted whenever a batch reports
// records lost to ring overwrite — loss is part of the stream, never
// silent.
type rawLag struct {
	Type string `json:"type"`
	Ring int    `json:"ring"`
	Lost uint64 `json:"lost"`
}

// rawHeartbeat is one NDJSON heartbeat line (the TAIL HB frame).
type rawHeartbeat struct {
	Type        string `json:"type"`
	Seq         uint64 `json:"seq"`
	Emitted     uint64 `json:"emitted"`
	Overwritten uint64 `json:"overwritten"`
	Torn        uint64 `json:"torn"`
	Grants      uint64 `json:"grants"`
	Runs        int    `json:"runs"`
	Cycles      int    `json:"cycles"`
	Aborted     int    `json:"aborted"`
	Lagged      uint64 `json:"lagged"`
	PeriodNs    int64  `json:"period_ns"`
}

// tailSummary aggregates the stream between heartbeats for the
// terminal rendering.
type tailSummary struct {
	out io.Writer

	records, grants, blocks uint64
	commits, aborts         uint64
	waitNs                  uint64
	waitedGrants            uint64
	maxDepth                uint64
	lastRecords             uint64 // records as of the previous heartbeat

	res map[uint64]*resAgg
}

type resAgg struct {
	name     string
	waitedNs uint64
	blocks   uint64
}

func (s *tailSummary) observe(r *journal.Record) {
	s.records++
	switch r.Kind {
	case journal.KindGrant:
		s.grants++
		s.waitNs += r.Arg
		if r.Arg > 0 {
			s.waitedGrants++
			s.agg(r).waitedNs += r.Arg
		}
	case journal.KindBlock:
		s.blocks++
		if r.Arg > s.maxDepth {
			s.maxDepth = r.Arg
		}
		s.agg(r).blocks++
	case journal.KindCommit:
		s.commits++
	case journal.KindAbort:
		s.aborts++
	}
}

func (s *tailSummary) agg(r *journal.Record) *resAgg {
	if s.res == nil {
		s.res = make(map[uint64]*resAgg)
	}
	a := s.res[r.RHash]
	if a == nil {
		a = &resAgg{name: r.Resource()}
		s.res[r.RHash] = a
	}
	return a
}

// render prints one summary frame: the heartbeat's server counters plus
// the aggregates accumulated since the stream began.
func (s *tailSummary) render(hb lockservice.TailHeartbeat) {
	avgWait := time.Duration(0)
	if s.waitedGrants > 0 {
		avgWait = time.Duration(s.waitNs / s.waitedGrants)
	}
	fmt.Fprintf(s.out, "%s recs=%d (+%d) grants=%d blocks=%d commits=%d aborts=%d avg_wait=%v depth_max=%d | detector runs=%d cycles=%d aborted=%d period=%v | lag=%d\n",
		time.Now().Format("15:04:05"), s.records, s.records-s.lastRecords,
		s.grants, s.blocks, s.commits, s.aborts, avgWait, s.maxDepth,
		hb.Runs, hb.Cycles, hb.Aborted, hb.Period, hb.Lagged)
	s.lastRecords = s.records
	if len(s.res) > 0 {
		top := make([]*resAgg, 0, len(s.res))
		for _, a := range s.res {
			top = append(top, a)
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].waitedNs != top[j].waitedNs {
				return top[i].waitedNs > top[j].waitedNs
			}
			return top[i].blocks > top[j].blocks
		})
		if len(top) > 3 {
			top = top[:3]
		}
		fmt.Fprintf(s.out, "  top contended:")
		for _, a := range top {
			fmt.Fprintf(s.out, "  %s waited=%v blocks=%d", a.name, time.Duration(a.waitedNs), a.blocks)
		}
		fmt.Fprintln(s.out)
	}
}

// runTail is the tail subcommand: arguments after "tail" in, exit
// status out.
func runTail(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hwtrace tail", flag.ContinueOnError)
	fs.SetOutput(stderr)
	raw := fs.Bool("raw", false, "emit NDJSON (one object per record/heartbeat/lag) instead of the summary")
	count := fs.Int("count", 0, "exit 0 after this many records (0 = stream until interrupted)")
	from := fs.String("from", "now", "start position: now or oldest")
	interval := fs.Duration("interval", time.Second, "summary refresh / heartbeat interval")
	if err := fs.Parse(args); err != nil {
		fmt.Fprintln(stderr)
		usage(stderr)
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "hwtrace tail: want exactly one server address\n\n")
		usage(stderr)
		return 2
	}
	var fromOldest bool
	switch *from {
	case "oldest":
		fromOldest = true
	case "now":
	default:
		fmt.Fprintf(stderr, "hwtrace tail: bad -from %q (want now or oldest)\n\n", *from)
		usage(stderr)
		return 2
	}
	c, err := lockservice.Dial(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "hwtrace: %v\n", err)
		return 1
	}
	defer c.Close()

	opts := lockservice.TailOptions{
		FromOldest: fromOldest,
		Max:        *count,
		Heartbeat:  *interval,
	}
	if *raw {
		enc := json.NewEncoder(stdout)
		opts.OnBatch = func(b lockservice.TailBatch) error {
			if b.Lost > 0 {
				if err := enc.Encode(rawLag{Type: "lag", Ring: b.Ring, Lost: b.Lost}); err != nil {
					return err
				}
			}
			for i := range b.Records {
				if err := enc.Encode(rawRecord{Type: "record", RecordView: b.Records[i].View()}); err != nil {
					return err
				}
			}
			return nil
		}
		opts.OnHeartbeat = func(hb lockservice.TailHeartbeat) error {
			return enc.Encode(rawHeartbeat{
				Type: "heartbeat", Seq: hb.Seq,
				Emitted: hb.Emitted, Overwritten: hb.Overwritten, Torn: hb.Torn,
				Grants: hb.Grants, Runs: hb.Runs, Cycles: hb.Cycles, Aborted: hb.Aborted,
				Lagged: hb.Lagged, PeriodNs: hb.Period.Nanoseconds(),
			})
		}
	} else {
		sum := &tailSummary{out: stdout}
		var lastHB lockservice.TailHeartbeat
		opts.OnBatch = func(b lockservice.TailBatch) error {
			for i := range b.Records {
				sum.observe(&b.Records[i])
			}
			return nil
		}
		opts.OnHeartbeat = func(hb lockservice.TailHeartbeat) error {
			lastHB = hb
			sum.render(hb)
			return nil
		}
		if _, err := c.TailJournal(opts); err != nil {
			fmt.Fprintf(stderr, "hwtrace: %v\n", err)
			return 1
		}
		// A bounded tail can finish before the first heartbeat; always
		// close with a frame covering everything observed.
		sum.render(lastHB)
		return 0
	}
	if _, err := c.TailJournal(opts); err != nil {
		fmt.Fprintf(stderr, "hwtrace: %v\n", err)
		return 1
	}
	return 0
}
