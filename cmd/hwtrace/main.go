// Hwtrace replays a flight-recorder dump offline: no live manager is
// needed, so a journal pulled off a production box (curl the debug
// server's /journal.bin, or save a lockservice DUMP) can be dissected
// anywhere.
//
//	hwtrace report journal.bin        # depths, convoys, contention, latency percentiles, near misses
//	hwtrace report -json journal.bin  # the same analysis as JSON
//	hwtrace report -slo p99=1ms journal.bin         # SLO gate: exit 1 when violated
//	hwtrace report -slo commit:p95=10ms journal.bin # ([kind:]pNN=dur, comma-separated)
//	hwtrace nearmiss journal.bin      # predictive partial-order pass alone
//	hwtrace perfetto journal.bin > trace.json   # convert for ui.perfetto.dev
//	hwtrace cat journal.bin           # print every record, one per line
//	hwtrace tail localhost:7679       # live: refreshing summary off the TAIL stream
//	hwtrace tail -raw -count 100 localhost:7679  # live: NDJSON, stop after 100 records
//
// The offline subcommands read the binary dump format (magic HWJRNL01;
// see journal.Encode); "-" reads from stdin. The tail subcommand speaks
// the lockservice TAIL verb against a live server instead.
//
// Exit status: 0 on success, 1 on analysis errors or violated SLOs,
// 2 on usage errors (unknown subcommand, bad flags, missing dump).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"hwtwbg/journal"
)

// reportSchemaKeys is the stable subset of the `report -json` schema
// that downstream tooling depends on: CI greps these keys out of the
// fixture replay, and dashboards select them by name. The wireschema
// analyzer checks each against journal.Report's json tags, so renaming
// a Report field that something downstream reads fails lint here.
//
//hwlint:wire parse reportjson subset
var reportSchemaKeys = []string{
	"records",
	"txns",
	"deadlocks",
	"victims",
	"latencies",
	"near_misses",
	"resources",
	"depth_distribution",
	"op_tags",
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `usage:
  hwtrace report [-json] [-slo spec] <dump>
                                  offline analysis: depth distribution, convoy
                                  detection, per-resource contention ranking,
                                  latency percentiles, near-miss reversals;
                                  -slo gates on [kind:]pNN=duration objectives
                                  (kinds wait|commit|abort, default wait;
                                  comma-separated; exit 1 on violation)
  hwtrace nearmiss [-json] <dump> the predictive partial-order pass alone:
                                  cross-transaction lock-order reversals that
                                  never deadlocked in the observed schedule
  hwtrace perfetto <dump>         convert to Chrome trace-event/Perfetto JSON
  hwtrace cat <dump>              print records one per line
  hwtrace tail [-raw] [-count n] [-from now|oldest] [-interval d] <addr>
                                  live-tail a lock server's flight recorder over
                                  the TAIL verb: a refreshing summary (grant and
                                  block rates, wait-chain depth, detector
                                  activity, top contended resources), or with
                                  -raw one NDJSON object per record/heartbeat;
                                  -count n exits 0 after n records

<dump> is a binary journal dump (debug server /journal.bin); "-" = stdin.
<addr> is a live lock server (host:port).
`)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole tool behind a testable seam: arguments in, exit
// status out, nothing reads globals or calls os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd := args[0]
	switch cmd {
	case "report", "nearmiss", "perfetto", "cat":
	case "tail":
		return runTail(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "hwtrace: unknown subcommand %q\n\n", cmd)
		usage(stderr)
		return 2
	}
	fs := flag.NewFlagSet("hwtrace "+cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	var asJSON *bool
	var sloSpec *string
	if cmd == "report" || cmd == "nearmiss" {
		asJSON = fs.Bool("json", false, "emit the analysis as JSON")
	}
	if cmd == "report" {
		sloSpec = fs.String("slo", "", "latency objectives to gate on: [kind:]pNN=duration, comma-separated")
	}
	if err := fs.Parse(args[1:]); err != nil {
		// flag already printed the complaint to stderr.
		fmt.Fprintln(stderr)
		usage(stderr)
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "hwtrace %s: want exactly one dump argument\n\n", cmd)
		usage(stderr)
		return 2
	}
	var slos []journal.SLO
	if sloSpec != nil && *sloSpec != "" {
		var err error
		if slos, err = journal.ParseSLOs(*sloSpec); err != nil {
			fmt.Fprintf(stderr, "hwtrace: %v\n\n", err)
			usage(stderr)
			return 2
		}
	}
	recs, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "hwtrace: %v\n", err)
		return 1
	}
	jsonOut := asJSON != nil && *asJSON
	code, err := execute(cmd, jsonOut, slos, recs, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "hwtrace: %v\n", err)
		return 1
	}
	return code
}

// execute runs one validated subcommand over already-loaded records,
// returning the exit status (0, or 1 for a violated SLO).
func execute(cmd string, asJSON bool, slos []journal.SLO, recs []journal.Record, out io.Writer) (int, error) {
	writeJSON := func(v any) error {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	switch cmd {
	case "report":
		rep := journal.Analyze(recs)
		results := rep.CheckSLOs(slos)
		if asJSON {
			doc := struct {
				journal.Report
				SLOs []journal.SLOResult `json:"slos,omitempty"`
			}{Report: rep, SLOs: results}
			if err := writeJSON(doc); err != nil {
				return 1, err
			}
		} else {
			rep.WriteReport(out)
			if len(results) > 0 {
				fmt.Fprintln(out)
				journal.WriteSLOResults(out, results)
			}
		}
		for _, r := range results {
			if !r.OK {
				return 1, nil
			}
		}
	case "nearmiss":
		rep := journal.NearMisses(recs)
		if asJSON {
			return 0, writeJSON(rep)
		}
		rep.WriteReport(out)
	case "perfetto":
		return 0, journal.WriteTrace(out, recs)
	case "cat":
		for i := range recs {
			fmt.Fprintf(out, "%s %s\n", recs[i].Time().Format("15:04:05.000000"), recs[i].String())
		}
	}
	return 0, nil
}

// load reads one binary journal dump ("-" = stdin).
func load(path string) ([]journal.Record, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return journal.Decode(r)
}
