// Hwtrace replays a flight-recorder dump offline: no live manager is
// needed, so a journal pulled off a production box (curl the debug
// server's /journal.bin, or save a lockservice DUMP) can be dissected
// anywhere.
//
//	hwtrace report journal.bin        # wait-chain depths, convoys, contention ranking
//	hwtrace report -json journal.bin  # the same analysis as JSON
//	hwtrace perfetto journal.bin > trace.json   # convert for ui.perfetto.dev
//	hwtrace cat journal.bin           # print every record, one per line
//
// The input is the binary dump format (magic HWJRNL01; see
// journal.Encode). "-" reads from stdin.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"hwtwbg/journal"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  hwtrace report [-json] <dump>   offline analysis: depth distribution, convoy
                                  detection, per-resource contention ranking
  hwtrace perfetto <dump>         convert to Chrome trace-event/Perfetto JSON
  hwtrace cat <dump>              print records one per line

<dump> is a binary journal dump (debug server /journal.bin); "-" = stdin.
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	fs.Parse(os.Args[2:])
	if fs.NArg() != 1 {
		usage()
	}
	recs, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hwtrace: %v\n", err)
		os.Exit(1)
	}
	if err := execute(cmd, *asJSON, recs, os.Stdout); err != nil {
		if err == errUsage {
			usage()
		}
		fmt.Fprintf(os.Stderr, "hwtrace: %v\n", err)
		os.Exit(1)
	}
}

var errUsage = fmt.Errorf("unknown subcommand")

// execute runs one subcommand over already-loaded records.
func execute(cmd string, asJSON bool, recs []journal.Record, out io.Writer) error {
	switch cmd {
	case "report":
		rep := journal.Analyze(recs)
		if asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		rep.WriteReport(out)
	case "perfetto":
		return journal.WriteTrace(out, recs)
	case "cat":
		for i := range recs {
			fmt.Fprintf(out, "%s %s\n", recs[i].Time().Format("15:04:05.000000"), recs[i].String())
		}
	default:
		return errUsage
	}
	return nil
}

// load reads one binary journal dump ("-" = stdin).
func load(path string) ([]journal.Record, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return journal.Decode(r)
}
