package main

import (
	"strings"
	"testing"
)

const td = "../../testdata/"

func TestDotFormat(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td+"example51.lock", "dot"); err != nil {
		t.Fatal(err)
	}
	// example51.lock contains a detect statement, so the final graph is
	// the resolved (acyclic) one.
	s := out.String()
	if !strings.Contains(s, "digraph HWTWBG") {
		t.Errorf("missing DOT header:\n%s", s)
	}
}

func TestEdgesFormat(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td+"example41.lock", "edges"); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// The example41 script runs detect, so the remaining graph is the
	// resolved one: no T7->T8 H edge (T8 moved behind T3).
	if !strings.Contains(s, "T1->T2[H@R1]") {
		t.Errorf("missing edge:\n%s", s)
	}
}

func TestAnalyzeFormatOnUnresolvedScenario(t *testing.T) {
	// Build a scenario without a detect statement so the analysis sees
	// the deadlock.
	var out strings.Builder
	if err := run(&out, td+"example51_raw.lock", "analyze"); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"== elementary cycles: 2 ==",
		"aborted:   [T2]",
		"salvaged:  [T3]",
		"R1(S): Holder((T3, S, NL) (T1, S, NL)) Queue()",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("analyze output missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzeDeadlockFree(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td+"example31.lock", "analyze"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(deadlock free)") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestTraceFormat(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td+"example51_raw.lock", "trace"); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"cycle detected: T1 T2 T3",
		"selected victim T3 (abort)",
		"step 3: abort T2",
		"step 3: salvage T3 (already granted)",
		"== table after resolution ==",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("trace output missing %q:\n%s", want, s)
		}
	}
}

func TestBadInputs(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td+"example31.lock", "nope"); err == nil {
		t.Error("unknown format must fail")
	}
	if err := run(&out, td+"missing.lock", "dot"); err == nil {
		t.Error("missing file must fail")
	}
}
