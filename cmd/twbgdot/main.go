// Twbgdot builds the H/W-TWBG for the final state of a lock-scenario
// script and prints it — as Graphviz DOT (default), as an edge list, as
// a full analysis with TRRPs, elementary cycles and the detector's
// victim decision, or as a step-by-step trace of the periodic
// algorithm's walk (the way the paper narrates its examples).
//
// Usage:
//
//	twbgdot [-format dot|edges|analyze|trace] <scenario.lock>
//	twbgdot -format analyze testdata/example41.lock
//	twbgdot -format trace testdata/example51.lock
//
// Piping the default output through `dot -Tsvg` reproduces Figures 4.1,
// 4.2 and 5.2 of the paper.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/script"
	"hwtwbg/internal/twbg"
)

func main() {
	format := flag.String("format", "dot", "output format: dot, edges, analyze, or trace")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: twbgdot [-format dot|edges|analyze|trace] <scenario.lock>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *format); err != nil {
		fmt.Fprintf(os.Stderr, "twbgdot: %v\n", err)
		os.Exit(1)
	}
}

func run(out io.Writer, path, format string) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	stmts, err := script.Parse(r)
	if err != nil {
		return err
	}
	// Replay the scenario silently; dump/graph/detect statements still
	// matter for the state but their output is suppressed here.
	e := script.NewExecutor(io.Discard)
	if err := e.Run(stmts); err != nil {
		return err
	}
	g := twbg.Build(e.Table)
	switch format {
	case "dot":
		fmt.Fprint(out, g.DOT())
	case "edges":
		for _, edge := range g.Edges() {
			fmt.Fprintln(out, edge)
		}
	case "analyze":
		analyze(out, e, g)
	case "trace":
		trace(out, e)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}

// trace replays the periodic algorithm on a copy of the final state,
// printing every step.
func trace(out io.Writer, e *script.Executor) {
	fmt.Fprintln(out, "== lock table ==")
	fmt.Fprint(out, e.Table.String())
	fmt.Fprintln(out, "\n== periodic-detection-resolution trace ==")
	cp := e.Table.Clone()
	res := detect.New(cp, detect.Config{
		Costs: e.Costs,
		Trace: func(ev detect.TraceEvent) { fmt.Fprintln(out, ev) },
	}).Run()
	fmt.Fprintf(out, "\n== result: c'=%d aborted=%v salvaged=%v repositioned=%v ==\n",
		res.CyclesSearched, res.Aborted, res.Salvaged, res.Repositioned)
	fmt.Fprintln(out, "== table after resolution ==")
	fmt.Fprint(out, cp.String())
}

func analyze(out io.Writer, e *script.Executor, g *twbg.Graph) {
	fmt.Fprintln(out, "== lock table ==")
	fmt.Fprint(out, e.Table.String())
	fmt.Fprintf(out, "\n== H/W-TWBG: %d vertices, %d edges ==\n", len(g.Vertices()), g.NumEdges())
	for _, edge := range g.Edges() {
		fmt.Fprintln(out, edge)
	}
	fmt.Fprintln(out, "\n== TRRPs ==")
	for _, p := range g.TRRPs() {
		fmt.Fprintf(out, "%v  (resource %s)\n", p, string(p.Resource))
	}
	cycles := g.Cycles(64)
	fmt.Fprintf(out, "\n== elementary cycles: %d ==\n", len(cycles))
	for _, c := range cycles {
		for i, v := range c {
			if i > 0 {
				fmt.Fprint(out, " -> ")
			}
			fmt.Fprint(out, v)
		}
		fmt.Fprintln(out)
	}
	if len(cycles) == 0 {
		fmt.Fprintln(out, "(deadlock free)")
		return
	}
	fmt.Fprintln(out, "\n== periodic-detection-resolution on a copy ==")
	cp := e.Table.Clone()
	res := detect.New(cp, detect.Config{Costs: e.Costs}).Run()
	fmt.Fprintf(out, "cycles searched (c'): %d\n", res.CyclesSearched)
	fmt.Fprintf(out, "aborted:   %v\n", res.Aborted)
	fmt.Fprintf(out, "salvaged:  %v\n", res.Salvaged)
	for _, rp := range res.Repositioned {
		fmt.Fprintf(out, "TDR-2:     %v\n", rp)
	}
	fmt.Fprintf(out, "granted:   %v\n", res.Granted)
	fmt.Fprintln(out, "\n== table after resolution ==")
	fmt.Fprint(out, cp.String())
}
