// Benchjson converts `go test -bench` text output on stdin into a JSON
// array on stdout, one object per benchmark result line, so bench runs
// can be archived and diffed without scraping:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson > BENCH.json
//
// Each object carries the benchmark name (with the -<procs> suffix
// split off), iteration count, ns/op, and every remaining pair as a
// unit-keyed metric ("B/op", "allocs/op", custom b.ReportMetric units).
// Non-benchmark lines (pass/fail, package banners) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, decoded.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// parseLine decodes one "BenchmarkX-8  123  456 ns/op  7 B/op ..." line.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 2 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	r := Result{Name: f[0], Procs: 1}
	if i := strings.LastIndex(f[0], "-"); i > 0 {
		if p, err := strconv.Atoi(f[0][i+1:]); err == nil {
			r.Name, r.Procs = f[0][:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		if f[i+1] == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(strings.TrimSpace(sc.Text())); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
