// Benchjson converts `go test -bench` text output on stdin into a JSON
// array on stdout, one object per benchmark result line, so bench runs
// can be archived and diffed without scraping:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson > BENCH.json
//
// Each object carries the benchmark name (with the -<procs> suffix
// split off), iteration count, ns/op, and every remaining pair as a
// unit-keyed metric ("B/op", "allocs/op", custom b.ReportMetric units).
// Non-benchmark lines (pass/fail, package banners) are ignored.
//
// The compare subcommand diffs two archived runs:
//
//	benchjson compare [-threshold 25] [-allocs-only] old.json new.json
//
// It prints a per-benchmark delta table (ns/op, and allocs/op when both
// sides report it) and exits non-zero when any benchmark present in
// both files slowed down by more than the threshold percentage — so a
// Makefile target can gate a PR on its predecessor's numbers. With
// -allocs-only the gate fails only when a benchmark's allocs/op grew
// (any increase; allocation counts are deterministic) and ns/op is
// reported purely informationally — the right gate on hosts where
// wall-clock is environment-dominated. Either input may be "-": stdin,
// accepted both as archived JSON and as raw `go test -bench` text, so a
// fresh run can be piped straight into the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Result is one benchmark line, decoded.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// parseLine decodes one "BenchmarkX-8  123  456 ns/op  7 B/op ..." line.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 2 || !strings.HasPrefix(f[0], "Benchmark") {
		return Result{}, false
	}
	r := Result{Name: f[0], Procs: 1}
	if i := strings.LastIndex(f[0], "-"); i > 0 {
		if p, err := strconv.Atoi(f[0][i+1:]); err == nil {
			r.Name, r.Procs = f[0][:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		if f[i+1] == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = make(map[string]float64)
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}

// Delta is one benchmark's old-vs-new comparison. Pct is the ns/op
// change in percent (positive = slower); AllocsOld/New are -1 when a
// side did not report allocs/op.
type Delta struct {
	Name                 string
	OldNs, NewNs, Pct    float64
	AllocsOld, AllocsNew float64
}

// compareResults joins two runs by benchmark name and computes ns/op
// deltas for every benchmark present in both, sorted by name. Names
// only in one run are returned separately.
func compareResults(old, new []Result) (deltas []Delta, onlyOld, onlyNew []string) {
	index := make(map[string]Result, len(old))
	for _, r := range old {
		if _, dup := index[r.Name]; !dup {
			index[r.Name] = r
		}
	}
	seen := make(map[string]bool, len(new))
	for _, r := range new {
		if seen[r.Name] {
			continue
		}
		seen[r.Name] = true
		o, ok := index[r.Name]
		if !ok {
			onlyNew = append(onlyNew, r.Name)
			continue
		}
		d := Delta{Name: r.Name, OldNs: o.NsPerOp, NewNs: r.NsPerOp, AllocsOld: -1, AllocsNew: -1}
		if o.NsPerOp > 0 {
			d.Pct = (r.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		if v, ok := o.Metrics["allocs/op"]; ok {
			d.AllocsOld = v
		}
		if v, ok := r.Metrics["allocs/op"]; ok {
			d.AllocsNew = v
		}
		deltas = append(deltas, d)
	}
	for name := range index {
		if !seen[name] {
			onlyOld = append(onlyOld, name)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

func loadResults(path string) ([]Result, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if !strings.HasPrefix(trimmed, "[") {
		// Raw `go test -bench` text (the piped-stdin case).
		var rs []Result
		for _, line := range strings.Split(trimmed, "\n") {
			if r, ok := parseLine(strings.TrimSpace(line)); ok {
				rs = append(rs, r)
			}
		}
		if len(rs) == 0 {
			return nil, fmt.Errorf("%s: no benchmark results found", path)
		}
		return rs, nil
	}
	var rs []Result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return rs, nil
}

// regressed decides whether one delta trips the gate. In allocs-only
// mode only an allocs/op increase fails (counts are deterministic, so
// any growth is real); otherwise the ns/op percentage threshold rules.
func regressed(d Delta, allocsOnly bool, threshold float64) bool {
	if allocsOnly {
		return d.AllocsOld >= 0 && d.AllocsNew > d.AllocsOld
	}
	return d.Pct > threshold
}

func runCompare(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 25, "regression gate: fail if any benchmark's ns/op grows by more than this percentage")
	allocsOnly := fs.Bool("allocs-only", false, "gate on allocs/op growth only; ns/op deltas are informational")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson compare [-threshold pct] [-allocs-only] old.json new.json")
		return 2
	}
	old, err := loadResults(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	new, err := loadResults(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}

	deltas, onlyOld, onlyNew := compareResults(old, new)
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\told ns/op\tnew ns/op\tdelta\tallocs/op")
	regressions := 0
	for _, d := range deltas {
		flag := ""
		if regressed(d, *allocsOnly, *threshold) {
			flag = "  REGRESSION"
			regressions++
		}
		allocs := ""
		if d.AllocsOld >= 0 && d.AllocsNew >= 0 {
			allocs = fmt.Sprintf("%g -> %g", d.AllocsOld, d.AllocsNew)
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%+.1f%%%s\t%s\n", d.Name, d.OldNs, d.NewNs, d.Pct, flag, allocs)
	}
	w.Flush()
	for _, n := range onlyOld {
		fmt.Printf("only in %s: %s\n", fs.Arg(0), n)
	}
	for _, n := range onlyNew {
		fmt.Printf("only in %s: %s\n", fs.Arg(1), n)
	}
	if regressions > 0 {
		if *allocsOnly {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) grew allocs/op\n", regressions)
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %g%%\n", regressions, *threshold)
		}
		return 1
	}
	return 0
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(strings.TrimSpace(sc.Text())); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
