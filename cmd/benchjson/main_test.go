package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkManagerUncontended-8   	  500000	      2410 ns/op	     312 B/op	       9 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkManagerUncontended" || r.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 500000 || r.NsPerOp != 2410 {
		t.Fatalf("iters/ns = %d/%g", r.Iterations, r.NsPerOp)
	}
	if r.Metrics["B/op"] != 312 || r.Metrics["allocs/op"] != 9 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
}

func TestParseLineCustomMetricsAndSubBench(t *testing.T) {
	r, ok := parseLine("BenchmarkDetectChain/n=100-4  1000  85000 ns/op  99.0 edgevisits/op  0 cycles/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkDetectChain/n=100" || r.Procs != 4 {
		t.Fatalf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Metrics["edgevisits/op"] != 99 || r.Metrics["cycles/op"] != 0 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	hwtwbg	1.2s",
		"goos: linux",
		"BenchmarkBroken notanumber",
		"Benchmark",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}
