package main

import (
	"os"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkManagerUncontended-8   	  500000	      2410 ns/op	     312 B/op	       9 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkManagerUncontended" || r.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 500000 || r.NsPerOp != 2410 {
		t.Fatalf("iters/ns = %d/%g", r.Iterations, r.NsPerOp)
	}
	if r.Metrics["B/op"] != 312 || r.Metrics["allocs/op"] != 9 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
}

func TestParseLineCustomMetricsAndSubBench(t *testing.T) {
	r, ok := parseLine("BenchmarkDetectChain/n=100-4  1000  85000 ns/op  99.0 edgevisits/op  0 cycles/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkDetectChain/n=100" || r.Procs != 4 {
		t.Fatalf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Metrics["edgevisits/op"] != 99 || r.Metrics["cycles/op"] != 0 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
}

func TestCompareResults(t *testing.T) {
	old := []Result{
		{Name: "BenchmarkA", NsPerOp: 100, Metrics: map[string]float64{"allocs/op": 9}},
		{Name: "BenchmarkB", NsPerOp: 200},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}
	new := []Result{
		{Name: "BenchmarkA", NsPerOp: 150, Metrics: map[string]float64{"allocs/op": 2}},
		{Name: "BenchmarkB", NsPerOp: 190},
		{Name: "BenchmarkNew", NsPerOp: 10},
	}
	deltas, onlyOld, onlyNew := compareResults(old, new)
	if len(deltas) != 2 || deltas[0].Name != "BenchmarkA" || deltas[1].Name != "BenchmarkB" {
		t.Fatalf("deltas = %+v", deltas)
	}
	if deltas[0].Pct != 50 {
		t.Fatalf("BenchmarkA delta = %g%%, want +50%%", deltas[0].Pct)
	}
	if deltas[0].AllocsOld != 9 || deltas[0].AllocsNew != 2 {
		t.Fatalf("BenchmarkA allocs = %g -> %g", deltas[0].AllocsOld, deltas[0].AllocsNew)
	}
	if deltas[1].AllocsOld != -1 || deltas[1].AllocsNew != -1 {
		t.Fatalf("BenchmarkB allocs should be absent: %+v", deltas[1])
	}
	if deltas[1].Pct != -5 {
		t.Fatalf("BenchmarkB delta = %g%%, want -5%%", deltas[1].Pct)
	}
	if len(onlyOld) != 1 || onlyOld[0] != "BenchmarkGone" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "BenchmarkNew" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
}

func TestCompareResultsDuplicateNamesKeepFirst(t *testing.T) {
	old := []Result{{Name: "BenchmarkA", NsPerOp: 100}, {Name: "BenchmarkA", NsPerOp: 999}}
	new := []Result{{Name: "BenchmarkA", NsPerOp: 110}, {Name: "BenchmarkA", NsPerOp: 1}}
	deltas, _, _ := compareResults(old, new)
	if len(deltas) != 1 || deltas[0].OldNs != 100 || deltas[0].NewNs != 110 {
		t.Fatalf("deltas = %+v", deltas)
	}
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := dir + "/" + name
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldP := write("old.json", `[{"name":"BenchmarkA","ns_per_op":100}]`)
	slower := write("slower.json", `[{"name":"BenchmarkA","ns_per_op":200}]`)
	same := write("same.json", `[{"name":"BenchmarkA","ns_per_op":101}]`)

	if code := runCompare([]string{"-threshold", "25", oldP, slower}); code != 1 {
		t.Fatalf("2x slowdown over a 25%% gate: exit %d, want 1", code)
	}
	if code := runCompare([]string{"-threshold", "25", oldP, same}); code != 0 {
		t.Fatalf("1%% slowdown over a 25%% gate: exit %d, want 0", code)
	}
	if code := runCompare([]string{oldP}); code != 2 {
		t.Fatalf("missing arg: exit %d, want 2", code)
	}
	if code := runCompare([]string{oldP, dir + "/missing.json"}); code != 2 {
		t.Fatalf("unreadable file: exit %d, want 2", code)
	}
	if code := runCompare([]string{oldP, write("bad.json", "not json")}); code != 2 {
		t.Fatalf("malformed file: exit %d, want 2", code)
	}
}

func TestRegressedAllocsOnly(t *testing.T) {
	cases := []struct {
		d          Delta
		allocsOnly bool
		want       bool
	}{
		// allocs-only: only an allocs/op increase fails…
		{Delta{Pct: 500, AllocsOld: 8, AllocsNew: 8}, true, false},
		{Delta{Pct: 500, AllocsOld: 8, AllocsNew: 2}, true, false},
		{Delta{Pct: -10, AllocsOld: 8, AllocsNew: 9}, true, true},
		// …and a benchmark without allocs on the old side can't trip it.
		{Delta{Pct: 500, AllocsOld: -1, AllocsNew: 9}, true, false},
		// default mode: the ns/op threshold rules.
		{Delta{Pct: 26, AllocsOld: 8, AllocsNew: 2}, false, true},
		{Delta{Pct: 24, AllocsOld: 8, AllocsNew: 9}, false, false},
	}
	for i, c := range cases {
		if got := regressed(c.d, c.allocsOnly, 25); got != c.want {
			t.Errorf("case %d: regressed(%+v, allocsOnly=%v) = %v, want %v", i, c.d, c.allocsOnly, got, c.want)
		}
	}
}

func TestRunCompareAllocsOnlyAndBenchText(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := dir + "/" + name
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldP := write("old.json", `[{"name":"BenchmarkA","ns_per_op":100,"metrics":{"allocs/op":8}}]`)
	// Much slower but fewer allocs: passes the allocs-only gate, fails the default one.
	text := write("new.txt", "goos: linux\nBenchmarkA-8  1000  900 ns/op  128 B/op  2 allocs/op\nPASS\n")
	if code := runCompare([]string{"-allocs-only", oldP, text}); code != 0 {
		t.Fatalf("allocs-only with fewer allocs: exit %d, want 0", code)
	}
	if code := runCompare([]string{"-threshold", "25", oldP, text}); code != 1 {
		t.Fatalf("9x slowdown over default gate: exit %d, want 1", code)
	}
	more := write("more.txt", "BenchmarkA-8  1000  50 ns/op  128 B/op  9 allocs/op\n")
	if code := runCompare([]string{"-allocs-only", oldP, more}); code != 1 {
		t.Fatalf("allocs grew under allocs-only gate: exit %d, want 1", code)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	hwtwbg	1.2s",
		"goos: linux",
		"BenchmarkBroken notanumber",
		"Benchmark",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}
