// Lockd serves the hwtwbg lock manager over TCP using the lockservice
// protocol: BEGIN / LOCK / TRYLOCK / COMMIT / ABORT / STATS / SNAPSHOT,
// with a background H/W-TWBG deadlock detector. Try it with netcat:
//
//	lockd -addr :7654 &
//	printf 'BEGIN\nLOCK accounts/7 X\nCOMMIT\nQUIT\n' | nc localhost 7654
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hwtwbg"
	"hwtwbg/journal"
	"hwtwbg/lockservice"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "listen address")
	debugAddr := flag.String("debug-addr", "", "debug HTTP listen address serving /metrics, /snapshot, /twbg.dot and /debug/pprof (empty = disabled)")
	period := flag.Duration("period", 20*time.Millisecond, "deadlock detection period")
	noTDR2 := flag.Bool("no-tdr2", false, "resolve deadlocks by abort only (disable TDR-2)")
	shards := flag.Int("shards", 0, "lock-table shards, rounded up to a power of two (0 = derive from GOMAXPROCS)")
	detector := flag.String("detector", hwtwbg.DetectorSnapshot, "detector activation strategy: snapshot (copy-out, validate-then-act) or stw (stop-the-world)")
	adaptive := flag.Bool("adaptive", false, "legacy alias for -scheduling adaptive")
	scheduling := flag.String("scheduling", "", "detection scheduling policy: fixed, adaptive (halve after a deadlock, double after an idle pass) or costmodel (journal-fed cost model derives the cost-minimizing period); empty = fixed, or adaptive when -adaptive is set")
	maxPeriod := flag.Duration("max-period", 0, "cap for the adaptive/costmodel period (0 = 8x period)")
	journalSize := flag.Int("journal", 0, "flight-recorder capacity in records per ring (0 = default 4096, negative = disabled)")
	incremental := flag.Bool("incremental", true, "reuse clean shards' regions of the previous detector snapshot, copying only shards mutated since the last activation (snapshot detector only; false = full copy every activation)")
	traceOut := flag.String("trace-out", "", "on shutdown, write the flight recorder as Chrome trace-event/Perfetto JSON to this file (requires the journal)")
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockd: %v\n", err)
		os.Exit(1)
	}
	switch *scheduling {
	case "", hwtwbg.SchedulingFixed, hwtwbg.SchedulingAdaptive, hwtwbg.SchedulingCostModel:
	default:
		fmt.Fprintf(os.Stderr, "lockd: unknown -scheduling %q (want fixed, adaptive or costmodel)\n", *scheduling)
		os.Exit(2)
	}
	srv := lockservice.Serve(ln, hwtwbg.Options{
		Period:         *period,
		Detector:       *detector,
		Scheduling:     *scheduling,
		AdaptivePeriod: *adaptive,
		MaxPeriod:      *maxPeriod,
		Shards:         *shards,
		DisableTDR2:    *noTDR2,
		JournalSize:    *journalSize,
		IncrementalSnapshot: func() hwtwbg.IncrementalMode {
			if *incremental {
				return hwtwbg.IncrementalDefault
			}
			return hwtwbg.IncrementalOff
		}(),
		OnVictim: func(id hwtwbg.TxnID) {
			fmt.Printf("lockd: aborted %v to break a deadlock\n", id)
		},
	})
	fmt.Printf("lockd: serving on %s (%s detector, detection every %v, %d shards)\n",
		srv.Addr(), *detector, *period, srv.Manager().NumShards())

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lockd: debug listener: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
		srv.Manager().PublishExpvar("hwtwbg")
		go http.Serve(dln, lockservice.DebugHandler(srv.Manager()))
		fmt.Printf("lockd: debug server on http://%s (/metrics, /snapshot, /twbg.dot, /debug/pprof)\n",
			dln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("lockd: shutting down")
	if *traceOut != "" {
		// Snapshot before Close so the trace does not end in the burst of
		// shutdown aborts.
		if jr := srv.Manager().Journal(); jr != nil {
			if err := writeTrace(*traceOut, jr.Snapshot()); err != nil {
				fmt.Fprintf(os.Stderr, "lockd: trace-out: %v\n", err)
			} else {
				fmt.Printf("lockd: wrote trace to %s (load into ui.perfetto.dev)\n", *traceOut)
			}
		} else {
			fmt.Fprintln(os.Stderr, "lockd: trace-out: journal disabled")
		}
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "lockd: close: %v\n", err)
	}
}

// writeTrace dumps records to path in Chrome trace-event JSON.
func writeTrace(path string, recs []journal.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := journal.WriteTrace(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
