// Command hwlint runs the project's static analyzers over the module:
// the concurrency-discipline rules of internal/analysis (lockorder,
// callbacklock, maprange, atomics) plus the interprocedural gates
// (allocbudget, wireschema). It exits non-zero when any finding
// survives the //hwlint:allow annotations, including malformed or
// stale annotations themselves.
//
// Usage:
//
//	go run ./cmd/hwlint [-json|-github] [packages]
//
// Packages default to ./... relative to the current directory. The
// loader shells out to `go list -export`, so the go tool must be on
// PATH (it is wherever this builds). -json prints one JSON object per
// finding (file/line/col/rule/message) for tooling; -github prints
// GitHub Actions workflow commands so findings annotate the PR diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hwtwbg/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "print findings as JSON, one object per line")
	githubOut := flag.Bool("github", false, "print findings as GitHub Actions ::error commands")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hwlint [-json|-github] [packages]\n\nrules:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hwlint:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analysis.All)
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		switch {
		case *jsonOut:
			enc.Encode(struct {
				File    string `json:"file"`
				Line    int    `json:"line"`
				Col     int    `json:"col"`
				Rule    string `json:"rule"`
				Message string `json:"message"`
			}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message})
		case *githubOut:
			// https://docs.github.com/actions/reference/workflow-commands:
			// the message part %-encodes newlines and the data part's
			// metadata delimiters; file paths must be workspace-relative
			// for the annotation to attach to the diff.
			fmt.Printf("::error file=%s,line=%d,col=%d::%s\n",
				relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, escapeGithub("["+d.Rule+"] "+d.Message))
		default:
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hwlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// escapeGithub encodes a workflow-command message per the Actions
// toolkit's escaping rules.
func escapeGithub(s string) string {
	return strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(s)
}

// relPath renders a position's file relative to the working directory
// when possible (GitHub resolves annotation paths against the
// workspace root, which is where CI invokes hwlint).
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	rel, err := filepath.Rel(wd, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return name
	}
	return rel
}
