// Command hwlint runs the project's static analyzers over the module:
// the four concurrency-discipline rules of internal/analysis
// (lockorder, callbacklock, maprange, atomics). It exits non-zero when
// any finding survives the //hwlint:allow annotations, including
// malformed or stale annotations themselves.
//
// Usage:
//
//	go run ./cmd/hwlint [packages]
//
// Packages default to ./... relative to the current directory. The
// loader shells out to `go list -export`, so the go tool must be on
// PATH (it is wherever this builds).
package main

import (
	"flag"
	"fmt"
	"os"

	"hwtwbg/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hwlint [packages]\n\nrules:\n")
		for _, a := range analysis.All {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hwlint:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analysis.All)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hwlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
