// Parksim runs the comparison and complexity experiments of
// EXPERIMENTS.md and prints their tables.
//
// Usage:
//
//	parksim -table compare     strategy comparison on the standard workload
//	parksim -table latency     deadlock persistence (detection+resolution delay)
//	parksim -table tdr2        resolution-without-abort across conversion loads
//	parksim -table sweep       throughput and aborts vs multiprogramming level
//	parksim -table complexity  detector scaling on synthetic topologies
//	parksim -table all         everything
//
// Common workload flags (-duration, -seed, -terminals, ...) override the
// defaults of the simulation-based tables.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/sim"
	"hwtwbg/internal/synth"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

var (
	tableFlag = flag.String("table", "compare", "which table to print: compare, latency, tdr2, sweep, prevention, period, complexity, all")
	duration  = flag.Int64("duration", 20000, "simulated ticks per run")
	seed      = flag.Int64("seed", 42, "PRNG seed")
	terminals = flag.Int("terminals", 8, "concurrent transactions")
	resources = flag.Int("resources", 16, "resource pool size")
	txnLen    = flag.Int("txnlen", 6, "locks per transaction")
	writeFrac = flag.Float64("write", 0.4, "probability a request is X")
	hotProb   = flag.Float64("hot", 0.5, "probability a request hits the hot spot")
	period    = flag.Int64("period", 10, "detection period in ticks")
)

func baseConfig() sim.Config {
	return sim.Config{
		Terminals: *terminals,
		Resources: *resources,
		TxnLength: *txnLen,
		WriteFrac: *writeFrac,
		HotProb:   *hotProb,
		Period:    *period,
		Duration:  *duration,
		Seed:      *seed,
	}
}

func main() {
	flag.Parse()
	if !emit(os.Stdout, *tableFlag, baseConfig()) {
		fmt.Fprintf(os.Stderr, "parksim: unknown table %q\n", *tableFlag)
		flag.Usage()
		os.Exit(2)
	}
}

// emit prints the requested table to out; it reports whether the name
// was recognized.
func emit(out io.Writer, name string, cfg sim.Config) bool {
	switch name {
	case "compare":
		compare(out, cfg)
	case "latency":
		latency(out, cfg)
	case "tdr2":
		tdr2(out, cfg)
	case "sweep":
		sweep(out, cfg)
	case "complexity":
		complexity(out)
	case "prevention":
		prevention(out, cfg)
	case "period":
		periodTable(out, cfg)
	case "all":
		compare(out, cfg)
		latency(out, cfg)
		tdr2(out, cfg)
		sweep(out, cfg)
		prevention(out, cfg)
		periodTable(out, cfg)
		complexity(out)
	default:
		return false
	}
	return true
}

func newTab(out io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
}

func compare(out io.Writer, cfg sim.Config) {
	fmt.Fprintf(out, "== strategy comparison (terminals=%d resources=%d writeFrac=%.2f hotProb=%.2f period=%d duration=%d) ==\n",
		cfg.Terminals, cfg.Resources, cfg.WriteFrac, cfg.HotProb, cfg.Period, cfg.Duration)
	w := newTab(out)
	fmt.Fprintln(w, "strategy\tcommits\ttput/1k\taborts\trestarts\tmax restarts\twasted ops\twait p50/p99\tTDR-2\tsalvaged")
	names := make([]string, 0)
	all := sim.AllStrategies(cfg.Period)
	for name := range all {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := sim.Run(cfg, all[name])
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%d\t%d\t%d\t%d\t%d/%d\t%d\t%d\n",
			name, m.Commits, m.Throughput(), m.Aborts, m.Restarts, m.MaxRestarts,
			m.WastedOps, m.WaitPercentile(50), m.WaitPercentile(99),
			m.Repositionings, m.SalvagedVictims)
	}
	w.Flush()
	fmt.Fprintln(out)
}

func latency(out io.Writer, cfg sim.Config) {
	cfg.MeasureLatency = true
	if cfg.Duration > 10000 {
		cfg.Duration = 10000 // the oracle check is quadratic; keep it sane
	}
	fmt.Fprintf(out, "== deadlock persistence (oracle-measured; duration=%d period=%d) ==\n", cfg.Duration, cfg.Period)
	w := newTab(out)
	fmt.Fprintln(w, "strategy\tepisodes\ttotal deadlocked ticks\tmean persistence")
	for _, f := range []sim.Factory{sim.Park, sim.ParkContinuous, sim.WFGPeriodic, sim.Agrawal, sim.WFGContinuous, sim.Timeout(5 * cfg.Period)} {
		m := sim.Run(cfg, f)
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\n", m.Strategy, m.DeadlockEpisodes, m.DeadlockTicks, m.MeanDeadlockTicks())
	}
	w.Flush()
	fmt.Fprintln(out)
}

func tdr2(out io.Writer, base sim.Config) {
	fmt.Fprintln(out, "== TDR-2: deadlocks resolved without aborting (vs conversion-heavy load) ==")
	w := newTab(out)
	fmt.Fprintln(w, "convFrac\tstrategy\taborts\tTDR-2 repositionings\tsalvaged\tcommits")
	for _, conv := range []float64{0, 0.1, 0.3, 0.5} {
		for _, f := range []sim.Factory{sim.Park, sim.ParkNoTDR2, sim.WFGPeriodic} {
			cfg := base
			cfg.ConvFrac = conv
			cfg.WriteFrac = 0.2
			m := sim.Run(cfg, f)
			fmt.Fprintf(w, "%.1f\t%s\t%d\t%d\t%d\t%d\n",
				conv, m.Strategy, m.Aborts, m.Repositionings, m.SalvagedVictims, m.Commits)
		}
	}
	w.Flush()
	fmt.Fprintln(out)
}

func sweep(out io.Writer, base sim.Config) {
	fmt.Fprintln(out, "== multiprogramming-level sweep: commits (aborts) per strategy ==")
	w := newTab(out)
	fmt.Fprintln(w, "terminals\tpark-hwtwbg\twfg-periodic\tagrawal\telmagarmid\ttimeout")
	for _, n := range []int{2, 4, 8, 16, 32} {
		cfg := base
		cfg.Terminals = n
		cells := make([]string, 0, 5)
		for _, f := range []sim.Factory{sim.Park, sim.WFGPeriodic, sim.Agrawal, sim.Elmagarmid, sim.Timeout(5 * cfg.Period)} {
			m := sim.Run(cfg, f)
			cells = append(cells, fmt.Sprintf("%d (%d)", m.Commits, m.Aborts))
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%s\n", n, cells[0], cells[1], cells[2], cells[3], cells[4])
	}
	w.Flush()
	fmt.Fprintln(out)
}

// prevention reproduces the detection-vs-prevention axis of the
// performance study the paper builds on (reference [2]): prevention
// never lets a deadlock form but aborts transactions that were not
// deadlocked.
func prevention(out io.Writer, cfg sim.Config) {
	fmt.Fprintf(out, "== detection vs prevention (duration=%d) ==\n", cfg.Duration)
	w := newTab(out)
	fmt.Fprintln(w, "strategy\tcommits\taborts\trestarts\twasted ops\twait ticks")
	for _, f := range []sim.Factory{sim.Park, sim.ParkContinuous, sim.WaitDie, sim.WoundWait, sim.Timeout(5 * cfg.Period)} {
		m := sim.Run(cfg, f)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\n",
			m.Strategy, m.Commits, m.Aborts, m.Restarts, m.WastedOps, m.WaitTicks)
	}
	w.Flush()
	fmt.Fprintln(out)
}

// period reproduces Section 5's period-selection trade-off: "by
// increasing the periodic interval, the cost of deadlock detection
// decreases but it will detect deadlocks late".
func periodTable(out io.Writer, base sim.Config) {
	fmt.Fprintln(out, "== detection period trade-off (park-hwtwbg) ==")
	w := newTab(out)
	fmt.Fprintln(w, "period\tcommits\taborts\tdetector runs\tmean deadlock persistence\twait p99")
	for _, p := range []int64{1, 5, 10, 25, 50, 100} {
		cfg := base
		cfg.Period = p
		cfg.MeasureLatency = true
		if cfg.Duration > 8000 {
			cfg.Duration = 8000
		}
		m := sim.Run(cfg, sim.Park)
		runs := cfg.Duration / p
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.1f\t%d\n",
			p, m.Commits, m.Aborts, runs, m.MeanDeadlockTicks(), m.WaitPercentile(99))
	}
	w.Flush()
	fmt.Fprintln(out)
}

func complexity(out io.Writer) {
	fmt.Fprintln(out, "== detector scaling: O(n+e) no-deadlock walks (chain / wide queues) ==")
	w := newTab(out)
	fmt.Fprintln(w, "topology\tn\te\tedge visits\tc'\ttime")
	for _, n := range []int{100, 200, 400, 800, 1600} {
		measure(w, fmt.Sprintf("chain-%d", n), synth.Chain(n))
	}
	for _, m := range []int{20, 40, 80} {
		measure(w, fmt.Sprintf("queues-%dx20", m), synth.WideQueues(m, 20))
	}
	w.Flush()

	fmt.Fprintln(out, "\n== detector scaling: O(n + e*(c'+1)) with cycles (disjoint rings / Example 4.1 tiles) ==")
	w = newTab(out)
	fmt.Fprintln(w, "topology\tn\te\tc (elem. cycles)\tc'\tedge visits\taborted\tTDR-2\ttime")
	for _, k := range []int{5, 10, 20, 40} {
		tb := synth.Rings(k, 4)
		measureFull(w, fmt.Sprintf("rings-%dx4", k), tb)
	}
	for _, k := range []int{2, 4, 8, 16} {
		tb := synth.Example41Tiles(k)
		measureFull(w, fmt.Sprintf("ex41-x%d", k), tb)
	}
	w.Flush()
	fmt.Fprintln(out)
}

func measure(w *tabwriter.Writer, name string, tb *table.Table) {
	g := twbg.Build(tb)
	start := time.Now()
	res := detect.New(tb, detect.Config{}).Run()
	el := time.Since(start)
	fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%v\n",
		name, len(g.Vertices()), g.NumEdges(), res.EdgeVisits, res.CyclesSearched, el.Round(time.Microsecond))
}

func measureFull(w *tabwriter.Writer, name string, tb *table.Table) {
	g := twbg.Build(tb)
	c := len(g.Cycles(0))
	start := time.Now()
	res := detect.New(tb, detect.Config{}).Run()
	el := time.Since(start)
	fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
		name, len(g.Vertices()), g.NumEdges(), c, res.CyclesSearched,
		res.EdgeVisits, len(res.Aborted), len(res.Repositioned), el.Round(time.Microsecond))
}
