package main

import (
	"strings"
	"testing"

	"hwtwbg/internal/sim"
)

// quickCfg keeps the smoke test fast.
var quickCfg = sim.Config{
	Terminals: 4,
	Resources: 8,
	TxnLength: 4,
	WriteFrac: 0.5,
	HotProb:   0.5,
	Period:    10,
	Duration:  800,
	Seed:      3,
}

func TestEmitTables(t *testing.T) {
	for name, want := range map[string]string{
		"compare":    "strategy",
		"latency":    "mean persistence",
		"tdr2":       "TDR-2 repositionings",
		"sweep":      "multiprogramming-level sweep",
		"prevention": "detection vs prevention",
		"complexity": "detector scaling",
		"period":     "period trade-off",
	} {
		var out strings.Builder
		if !emit(&out, name, quickCfg) {
			t.Fatalf("emit(%q) unrecognized", name)
		}
		if !strings.Contains(out.String(), want) {
			t.Errorf("table %q missing %q:\n%s", name, want, out.String())
		}
	}
}

func TestEmitUnknown(t *testing.T) {
	var out strings.Builder
	if emit(&out, "nope", quickCfg) {
		t.Fatal("unknown table accepted")
	}
}
