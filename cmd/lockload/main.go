// Lockload drives a synthetic transaction workload against a live
// lock server over the wire protocol — enough contention to light up
// every telemetry surface (grants with waits, blocks, the occasional
// deadlock for the detector), which makes it the scripted workload
// behind CI's live-tail smoke and a convenient way to watch `hwtrace
// tail` do something on a laptop.
//
//	lockd -addr 127.0.0.1:7654 &
//	lockload -addr 127.0.0.1:7654 -clients 4 -txns 200
//	hwtrace tail -raw -count 100 -from oldest 127.0.0.1:7654
//
// Each client runs its transactions sequentially (the paper's model):
// BEGIN, lock a few resources drawn from a small shared pool in a
// shuffled order (shared pool + shuffled order = real conflicts and
// occasional deadlocks), COMMIT. Aborted transactions (deadlock
// victims) count as work, not errors. Every client carries a distinct
// operation tag so the op-tag analytics have something to group.
//
// Exit status: 0 when every client finished its quota, 1 on transport
// errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"hwtwbg"
	"hwtwbg/lockservice"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "lock server address")
	clients := flag.Int("clients", 4, "concurrent client connections")
	txns := flag.Int("txns", 100, "transactions per client")
	resources := flag.Int("resources", 8, "size of the shared resource pool")
	locks := flag.Int("locks", 3, "locks acquired per transaction")
	seed := flag.Int64("seed", 1, "PRNG seed for the access pattern")
	flag.Parse()

	var wg sync.WaitGroup
	errs := make(chan error, *clients)
	for cl := 0; cl < *clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			errs <- runClient(*addr, cl, *txns, *resources, *locks, *seed)
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "lockload: %v\n", err)
			os.Exit(1)
		}
	}
}

// runClient runs one connection's quota of transactions. A deadlock
// abort rolls the transaction back and moves on — resolving those is
// the server's job, and exactly what the workload exists to provoke.
func runClient(addr string, cl, txns, resources, locks int, seed int64) error {
	c, err := lockservice.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	c.SetOpTag(uint64(cl + 1))
	rng := rand.New(rand.NewSource(seed + int64(cl)))
	for i := 0; i < txns; i++ {
		if _, err := c.Begin(); err != nil {
			return fmt.Errorf("client %d txn %d: BEGIN: %w", cl, i, err)
		}
		perm := rng.Perm(resources)[:locks]
		aborted := false
		for _, r := range perm {
			mode := hwtwbg.S
			if rng.Intn(2) == 0 {
				mode = hwtwbg.X
			}
			err := c.Lock(fmt.Sprintf("res/%d", r), mode)
			if err == nil {
				continue
			}
			if !errors.Is(err, lockservice.ErrAborted) {
				return fmt.Errorf("client %d txn %d: LOCK: %w", cl, i, err)
			}
			aborted = true
			break
		}
		if aborted {
			continue // the server already rolled the victim back
		}
		if err := c.Commit(); err != nil {
			return fmt.Errorf("client %d txn %d: COMMIT: %w", cl, i, err)
		}
	}
	return nil
}
