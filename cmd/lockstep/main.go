// Lockstep replays a lock-scenario script against the lock table,
// echoing each statement, the grant/block outcome, and any dump/graph/
// detect output — the paper's worked examples as runnable artifacts.
//
// Usage:
//
//	lockstep [-q] <scenario.lock>...
//	lockstep -            # read a scenario from stdin
//
// The scenario language is documented in internal/script. The testdata
// directory ships the paper's Examples 3.1, 4.1 and 5.1:
//
//	lockstep testdata/example41.lock
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hwtwbg/internal/script"
)

func main() {
	quiet := flag.Bool("q", false, "suppress statement echo; print only dump/graph/detect output")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lockstep [-q] <scenario.lock>... (or - for stdin)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		if err := run(os.Stdout, path, *quiet); err != nil {
			fmt.Fprintf(os.Stderr, "lockstep: %v\n", err)
			os.Exit(1)
		}
	}
}

func run(out io.Writer, path string, quiet bool) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	stmts, err := script.Parse(r)
	if err != nil {
		return err
	}
	e := script.NewExecutor(out)
	e.Echo = !quiet
	return e.Run(stmts)
}
