package main

import (
	"os"
	"strings"
	"testing"
)

const td = "../../testdata/"

func TestLockstepExample41(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td+"example41.lock", true); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"R1(SIX): Holder((T1, IX, SIX) (T2, IS, S) (T3, IX, NL) (T4, IS, NL)) Queue((T5, IX) (T6, S) (T7, IX))",
		"detect: cycles=1 aborted=[] salvaged=[] repositioned=[R2: AV[(T9, IX) (T3, S)] ST[(T8, X)]]",
		"R2(IX): Holder((T9, IX, NL) (T7, IS, NL)) Queue((T3, S) (T8, X) (T4, X))",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestLockstepEchoMode(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td+"example31.lock", false); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"> lock T1 R1 IS", "granted", "blocked"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestLockstepExample51(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td+"example51.lock", true); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"detect: cycles=2 aborted=[T2] salvaged=[T3]",
		"R1(S): Holder((T3, S, NL) (T1, S, NL)) Queue()",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestLockstepMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run(&out, td+"nope.lock", true); err == nil {
		t.Fatal("missing file must fail")
	}
}

// TestGoldenOutputs locks the full -q output of every shipped scenario
// against golden files; any change to the scheduling policy, graph
// construction or detector behavior that alters the paper-facing output
// shows up here.
func TestGoldenOutputs(t *testing.T) {
	for _, name := range []string{
		"example31", "example41", "example51", "conversion_deadlock", "hotqueue",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			if err := run(&out, td+name+".lock", true); err != nil {
				t.Fatal(err)
			}
			golden, err := os.ReadFile(td + "golden/" + name + ".txt")
			if err != nil {
				t.Fatal(err)
			}
			if out.String() != string(golden) {
				t.Errorf("output differs from golden file:\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
			}
		})
	}
}
