package hwtwbg

import "hwtwbg/internal/twbg"

// GraphEdge is one live H/W-TWBG edge, exported for observability: To
// waits for the completion of From; Holder reports whether From holds
// the resource (an H-labeled edge) as opposed to preceding To in its
// queue (W-labeled).
type GraphEdge struct {
	From, To TxnID
	Resource ResourceID
	Holder   bool
}

// Edges returns the current H/W-TWBG as data (see DOT for the rendered
// form): one entry per edge, in deterministic order. Diagnostic; the
// graph is rebuilt on each call.
func (m *Manager) Edges() []GraphEdge {
	m.stopTheWorld()
	defer m.resumeTheWorld()
	g := twbg.Build(m.mt)
	out := make([]GraphEdge, 0, g.NumEdges())
	for _, e := range g.Edges() {
		out = append(out, GraphEdge{
			From:     e.From,
			To:       e.To,
			Resource: e.Resource,
			Holder:   e.Label == twbg.H,
		})
	}
	return out
}
