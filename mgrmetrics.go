package hwtwbg

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"time"

	"hwtwbg/internal/lock"
	"hwtwbg/journal"
	"hwtwbg/metrics"
)

// shardMetrics is one shard's padded block of lock-free counters and
// histograms. Each shard points at its own separately allocated block
// (plus a tail pad), so hot-path increments by different cores never
// share a cache line across shards; within a shard the updates ride on
// the shard mutex's existing traffic. All fields are atomic, so readers
// (MetricsSnapshot, ShardStats) never take shard locks.
//
// hwlint:atomics-only — fields may only be touched via their methods.
type shardMetrics struct {
	grants        metrics.Counter                  // every grant: immediate and hand-off
	grantsByMode  [len(lock.Modes)]metrics.Counter // indexed by Mode
	fresh         metrics.Counter                  // first-time requests
	conversions   metrics.Counter                  // re-requests by an existing holder
	immediate     metrics.Counter                  // requests granted without blocking
	blocked       metrics.Counter                  // requests that enqueued
	waitAborts    metrics.Counter                  // waits ended by abort/cancel instead of grant
	tryRefused    metrics.Counter                  // TryLock refusals (would have blocked)
	mutexAcquires metrics.Counter                  // hot-path shard-mutex rounds (lock/commit/abort/wake re-checks)
	flatCombined  metrics.Counter                  // published requests applied by a combiner's drain
	queueDepth    metrics.Histogram                // depth in line at enqueue (incl. self)
	wait          metrics.Histogram                // ns blocked until grant (blocked requests only)
	grant         metrics.Histogram                // ns request→grant, every granted request
	_             [64]byte
}

// ShardMetricsSnapshot is a plain-value copy of one shard's counters
// (or of their sum, in MetricsSnapshot.Total).
type ShardMetricsSnapshot struct {
	Grants        uint64                    `json:"grants"`
	GrantsByMode  map[string]uint64         `json:"grants_by_mode"`
	Fresh         uint64                    `json:"fresh_requests"`
	Conversions   uint64                    `json:"conversion_requests"`
	Immediate     uint64                    `json:"immediate_grants"`
	Blocked       uint64                    `json:"blocked_requests"`
	WaitAborts    uint64                    `json:"wait_aborts"`
	TryRefused    uint64                    `json:"trylock_refused"`
	MutexAcquires uint64                    `json:"mutex_acquires"`
	FlatCombined  uint64                    `json:"flat_combined"`
	QueueDepth    metrics.HistogramSnapshot `json:"queue_depth_at_enqueue"`
	WaitNs        metrics.HistogramSnapshot `json:"lock_wait_ns"`
	GrantNs       metrics.HistogramSnapshot `json:"time_to_grant_ns"`
}

// merge adds o into s.
func (s *ShardMetricsSnapshot) merge(o ShardMetricsSnapshot) {
	s.Grants += o.Grants
	for k, v := range o.GrantsByMode {
		s.GrantsByMode[k] += v
	}
	s.Fresh += o.Fresh
	s.Conversions += o.Conversions
	s.Immediate += o.Immediate
	s.Blocked += o.Blocked
	s.WaitAborts += o.WaitAborts
	s.TryRefused += o.TryRefused
	s.MutexAcquires += o.MutexAcquires
	s.FlatCombined += o.FlatCombined
	s.QueueDepth.Merge(o.QueueDepth)
	s.WaitNs.Merge(o.WaitNs)
	s.GrantNs.Merge(o.GrantNs)
}

// snapshot copies the atomic counters into plain values.
func (sm *shardMetrics) snapshot() ShardMetricsSnapshot {
	s := ShardMetricsSnapshot{
		Grants:        sm.grants.Load(),
		GrantsByMode:  make(map[string]uint64, len(lock.Modes)),
		Fresh:         sm.fresh.Load(),
		Conversions:   sm.conversions.Load(),
		Immediate:     sm.immediate.Load(),
		Blocked:       sm.blocked.Load(),
		WaitAborts:    sm.waitAborts.Load(),
		TryRefused:    sm.tryRefused.Load(),
		MutexAcquires: sm.mutexAcquires.Load(),
		FlatCombined:  sm.flatCombined.Load(),
		QueueDepth:    sm.queueDepth.Snapshot(),
		WaitNs:        sm.wait.Snapshot(),
		GrantNs:       sm.grant.Snapshot(),
	}
	for _, m := range lock.Modes {
		if v := sm.grantsByMode[m].Load(); v > 0 {
			s.GrantsByMode[m.String()] = v
		}
	}
	return s
}

// PhaseTotals accumulates the detector's per-phase wall clock over the
// manager's lifetime: Acquire (waiting for shard locks), Copy (snapshot
// copy-out, DetectorSnapshot only), Build (Step 1, TST construction),
// Search (Step 2, the directed walk with TDR-1/TDR-2 resolution),
// Resolve (Step 3, abort confirmation and queue rescheduling), Validate
// (live re-verification and application of snapshot resolutions,
// DetectorSnapshot only) and Wake (applying wakes and releasing the
// world, DetectorSTW only).
//
// Every tag here must name an ActivationReport tag (a renamed phase
// would silently decouple the accumulator from the per-activation
// report); wireschema enforces the subset.
//
//hwlint:wire parse actphase subset
type PhaseTotals struct {
	Acquire  time.Duration `json:"acquire_ns"`
	Copy     time.Duration `json:"copy_ns"`
	Build    time.Duration `json:"build_ns"`
	Search   time.Duration `json:"search_ns"`
	Resolve  time.Duration `json:"resolve_ns"`
	Validate time.Duration `json:"validate_ns"`
	Wake     time.Duration `json:"wake_ns"`
}

func (p *PhaseTotals) add(rep ActivationReport) {
	p.Acquire += rep.Acquire
	p.Copy += rep.Copy
	p.Build += rep.Build
	p.Search += rep.Search
	p.Resolve += rep.Resolve
	p.Validate += rep.Validate
	p.Wake += rep.Wake
}

// MetricsSnapshot is one consistent-enough view of every metric the
// manager keeps: per-shard counter blocks, their sum, the detector's
// lifetime stats and the cumulative phase breakdown. Counters are read
// atomically without stopping the world, so a snapshot taken under load
// may straddle in-flight operations, but no counter ever reads
// backwards across snapshots.
type MetricsSnapshot struct {
	Shards   []ShardMetricsSnapshot `json:"shards"`
	Total    ShardMetricsSnapshot   `json:"total"`
	Detector Stats                  `json:"detector"`
	Phases   PhaseTotals            `json:"detector_phases"`
	// Journal sums the flight recorder's ring counters (all zero when
	// the journal is disabled).
	Journal journal.RingStats `json:"journal"`
	// CostModel is the detection-scheduling cost model's state (see
	// Manager.CostModel).
	CostModel CostModelState `json:"cost_model"`
}

// MetricsSnapshot collects the current metrics without taking any shard
// lock (safe to call from a Tracer hook or a debug endpoint at any
// rate).
func (m *Manager) MetricsSnapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Shards: make([]ShardMetricsSnapshot, len(m.shards)),
		Total:  ShardMetricsSnapshot{GrantsByMode: make(map[string]uint64, len(lock.Modes))},
	}
	for i, s := range m.shards {
		snap.Shards[i] = s.met.snapshot()
		snap.Total.merge(snap.Shards[i])
	}
	m.mu.Lock()
	snap.Detector = m.stats
	snap.Phases = m.phases
	m.mu.Unlock()
	if m.jr != nil {
		snap.Journal = m.jr.Stats()
	}
	snap.CostModel = m.CostModel()
	return snap
}

// ExpvarVar returns an expvar.Var that renders the full
// MetricsSnapshot as JSON on demand — hand it to expvar.Publish, or use
// PublishExpvar for the common case.
func (m *Manager) ExpvarVar() expvar.Var {
	return expvar.Func(func() any { return m.MetricsSnapshot() })
}

// PublishExpvar publishes the manager's metrics under name in the
// process-global expvar registry (they then appear on /debug/vars).
// Like expvar.Publish, it panics if name is already registered, so
// publish each manager once under a distinct name.
func (m *Manager) PublishExpvar(name string) {
	expvar.Publish(name, m.ExpvarVar())
}

// WritePrometheus writes the current metrics in Prometheus text
// exposition format: request/grant counters (aggregate per mode and
// per shard), the wait-latency, time-to-grant and queue-depth
// histograms (aggregated across shards), and the detector's lifetime
// counters with the per-phase stop-the-world breakdown.
func (m *Manager) WritePrometheus(w io.Writer) error {
	snap := m.MetricsSnapshot()
	bw := &errWriter{w: w}

	metrics.WriteHeader(bw, "hwtwbg_lock_requests_total", "Lock requests by kind.", "counter")
	metrics.WriteCounterSample(bw, "hwtwbg_lock_requests_total", map[string]string{"kind": "fresh"}, snap.Total.Fresh)
	metrics.WriteCounterSample(bw, "hwtwbg_lock_requests_total", map[string]string{"kind": "conversion"}, snap.Total.Conversions)

	metrics.WriteHeader(bw, "hwtwbg_lock_grants_total", "Lock grants by mode.", "counter")
	for _, mode := range lock.Modes {
		if v, ok := snap.Total.GrantsByMode[mode.String()]; ok {
			metrics.WriteCounterSample(bw, "hwtwbg_lock_grants_total", map[string]string{"mode": mode.String()}, v)
		}
	}

	metrics.WriteCounter(bw, "hwtwbg_immediate_grants_total", "Requests granted without blocking.", nil, snap.Total.Immediate)
	metrics.WriteCounter(bw, "hwtwbg_blocked_requests_total", "Requests that enqueued.", nil, snap.Total.Blocked)
	metrics.WriteCounter(bw, "hwtwbg_wait_aborts_total", "Blocked waits ended by abort or cancellation.", nil, snap.Total.WaitAborts)
	metrics.WriteCounter(bw, "hwtwbg_trylock_refused_total", "TryLock refusals (would have blocked).", nil, snap.Total.TryRefused)
	metrics.WriteCounter(bw, "hwtwbg_shard_mutex_acquires_total", "Hot-path shard-mutex acquisition rounds.", nil, snap.Total.MutexAcquires)
	metrics.WriteCounter(bw, "hwtwbg_flat_combined_total", "Lock requests applied by another goroutine's flat-combining drain.", nil, snap.Total.FlatCombined)

	metrics.WriteHeader(bw, "hwtwbg_shard_grants_total", "Lock grants per shard.", "counter")
	for i, s := range snap.Shards {
		metrics.WriteCounterSample(bw, "hwtwbg_shard_grants_total", map[string]string{"shard": fmt.Sprint(i)}, s.Grants)
	}

	metrics.WriteHistogram(bw, "hwtwbg_lock_wait_seconds", "Time blocked before grant (blocked requests only).", nil, snap.Total.WaitNs, 1e-9)
	metrics.WriteHistogram(bw, "hwtwbg_time_to_grant_seconds", "Request-to-grant latency, every granted request.", nil, snap.Total.GrantNs, 1e-9)
	metrics.WriteHistogram(bw, "hwtwbg_queue_depth_enqueue", "Requests in line at enqueue, including the newcomer.", nil, snap.Total.QueueDepth, 1)

	st := snap.Detector
	metrics.WriteCounter(bw, "hwtwbg_detector_runs_total", "Detector activations.", nil, uint64(st.Runs))
	metrics.WriteCounter(bw, "hwtwbg_detector_cycles_total", "Cycles found and resolved (the paper's c', summed).", nil, uint64(st.CyclesSearched))
	metrics.WriteCounter(bw, "hwtwbg_detector_victims_total", "Transactions aborted by the detector (TDR-1).", nil, uint64(st.Aborted))
	metrics.WriteCounter(bw, "hwtwbg_detector_repositions_total", "Deadlocks resolved without any abort (TDR-2).", nil, uint64(st.Repositioned))
	metrics.WriteCounter(bw, "hwtwbg_detector_salvaged_total", "Victims rescued at Step 3.", nil, uint64(st.Salvaged))
	metrics.WriteCounter(bw, "hwtwbg_detector_false_cycles_total", "Snapshot resolutions dropped at validation (torn-snapshot artifacts).", nil, uint64(st.FalseCycles))
	metrics.WriteCounter(bw, "hwtwbg_detector_validations_total", "Validate-then-act attempts by the snapshot detector.", nil, uint64(st.Validations))
	metrics.WriteCounter(bw, "hwtwbg_detector_shards_copied_total", "Shards copied into the incremental snapshot (dirty at activation).", nil, uint64(st.ShardsCopied))
	metrics.WriteCounter(bw, "hwtwbg_detector_shards_skipped_total", "Shards skipped by the incremental snapshot (clean since last copy).", nil, uint64(st.ShardsSkipped))

	metrics.WriteHeader(bw, "hwtwbg_detector_phase_seconds_total", "Cumulative detector wall clock per phase.", "counter")
	for _, ph := range []struct {
		name string
		d    time.Duration
	}{
		{"acquire", snap.Phases.Acquire},
		{"copy", snap.Phases.Copy},
		{"build", snap.Phases.Build},
		{"search", snap.Phases.Search},
		{"resolve", snap.Phases.Resolve},
		{"validate", snap.Phases.Validate},
		{"wake", snap.Phases.Wake},
	} {
		fmt.Fprintf(bw, "hwtwbg_detector_phase_seconds_total{phase=%q} %.9g\n", ph.name, ph.d.Seconds())
	}
	metrics.WriteGauge(bw, "hwtwbg_detector_stw_seconds_total", "Cumulative worst grant-path stall (STW pause, or snapshot copy hold).", nil, st.STWTotal.Seconds())
	metrics.WriteGauge(bw, "hwtwbg_detector_stw_last_seconds", "Most recent activation's worst grant-path stall.", nil, st.STWLast.Seconds())
	metrics.WriteGauge(bw, "hwtwbg_detector_stw_max_seconds", "Worst single-activation grant-path stall.", nil, st.STWMax.Seconds())
	metrics.WriteGauge(bw, "hwtwbg_detector_period_seconds", "Live detection interval (self-tuned when AdaptivePeriod).", nil, m.CurrentPeriod().Seconds())

	cm := snap.CostModel
	metrics.WriteCounter(bw, "hwtwbg_costmodel_samples_total", "Detector activations folded into the scheduling cost model.", nil, uint64(cm.Samples))
	metrics.WriteCounter(bw, "hwtwbg_costmodel_deadlocks_total", "Deadlock cycles observed by the scheduling cost model.", nil, cm.Deadlocks)
	metrics.WriteCounter(bw, "hwtwbg_costmodel_victim_waits_total", "Victim wait-span samples folded into the persistence-cost estimate.", nil, cm.VictimWaits)
	metrics.WriteGauge(bw, "hwtwbg_costmodel_rate_hz", "Estimated deadlock formation rate (exponentially time-decayed).", nil, cm.RatePerSec)
	metrics.WriteGauge(bw, "hwtwbg_costmodel_detect_cost_seconds", "EWMA cost of one detector activation.", nil, cm.DetectCost.Seconds())
	metrics.WriteGauge(bw, "hwtwbg_costmodel_persist_cost_seconds", "EWMA deadlock victim wait span (persistence cost per caught deadlock).", nil, cm.PersistCost.Seconds())
	metrics.WriteGauge(bw, "hwtwbg_costmodel_stall_rate", "Estimated stalled-transaction accrual rate of a persisting deadlock.", nil, cm.StallRate)
	metrics.WriteGauge(bw, "hwtwbg_costmodel_period_seconds", "Cost-minimizing detection period sqrt(2D/(lambda*rho)), clamped.", nil, cm.Period.Seconds())

	js := snap.Journal
	metrics.WriteCounter(bw, "hwtwbg_journal_records_total", "Flight-recorder records emitted across all rings.", nil, js.Emitted)
	metrics.WriteCounter(bw, "hwtwbg_journal_overwritten_total", "Flight-recorder records overwritten before any snapshot saw them.", nil, js.Overwritten)
	metrics.WriteCounter(bw, "hwtwbg_journal_torn_reads_total", "Snapshot reads that discarded a torn record.", nil, js.TornReads)
	metrics.WriteGauge(bw, "hwtwbg_journal_capacity_records", "Flight-recorder capacity in records, summed across rings.", nil, float64(js.Cap))
	return bw.err
}

// errWriter latches the first write error so the exposition code can
// stay free of per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

// MarshalJSON renders the snapshot (used by the expvar publisher and
// the debug endpoints); defined explicitly so the type stays stable if
// internals grow.
func (s MetricsSnapshot) MarshalJSON() ([]byte, error) {
	type alias MetricsSnapshot
	return json.Marshal(alias(s))
}
