package hwtwbg

import (
	"context"
	"time"

	"hwtwbg/internal/lock"
	"hwtwbg/journal"
)

// LockRequest names one acquisition of a group passed to LockAll.
type LockRequest struct {
	Resource ResourceID
	Mode     Mode
}

// batchEnt is one entry of a batch's shard-sorted acquisition order.
type batchEnt struct {
	shard uint32 // owning shard index
	idx   int32  // index into the caller's request slice
}

// pendOutcome records what one table round did to one request, so the
// observer work (histograms, journal, tracer) can run after the shard
// mutex is released without re-probing the table.
type pendOutcome struct {
	idx     int32
	depth   int32 // queue depth at enqueue (blocked requests only)
	blocked bool
	conv    bool
}

// batchScratch is LockAll's reusable sort and flush scratch, inlined
// into the Txn so steady-state batches allocate nothing.
type batchScratch struct {
	ord  []batchEnt
	pend []pendOutcome
}

// LockAll acquires every lock in reqs, blocking as needed, and returns
// nil once all of them are granted. It is semantically a sequence of
// Lock calls in shard order — requests are sorted by owning shard
// (original order preserved within a shard), and each shard's run is
// granted or enqueued in a single mutex round, so a batch of K requests
// mapping to S shards costs S uncontended mutex acquisitions instead of
// K. Each request still journals and traces individually, exactly as
// the single-request path does, so detector, audit and postmortem
// semantics are unchanged.
//
// Blocking is partial: the transaction parks on the first request a
// round fails to grant — leaving exactly one wait edge, preserving the
// paper's single-wait invariant (Lemma 4.1) — and the rest of the batch
// resumes after that grant. On error (abort, cancellation, close) the
// batch stops where it stands; locks granted by earlier rounds remain
// held by the transaction, exactly as with sequential Lock calls, and
// are released by its eventual Commit or Abort.
//
// Because acquisition order is shard order, not argument order, callers
// that interleave LockAll with single Lock calls on overlapping key
// sets should not rely on argument order for deadlock avoidance; the
// detector resolves whatever cycles arise either way.
//
// The budget is the BENCH_PR8 group-acquisition gate made static:
// three sites are provable — the two batch-scratch growth appends
// (t.batch.ord / t.batch.pend, which grow to the batch high-water mark
// once and are reused thereafter) and the table's Resource first-touch
// literal.
//
//hwlint:hotpath allocs=3
func (t *Txn) LockAll(ctx context.Context, reqs []LockRequest) error {
	switch len(reqs) {
	case 0:
		return t.checkLive()
	case 1:
		return t.Lock(ctx, reqs[0].Resource, reqs[0].Mode)
	}
	m := t.m
	tr := m.opts.Tracer

	// Sort the batch by (shard, original index). Batches are small;
	// insertion sort beats sort.Slice here and allocates nothing.
	ord := t.batch.ord[:0]
	for i := range reqs {
		ord = append(ord, batchEnt{shard: shardIndex(reqs[i].Resource, m.mask), idx: int32(i)})
	}
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && less(ord[j], ord[j-1]); j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	t.batch.ord = ord

	pos := 0
	for pos < len(ord) {
		// The run [pos, end) shares a shard. A mid-run block leaves pos
		// inside the run; the next iteration re-derives the run and takes
		// the shard mutex again — it was released across the wait.
		sIdx := ord[pos].shard
		end := pos + 1
		for end < len(ord) && ord[end].shard == sIdx {
			end++
		}
		s := m.shards[sIdx]
		start := time.Now()
		t.journalBegin(start.UnixNano())
		if tr != nil {
			for _, e := range ord[pos:end] {
				tr.OnRequest(t.id, reqs[e.idx].Resource, reqs[e.idx].Mode)
			}
		}
		met := s.met
		s.mu.Lock()
		met.mutexAcquires.Inc()
		if err := t.checkLive(); err != nil {
			s.drainPending()
			s.mu.Unlock()
			return err
		}
		// Counter updates are accumulated locally and applied in one Add
		// per counter after the round — the counters are atomic, so they
		// need neither the mutex nor one RMW per request.
		pend := t.batch.pend[:0]
		var blockedCh chan struct{}
		var applyErr error
		var nFresh, nConv, nGrant, nBlocked uint64
		var byMode [len(lock.Modes)]uint64
		for pos < end {
			e := ord[pos]
			rq := reqs[e.idx]
			res, err := s.tb.RequestEx(t.id, rq.Resource, rq.Mode)
			if err != nil {
				applyErr = err
				break
			}
			t.noteShard(s)
			if res.Conversion {
				nConv++
			} else {
				nFresh++
			}
			pend = append(pend, pendOutcome{idx: e.idx, depth: int32(res.QueueDepth), blocked: !res.Granted, conv: res.Conversion})
			pos++
			if !res.Granted {
				// First block ends the round: the remainder of the batch
				// waits with us, so the transaction has exactly one wait
				// edge at every observable point.
				nBlocked++
				blockedCh = getWaiter()
				s.waiters[t.id] = blockedCh
				break
			}
			nGrant++
			byMode[rq.Mode]++
		}
		if nFresh+nConv > 0 {
			s.epoch.bump() // one bump covers the whole batch round
		}
		s.drainPending()
		s.mu.Unlock()
		met.fresh.Add(nFresh)
		met.conversions.Add(nConv)
		met.grants.Add(nGrant)
		met.immediate.Add(nGrant)
		met.blocked.Add(nBlocked)
		for m, n := range byMode {
			if n > 0 {
				met.grantsByMode[m].Add(n)
			}
		}
		t.batch.pend = pend
		t.flushBatch(s, reqs, pend, start)
		if applyErr != nil {
			return applyErr
		}
		if blockedCh != nil {
			e := pend[len(pend)-1]
			rq := reqs[e.idx]
			if err := t.waitGrant(ctx, s, blockedCh, start, rq.Resource, rq.Mode, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// less orders batch entries by (shard, original index).
func less(a, b batchEnt) bool {
	return a.shard < b.shard || (a.shard == b.shard && a.idx < b.idx)
}

// flushBatch performs the deferred observer work for one shard round of
// a batch — histogram observations, journal records, tracer hooks — in
// request order, after the shard mutex is released. Records are emitted
// individually with the same shapes the single-request path emits, so
// postmortems and differential replays cannot tell a batch from a run
// of single requests.
func (t *Txn) flushBatch(s *shard, reqs []LockRequest, pend []pendOutcome, start time.Time) {
	tr := t.m.opts.Tracer
	met := s.met
	ts := start.UnixNano()
	elapsed := uint64(time.Since(start)) // one clock read prices the whole round
	for _, p := range pend {
		rq := reqs[p.idx]
		if p.blocked {
			met.queueDepth.Observe(uint64(p.depth))
			if s.jr != nil {
				rec := journal.Record{TS: ts, Txn: int64(t.id), Arg: uint64(p.depth), Kind: journal.KindBlock, Mode: uint8(rq.Mode)}
				if p.conv {
					rec.Flags = journal.FlagConversion
				}
				rec.SetResource(string(rq.Resource))
				s.jr.Emit(&rec)
			}
			if tr != nil {
				tr.OnBlock(t.id, rq.Resource, rq.Mode, int(p.depth))
			}
			continue
		}
		met.grant.Observe(elapsed)
		if s.jr != nil {
			rec := journal.Record{TS: ts, Txn: int64(t.id), Kind: journal.KindGrant, Mode: uint8(rq.Mode)}
			if p.conv {
				rec.Flags = journal.FlagConversion
			}
			rec.SetResource(string(rq.Resource))
			s.jr.Emit(&rec)
		}
		if tr != nil {
			tr.OnGrant(t.id, rq.Resource, rq.Mode, 0)
		}
	}
}
