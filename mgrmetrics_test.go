package hwtwbg

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMetricsSnapshotCounters(t *testing.T) {
	m := Open(Options{Shards: 4})
	defer m.Close()
	ctx := context.Background()

	a := m.Begin()
	if err := a.Lock(ctx, "r1", IS); err != nil {
		t.Fatal(err)
	}
	if err := a.Lock(ctx, "r1", IX); err != nil { // conversion, immediate
		t.Fatal(err)
	}
	if err := a.Lock(ctx, "r2", X); err != nil {
		t.Fatal(err)
	}

	// A fresh requestor blocks behind a's X and is granted at commit.
	b := m.Begin()
	done := make(chan error, 1)
	go func() { done <- b.Lock(ctx, "r2", S) }()
	waitBlocked(t, m, b.ID())
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	snap := m.MetricsSnapshot()
	tot := snap.Total
	if tot.Fresh != 3 { // r1 IS, r2 X, b's r2 S
		t.Errorf("fresh = %d, want 3", tot.Fresh)
	}
	if tot.Conversions != 1 {
		t.Errorf("conversions = %d, want 1", tot.Conversions)
	}
	if tot.Immediate != 3 {
		t.Errorf("immediate = %d, want 3", tot.Immediate)
	}
	if tot.Blocked != 1 {
		t.Errorf("blocked = %d, want 1", tot.Blocked)
	}
	// 3 immediate grants + 1 hand-off grant.
	if tot.Grants != 4 {
		t.Errorf("grants = %d, want 4", tot.Grants)
	}
	if tot.WaitNs.Count != 1 {
		t.Errorf("wait observations = %d, want 1", tot.WaitNs.Count)
	}
	if tot.GrantNs.Count != 4 {
		t.Errorf("time-to-grant observations = %d, want 4", tot.GrantNs.Count)
	}
	if tot.QueueDepth.Count != 1 {
		t.Errorf("queue-depth observations = %d, want 1", tot.QueueDepth.Count)
	}
	// Depth in line for b was 1 (itself); the histogram must have seen it.
	if got := tot.QueueDepth.Quantile(1); got != 1 {
		t.Errorf("max queue depth = %d, want 1", got)
	}
	// Per-mode: immediate grants count requested modes; the hand-off
	// counts the table's effective mode (S).
	if tot.GrantsByMode["IS"] != 1 || tot.GrantsByMode["IX"] != 1 || tot.GrantsByMode["X"] != 1 || tot.GrantsByMode["S"] != 1 {
		t.Errorf("grants by mode = %v", tot.GrantsByMode)
	}
	// Shard grants must sum to the total and agree with ShardStats.
	var sum uint64
	for i, s := range snap.Shards {
		sum += s.Grants
		if ss := m.ShardStats()[i]; ss.Grants != s.Grants {
			t.Errorf("shard %d: ShardStats %d != snapshot %d", i, ss.Grants, s.Grants)
		}
	}
	if sum != tot.Grants {
		t.Errorf("shard grant sum %d != total %d", sum, tot.Grants)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsTryLockAndWaitAbort(t *testing.T) {
	m := Open(Options{})
	defer m.Close()
	ctx := context.Background()

	a := m.Begin()
	if err := a.Lock(ctx, "r", X); err != nil {
		t.Fatal(err)
	}
	b := m.Begin()
	if ok, err := b.TryLock("r", X); ok || err != nil {
		t.Fatalf("TryLock = %v, %v", ok, err)
	}
	if ok, err := b.TryLock("other", S); !ok || err != nil {
		t.Fatalf("TryLock other = %v, %v", ok, err)
	}

	// A context-cancelled wait must count as a wait abort.
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- b.Lock(cctx, "r", S) }()
	waitBlocked(t, m, b.ID())
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}

	snap := m.MetricsSnapshot()
	if snap.Total.TryRefused != 1 {
		t.Errorf("tryRefused = %d, want 1", snap.Total.TryRefused)
	}
	if snap.Total.WaitAborts != 1 {
		t.Errorf("waitAborts = %d, want 1", snap.Total.WaitAborts)
	}
	a.Commit()
}

func TestWritePrometheus(t *testing.T) {
	m := Open(Options{Shards: 2})
	defer m.Close()
	ctx := context.Background()

	// Build a deadlock, resolve it, and make one request wait so the
	// wait-latency histogram is non-empty.
	a, b := m.Begin(), m.Begin()
	if err := a.Lock(ctx, "x", X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(ctx, "y", X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- a.Lock(ctx, "y", X) }()
	go func() { errs <- b.Lock(ctx, "x", X) }()
	waitBlocked(t, m, a.ID())
	waitBlocked(t, m, b.ID())
	m.Detect()
	<-errs
	<-errs

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE hwtwbg_lock_wait_seconds histogram",
		`hwtwbg_lock_wait_seconds_bucket{le="+Inf"} 1`,
		"# TYPE hwtwbg_time_to_grant_seconds histogram",
		"# TYPE hwtwbg_queue_depth_enqueue histogram",
		`hwtwbg_lock_requests_total{kind="fresh"} 4`,
		`hwtwbg_shard_grants_total{shard="0"}`,
		`hwtwbg_shard_grants_total{shard="1"}`,
		"hwtwbg_detector_runs_total 1",
		"hwtwbg_detector_victims_total 1",
		"hwtwbg_detector_cycles_total 1",
		`hwtwbg_detector_phase_seconds_total{phase="acquire"}`,
		`hwtwbg_detector_phase_seconds_total{phase="build"}`,
		`hwtwbg_detector_phase_seconds_total{phase="search"}`,
		`hwtwbg_detector_phase_seconds_total{phase="resolve"}`,
		`hwtwbg_detector_phase_seconds_total{phase="wake"}`,
		"hwtwbg_detector_stw_last_seconds",
		"hwtwbg_costmodel_samples_total 1",
		"hwtwbg_costmodel_deadlocks_total 1",
		"hwtwbg_costmodel_victim_waits_total 1",
		"# TYPE hwtwbg_costmodel_rate_hz gauge",
		"hwtwbg_costmodel_detect_cost_seconds",
		"hwtwbg_costmodel_persist_cost_seconds",
		"hwtwbg_costmodel_stall_rate",
		"hwtwbg_costmodel_period_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics output", want)
		}
	}

	// The snapshot carries the same state.
	snap := m.MetricsSnapshot()
	if snap.CostModel.Samples != 1 || snap.CostModel.Deadlocks != 1 || snap.CostModel.VictimWaits != 1 {
		t.Errorf("snapshot cost model = %+v", snap.CostModel)
	}
	if snap.CostModel.PersistCost <= 0 || snap.CostModel.Period <= 0 {
		t.Errorf("snapshot cost model estimates = %+v", snap.CostModel)
	}
}

func TestExpvarVarJSON(t *testing.T) {
	m := Open(Options{})
	defer m.Close()
	ctx := context.Background()
	tx := m.Begin()
	if err := tx.Lock(ctx, "r", X); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(m.ExpvarVar().String()), &snap); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v", err)
	}
	if snap.Total.Grants != 1 || len(snap.Shards) != m.NumShards() {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// recordingTracer records hook invocations for assertion.
type recordingTracer struct {
	mu          sync.Mutex
	requests    int
	blocks      int
	grants      int
	waited      int // grants with wait > 0
	aborts      int
	activations []ActivationReport
}

func (r *recordingTracer) OnRequest(TxnID, ResourceID, Mode) {
	r.mu.Lock()
	r.requests++
	r.mu.Unlock()
}

func (r *recordingTracer) OnBlock(_ TxnID, _ ResourceID, _ Mode, depth int) {
	r.mu.Lock()
	r.blocks++
	r.mu.Unlock()
	if depth < 1 {
		panic("depth must count the newcomer")
	}
}

func (r *recordingTracer) OnGrant(_ TxnID, _ ResourceID, _ Mode, wait time.Duration) {
	r.mu.Lock()
	r.grants++
	if wait > 0 {
		r.waited++
	}
	r.mu.Unlock()
}

func (r *recordingTracer) OnAbort(TxnID) {
	r.mu.Lock()
	r.aborts++
	r.mu.Unlock()
}

func (r *recordingTracer) OnActivation(rep ActivationReport) {
	r.mu.Lock()
	r.activations = append(r.activations, rep)
	r.mu.Unlock()
}

func TestTracerHooksAndActivationRing(t *testing.T) {
	tr := &recordingTracer{}
	m := Open(Options{Tracer: tr})
	defer m.Close()
	ctx := context.Background()

	a, b := m.Begin(), m.Begin()
	if err := a.Lock(ctx, "x", X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(ctx, "y", X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- a.Lock(ctx, "y", X) }()
	go func() { errs <- b.Lock(ctx, "x", X) }()
	waitBlocked(t, m, a.ID())
	waitBlocked(t, m, b.ID())
	m.Detect()
	e1, e2 := <-errs, <-errs

	aborted := 0
	if errors.Is(e1, ErrAborted) {
		aborted++
	}
	if errors.Is(e2, ErrAborted) {
		aborted++
	}
	if aborted != 1 {
		t.Fatalf("errs = %v / %v", e1, e2)
	}
	// The survivor holds both locks now; commit it (its owner is the
	// main goroutine for locks x/y regardless of which txn won).
	if e1 == nil {
		a.Commit()
	} else {
		b.Commit()
	}

	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.requests != 4 {
		t.Errorf("requests = %d, want 4", tr.requests)
	}
	if tr.blocks != 2 {
		t.Errorf("blocks = %d, want 2", tr.blocks)
	}
	if tr.grants != 3 { // 2 immediate + 1 survivor grant
		t.Errorf("grants = %d, want 3", tr.grants)
	}
	if tr.waited != 1 {
		t.Errorf("waited grants = %d, want 1", tr.waited)
	}
	if tr.aborts != 1 {
		t.Errorf("aborts = %d, want 1", tr.aborts)
	}
	if len(tr.activations) != 1 {
		t.Fatalf("activations = %d, want 1", len(tr.activations))
	}
	rep := tr.activations[0]
	if rep.Seq != 1 || rep.CyclesSearched != 1 || rep.Aborted != 1 || rep.Vertices != 2 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Total <= 0 || rep.Total < rep.Build+rep.Search+rep.Resolve {
		t.Errorf("phase arithmetic wrong: %+v", rep)
	}

	// The ring must retain the same report.
	reports, total := m.Activations()
	if total != 1 || len(reports) != 1 || reports[0].Seq != 1 {
		t.Fatalf("Activations() = %v, %d", reports, total)
	}
	if !strings.Contains(reports[0].String(), "activation 1:") {
		t.Errorf("String() = %q", reports[0].String())
	}

	// Cumulative phase totals must have accumulated the report.
	snap := m.MetricsSnapshot()
	if snap.Phases.Build != rep.Build || snap.Phases.Search != rep.Search {
		t.Errorf("phases = %+v, report = %+v", snap.Phases, rep)
	}
}

func TestSlogTracerSmoke(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	m := Open(Options{Tracer: NewSlogTracer(logger)})
	defer m.Close()
	ctx := context.Background()

	a, b := m.Begin(), m.Begin()
	if err := a.Lock(ctx, "r", X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- b.Lock(ctx, "r", X) }()
	waitBlocked(t, m, b.ID())
	m.Detect()
	a.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	b.Abort()

	out := buf.String()
	for _, want := range []string{"lock request", "lock blocked", "lock granted after wait", "detector activation", "txn aborted"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in slog output:\n%s", want, out)
		}
	}
	if NewSlogTracer(nil).L == nil {
		t.Error("nil logger must default")
	}
}
