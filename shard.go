package hwtwbg

import (
	"sort"
	"sync"
	"sync/atomic"

	"hwtwbg/internal/table"
	"hwtwbg/journal"
)

// shard is one stripe of the sharded lock-table facade: a sequential
// lock table, the mutex that serializes it, and the waiter channels of
// the transactions blocked on its resources. A resource lives entirely
// in the shard its id hashes to, so non-conflicting transactions on
// different resources never touch the same mutex; grant hand-off from a
// commit/abort stays within the shard, because a resource's waiters are
// by construction waiting in the resource's shard.
type shard struct {
	mu      sync.Mutex
	tb      *table.Table
	waiters map[TxnID]chan struct{} // signalled (one token) when the waiter should re-check its fate
	met     *shardMetrics           // this shard's padded metric block (atomic; readable without mu)
	jr      *journal.Ring           // this shard's flight-recorder ring (lock-free; nil when disabled)
	epoch   shardEpoch              // mutation version of tb; see shardEpoch

	// fc is the shard's flat-combining publication array: a requester
	// that finds mu contended CASes its request record into a nil slot
	// and spins on the record's done flag; whoever holds the mutex
	// drains the slots before unlocking (drainPending), applying the
	// published requests on its own mutex round. MPSC by construction —
	// publishers only CAS nil→req, and only the mutex holder swaps a
	// slot back to nil.
	fc [fcSlots]atomic.Pointer[fcRequest]
}

// shardEpoch is a shard table's mutation version: a monotonically
// increasing counter bumped — while holding the owning shard's mutex —
// by every mutex round that mutates the shard's lock table (grant,
// block, conversion, release, abort, LockAll batch, flat-combining
// apply, detector surgery). The incremental snapshot detector loads it
// without the mutex to decide whether the copy it took of the shard
// last activation is still current; an unchanged epoch proves the
// table is byte-identical to that copy. A load racing a bump simply
// observes the previous value: the detector then reuses a one-round-
// stale (but internally consistent) copy, which validate-then-act
// already tolerates, and the next activation sees the bump and
// recopies. The counter never wraps in practice (2^64 mutex rounds).
//
// hwlint:atomics-only — the counter may only be touched via its
// methods.
type shardEpoch struct {
	v atomic.Uint64
}

// bump advances the epoch; the caller holds the owning shard's mutex.
func (e *shardEpoch) bump() { e.v.Add(1) }

// load reads the epoch; callers need no lock (see shardEpoch).
func (e *shardEpoch) load() uint64 { return e.v.Load() }

// fcSlots sizes each shard's flat-combining publication array. Eight
// slots cover the realistic burst of simultaneously contending
// requesters per shard; when all are taken the requester simply falls
// back to queueing on the mutex, so the size is a throughput knob, not
// a correctness bound.
const fcSlots = 8

// fcRequest is one published lock request. The record is owned by the
// requesting transaction (inlined in Txn, so publication allocates
// nothing) and handed to the combiner by pointer; the combiner writes
// the outcome into res/err and then publishes those writes with the
// atomic done store, which the spinning requester's done load
// synchronizes with.
type fcRequest struct {
	txn  TxnID
	rid  ResourceID
	mode Mode
	ch   chan struct{} // waiter channel the combiner registers if the request blocks

	res  table.RequestResult
	err  error
	done atomic.Uint32
}

// prepare readies the record for a new publication.
func (f *fcRequest) prepare(txn TxnID, rid ResourceID, mode Mode, ch chan struct{}) {
	f.txn = txn
	f.rid = rid
	f.mode = mode
	f.ch = ch
	f.res = table.RequestResult{}
	f.err = nil
	f.done.Store(0)
}

// drainPending applies every currently published request. Called with
// mu held by whichever goroutine is about to release it on a hot-path
// exit (or by a spinning publisher that found the mutex free and became
// the combiner). Results travel back through the request record: plain
// writes first, then the done flag's atomic store makes them visible to
// the spinning owner. All observer work for the drained requests —
// histogram observations, journal records, tracer hooks — happens on
// the owner's side after it sees done, so nothing here blocks or calls
// out while the shard is locked.
func (s *shard) drainPending() {
	for i := range s.fc {
		req := s.fc[i].Load()
		if req == nil {
			continue
		}
		s.fc[i].Store(nil)
		s.applyPublished(req)
	}
}

// applyPublished runs one published request through the table,
// maintaining the same counters the direct path maintains and
// registering the waiter channel when the request blocks — so a
// combined request is indistinguishable, table- and detector-wise, from
// one issued under the requester's own mutex round. Called with mu
// held.
//
// The one budgeted site is the table's Resource first-touch literal.
//
//hwlint:hotpath allocs=1
func (s *shard) applyPublished(req *fcRequest) {
	res, err := s.tb.RequestEx(req.txn, req.rid, req.mode)
	met := s.met
	met.flatCombined.Inc()
	if err == nil {
		s.epoch.bump()
		if res.Conversion {
			met.conversions.Inc()
		} else {
			met.fresh.Inc()
		}
		if res.Granted {
			met.grants.Inc()
			met.grantsByMode[req.mode].Inc()
			met.immediate.Inc()
		} else {
			met.blocked.Inc()
			s.waiters[req.txn] = req.ch
		}
	}
	req.res = res
	req.err = err
	req.done.Store(1)
}

// waiterPool recycles waiter channels across blocking Lock calls. A
// waiter channel is a one-token signal (capacity 1), not a closed-once
// broadcast, precisely so it can be reused: the waiter drains any stale
// token before returning its channel to the pool.
var waiterPool = sync.Pool{New: func() any { return make(chan struct{}, 1) }}

// getWaiter hands out a recycled (empty) waiter channel.
func getWaiter() chan struct{} { return waiterPool.Get().(chan struct{}) }

// putWaiter returns a waiter channel to the pool, draining a token a
// waker may have sent after the waiter stopped listening. The caller
// must already have removed the channel from the shard's waiter map
// under the shard mutex — tokens are only ever sent under that mutex to
// channels still in the map, so after removal no further token can
// arrive and the drained channel is safe to reuse.
func putWaiter(ch chan struct{}) {
	select {
	case <-ch:
	default:
	}
	waiterPool.Put(ch)
}

// wake signals one waiter, if present, and unregisters it (the waiter
// re-registers its channel if it decides to keep waiting). Called with
// mu held. The send cannot block: a registered channel is always empty,
// because a waker removes the channel when it deposits a token and the
// waiter consumes the token before re-registering.
func (s *shard) wake(id TxnID) {
	if ch, ok := s.waiters[id]; ok {
		select {
		case ch <- struct{}{}:
		default:
		}
		delete(s.waiters, id)
	}
}

// wakeAll signals every waiter to re-check its state. Called with mu
// held.
func (s *shard) wakeAll() {
	for id, ch := range s.waiters {
		select {
		case ch <- struct{}{}:
		default:
		}
		delete(s.waiters, id)
	}
}

// wakeGrants wakes the transaction behind every grant and counts the
// grants served. Called with mu held.
func (s *shard) wakeGrants(grants []table.Grant) {
	for _, g := range grants {
		s.wake(g.Txn)
	}
	s.countGrants(grants)
}

// countGrants counts hand-off grants into the shard's metric block,
// per mode (the effective post-conversion mode the table reports). The
// counters are atomic, so both mutex-holding callers (commit/abort
// hand-off) and the stopped-world detector may call this.
func (s *shard) countGrants(grants []table.Grant) {
	for _, g := range grants {
		s.met.grants.Inc()
		if int(g.Mode) < len(s.met.grantsByMode) {
			s.met.grantsByMode[g.Mode].Inc()
		}
	}
}

// shardIndex maps a resource id to a shard index: FNV-1a over the id,
// masked to the power-of-two shard count.
func shardIndex(r table.ResourceID, mask uint32) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(r); i++ {
		h ^= uint32(r[i])
		h *= 16777619
	}
	h ^= h >> 16
	return h & mask
}

// shardFor maps a resource id to its owning shard.
func (m *Manager) shardFor(r ResourceID) *shard {
	return m.shards[shardIndex(r, m.mask)]
}

// stopTheWorld acquires every shard mutex in index order, freezing the
// whole lock table. This is the sharded facade's one global
// synchronization point: the periodic detector (and the consistent-
// snapshot diagnostics) run inside it, which is exactly the trade the
// paper's periodic model makes — the hot grant/release path never needs
// a globally consistent graph, only the detector does, once per period.
// Two goroutines stopping the world serialize on shard 0's mutex, so
// the in-order acquisition cannot deadlock.
func (m *Manager) stopTheWorld() {
	for _, s := range m.shards {
		s.mu.Lock()
	}
}

// resumeTheWorld releases the shard mutexes in reverse order.
func (m *Manager) resumeTheWorld() {
	for i := len(m.shards) - 1; i >= 0; i-- {
		m.shards[i].mu.Unlock()
	}
}

// lockShards acquires the shard mutexes at the given indices, which
// must be sorted ascending and deduplicated. This is the stopTheWorld
// discipline restricted to a subset — every multi-shard locker in the
// manager acquires in ascending index order, so subsets, full stops and
// single-shard operations can never deadlock against each other. The
// snapshot detector's validate-then-act phase uses it to pin only the
// shards a cycle actually touches.
//
//hwlint:allow lockorder -- idx is sorted ascending and deduplicated by every caller (cycleShards); the sortedness is this function's documented precondition
func (m *Manager) lockShards(idx []uint32) {
	for _, i := range idx {
		m.shards[i].mu.Lock()
	}
}

// unlockShards releases the mutexes taken by lockShards, in reverse.
func (m *Manager) unlockShards(idx []uint32) {
	for i := len(idx) - 1; i >= 0; i-- {
		m.shards[idx[i]].mu.Unlock()
	}
}

// multiTable presents S sharded lock tables to the detector (and to
// twbg.Build) as one merged table implementing detect.Table. Every
// method accesses the shard tables WITHOUT locking: a multiTable may
// only be used by a goroutine that has stopped the world, which is what
// makes the lock-free access — and the globally consistent view the
// detector needs — safe.
type multiTable struct {
	shards  []*shard
	scratch []*table.Resource // merged, id-sorted resource list, reused across activations
}

// EachResource iterates every locked resource across all shards in
// global id order — the order the detector's Step 1 wiring and victim
// choices are defined over, so a sharded manager resolves any given
// logical state identically to a single-table one.
func (mt *multiTable) EachResource(f func(*table.Resource) bool) {
	mt.scratch = mt.scratch[:0]
	for _, s := range mt.shards {
		s.tb.EachResource(func(r *table.Resource) bool {
			mt.scratch = append(mt.scratch, r)
			return true
		})
	}
	sort.Slice(mt.scratch, func(i, j int) bool { return mt.scratch[i].ID() < mt.scratch[j].ID() })
	for _, r := range mt.scratch {
		if !f(r) {
			return
		}
	}
}

// Resource dispatches to the owning shard.
func (mt *multiTable) Resource(rid table.ResourceID) *table.Resource {
	return mt.shardTable(rid).Resource(rid)
}

// WaitingOn finds the (at most one) shard in which txn is blocked.
func (mt *multiTable) WaitingOn(txn table.TxnID) (table.ResourceID, Mode, bool) {
	for _, s := range mt.shards {
		if rid, bm, ok := s.tb.WaitingOn(txn); ok {
			return rid, bm, true
		}
	}
	return "", NL, false
}

// PeekAVST dispatches to the owning shard.
func (mt *multiTable) PeekAVST(rid table.ResourceID, j table.TxnID) (av, st []table.QueueEntry) {
	return mt.shardTable(rid).PeekAVST(rid, j)
}

// RepositionAVST dispatches the TDR-2 queue surgery to the owning shard.
func (mt *multiTable) RepositionAVST(rid table.ResourceID, j table.TxnID) (av, st []table.QueueEntry) {
	s := mt.shardFor(rid)
	s.epoch.bump()
	return s.tb.RepositionAVST(rid, j)
}

// Abort removes txn from every shard it touches, collecting the grants.
func (mt *multiTable) Abort(txn table.TxnID) []table.Grant {
	var grants []table.Grant
	for _, s := range mt.shards {
		if s.tb.HeldCount(txn) == 0 && !s.tb.Blocked(txn) {
			continue // nothing of txn here; keep the shard's epoch clean
		}
		gs := s.tb.Abort(txn)
		grants = append(grants, gs...)
		s.countGrants(gs)
		s.epoch.bump()
	}
	return grants
}

// ScheduleQueue dispatches to the owning shard.
func (mt *multiTable) ScheduleQueue(rid table.ResourceID) []table.Grant {
	s := mt.shardFor(rid)
	gs := s.tb.ScheduleQueue(rid)
	s.countGrants(gs)
	s.epoch.bump()
	return gs
}

// heldCount sums txn's holder entries across shards; the default
// victim-cost metric (locks held + 1) is priced with it.
func (mt *multiTable) heldCount(txn table.TxnID) int {
	n := 0
	for _, s := range mt.shards {
		n += s.tb.HeldCount(txn)
	}
	return n
}

// String renders the merged table in the paper's notation, one resource
// per line in id order.
func (mt *multiTable) String() string {
	out := ""
	mt.EachResource(func(r *table.Resource) bool {
		if r.NumHolders() == 0 && r.QueueLen() == 0 {
			return true
		}
		out += r.String() + "\n"
		return true
	})
	return out
}

func (mt *multiTable) shardFor(rid table.ResourceID) *shard {
	return mt.shards[shardIndex(rid, uint32(len(mt.shards)-1))]
}

func (mt *multiTable) shardTable(rid table.ResourceID) *table.Table {
	return mt.shardFor(rid).tb
}
