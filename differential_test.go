// Differential tests for the snapshot detector: drive the stop-the-world
// and snapshot detectors to the same quiesced lock-table state over
// randomized workloads and require identical decisions — same cycles,
// same TDR-1 victims, same TDR-2 repositionings, same resulting table —
// plus deterministic coverage of the torn-snapshot path (a cycle broken
// between copy-out and the algorithm must be dropped at validation, not
// acted on) and a no-spurious-abort stress run.
package hwtwbg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hwtwbg/internal/table"
)

// diffOp is one scripted lock request: txns[txn] asks for rid in mode.
type diffOp struct {
	txn  int
	rid  ResourceID
	mode Mode
}

// applyWorkload drives one manager through a scripted request sequence,
// using oracle (a plain sequential table fed the same sequence) to know
// which requests block. Blocking requests are issued from their own
// goroutine and waited on until enqueued, so managers fed the same
// script reach byte-identical lock tables with identical transaction
// ids. The returned channel carries every blocked Lock's eventual
// error.
func applyWorkload(t *testing.T, m *Manager, oracle *table.Table, ops []diffOp, nTxns int, ctx context.Context) ([]*Txn, chan error) {
	t.Helper()
	txns := make([]*Txn, nTxns)
	for i := range txns {
		txns[i] = m.Begin()
	}
	errs := make(chan error, len(ops))
	for _, op := range ops {
		id := txns[op.txn].ID()
		if oracle.Blocked(id) {
			continue // a blocked transaction cannot issue requests
		}
		granted, err := oracle.Request(id, op.rid, op.mode)
		if err != nil {
			continue // oracle refused the request; skip it on both sides
		}
		if granted {
			if err := txns[op.txn].Lock(ctx, op.rid, op.mode); err != nil {
				t.Fatalf("Lock(%v, %s, %v) should have granted: %v", id, op.rid, op.mode, err)
			}
			continue
		}
		tx, rid, mode := txns[op.txn], op.rid, op.mode
		go func() { errs <- tx.Lock(ctx, rid, mode) }()
		waitBlocked(t, m, tx.ID())
	}
	return txns, errs
}

// assertAuditClean fails the test if the runtime invariant auditor
// recorded any violation on m. In a plain build (no `invariants` tag)
// the report list is empty and the check is vacuous; under
// `go test -tags=invariants` every Audit-armed manager in this file is
// re-verified activation by activation.
func assertAuditClean(t *testing.T, m *Manager) {
	t.Helper()
	for _, rep := range m.AuditReports() {
		if !rep.Ok() {
			t.Errorf("invariant auditor: %s", rep)
		}
	}
}

// historyKey renders a deadlock-event sequence without timestamps.
func historyKey(evs []Event) string {
	s := ""
	for _, e := range evs {
		s += fmt.Sprintf("%v:%v:%s;", e.Kind, e.Txn, e.Resource)
	}
	return s
}

// TestDifferentialSTWvsSnapshot builds randomized quiesced states in a
// DetectorSTW manager, a full-copy DetectorSnapshot manager and an
// incremental DetectorSnapshot manager and asserts all three detectors
// resolve them identically, activation by activation. The incremental
// manager runs the epoch-gated shard-skip path (detector repositions
// and aborts invalidate its snapshot, so later rounds also cover
// recovery from detector surgery).
func TestDifferentialSTWvsSnapshot(t *testing.T) {
	modes := []Mode{IS, IX, S, SIX, X}
	totalCycles, totalAborts := 0, 0
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nTxns := 4 + rng.Intn(6)
			nRes := 3 + rng.Intn(4)
			nOps := 20 + rng.Intn(30)
			ops := make([]diffOp, nOps)
			for i := range ops {
				ops[i] = diffOp{
					txn:  rng.Intn(nTxns),
					rid:  ResourceID(fmt.Sprintf("R%d", rng.Intn(nRes))),
					mode: modes[rng.Intn(len(modes))],
				}
			}

			mSTW := Open(Options{Shards: 4, Detector: DetectorSTW, Audit: true})
			mSnap := Open(Options{Shards: 4, Detector: DetectorSnapshot, Audit: true, IncrementalSnapshot: IncrementalOff})
			mInc := Open(Options{Shards: 4, Detector: DetectorSnapshot, Audit: true, IncrementalSnapshot: IncrementalOn})
			ctx, cancel := context.WithCancel(context.Background())
			defer func() {
				cancel()
				mSTW.Close()
				mSnap.Close()
				mInc.Close()
			}()
			applyWorkload(t, mSTW, table.New(), ops, nTxns, ctx)
			applyWorkload(t, mSnap, table.New(), ops, nTxns, ctx)
			applyWorkload(t, mInc, table.New(), ops, nTxns, ctx)

			if a, b := mSTW.Snapshot(), mSnap.Snapshot(); a != b {
				t.Fatalf("pre-detect states diverge:\nstw:\n%s\nsnapshot:\n%s", a, b)
			}
			if a, b := mSnap.Snapshot(), mInc.Snapshot(); a != b {
				t.Fatalf("pre-detect states diverge:\nfull:\n%s\nincremental:\n%s", a, b)
			}

			for round := 0; ; round++ {
				if round > nTxns {
					t.Fatalf("detector did not quiesce after %d rounds", round)
				}
				stSTW := mSTW.Detect()
				stSnap := mSnap.Detect()
				stInc := mInc.Detect()
				if stSTW.CyclesSearched != stSnap.CyclesSearched ||
					stSTW.Aborted != stSnap.Aborted ||
					stSTW.Repositioned != stSnap.Repositioned ||
					stSTW.Salvaged != stSnap.Salvaged {
					t.Fatalf("round %d decisions diverge:\nstw      %+v\nsnapshot %+v", round, stSTW, stSnap)
				}
				if stSnap.CyclesSearched != stInc.CyclesSearched ||
					stSnap.Aborted != stInc.Aborted ||
					stSnap.Repositioned != stInc.Repositioned ||
					stSnap.Salvaged != stInc.Salvaged {
					t.Fatalf("round %d decisions diverge:\nfull        %+v\nincremental %+v", round, stSnap, stInc)
				}
				if stSnap.FalseCycles != 0 || stInc.FalseCycles != 0 {
					t.Fatalf("false cycles on a quiesced state: full %+v incremental %+v", stSnap, stInc)
				}
				totalCycles += stSTW.CyclesSearched
				totalAborts += stSTW.Aborted
				if stSTW.CyclesSearched == 0 {
					break
				}
				if a, b := mSTW.Snapshot(), mSnap.Snapshot(); a != b {
					t.Fatalf("round %d post-resolve states diverge:\nstw:\n%s\nsnapshot:\n%s", round, a, b)
				}
				if a, b := mSnap.Snapshot(), mInc.Snapshot(); a != b {
					t.Fatalf("round %d post-resolve states diverge:\nfull:\n%s\nincremental:\n%s", round, a, b)
				}
			}

			evSTW, _ := mSTW.History()
			evSnap, _ := mSnap.History()
			evInc, _ := mInc.History()
			if a, b := historyKey(evSTW), historyKey(evSnap); a != b {
				t.Fatalf("event histories diverge:\nstw:      %s\nsnapshot: %s", a, b)
			}
			if a, b := historyKey(evSnap), historyKey(evInc); a != b {
				t.Fatalf("event histories diverge:\nfull:        %s\nincremental: %s", a, b)
			}
			if mSTW.Deadlocked() || mSnap.Deadlocked() || mInc.Deadlocked() {
				t.Fatal("deadlock left unresolved")
			}
			assertAuditClean(t, mSTW)
			assertAuditClean(t, mSnap)
			assertAuditClean(t, mInc)
		})
	}
	// The comparison is vacuous if no seed ever deadlocks.
	if totalCycles == 0 || totalAborts == 0 {
		t.Fatalf("workloads produced %d cycles / %d aborts; tighten the generator", totalCycles, totalAborts)
	}
}

// shardResource returns a resource id owned by shard idx of m, derived
// deterministically from salt so distinct salts give distinct ids.
func shardResource(t testing.TB, m *Manager, idx uint32, salt int) ResourceID {
	t.Helper()
	for i := 0; i < 1<<20; i++ {
		r := ResourceID(fmt.Sprintf("churn-%d-%d", salt, i))
		if shardIndex(r, m.mask) == idx {
			return r
		}
	}
	t.Fatalf("no resource found for shard %d", idx)
	return ""
}

// TestDifferentialChurnSkewed drives the incremental and full-copy
// snapshot detectors through a churn-skewed workload — every shard
// pinned by a long-lived holder, then all mutation confined to one hot
// shard — asserting byte-identical lock tables and identical detector
// decisions at every activation, and that the incremental manager's
// skip counters prove the cold shards were actually reused, not
// recopied.
func TestDifferentialChurnSkewed(t *testing.T) {
	const shards = 16
	mFull := Open(Options{Shards: shards, Detector: DetectorSnapshot, Audit: true, IncrementalSnapshot: IncrementalOff})
	mInc := Open(Options{Shards: shards, Detector: DetectorSnapshot, Audit: true, IncrementalSnapshot: IncrementalOn})
	defer mFull.Close()
	defer mInc.Close()
	ctx := context.Background()

	// Pin every shard: one long-lived transaction per manager holds an
	// S lock on a resource in each shard, so every shard has state worth
	// snapshotting (a skipped shard with content, not a trivial empty one).
	pins := make([]ResourceID, shards)
	for i := range pins {
		pins[i] = shardResource(t, mFull, uint32(i), 0)
	}
	pinFull, pinInc := mFull.Begin(), mInc.Begin()
	for _, r := range pins {
		if err := pinFull.Lock(ctx, r, S); err != nil {
			t.Fatal(err)
		}
		if err := pinInc.Lock(ctx, r, S); err != nil {
			t.Fatal(err)
		}
	}

	// Churn rounds: short transactions hammer the single hot shard (the
	// one owning pins[0]); every other shard stays untouched between
	// activations. Each round ends with one activation on each manager
	// and a byte-for-byte table comparison.
	hot := shardIndex(pins[0], mFull.mask)
	var copied, skipped int
	for round := 0; round < 20; round++ {
		for i := 0; i < 5; i++ {
			r := shardResource(t, mFull, hot, 1+round*5+i)
			for _, m := range []*Manager{mFull, mInc} {
				tx := m.Begin()
				if err := tx.Lock(ctx, r, X); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				tx.Recycle()
			}
		}
		stFull := mFull.Detect()
		stInc := mInc.Detect()
		if stFull.CyclesSearched != stInc.CyclesSearched || stFull.Aborted != stInc.Aborted ||
			stFull.Repositioned != stInc.Repositioned || stInc.FalseCycles != 0 {
			t.Fatalf("round %d decisions diverge:\nfull        %+v\nincremental %+v", round, stFull, stInc)
		}
		if a, b := mFull.Snapshot(), mInc.Snapshot(); a != b {
			t.Fatalf("round %d tables diverge:\nfull:\n%s\nincremental:\n%s", round, a, b)
		}
		copied += stInc.ShardsCopied
		skipped += stInc.ShardsSkipped
	}

	// The first activation copies everything; after warm-up only the hot
	// shard (plus at most the detector's own churn) should be dirty, so
	// across the run the incremental detector must have copied at most
	// 20% of the shard visits.
	total := copied + skipped
	if total == 0 {
		t.Fatal("incremental manager reported no shard visits")
	}
	if frac := float64(copied) / float64(total); frac > 0.20 {
		t.Fatalf("incremental detector copied %d of %d shard visits (%.0f%%), want <= 20%%", copied, total, 100*frac)
	}
	if stFull := mFull.Stats(); stFull.ShardsSkipped != 0 {
		t.Fatalf("full-copy manager skipped %d shards, want 0", stFull.ShardsSkipped)
	}
	assertAuditClean(t, mFull)
	assertAuditClean(t, mInc)
}

// TestIncrementalSnapshotHammer races back-to-back incremental
// activations against LockAll/commit churn and single-lock traffic.
// There is no deadlock in the workload (batches lock in ascending
// order), so every activation must come back empty — the test's value
// is the -race interleaving of epoch bumps, shard copies and skip
// decisions against live mutation, plus the no-spurious-abort check.
func TestIncrementalSnapshotHammer(t *testing.T) {
	m := Open(Options{Shards: 8, IncrementalSnapshot: IncrementalOn})
	defer m.Close()
	const (
		workers = 4
		rounds  = 200
	)
	ctx := context.Background()
	var workersWG, detectWG sync.WaitGroup
	var aborts atomic.Int64
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		w := w
		workersWG.Add(1)
		go func() {
			defer workersWG.Done()
			rng := rand.New(rand.NewSource(int64(w) + 7))
			for i := 0; i < rounds; i++ {
				tx := m.Begin()
				k := 2 + rng.Intn(4)
				first := rng.Intn(24)
				reqs := make([]LockRequest, 0, k)
				for j := 0; j < k; j++ {
					reqs = append(reqs, LockRequest{
						Resource: ResourceID(fmt.Sprintf("hammer-%03d", first+j)),
						Mode:     S,
					})
				}
				if err := tx.LockAll(ctx, reqs); err != nil {
					aborts.Add(1)
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
				}
			}
		}()
	}
	detectWG.Add(1)
	go func() {
		defer detectWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Detect() // back-to-back activations, no pause
			}
		}
	}()
	workersWG.Wait()
	close(stop)
	detectWG.Wait()
	if n := aborts.Load(); n != 0 {
		t.Fatalf("%d aborts under ordered acquisition — every one is spurious", n)
	}
	st := m.Stats()
	if st.Aborted != 0 || st.Repositioned != 0 {
		t.Fatalf("detector resolved nonexistent deadlocks: %+v", st)
	}
	if st.Runs == 0 {
		t.Fatal("detector never ran")
	}
}

// TestSnapshotFalseCycle forces the torn-snapshot race deterministically:
// a real two-transaction deadlock is copied out, then broken (one party
// cancels and aborts) before the algorithm runs. The snapshot still
// contains the cycle, so the detector proposes a victim — and validation
// must drop it: FalseCycles counts it, nobody is aborted, and the
// survivor's pending request completes normally.
func TestSnapshotFalseCycle(t *testing.T) {
	m := Open(Options{Shards: 4, Audit: true})
	defer m.Close()
	rs := distinctShardResources(t, m, 2)
	x, y := rs[0], rs[1]
	bg := context.Background()

	a, b := m.Begin(), m.Begin()
	if err := a.Lock(bg, x, X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(bg, y, X); err != nil {
		t.Fatal(err)
	}
	aErr := make(chan error, 1)
	go func() { aErr <- a.Lock(bg, y, X) }()
	waitBlocked(t, m, a.ID())
	bCtx, cancelB := context.WithCancel(bg)
	bErr := make(chan error, 1)
	go func() { bErr <- b.Lock(bCtx, x, X) }()
	waitBlocked(t, m, b.ID())
	if !m.Deadlocked() {
		t.Fatalf("expected a deadlock:\n%s", m.Snapshot())
	}

	m.testHookAfterCopy = func() {
		// The snapshot now holds the cycle; break it live before the
		// algorithm runs. Cancellation aborts b synchronously inside its
		// Lock call, so once the error arrives the live tables are clean.
		cancelB()
		if err := <-bErr; !errors.Is(err, context.Canceled) {
			t.Errorf("b.Lock = %v, want context.Canceled", err)
		}
	}
	st := m.Detect()
	m.testHookAfterCopy = nil

	if st.CyclesSearched != 1 || st.FalseCycles != 1 || st.Validations != 1 {
		t.Fatalf("activation = %+v, want 1 cycle dropped at validation", st)
	}
	if st.Aborted != 0 || st.Repositioned != 0 || st.Salvaged != 0 {
		t.Fatalf("activation acted on a false cycle: %+v", st)
	}
	// The survivor was granted by b's departure, not by the detector.
	if err := <-aErr; err != nil {
		t.Fatalf("survivor's Lock = %v, want granted", err)
	}
	if err := a.Commit(); err != nil {
		t.Fatalf("survivor commit: %v", err)
	}
	if evs, _ := m.History(); len(evs) != 0 {
		t.Fatalf("false cycle left history events: %v", evs)
	}
	// The auditor judges the detector against its input: the cycle was
	// genuine in the torn snapshot even though validation rightly
	// dropped it live, so the audit must be clean, not a violation.
	assertAuditClean(t, m)
}

// TestSnapshotNoSpuriousAborts hammers a manager whose workers acquire
// resources in ascending order — so no real deadlock can ever form —
// while the snapshot detector runs at an aggressive period over
// constantly-torn copies. Any abort would be spurious. Under -race this
// also exercises the copy-out and validation paths against full
// grant/release traffic.
func TestSnapshotNoSpuriousAborts(t *testing.T) {
	m := Open(Options{Period: 200 * time.Microsecond, Shards: 8})
	defer m.Close()
	const (
		workers   = 8
		resources = 16
		rounds    = 300
	)
	var aborts atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < rounds; i++ {
				tx := m.Begin()
				// Lock a few consecutive resources in ascending order.
				k := 1 + rng.Intn(3)
				first := rng.Intn(resources - k)
				ok := true
				for j := 0; j <= k; j++ {
					rid := ResourceID(fmt.Sprintf("ordered-%03d", first+j))
					mode := S
					if rng.Intn(3) == 0 {
						mode = X
					}
					if err := tx.Lock(ctx, rid, mode); err != nil {
						aborts.Add(1)
						ok = false
						break
					}
				}
				if ok {
					if err := tx.Commit(); err != nil {
						t.Errorf("commit: %v", err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if n := aborts.Load(); n != 0 {
		t.Fatalf("%d aborts under ordered acquisition — every one is spurious (stats %+v)", n, m.Stats())
	}
	st := m.Stats()
	if st.Aborted != 0 || st.Repositioned != 0 {
		t.Fatalf("detector resolved nonexistent deadlocks: %+v", st)
	}
	if st.Runs == 0 {
		t.Fatal("background detector never ran")
	}
}

// TestAdaptivePeriod checks the self-tuning schedule deterministically:
// the scheduler loop is driven tick by tick through the injected
// schedTick channel (no timers, no wall-clock sleeps) and each
// resulting period is read back over schedNotify. Idle activations
// double the period toward MaxPeriod; a deadlock halves it.
func TestAdaptivePeriod(t *testing.T) {
	tick := make(chan time.Time)
	notify := make(chan time.Duration, 1)
	m := Open(Options{
		Period:         4 * time.Millisecond,
		AdaptivePeriod: true,
		MaxPeriod:      32 * time.Millisecond,
		schedTick:      tick,
		schedNotify:    notify,
	})
	defer m.Close()
	if got := m.CurrentPeriod(); got != 4*time.Millisecond {
		t.Fatalf("initial CurrentPeriod = %v, want 4ms", got)
	}
	step := func() time.Duration {
		t.Helper()
		tick <- time.Time{}
		select {
		case d := <-notify:
			return d
		case <-time.After(5 * time.Second):
			t.Fatal("scheduler never reported a period")
			return 0
		}
	}
	// Idle passes: 4 -> 8 -> 16 -> 32, then pinned at MaxPeriod.
	for i, want := range []time.Duration{8, 16, 32, 32, 32} {
		if got := step(); got != want*time.Millisecond {
			t.Fatalf("idle tick %d: period = %v, want %v", i, got, want*time.Millisecond)
		}
	}
	if got := m.CurrentPeriod(); got != 32*time.Millisecond {
		t.Fatalf("CurrentPeriod = %v, want pinned at MaxPeriod", got)
	}

	// Build a deadlock; the next tick's activation resolves it and the
	// adaptive schedule halves the period.
	ctx := context.Background()
	a, b := m.Begin(), m.Begin()
	if err := a.Lock(ctx, "adapt/u", X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(ctx, "adapt/v", X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- a.Lock(ctx, "adapt/v", X) }()
	waitBlocked(t, m, a.ID())
	go func() { errs <- b.Lock(ctx, "adapt/u", X) }()
	waitBlocked(t, m, b.ID())
	if got := step(); got != 16*time.Millisecond {
		t.Fatalf("post-deadlock period = %v, want halved to 16ms", got)
	}
	<-errs
	<-errs

	// The floor: repeated deadlock-free ticks cannot push it below
	// schedBounds' minimum, and repeated deadlocks cannot stall Close.
	if got := step(); got != 32*time.Millisecond {
		t.Fatalf("idle tick after deadlock: period = %v, want doubled back to 32ms", got)
	}
}

// TestNextAdaptivePeriod pins the pure step function's clamping.
func TestNextAdaptivePeriod(t *testing.T) {
	min, max := time.Millisecond, 8*time.Millisecond
	cases := []struct {
		cur      time.Duration
		deadlock bool
		want     time.Duration
	}{
		{4 * time.Millisecond, false, 8 * time.Millisecond},
		{8 * time.Millisecond, false, 8 * time.Millisecond}, // pinned at max
		{8 * time.Millisecond, true, 4 * time.Millisecond},
		{time.Millisecond, true, time.Millisecond}, // pinned at min
		{1500 * time.Microsecond, true, time.Millisecond},
	}
	for _, tc := range cases {
		if got := nextAdaptivePeriod(tc.cur, tc.deadlock, min, max); got != tc.want {
			t.Errorf("nextAdaptivePeriod(%v, %v) = %v, want %v", tc.cur, tc.deadlock, got, tc.want)
		}
	}
}

// TestDetectorOptionSelectsSTW double-checks that the fallback strategy
// is still reachable and reports classic stop-the-world accounting
// (no Copy/Validate phases, no snapshot counters).
func TestDetectorOptionSelectsSTW(t *testing.T) {
	m := Open(Options{Shards: 4, Detector: DetectorSTW})
	defer m.Close()
	rs := distinctShardResources(t, m, 2)
	ctx := context.Background()
	a, b := m.Begin(), m.Begin()
	if err := a.Lock(ctx, rs[0], X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(ctx, rs[1], X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- a.Lock(ctx, rs[1], X) }()
	waitBlocked(t, m, a.ID())
	go func() { errs <- b.Lock(ctx, rs[0], X) }()
	waitBlocked(t, m, b.ID())

	st := m.Detect()
	if st.Aborted != 1 {
		t.Fatalf("stw activation = %+v, want one abort", st)
	}
	if st.Validations != 0 || st.FalseCycles != 0 {
		t.Fatalf("stw activation reports snapshot counters: %+v", st)
	}
	reps, _ := m.Activations()
	rep := reps[len(reps)-1]
	if rep.Copy != 0 || rep.Validate != 0 {
		t.Fatalf("stw report has snapshot phases: %+v", rep)
	}
	if rep.MaxShardHold <= 0 {
		t.Fatalf("stw report MaxShardHold = %v, want the full pause", rep.MaxShardHold)
	}
	<-errs
	<-errs // one victim, one survivor granted by the abort
}
