// Tests for the group-acquisition path (LockAll), the per-shard flat
// combiner it shares the table with, and transaction recycling: unit
// coverage of partial blocking and error handling, a white-box
// flat-combining test, a mutex-round accounting check, differential
// equivalence of batched vs sequential acquisition under both
// detectors, and -race hammers mixing batched and single requests with
// the invariants auditor armed.
package hwtwbg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hwtwbg/internal/table"
)

func TestLockAllBasic(t *testing.T) {
	m := Open(Options{Shards: 4, Audit: true})
	defer m.Close()
	ctx := context.Background()
	tx := m.Begin()
	reqs := []LockRequest{
		{Resource: "b", Mode: S},
		{Resource: "a", Mode: IX},
		{Resource: "c", Mode: X},
		{Resource: "a", Mode: X}, // in-batch conversion: IX then X on "a"
	}
	if err := tx.LockAll(ctx, reqs); err != nil {
		t.Fatal(err)
	}
	held := tx.Held()
	if len(held) != 3 {
		t.Fatalf("held = %v, want 3 resources", held)
	}
	if tx.Mode("a") != X || tx.Mode("b") != S || tx.Mode("c") != X {
		t.Fatalf("modes = %v/%v/%v", tx.Mode("a"), tx.Mode("b"), tx.Mode("c"))
	}
	// Re-requesting held locks through another batch must be idempotent.
	if err := tx.LockAll(ctx, reqs); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	assertAuditClean(t, m)
}

// TestLockAllPartialBlock pins the mid-batch parking semantics: the
// batch grants up to the first conflicted request, parks there with
// exactly that one wait edge (Lemma 4.1), and resumes the remainder
// after the grant.
func TestLockAllPartialBlock(t *testing.T) {
	m := Open(Options{Shards: 1, Audit: true})
	defer m.Close()
	ctx := context.Background()

	holder := m.Begin()
	if err := holder.Lock(ctx, "k1", X); err != nil {
		t.Fatal(err)
	}
	b := m.Begin()
	done := make(chan error, 1)
	go func() {
		done <- b.LockAll(ctx, []LockRequest{
			{Resource: "k0", Mode: X},
			{Resource: "k1", Mode: X},
			{Resource: "k2", Mode: X},
		})
	}()
	waitBlocked(t, m, b.ID())
	// Parked mid-batch: the prefix is held, the suffix untouched.
	if got := b.Mode("k0"); got != X {
		t.Fatalf("k0 mode while parked = %v, want X", got)
	}
	if got := b.Mode("k2"); got != NL {
		t.Fatalf("k2 acquired while parked on k1 (mode %v): more than one outstanding request", got)
	}
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("batch did not resume after grant: %v", err)
	}
	for _, k := range []ResourceID{"k0", "k1", "k2"} {
		if b.Mode(k) != X {
			t.Fatalf("%s not held after resume", k)
		}
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	assertAuditClean(t, m)
}

func TestLockAllErrorPaths(t *testing.T) {
	ctx := context.Background()

	t.Run("done txn", func(t *testing.T) {
		m := Open(Options{Shards: 2})
		defer m.Close()
		tx := m.Begin()
		if err := tx.LockAll(ctx, nil); err != nil {
			t.Fatalf("empty batch on a live txn: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := tx.LockAll(ctx, nil); !errors.Is(err, ErrDone) {
			t.Fatalf("empty batch after commit: %v, want ErrDone", err)
		}
		one := []LockRequest{{Resource: "a", Mode: S}}
		if err := tx.LockAll(ctx, one); !errors.Is(err, ErrDone) {
			t.Fatalf("single-request batch after commit: %v, want ErrDone", err)
		}
	})

	t.Run("bad mode stops the batch", func(t *testing.T) {
		// One shard so the batch is applied in argument order.
		m := Open(Options{Shards: 1})
		defer m.Close()
		tx := m.Begin()
		err := tx.LockAll(ctx, []LockRequest{
			{Resource: "a", Mode: S},
			{Resource: "b", Mode: NL},
			{Resource: "c", Mode: X},
		})
		if err == nil {
			t.Fatal("NL mid-batch did not error")
		}
		// Earlier grants survive, exactly as with sequential Lock calls.
		if tx.Mode("a") != S || tx.Mode("c") != NL {
			t.Fatalf("after failed batch: a=%v c=%v", tx.Mode("a"), tx.Mode("c"))
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("cancellation while parked", func(t *testing.T) {
		m := Open(Options{Shards: 2})
		defer m.Close()
		holder := m.Begin()
		if err := holder.Lock(ctx, "c", X); err != nil {
			t.Fatal(err)
		}
		victim := m.Begin()
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		done := make(chan error, 1)
		go func() {
			done <- victim.LockAll(cctx, []LockRequest{
				{Resource: "b", Mode: S},
				{Resource: "c", Mode: S},
			})
		}()
		waitBlocked(t, m, victim.ID())
		cancel()
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled batch: %v, want context.Canceled", err)
		}
		if err := victim.Err(); !errors.Is(err, ErrAborted) {
			t.Fatalf("victim.Err() = %v, want ErrAborted", err)
		}
		if err := holder.Commit(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestLockAllMutexRounds checks the batching claim directly: a batch of
// K same-shard requests costs one shard-mutex round, against K for the
// sequential path. MutexAcquires counts exactly the hot-path rounds, so
// on an otherwise idle manager the deltas are deterministic.
func TestLockAllMutexRounds(t *testing.T) {
	ctx := context.Background()
	const n = 8
	reqs := make([]LockRequest, n)
	for i := range reqs {
		reqs[i] = LockRequest{Resource: ResourceID(fmt.Sprintf("k%d", i)), Mode: X}
	}
	acquires := func(m *Manager) uint64 {
		var tot uint64
		for _, st := range m.ShardStats() {
			tot += st.MutexAcquires
		}
		return tot
	}

	mBat := Open(Options{Shards: 1})
	defer mBat.Close()
	tx := mBat.Begin()
	base := acquires(mBat)
	if err := tx.LockAll(ctx, reqs); err != nil {
		t.Fatal(err)
	}
	if got := acquires(mBat) - base; got != 1 {
		t.Fatalf("batched acquisition of %d keys took %d mutex rounds, want 1", n, got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	mSeq := Open(Options{Shards: 1})
	defer mSeq.Close()
	tx = mSeq.Begin()
	base = acquires(mSeq)
	for _, r := range reqs {
		if err := tx.Lock(ctx, r.Resource, r.Mode); err != nil {
			t.Fatal(err)
		}
	}
	if got := acquires(mSeq) - base; got != n {
		t.Fatalf("sequential acquisition of %d keys took %d mutex rounds, want %d", n, got, n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestFlatCombiningPublish drives the combining protocol
// deterministically: the test holds the shard mutex, so the locker's
// TryLock fails and it publishes into a combining slot; the test then
// drains the slot on its behalf — exactly what a real mutex holder does
// before unlocking — and the locker must observe the grant without ever
// taking the mutex itself.
func TestFlatCombiningPublish(t *testing.T) {
	m := Open(Options{Shards: 1})
	defer m.Close()
	s := m.shards[0]
	tx := m.Begin()
	done := make(chan error, 1)
	s.mu.Lock()
	go func() { done <- tx.Lock(context.Background(), "fc-key", X) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.drainPending()
		if m.ShardStats()[0].FlatCombined > 0 {
			break
		}
		if time.Now().After(deadline) {
			s.mu.Unlock()
			t.Fatal("locker never published into a combining slot")
		}
		time.Sleep(50 * time.Microsecond)
	}
	s.mu.Unlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if tx.Mode("fc-key") != X {
		t.Fatal("combined request granted but lock not held")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestRecycle covers the transaction pool's safety latches: recycling a
// live transaction is a no-op, double recycling is harmless, and a
// recycled handle still answers (with ErrDone) rather than corrupting
// whatever transaction reused the memory.
func TestRecycle(t *testing.T) {
	m := Open(Options{})
	defer m.Close()
	ctx := context.Background()

	tx := m.Begin()
	tx.Recycle() // live: must be a no-op
	if err := tx.Lock(ctx, "a", X); err != nil {
		t.Fatalf("Lock after no-op Recycle: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	id := tx.ID()
	tx.Recycle()
	tx.Recycle() // double recycle must not double-pool

	tx2 := m.Begin()
	if tx2.ID() == id {
		t.Fatalf("recycled transaction reused id %d", id)
	}
	if err := tx2.Lock(ctx, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2.Recycle()
}

// TestLockAllSequentialEquivalence is the batch path's differential
// harness: the same scripted acquisitions are issued through sequential
// Lock calls on one manager and through LockAll batches on another, and
// the two must be indistinguishable — byte-identical lock tables,
// identical detector decisions (victims, repositionings, salvages)
// under both the stop-the-world and snapshot detectors, and identical
// deadlock-event histories.
//
// The script is decided against a sequential oracle table: runs of
// immediately-grantable requests become batches (order within a batch
// is immaterial when everything grants, so batched and sequential
// application reach the same table), and each blocking request is
// issued solo from its own goroutine, exactly as in applyWorkload.
func TestLockAllSequentialEquivalence(t *testing.T) {
	modes := []Mode{IS, IX, S, SIX, X}
	totalCycles, totalAborts, totalBatches := 0, 0, 0
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nTxns := 4 + rng.Intn(6)
			nRes := 3 + rng.Intn(4)
			type group struct {
				txn int
				ops []LockRequest
			}
			script := make([]group, 12+rng.Intn(12))
			for i := range script {
				g := group{txn: rng.Intn(nTxns)}
				for j, n := 0, 1+rng.Intn(4); j < n; j++ {
					g.ops = append(g.ops, LockRequest{
						Resource: ResourceID(fmt.Sprintf("R%d", rng.Intn(nRes))),
						Mode:     modes[rng.Intn(len(modes))],
					})
				}
				script[i] = g
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			// replay drives one manager through the script. The oracle
			// decisions depend only on the script, so every replay issues
			// the same effective sequence; batched switches grantable runs
			// from sequential Lock calls to LockAll.
			replay := func(detector string, batched bool) *Manager {
				m := Open(Options{Shards: 4, Detector: detector, Audit: true})
				oracle := table.New()
				txns := make([]*Txn, nTxns)
				for i := range txns {
					txns[i] = m.Begin()
				}
				issue := func(tx *Txn, run []LockRequest) {
					if len(run) == 0 {
						return
					}
					if batched {
						if len(run) > 1 {
							totalBatches++
						}
						if err := tx.LockAll(ctx, run); err != nil {
							t.Fatalf("LockAll(%v) should have granted: %v", run, err)
						}
						return
					}
					for _, op := range run {
						if err := tx.Lock(ctx, op.Resource, op.Mode); err != nil {
							t.Fatalf("Lock(%v, %s, %v) should have granted: %v", tx.ID(), op.Resource, op.Mode, err)
						}
					}
				}
				errs := make(chan error, len(script))
				for _, g := range script {
					tx := txns[g.txn]
					id := tx.ID()
					if oracle.Blocked(id) {
						continue // a blocked transaction cannot issue requests
					}
					var run []LockRequest
					for _, op := range g.ops {
						if oracle.WouldGrant(id, op.Resource, op.Mode) {
							if granted, err := oracle.Request(id, op.Resource, op.Mode); err != nil || !granted {
								t.Fatalf("oracle WouldGrant/Request disagree on %v %s %v: %v/%v",
									id, op.Resource, op.Mode, granted, err)
							}
							run = append(run, op)
							continue
						}
						// First blocker ends the group: flush the grantable
						// prefix, park the blocker solo, drop the rest.
						issue(tx, run)
						run = nil
						if _, err := oracle.Request(id, op.Resource, op.Mode); err != nil {
							break // oracle refused (e.g. bad mode); skip everywhere
						}
						op := op
						go func() { errs <- tx.Lock(ctx, op.Resource, op.Mode) }()
						waitBlocked(t, m, id)
						break
					}
					issue(tx, run)
				}
				return m
			}

			ms := map[string]*Manager{
				"seq/stw":  replay(DetectorSTW, false),
				"bat/stw":  replay(DetectorSTW, true),
				"seq/snap": replay(DetectorSnapshot, false),
				"bat/snap": replay(DetectorSnapshot, true),
			}
			order := []string{"seq/stw", "bat/stw", "seq/snap", "bat/snap"}
			defer func() {
				cancel()
				for _, m := range ms {
					m.Close()
				}
			}()
			sameSnapshots := func(when string) {
				t.Helper()
				want := ms[order[0]].Snapshot()
				for _, k := range order[1:] {
					if got := ms[k].Snapshot(); got != want {
						t.Fatalf("%s: %s and %s tables diverge:\n%s\nvs\n%s", when, order[0], k, want, got)
					}
				}
			}
			sameSnapshots("pre-detect")

			for round := 0; ; round++ {
				if round > nTxns {
					t.Fatalf("detectors did not quiesce after %d rounds", round)
				}
				ref := ms[order[0]].Detect()
				for _, k := range order[1:] {
					st := ms[k].Detect()
					if st.CyclesSearched != ref.CyclesSearched || st.Aborted != ref.Aborted ||
						st.Repositioned != ref.Repositioned || st.Salvaged != ref.Salvaged {
						t.Fatalf("round %d decisions diverge:\n%s %+v\n%s %+v", round, order[0], ref, k, st)
					}
					if st.FalseCycles != 0 {
						t.Fatalf("false cycles on a quiesced state: %s %+v", k, st)
					}
				}
				totalCycles += ref.CyclesSearched
				totalAborts += ref.Aborted
				if ref.CyclesSearched == 0 {
					break
				}
				sameSnapshots(fmt.Sprintf("round %d post-resolve", round))
			}

			evRef, _ := ms[order[0]].History()
			for _, k := range order[1:] {
				ev, _ := ms[k].History()
				if a, b := historyKey(evRef), historyKey(ev); a != b {
					t.Fatalf("event histories diverge:\n%s: %s\n%s: %s", order[0], a, k, b)
				}
			}
			for _, k := range order {
				if ms[k].Deadlocked() {
					t.Fatalf("%s left a deadlock unresolved", k)
				}
				assertAuditClean(t, ms[k])
			}
		})
	}
	// The comparison is vacuous if no seed deadlocks or no real batch runs.
	if totalCycles == 0 || totalAborts == 0 || totalBatches == 0 {
		t.Fatalf("workloads produced %d cycles / %d aborts / %d multi-request batches; tighten the generator",
			totalCycles, totalAborts, totalBatches)
	}
}

// TestLockAllHammer mixes batched and single acquisitions from many
// goroutines over an ascending key order on a single shard (where batch
// order equals argument order, so the workload is deadlock-free) with
// the invariants auditor armed. No transaction may abort, and under
// real parallelism the contention must exercise the combining slots.
func TestLockAllHammer(t *testing.T) {
	m := Open(Options{Shards: 1, Audit: true})
	defer m.Close()
	ctx := context.Background()
	keys := make([]ResourceID, 10)
	for i := range keys {
		keys[i] = ResourceID(fmt.Sprintf("h%02d", i))
	}
	const workers = 8
	iters := 150
	if testing.Short() {
		iters = 30
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < iters; i++ {
				tx := m.Begin()
				var reqs []LockRequest
				for _, k := range keys { // ascending subset: deadlock-free
					if rng.Intn(3) != 0 {
						continue
					}
					mode := S
					if rng.Intn(4) == 0 {
						mode = X
					}
					reqs = append(reqs, LockRequest{Resource: k, Mode: mode})
				}
				var err error
				if rng.Intn(2) == 0 {
					err = tx.LockAll(ctx, reqs)
				} else {
					for _, r := range reqs {
						if err = tx.Lock(ctx, r.Resource, r.Mode); err != nil {
							break
						}
					}
				}
				if err != nil {
					t.Errorf("worker %d: %v (workload is deadlock-free)", w, err)
					tx.Abort()
					tx.Recycle()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("worker %d commit: %v", w, err)
				}
				tx.Recycle()
			}
		}()
	}
	wg.Wait()
	st := m.ShardStats()[0]
	t.Logf("shard 0: grants=%d mutexAcquires=%d flatCombined=%d", st.Grants, st.MutexAcquires, st.FlatCombined)
	assertAuditClean(t, m)
}

// TestLockAllDetectorHammer is the adversarial variant: batched and
// single requests in random (deadlocking) orders across shards, with
// the periodic detector resolving whatever cycles arise and the
// invariants auditor re-verifying every activation. Aborts are expected
// and must always surface as ErrAborted.
func TestLockAllDetectorHammer(t *testing.T) {
	m := Open(Options{Shards: 4, Period: 500 * time.Microsecond, Audit: true})
	defer m.Close()
	ctx := context.Background()
	const workers = 8
	deadline := time.Now().Add(100 * time.Millisecond)
	var commits, aborts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for time.Now().Before(deadline) {
				tx := m.Begin()
				var reqs []LockRequest
				for i, n := 0, 2+rng.Intn(4); i < n; i++ {
					reqs = append(reqs, LockRequest{
						Resource: ResourceID(fmt.Sprintf("hot%d", rng.Intn(8))),
						Mode:     X,
					})
				}
				var err error
				if rng.Intn(2) == 0 {
					err = tx.LockAll(ctx, reqs)
				} else {
					for _, r := range reqs {
						if err = tx.Lock(ctx, r.Resource, r.Mode); err != nil {
							break
						}
					}
				}
				if err != nil {
					if !errors.Is(err, ErrAborted) {
						t.Errorf("worker %d: unexpected error %v", w, err)
					}
					aborts.Add(1)
					tx.Abort()
				} else if tx.Commit() == nil {
					commits.Add(1)
				}
				tx.Recycle()
			}
		}()
	}
	wg.Wait()
	if commits.Load() == 0 {
		t.Fatal("hammer made no progress")
	}
	t.Logf("commits=%d aborts=%d", commits.Load(), aborts.Load())
	assertAuditClean(t, m)
}
