package hwtwbg

import (
	"fmt"
	"time"
)

// EventKind classifies a deadlock-resolution event.
type EventKind uint8

const (
	// EventVictim: a transaction was aborted to break a deadlock.
	EventVictim EventKind = iota
	// EventReposition: a deadlock was resolved by a TDR-2 queue
	// repositioning — nobody was aborted.
	EventReposition
	// EventSalvage: a selected victim was rescued at Step 3 because an
	// earlier abort had already granted its request.
	EventSalvage
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventVictim:
		return "victim"
	case EventReposition:
		return "reposition"
	case EventSalvage:
		return "salvage"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one recorded deadlock-resolution action.
type Event struct {
	Time     time.Time
	Kind     EventKind
	Txn      TxnID      // the victim, salvaged txn, or TDR-2 junction
	Resource ResourceID // TDR-2 only: the repositioned queue
}

// String renders "victim T7" or "reposition R2 at junction T3".
func (e Event) String() string {
	switch e.Kind {
	case EventReposition:
		return fmt.Sprintf("reposition %s at junction %v", string(e.Resource), e.Txn)
	default:
		return fmt.Sprintf("%v %v", e.Kind, e.Txn)
	}
}

// ring is a fixed-capacity ring buffer retaining the most recent
// entries. A zero-capacity ring records nothing (HistorySize < 0). The
// manager guards its rings with mu; the type itself is not
// goroutine-safe.
type ring[T any] struct {
	buf   []T
	next  int
	total int
}

func newRing[T any](capacity int) *ring[T] {
	return &ring[T]{buf: make([]T, capacity)}
}

func (h *ring[T]) add(e T) {
	if len(h.buf) == 0 {
		return
	}
	h.buf[h.next] = e
	h.next = (h.next + 1) % len(h.buf)
	h.total++
}

// items returns the retained entries, oldest first.
func (h *ring[T]) items() []T {
	if len(h.buf) == 0 {
		return nil
	}
	n := h.total
	if n > len(h.buf) {
		n = len(h.buf)
	}
	out := make([]T, 0, n)
	start := (h.next - n + len(h.buf)) % len(h.buf)
	for i := 0; i < n; i++ {
		out = append(out, h.buf[(start+i)%len(h.buf)])
	}
	return out
}

// last returns the most recently added entry, if any.
func (h *ring[T]) last() (T, bool) {
	var zero T
	if len(h.buf) == 0 || h.total == 0 {
		return zero, false
	}
	return h.buf[(h.next-1+len(h.buf))%len(h.buf)], true
}

// historyRing is the deadlock-event instantiation of ring.
type historyRing = ring[Event]

func newHistoryRing(capacity int) *historyRing { return newRing[Event](capacity) }

// History returns the most recent deadlock-resolution events (up to
// Options.HistorySize, default 128), oldest first, and the total number
// of events ever recorded (which may exceed the retained window).
func (m *Manager) History() (events []Event, total int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.history.items(), m.history.total
}

// Activations returns the most recent detector activation reports (up
// to Options.HistorySize, default 128), oldest first, and the total
// number of activations ever run. Each report decomposes one
// stop-the-world pause into its phases; see ActivationReport.
func (m *Manager) Activations() (reports []ActivationReport, total int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.activations.items(), m.activations.total
}

// LastActivation returns the most recent detector activation report and
// whether any activation has been recorded (false when none has run, or
// HistorySize < 0 disabled the ring).
func (m *Manager) LastActivation() (ActivationReport, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.activations.last()
}
