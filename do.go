package hwtwbg

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// ErrTooManyRetries is returned by Do when fn keeps being chosen as a
// deadlock victim.
var ErrTooManyRetries = errors.New("hwtwbg: transaction exceeded retry budget")

// DoOptions tunes Manager.Do.
type DoOptions struct {
	// MaxRetries bounds how many times a victimized transaction is
	// retried (default 100).
	MaxRetries int
	// MaxBackoff caps the jittered backoff between retries (default
	// 50ms).
	MaxBackoff time.Duration
}

// Do runs fn inside a transaction, committing when fn returns nil and
// aborting when it returns an error. If the transaction is chosen as a
// deadlock victim — fn sees ErrAborted from a Lock, or the commit
// itself fails — the whole closure retries on a fresh transaction after
// a jittered backoff. fn may run multiple times and must keep its side
// effects inside the transaction.
//
// This is the recommended shape for deadlock-prone work: the retry
// discipline (fresh transaction + backoff) is what prevents the
// abort/retry livelocks that immediate re-execution invites.
func (m *Manager) Do(ctx context.Context, fn func(*Txn) error) error {
	return m.DoWith(ctx, DoOptions{}, fn)
}

// DoWith is Do with explicit retry tuning.
func (m *Manager) DoWith(ctx context.Context, opts DoOptions, fn func(*Txn) error) error {
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 100
	}
	if opts.MaxBackoff == 0 {
		opts.MaxBackoff = 50 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for attempt := 1; attempt <= opts.MaxRetries; attempt++ {
		t := m.Begin()
		err := fn(t)
		if err == nil {
			err = t.Commit()
			if err == nil {
				t.Recycle()
				return nil
			}
		} else {
			t.Abort()
		}
		t.Recycle() // no-op unless the transaction reached a terminal state
		if !errors.Is(err, ErrAborted) {
			return err
		}
		backoff := time.Duration(rng.Int63n(int64(attempt)*int64(500*time.Microsecond))) + 100*time.Microsecond
		if backoff > opts.MaxBackoff {
			backoff = opts.MaxBackoff
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
	}
	return ErrTooManyRetries
}
