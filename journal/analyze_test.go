package journal

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Degenerate-input coverage for Analyze: dumps from wrapped, torn or
// empty rings must never panic or mis-attribute spans.

// TestAnalyzeEmpty: an empty dump yields the zero report.
func TestAnalyzeEmpty(t *testing.T) {
	for _, recs := range [][]Record{nil, {}} {
		rep := Analyze(recs)
		if rep.Records != 0 || rep.Txns != 0 || rep.Span != 0 || rep.Orphans != 0 {
			t.Fatalf("empty dump analyzed to %+v", rep)
		}
		if len(rep.Latencies) != 0 {
			t.Fatalf("empty dump grew latency populations: %+v", rep.Latencies)
		}
		var text bytes.Buffer
		rep.WriteReport(&text) // must not panic
		if !strings.Contains(text.String(), "0 records") {
			t.Fatalf("empty report:\n%s", text.String())
		}
	}
}

// TestAnalyzeTornOnly: a ring whose every record was torn away
// snapshots to an empty dump — same contract as empty.
func TestAnalyzeTornOnly(t *testing.T) {
	j := New(1, 8)
	rep := Analyze(j.Snapshot())
	if rep.Records != 0 {
		t.Fatalf("fresh journal analyzed to %+v", rep)
	}
}

// TestAnalyzeOrphanedLifecycle: commit/abort records whose begin was
// lost to ring overwrite must be counted as orphans, not attributed a
// bogus span (a zero-based span would poison the percentiles).
func TestAnalyzeOrphanedLifecycle(t *testing.T) {
	recs := []Record{
		// txn 1: full lifecycle, 100ns span.
		{Kind: KindBegin, Txn: 1, TS: 100},
		{Kind: KindCommit, Txn: 1, TS: 200},
		// txn 2: begin lost to wrap; only the commit survives.
		{Kind: KindCommit, Txn: 2, TS: 500},
		// txn 3: begin lost; only the abort survives.
		{Kind: KindAbort, Txn: 3, TS: 600},
	}
	rep := Analyze(recs)
	if rep.Orphans != 2 {
		t.Fatalf("orphans = %d, want 2", rep.Orphans)
	}
	if rep.Txns != 3 {
		t.Fatalf("txns = %d, want 3 (orphans still count as transactions)", rep.Txns)
	}
	ls, ok := rep.Latencies[LatencyCommit]
	if !ok || ls.Count != 1 || ls.Max != 100 {
		t.Fatalf("commit population = %+v, want exactly txn 1's 100ns span", ls)
	}
	if _, ok := rep.Latencies[LatencyAbort]; ok {
		t.Fatalf("orphaned abort grew a span: %+v", rep.Latencies[LatencyAbort])
	}
	var text bytes.Buffer
	rep.WriteReport(&text)
	if !strings.Contains(text.String(), "ring loss") {
		t.Fatalf("report silent about ring loss:\n%s", text.String())
	}
}

// TestAnalyzeOrphanedGrant: a grant whose block record was overwritten
// still contributes its wait (the span rides in the record itself) and
// must not underflow the outstanding-waiter accounting.
func TestAnalyzeOrphanedGrant(t *testing.T) {
	g := Record{Kind: KindGrant, Txn: 1, Arg: 250, TS: 100}
	g.SetResource("r")
	rep := Analyze([]Record{g})
	ls, ok := rep.Latencies[LatencyWait]
	if !ok || ls.Count != 1 || ls.Max != 250 {
		t.Fatalf("wait population = %+v, want the grant's own 250ns", ls)
	}
	if len(rep.Resources) != 0 {
		// The resource never blocked in the visible trace, so it does not
		// enter the contention ranking.
		t.Fatalf("orphaned grant ranked a resource: %+v", rep.Resources)
	}
}

// TestAnalyzeClockSkewSpanDropped: a commit time-stamped before its
// begin (cross-shard clock skew in the merged snapshot) must not
// produce a negative span.
func TestAnalyzeClockSkewSpanDropped(t *testing.T) {
	recs := []Record{
		{Kind: KindBegin, Txn: 1, TS: 500},
		{Kind: KindCommit, Txn: 1, TS: 400},
	}
	rep := Analyze(recs)
	if _, ok := rep.Latencies[LatencyCommit]; ok {
		t.Fatalf("negative span admitted: %+v", rep.Latencies[LatencyCommit])
	}
	if rep.Orphans != 0 {
		t.Fatalf("skewed pair counted as orphan: %d", rep.Orphans)
	}
}

// TestLatencyStatsPercentiles pins the nearest-rank extraction.
func TestLatencyStatsPercentiles(t *testing.T) {
	if got := latencyStats(nil); got.Count != 0 || got.Max != 0 {
		t.Fatalf("empty population: %+v", got)
	}
	one := latencyStats([]time.Duration{7})
	if one.P50 != 7 || one.P95 != 7 || one.P99 != 7 || one.Max != 7 {
		t.Fatalf("single sample: %+v", one)
	}
	// Two samples: p50 is the lower, p95/p99/max the higher.
	two := latencyStats([]time.Duration{100, 1})
	if two.P50 != 1 || two.P95 != 100 || two.P99 != 100 || two.Max != 100 {
		t.Fatalf("two samples: %+v", two)
	}
	// 1..100: nearest rank puts pNN exactly at sample NN.
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(100 - i) // reversed: must sort
	}
	hundred := latencyStats(samples)
	if hundred.P50 != 50 || hundred.P95 != 95 || hundred.P99 != 99 || hundred.Max != 100 {
		t.Fatalf("1..100: %+v", hundred)
	}
}

// TestAnalyzeLatencyPopulations: an ordinary trace grows all three
// populations with the right sample counts.
func TestAnalyzeLatencyPopulations(t *testing.T) {
	g := func(txn int64, wait uint64, ts int64) Record {
		r := Record{Kind: KindGrant, Txn: txn, Arg: wait, TS: ts}
		r.SetResource("r")
		return r
	}
	recs := []Record{
		{Kind: KindBegin, Txn: 1, TS: 0},
		{Kind: KindBegin, Txn: 2, TS: 10},
		g(1, 0, 20),  // immediate grant: excluded from the wait population
		g(2, 30, 50), // waited grant
		{Kind: KindCommit, Txn: 1, TS: 100},
		{Kind: KindAbort, Txn: 2, TS: 110},
	}
	rep := Analyze(recs)
	if ls := rep.Latencies[LatencyWait]; ls.Count != 1 || ls.Max != 30 {
		t.Fatalf("wait population: %+v", ls)
	}
	if ls := rep.Latencies[LatencyCommit]; ls.Count != 1 || ls.Max != 100 {
		t.Fatalf("commit population: %+v", ls)
	}
	if ls := rep.Latencies[LatencyAbort]; ls.Count != 1 || ls.Max != 100 {
		t.Fatalf("abort population: %+v", ls)
	}
}

// SLO parsing and checking.

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("p99=1ms, commit:p95=10ms ,wait:max=50ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []SLO{
		{Kind: LatencyWait, Pct: "p99", Bound: time.Millisecond},
		{Kind: LatencyCommit, Pct: "p95", Bound: 10 * time.Millisecond},
		{Kind: LatencyWait, Pct: "max", Bound: 50 * time.Millisecond},
	}
	if len(slos) != len(want) {
		t.Fatalf("parsed %+v, want %+v", slos, want)
	}
	for i := range want {
		if slos[i] != want[i] {
			t.Fatalf("slo %d = %+v, want %+v", i, slos[i], want[i])
		}
	}
	for _, bad := range []string{"", " , ", "p99", "p42=1ms", "gc:p99=1ms", "p99=0", "p99=-1ms", "p99=banana"} {
		if _, err := ParseSLOs(bad); err == nil {
			t.Errorf("ParseSLOs(%q) accepted", bad)
		}
	}
}

func TestCheckSLOs(t *testing.T) {
	rep := Report{Latencies: map[string]LatencyStats{
		LatencyWait: {Count: 10, P50: 5, P95: 50, P99: 90, Max: 100},
	}}
	results := rep.CheckSLOs([]SLO{
		{Kind: LatencyWait, Pct: "p99", Bound: 90},  // boundary: inclusive
		{Kind: LatencyWait, Pct: "max", Bound: 99},  // violated
		{Kind: LatencyCommit, Pct: "p50", Bound: 1}, // no samples: vacuous pass
	})
	if !results[0].OK || results[0].Actual != 90 {
		t.Fatalf("boundary objective: %+v", results[0])
	}
	if results[1].OK {
		t.Fatalf("violated objective passed: %+v", results[1])
	}
	if !results[2].OK || results[2].Count != 0 {
		t.Fatalf("vacuous objective: %+v", results[2])
	}
	var text bytes.Buffer
	if WriteSLOResults(&text, results) {
		t.Fatal("allOK true with a violation present")
	}
	out := text.String()
	for _, want := range []string{"PASS", "FAIL", "(no samples)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered results missing %q:\n%s", want, out)
		}
	}
}
