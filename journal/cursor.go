package journal

// Cursor-based ring reads: the live-telemetry layer (the lockservice
// TAIL verb, the debug server's /journal/stream SSE endpoint) tails the
// rings with a per-ring sequence position instead of re-snapshotting,
// so a consumer that reconnects resumes exactly where it left off and
// every record it missed to ring overwrite is accounted for explicitly
// rather than silently absent. Reads reuse the checksum-validated slot
// protocol of Snapshot; Emit is untouched — tailing adds no hot-path
// work and no allocations on the writer side.

// Head returns the ring's current head sequence: the position a tail
// session starting "now" resumes from (the next record emitted will
// have this sequence).
func (r *Ring) Head() uint64 { return r.at.load() }

// Oldest returns the sequence of the oldest record still retained (the
// position a tail session starting from the beginning of the retained
// window resumes from).
func (r *Ring) Oldest() uint64 {
	hi := r.at.load()
	if hi > uint64(len(r.slots)) {
		return hi - uint64(len(r.slots))
	}
	return 0
}

// ReadFrom appends committed records to dst starting at sequence seq,
// up to max records (max <= 0 means no bound beyond the ring), and
// returns the extended slice, the cursor to resume from, and how many
// records between seq and that cursor are gone for good.
//
// The contract a tail consumer relies on:
//
//   - No silent gaps: every sequence in [seq, next) is either appended
//     to dst or counted in lost. A slot that has been claimed by a
//     writer but not yet published stops the read — next points at it,
//     and the record is delivered by a later call once the writer
//     publishes — so an in-flight record is never skipped over.
//   - Lag is explicit: when seq has already been overwritten (the
//     consumer fell more than Cap() records behind), the read restarts
//     at the oldest retained record and lost counts the overwritten
//     span. A record torn mid-copy by a lapping writer is likewise
//     counted lost (and in Stats.TornReads), never surfaced corrupt.
//   - Monotone: next >= seq always, and calling again from next never
//     re-delivers a record already returned.
func (r *Ring) ReadFrom(seq uint64, max int, dst []Record) (recs []Record, next uint64, lost uint64) {
	hi := r.at.load()
	if lo := r.Oldest(); seq < lo {
		lost += lo - seq
		seq = lo
	}
	var w [Words]uint64
	n := 0
	for seq < hi {
		if max > 0 && n >= max {
			break
		}
		s := &r.slots[seq&r.mask]
		c := s.commit()
		if c < seq+1 {
			// Claimed (or never written) but not yet published: the record
			// is still in flight. Stop here; it is delivered next call.
			break
		}
		if c > seq+1 {
			// Already overwritten by a later lap: this record is gone.
			// Everything up to the new oldest is gone with it.
			lo := r.Oldest()
			if lo <= seq {
				lo = seq + 1 // racing writer; give up on this slot alone
			}
			lost += lo - seq
			seq = lo
			continue
		}
		for i := range w {
			w[i] = s.loadPayload(i)
		}
		sum := s.loadSum()
		if s.commit() != seq+1 || sum != Checksum(seq, &w) {
			// Torn by a lapping writer mid-copy: rejected by the checksum,
			// counted, never surfaced.
			r.at.noteTorn()
			lost++
			seq++
			continue
		}
		var rec Record
		rec.Unpack(&w)
		dst = append(dst, rec)
		n++
		seq++
	}
	return dst, seq, lost
}
