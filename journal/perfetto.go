package journal

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Perfetto / Chrome trace-event export. The JSON object format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
// loads directly into ui.perfetto.dev or chrome://tracing: each
// transaction is a track (tid) in the "transactions" process, blocked
// waits render as complete ("X") spans, lifecycle points and detector
// resolutions as instants ("i"), and detector activations as spans on
// their own "detector" process track.

// TraceEvent is one Chrome trace-event entry.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// Trace is the exported document ({"traceEvents": [...]}).
type Trace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Trace process ids.
const (
	PIDTransactions = 1
	PIDDetector     = 2
)

// BuildTrace converts journal records into trace events. Timestamps
// are rebased to the earliest record so the trace starts near zero.
func BuildTrace(recs []Record) Trace {
	tr := Trace{DisplayTimeUnit: "ms", TraceEvents: []TraceEvent{}}
	if len(recs) == 0 {
		return tr
	}
	base := recs[0].TS
	for _, r := range recs {
		if r.TS < base {
			base = r.TS
		}
	}
	us := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	tids := map[int64]bool{}
	add := func(e TraceEvent) { tr.TraceEvents = append(tr.TraceEvents, e) }
	for _, r := range recs {
		switch r.Kind {
		case KindBegin, KindRequest, KindBlock, KindGrant, KindAbort, KindCommit:
			tids[r.Txn] = true
		}
		switch r.Kind {
		case KindGrant:
			name := fmt.Sprintf("%s %s", r.Resource(), r.ModeString())
			if r.Arg > 0 {
				// The grant record carries its wait, so the blocked span
				// reconstructs without pairing block/grant records (the
				// block record may have been overwritten).
				add(TraceEvent{Name: "wait " + name, Ph: "X", TS: us(r.TS - int64(r.Arg)), Dur: float64(r.Arg) / 1e3,
					PID: PIDTransactions, TID: r.Txn, Args: map[string]any{"wait_ns": r.Arg}})
			} else {
				add(TraceEvent{Name: "grant " + name, Ph: "i", TS: us(r.TS), PID: PIDTransactions, TID: r.Txn, S: "t"})
			}
		case KindBegin:
			add(TraceEvent{Name: "begin", Ph: "i", TS: us(r.TS), PID: PIDTransactions, TID: r.Txn, S: "t"})
		case KindCommit:
			add(TraceEvent{Name: "commit", Ph: "i", TS: us(r.TS), PID: PIDTransactions, TID: r.Txn, S: "t"})
		case KindAbort:
			add(TraceEvent{Name: "abort", Ph: "i", TS: us(r.TS), PID: PIDTransactions, TID: r.Txn, S: "t"})
		case KindDetect:
			add(TraceEvent{Name: fmt.Sprintf("activation %d", r.Txn), Ph: "X",
				TS: us(r.TS - int64(r.Arg)), Dur: float64(r.Arg) / 1e3,
				PID: PIDDetector, TID: 0, Args: map[string]any{"cycles": r.Aux}})
		case KindVictim:
			add(TraceEvent{Name: fmt.Sprintf("victim T%d", r.Txn), Ph: "i", TS: us(r.TS), PID: PIDDetector, TID: 0, S: "p"})
		case KindReposition:
			add(TraceEvent{Name: fmt.Sprintf("reposition %s at T%d", r.Resource(), r.Txn), Ph: "i", TS: us(r.TS), PID: PIDDetector, TID: 0, S: "p"})
		case KindSalvage:
			add(TraceEvent{Name: fmt.Sprintf("salvage T%d", r.Txn), Ph: "i", TS: us(r.TS), PID: PIDDetector, TID: 0, S: "p"})
		}
	}

	// Name the tracks: sorted so the export is deterministic.
	var ids []int64
	for id := range tids {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	meta := []TraceEvent{
		{Name: "process_name", Ph: "M", PID: PIDTransactions, TID: 0, Args: map[string]any{"name": "transactions"}},
		{Name: "process_name", Ph: "M", PID: PIDDetector, TID: 0, Args: map[string]any{"name": "detector"}},
		{Name: "thread_name", Ph: "M", PID: PIDDetector, TID: 0, Args: map[string]any{"name": "activations"}},
	}
	for _, id := range ids {
		meta = append(meta, TraceEvent{Name: "thread_name", Ph: "M", PID: PIDTransactions, TID: id,
			Args: map[string]any{"name": fmt.Sprintf("txn %d", id)}})
	}
	tr.TraceEvents = append(meta, tr.TraceEvents...)
	return tr
}

// WriteTrace renders records as a Chrome trace-event / Perfetto JSON
// document.
func WriteTrace(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	return enc.Encode(BuildTrace(recs))
}
