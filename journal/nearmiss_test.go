package journal

import (
	"bytes"
	"strings"
	"testing"

	"hwtwbg/internal/lock"
)

// nmRec builds one record for near-miss replay tests.
func nmRec(kind Kind, txn int64, res string, mode lock.Mode, ts int64) Record {
	r := Record{Kind: kind, Txn: txn, Mode: uint8(mode), TS: ts}
	if res != "" {
		r.SetResource(res)
	}
	return r
}

// TestNearMissFlagsReversal is the acceptance case: a trace in which
// two transactions acquire {a, b} in opposite orders with exclusive
// modes — sequentially, so no deadlock ever formed — must be flagged
// as a near miss.
func TestNearMissFlagsReversal(t *testing.T) {
	recs := []Record{
		nmRec(KindGrant, 1, "a", lock.X, 10),
		nmRec(KindGrant, 1, "b", lock.X, 20),
		nmRec(KindCommit, 1, "", 0, 30),
		nmRec(KindGrant, 2, "b", lock.X, 40),
		nmRec(KindGrant, 2, "a", lock.X, 50),
		nmRec(KindCommit, 2, "", 0, 60),
	}
	rep := NearMisses(recs)
	if rep.TxnsAnalyzed != 2 || rep.OrderedPairs != 2 {
		t.Fatalf("analyzed %d txns, %d ordered pairs, want 2/2", rep.TxnsAnalyzed, rep.OrderedPairs)
	}
	if len(rep.Reversals) != 1 {
		t.Fatalf("reversals = %+v, want exactly one", rep.Reversals)
	}
	p := rep.Reversals[0]
	if p.ABTxns != 1 || p.BATxns != 1 || p.Pairs != 1 {
		t.Fatalf("reversal counts wrong: %+v", p)
	}
	if p.Materialized {
		t.Fatalf("no cycle evidence in the trace, yet Materialized: %+v", p)
	}
	got := map[string]bool{p.ResourceA: true, p.ResourceB: true}
	if !got["a"] || !got["b"] {
		t.Fatalf("reversal names %q/%q, want a/b", p.ResourceA, p.ResourceB)
	}
	var text bytes.Buffer
	rep.WriteReport(&text)
	if !strings.Contains(text.String(), "NEAR MISS") {
		t.Fatalf("report missing NEAR MISS tag:\n%s", text.String())
	}
}

// TestNearMissCompatibleModesNotFlagged: the same reversal under
// compatible modes (shared on both sides) cannot deadlock and must not
// be reported.
func TestNearMissCompatibleModesNotFlagged(t *testing.T) {
	recs := []Record{
		nmRec(KindGrant, 1, "a", lock.S, 10),
		nmRec(KindGrant, 1, "b", lock.S, 20),
		nmRec(KindCommit, 1, "", 0, 30),
		nmRec(KindGrant, 2, "b", lock.S, 40),
		nmRec(KindGrant, 2, "a", lock.S, 50),
		nmRec(KindCommit, 2, "", 0, 60),
	}
	if rep := NearMisses(recs); len(rep.Reversals) != 0 {
		t.Fatalf("compatible reversal flagged: %+v", rep.Reversals)
	}
	// Conflict on only one of the two resources is not enough either:
	// T2 can wait for a but T1 never waits for b.
	recs = []Record{
		nmRec(KindGrant, 1, "a", lock.X, 10),
		nmRec(KindGrant, 1, "b", lock.S, 20),
		nmRec(KindCommit, 1, "", 0, 30),
		nmRec(KindGrant, 2, "b", lock.S, 40),
		nmRec(KindGrant, 2, "a", lock.X, 50),
		nmRec(KindCommit, 2, "", 0, 60),
	}
	if rep := NearMisses(recs); len(rep.Reversals) != 0 {
		t.Fatalf("single-sided conflict flagged: %+v", rep.Reversals)
	}
}

// TestNearMissSameOrderNotFlagged: transactions that agree on the
// acquisition order cannot cross, whatever the modes.
func TestNearMissSameOrderNotFlagged(t *testing.T) {
	recs := []Record{
		nmRec(KindGrant, 1, "a", lock.X, 10),
		nmRec(KindGrant, 1, "b", lock.X, 20),
		nmRec(KindCommit, 1, "", 0, 30),
		nmRec(KindGrant, 2, "a", lock.X, 40),
		nmRec(KindGrant, 2, "b", lock.X, 50),
		nmRec(KindCommit, 2, "", 0, 60),
	}
	rep := NearMisses(recs)
	if len(rep.Reversals) != 0 {
		t.Fatalf("same-order pair flagged: %+v", rep.Reversals)
	}
	if rep.TxnsAnalyzed != 2 || rep.OrderedPairs != 2 {
		t.Fatalf("analyzed %d/%d, want 2 txns, 2 ordered pairs", rep.TxnsAnalyzed, rep.OrderedPairs)
	}
}

// TestNearMissConversionKeepsOrder: a mode conversion (re-grant of a
// held resource) strengthens the mode but must not create a second
// order entry — and the strengthened mode is what conflicts.
func TestNearMissConversionKeepsOrder(t *testing.T) {
	recs := []Record{
		nmRec(KindGrant, 1, "a", lock.S, 10),
		nmRec(KindGrant, 1, "b", lock.X, 20),
		nmRec(KindGrant, 1, "a", lock.X, 25), // conversion S->X on a
		nmRec(KindCommit, 1, "", 0, 30),
		nmRec(KindGrant, 2, "b", lock.X, 40),
		nmRec(KindGrant, 2, "a", lock.S, 50),
		nmRec(KindCommit, 2, "", 0, 60),
	}
	rep := NearMisses(recs)
	if rep.OrderedPairs != 2 {
		t.Fatalf("ordered pairs = %d, want 2 (conversion must not add one)", rep.OrderedPairs)
	}
	// T1 holds a=X (after conversion), b=X; T2 holds b=X, a=S. X/S
	// conflicts on a and X/X on b, so the reversal stands.
	if len(rep.Reversals) != 1 {
		t.Fatalf("reversals = %+v, want one (converted mode conflicts)", rep.Reversals)
	}
}

// TestNearMissMaterialized: when both resources of a reversal appear in
// resolved-cycle evidence the pair is a deadlock that happened, not a
// near miss.
func TestNearMissMaterialized(t *testing.T) {
	ce1 := nmRec(KindCycleEdge, 1, "a", lock.X, 25)
	ce2 := nmRec(KindCycleEdge, 2, "b", lock.X, 26)
	recs := []Record{
		nmRec(KindGrant, 1, "a", lock.X, 10),
		nmRec(KindGrant, 1, "b", lock.X, 20),
		ce1, ce2,
		nmRec(KindCommit, 1, "", 0, 30),
		nmRec(KindGrant, 2, "b", lock.X, 40),
		nmRec(KindGrant, 2, "a", lock.X, 50),
		nmRec(KindAbort, 2, "", 0, 60), // aborts close the order too
	}
	rep := NearMisses(recs)
	if len(rep.Reversals) != 1 || !rep.Reversals[0].Materialized {
		t.Fatalf("reversals = %+v, want one materialized", rep.Reversals)
	}
	var text bytes.Buffer
	rep.WriteReport(&text)
	if !strings.Contains(text.String(), "materialized") {
		t.Fatalf("report missing materialized tag:\n%s", text.String())
	}
}

// TestNearMissRanking: reversals sort by recurrence, most conflicting
// transaction pairs first.
func TestNearMissRanking(t *testing.T) {
	var recs []Record
	ts := int64(0)
	add := func(txn int64, first, second string) {
		ts += 10
		recs = append(recs, nmRec(KindGrant, txn, first, lock.X, ts))
		ts += 10
		recs = append(recs, nmRec(KindGrant, txn, second, lock.X, ts))
		ts += 10
		recs = append(recs, nmRec(KindCommit, txn, "", 0, ts))
	}
	// Pair {c,d}: 2×2 cross pairs = 4; pair {a,b}: 1×1 = 1.
	add(1, "c", "d")
	add(2, "c", "d")
	add(3, "d", "c")
	add(4, "d", "c")
	add(5, "a", "b")
	add(6, "b", "a")
	rep := NearMisses(recs)
	if len(rep.Reversals) != 2 {
		t.Fatalf("reversals = %+v, want two pairs", rep.Reversals)
	}
	if rep.Reversals[0].Pairs != 4 || rep.Reversals[1].Pairs != 1 {
		t.Fatalf("ranking wrong: %+v", rep.Reversals)
	}
}

// TestNearMissOpenTxnIgnored: a transaction with no commit/abort in the
// trace (in flight at snapshot, or its end lost to ring wrap) must not
// contribute orders — its final lock set is unknown.
func TestNearMissOpenTxnIgnored(t *testing.T) {
	recs := []Record{
		nmRec(KindGrant, 1, "a", lock.X, 10),
		nmRec(KindGrant, 1, "b", lock.X, 20),
		nmRec(KindCommit, 1, "", 0, 30),
		nmRec(KindGrant, 2, "b", lock.X, 40),
		nmRec(KindGrant, 2, "a", lock.X, 50),
		// no commit for txn 2
	}
	rep := NearMisses(recs)
	if rep.TxnsAnalyzed != 1 || len(rep.Reversals) != 0 {
		t.Fatalf("open txn contributed: %+v", rep)
	}
}
