// Package journal is the hwtwbg flight recorder: a per-shard,
// fixed-size, lock-free ring of compact binary events written from the
// lock manager's hot path with zero allocations and no mutexes. It is
// the black box behind deadlock postmortems, the Perfetto trace export
// and the offline cmd/hwtrace analyzer: aggregates (the metrics
// package) tell you *that* a latency spike or a deadlock happened; the
// journal retains the event interleaving that produced it.
//
// A Record is seven 64-bit words. Writers claim a slot with one atomic
// fetch-add on the ring cursor, store the payload words with plain
// atomic stores, then publish the slot by storing seq+1 into its commit
// word (a per-slot seqlock) together with a checksum over the payload.
// Readers never block writers: a snapshot validates each slot's commit
// word before and after copying the payload and re-derives the
// checksum, so a record that was being overwritten mid-read is
// discarded as torn rather than surfacing corrupt — under overwrite
// pressure the ring silently keeps only the newest Cap() records per
// ring, with the loss observable via RingStats.Overwritten.
package journal

import (
	"sort"
	"sync/atomic"
	"time"

	"hwtwbg/internal/lock"
)

// Kind classifies one journal record.
type Kind uint8

const (
	// KindNone is an empty slot (never emitted).
	KindNone Kind = iota
	// KindBegin: a transaction began (control ring).
	KindBegin
	// KindRequest: a lock request arrived (Lock or TryLock), before the
	// lock table saw it.
	KindRequest
	// KindBlock: a request enqueued; Arg is the queue depth at enqueue
	// (including the newcomer).
	KindBlock
	// KindGrant: a request was granted; Arg is the nanoseconds it spent
	// blocked (0 for immediate grants).
	KindGrant
	// KindAbort: a transaction aborted (explicitly, by cancellation, or
	// as a deadlock victim; control ring).
	KindAbort
	// KindCommit: a transaction committed (control ring).
	KindCommit
	// KindDetect: one detector activation finished; Txn is the
	// activation sequence number, Arg its total wall clock in
	// nanoseconds, Aux the cycles it searched (control ring).
	KindDetect
	// KindVictim: the detector aborted Txn to break a deadlock; Aux is
	// the activation sequence (control ring).
	KindVictim
	// KindReposition: the detector resolved a deadlock by TDR-2 queue
	// repositioning at junction Txn on Resource; Aux is the activation
	// sequence (control ring).
	KindReposition
	// KindSalvage: victim Txn was rescued because an earlier abort
	// already granted its request; Aux is the activation sequence
	// (control ring).
	KindSalvage
	// KindCycleEdge: one edge of a resolved cycle — Txn is waited by
	// Arg (as a TxnID), induced by Resource; Mode is the waiter's
	// blocked mode for W edges and NL for H edges; Aux is the
	// activation sequence (control ring).
	KindCycleEdge
	// KindDetectCopy: the incremental snapshot work of one detector
	// activation — Txn is the activation sequence number, Arg the
	// shards copied (dirty), Aux the shards skipped as clean (control
	// ring). Emitted only when the table is sharded.
	KindDetectCopy
	// KindOpTag: the application attached an operation tag to Txn —
	// Arg is the app-defined uint64 trace/op id (control ring). The tag
	// is the cross-process correlation primitive: wait records of the
	// same transaction group under it in postmortems, hwtrace report
	// and near-miss output.
	KindOpTag
)

var kindNames = [...]string{
	KindNone:       "none",
	KindBegin:      "begin",
	KindRequest:    "request",
	KindBlock:      "block",
	KindGrant:      "grant",
	KindAbort:      "abort",
	KindCommit:     "commit",
	KindDetect:     "detect",
	KindVictim:     "victim",
	KindReposition: "reposition",
	KindSalvage:    "salvage",
	KindCycleEdge:  "cycle-edge",
	KindDetectCopy: "detect-copy",
	KindOpTag:      "op-tag",
}

// String names the kind ("grant", "cycle-edge", ...).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// Record flags.
const (
	// FlagConversion: the request re-requested by an existing holder
	// (lock conversion) rather than a fresh request.
	FlagConversion uint8 = 1 << iota
	// FlagTruncated: the resource id was longer than the inline prefix;
	// Res holds the first PrefixSize bytes and RHash the full hash.
	FlagTruncated
	// FlagTry: the request came from TryLock rather than Lock.
	FlagTry
)

// PrefixSize is how many leading bytes of the resource id a record
// stores inline. Longer ids keep their full FNV-1a hash in RHash (the
// stable identity) and set FlagTruncated.
const PrefixSize = 16

// Words is the packed size of a Record in 64-bit words; RecordBytes its
// size in the dump encoding.
const (
	Words       = 7
	RecordBytes = Words * 8
)

// Record is one journal event. The in-ring and on-disk representation
// is the packed [Words]uint64 form (see Pack); this struct is the
// unpacked working form.
type Record struct {
	TS    int64  // wall clock, nanoseconds since the Unix epoch
	Txn   int64  // transaction id (or activation seq for KindDetect)
	Arg   uint64 // kind-specific: queue depth, wait ns, waited-by txn, ...
	RHash uint64 // FNV-1a 64 of the resource id; 0 when no resource
	Kind  Kind
	Mode  uint8 // lock.Mode; NL when no mode applies
	Shard uint8 // ring index the record was written to
	Flags uint8
	Aux   uint32           // kind-specific: activation sequence
	Res   [PrefixSize]byte // resource id prefix, NUL padded
}

// Resource renders the stored resource id prefix; truncated ids get a
// trailing "…". Empty for records with no resource.
func (r *Record) Resource() string {
	n := 0
	for n < PrefixSize && r.Res[n] != 0 {
		n++
	}
	if r.Flags&FlagTruncated != 0 {
		return string(r.Res[:n]) + "…"
	}
	return string(r.Res[:n])
}

// ModeString renders the record's lock mode in the paper's spelling.
func (r *Record) ModeString() string { return lock.Mode(r.Mode).String() }

// Time converts the record timestamp to a time.Time.
func (r *Record) Time() time.Time { return time.Unix(0, r.TS) }

// Hash is FNV-1a 64 over a resource id, the journal's resource
// identity (it never allocates).
func Hash(res string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(res); i++ {
		h ^= uint64(res[i])
		h *= 1099511628211
	}
	return h
}

// SetResource stores the resource identity: full hash plus inline
// prefix, setting FlagTruncated when the id does not fit.
func (r *Record) SetResource(res string) {
	if res == "" {
		return
	}
	r.RHash = Hash(res)
	n := copy(r.Res[:], res)
	if n < len(res) {
		r.Flags |= FlagTruncated
	}
}

// Pack serializes the record into its seven-word wire form.
func (r *Record) Pack(w *[Words]uint64) {
	w[0] = uint64(r.TS)
	w[1] = uint64(r.Txn)
	w[2] = r.Arg
	w[3] = r.RHash
	w[4] = uint64(r.Kind) | uint64(r.Mode)<<8 | uint64(r.Shard)<<16 | uint64(r.Flags)<<24 | uint64(r.Aux)<<32
	w[5] = leWord(r.Res[0:8])
	w[6] = leWord(r.Res[8:16])
}

// Unpack deserializes the seven-word wire form.
func (r *Record) Unpack(w *[Words]uint64) {
	r.TS = int64(w[0])
	r.Txn = int64(w[1])
	r.Arg = w[2]
	r.RHash = w[3]
	r.Kind = Kind(w[4])
	r.Mode = uint8(w[4] >> 8)
	r.Shard = uint8(w[4] >> 16)
	r.Flags = uint8(w[4] >> 24)
	r.Aux = uint32(w[4] >> 32)
	putLeWord(r.Res[0:8], w[5])
	putLeWord(r.Res[8:16], w[6])
}

func leWord(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeWord(b []byte, v uint64) {
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
}

// Checksum mixes a slot's sequence number and payload words into the
// value stored alongside the record, so a reader can reject a torn copy
// even if it raced the commit-word protocol.
func Checksum(seq uint64, w *[Words]uint64) uint64 {
	h := seq*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	for _, v := range w {
		h ^= v
		h *= 0x9E3779B97F4A7C15
		h ^= h >> 29
	}
	// A checksum of zero would be indistinguishable from an unwritten
	// slot word; fold it away.
	if h == 0 {
		h = 1
	}
	return h
}

// slot is one ring entry: commit word (seq+1 once published, 0 while
// never written), Words payload words, then the checksum. A writer
// overwriting a slot does not clear the commit word first — the
// classic seqlock "odd phase" store is deliberately omitted, saving
// one full-barrier store per Emit. A reader that races the overwrite
// is still caught: either the commit-word re-check sees the new
// publish, or the checksum — which mixes the slot's sequence number —
// rejects the copy (a torn mix fails outright; a complete copy of the
// *new* payload carries the new sequence's checksum, which cannot
// verify against the sequence the reader asked for).
//
// hwlint:atomics-only — fields may only be touched via their methods.
type slot struct {
	words [Words + 2]atomic.Uint64
}

func (s *slot) publish(seq uint64)           { s.words[0].Store(seq + 1) }
func (s *slot) commit() uint64               { return s.words[0].Load() }
func (s *slot) storePayload(i int, v uint64) { s.words[1+i].Store(v) }
func (s *slot) loadPayload(i int) uint64     { return s.words[1+i].Load() }
func (s *slot) storeSum(v uint64)            { s.words[1+Words].Store(v) }
func (s *slot) loadSum() uint64              { return s.words[1+Words].Load() }

// ringAtomics is the ring's mutable lock-free state.
//
// hwlint:atomics-only — fields may only be touched via their methods.
type ringAtomics struct {
	cursor atomic.Uint64 // next sequence to claim; also the emit count
	torn   atomic.Uint64 // snapshot reads discarded as torn
}

func (a *ringAtomics) claim() uint64    { return a.cursor.Add(1) - 1 }
func (a *ringAtomics) load() uint64     { return a.cursor.Load() }
func (a *ringAtomics) noteTorn()        { a.torn.Add(1) }
func (a *ringAtomics) tornLoad() uint64 { return a.torn.Load() }

// Ring is one fixed-size lock-free event ring. Emit never blocks,
// never allocates and never takes a lock, so it is safe from any
// goroutine, including under the lock manager's shard mutexes; when
// the ring is full the oldest records are overwritten.
type Ring struct {
	at    ringAtomics
	slots []slot
	mask  uint64
	ring  uint8 // this ring's index within its Journal
}

// NewRing returns a ring retaining size records (rounded up to a power
// of two, minimum 8).
func NewRing(size int, ringIndex uint8) *Ring {
	n := 8
	for n < size {
		n <<= 1
	}
	return &Ring{slots: make([]slot, n), mask: uint64(n - 1), ring: ringIndex}
}

// Cap returns the ring's record capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Emit appends one record: claim a slot, store the payload, publish.
// The record's TS (when zero) and Shard fields are stamped here. Emit
// is wait-free apart from the single atomic fetch-add — and allocation-
// free: the caller's record is packed into a stack scratch array and
// copied into the pre-sized ring, a property the allocbudget analyzer
// now proves (the hot path journals on every grant, so a single stray
// allocation here would show up on every benchmark).
//
//hwlint:hotpath allocs=0
func (r *Ring) Emit(rec *Record) {
	if rec.TS == 0 {
		rec.TS = time.Now().UnixNano()
	}
	rec.Shard = r.ring
	var w [Words]uint64
	rec.Pack(&w)
	seq := r.at.claim()
	s := &r.slots[seq&r.mask]
	for i, v := range w {
		s.storePayload(i, v)
	}
	s.storeSum(Checksum(seq, &w))
	s.publish(seq)
}

// RingStats describes one ring's lifetime activity.
type RingStats struct {
	Emitted     uint64 `json:"emitted"`     // records ever written
	Overwritten uint64 `json:"overwritten"` // records lost to ring wrap
	TornReads   uint64 `json:"torn_reads"`  // snapshot copies discarded mid-overwrite
	Cap         int    `json:"cap"`         // ring capacity in records
}

// Stats returns the ring's counters.
func (r *Ring) Stats() RingStats {
	emitted := r.at.load()
	over := uint64(0)
	if emitted > uint64(len(r.slots)) {
		over = emitted - uint64(len(r.slots))
	}
	return RingStats{Emitted: emitted, Overwritten: over, TornReads: r.at.tornLoad(), Cap: len(r.slots)}
}

// Snapshot appends the ring's currently retained records to dst in
// sequence order (oldest first) and returns the extended slice. Slots
// being overwritten while we copy are detected by the commit-word
// re-check plus the checksum and skipped (counted in Stats.TornReads);
// writers are never stalled.
func (r *Ring) Snapshot(dst []Record) []Record {
	hi := r.at.load()
	lo := uint64(0)
	if hi > uint64(len(r.slots)) {
		lo = hi - uint64(len(r.slots))
	}
	var w [Words]uint64
	for seq := lo; seq < hi; seq++ {
		s := &r.slots[seq&r.mask]
		if s.commit() != seq+1 {
			continue // overwritten (or still in flight) — not torn, just gone
		}
		for i := range w {
			w[i] = s.loadPayload(i)
		}
		sum := s.loadSum()
		if s.commit() != seq+1 || sum != Checksum(seq, &w) {
			r.at.noteTorn()
			continue
		}
		var rec Record
		rec.Unpack(&w)
		dst = append(dst, rec)
	}
	return dst
}

// Journal is a set of rings: one per lock-table shard for the
// resource-level events (request/block/grant), plus one control ring
// (the last) for transaction lifecycle and detector events.
type Journal struct {
	rings []*Ring
}

// New returns a journal with shards+1 rings, each retaining perRing
// records (rounded up to a power of two).
func New(shards, perRing int) *Journal {
	j := &Journal{rings: make([]*Ring, shards+1)}
	for i := range j.rings {
		j.rings[i] = NewRing(perRing, uint8(i))
	}
	return j
}

// NumRings returns the ring count (shards + 1 control ring).
func (j *Journal) NumRings() int { return len(j.rings) }

// Ring returns ring i (shard rings first, control ring last).
func (j *Journal) Ring(i int) *Ring { return j.rings[i] }

// Control returns the control ring (transaction lifecycle and detector
// events).
func (j *Journal) Control() *Ring { return j.rings[len(j.rings)-1] }

// Stats sums every ring's counters.
func (j *Journal) Stats() RingStats {
	var out RingStats
	for _, r := range j.rings {
		st := r.Stats()
		out.Emitted += st.Emitted
		out.Overwritten += st.Overwritten
		out.TornReads += st.TornReads
		out.Cap += st.Cap
	}
	return out
}

// Snapshot merges every ring's retained records, ordered by timestamp
// (ties broken by ring index, then per-ring sequence, so the order is
// deterministic for any fixed set of records).
func (j *Journal) Snapshot() []Record {
	var out []Record
	for _, r := range j.rings {
		out = r.Snapshot(out)
	}
	// Per-ring snapshots are seq-ordered already; a stable sort by
	// (TS, ring) therefore keeps each ring's internal order.
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].TS != out[b].TS {
			return out[a].TS < out[b].TS
		}
		return out[a].Shard < out[b].Shard
	})
	return out
}
