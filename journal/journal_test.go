package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	in := Record{
		TS:    time.Now().UnixNano(),
		Txn:   -42,
		Arg:   1<<63 + 7,
		Kind:  KindGrant,
		Mode:  5,
		Shard: 3,
		Flags: FlagConversion,
		Aux:   0xDEADBEEF,
	}
	in.SetResource("accounts/0042")
	var w [Words]uint64
	in.Pack(&w)
	var out Record
	out.Unpack(&w)
	if out != in {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	if got := out.Resource(); got != "accounts/0042" {
		t.Fatalf("Resource() = %q", got)
	}
}

func TestSetResourceTruncation(t *testing.T) {
	long := "warehouse/district/customer/17"
	var r Record
	r.SetResource(long)
	if r.Flags&FlagTruncated == 0 {
		t.Fatal("long id did not set FlagTruncated")
	}
	if r.RHash != Hash(long) {
		t.Fatal("hash must cover the full id, not the prefix")
	}
	if got, want := r.Resource(), long[:PrefixSize]+"…"; got != want {
		t.Fatalf("Resource() = %q, want %q", got, want)
	}
	var short Record
	short.SetResource("r1")
	if short.Flags&FlagTruncated != 0 || short.Resource() != "r1" {
		t.Fatalf("short id: flags=%x res=%q", short.Flags, short.Resource())
	}
}

func TestRingRetainsNewestOnWrap(t *testing.T) {
	r := NewRing(8, 0)
	for i := 0; i < 20; i++ {
		r.Emit(&Record{Kind: KindCommit, Txn: int64(i), TS: int64(i + 1)})
	}
	recs := r.Snapshot(nil)
	if len(recs) != 8 {
		t.Fatalf("retained %d records, want 8", len(recs))
	}
	for i, rec := range recs {
		if rec.Txn != int64(12+i) {
			t.Fatalf("record %d is txn %d, want %d (newest 8 retained in order)", i, rec.Txn, 12+i)
		}
	}
	st := r.Stats()
	if st.Emitted != 20 || st.Overwritten != 12 || st.Cap != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJournalSnapshotMergesByTime(t *testing.T) {
	j := New(2, 8)
	j.Ring(0).Emit(&Record{Kind: KindGrant, Txn: 1, TS: 30})
	j.Ring(1).Emit(&Record{Kind: KindGrant, Txn: 2, TS: 10})
	j.Control().Emit(&Record{Kind: KindBegin, Txn: 3, TS: 20})
	recs := j.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("merged %d records, want 3", len(recs))
	}
	if recs[0].Txn != 2 || recs[1].Txn != 3 || recs[2].Txn != 1 {
		t.Fatalf("merge order wrong: %v %v %v", recs[0], recs[1], recs[2])
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	j := New(1, 16)
	for i := 0; i < 10; i++ {
		rec := Record{Kind: KindBlock, Txn: int64(i), Arg: uint64(i * i), Mode: 2}
		rec.SetResource(fmt.Sprintf("res/%d", i))
		j.Ring(0).Emit(&rec)
	}
	recs := j.Snapshot()
	var buf bytes.Buffer
	if err := Encode(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(back), len(recs))
	}
	for i := range back {
		if back[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, back[i], recs[i])
		}
	}
	if _, err := Decode(bytes.NewReader([]byte("not a journal dump....."))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRecordTextRoundTrip(t *testing.T) {
	in := Record{Kind: KindVictim, Txn: 7, Aux: 3, TS: 12345}
	in.SetResource("R2")
	text, err := in.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var out Record
	if err := out.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("text round trip: %+v != %+v", out, in)
	}
	if err := out.UnmarshalText([]byte("@@@not base64@@@")); err == nil {
		t.Fatal("bad base64 accepted")
	}
	if err := out.UnmarshalText([]byte("AAAA")); err == nil {
		t.Fatal("short record accepted")
	}
}

// TestRingConcurrentHammer drives GOMAXPROCS writers into one small
// ring (forcing constant wraparound and slot reuse) while a reader
// drains snapshots, asserting under -race that every surfaced record is
// internally consistent — i.e. no torn event ever escapes the
// commit-word + checksum validation. Each writer encodes a
// self-checking payload: Arg must equal a hash of (Txn, TS).
func TestRingConcurrentHammer(t *testing.T) {
	r := NewRing(64, 0) // small: maximal overwrite pressure
	writers := runtime.GOMAXPROCS(0)
	if writers < 2 {
		writers = 2
	}
	const perWriter = 20000
	sig := func(txn, ts int64) uint64 {
		return Checksum(uint64(txn), &[Words]uint64{uint64(ts)})
	}
	var stop atomic.Bool
	readerDone := make(chan struct{})
	go func() { // reader: drains snapshots continuously, validating each
		defer close(readerDone)
		for !stop.Load() {
			for _, rec := range r.Snapshot(nil) {
				if rec.Kind != KindGrant {
					t.Errorf("snapshot surfaced record with kind %v", rec.Kind)
					return
				}
				if rec.Arg != sig(rec.Txn, rec.TS) {
					t.Errorf("torn record escaped validation: %+v", rec)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	wg.Add(writers)
	for wtr := 0; wtr < writers; wtr++ {
		go func(wtr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				txn := int64(wtr*perWriter + i + 1)
				ts := int64(i + 1)
				r.Emit(&Record{Kind: KindGrant, Txn: txn, TS: ts, Arg: sig(txn, ts)})
			}
		}(wtr)
	}
	wg.Wait()
	stop.Store(true)
	<-readerDone
	if st := r.Stats(); st.Emitted != uint64(writers*perWriter) {
		t.Fatalf("emitted %d, want %d", st.Emitted, writers*perWriter)
	}
	// Quiescent: the ring is full and every retained slot must surface
	// and validate — the newest Cap() records, each self-consistent.
	final := r.Snapshot(nil)
	if len(final) != r.Cap() {
		t.Fatalf("quiescent snapshot surfaced %d records, want the full ring of %d", len(final), r.Cap())
	}
	for _, rec := range final {
		if rec.Arg != sig(rec.Txn, rec.TS) {
			t.Fatalf("quiescent snapshot holds inconsistent record: %+v", rec)
		}
	}
}

func TestBuildTraceShape(t *testing.T) {
	j := New(1, 64)
	j.Control().Emit(&Record{Kind: KindBegin, Txn: 1, TS: 1000})
	g := Record{Kind: KindGrant, Txn: 1, Arg: 5000, TS: 7000, Mode: 5}
	g.SetResource("hot")
	j.Ring(0).Emit(&g)
	j.Control().Emit(&Record{Kind: KindDetect, Txn: 1, Arg: 2000, Aux: 1, TS: 9000})
	v := Record{Kind: KindVictim, Txn: 9, Aux: 1, TS: 9100}
	j.Control().Emit(&v)
	j.Control().Emit(&Record{Kind: KindCommit, Txn: 1, TS: 9500})

	var buf bytes.Buffer
	if err := WriteTrace(&buf, j.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// The export must load as the Chrome trace-event object schema:
	// {"traceEvents": [ {name, ph, ts, pid, tid, ...}, ... ]}.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var sawWait, sawActivation, sawVictim, sawThreadName bool
	for _, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %v missing required key %q", ev, key)
			}
		}
		ph := ev["ph"].(string)
		switch ph {
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event without dur: %v", ev)
			}
		case "M", "i":
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
		name := ev["name"].(string)
		switch {
		case name == "wait hot X":
			sawWait = true
			if ev["dur"].(float64) != 5.0 { // 5000ns = 5us
				t.Fatalf("wait span dur = %v, want 5", ev["dur"])
			}
		case name == "activation 1":
			sawActivation = true
		case name == "victim T9":
			sawVictim = true
		case name == "thread_name":
			sawThreadName = true
		}
	}
	if !sawWait || !sawActivation || !sawVictim || !sawThreadName {
		t.Fatalf("missing expected events: wait=%v activation=%v victim=%v threadName=%v",
			sawWait, sawActivation, sawVictim, sawThreadName)
	}
}

func TestAnalyze(t *testing.T) {
	j := New(1, 256)
	emitB := func(txn int64, res string, depth uint64, ts int64) {
		r := Record{Kind: KindBlock, Txn: txn, Arg: depth, TS: ts}
		r.SetResource(res)
		j.Ring(0).Emit(&r)
	}
	emitG := func(txn int64, res string, wait uint64, ts int64) {
		r := Record{Kind: KindGrant, Txn: txn, Arg: wait, TS: ts}
		r.SetResource(res)
		j.Ring(0).Emit(&r)
	}
	// "hot" convoys: three blocks, one waited grant, never drains.
	emitB(1, "hot", 1, 10)
	emitB(2, "hot", 2, 20)
	emitG(1, "hot", 100, 30)
	emitB(3, "hot", 2, 40)
	// "calm" blocks once and drains.
	emitB(4, "calm", 1, 50)
	emitG(4, "calm", 10, 60)
	j.Control().Emit(&Record{Kind: KindDetect, Txn: 1, Arg: 500, Aux: 2, TS: 70})
	j.Control().Emit(&Record{Kind: KindVictim, Txn: 2, Aux: 1, TS: 71})
	j.Control().Emit(&Record{Kind: KindReposition, Txn: 3, Aux: 1, TS: 72})

	rep := Analyze(j.Snapshot())
	if rep.Deadlocks != 2 || rep.Victims != 1 || rep.Repositions != 1 {
		t.Fatalf("detector summary wrong: %+v", rep)
	}
	if rep.DepthDist[1] != 2 || rep.DepthDist[2] != 2 {
		t.Fatalf("depth distribution wrong: %v", rep.DepthDist)
	}
	if len(rep.Resources) != 2 || rep.Resources[0].Resource != "hot" {
		t.Fatalf("contention ranking wrong: %+v", rep.Resources)
	}
	hot := rep.Resources[0]
	if !hot.Convoy || hot.MaxWaiters != 2 || hot.Blocks != 3 {
		t.Fatalf("hot misanalyzed: %+v", hot)
	}
	if len(rep.Convoys) != 1 {
		t.Fatalf("convoys = %+v", rep.Convoys)
	}
	calm := rep.Resources[1]
	if calm.Convoy {
		t.Fatalf("calm flagged as convoy: %+v", calm)
	}
	var text bytes.Buffer
	rep.WriteReport(&text)
	for _, want := range []string{"wait-chain depth", "contention ranking", "CONVOY", "hot"} {
		if !bytes.Contains(text.Bytes(), []byte(want)) {
			t.Fatalf("report missing %q:\n%s", want, text.String())
		}
	}
}

func BenchmarkRingEmit(b *testing.B) {
	r := NewRing(4096, 0)
	rec := Record{Kind: KindGrant, Txn: 7, Arg: 123, TS: 1}
	rec.SetResource("bench/resource")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.TS = int64(i + 1)
		r.Emit(&rec)
	}
}

func BenchmarkRingEmitParallel(b *testing.B) {
	r := NewRing(4096, 0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rec := Record{Kind: KindGrant, Txn: 7, Arg: 123, TS: 1}
		rec.SetResource("bench/resource")
		for pb.Next() {
			r.Emit(&rec)
		}
	})
}
