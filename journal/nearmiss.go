package journal

import (
	"fmt"
	"io"
	"sort"

	"hwtwbg/internal/lock"
)

// Predictive near-miss analysis (after van den Heuvel/Sulzmann/
// Thiemann, "Partial Orders for Precise and Efficient Dynamic Deadlock
// Prediction"): instead of only reporting the deadlocks that happened,
// reconstruct each transaction's lock-acquisition partial order from
// the trace and look for cross-transaction reversals — T1 acquired a
// before b while T2 acquired b before a, with conflicting modes on
// both resources. Under strict two-phase locking T1 holds a while
// requesting b (locks are kept to commit/abort), so a reversal is a
// potential deadlock that the observed schedule happened to dodge: a
// different interleaving of the same transactions could have crossed
// the two waits. Reversals are ranked by recurrence (how many
// conflicting transaction pairs exhibit them), and pairs whose
// resources also appear in resolved-cycle evidence are flagged
// Materialized — those are not near misses but deadlocks the detector
// actually broke.

// NearMissPair is one resource pair acquired in both orders by
// different transactions with conflicting modes.
type NearMissPair struct {
	// ResourceA/ResourceB are the display prefixes, ordered so that
	// ResourceA sorts before ResourceB; HashA/HashB are the stable
	// identities.
	ResourceA string `json:"resource_a"`
	ResourceB string `json:"resource_b"`
	HashA     uint64 `json:"hash_a"`
	HashB     uint64 `json:"hash_b"`
	// ABTxns/BATxns count distinct transactions that first acquired A
	// then B, respectively B then A.
	ABTxns int `json:"ab_txns"`
	BATxns int `json:"ba_txns"`
	// Pairs counts cross-order transaction pairs whose modes conflict on
	// both resources — the recurrence rank: each such pair is one
	// schedule away from a deadlock.
	Pairs int `json:"pairs"`
	// Materialized: both resources appear in resolved-cycle evidence
	// (KindCycleEdge records), so this order reversal did produce at
	// least one real deadlock in the trace.
	Materialized bool `json:"materialized"`
	// Tags lists the distinct application op tags (Txn.SetTag) of the
	// transactions that contributed an acquisition order to this pair,
	// ascending — the handle for finding the code paths that must agree
	// on a lock order to close the near miss.
	Tags []uint64 `json:"op_tags,omitempty"`
}

// NearMissReport is the outcome of the partial-order pass.
type NearMissReport struct {
	// TxnsAnalyzed counts transactions that acquired at least two
	// distinct resources (the only ones that can order locks).
	TxnsAnalyzed int `json:"txns_analyzed"`
	// OrderedPairs counts distinct (txn, resource-pair) acquisition
	// orders observed.
	OrderedPairs int `json:"ordered_pairs"`
	// Reversals lists the conflicting cross-order pairs, most recurrent
	// first.
	Reversals []NearMissPair `json:"reversals"`
}

// modeCombo buckets one acquisition direction's lock-mode combination:
// the modes a transaction ended up holding on the pair's lower- and
// higher-hashed resource.
type modeCombo struct{ a, b lock.Mode }

// nmTxn is one transaction's acquisition state during replay.
type nmTxn struct {
	order []uint64             // first-acquisition order of distinct resources
	mode  map[uint64]lock.Mode // strongest granted mode per resource
}

// NearMisses replays the records (snapshot order) into the
// partial-order near-miss report.
func NearMisses(recs []Record) NearMissReport {
	var rep NearMissReport
	txns := map[int64]*nmTxn{}
	names := map[uint64]string{}
	// pairDir[{lo,hi}] holds both directions' mode-combination counts;
	// dir key true = lo-then-hi.
	type pairKey struct{ lo, hi uint64 }
	type dirCounts struct {
		loHi, hiLo map[modeCombo]int
		loHiTxns   int
		hiLoTxns   int
		tags       map[uint64]bool // op tags of contributing transactions
	}
	pairs := map[pairKey]*dirCounts{}
	cycleRes := map[uint64]bool{} // resources named in resolved-cycle evidence
	txnTags := map[int64]uint64{} // txn -> op tag (KindOpTag)

	for i := range recs {
		r := &recs[i]
		switch r.Kind {
		case KindGrant:
			if r.Txn == 0 || r.RHash == 0 {
				continue
			}
			if _, ok := names[r.RHash]; !ok {
				names[r.RHash] = r.Resource()
			}
			t := txns[r.Txn]
			if t == nil {
				t = &nmTxn{mode: map[uint64]lock.Mode{}}
				txns[r.Txn] = t
			}
			m := lock.Mode(r.Mode)
			if prev, held := t.mode[r.RHash]; held {
				// A conversion strengthens the held mode; acquisition order
				// is fixed by the first grant.
				t.mode[r.RHash] = lock.Conv(prev, m)
				continue
			}
			t.mode[r.RHash] = m
			t.order = append(t.order, r.RHash)
		case KindCommit, KindAbort:
			// Strict 2PL: every lock is held to the transaction end, so the
			// partial order closes here. Record each ordered pair once per
			// transaction, then drop the state (the id never recurs —
			// manager ids are unique — but re-use stays harmless: a fresh
			// state simply restarts the order).
			t := txns[r.Txn]
			if t == nil {
				continue
			}
			if len(t.order) >= 2 {
				rep.TxnsAnalyzed++
				for i := 0; i < len(t.order); i++ {
					for j := i + 1; j < len(t.order); j++ {
						first, second := t.order[i], t.order[j]
						rep.OrderedPairs++
						lo, hi := first, second
						loFirst := true
						if hi < lo {
							lo, hi = hi, lo
							loFirst = false
						}
						dc := pairs[pairKey{lo, hi}]
						if dc == nil {
							dc = &dirCounts{loHi: map[modeCombo]int{}, hiLo: map[modeCombo]int{}}
							pairs[pairKey{lo, hi}] = dc
						}
						if loFirst {
							dc.loHi[modeCombo{t.mode[lo], t.mode[hi]}]++
							dc.loHiTxns++
						} else {
							dc.hiLo[modeCombo{t.mode[lo], t.mode[hi]}]++
							dc.hiLoTxns++
						}
						if tag := txnTags[r.Txn]; tag != 0 {
							if dc.tags == nil {
								dc.tags = map[uint64]bool{}
							}
							dc.tags[tag] = true
						}
					}
				}
			}
			delete(txns, r.Txn)
			delete(txnTags, r.Txn)
		case KindCycleEdge:
			if r.RHash != 0 {
				cycleRes[r.RHash] = true
			}
		case KindOpTag:
			if r.Arg != 0 {
				txnTags[r.Txn] = r.Arg
			}
		}
	}

	for k, dc := range pairs {
		if dc.loHiTxns == 0 || dc.hiLoTxns == 0 {
			continue
		}
		// A cross pair (T1 lo-then-hi, T2 hi-then-lo) can deadlock iff
		// T1's mode conflicts with T2's on both resources: T1 holds lo
		// while waiting for hi, T2 the reverse.
		conflicts := 0
		for c1, n1 := range dc.loHi {
			for c2, n2 := range dc.hiLo {
				if !lock.Comp(c1.a, c2.a) && !lock.Comp(c1.b, c2.b) {
					conflicts += n1 * n2
				}
			}
		}
		if conflicts == 0 {
			continue
		}
		p := NearMissPair{
			ResourceA: names[k.lo], ResourceB: names[k.hi],
			HashA: k.lo, HashB: k.hi,
			ABTxns: dc.loHiTxns, BATxns: dc.hiLoTxns,
			Pairs:        conflicts,
			Materialized: cycleRes[k.lo] && cycleRes[k.hi],
		}
		for tag := range dc.tags {
			p.Tags = append(p.Tags, tag)
		}
		sort.Slice(p.Tags, func(i, j int) bool { return p.Tags[i] < p.Tags[j] })
		rep.Reversals = append(rep.Reversals, p)
	}
	sort.Slice(rep.Reversals, func(i, j int) bool {
		a, b := rep.Reversals[i], rep.Reversals[j]
		if a.Pairs != b.Pairs {
			return a.Pairs > b.Pairs
		}
		if a.HashA != b.HashA {
			return a.HashA < b.HashA
		}
		return a.HashB < b.HashB
	})
	return rep
}

// WriteReport renders the near-miss analysis as text for terminals.
func (rep NearMissReport) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "near-miss analysis: %d multi-lock transactions, %d ordered pairs, %d conflicting reversals\n",
		rep.TxnsAnalyzed, rep.OrderedPairs, len(rep.Reversals))
	top := rep.Reversals
	if len(top) > 20 {
		top = top[:20]
	}
	for i, p := range top {
		tag := "NEAR MISS"
		if p.Materialized {
			tag = "materialized"
		}
		tags := ""
		if len(p.Tags) > 0 {
			tags = fmt.Sprintf("  op_tags=%v", p.Tags)
		}
		fmt.Fprintf(w, "  %2d. %s <-> %s  a->b txns=%d b->a txns=%d conflicting pairs=%d  [%s]%s\n",
			i+1, p.ResourceA, p.ResourceB, p.ABTxns, p.BATxns, p.Pairs, tag, tags)
	}
}
