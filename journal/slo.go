package journal

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// SLO checking over a journal-derived Report: declare latency
// objectives ("wait p99 ≤ 1ms", "commit p95 ≤ 10ms"), evaluate them
// against the exact percentiles the trace yields, and fail loudly.
// This replaces ad-hoc timer plumbing in benchmarks and load drivers —
// the flight recorder is the single source of latency truth, and
// `hwtrace report -slo ...` turns any dump into a pass/fail gate.

// SLO is one latency objective: population Kind (LatencyWait,
// LatencyCommit or LatencyAbort), percentile Pct ("p50", "p95", "p99"
// or "max") and the Bound it must not exceed.
type SLO struct {
	Kind  string        `json:"kind"`
	Pct   string        `json:"pct"`
	Bound time.Duration `json:"bound_ns"`
}

// SLOResult is one evaluated objective. A population with zero samples
// trivially passes (Actual 0, Count 0): an SLO over latencies that
// never occurred is vacuous, and the Count lets callers flag it.
type SLOResult struct {
	SLO
	Actual time.Duration `json:"actual_ns"`
	Count  int           `json:"count"`
	OK     bool          `json:"ok"`
}

// ParseSLOs parses a comma-separated objective list of the form
//
//	[kind:]pNN=duration
//
// e.g. "p99=1ms" (kind defaults to wait), "commit:p95=10ms,wait:max=50ms".
// Recognized kinds are wait, commit and abort; recognized percentiles
// p50, p95, p99 and max.
func ParseSLOs(spec string) ([]SLO, error) {
	var out []SLO
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lhs, rhs, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("journal: SLO %q: want [kind:]pNN=duration", part)
		}
		kind := LatencyWait
		pct := lhs
		if k, p, hasKind := strings.Cut(lhs, ":"); hasKind {
			kind, pct = k, p
		}
		switch kind {
		case LatencyWait, LatencyCommit, LatencyAbort:
		default:
			return nil, fmt.Errorf("journal: SLO %q: unknown kind %q (want wait, commit or abort)", part, kind)
		}
		switch pct {
		case "p50", "p95", "p99", "max":
		default:
			return nil, fmt.Errorf("journal: SLO %q: unknown percentile %q (want p50, p95, p99 or max)", part, pct)
		}
		bound, err := time.ParseDuration(rhs)
		if err != nil || bound <= 0 {
			return nil, fmt.Errorf("journal: SLO %q: bad bound %q", part, rhs)
		}
		out = append(out, SLO{Kind: kind, Pct: pct, Bound: bound})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("journal: empty SLO spec %q", spec)
	}
	return out, nil
}

// CheckSLOs evaluates the objectives against the report's latency
// percentiles, in the order given.
func (rep Report) CheckSLOs(slos []SLO) []SLOResult {
	out := make([]SLOResult, 0, len(slos))
	for _, s := range slos {
		ls := rep.Latencies[s.Kind] // zero value when absent: vacuous pass
		var actual time.Duration
		switch s.Pct {
		case "p50":
			actual = ls.P50
		case "p95":
			actual = ls.P95
		case "p99":
			actual = ls.P99
		case "max":
			actual = ls.Max
		}
		out = append(out, SLOResult{SLO: s, Actual: actual, Count: ls.Count, OK: actual <= s.Bound})
	}
	return out
}

// WriteSLOResults renders the evaluations one per line and reports
// whether every objective held.
func WriteSLOResults(w io.Writer, results []SLOResult) (allOK bool) {
	allOK = true
	for _, r := range results {
		verdict := "PASS"
		if !r.OK {
			verdict = "FAIL"
			allOK = false
		}
		note := ""
		if r.Count == 0 {
			note = " (no samples)"
		}
		fmt.Fprintf(w, "SLO %s %s = %v <= %v: %s%s\n", r.Kind, r.Pct, r.Actual, r.Bound, verdict, note)
	}
	return allOK
}
