package journal

// RecordView is the JSON rendering of one record, shared by the debug
// server's /journal/stream SSE frames and `hwtrace tail -raw` NDJSON.
// The json tags are the live-telemetry record vocabulary scripts key
// on; cmd/hwtrace pins the stable subset in its tailSchemaKeys
// manifest, and the wireschema analyzer holds the two in agreement.
//
//hwlint:wire emit tailjson
type RecordView struct {
	TS   int64  `json:"ts"` // wall clock, nanoseconds since the Unix epoch
	Kind string `json:"kind"`
	Txn  int64  `json:"txn"`
	// Arg is the kind-specific payload: queue depth (block), wait ns
	// (grant), waited-by txn (cycle-edge), op tag (op-tag), ...
	Arg      uint64 `json:"arg,omitempty"`
	Resource string `json:"resource,omitempty"`
	RHash    uint64 `json:"rhash,omitempty"` // stable resource identity
	Mode     string `json:"mode,omitempty"`
	Shard    uint8  `json:"shard"`
	Aux      uint32 `json:"aux,omitempty"` // activation sequence, cycles, ...
	Conv     bool   `json:"conv,omitempty"`
	Try      bool   `json:"try,omitempty"`
}

// View renders the record for JSON exposition.
func (r *Record) View() RecordView {
	v := RecordView{
		TS:    r.TS,
		Kind:  r.Kind.String(),
		Txn:   r.Txn,
		Arg:   r.Arg,
		RHash: r.RHash,
		Shard: r.Shard,
		Aux:   r.Aux,
		Conv:  r.Flags&FlagConversion != 0,
		Try:   r.Flags&FlagTry != 0,
	}
	if res := r.Resource(); res != "" {
		v.Resource = res
	}
	if r.Mode != 0 {
		v.Mode = r.ModeString()
	}
	return v
}
