package journal

import (
	"bytes"
	"testing"
)

// mkRec builds a distinguishable record for cursor tests; Arg carries
// the emit index so delivery order and gaps are checkable.
func mkRec(i int) Record {
	r := Record{TS: int64(1000 + i), Txn: int64(i), Arg: uint64(i), Kind: KindGrant, Mode: 4}
	r.SetResource("res")
	return r
}

func emitN(r *Ring, from, n int) {
	for i := from; i < from+n; i++ {
		rec := mkRec(i)
		r.Emit(&rec)
	}
}

func TestReadFromDeliversAndResumes(t *testing.T) {
	r := NewRing(8, 0)
	emitN(r, 0, 5)
	recs, next, lost := r.ReadFrom(0, 0, nil)
	if len(recs) != 5 || next != 5 || lost != 0 {
		t.Fatalf("ReadFrom(0) = %d recs next=%d lost=%d, want 5/5/0", len(recs), next, lost)
	}
	for i, rec := range recs {
		if rec.Arg != uint64(i) {
			t.Fatalf("record %d has Arg=%d, want %d", i, rec.Arg, i)
		}
	}
	// Nothing new: the cursor holds still and re-delivers nothing.
	recs, next2, lost := r.ReadFrom(next, 0, nil)
	if len(recs) != 0 || next2 != next || lost != 0 {
		t.Fatalf("idle ReadFrom = %d recs next=%d lost=%d, want 0/%d/0", len(recs), next2, lost, next)
	}
	// Resume picks up exactly the records emitted since.
	emitN(r, 5, 3)
	recs, next, lost = r.ReadFrom(next, 0, nil)
	if len(recs) != 3 || next != 8 || lost != 0 {
		t.Fatalf("resumed ReadFrom = %d recs next=%d lost=%d, want 3/8/0", len(recs), next, lost)
	}
	if recs[0].Arg != 5 || recs[2].Arg != 7 {
		t.Fatalf("resumed records are %d..%d, want 5..7", recs[0].Arg, recs[2].Arg)
	}
}

func TestReadFromMaxBounds(t *testing.T) {
	r := NewRing(8, 0)
	emitN(r, 0, 6)
	recs, next, lost := r.ReadFrom(0, 4, nil)
	if len(recs) != 4 || next != 4 || lost != 0 {
		t.Fatalf("bounded ReadFrom = %d recs next=%d lost=%d, want 4/4/0", len(recs), next, lost)
	}
	recs, next, _ = r.ReadFrom(next, 4, nil)
	if len(recs) != 2 || next != 6 {
		t.Fatalf("second bounded ReadFrom = %d recs next=%d, want 2/6", len(recs), next)
	}
}

func TestReadFromResumeAfterWraparound(t *testing.T) {
	r := NewRing(8, 0) // cap 8
	emitN(r, 0, 4)
	_, next, lost := r.ReadFrom(0, 0, nil)
	if next != 4 || lost != 0 {
		t.Fatalf("first read: next=%d lost=%d, want 4/0", next, lost)
	}
	// The consumer goes away; 12 more records overwrite seqs 4..7.
	emitN(r, 4, 12) // head = 16, oldest = 8
	recs, next, lost := r.ReadFrom(next, 0, nil)
	if lost != 4 {
		t.Fatalf("lag after wraparound: lost=%d, want 4 (seqs 4..7 overwritten)", lost)
	}
	if len(recs) != 8 || next != 16 {
		t.Fatalf("resume after wraparound = %d recs next=%d, want 8/16", len(recs), next)
	}
	if recs[0].Arg != 8 || recs[7].Arg != 15 {
		t.Fatalf("resumed records are %d..%d, want 8..15", recs[0].Arg, recs[7].Arg)
	}
}

func TestReadFromCountsFullOverwriteAsLost(t *testing.T) {
	r := NewRing(8, 0)
	emitN(r, 0, 20) // oldest = 12
	recs, next, lost := r.ReadFrom(0, 0, nil)
	if lost != 12 || len(recs) != 8 || next != 20 {
		t.Fatalf("ReadFrom(0) over wrapped ring = %d recs next=%d lost=%d, want 8/20/12", len(recs), next, lost)
	}
	// Every sequence in [0, next) is accounted for: delivered or lost.
	if uint64(len(recs))+lost != next {
		t.Fatalf("accounting broken: %d delivered + %d lost != next %d", len(recs), lost, next)
	}
}

func TestReadFromStopsAtInFlightSlot(t *testing.T) {
	r := NewRing(8, 0)
	emitN(r, 0, 3)
	// A writer claims seq 3 but has not published yet; a later writer
	// has already published seq 4.
	claimed := r.at.claim()
	if claimed != 3 {
		t.Fatalf("claimed seq %d, want 3", claimed)
	}
	emitN(r, 4, 1) // publishes seq 4
	recs, next, lost := r.ReadFrom(0, 0, nil)
	if len(recs) != 3 || next != 3 || lost != 0 {
		t.Fatalf("read across in-flight slot = %d recs next=%d lost=%d, want stop at 3 with 3/3/0", len(recs), next, lost)
	}
	// The in-flight writer publishes; the stalled cursor now drains both
	// the late record and the one after it — no gap, no loss.
	rec := mkRec(3)
	rec.Shard = 0
	var w [Words]uint64
	rec.Pack(&w)
	s := &r.slots[claimed&r.mask]
	for i, v := range w {
		s.storePayload(i, v)
	}
	s.storeSum(Checksum(claimed, &w))
	s.publish(claimed)
	recs, next, lost = r.ReadFrom(next, 0, nil)
	if len(recs) != 2 || next != 5 || lost != 0 {
		t.Fatalf("after publish = %d recs next=%d lost=%d, want 2/5/0", len(recs), next, lost)
	}
	if recs[0].Arg != 3 || recs[1].Arg != 4 {
		t.Fatalf("drained records are %d,%d, want 3,4", recs[0].Arg, recs[1].Arg)
	}
}

func TestReadFromCountsTornSlot(t *testing.T) {
	r := NewRing(8, 0)
	emitN(r, 0, 3)
	// Corrupt seq 1's checksum, simulating a copy torn by a lapping
	// writer: the record must be counted lost, never surfaced.
	s := &r.slots[1&r.mask]
	s.storeSum(s.loadSum() ^ 0xdeadbeef)
	before := r.Stats().TornReads
	recs, next, lost := r.ReadFrom(0, 0, nil)
	if len(recs) != 2 || next != 3 || lost != 1 {
		t.Fatalf("read over torn slot = %d recs next=%d lost=%d, want 2/3/1", len(recs), next, lost)
	}
	if recs[0].Arg != 0 || recs[1].Arg != 2 {
		t.Fatalf("surviving records are %d,%d, want 0,2", recs[0].Arg, recs[1].Arg)
	}
	if after := r.Stats().TornReads; after != before+1 {
		t.Fatalf("TornReads = %d, want %d", after, before+1)
	}
}

func TestHeadAndOldest(t *testing.T) {
	r := NewRing(8, 0)
	if r.Head() != 0 || r.Oldest() != 0 {
		t.Fatalf("empty ring: Head=%d Oldest=%d, want 0/0", r.Head(), r.Oldest())
	}
	emitN(r, 0, 3)
	if r.Head() != 3 || r.Oldest() != 0 {
		t.Fatalf("after 3 emits: Head=%d Oldest=%d, want 3/0", r.Head(), r.Oldest())
	}
	emitN(r, 3, 10) // 13 total into cap 8
	if r.Head() != 13 || r.Oldest() != 5 {
		t.Fatalf("after wrap: Head=%d Oldest=%d, want 13/5", r.Head(), r.Oldest())
	}
}

// TestStreamedFormatMatchesDump proves the TAIL wire format (per-record
// base64 MarshalText lines) and the HWJRNL01 dump decode byte-identical:
// a record carried over the live stream packs to exactly the same seven
// words as the same record read back from a binary dump.
func TestStreamedFormatMatchesDump(t *testing.T) {
	recs := []Record{
		mkRec(0),
		{TS: 42, Txn: -7, Arg: 1 << 63, Kind: KindOpTag, Shard: 3},
		{TS: 99, Txn: 5, Arg: 12345, Kind: KindBlock, Mode: 2, Aux: 7, Flags: FlagConversion | FlagTry},
	}
	recs[2].SetResource("a-resource-id-longer-than-the-inline-prefix")

	// Dump path: HWJRNL01 encode/decode.
	var dump bytes.Buffer
	if err := Encode(&dump, recs); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	fromDump, err := Decode(&dump)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}

	// Stream path: the TAIL batch line format.
	fromStream := make([]Record, len(recs))
	for i := range recs {
		txt, err := recs[i].MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%d): %v", i, err)
		}
		if err := fromStream[i].UnmarshalText(txt); err != nil {
			t.Fatalf("UnmarshalText(%d): %v", i, err)
		}
	}

	if len(fromDump) != len(recs) {
		t.Fatalf("dump decoded %d records, want %d", len(fromDump), len(recs))
	}
	for i := range recs {
		var a, b, c [Words]uint64
		recs[i].Pack(&a)
		fromDump[i].Pack(&b)
		fromStream[i].Pack(&c)
		if a != b {
			t.Fatalf("record %d: dump round trip not byte-identical: %x vs %x", i, a, b)
		}
		if a != c {
			t.Fatalf("record %d: stream round trip not byte-identical: %x vs %x", i, a, c)
		}
	}
}
