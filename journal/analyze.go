package journal

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Offline analysis over a replayed journal (cmd/hwtrace). Everything
// here works from the dump alone — no live manager — so a journal
// pulled off a production box can be dissected anywhere.

// ResourceReport aggregates one resource's contention over the trace.
type ResourceReport struct {
	Resource   string `json:"resource"`    // display prefix ("…" when truncated)
	Hash       uint64 `json:"hash"`        // stable identity
	Blocks     int    `json:"blocks"`      // requests that enqueued
	Grants     int    `json:"grants"`      // grants observed
	WaitedNs   uint64 `json:"waited_ns"`   // total blocked time across grants
	MaxWaiters int    `json:"max_waiters"` // peak simultaneously outstanding blocks
	// Convoy: the queue never drained — from its first block to the end
	// of the trace at least one waiter was always outstanding (and more
	// than one block was seen), the signature of a convoy that re-forms
	// faster than it is served.
	Convoy bool `json:"convoy"`
}

// LatencyStats summarizes one latency population extracted from the
// trace: exact percentiles over every sample (offline analysis sorts
// the full population — no histogram bucketing error).
type LatencyStats struct {
	Count int           `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// latencyStats computes exact percentiles; samples is sorted in place.
func latencyStats(samples []time.Duration) LatencyStats {
	st := LatencyStats{Count: len(samples)}
	if len(samples) == 0 {
		return st
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pick := func(p float64) time.Duration {
		// Nearest-rank: the smallest sample with at least p of the
		// population at or below it, so p95 of two samples is the
		// larger one, not the smaller.
		i := int(math.Ceil(p*float64(len(samples)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	st.P50 = pick(0.50)
	st.P95 = pick(0.95)
	st.P99 = pick(0.99)
	st.Max = samples[len(samples)-1]
	return st
}

// Latency population keys in Report.Latencies.
const (
	// LatencyWait: time blocked before grant, per waited grant record
	// (immediate grants excluded, matching the live wait histogram).
	LatencyWait = "wait"
	// LatencyCommit / LatencyAbort: begin-to-commit / begin-to-abort
	// span per transaction whose begin record survived in the ring.
	LatencyCommit = "commit"
	LatencyAbort  = "abort"
)

// Report is the offline analysis of one journal dump.
//
// The json tags are the `hwtrace analyze -json` wire vocabulary; the
// wireschema analyzer checks cmd/hwtrace's reportSchemaKeys manifest
// (the keys CI and downstream dashboards grep for) against them.
//
//hwlint:wire emit reportjson
type Report struct {
	Records     int           `json:"records"`
	Span        time.Duration `json:"span"` // first to last record
	Txns        int           `json:"txns"` // distinct transactions seen
	Deadlocks   int           `json:"deadlocks"`
	Victims     int           `json:"victims"`
	Repositions int           `json:"repositions"`
	// Orphans counts lifecycle records whose begin record was lost to
	// ring overwrite (or torn away): their transactions still count in
	// Txns, but no commit/abort span can be attributed to them.
	Orphans int `json:"orphans"`
	// DepthDist is the wait-chain depth distribution: DepthDist[d]
	// counts block events that enqueued at depth d (including self).
	DepthDist map[int]int `json:"depth_distribution"`
	// Latencies holds exact percentile extractions per population
	// (LatencyWait, LatencyCommit, LatencyAbort); populations with no
	// samples are omitted.
	Latencies map[string]LatencyStats `json:"latencies"`
	// Resources ranks resources by total blocked time, worst first.
	Resources []ResourceReport `json:"resources"`
	// Convoys is the subset of Resources flagged as convoys.
	Convoys []ResourceReport `json:"convoys"`
	// NearMisses is the predictive partial-order pass: lock-order
	// reversals that could have deadlocked under another schedule.
	NearMisses NearMissReport `json:"near_misses"`
	// OpTags groups waiting by application operation tag (Txn.SetTag,
	// wire `tag=`), ranked by total blocked time — a hot tag names the
	// application code path behind a contention spike. Always present
	// (empty when the trace carries no tags) so dashboards can key on it.
	OpTags []OpTagReport `json:"op_tags"`
}

// OpTagReport aggregates the wait behaviour of every transaction that
// carried one application operation tag.
type OpTagReport struct {
	Tag      uint64 `json:"tag"`
	Txns     int    `json:"txns"`   // distinct tagged transactions
	Blocks   int    `json:"blocks"` // requests that enqueued
	Grants   int    `json:"grants"`
	WaitedNs uint64 `json:"waited_ns"` // total blocked time across grants
	// Victims counts tagged transactions aborted as deadlock victims.
	Victims int `json:"victims,omitempty"`
}

// opTagReports groups wait behaviour by op tag. Two passes: the tag
// record can land in the control ring after the transaction's first
// lock traffic (wire clients often set the tag mid-transaction), so
// the txn→tag map must be complete before attribution starts.
func opTagReports(recs []Record) []OpTagReport {
	out := []OpTagReport{}
	tags := map[int64]uint64{}
	for i := range recs {
		if r := &recs[i]; r.Kind == KindOpTag && r.Arg != 0 {
			tags[r.Txn] = r.Arg
		}
	}
	if len(tags) == 0 {
		return out
	}
	agg := map[uint64]*OpTagReport{}
	counted := map[int64]bool{}
	for i := range recs {
		r := &recs[i]
		tag := tags[r.Txn]
		if tag == 0 {
			continue
		}
		s := agg[tag]
		if s == nil {
			s = &OpTagReport{Tag: tag}
			agg[tag] = s
		}
		if !counted[r.Txn] {
			counted[r.Txn] = true
			s.Txns++
		}
		switch r.Kind {
		case KindBlock:
			s.Blocks++
		case KindGrant:
			s.Grants++
			s.WaitedNs += r.Arg
		case KindVictim:
			s.Victims++
		}
	}
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WaitedNs != out[j].WaitedNs {
			return out[i].WaitedNs > out[j].WaitedNs
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// Analyze replays the records (which must be in snapshot order) into a
// Report.
func Analyze(recs []Record) Report {
	rep := Report{DepthDist: map[int]int{}, Latencies: map[string]LatencyStats{}}
	rep.Records = len(recs)
	if len(recs) == 0 {
		return rep
	}
	first, last := recs[0].TS, recs[0].TS
	txns := map[int64]bool{}
	begins := map[int64]int64{} // txn -> begin TS (spans need both ends)
	var waits, commits, aborts []time.Duration
	type resState struct {
		ResourceReport
		outstanding  int
		everBlocked  bool
		drainedAfter bool // outstanding returned to 0 after the first block
	}
	res := map[uint64]*resState{}
	get := func(r *Record) *resState {
		s := res[r.RHash]
		if s == nil {
			s = &resState{ResourceReport: ResourceReport{Resource: r.Resource(), Hash: r.RHash}}
			res[r.RHash] = s
		}
		return s
	}
	for i := range recs {
		r := &recs[i]
		if r.TS < first {
			first = r.TS
		}
		if r.TS > last {
			last = r.TS
		}
		if r.Txn != 0 {
			switch r.Kind {
			case KindBegin, KindRequest, KindBlock, KindGrant, KindAbort, KindCommit:
				txns[r.Txn] = true
			}
		}
		switch r.Kind {
		case KindBegin:
			begins[r.Txn] = r.TS
		case KindCommit, KindAbort:
			// A lifecycle span needs both ends; a begin lost to ring
			// overwrite leaves an orphan we count rather than mis-attribute
			// (a zero-based span would poison the percentiles).
			if beg, ok := begins[r.Txn]; ok {
				if span := r.TS - beg; span >= 0 {
					if r.Kind == KindCommit {
						commits = append(commits, time.Duration(span))
					} else {
						aborts = append(aborts, time.Duration(span))
					}
				}
				delete(begins, r.Txn)
			} else {
				rep.Orphans++
			}
		case KindBlock:
			rep.DepthDist[int(r.Arg)]++
			s := get(r)
			s.Blocks++
			s.outstanding++
			s.everBlocked = true
			s.drainedAfter = false
			if s.outstanding > s.MaxWaiters {
				s.MaxWaiters = s.outstanding
			}
		case KindGrant:
			s := get(r)
			s.Grants++
			s.WaitedNs += r.Arg
			if r.Arg > 0 {
				waits = append(waits, time.Duration(r.Arg))
				if s.outstanding > 0 {
					s.outstanding--
					if s.outstanding == 0 {
						s.drainedAfter = true
					}
				}
			}
		case KindDetect:
			if r.Aux > 0 {
				rep.Deadlocks += int(r.Aux)
			}
		case KindVictim:
			rep.Victims++
		case KindReposition:
			rep.Repositions++
		}
	}
	rep.Span = time.Duration(last - first)
	rep.Txns = len(txns)
	for _, s := range res {
		if s.Blocks == 0 {
			continue
		}
		s.Convoy = s.everBlocked && !s.drainedAfter && s.Blocks > 1
		rep.Resources = append(rep.Resources, s.ResourceReport)
	}
	sort.Slice(rep.Resources, func(i, j int) bool {
		a, b := rep.Resources[i], rep.Resources[j]
		if a.WaitedNs != b.WaitedNs {
			return a.WaitedNs > b.WaitedNs
		}
		if a.Blocks != b.Blocks {
			return a.Blocks > b.Blocks
		}
		return a.Hash < b.Hash
	})
	for _, r := range rep.Resources {
		if r.Convoy {
			rep.Convoys = append(rep.Convoys, r)
		}
	}
	for key, samples := range map[string][]time.Duration{
		LatencyWait: waits, LatencyCommit: commits, LatencyAbort: aborts,
	} {
		if len(samples) > 0 {
			rep.Latencies[key] = latencyStats(samples)
		}
	}
	rep.NearMisses = NearMisses(recs)
	rep.OpTags = opTagReports(recs)
	return rep
}

// WriteReport renders the analysis as text for terminals.
func (rep Report) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "journal: %d records over %v, %d transactions\n", rep.Records, rep.Span, rep.Txns)
	fmt.Fprintf(w, "detector: %d cycles resolved (%d victims, %d repositions)\n", rep.Deadlocks, rep.Victims, rep.Repositions)
	if rep.Orphans > 0 {
		fmt.Fprintf(w, "ring loss: %d lifecycle records orphaned (begin overwritten); spans for them omitted\n", rep.Orphans)
	}
	if len(rep.Latencies) > 0 {
		fmt.Fprintf(w, "\nlatency percentiles:\n")
		for _, key := range []string{LatencyWait, LatencyCommit, LatencyAbort} {
			ls, ok := rep.Latencies[key]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "  %-7s n=%-8d p50=%-12v p95=%-12v p99=%-12v max=%v\n",
				key, ls.Count, ls.P50, ls.P95, ls.P99, ls.Max)
		}
	}
	if len(rep.DepthDist) > 0 {
		fmt.Fprintf(w, "\nwait-chain depth at enqueue:\n")
		var depths []int
		maxN := 0
		for d, n := range rep.DepthDist {
			depths = append(depths, d)
			if n > maxN {
				maxN = n
			}
		}
		sort.Ints(depths)
		for _, d := range depths {
			n := rep.DepthDist[d]
			bar := n * 40 / maxN
			if bar == 0 {
				bar = 1
			}
			fmt.Fprintf(w, "  depth %-3d %8d %s\n", d, n, strings.Repeat("#", bar))
		}
	}
	if len(rep.Resources) > 0 {
		fmt.Fprintf(w, "\ncontention ranking (by total blocked time):\n")
		top := rep.Resources
		if len(top) > 20 {
			top = top[:20]
		}
		for i, r := range top {
			convoy := ""
			if r.Convoy {
				convoy = "  CONVOY"
			}
			fmt.Fprintf(w, "  %2d. %-24s blocks=%-6d grants=%-6d waited=%-12v peak_waiters=%d%s\n",
				i+1, r.Resource, r.Blocks, r.Grants, time.Duration(r.WaitedNs), r.MaxWaiters, convoy)
		}
	}
	if len(rep.Convoys) > 0 {
		fmt.Fprintf(w, "\nconvoy suspects (queue never drained after first block):\n")
		for _, r := range rep.Convoys {
			fmt.Fprintf(w, "  %-24s blocks=%d peak_waiters=%d\n", r.Resource, r.Blocks, r.MaxWaiters)
		}
	}
	if len(rep.OpTags) > 0 {
		fmt.Fprintf(w, "\nop-tag ranking (by total blocked time):\n")
		top := rep.OpTags
		if len(top) > 20 {
			top = top[:20]
		}
		for i, t := range top {
			fmt.Fprintf(w, "  %2d. tag=%-20d txns=%-6d blocks=%-6d waited=%-12v victims=%d\n",
				i+1, t.Tag, t.Txns, t.Blocks, time.Duration(t.WaitedNs), t.Victims)
		}
	}
	if rep.NearMisses.TxnsAnalyzed > 0 || len(rep.NearMisses.Reversals) > 0 {
		fmt.Fprintf(w, "\n")
		rep.NearMisses.WriteReport(w)
	}
}
