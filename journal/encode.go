package journal

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"io"
)

// The dump encoding is the packed seven-word record, little-endian,
// preceded by an 8-byte magic header. It is what /journal.bin serves,
// what the wire DUMP command carries (base64 per record, no header),
// and what cmd/hwtrace replays.

// Magic is the dump header: format name plus version.
var Magic = [8]byte{'H', 'W', 'J', 'R', 'N', 'L', '0', '1'}

// Encode writes the dump header followed by every record.
func Encode(w io.Writer, recs []Record) error {
	if _, err := w.Write(Magic[:]); err != nil {
		return err
	}
	var buf [RecordBytes]byte
	var words [Words]uint64
	for i := range recs {
		recs[i].Pack(&words)
		for k, v := range words {
			binary.LittleEndian.PutUint64(buf[8*k:], v)
		}
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads a dump produced by Encode until EOF.
func Decode(r io.Reader) ([]Record, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("journal: reading dump header: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("journal: bad dump magic %q", magic[:])
	}
	var out []Record
	var buf [RecordBytes]byte
	var words [Words]uint64
	for {
		_, err := io.ReadFull(r, buf[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("journal: truncated dump record %d: %w", len(out), err)
		}
		for k := range words {
			words[k] = binary.LittleEndian.Uint64(buf[8*k:])
		}
		var rec Record
		rec.Unpack(&words)
		out = append(out, rec)
	}
}

// MarshalText renders one record as base64 of its packed form — the
// wire DUMP line format.
func (r *Record) MarshalText() ([]byte, error) {
	var words [Words]uint64
	r.Pack(&words)
	var buf [RecordBytes]byte
	for k, v := range words {
		binary.LittleEndian.PutUint64(buf[8*k:], v)
	}
	out := make([]byte, base64.StdEncoding.EncodedLen(RecordBytes))
	base64.StdEncoding.Encode(out, buf[:])
	return out, nil
}

// UnmarshalText parses the base64 line format back into a record.
func (r *Record) UnmarshalText(text []byte) error {
	var buf [RecordBytes]byte
	n, err := base64.StdEncoding.Decode(buf[:], text)
	if err != nil {
		return fmt.Errorf("journal: bad record line: %w", err)
	}
	if n != RecordBytes {
		return fmt.Errorf("journal: record line is %d bytes, want %d", n, RecordBytes)
	}
	var words [Words]uint64
	for k := range words {
		words[k] = binary.LittleEndian.Uint64(buf[8*k:])
	}
	r.Unpack(&words)
	return nil
}

// String renders a one-line human-readable form for logs and hwtrace.
func (r *Record) String() string {
	s := fmt.Sprintf("%s txn=%d", r.Kind, r.Txn)
	if res := r.Resource(); res != "" {
		s += " res=" + res
	}
	if r.Mode != 0 {
		s += " mode=" + r.ModeString()
	}
	switch r.Kind {
	case KindBlock:
		s += fmt.Sprintf(" depth=%d", r.Arg)
	case KindGrant:
		s += fmt.Sprintf(" wait=%dns", r.Arg)
	case KindDetect:
		s += fmt.Sprintf(" total=%dns cycles=%d", r.Arg, r.Aux)
	case KindDetectCopy:
		s += fmt.Sprintf(" copied=%d skipped=%d", r.Arg, r.Aux)
	case KindCycleEdge:
		s += fmt.Sprintf(" waited_by=%d act=%d", r.Arg, r.Aux)
	case KindOpTag:
		s += fmt.Sprintf(" tag=%d", r.Arg)
	case KindVictim, KindReposition, KindSalvage:
		s += fmt.Sprintf(" act=%d", r.Aux)
	}
	if r.Flags&FlagConversion != 0 {
		s += " conv"
	}
	return s
}
