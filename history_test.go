package hwtwbg

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// deadlockOnce builds a two-transaction deadlock on distinct resources
// and resolves it with a manual Detect, so every call records exactly
// one victim event. Resources are namespaced by round to keep the lock
// tables disjoint across rounds.
func deadlockOnce(t *testing.T, m *Manager, round int) {
	t.Helper()
	ctx := context.Background()
	x := ResourceID(fmt.Sprintf("x%d", round))
	y := ResourceID(fmt.Sprintf("y%d", round))
	a, b := m.Begin(), m.Begin()
	if err := a.Lock(ctx, x, X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(ctx, y, X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- a.Lock(ctx, y, X) }()
	go func() { errs <- b.Lock(ctx, x, X) }()
	waitBlocked(t, m, a.ID())
	waitBlocked(t, m, b.ID())
	if st := m.Detect(); st.Aborted != 1 {
		t.Fatalf("round %d: aborted %d, want 1", round, st.Aborted)
	}
	<-errs
	<-errs
	a.Abort()
	b.Abort()
}

func TestHistoryWraparoundPastCapacity(t *testing.T) {
	const window = 3
	m := Open(Options{HistorySize: window})
	defer m.Close()
	const rounds = window + 4
	for i := 0; i < rounds; i++ {
		deadlockOnce(t, m, i)
	}
	events, total := m.History()
	if total != rounds {
		t.Fatalf("total = %d, want %d (total must exceed the window)", total, rounds)
	}
	if len(events) != window {
		t.Fatalf("len(events) = %d, want %d", len(events), window)
	}
	// Oldest first, and the retained window is the most recent rounds.
	for i := 1; i < len(events); i++ {
		if events[i].Time.Before(events[i-1].Time) {
			t.Fatalf("events out of order: %v before %v", events[i], events[i-1])
		}
	}
	// Each round begins two fresh transactions; victims from later
	// rounds have strictly larger ids.
	for i := 1; i < len(events); i++ {
		if events[i].Txn <= events[i-1].Txn {
			t.Fatalf("victim ids not increasing: %v", events)
		}
	}
	// The activation ring wraps identically.
	reports, repTotal := m.Activations()
	if repTotal != rounds || len(reports) != window {
		t.Fatalf("activations: len=%d total=%d, want %d/%d", len(reports), repTotal, window, rounds)
	}
	if reports[len(reports)-1].Seq != rounds {
		t.Fatalf("last report seq = %d, want %d", reports[len(reports)-1].Seq, rounds)
	}
}

func TestHistoryNegativeSizeDisables(t *testing.T) {
	m := Open(Options{HistorySize: -1})
	defer m.Close()
	deadlockOnce(t, m, 0)
	events, total := m.History()
	if len(events) != 0 {
		t.Fatalf("disabled history retained %d events", len(events))
	}
	if total != 0 {
		t.Fatalf("disabled history counted %d", total)
	}
	reports, repTotal := m.Activations()
	if len(reports) != 0 || repTotal != 0 {
		t.Fatalf("disabled activation ring: len=%d total=%d", len(reports), repTotal)
	}
	// Stats still count even with recording disabled.
	if st := m.Stats(); st.Aborted != 1 || st.Runs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestHistoryConcurrentWithDetect races History()/Activations() readers
// against manual Detect() calls resolving real deadlocks; run under
// -race this proves the rings are safely published.
func TestHistoryConcurrentWithDetect(t *testing.T) {
	m := Open(Options{HistorySize: 8})
	defer m.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				events, total := m.History()
				if len(events) > 8 || total < 0 {
					panic("impossible history")
				}
				reports, _ := m.Activations()
				for _, rep := range reports {
					if rep.Total < 0 {
						panic("negative pause")
					}
				}
				time.Sleep(50 * time.Microsecond)
			}
		}()
	}
	for i := 0; i < 10; i++ {
		deadlockOnce(t, m, i)
	}
	close(stop)
	wg.Wait()
	if _, total := m.History(); total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
}
