// Benchmarks regenerating the measurable claims of the paper and the
// comparison tables of EXPERIMENTS.md. One benchmark (family) per
// experiment:
//
//	E8  complexity     BenchmarkDetectChain, BenchmarkDetectWideQueues,
//	                   BenchmarkDetectRings, BenchmarkDetectExample41Tiles
//	E9/E10/E14 compare BenchmarkStrategyComparison
//	E11 TDR-2          BenchmarkTDR2Rate
//	E14 enumeration    BenchmarkCycleEnumerationVsDetector
//	API                BenchmarkManagerUncontended, BenchmarkManagerConflict
//
// Tables 1 and 2 (E1, E2) are benchmarked in internal/lock; the graph
// build (E4) in internal/twbg.
package hwtwbg

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"hwtwbg/internal/detect"
	"hwtwbg/internal/sim"
	"hwtwbg/internal/synth"
	"hwtwbg/internal/table"
	"hwtwbg/internal/twbg"
)

// benchDetect builds a topology per iteration and runs one periodic
// activation, reporting edge visits and searched cycles.
func benchDetect(b *testing.B, build func() *table.Table) {
	var visits, cycles int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := build()
		d := detect.New(tb, detect.Config{})
		b.StartTimer()
		res := d.Run()
		visits += res.EdgeVisits
		cycles += res.CyclesSearched
	}
	b.ReportMetric(float64(visits)/float64(b.N), "edgevisits/op")
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/op")
}

func BenchmarkDetectChain(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchDetect(b, func() *table.Table { return synth.Chain(n) })
		})
	}
}

func BenchmarkDetectWideQueues(b *testing.B) {
	for _, m := range []int{10, 40, 160} {
		b.Run(fmt.Sprintf("m=%d,q=20", m), func(b *testing.B) {
			benchDetect(b, func() *table.Table { return synth.WideQueues(m, 20) })
		})
	}
}

func BenchmarkDetectRings(b *testing.B) {
	for _, k := range []int{5, 20, 80} {
		b.Run(fmt.Sprintf("k=%d,size=4", k), func(b *testing.B) {
			benchDetect(b, func() *table.Table { return synth.Rings(k, 4) })
		})
	}
}

func BenchmarkDetectExample41Tiles(b *testing.B) {
	for _, k := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("tiles=%d", k), func(b *testing.B) {
			benchDetect(b, func() *table.Table { return synth.Example41Tiles(k) })
		})
	}
}

// BenchmarkCycleEnumerationVsDetector contrasts Johnson-style
// elementary-cycle enumeration (what Jiang's participant listing pays
// for in the worst case) with the detector's c'-bounded search, on the
// nested-cycle tiles.
func BenchmarkCycleEnumerationVsDetector(b *testing.B) {
	const tiles = 16
	b.Run("enumerate-all-cycles", func(b *testing.B) {
		tb := synth.Example41Tiles(tiles)
		g := twbg.Build(tb)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := len(g.Cycles(0)); got != 4*tiles {
				b.Fatalf("cycles = %d", got)
			}
		}
	})
	b.Run("detector-search", func(b *testing.B) {
		benchDetect(b, func() *table.Table { return synth.Example41Tiles(tiles) })
	})
}

// BenchmarkStrategyComparison runs a short contended simulation per
// strategy, reporting commits and aborts per run (E9/E10/E14).
func BenchmarkStrategyComparison(b *testing.B) {
	cfg := sim.Config{
		Terminals: 8,
		Resources: 16,
		TxnLength: 6,
		WriteFrac: 0.4,
		HotProb:   0.5,
		Period:    10,
		Duration:  4000,
		Seed:      7,
	}
	factories := []struct {
		name string
		f    sim.Factory
	}{
		{"park-hwtwbg", sim.Park},
		{"park-no-tdr2", sim.ParkNoTDR2},
		{"park-continuous", sim.ParkContinuous},
		{"wfg-periodic", sim.WFGPeriodic},
		{"wfg-continuous", sim.WFGContinuous},
		{"agrawal", sim.Agrawal},
		{"elmagarmid", sim.Elmagarmid},
		{"jiang", sim.Jiang},
		{"timeout", sim.Timeout(50)},
	}
	for _, fc := range factories {
		b.Run(fc.name, func(b *testing.B) {
			var commits, aborts, wasted int
			for i := 0; i < b.N; i++ {
				m := sim.Run(cfg, fc.f)
				commits += m.Commits
				aborts += m.Aborts
				wasted += m.WastedOps
			}
			b.ReportMetric(float64(commits)/float64(b.N), "commits/run")
			b.ReportMetric(float64(aborts)/float64(b.N), "aborts/run")
			b.ReportMetric(float64(wasted)/float64(b.N), "wastedops/run")
		})
	}
}

// BenchmarkTDR2Rate measures the zero-abort resolution rate on a
// conversion-heavy workload (E11).
func BenchmarkTDR2Rate(b *testing.B) {
	cfg := sim.Config{
		Terminals: 8,
		Resources: 16,
		TxnLength: 6,
		WriteFrac: 0.2,
		ConvFrac:  0.3,
		HotProb:   0.5,
		Period:    10,
		Duration:  4000,
		Seed:      7,
	}
	var repositions, aborts int
	for i := 0; i < b.N; i++ {
		m := sim.Run(cfg, sim.Park)
		repositions += m.Repositionings
		aborts += m.Aborts
	}
	b.ReportMetric(float64(repositions)/float64(b.N), "tdr2/run")
	b.ReportMetric(float64(aborts)/float64(b.N), "aborts/run")
}

// BenchmarkManagerUncontended measures the public API fast path.
func BenchmarkManagerUncontended(b *testing.B) {
	lm := Open(Options{})
	defer lm.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := lm.Begin()
		if err := t.Lock(ctx, "r1", S); err != nil {
			b.Fatal(err)
		}
		if err := t.Lock(ctx, "r2", X); err != nil {
			b.Fatal(err)
		}
		if err := t.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkManagerConflict measures grant hand-off between two
// goroutine-less transactions alternating on one resource.
func BenchmarkManagerConflict(b *testing.B) {
	lm := Open(Options{})
	defer lm.Close()
	b.ResetTimer()
	runManagerConflict(b, lm)
}

// runManagerConflict is one conflict hand-off loop over an open
// manager, shared by BenchmarkManagerConflict and the journal on/off
// comparison.
func runManagerConflict(b *testing.B, lm *Manager) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		a := lm.Begin()
		if err := a.Lock(ctx, "hot", X); err != nil {
			b.Fatal(err)
		}
		c := lm.Begin()
		done := make(chan error, 1)
		go func() { done <- c.Lock(ctx, "hot", X) }()
		for !lm.Blocked(c.ID()) {
			runtime.Gosched()
		}
		if err := a.Commit(); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		if err := c.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLockAllKeys is the shared multi-key working set for the LockAll
// benchmarks: enough keys that a batch meaningfully amortizes per-shard
// mutex rounds, few enough to stay a realistic transaction footprint.
const benchLockAllKeys = 16

func benchLockAllReqs() []LockRequest {
	reqs := make([]LockRequest, benchLockAllKeys)
	for i := range reqs {
		reqs[i] = LockRequest{Resource: ResourceID(fmt.Sprintf("ba%03d", i)), Mode: X}
	}
	return reqs
}

// BenchmarkManagerLockAll contrasts N single Lock calls against one
// LockAll batch over the same keys, reporting the shard-mutex rounds
// each path costs per transaction (mutexacq/op, from ShardStats) — the
// quantity group acquisition exists to shrink: the batch takes each
// shard's mutex once per round instead of once per lock.
func BenchmarkManagerLockAll(b *testing.B) {
	ctx := context.Background()
	reqs := benchLockAllReqs()
	mutexRounds := func(lm *Manager) uint64 {
		var n uint64
		for _, s := range lm.ShardStats() {
			n += s.MutexAcquires
		}
		return n
	}
	b.Run("sequential", func(b *testing.B) {
		lm := Open(Options{})
		defer lm.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := lm.Begin()
			for _, rq := range reqs {
				if err := t.Lock(ctx, rq.Resource, rq.Mode); err != nil {
					b.Fatal(err)
				}
			}
			if err := t.Commit(); err != nil {
				b.Fatal(err)
			}
			t.Recycle()
		}
		b.StopTimer()
		b.ReportMetric(float64(mutexRounds(lm))/float64(b.N), "mutexacq/op")
	})
	b.Run("batched", func(b *testing.B) {
		lm := Open(Options{})
		defer lm.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := lm.Begin()
			if err := t.LockAll(ctx, reqs); err != nil {
				b.Fatal(err)
			}
			if err := t.Commit(); err != nil {
				b.Fatal(err)
			}
			t.Recycle()
		}
		b.StopTimer()
		b.ReportMetric(float64(mutexRounds(lm))/float64(b.N), "mutexacq/op")
	})
}

// BenchmarkLockAllAB is the in-process A/B micro-harness: every
// iteration runs one per-lock transaction AND one batched transaction
// over the same multi-key working set, in the same process and run, so
// the reported ratio cannot be an artifact of cross-run environment
// drift (E22 showed cross-archive ns/op on this host is). A single
// shard maximizes what batching can amortize (one mutex round instead
// of N); speedup is sequential time over batched time.
func BenchmarkLockAllAB(b *testing.B) {
	lm := Open(Options{Shards: 1})
	defer lm.Close()
	ctx := context.Background()
	reqs := benchLockAllReqs()
	var seqNs, batNs time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		t := lm.Begin()
		for _, rq := range reqs {
			if err := t.Lock(ctx, rq.Resource, rq.Mode); err != nil {
				b.Fatal(err)
			}
		}
		if err := t.Commit(); err != nil {
			b.Fatal(err)
		}
		t.Recycle()
		seqNs += time.Since(start)

		start = time.Now()
		t = lm.Begin()
		if err := t.LockAll(ctx, reqs); err != nil {
			b.Fatal(err)
		}
		if err := t.Commit(); err != nil {
			b.Fatal(err)
		}
		t.Recycle()
		batNs += time.Since(start)
	}
	b.StopTimer()
	b.ReportMetric(float64(seqNs.Nanoseconds())/float64(b.N), "seq-ns/op")
	b.ReportMetric(float64(batNs.Nanoseconds())/float64(b.N), "batched-ns/op")
	if batNs > 0 {
		b.ReportMetric(float64(seqNs)/float64(batNs), "speedup")
	}
}

// BenchmarkManagerConflictJournal prices the flight recorder on the
// contended hand-off path (the workload with the most journal traffic
// per operation: begin, block, waited grant, commit records for every
// iteration). journal=on is the default configuration — the delta
// against journal=off is the recorder's whole cost, and allocs/op must
// match (the recorder never allocates on the hot path); see
// EXPERIMENTS.md E22.
func BenchmarkManagerConflictJournal(b *testing.B) {
	for _, v := range []struct {
		name string
		size int
	}{
		{"journal=on", 0},
		{"journal=off", -1},
	} {
		b.Run(v.name, func(b *testing.B) {
			lm := Open(Options{JournalSize: v.size})
			defer lm.Close()
			b.ReportAllocs()
			b.ResetTimer()
			runManagerConflict(b, lm)
		})
	}
}

// BenchmarkManagerParallel measures multi-core scaling of the public
// API under b.RunParallel. The low-conflict variant spreads each
// transaction's two locks over a large key space, so almost no two
// goroutines ever touch the same resource: this is the path the sharded
// facade parallelizes and the serial Manager bottlenecks on one mutex.
// The high-conflict variant squeezes every transaction onto a handful
// of keys (locked in sorted order, so the workload itself is
// deadlock-free) and measures contended hand-off instead.
func BenchmarkManagerParallel(b *testing.B) {
	variants := []struct {
		name string
		keys int
		mode Mode
	}{
		{"low-conflict", 64 * 1024, X},
		{"high-conflict", 8, X},
		{"read-shared", 64 * 1024, S},
	}
	shardCounts := []int{1, runtime.GOMAXPROCS(0)}
	if runtime.GOMAXPROCS(0) == 1 {
		shardCounts = []int{1, 8} // still exercises the sharded paths
	}
	for _, v := range variants {
		for _, shards := range shardCounts {
			b.Run(fmt.Sprintf("%s/shards=%d", v.name, shards), func(b *testing.B) {
				lm := Open(Options{Shards: shards})
				defer lm.Close()
				ctx := context.Background()
				var seed atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(seed.Add(1)))
					for pb.Next() {
						t := lm.Begin()
						i, j := rng.Intn(v.keys), rng.Intn(v.keys)
						if i > j {
							i, j = j, i
						}
						if err := t.Lock(ctx, ResourceID(fmt.Sprintf("k%07d", i)), v.mode); err != nil {
							b.Fatal(err)
						}
						if j != i {
							if err := t.Lock(ctx, ResourceID(fmt.Sprintf("k%07d", j)), v.mode); err != nil {
								b.Fatal(err)
							}
						}
						if err := t.Commit(); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}

// countingTracer is the cheapest possible attached Tracer: one atomic
// add per hook. Comparing it against a nil tracer isolates the cost of
// the hook dispatch itself (E20).
type countingTracer struct{ events atomic.Uint64 }

func (n *countingTracer) OnRequest(TxnID, ResourceID, Mode)              { n.events.Add(1) }
func (n *countingTracer) OnBlock(TxnID, ResourceID, Mode, int)           { n.events.Add(1) }
func (n *countingTracer) OnGrant(TxnID, ResourceID, Mode, time.Duration) { n.events.Add(1) }
func (n *countingTracer) OnAbort(TxnID)                                  { n.events.Add(1) }
func (n *countingTracer) OnActivation(ActivationReport)                  { n.events.Add(1) }

// BenchmarkManagerTracerOverhead measures the instrumented hot path
// with the tracer compiled in but idle (nil) against an attached
// minimal tracer, on the low-conflict parallel workload — the E20
// acceptance measurement: the delta must be within noise.
func BenchmarkManagerTracerOverhead(b *testing.B) {
	const keys = 64 * 1024
	run := func(b *testing.B, tracer Tracer) {
		lm := Open(Options{Tracer: tracer})
		defer lm.Close()
		ctx := context.Background()
		var seed atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(seed.Add(1)))
			for pb.Next() {
				t := lm.Begin()
				i, j := rng.Intn(keys), rng.Intn(keys)
				if i > j {
					i, j = j, i
				}
				if err := t.Lock(ctx, ResourceID(fmt.Sprintf("k%07d", i)), X); err != nil {
					b.Fatal(err)
				}
				if j != i {
					if err := t.Lock(ctx, ResourceID(fmt.Sprintf("k%07d", j)), X); err != nil {
						b.Fatal(err)
					}
				}
				if err := t.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("tracer=idle", func(b *testing.B) { run(b, nil) })
	b.Run("tracer=attached", func(b *testing.B) { run(b, &countingTracer{}) })
}

// BenchmarkMetricsSnapshot prices reading the full metric set while the
// manager is live (the debug-endpoint path; must not stop the world).
func BenchmarkMetricsSnapshot(b *testing.B) {
	lm := Open(Options{})
	defer lm.Close()
	ctx := context.Background()
	t := lm.Begin()
	if err := t.Lock(ctx, "r", X); err != nil {
		b.Fatal(err)
	}
	defer t.Commit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := lm.MetricsSnapshot()
		if snap.Total.Grants == 0 {
			b.Fatal("lost grants")
		}
	}
}

// BenchmarkDetectorActivation prices one snapshot-detector activation
// at varying dirty fractions: 32 populated shards, of which 0%, 10% or
// 90% see lock churn between activations. dirty0 is the incremental
// snapshot's best case (every shard reused), dirty90 approaches the
// full-copy cost plus the epoch bookkeeping. Churn runs outside the
// timer, so the number is the activation alone.
func BenchmarkDetectorActivation(b *testing.B) {
	for _, tc := range []struct {
		name  string
		dirty int // shards churned per activation, of 32
	}{
		{"dirty0", 0},
		{"dirty10", 3},
		{"dirty90", 29},
	} {
		b.Run(tc.name, func(b *testing.B) {
			const shards = 32
			m := Open(Options{Shards: shards, Detector: DetectorSnapshot, IncrementalSnapshot: IncrementalOn})
			defer m.Close()
			ctx := context.Background()
			pin := m.Begin()
			for i := 0; i < shards; i++ {
				for j := 0; j < 8; j++ {
					if err := pin.Lock(ctx, shardResource(b, m, uint32(i), j), S); err != nil {
						b.Fatal(err)
					}
				}
			}
			churn := make([]ResourceID, tc.dirty)
			for i := range churn {
				churn[i] = shardResource(b, m, uint32(i), 100)
			}
			m.Detect() // warm-up: the one full copy
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for _, r := range churn {
					tx := m.Begin()
					if err := tx.Lock(ctx, r, X); err != nil {
						b.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
					tx.Recycle()
				}
				b.StartTimer()
				m.Detect()
			}
		})
	}
}

// BenchmarkDetectSteadyState measures repeated activations of ONE
// detector on a live (deadlock-free) table — the deployed shape, where
// the vertex pool and maps are recycled across runs and a steady-state
// activation allocates almost nothing.
func BenchmarkDetectSteadyState(b *testing.B) {
	tb := synth.Chain(200)
	d := detect.New(tb, detect.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := d.Run()
		if res.CyclesSearched != 0 {
			b.Fatal("chain must stay clean")
		}
	}
}
