package lockservice

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"testing"

	"hwtwbg"
	"hwtwbg/journal"
)

// TestDumpJournalRoundTrip drives a real server over the wire: the
// events of one transaction come back out of DUMP as decoded records.
func TestDumpJournalRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	id, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Lock("dump-me", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	recs, err := c.DumpJournal()
	if err != nil {
		t.Fatal(err)
	}
	var sawBegin, sawGrant, sawCommit bool
	for i := range recs {
		r := &recs[i]
		if r.Txn != int64(id) {
			continue
		}
		switch r.Kind {
		case journal.KindBegin:
			sawBegin = true
		case journal.KindGrant:
			if r.Resource() != "dump-me" {
				t.Errorf("grant resource %q, want dump-me", r.Resource())
			}
			if r.RHash != journal.Hash("dump-me") {
				t.Errorf("grant RHash %#x does not match Hash(dump-me)", r.RHash)
			}
			sawGrant = true
		case journal.KindCommit:
			sawCommit = true
		}
	}
	if !sawBegin || !sawGrant || !sawCommit {
		t.Fatalf("dump missing lifecycle for T%d: begin=%v grant=%v commit=%v (of %d records)",
			id, sawBegin, sawGrant, sawCommit, len(recs))
	}
}

// TestDumpJournalDisabled checks the wire error when the server's
// recorder is off.
func TestDumpJournalDisabled(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, hwtwbg.Options{JournalSize: -1})
	t.Cleanup(func() { srv.Close() })
	c := dial(t, ln.Addr().String())
	if _, err := c.DumpJournal(); err == nil || !strings.Contains(err.Error(), "journal disabled") {
		t.Fatalf("DumpJournal error = %v, want journal disabled", err)
	}
	// The session survives the refused command.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestDumpJournalMalformedReplies exercises the client parser against
// a hostile server.
func TestDumpJournalMalformedReplies(t *testing.T) {
	c := fakeServer(t, "OK notanumber")
	if _, err := c.DumpJournal(); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("err = %v", err)
	}
	c = fakeServer(t, "OK 1\n!!!not-base64!!!")
	if _, err := c.DumpJournal(); err == nil || !strings.Contains(err.Error(), "DUMP record 0") {
		t.Fatalf("err = %v", err)
	}
}

// journaledDebugManager is debugManager plus a guarantee the resolved
// deadlock produced a postmortem.
func journaledDebugManager(t *testing.T) *hwtwbg.Manager {
	t.Helper()
	lm := debugManager(t)
	if pms, _ := lm.Postmortems(); len(pms) == 0 {
		t.Fatal("debugManager produced no postmortem")
	}
	return lm
}

// TestDebugHandlerFlightRecorder covers the three flight-recorder
// endpoints against a manager with one resolved deadlock.
func TestDebugHandlerFlightRecorder(t *testing.T) {
	lm := journaledDebugManager(t)
	srv := httptest.NewServer(DebugHandler(lm))
	defer srv.Close()

	// /postmortems: the resolved cycle with evidence.
	body, ctype := get(t, srv, "/postmortems")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/postmortems content type %q", ctype)
	}
	var pm struct {
		Total       int `json:"total"`
		Postmortems []struct {
			Victim int  `json:"victim"`
			TDR2   bool `json:"tdr2"`
			Cycle  []struct {
				From     int    `json:"from"`
				To       int    `json:"to"`
				Resource string `json:"resource"`
			} `json:"cycle"`
			Tail []json.RawMessage `json:"tail"`
		} `json:"postmortems"`
	}
	if err := json.Unmarshal([]byte(body), &pm); err != nil {
		t.Fatalf("/postmortems JSON: %v\n%s", err, body)
	}
	if pm.Total < 1 || len(pm.Postmortems) < 1 {
		t.Fatalf("/postmortems empty: %s", body)
	}
	first := pm.Postmortems[0]
	if first.TDR2 || first.Victim == 0 {
		t.Fatalf("postmortem = %+v, want a victim abort", first)
	}
	if len(first.Cycle) == 0 || len(first.Tail) == 0 {
		t.Fatalf("postmortem missing cycle or tail: %s", body)
	}

	// /trace.json: Chrome trace-event schema (see journal.BuildTrace).
	body, ctype = get(t, srv, "/trace.json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/trace.json content type %q", ctype)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/trace.json JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("/trace.json has no events")
	}
	for i, ev := range trace.TraceEvents {
		if ev.Ph == "" || ev.Name == "" {
			t.Fatalf("trace event %d missing ph or name: %+v", i, ev)
		}
	}

	// /journal.bin: binary dump, decodable by the journal package (and
	// therefore by cmd/hwtrace).
	body, _ = get(t, srv, "/journal.bin")
	recs, err := journal.Decode(bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("decoding /journal.bin: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("/journal.bin decoded to zero records")
	}
}

// TestDebugHandlerFlightRecorderDisabled pins the 404 contract when
// the journal is off.
func TestDebugHandlerFlightRecorderDisabled(t *testing.T) {
	lm := hwtwbg.Open(hwtwbg.Options{JournalSize: -1})
	t.Cleanup(func() { lm.Close() })
	tx := lm.Begin()
	if err := tx.Lock(context.Background(), "r", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(DebugHandler(lm))
	defer srv.Close()
	for _, path := range []string{"/postmortems", "/trace.json", "/journal.bin", "/nearmiss"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("GET %s with journal disabled: status %d, want 404", path, resp.StatusCode)
		}
	}
	// The rest of the handler still works — /costmodel does not depend
	// on the journal.
	if body, _ := get(t, srv, "/metrics"); body == "" {
		t.Error("/metrics empty")
	}
	if body, _ := get(t, srv, "/costmodel"); body == "" {
		t.Error("/costmodel empty")
	}
}
