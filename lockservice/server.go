// Package lockservice exposes the hwtwbg lock manager over TCP with a
// line-oriented text protocol, plus a matching client. One connection
// carries one transaction at a time — the sequential transaction model
// of the paper — and a dropped connection aborts its transaction, so a
// crashed client can never wedge the lock table.
//
// Protocol (requests and responses are single lines unless noted):
//
//	BEGIN                 -> OK <txn-id>
//	LOCK <resource> <mode> -> OK | ABORTED | ERR <msg>   (blocks until granted)
//	LOCKALL <resource> <mode> [<resource> <mode> ...] -> OK | ABORTED | ERR <msg>
//	                         (group acquisition: blocks until every named lock is
//	                         granted, taking each shard mutex once per round — see
//	                         hwtwbg.Txn.LockAll; on ABORTED/ERR mid-batch, locks
//	                         granted by earlier rounds stay held until COMMIT/ABORT)
//	TRYLOCK <resource> <mode> -> OK | BUSY | ABORTED | ERR <msg>
//	COMMIT                -> OK | ERR <msg>
//	ABORT                 -> OK
//	STATS                 -> OK runs=<n> cycles=<n> aborted=<n> repositioned=<n> salvaged=<n>
//	                            stw_total_ns=<n> stw_last_ns=<n> stw_max_ns=<n> shard_grants=<n>
//	                            false_cycles=<n> validations=<n> period_ns=<n>
//	                            last_false_cycles=<n> last_validations=<n>
//	                            cm_samples=<n> cm_deadlocks=<n> cm_rate_uhz=<n>
//	                            cm_detect_ns=<n> cm_persist_ns=<n> cm_period_ns=<n>
//	                            journal_emitted=<n> journal_overwritten=<n> journal_torn_reads=<n>
//	                            copy_ns=<n> acquire_ns=<n> shards_copied=<n> shards_skipped=<n>
//	                            tail_sessions=<n> tail_lagged=<n> op_tags=<n>
//	                         (one line; clients must skip unknown key=value fields,
//	                         so the list can grow; last_* report the most recent
//	                         detector activation alone, as do copy_ns and
//	                         acquire_ns — its snapshot copy-out and shard-mutex
//	                         wait; cm_* is the scheduling cost model — rate in
//	                         micro-deadlocks/sec — journal_* the flight
//	                         recorder's ring counters, so silent ring overwrite
//	                         is visible on the wire, and shards_copied/
//	                         shards_skipped the lifetime incremental-snapshot
//	                         totals)
//	SNAPSHOT              -> OK <n-lines> followed by n lines of lock table
//	DUMP                  -> OK <n-records> followed by n lines, each one flight-
//	                         recorder record in its base64 text form (see
//	                         journal.Record.MarshalText); ERR when the journal
//	                         is disabled
//	TAIL [from=oldest|now] [max=<n>] [hb=<dur>] [cursor=<s0>,<s1>,...]
//	                      -> OK rings=<R> cursor=<s0>,<s1>,...  then a stream of
//	                         frames until max records have been delivered (END)
//	                         or the connection closes:
//	                           BATCH ring=<i> n=<k> next=<seq> lost=<m>
//	                             followed by k record lines (base64, the DUMP
//	                             line format); next is the resume cursor for
//	                             that ring, lost counts records overwritten or
//	                             torn before they could be delivered
//	                           HB hb_<key>=<value> ...   (periodic heartbeat:
//	                             detector/journal counters and session lag)
//	                           END records=<n>           (bounded tails only;
//	                             the session then returns to command mode)
//	                         A tail that named max returns to the request/reply
//	                         protocol after END; an unbounded tail ends when the
//	                         client closes the connection — the OK header's (and
//	                         each BATCH's) cursor lets the next session resume
//	                         exactly where this one stopped. ERR when the
//	                         journal is disabled.
//	PING                  -> PONG
//	QUIT                  -> BYE (and the connection closes)
//
// BEGIN, LOCK, LOCKALL and TRYLOCK accept a trailing ` tag=<uint64>`
// field attaching an application operation tag to the transaction (see
// hwtwbg.Txn.SetTag): the flight recorder journals it, and postmortems,
// `hwtrace report` and near-miss output group wait chains by it.
//
// Modes are the paper's spellings: IS, IX, S, SIX, X. ABORTED means the
// transaction was sacrificed to break a deadlock; the client should
// retry it from the start.
package lockservice

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"hwtwbg"
	"hwtwbg/journal"
	"hwtwbg/metrics"
)

// Server accepts lock-protocol connections on a listener.
type Server struct {
	lm *hwtwbg.Manager
	ln net.Listener

	// Wire-level telemetry (STATS keys tail_sessions, tail_lagged,
	// op_tags): TAIL sessions ever started, records those sessions lost
	// to ring overwrite before delivery, and op tags attached via the
	// trailing tag= field.
	tailSessions metrics.Counter
	tailLagged   metrics.Counter
	opTags       metrics.Counter

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts serving on ln with a manager configured by opts. It
// returns immediately; use Close to stop.
func Serve(ln net.Listener, opts hwtwbg.Options) *Server {
	s := &Server{
		lm:    hwtwbg.Open(opts),
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// isClosed reports whether Close has started; long-lived streams poll
// it so shutdown never waits on an idle tail session.
func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Manager exposes the underlying lock manager (diagnostics).
func (s *Server) Manager() *hwtwbg.Manager { return s.lm }

// Close stops accepting, drops every connection (aborting their
// transactions) and shuts the lock manager down.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.lm.Close()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// session is the per-connection state.
type session struct {
	srv *Server
	txn *hwtwbg.Txn
	ctx context.Context
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	// A context cancelled when the connection goes away unblocks any
	// LOCK in flight (which aborts the transaction).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess := &session{srv: s, ctx: ctx}
	defer func() {
		if sess.txn != nil {
			sess.txn.Abort()
			sess.txn.Recycle()
		}
	}()

	w := bufio.NewWriter(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		// TAIL streams many lines, so it bypasses the one-line dispatch
		// path and owns the writer until the stream ends.
		if fields := strings.Fields(line); strings.ToUpper(fields[0]) == "TAIL" {
			if !sess.serveTail(w, fields[1:]) {
				return
			}
			continue
		}
		resp, quit := sess.dispatch(line)
		fmt.Fprintf(w, "%s\n", resp)
		if err := w.Flush(); err != nil || quit {
			return
		}
	}
}

// dispatch executes one protocol line against the session.
//
// The STATS reply's key=value vocabulary is the wire contract checked
// by the wireschema analyzer against Client.Stats: adding a key here
// without teaching the client parser (or vice versa) fails lint.
//
//hwlint:wire emit stats
func (sess *session) dispatch(line string) (resp string, quit bool) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	// The transaction-scoped verbs accept a trailing ` tag=<uint64>`
	// attaching an application op tag; peel it before argument counting
	// so the verbs' usage shapes are unchanged.
	var tag uint64
	var hasTag bool
	switch cmd {
	case "BEGIN", "LOCK", "LOCKALL", "TRYLOCK":
		if len(fields) > 1 {
			if v, ok := strings.CutPrefix(fields[len(fields)-1], "tag="); ok {
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return "ERR malformed tag= field", false
				}
				tag, hasTag = n, true
				fields = fields[:len(fields)-1]
			}
		}
	}
	// setTag applies the peeled tag to the live transaction — before the
	// lock call, so the journaled op-tag record precedes the waits it
	// explains.
	setTag := func() {
		if hasTag && sess.txn != nil {
			sess.txn.SetTag(tag)
			sess.srv.opTags.Inc()
		}
	}
	switch cmd {
	case "PING":
		return "PONG", false
	case "QUIT":
		return "BYE", true
	case "BEGIN":
		if sess.txn != nil {
			if sess.txn.Err() == nil {
				return "ERR transaction already active; COMMIT or ABORT first", false
			}
			sess.txn.Recycle() // finished (aborted) handle: hand it back
		}
		sess.txn = sess.srv.lm.Begin()
		setTag()
		return fmt.Sprintf("OK %d", int(sess.txn.ID())), false
	case "LOCK", "TRYLOCK":
		if len(fields) != 3 {
			return "ERR usage: " + cmd + " <resource> <mode>", false
		}
		if sess.txn == nil {
			return "ERR no transaction; BEGIN first", false
		}
		mode, err := hwtwbg.ParseMode(fields[2])
		if err != nil {
			return "ERR " + err.Error(), false
		}
		rid := hwtwbg.ResourceID(fields[1])
		setTag()
		if cmd == "TRYLOCK" {
			ok, err := sess.txn.TryLock(rid, mode)
			switch {
			case errors.Is(err, hwtwbg.ErrAborted):
				return "ABORTED", false
			case err != nil:
				return "ERR " + err.Error(), false
			case !ok:
				return "BUSY", false
			default:
				return "OK", false
			}
		}
		err = sess.txn.Lock(sess.ctx, rid, mode)
		switch {
		case err == nil:
			return "OK", false
		case errors.Is(err, hwtwbg.ErrAborted):
			return "ABORTED", false
		default:
			return "ERR " + err.Error(), false
		}
	case "LOCKALL":
		if len(fields) < 3 || len(fields)%2 == 0 {
			return "ERR usage: LOCKALL <resource> <mode> [<resource> <mode> ...]", false
		}
		if sess.txn == nil {
			return "ERR no transaction; BEGIN first", false
		}
		reqs := make([]hwtwbg.LockRequest, 0, (len(fields)-1)/2)
		for i := 1; i < len(fields); i += 2 {
			mode, err := hwtwbg.ParseMode(fields[i+1])
			if err != nil {
				return "ERR " + err.Error(), false
			}
			reqs = append(reqs, hwtwbg.LockRequest{Resource: hwtwbg.ResourceID(fields[i]), Mode: mode})
		}
		setTag()
		err := sess.txn.LockAll(sess.ctx, reqs)
		switch {
		case err == nil:
			return "OK", false
		case errors.Is(err, hwtwbg.ErrAborted):
			return "ABORTED", false
		default:
			return "ERR " + err.Error(), false
		}
	case "COMMIT":
		if sess.txn == nil {
			return "ERR no transaction", false
		}
		err := sess.txn.Commit()
		sess.txn.Recycle() // no-op if Commit failed with the txn still live
		sess.txn = nil
		if err != nil {
			if errors.Is(err, hwtwbg.ErrAborted) {
				return "ABORTED", false
			}
			return "ERR " + err.Error(), false
		}
		return "OK", false
	case "ABORT":
		if sess.txn != nil {
			sess.txn.Abort()
			sess.txn.Recycle()
			sess.txn = nil
		}
		return "OK", false
	case "STATS":
		st := sess.srv.lm.Stats()
		var shardGrants uint64
		for _, sh := range sess.srv.lm.ShardStats() {
			shardGrants += sh.Grants
		}
		last, _ := sess.srv.lm.LastActivation() // zero report when none has run
		cm := sess.srv.lm.CostModel()
		var js journal.RingStats
		if jr := sess.srv.lm.Journal(); jr != nil {
			js = jr.Stats()
		}
		return fmt.Sprintf("OK runs=%d cycles=%d aborted=%d repositioned=%d salvaged=%d stw_total_ns=%d stw_last_ns=%d stw_max_ns=%d shard_grants=%d false_cycles=%d validations=%d period_ns=%d last_false_cycles=%d last_validations=%d"+
			" cm_samples=%d cm_deadlocks=%d cm_rate_uhz=%d cm_detect_ns=%d cm_persist_ns=%d cm_period_ns=%d"+
			" journal_emitted=%d journal_overwritten=%d journal_torn_reads=%d"+
			" copy_ns=%d acquire_ns=%d shards_copied=%d shards_skipped=%d"+
			" tail_sessions=%d tail_lagged=%d op_tags=%d",
			st.Runs, st.CyclesSearched, st.Aborted, st.Repositioned, st.Salvaged,
			st.STWTotal.Nanoseconds(), st.STWLast.Nanoseconds(), st.STWMax.Nanoseconds(), shardGrants,
			st.FalseCycles, st.Validations, sess.srv.lm.CurrentPeriod().Nanoseconds(),
			last.FalseCycles, last.Validations,
			cm.Samples, cm.Deadlocks, int64(cm.RatePerSec*1e6), cm.DetectCost.Nanoseconds(), cm.PersistCost.Nanoseconds(), cm.Period.Nanoseconds(),
			js.Emitted, js.Overwritten, js.TornReads,
			last.Copy.Nanoseconds(), last.Acquire.Nanoseconds(), st.ShardsCopied, st.ShardsSkipped,
			sess.srv.tailSessions.Load(), sess.srv.tailLagged.Load(), sess.srv.opTags.Load()), false
	case "DUMP":
		jr := sess.srv.lm.Journal()
		if jr == nil {
			return "ERR journal disabled", false
		}
		recs := jr.Snapshot()
		var b strings.Builder
		fmt.Fprintf(&b, "OK %d", len(recs))
		for i := range recs {
			txt, err := recs[i].MarshalText()
			if err != nil {
				return "ERR " + err.Error(), false
			}
			b.WriteString("\n")
			b.Write(txt)
		}
		return b.String(), false
	case "SNAPSHOT":
		snap := sess.srv.lm.Snapshot()
		lines := strings.Split(strings.TrimRight(snap, "\n"), "\n")
		if snap == "" {
			lines = nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "OK %d", len(lines))
		for _, l := range lines {
			b.WriteString("\n")
			b.WriteString(l)
		}
		return b.String(), false
	default:
		return "ERR unknown command " + cmd, false
	}
}
