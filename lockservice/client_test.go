package lockservice

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"hwtwbg"
)

// fakeServer answers each request line with the next canned reply.
func fakeServer(t *testing.T, replies ...string) *Client {
	t.Helper()
	cs, ss := net.Pipe()
	go func() {
		r := bufio.NewReader(ss)
		for _, reply := range replies {
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
			fmt.Fprintf(ss, "%s\n", reply)
		}
		// Drain the QUIT from Close.
		r.ReadString('\n')
		ss.Close()
	}()
	c := NewClient(cs)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientMalformedReplies(t *testing.T) {
	c := fakeServer(t, "GARBAGE")
	if err := c.Ping(); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("err = %v", err)
	}
}

func TestClientBeginMalformedID(t *testing.T) {
	c := fakeServer(t, "OK notanumber")
	if _, err := c.Begin(); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("err = %v", err)
	}
}

func TestClientErrReply(t *testing.T) {
	c := fakeServer(t, "ERR something broke")
	err := c.Lock("r", 5)
	if err == nil || !strings.Contains(err.Error(), "something broke") {
		t.Fatalf("err = %v", err)
	}
}

func TestClientAbortedAndBusyReplies(t *testing.T) {
	c := fakeServer(t, "ABORTED", "BUSY")
	if err := c.Lock("r", 5); !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if err := c.TryLock("r", 5); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v", err)
	}
}

func TestClientStatsParsing(t *testing.T) {
	tests := []struct {
		name    string
		reply   string
		want    Stats
		wantErr string
	}{
		{
			name:  "old server short reply",
			reply: "OK runs=10 cycles=4 aborted=3 repositioned=2 salvaged=1",
			want: Stats{Stats: hwtwbg.Stats{
				Runs: 10, CyclesSearched: 4, Aborted: 3, Repositioned: 2, Salvaged: 1,
			}},
		},
		{
			name:  "full reply with service fields",
			reply: "OK runs=10 cycles=4 aborted=3 repositioned=2 salvaged=1 stw_total_ns=1500000 stw_last_ns=120000 stw_max_ns=800000 shard_grants=424242",
			want: Stats{
				Stats: hwtwbg.Stats{
					Runs: 10, CyclesSearched: 4, Aborted: 3, Repositioned: 2, Salvaged: 1,
					STWTotal: 1500 * time.Microsecond,
					STWLast:  120 * time.Microsecond,
					STWMax:   800 * time.Microsecond,
				},
				ShardGrants: 424242,
			},
		},
		{
			name:  "duration exceeding int32 nanoseconds",
			reply: "OK stw_total_ns=86400000000000",
			want:  Stats{Stats: hwtwbg.Stats{STWTotal: 24 * time.Hour}},
		},
		{
			name:  "snapshot detector keys",
			reply: "OK runs=3 false_cycles=2 validations=5 period_ns=20000000",
			want: Stats{
				Stats:  hwtwbg.Stats{Runs: 3, FalseCycles: 2, Validations: 5},
				Period: 20 * time.Millisecond,
			},
		},
		{
			name:    "snapshot detector key with non-integer value",
			reply:   "OK validations=many",
			wantErr: "malformed",
		},
		{
			// A post-flight-recorder server appends the last activation's
			// validation outcome; a current client reads it.
			name:  "last activation keys",
			reply: "OK runs=4 last_false_cycles=1 last_validations=3",
			want: Stats{
				Stats:           hwtwbg.Stats{Runs: 4},
				LastFalseCycles: 1,
				LastValidations: 3,
			},
		},
		{
			// An old server that predates the last_* keys: the fields
			// simply stay zero (the "old server short reply" case above
			// covers the rest of the forward-compat story).
			name:  "server without last activation keys",
			reply: "OK runs=4 false_cycles=2",
			want:  Stats{Stats: hwtwbg.Stats{Runs: 4, FalseCycles: 2}},
		},
		{
			name:    "last activation key with non-integer value",
			reply:   "OK last_validations=lots",
			wantErr: "malformed",
		},
		{
			// A cost-model-era server: cm_* carries the scheduling cost
			// model (rate as a micro-hertz integer) and journal_* the
			// flight recorder's ring counters.
			name:  "cost model and journal keys",
			reply: "OK runs=5 cm_samples=12 cm_deadlocks=3 cm_rate_uhz=2500000 cm_detect_ns=150000 cm_persist_ns=4000000 cm_period_ns=10000000 journal_emitted=99 journal_overwritten=7 journal_torn_reads=1",
			want: Stats{
				Stats:              hwtwbg.Stats{Runs: 5},
				CostModelSamples:   12,
				CostModelDeadlocks: 3,
				CostModelRate:      2.5,
				CostModelDetect:    150 * time.Microsecond,
				CostModelPersist:   4 * time.Millisecond,
				CostModelPeriod:    10 * time.Millisecond,
				JournalEmitted:     99,
				JournalOverwritten: 7,
				JournalTornReads:   1,
			},
		},
		{
			name:    "cost model key with non-integer value",
			reply:   "OK cm_rate_uhz=fast",
			wantErr: "malformed",
		},
		{
			// An incremental-snapshot-era server: copy_ns/acquire_ns are
			// the last activation's copy-out and mutex-wait phases, and
			// shards_copied/shards_skipped the lifetime skip totals (the
			// latter promote through the embedded hwtwbg.Stats).
			name:  "incremental snapshot keys",
			reply: "OK runs=6 copy_ns=250000 acquire_ns=30000 shards_copied=48 shards_skipped=912",
			want: Stats{
				Stats:       hwtwbg.Stats{Runs: 6, ShardsCopied: 48, ShardsSkipped: 912},
				LastCopy:    250 * time.Microsecond,
				LastAcquire: 30 * time.Microsecond,
			},
		},
		{
			// An old server that predates the incremental-snapshot keys:
			// the new fields simply stay zero.
			name:  "server without incremental snapshot keys",
			reply: "OK runs=6 stw_last_ns=120000",
			want:  Stats{Stats: hwtwbg.Stats{Runs: 6, STWLast: 120 * time.Microsecond}},
		},
		{
			name:    "incremental snapshot key with non-integer value",
			reply:   "OK copy_ns=slow",
			wantErr: "malformed",
		},
		{
			name:    "shard count key with non-integer value",
			reply:   "OK shards_skipped=most",
			wantErr: "malformed",
		},
		{
			name:    "journal key with non-integer value",
			reply:   "OK journal_emitted=lots",
			wantErr: "malformed",
		},
		{
			// A telemetry-era server: tail_* counts live TAIL sessions and
			// records lost to ring overwrite across them, and op_tags the
			// tagged operations attached over the wire.
			name:  "tail and op-tag keys",
			reply: "OK runs=8 tail_sessions=3 tail_lagged=17 op_tags=256",
			want: Stats{
				Stats:        hwtwbg.Stats{Runs: 8},
				TailSessions: 3,
				TailLagged:   17,
				OpTags:       256,
			},
		},
		{
			// An old server that predates the TAIL verb and op tags: the
			// new fields simply stay zero.
			name:  "server without tail or op-tag keys",
			reply: "OK runs=8 journal_emitted=99",
			want:  Stats{Stats: hwtwbg.Stats{Runs: 8}, JournalEmitted: 99},
		},
		{
			name:    "tail key with non-integer value",
			reply:   "OK tail_lagged=some",
			wantErr: "malformed",
		},
		{
			name:    "op-tag key with non-integer value",
			reply:   "OK op_tags=many",
			wantErr: "malformed",
		},
		{
			name:  "unknown keys and bare flags are skipped",
			reply: "OK runs=7 frobs=weird experimental shard_grants=9",
			want:  Stats{Stats: hwtwbg.Stats{Runs: 7}, ShardGrants: 9},
		},
		{
			name:  "empty payload",
			reply: "OK",
			want:  Stats{},
		},
		{
			name:    "known key with non-integer value",
			reply:   "OK runs=zebra",
			wantErr: "malformed",
		},
		{
			name:    "known duration key with non-integer value",
			reply:   "OK runs=3 stw_total_ns=fast",
			wantErr: "malformed",
		},
		{
			name:    "known key with empty value",
			reply:   "OK cycles=",
			wantErr: "malformed",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := fakeServer(t, tt.reply)
			st, err := c.Stats()
			if tt.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("err = %v, want %q", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if st != tt.want {
				t.Fatalf("stats = %+v, want %+v", st, tt.want)
			}
		})
	}
}

func TestClientSnapshotMultiline(t *testing.T) {
	c := fakeServer(t, "OK 2\nline one\nline two")
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap != "line one\nline two\n" {
		t.Fatalf("snap = %q", snap)
	}
}

func TestClientSnapshotBadHeader(t *testing.T) {
	c := fakeServer(t, "OK zebra")
	if _, err := c.Snapshot(); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("err = %v", err)
	}
}

func TestClientConnectionDrop(t *testing.T) {
	cs, ss := net.Pipe()
	ss.Close()
	c := NewClient(cs)
	defer c.Close()
	if err := c.Ping(); err == nil {
		t.Fatal("ping on a dead pipe must fail")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to a closed port must fail")
	}
}
