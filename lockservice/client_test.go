package lockservice

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
)

// fakeServer answers each request line with the next canned reply.
func fakeServer(t *testing.T, replies ...string) *Client {
	t.Helper()
	cs, ss := net.Pipe()
	go func() {
		r := bufio.NewReader(ss)
		for _, reply := range replies {
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
			fmt.Fprintf(ss, "%s\n", reply)
		}
		// Drain the QUIT from Close.
		r.ReadString('\n')
		ss.Close()
	}()
	c := NewClient(cs)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientMalformedReplies(t *testing.T) {
	c := fakeServer(t, "GARBAGE")
	if err := c.Ping(); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("err = %v", err)
	}
}

func TestClientBeginMalformedID(t *testing.T) {
	c := fakeServer(t, "OK notanumber")
	if _, err := c.Begin(); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("err = %v", err)
	}
}

func TestClientErrReply(t *testing.T) {
	c := fakeServer(t, "ERR something broke")
	err := c.Lock("r", 5)
	if err == nil || !strings.Contains(err.Error(), "something broke") {
		t.Fatalf("err = %v", err)
	}
}

func TestClientAbortedAndBusyReplies(t *testing.T) {
	c := fakeServer(t, "ABORTED", "BUSY")
	if err := c.Lock("r", 5); !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if err := c.TryLock("r", 5); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v", err)
	}
}

func TestClientStatsParsing(t *testing.T) {
	c := fakeServer(t, "OK runs=10 cycles=4 aborted=3 repositioned=2 salvaged=1")
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 10 || st.CyclesSearched != 4 || st.Aborted != 3 || st.Repositioned != 2 || st.Salvaged != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientStatsMalformedField(t *testing.T) {
	c := fakeServer(t, "OK runs=zebra")
	if _, err := c.Stats(); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("err = %v", err)
	}
}

func TestClientSnapshotMultiline(t *testing.T) {
	c := fakeServer(t, "OK 2\nline one\nline two")
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap != "line one\nline two\n" {
		t.Fatalf("snap = %q", snap)
	}
}

func TestClientSnapshotBadHeader(t *testing.T) {
	c := fakeServer(t, "OK zebra")
	if _, err := c.Snapshot(); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("err = %v", err)
	}
}

func TestClientConnectionDrop(t *testing.T) {
	cs, ss := net.Pipe()
	ss.Close()
	c := NewClient(cs)
	defer c.Close()
	if err := c.Ping(); err == nil {
		t.Fatal("ping on a dead pipe must fail")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to a closed port must fail")
	}
}
