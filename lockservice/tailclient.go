package lockservice

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"hwtwbg/journal"
)

// Client side of the TAIL verb: subscribe to the server's flight
// recorder and consume records as they are emitted, with a resumable
// per-ring cursor and explicit lag accounting.

// ErrStopTail, returned from a TailOptions callback, ends the tail from
// the consumer's side: TailJournal returns the resume cursor with a nil
// error. After stopping an unbounded tail this way the server is still
// streaming, so the connection is no longer usable for other verbs —
// Close it and resume on a fresh one with the returned cursor.
var ErrStopTail = errors.New("lockservice: stop tail")

// TailCursor is a resumable tail position: one sequence per server
// journal ring, in ring order. The zero (nil) cursor means "no previous
// session"; TailOptions.FromOldest then picks the starting edge.
type TailCursor []uint64

// String renders the cursor in the wire's comma-separated form.
func (c TailCursor) String() string { return cursorString(c) }

// TailBatch is one BATCH frame: a run of records from one ring, plus
// the position to resume that ring from and how many records between
// the previous cursor and Next were lost for good (overwritten by ring
// wrap, or torn by a lapping writer) — the tail contract makes loss
// explicit, never silent.
type TailBatch struct {
	Ring    int
	Next    uint64
	Lost    uint64
	Records []journal.Record
}

// TailHeartbeat is one HB frame: the detector/journal counter snapshot
// the server interleaves with batches, plus the session's cumulative
// lag (records lost across all rings since the session began).
type TailHeartbeat struct {
	Seq         uint64 // heartbeat number within the session, from 1
	Emitted     uint64 // journal records ever emitted
	Overwritten uint64 // lost to ring wrap before any snapshot saw them
	Torn        uint64 // snapshot copies discarded as torn
	Grants      uint64 // lock grants summed across every shard
	Runs        int    // detector activations
	Cycles      int    // cycles searched
	Aborted     int    // victims aborted
	Lagged      uint64 // records this tail session lost to overwrite
	// Period and CostModelPeriod are the live detection interval and the
	// cost model's derived optimum.
	Period          time.Duration
	CostModelPeriod time.Duration
}

// TailOptions configures one TailJournal session.
type TailOptions struct {
	// FromOldest starts at the oldest retained records; false starts at
	// the emit head ("now"). Ignored when Cursor is non-nil.
	FromOldest bool
	// Cursor resumes a previous session's positions (TailJournal's
	// return value, or the last TailBatch.Next per ring).
	Cursor TailCursor
	// Max ends the tail after this many records (END frame); 0 streams
	// until a callback returns ErrStopTail or the connection drops.
	Max int
	// Heartbeat is the HB cadence; 0 uses the server default (1s).
	Heartbeat time.Duration
	// OnBatch and OnHeartbeat observe the stream. A non-nil return ends
	// the tail: ErrStopTail cleanly, anything else as the session error.
	OnBatch     func(TailBatch) error
	OnHeartbeat func(TailHeartbeat) error
}

// parseTailBatchHeader parses one BATCH frame header into (ring, n,
// next, lost). The key vocabulary must cover everything the server's
// tailBatchHeader emits; the wireschema analyzer enforces it.
//
//hwlint:wire parse tailbatch
func parseTailBatchHeader(line string) (ring, n int, next, lost uint64, err error) {
	for _, f := range strings.Fields(strings.TrimPrefix(line, "BATCH ")) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue // tolerate future non-key fields
		}
		u, perr := strconv.ParseUint(v, 10, 64)
		if perr != nil {
			return 0, 0, 0, 0, fmt.Errorf("lockservice: malformed BATCH field %q", f)
		}
		switch k {
		case "ring":
			ring = int(u)
		case "n":
			n = int(u)
		case "next":
			next = u
		case "lost":
			lost = u
		}
	}
	return ring, n, next, lost, nil
}

// parseTailHeartbeat parses one HB frame. Every counter key wears the
// hb_ prefix; unknown hb_ keys from a newer server are skipped, keys a
// server does not send stay zero — the same forward/backward contract
// as STATS. The wireschema analyzer holds the hb_ vocabulary equal to
// the server's writeTailHeartbeat.
//
//hwlint:wire parse tailhb prefix=hb_
func parseTailHeartbeat(line string) (TailHeartbeat, error) {
	var hb TailHeartbeat
	for _, f := range strings.Fields(strings.TrimPrefix(line, "HB ")) {
		k, v, ok := strings.Cut(f, "=")
		if !ok || !strings.HasPrefix(k, "hb_") {
			continue
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return hb, fmt.Errorf("lockservice: malformed HB field %q", f)
		}
		switch k {
		case "hb_seq":
			hb.Seq = uint64(n)
		case "hb_emitted":
			hb.Emitted = uint64(n)
		case "hb_overwritten":
			hb.Overwritten = uint64(n)
		case "hb_torn":
			hb.Torn = uint64(n)
		case "hb_grants":
			hb.Grants = uint64(n)
		case "hb_runs":
			hb.Runs = int(n)
		case "hb_cycles":
			hb.Cycles = int(n)
		case "hb_aborted":
			hb.Aborted = int(n)
		case "hb_lagged":
			hb.Lagged = uint64(n)
		case "hb_period_ns":
			hb.Period = time.Duration(n)
		case "hb_cm_period_ns":
			hb.CostModelPeriod = time.Duration(n)
		}
	}
	return hb, nil
}

// TailJournal subscribes to the server's flight recorder and delivers
// the stream to the option callbacks until Max records have arrived, a
// callback ends it, or the connection drops. It returns the resume
// cursor: passing it as TailOptions.Cursor on a later session (even on
// a new connection, after this one died) continues exactly where this
// one stopped, with anything overwritten in between surfacing in
// TailBatch.Lost rather than vanishing.
//
// The client's mutex is held for the whole stream: a tailing client is
// a dedicated telemetry connection, not a transaction connection.
func (c *Client) TailJournal(opts TailOptions) (TailCursor, error) {
	start := time.Now()
	cur, err := c.tailJournal(opts)
	c.observe(VerbTail, start, err)
	return cur, err
}

func (c *Client) tailJournal(opts TailOptions) (TailCursor, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var req strings.Builder
	req.WriteString("TAIL")
	if opts.Cursor != nil {
		fmt.Fprintf(&req, " cursor=%s", opts.Cursor)
	} else if opts.FromOldest {
		req.WriteString(" from=oldest")
	} else {
		req.WriteString(" from=now")
	}
	if opts.Max > 0 {
		fmt.Fprintf(&req, " max=%d", opts.Max)
	}
	if opts.Heartbeat > 0 {
		fmt.Fprintf(&req, " hb=%s", opts.Heartbeat)
	}
	if _, err := fmt.Fprintf(c.conn, "%s\n", req.String()); err != nil {
		return nil, err
	}
	head, err := c.r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	head = strings.TrimSpace(head)
	if err := parseErr(head); err != nil {
		return nil, err
	}
	var cursor TailCursor
	for _, f := range strings.Fields(strings.TrimPrefix(head, "OK ")) {
		if v, ok := strings.CutPrefix(f, "cursor="); ok {
			for _, p := range strings.Split(v, ",") {
				n, perr := strconv.ParseUint(p, 10, 64)
				if perr != nil {
					return nil, fmt.Errorf("lockservice: malformed TAIL header %q", head)
				}
				cursor = append(cursor, n)
			}
		}
	}
	if cursor == nil {
		return nil, fmt.Errorf("lockservice: malformed TAIL header %q", head)
	}
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			// The connection died mid-stream; the cursor still names the
			// exact resume point for the next session.
			return cursor, err
		}
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "BATCH "):
			ring, n, next, lost, err := parseTailBatchHeader(line)
			if err != nil {
				return cursor, err
			}
			b := TailBatch{Ring: ring, Next: next, Lost: lost}
			if n > 0 {
				b.Records = make([]journal.Record, n)
			}
			for i := 0; i < n; i++ {
				rl, err := c.r.ReadString('\n')
				if err != nil {
					return cursor, err
				}
				if err := b.Records[i].UnmarshalText([]byte(strings.TrimSpace(rl))); err != nil {
					return cursor, fmt.Errorf("lockservice: TAIL record %d: %w", i, err)
				}
			}
			if ring >= 0 && ring < len(cursor) {
				cursor[ring] = next
			}
			if opts.OnBatch != nil {
				if err := opts.OnBatch(b); err != nil {
					if errors.Is(err, ErrStopTail) {
						return cursor, nil
					}
					return cursor, err
				}
			}
		case strings.HasPrefix(line, "HB "):
			hb, err := parseTailHeartbeat(line)
			if err != nil {
				return cursor, err
			}
			if opts.OnHeartbeat != nil {
				if err := opts.OnHeartbeat(hb); err != nil {
					if errors.Is(err, ErrStopTail) {
						return cursor, nil
					}
					return cursor, err
				}
			}
		case strings.HasPrefix(line, "END"):
			return cursor, nil
		case line == "":
			continue
		default:
			return cursor, fmt.Errorf("lockservice: malformed TAIL frame %q", line)
		}
	}
}
