package lockservice

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hwtwbg"
)

// sseEvent is one parsed server-sent event from /journal/stream.
type sseEvent struct {
	event string
	data  string
}

// readSSE consumes a whole SSE response body into events.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	var evs []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				evs = append(evs, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return evs
}

// TestJournalStreamSSE reads a bounded /journal/stream and checks the
// batch/end event contract.
func TestJournalStreamSSE(t *testing.T) {
	lm := journaledDebugManager(t)
	srv := httptest.NewServer(DebugHandler(lm))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/journal/stream?from=oldest&max=10&hb=5ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	evs := readSSE(t, resp)
	var total int
	sawEnd := false
	for _, ev := range evs {
		switch ev.event {
		case "batch":
			var b sseBatch
			if err := json.Unmarshal([]byte(ev.data), &b); err != nil {
				t.Fatalf("batch JSON: %v\n%s", err, ev.data)
			}
			if len(b.Records) == 0 && b.Lost == 0 {
				t.Fatalf("empty batch event: %s", ev.data)
			}
			for _, rv := range b.Records {
				if rv.Kind == "" {
					t.Fatalf("record view missing kind: %s", ev.data)
				}
			}
			total += len(b.Records)
		case "end":
			sawEnd = true
		}
	}
	if total != 10 {
		t.Fatalf("streamed %d records, want 10", total)
	}
	if !sawEnd {
		t.Fatal("bounded stream did not emit an end event")
	}
}

// TestJournalStreamBadParams pins the 400s for malformed query values.
func TestJournalStreamBadParams(t *testing.T) {
	lm := journaledDebugManager(t)
	srv := httptest.NewServer(DebugHandler(lm))
	defer srv.Close()
	for _, q := range []string{"from=sideways", "max=-1", "max=x", "hb=0", "hb=nope"} {
		resp, err := srv.Client().Get(srv.URL + "/journal/stream?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestJournalStreamDisabled: /journal/stream 404s without a journal,
// like the other flight-recorder endpoints.
func TestJournalStreamDisabled(t *testing.T) {
	lm := hwtwbg.Open(hwtwbg.Options{JournalSize: -1})
	t.Cleanup(func() { lm.Close() })
	srv := httptest.NewServer(DebugHandler(lm))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/journal/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestJournalStreamConcurrentWithWorkload hammers the manager with
// lock traffic while SSE tails and /trace.json snapshots run against
// the same journal — the reader-side seqlock discipline must hold
// under the race detector.
func TestJournalStreamConcurrentWithWorkload(t *testing.T) {
	lm := hwtwbg.Open(hwtwbg.Options{JournalSize: 256, Shards: 2})
	t.Cleanup(func() { lm.Close() })
	srv := httptest.NewServer(DebugHandler(lm))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup

	// Writers: contended transactions keep every ring hot.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				tx := lm.Begin()
				tx.SetTag(uint64(g + 1))
				res := hwtwbg.ResourceID(fmt.Sprintf("r%d", i%3))
				if err := tx.Lock(context.Background(), res, hwtwbg.X); err != nil {
					tx.Abort()
					continue
				}
				tx.Commit()
			}
		}(g)
	}

	// SSE consumers: repeated bounded tails racing the writers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				resp, err := srv.Client().Get(srv.URL + "/journal/stream?from=oldest&max=100&hb=10ms")
				if err != nil {
					return
				}
				evs := readSSE(t, resp)
				resp.Body.Close()
				for _, ev := range evs {
					if ev.event != "batch" {
						continue
					}
					var b sseBatch
					if err := json.Unmarshal([]byte(ev.data), &b); err != nil {
						t.Errorf("batch JSON under load: %v", err)
						return
					}
				}
			}
		}()
	}

	// Snapshot consumers: /trace.json re-reads the same rings.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			resp, err := srv.Client().Get(srv.URL + "/trace.json")
			if err != nil {
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("/trace.json under load: status %d", resp.StatusCode)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	cancel()
	wg.Wait()

	if st := lm.Journal().Stats(); st.Emitted == 0 {
		t.Fatal("workload emitted no journal records")
	}
	// The journal survived the concurrency: a final bounded stream still
	// parses end to end.
	resp, err := srv.Client().Get(srv.URL + "/journal/stream?from=oldest&max=5&hb=5ms")
	if err != nil {
		t.Fatal(err)
	}
	evs := readSSE(t, resp)
	resp.Body.Close()
	var got int
	for _, ev := range evs {
		if ev.event == "batch" {
			var b sseBatch
			if err := json.Unmarshal([]byte(ev.data), &b); err != nil {
				t.Fatal(err)
			}
			got += len(b.Records)
		}
	}
	if got != 5 {
		t.Fatalf("final stream delivered %d records, want 5", got)
	}
}
