package lockservice

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"hwtwbg"
)

// debugManager builds a manager with one resolved deadlock and one held
// lock, so every endpoint has something to show.
func debugManager(t *testing.T) *hwtwbg.Manager {
	t.Helper()
	lm := hwtwbg.Open(hwtwbg.Options{})
	t.Cleanup(func() { lm.Close() })
	ctx := context.Background()
	a, b := lm.Begin(), lm.Begin()
	if err := a.Lock(ctx, "x", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(ctx, "y", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- a.Lock(ctx, "y", hwtwbg.X) }()
	go func() { errs <- b.Lock(ctx, "x", hwtwbg.X) }()
	for !lm.Blocked(a.ID()) || !lm.Blocked(b.ID()) {
		runtime.Gosched()
	}
	if st := lm.Detect(); st.Aborted != 1 {
		t.Fatalf("aborted %d, want 1", st.Aborted)
	}
	<-errs
	<-errs
	// Leave the survivor holding its locks so /twbg.dot and /locktable
	// render live state; Close cleans up.
	return lm
}

func get(t *testing.T, h *httptest.Server, path string) (string, string) {
	t.Helper()
	resp, err := h.Client().Get(h.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, sb.String())
	}
	return sb.String(), resp.Header.Get("Content-Type")
}

func TestDebugHandlerMetrics(t *testing.T) {
	lm := debugManager(t)
	srv := httptest.NewServer(DebugHandler(lm))
	defer srv.Close()

	body, ctype := get(t, srv, "/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("content type %q", ctype)
	}
	for _, want := range []string{
		"# TYPE hwtwbg_lock_wait_seconds histogram",
		"hwtwbg_lock_wait_seconds_bucket{le=\"+Inf\"}",
		"hwtwbg_detector_phase_seconds_total{phase=\"build\"}",
		"hwtwbg_detector_phase_seconds_total{phase=\"search\"}",
		"hwtwbg_detector_runs_total 1",
		"hwtwbg_detector_victims_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDebugHandlerDOTAndLockTable(t *testing.T) {
	lm := debugManager(t)
	srv := httptest.NewServer(DebugHandler(lm))
	defer srv.Close()

	dot, ctype := get(t, srv, "/twbg.dot")
	if !strings.Contains(dot, "digraph HWTWBG") {
		t.Fatalf("/twbg.dot = %q", dot)
	}
	if !strings.Contains(ctype, "graphviz") {
		t.Errorf("content type %q", ctype)
	}
	table, _ := get(t, srv, "/locktable")
	if table == "" {
		t.Error("/locktable empty despite held locks")
	}
}

// TestDebugHandlerDeterministic pins the hwlint nondeterministic-range
// rule's end-to-end promise: over an unchanged lock table, repeated
// fetches of the rendered endpoints are byte-identical — no map
// iteration order leaks into /locktable or /twbg.dot output.
func TestDebugHandlerDeterministic(t *testing.T) {
	lm := debugManager(t)
	srv := httptest.NewServer(DebugHandler(lm))
	defer srv.Close()

	for _, path := range []string{"/locktable", "/twbg.dot"} {
		first, _ := get(t, srv, path)
		for i := 0; i < 5; i++ {
			if again, _ := get(t, srv, path); again != first {
				t.Fatalf("%s rerun %d differs:\nfirst:\n%s\nagain:\n%s", path, i, first, again)
			}
		}
	}
}

func TestDebugHandlerJSONEndpoints(t *testing.T) {
	lm := debugManager(t)
	srv := httptest.NewServer(DebugHandler(lm))
	defer srv.Close()

	body, ctype := get(t, srv, "/snapshot")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("content type %q", ctype)
	}
	var snap hwtwbg.MetricsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot: %v", err)
	}
	if snap.Detector.Runs != 1 || snap.Total.Blocked != 2 {
		t.Fatalf("snapshot detector=%+v total=%+v", snap.Detector, snap.Total)
	}

	var hist struct {
		Total  int               `json:"total"`
		Events []json.RawMessage `json:"events"`
	}
	body, _ = get(t, srv, "/history")
	if err := json.Unmarshal([]byte(body), &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Total != 1 || len(hist.Events) != 1 {
		t.Fatalf("/history = %s", body)
	}

	var acts struct {
		Total       int                       `json:"total"`
		Activations []hwtwbg.ActivationReport `json:"activations"`
	}
	body, _ = get(t, srv, "/activations")
	if err := json.Unmarshal([]byte(body), &acts); err != nil {
		t.Fatal(err)
	}
	if acts.Total != 1 || len(acts.Activations) != 1 || acts.Activations[0].Aborted != 1 {
		t.Fatalf("/activations = %s", body)
	}

	var cm hwtwbg.CostModelState
	body, _ = get(t, srv, "/costmodel")
	if err := json.Unmarshal([]byte(body), &cm); err != nil {
		t.Fatal(err)
	}
	// The manual Detect was observed (one sample, one cycle) and the
	// victim's wait span landed in the persistence estimate.
	if cm.Samples != 1 || cm.Deadlocks != 1 {
		t.Fatalf("/costmodel = %s", body)
	}
	if cm.VictimWaits != 1 || cm.PersistCost <= 0 {
		t.Fatalf("/costmodel missing victim wait: %s", body)
	}
	if cm.Period <= 0 {
		t.Fatalf("/costmodel derived no period: %s", body)
	}

	var nm struct {
		TxnsAnalyzed int               `json:"txns_analyzed"`
		Reversals    []json.RawMessage `json:"reversals"`
	}
	body, ctype = get(t, srv, "/nearmiss")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/nearmiss content type %q", ctype)
	}
	if err := json.Unmarshal([]byte(body), &nm); err != nil {
		t.Fatal(err)
	}
	// The survivor still holds both locks (never committed), so no
	// partial order closed — the endpoint answers, with empty results.
	if len(nm.Reversals) != 0 {
		t.Fatalf("/nearmiss = %s", body)
	}
}

func TestDebugHandlerIndexAndPprof(t *testing.T) {
	lm := debugManager(t)
	srv := httptest.NewServer(DebugHandler(lm))
	defer srv.Close()

	index, _ := get(t, srv, "/")
	for _, link := range []string{"/metrics", "/twbg.dot", "/debug/pprof/"} {
		if !strings.Contains(index, link) {
			t.Errorf("index missing link %s", link)
		}
	}
	if pprofIdx, _ := get(t, srv, "/debug/pprof/"); !strings.Contains(pprofIdx, "goroutine") {
		t.Error("/debug/pprof/ index missing goroutine profile")
	}
	resp, err := srv.Client().Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown path status %d, want 404", resp.StatusCode)
	}
}
