package lockservice

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hwtwbg"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, hwtwbg.Options{Period: 2 * time.Millisecond})
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBasicSession(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	id, err := c.Begin()
	if err != nil || id == 0 {
		t.Fatalf("Begin: %v %v", id, err)
	}
	if err := c.Lock("a", hwtwbg.S); err != nil {
		t.Fatal(err)
	}
	if err := c.Lock("b", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(snap, "a(S)") || !strings.Contains(snap, "b(X)") {
		t.Fatalf("snapshot:\n%s", snap)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	snap, err = c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap != "" {
		t.Fatalf("snapshot after commit:\n%s", snap)
	}
}

func TestBlockingAndGrantAcrossClients(t *testing.T) {
	_, addr := startServer(t)
	a := dial(t, addr)
	b := dial(t, addr)
	if _, err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := a.Lock("r", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- b.Lock("r", hwtwbg.S) }()
	select {
	case err := <-got:
		t.Fatalf("b's lock returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("b.Lock: %v", err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockAcrossClients(t *testing.T) {
	_, addr := startServer(t)
	a := dial(t, addr)
	b := dial(t, addr)
	if _, err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := a.Lock("x", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock("y", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- a.Lock("y", hwtwbg.X) }()
	go func() { errs <- b.Lock("x", hwtwbg.X) }()
	e1, e2 := <-errs, <-errs
	aborted := 0
	if errors.Is(e1, ErrAborted) {
		aborted++
	}
	if errors.Is(e2, ErrAborted) {
		aborted++
	}
	if aborted != 1 {
		t.Fatalf("e1=%v e2=%v; want exactly one ABORTED", e1, e2)
	}
	st, err := a.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Aborted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The extended wire fields round-trip from a live server: the
	// detector ran at least once (STW pause > 0) and at least three
	// grants landed in the shards (a:x, b:y, and the survivor's second
	// lock handed off by the victim's release).
	if st.Runs < 1 || st.STWTotal <= 0 || st.STWLast <= 0 || st.STWMax < st.STWLast {
		t.Fatalf("stw fields not populated: %+v", st)
	}
	if st.ShardGrants < 3 {
		t.Fatalf("shard_grants = %d, want >= 3", st.ShardGrants)
	}
	// The cost model charged the resolved deadlock and the victim's wait
	// span, and the journal counted the emitted records.
	if st.CostModelSamples < 1 || st.CostModelDeadlocks < 1 {
		t.Fatalf("cost model fields not populated: %+v", st)
	}
	if st.CostModelPersist <= 0 || st.CostModelPeriod <= 0 {
		t.Fatalf("cost model estimates not populated: %+v", st)
	}
	if st.JournalEmitted == 0 {
		t.Fatalf("journal_emitted = 0, want the trace counted: %+v", st)
	}
}

func TestTryLock(t *testing.T) {
	_, addr := startServer(t)
	a := dial(t, addr)
	b := dial(t, addr)
	if _, err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := a.TryLock("r", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	if err := b.TryLock("r", hwtwbg.S); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := b.TryLock("r", hwtwbg.S); err != nil {
		t.Fatal(err)
	}
}

func TestDisconnectAbortsTransaction(t *testing.T) {
	srv, addr := startServer(t)
	a := dial(t, addr)
	b := dial(t, addr)
	if _, err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := a.Lock("r", hwtwbg.X); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- b.Lock("r", hwtwbg.X) }()
	time.Sleep(10 * time.Millisecond)
	// a vanishes without committing; the server must abort its
	// transaction and grant b.
	a.Close()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("b.Lock after a's disconnect: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("b never granted; server state:\n%s", srv.Manager().Snapshot())
	}
}

func TestProtocolErrors(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	// LOCK without BEGIN.
	if err := c.Lock("r", hwtwbg.S); err == nil || errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if err := c.Commit(); err == nil {
		t.Fatal("COMMIT without txn must fail")
	}
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	// Double BEGIN.
	if _, err := c.Begin(); err == nil {
		t.Fatal("double BEGIN must fail")
	}
	// Bad mode and bad arity via raw round trips.
	if resp, err := c.roundTrip("LOCK r Q"); err != nil || !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("resp=%q err=%v", resp, err)
	}
	if resp, err := c.roundTrip("LOCK r"); err != nil || !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("resp=%q err=%v", resp, err)
	}
	if resp, err := c.roundTrip("FROB"); err != nil || !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("resp=%q err=%v", resp, err)
	}
	// ABORT is idempotent-ish: with and without a txn.
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	// BEGIN works again after ABORT.
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
}

func TestManyClientsStress(t *testing.T) {
	_, addr := startServer(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			resources := []string{"p", "q", "r"}
			for i := 0; i < 20; i++ {
			retry:
				if _, err := c.Begin(); err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < 3; j++ {
					res := resources[(n+i+j)%len(resources)]
					mode := hwtwbg.S
					if (n+j)%2 == 0 {
						mode = hwtwbg.X
					}
					err := c.Lock(res, mode)
					if errors.Is(err, ErrAborted) {
						time.Sleep(time.Duration(n+1) * time.Millisecond)
						goto retry
					}
					if err != nil {
						t.Errorf("lock: %v", err)
						return
					}
				}
				if err := c.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestServerCloseIsIdempotent(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLockAllSession(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	reqs := []hwtwbg.LockRequest{
		{Resource: "a", Mode: hwtwbg.S},
		{Resource: "b", Mode: hwtwbg.X},
		{Resource: "c", Mode: hwtwbg.IX},
	}
	if err := c.LockAll(reqs); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a(S)", "b(X)", "c(IX)"} {
		if !strings.Contains(snap, want) {
			t.Fatalf("snapshot missing %s:\n%s", want, snap)
		}
	}
	// A second client's batch blocks on the held key and resumes after
	// commit, exactly like a single LOCK.
	c2 := dial(t, addr)
	if _, err := c2.Begin(); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		got <- c2.LockAll([]hwtwbg.LockRequest{
			{Resource: "z", Mode: hwtwbg.S},
			{Resource: "b", Mode: hwtwbg.S},
		})
	}()
	select {
	case err := <-got:
		t.Fatalf("c2's batch returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("blocked batch after commit: %v", err)
	}
	if err := c2.Commit(); err != nil {
		t.Fatal(err)
	}
	// An empty batch never touches the wire.
	if err := c2.LockAll(nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockAllProtocolErrors(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	// LOCKALL without BEGIN.
	if resp, err := c.roundTrip("LOCKALL r S"); err != nil || !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("resp=%q err=%v", resp, err)
	}
	if _, err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	// Missing pairs, odd arity, and a bad mode.
	for _, line := range []string{"LOCKALL", "LOCKALL r S q", "LOCKALL r Q"} {
		if resp, err := c.roundTrip(line); err != nil || !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q: resp=%q err=%v", line, resp, err)
		}
	}
	// The session survives the usage errors.
	if err := c.LockAll([]hwtwbg.LockRequest{{Resource: "r", Mode: hwtwbg.S}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
}
