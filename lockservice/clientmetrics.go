package lockservice

import (
	"errors"
	"time"

	"hwtwbg/metrics"
)

// Client-side wire metrics: every protocol verb records its round-trip
// latency into a log₂ histogram plus outcome counters, using the same
// lock-free metrics primitives as the server's shards. The aborted
// counter doubles as the retry counter — ABORTED is the one outcome the
// protocol tells clients to retry from the start.

// Verb indexes the client's per-verb metric blocks.
type Verb int

// The protocol verbs, in wire order.
const (
	VerbBegin Verb = iota
	VerbLock
	VerbLockAll
	VerbTryLock
	VerbCommit
	VerbAbort
	VerbStats
	VerbSnapshot
	VerbDump
	VerbPing
	VerbTail
	numVerbs
)

var verbNames = [numVerbs]string{
	"BEGIN", "LOCK", "LOCKALL", "TRYLOCK", "COMMIT", "ABORT",
	"STATS", "SNAPSHOT", "DUMP", "PING", "TAIL",
}

func (v Verb) String() string {
	if v < 0 || v >= numVerbs {
		return "UNKNOWN"
	}
	return verbNames[v]
}

// verbMetrics is one verb's live instrumentation block.
type verbMetrics struct {
	lat     metrics.Histogram // round-trip latency, nanoseconds
	calls   metrics.Counter
	errs    metrics.Counter // transport or protocol errors
	aborted metrics.Counter // ErrAborted outcomes (the retry signal)
	busy    metrics.Counter // ErrBusy outcomes (TRYLOCK refusals)
}

// observe records one completed call on verb v. It returns err so call
// sites can tail-call it: `return c.observe(VerbLock, start, ...)`.
func (c *Client) observe(v Verb, start time.Time, err error) error {
	m := &c.vm[v]
	m.calls.Inc()
	m.lat.Observe(uint64(time.Since(start).Nanoseconds()))
	switch {
	case err == nil:
	case errors.Is(err, ErrAborted):
		m.aborted.Inc()
	case errors.Is(err, ErrBusy):
		m.busy.Inc()
	default:
		m.errs.Inc()
	}
	return err
}

// VerbMetrics is the exported snapshot of one verb's counters.
type VerbMetrics struct {
	Verb    string                    `json:"verb"`
	Calls   uint64                    `json:"calls"`
	Errors  uint64                    `json:"errors"`
	Aborted uint64                    `json:"aborted"` // deadlock victims: retries owed
	Busy    uint64                    `json:"busy"`
	Latency metrics.HistogramSnapshot `json:"-"`
	// MeanNs/P99Ns are derived from Latency for cheap exposition.
	MeanNs uint64 `json:"mean_ns"`
	P99Ns  uint64 `json:"p99_ns"`
}

// ClientMetricsSnapshot is a point-in-time copy of the client's wire
// metrics, one entry per verb that has been called at least once.
type ClientMetricsSnapshot struct {
	Verbs []VerbMetrics `json:"verbs"`
}

// Metrics snapshots the client's per-verb latency histograms and
// outcome counters. Verbs never called are omitted.
func (c *Client) Metrics() ClientMetricsSnapshot {
	var snap ClientMetricsSnapshot
	for v := Verb(0); v < numVerbs; v++ {
		m := &c.vm[v]
		calls := m.calls.Load()
		if calls == 0 {
			continue
		}
		lat := m.lat.Snapshot()
		snap.Verbs = append(snap.Verbs, VerbMetrics{
			Verb:    v.String(),
			Calls:   calls,
			Errors:  m.errs.Load(),
			Aborted: m.aborted.Load(),
			Busy:    m.busy.Load(),
			Latency: lat,
			MeanNs:  uint64(lat.Mean()),
			P99Ns:   lat.Quantile(0.99),
		})
	}
	return snap
}
