package lockservice_test

import (
	"fmt"
	"net"
	"time"

	"hwtwbg"
	"hwtwbg/lockservice"
)

// Example runs an in-process lock server and a client session against
// it: the complete BEGIN / LOCK / SNAPSHOT / COMMIT round trip.
func Example() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := lockservice.Serve(ln, hwtwbg.Options{Period: 10 * time.Millisecond})
	defer srv.Close()

	c, err := lockservice.Dial(srv.Addr().String())
	if err != nil {
		panic(err)
	}
	defer c.Close()

	if _, err := c.Begin(); err != nil {
		panic(err)
	}
	if err := c.Lock("accounts/7", hwtwbg.X); err != nil {
		panic(err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		panic(err)
	}
	fmt.Print(snap)
	if err := c.Commit(); err != nil {
		panic(err)
	}
	// Output:
	// accounts/7(X): Holder((T1, X, NL)) Queue()
}
