package lockservice

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hwtwbg"
	"hwtwbg/journal"
)

// Client speaks the lock protocol over one connection. A client carries
// at most one transaction at a time; its methods serialize, so a Client
// may be shared by goroutines that understand they share the
// transaction.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader

	// tag is the sticky op tag appended to transaction-scoped requests
	// (SetOpTag); 0 = none.
	tag atomic.Uint64
	// vm is the per-verb wire instrumentation (see Metrics).
	vm [numVerbs]verbMetrics
}

// Errors returned by the client.
var (
	// ErrAborted mirrors hwtwbg.ErrAborted across the wire: the
	// transaction was sacrificed to break a deadlock.
	ErrAborted = hwtwbg.ErrAborted
	// ErrBusy: TryLock was refused (would have blocked).
	ErrBusy = errors.New("lockservice: lock busy")
)

// Dial connects to a lock server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful with net.Pipe in
// tests).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn)}
}

// Close tears the connection down; the server aborts any transaction in
// flight.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.conn, "QUIT\n") // best effort
	return c.conn.Close()
}

// SetOpTag sets the sticky operation tag: while non-zero, every BEGIN,
// LOCK, LOCKALL and TRYLOCK request carries a trailing ` tag=<n>` field
// and the server attaches it to the transaction (hwtwbg.Txn.SetTag), so
// postmortems and `hwtrace report` group this client's wait chains
// under the tag. Zero clears. Servers predating the tag field reject
// tagged LOCK requests, so only set a tag against current servers.
func (c *Client) SetOpTag(tag uint64) { c.tag.Store(tag) }

// OpTag returns the sticky operation tag (0 when none).
func (c *Client) OpTag() uint64 { return c.tag.Load() }

// tagSuffix renders the sticky tag as the request's trailing field
// ("" when no tag is set).
func (c *Client) tagSuffix() string {
	t := c.tag.Load()
	if t == 0 {
		return ""
	}
	return fmt.Sprintf(" tag=%d", t)
}

// roundTrip sends one line and reads one reply line.
func (c *Client) roundTrip(req string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "%s\n", req); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

func parseErr(resp string) error {
	switch {
	case resp == "OK" || strings.HasPrefix(resp, "OK "):
		return nil
	case resp == "ABORTED":
		return ErrAborted
	case resp == "BUSY":
		return ErrBusy
	case strings.HasPrefix(resp, "ERR "):
		return errors.New("lockservice: " + strings.TrimPrefix(resp, "ERR "))
	default:
		return fmt.Errorf("lockservice: malformed reply %q", resp)
	}
}

// Ping checks liveness.
func (c *Client) Ping() error {
	start := time.Now()
	resp, err := c.roundTrip("PING")
	if err != nil {
		return c.observe(VerbPing, start, err)
	}
	if resp != "PONG" {
		err = fmt.Errorf("lockservice: malformed reply %q", resp)
	}
	return c.observe(VerbPing, start, err)
}

// Begin starts a transaction and returns its server-side id.
func (c *Client) Begin() (hwtwbg.TxnID, error) {
	start := time.Now()
	resp, err := c.roundTrip("BEGIN" + c.tagSuffix())
	if err != nil {
		return 0, c.observe(VerbBegin, start, err)
	}
	if err := parseErr(resp); err != nil {
		return 0, c.observe(VerbBegin, start, err)
	}
	n, err := strconv.Atoi(strings.TrimPrefix(resp, "OK "))
	if err != nil {
		return 0, c.observe(VerbBegin, start, fmt.Errorf("lockservice: malformed BEGIN reply %q", resp))
	}
	c.observe(VerbBegin, start, nil)
	return hwtwbg.TxnID(n), nil
}

// Lock blocks until the lock is granted, returning ErrAborted if the
// transaction was chosen as a deadlock victim.
func (c *Client) Lock(resource string, mode hwtwbg.Mode) error {
	start := time.Now()
	resp, err := c.roundTrip(fmt.Sprintf("LOCK %s %v%s", resource, mode, c.tagSuffix()))
	if err != nil {
		return c.observe(VerbLock, start, err)
	}
	return c.observe(VerbLock, start, parseErr(resp))
}

// LockAll acquires every lock in reqs in one round trip, blocking until
// all of them are granted. It maps to the server's LOCKALL verb and so
// to hwtwbg.Txn.LockAll: requests are grouped by shard with one mutex
// round per shard, and on ErrAborted (or any error) locks granted by
// earlier rounds stay held until Commit or Abort. An empty batch is a
// no-op.
func (c *Client) LockAll(reqs []hwtwbg.LockRequest) error {
	if len(reqs) == 0 {
		return nil
	}
	start := time.Now()
	var b strings.Builder
	b.WriteString("LOCKALL")
	for _, rq := range reqs {
		fmt.Fprintf(&b, " %s %v", rq.Resource, rq.Mode)
	}
	b.WriteString(c.tagSuffix())
	resp, err := c.roundTrip(b.String())
	if err != nil {
		return c.observe(VerbLockAll, start, err)
	}
	return c.observe(VerbLockAll, start, parseErr(resp))
}

// TryLock attempts the lock without blocking; ErrBusy means it would
// have blocked (and was not queued).
func (c *Client) TryLock(resource string, mode hwtwbg.Mode) error {
	start := time.Now()
	resp, err := c.roundTrip(fmt.Sprintf("TRYLOCK %s %v%s", resource, mode, c.tagSuffix()))
	if err != nil {
		return c.observe(VerbTryLock, start, err)
	}
	return c.observe(VerbTryLock, start, parseErr(resp))
}

// Commit commits the transaction, releasing every lock.
func (c *Client) Commit() error {
	start := time.Now()
	resp, err := c.roundTrip("COMMIT")
	if err != nil {
		return c.observe(VerbCommit, start, err)
	}
	return c.observe(VerbCommit, start, parseErr(resp))
}

// Abort rolls the transaction back.
func (c *Client) Abort() error {
	start := time.Now()
	resp, err := c.roundTrip("ABORT")
	if err != nil {
		return c.observe(VerbAbort, start, err)
	}
	return c.observe(VerbAbort, start, parseErr(resp))
}

// Stats is the server's detector statistics plus the service-level
// counters newer servers append to the STATS reply. The embedded
// hwtwbg.Stats fields promote, so st.Runs etc. read as before; fields
// a server does not send stay zero.
type Stats struct {
	hwtwbg.Stats
	ShardGrants uint64        // lock grants summed across every shard
	Period      time.Duration // server's live detection interval (zero: disabled or old server)
	// LastFalseCycles and LastValidations describe the most recent
	// detector activation alone (the lifetime FalseCycles/Validations
	// promote from the embedded Stats); zero from an old server.
	LastFalseCycles int
	LastValidations int
	// The scheduling cost model's state (hwtwbg.CostModelState, wire
	// keys cm_*): activations sampled, cycles observed, estimated
	// deadlock formation rate (deadlocks/sec, from the cm_rate_uhz
	// micro-hertz integer), EWMA detection and persistence costs, and
	// the derived cost-minimizing period. Zero from an old server.
	CostModelSamples   int
	CostModelDeadlocks uint64
	CostModelRate      float64
	CostModelDetect    time.Duration
	CostModelPersist   time.Duration
	CostModelPeriod    time.Duration
	// Flight-recorder ring counters (wire keys journal_*): records ever
	// emitted, records lost to ring wrap before any snapshot saw them,
	// and snapshot copies discarded as torn. Nonzero Overwritten means
	// journal-derived analyses saw a truncated trace. Zero from an old
	// server or a journal-disabled one.
	JournalEmitted     uint64
	JournalOverwritten uint64
	JournalTornReads   uint64
	// LastCopy and LastAcquire describe the most recent detector
	// activation alone (wire keys copy_ns/acquire_ns): its snapshot
	// copy-out time and its summed shard-mutex acquisition wait. The
	// lifetime ShardsCopied/ShardsSkipped incremental-snapshot totals
	// promote from the embedded Stats. Zero from an old server.
	LastCopy    time.Duration
	LastAcquire time.Duration
	// Live-telemetry counters (wire keys tail_sessions, tail_lagged,
	// op_tags): TAIL sessions ever started, records those sessions lost
	// to ring overwrite before delivery, and op tags attached via the
	// wire tag= field. Zero from an old server.
	TailSessions uint64
	TailLagged   uint64
	OpTags       uint64
}

// Stats fetches the server's detector statistics. The parser is
// forward- and backward-compatible: fields the server does not send
// stay zero (old server, new client) and unknown key=value fields are
// skipped (new server, old client semantics); a known key with a
// non-integer value is a malformed reply.
//
// The wireschema analyzer holds this parser's key vocabulary equal to
// the server's STATS emitter — both the recognition switch and the
// assignment switch below must cover every emitted key.
//
func (c *Client) Stats() (Stats, error) {
	start := time.Now()
	st, err := c.stats()
	c.observe(VerbStats, start, err)
	return st, err
}

// stats does the STATS round trip and parse; the wireschema marker
// lives here, on the function holding the recognition and assignment
// switches.
//
//hwlint:wire parse stats
func (c *Client) stats() (Stats, error) {
	var st Stats
	resp, err := c.roundTrip("STATS")
	if err != nil {
		return st, err
	}
	if err := parseErr(resp); err != nil {
		return st, err
	}
	for _, f := range strings.Fields(strings.TrimPrefix(resp, "OK ")) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue // not a key=value field; tolerate
		}
		switch k {
		case "runs", "cycles", "aborted", "repositioned", "salvaged",
			"stw_total_ns", "stw_last_ns", "stw_max_ns", "shard_grants",
			"false_cycles", "validations", "period_ns",
			"last_false_cycles", "last_validations",
			"cm_samples", "cm_deadlocks", "cm_rate_uhz",
			"cm_detect_ns", "cm_persist_ns", "cm_period_ns",
			"journal_emitted", "journal_overwritten", "journal_torn_reads",
			"copy_ns", "acquire_ns", "shards_copied", "shards_skipped",
			"tail_sessions", "tail_lagged", "op_tags":
		default:
			continue // unknown key from a newer server; tolerate
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return st, fmt.Errorf("lockservice: malformed STATS field %q", f)
		}
		switch k {
		case "runs":
			st.Runs = int(n)
		case "cycles":
			st.CyclesSearched = int(n)
		case "aborted":
			st.Aborted = int(n)
		case "repositioned":
			st.Repositioned = int(n)
		case "salvaged":
			st.Salvaged = int(n)
		case "stw_total_ns":
			st.STWTotal = time.Duration(n)
		case "stw_last_ns":
			st.STWLast = time.Duration(n)
		case "stw_max_ns":
			st.STWMax = time.Duration(n)
		case "shard_grants":
			st.ShardGrants = uint64(n)
		case "false_cycles":
			st.FalseCycles = int(n)
		case "validations":
			st.Validations = int(n)
		case "period_ns":
			st.Period = time.Duration(n)
		case "last_false_cycles":
			st.LastFalseCycles = int(n)
		case "last_validations":
			st.LastValidations = int(n)
		case "cm_samples":
			st.CostModelSamples = int(n)
		case "cm_deadlocks":
			st.CostModelDeadlocks = uint64(n)
		case "cm_rate_uhz":
			st.CostModelRate = float64(n) * 1e-6
		case "cm_detect_ns":
			st.CostModelDetect = time.Duration(n)
		case "cm_persist_ns":
			st.CostModelPersist = time.Duration(n)
		case "cm_period_ns":
			st.CostModelPeriod = time.Duration(n)
		case "journal_emitted":
			st.JournalEmitted = uint64(n)
		case "journal_overwritten":
			st.JournalOverwritten = uint64(n)
		case "journal_torn_reads":
			st.JournalTornReads = uint64(n)
		case "copy_ns":
			st.LastCopy = time.Duration(n)
		case "acquire_ns":
			st.LastAcquire = time.Duration(n)
		case "shards_copied":
			st.ShardsCopied = int(n)
		case "shards_skipped":
			st.ShardsSkipped = int(n)
		case "tail_sessions":
			st.TailSessions = uint64(n)
		case "tail_lagged":
			st.TailLagged = uint64(n)
		case "op_tags":
			st.OpTags = uint64(n)
		}
	}
	return st, nil
}

// DumpJournal fetches the server's flight-recorder contents: a merged,
// time-ordered snapshot of every ring. It returns an error when the
// server's journal is disabled (or the server predates DUMP).
func (c *Client) DumpJournal() ([]journal.Record, error) {
	start := time.Now()
	recs, err := c.dumpJournal()
	c.observe(VerbDump, start, err)
	return recs, err
}

func (c *Client) dumpJournal() ([]journal.Record, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "DUMP\n"); err != nil {
		return nil, err
	}
	head, err := c.r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	head = strings.TrimSpace(head)
	if err := parseErr(head); err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(strings.TrimPrefix(head, "OK "))
	if err != nil {
		return nil, fmt.Errorf("lockservice: malformed DUMP header %q", head)
	}
	recs := make([]journal.Record, n)
	for i := 0; i < n; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		if err := recs[i].UnmarshalText([]byte(strings.TrimSpace(line))); err != nil {
			return nil, fmt.Errorf("lockservice: DUMP record %d: %w", i, err)
		}
	}
	return recs, nil
}

// Snapshot fetches the lock table rendered in the paper's notation.
func (c *Client) Snapshot() (string, error) {
	start := time.Now()
	snap, err := c.snapshot()
	c.observe(VerbSnapshot, start, err)
	return snap, err
}

func (c *Client) snapshot() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "SNAPSHOT\n"); err != nil {
		return "", err
	}
	head, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	head = strings.TrimSpace(head)
	if err := parseErr(head); err != nil {
		return "", err
	}
	n, err := strconv.Atoi(strings.TrimPrefix(head, "OK "))
	if err != nil {
		return "", fmt.Errorf("lockservice: malformed SNAPSHOT header %q", head)
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return "", err
		}
		b.WriteString(line)
	}
	return b.String(), nil
}
