package lockservice

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"hwtwbg"
)

// Client speaks the lock protocol over one connection. A client carries
// at most one transaction at a time; its methods serialize, so a Client
// may be shared by goroutines that understand they share the
// transaction.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
}

// Errors returned by the client.
var (
	// ErrAborted mirrors hwtwbg.ErrAborted across the wire: the
	// transaction was sacrificed to break a deadlock.
	ErrAborted = hwtwbg.ErrAborted
	// ErrBusy: TryLock was refused (would have blocked).
	ErrBusy = errors.New("lockservice: lock busy")
)

// Dial connects to a lock server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful with net.Pipe in
// tests).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn)}
}

// Close tears the connection down; the server aborts any transaction in
// flight.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.conn, "QUIT\n") // best effort
	return c.conn.Close()
}

// roundTrip sends one line and reads one reply line.
func (c *Client) roundTrip(req string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "%s\n", req); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

func parseErr(resp string) error {
	switch {
	case resp == "OK" || strings.HasPrefix(resp, "OK "):
		return nil
	case resp == "ABORTED":
		return ErrAborted
	case resp == "BUSY":
		return ErrBusy
	case strings.HasPrefix(resp, "ERR "):
		return errors.New("lockservice: " + strings.TrimPrefix(resp, "ERR "))
	default:
		return fmt.Errorf("lockservice: malformed reply %q", resp)
	}
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.roundTrip("PING")
	if err != nil {
		return err
	}
	if resp != "PONG" {
		return fmt.Errorf("lockservice: malformed reply %q", resp)
	}
	return nil
}

// Begin starts a transaction and returns its server-side id.
func (c *Client) Begin() (hwtwbg.TxnID, error) {
	resp, err := c.roundTrip("BEGIN")
	if err != nil {
		return 0, err
	}
	if err := parseErr(resp); err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(strings.TrimPrefix(resp, "OK "))
	if err != nil {
		return 0, fmt.Errorf("lockservice: malformed BEGIN reply %q", resp)
	}
	return hwtwbg.TxnID(n), nil
}

// Lock blocks until the lock is granted, returning ErrAborted if the
// transaction was chosen as a deadlock victim.
func (c *Client) Lock(resource string, mode hwtwbg.Mode) error {
	resp, err := c.roundTrip(fmt.Sprintf("LOCK %s %v", resource, mode))
	if err != nil {
		return err
	}
	return parseErr(resp)
}

// TryLock attempts the lock without blocking; ErrBusy means it would
// have blocked (and was not queued).
func (c *Client) TryLock(resource string, mode hwtwbg.Mode) error {
	resp, err := c.roundTrip(fmt.Sprintf("TRYLOCK %s %v", resource, mode))
	if err != nil {
		return err
	}
	return parseErr(resp)
}

// Commit commits the transaction, releasing every lock.
func (c *Client) Commit() error {
	resp, err := c.roundTrip("COMMIT")
	if err != nil {
		return err
	}
	return parseErr(resp)
}

// Abort rolls the transaction back.
func (c *Client) Abort() error {
	resp, err := c.roundTrip("ABORT")
	if err != nil {
		return err
	}
	return parseErr(resp)
}

// Stats fetches the server's detector statistics.
func (c *Client) Stats() (hwtwbg.Stats, error) {
	var st hwtwbg.Stats
	resp, err := c.roundTrip("STATS")
	if err != nil {
		return st, err
	}
	if err := parseErr(resp); err != nil {
		return st, err
	}
	for _, f := range strings.Fields(strings.TrimPrefix(resp, "OK ")) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return st, fmt.Errorf("lockservice: malformed STATS field %q", f)
		}
		switch k {
		case "runs":
			st.Runs = n
		case "cycles":
			st.CyclesSearched = n
		case "aborted":
			st.Aborted = n
		case "repositioned":
			st.Repositioned = n
		case "salvaged":
			st.Salvaged = n
		}
	}
	return st, nil
}

// Snapshot fetches the lock table rendered in the paper's notation.
func (c *Client) Snapshot() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "SNAPSHOT\n"); err != nil {
		return "", err
	}
	head, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	head = strings.TrimSpace(head)
	if err := parseErr(head); err != nil {
		return "", err
	}
	n, err := strconv.Atoi(strings.TrimPrefix(head, "OK "))
	if err != nil {
		return "", fmt.Errorf("lockservice: malformed SNAPSHOT header %q", head)
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return "", err
		}
		b.WriteString(line)
	}
	return b.String(), nil
}
