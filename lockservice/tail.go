package lockservice

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"time"

	"hwtwbg/journal"
)

// Server side of the TAIL verb: live streaming of the flight recorder
// over the lock protocol connection. A tail session polls every journal
// ring with a per-ring sequence cursor (journal.Ring.ReadFrom), so a
// consumer sees records as they are emitted instead of re-pulling DUMP
// snapshots, and a consumer that reconnects resumes exactly where it
// left off — every record lost to ring overwrite in between is counted
// in the BATCH lost field and the hb_lagged heartbeat key, never
// silently absent. Emit is untouched: tailing is reader-side only and
// adds nothing to the journal hot path.

const (
	// defaultTailHeartbeat is the HB cadence when the client does not
	// pick one with hb=. Heartbeats double as liveness probes: they are
	// the writes that detect a vanished unbounded-tail client.
	defaultTailHeartbeat = time.Second
	// tailPollInterval is how long an idle tail session sleeps between
	// ring sweeps that found nothing.
	tailPollInterval = 5 * time.Millisecond
	// tailBatchCap bounds records per BATCH frame so one lagging ring
	// cannot starve the others (or the heartbeat) behind a giant frame.
	tailBatchCap = 512
)

// cursorString renders per-ring resume positions as the wire's
// comma-separated cursor= value.
func cursorString(cursors []uint64) string {
	var b strings.Builder
	for i, c := range cursors {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(c, 10))
	}
	return b.String()
}

// tailBatchHeader renders one BATCH frame header. The key=value
// vocabulary is a wire contract checked by the wireschema analyzer
// against the client's parseTailBatchHeader.
//
//hwlint:wire emit tailbatch
func tailBatchHeader(ring, n int, next, lost uint64) string {
	return fmt.Sprintf("BATCH ring=%d n=%d next=%d lost=%d", ring, n, next, lost)
}

// writeTailHeartbeat emits one HB frame: the detector and journal
// counters a live dashboard needs between batches, plus this session's
// cumulative lag. Every key wears the hb_ prefix — the wireschema
// analyzer holds the vocabulary equal to the client's
// parseTailHeartbeat by that prefix.
//
//hwlint:wire emit tailhb prefix=hb_
func (sess *session) writeTailHeartbeat(w *bufio.Writer, seq, lagged uint64) {
	s := sess.srv
	st := s.lm.Stats()
	var shardGrants uint64
	for _, sh := range s.lm.ShardStats() {
		shardGrants += sh.Grants
	}
	cm := s.lm.CostModel()
	var js journal.RingStats
	if jr := s.lm.Journal(); jr != nil {
		js = jr.Stats()
	}
	fmt.Fprintf(w, "HB hb_seq=%d hb_emitted=%d hb_overwritten=%d hb_torn=%d hb_grants=%d hb_runs=%d hb_cycles=%d hb_aborted=%d hb_lagged=%d hb_period_ns=%d hb_cm_period_ns=%d\n",
		seq, js.Emitted, js.Overwritten, js.TornReads, shardGrants,
		st.Runs, st.CyclesSearched, st.Aborted, lagged,
		s.lm.CurrentPeriod().Nanoseconds(), cm.Period.Nanoseconds())
}

// serveTail runs one TAIL session on the connection's writer. It
// returns false when the connection is unusable (the handler then
// closes it); protocol errors reply ERR and keep the session alive.
func (sess *session) serveTail(w *bufio.Writer, args []string) bool {
	s := sess.srv
	fail := func(msg string) bool {
		fmt.Fprintf(w, "ERR %s\n", msg)
		return w.Flush() == nil
	}
	jr := s.lm.Journal()
	if jr == nil {
		return fail("journal disabled")
	}
	nr := jr.NumRings()
	fromOldest := true
	max := 0
	hb := defaultTailHeartbeat
	var resume []uint64
	for _, a := range args {
		k, v, ok := strings.Cut(a, "=")
		if !ok {
			return fail("malformed TAIL argument " + a)
		}
		switch k {
		case "from":
			switch v {
			case "oldest":
				fromOldest = true
			case "now":
				fromOldest = false
			default:
				return fail("bad from= value (want oldest or now)")
			}
		case "max":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return fail("bad max= value")
			}
			max = n
		case "hb":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return fail("bad hb= value")
			}
			hb = d
		case "cursor":
			resume = resume[:0]
			for _, p := range strings.Split(v, ",") {
				n, err := strconv.ParseUint(p, 10, 64)
				if err != nil {
					return fail("bad cursor= value")
				}
				resume = append(resume, n)
			}
		default:
			return fail("unknown TAIL argument " + k)
		}
	}
	cursors := make([]uint64, nr)
	if resume != nil {
		if len(resume) != nr {
			return fail(fmt.Sprintf("cursor has %d positions, server has %d rings", len(resume), nr))
		}
		copy(cursors, resume)
	} else {
		for i := 0; i < nr; i++ {
			if fromOldest {
				cursors[i] = jr.Ring(i).Oldest()
			} else {
				cursors[i] = jr.Ring(i).Head()
			}
		}
	}
	s.tailSessions.Inc()
	// The OK header names the stream's starting positions, so even a
	// session that dies before its first BATCH leaves the consumer a
	// cursor to resume from.
	fmt.Fprintf(w, "OK rings=%d cursor=%s\n", nr, cursorString(cursors))
	if w.Flush() != nil {
		return false
	}

	var (
		total  int
		lagged uint64
		hbSeq  uint64
		buf    []journal.Record
		lastHB = time.Now()
	)
	for {
		if s.isClosed() {
			// Server shutdown: the connection is about to die; ending the
			// stream here keeps Close from waiting on an idle tail.
			return false
		}
		progressed := false
		for i := 0; i < nr && !(max > 0 && total >= max); i++ {
			limit := tailBatchCap
			if max > 0 && max-total < limit {
				limit = max - total
			}
			recs, next, lost := jr.Ring(i).ReadFrom(cursors[i], limit, buf[:0])
			if len(recs) == 0 && lost == 0 {
				continue
			}
			cursors[i] = next
			lagged += lost
			if lost > 0 {
				s.tailLagged.Add(lost)
			}
			fmt.Fprintf(w, "%s\n", tailBatchHeader(i, len(recs), next, lost))
			for j := range recs {
				txt, err := recs[j].MarshalText()
				if err != nil {
					return false
				}
				w.Write(txt)
				w.WriteByte('\n')
			}
			total += len(recs)
			progressed = true
			buf = recs[:0]
		}
		if max > 0 && total >= max {
			fmt.Fprintf(w, "END records=%d\n", total)
			return w.Flush() == nil
		}
		// Heartbeats fire on schedule even when batches flow nonstop — a
		// busy stream still needs the counter deltas.
		if time.Since(lastHB) >= hb {
			hbSeq++
			sess.writeTailHeartbeat(w, hbSeq, lagged)
			progressed = true
			lastHB = time.Now()
		}
		if progressed {
			if w.Flush() != nil {
				return false
			}
			continue
		}
		time.Sleep(tailPollInterval)
	}
}
