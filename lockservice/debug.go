package lockservice

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"

	"hwtwbg"
	"hwtwbg/journal"
)

// DebugHandler returns an http.Handler exposing the lock manager's
// observability surface, suitable for a loopback debug listener:
//
//	/            index linking everything below
//	/metrics     Prometheus text exposition (counters, histograms,
//	             detector phase breakdown)
//	/snapshot    full MetricsSnapshot as JSON
//	/history     recent deadlock events as JSON
//	/activations recent detector activation reports as JSON
//	/postmortems recent deadlock postmortems as JSON (per resolved cycle:
//	             the edge evidence and the journal events that formed it)
//	/costmodel   scheduling cost-model state as JSON: deadlock formation
//	             rate, detection and persistence cost estimates, and the
//	             derived cost-minimizing detection period
//	/nearmiss    predictive near-miss analysis over the flight recorder:
//	             cross-transaction lock-order reversals as JSON
//	/trace.json  flight-recorder snapshot as Chrome trace-event JSON —
//	             load into ui.perfetto.dev or chrome://tracing
//	/journal/stream
//	             flight recorder live, as server-sent events: the same
//	             cursor-based ring tail as the wire TAIL verb ("batch",
//	             "heartbeat" and "end" events with JSON payloads); query
//	             from=oldest|now, max=<n>, hb=<duration>
//	/journal.bin flight-recorder snapshot in the binary dump format
//	             (replay with cmd/hwtrace)
//	/twbg.dot    the current H/W-TWBG in Graphviz format (stop-the-world)
//	/locktable   the lock table in the paper's notation (stop-the-world)
//	/debug/vars  expvar (process-global registry)
//	/debug/pprof profiling endpoints
//
// The flight-recorder endpoints (/postmortems, /trace.json,
// /journal.bin, /nearmiss, /journal/stream) answer 404 when the
// manager's journal is disabled (hwtwbg.Options.JournalSize < 0).
//
// The stop-the-world endpoints (/twbg.dot, /locktable) pause every
// shard exactly like a detector activation; keep them off hot
// monitoring loops.
func DebugHandler(lm *hwtwbg.Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><head><title>lockd debug</title></head><body>
<h1>lockd debug</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/snapshot">/snapshot</a> — metrics snapshot (JSON)</li>
<li><a href="/history">/history</a> — recent deadlock events (JSON)</li>
<li><a href="/activations">/activations</a> — detector activation reports (JSON)</li>
<li><a href="/postmortems">/postmortems</a> — deadlock postmortems (JSON)</li>
<li><a href="/costmodel">/costmodel</a> — scheduling cost-model state (JSON)</li>
<li><a href="/nearmiss">/nearmiss</a> — predictive lock-order reversal analysis (JSON)</li>
<li><a href="/trace.json">/trace.json</a> — flight recorder as Perfetto/Chrome trace JSON</li>
<li><a href="/journal/stream">/journal/stream</a> — flight recorder live (server-sent events)</li>
<li><a href="/journal.bin">/journal.bin</a> — flight recorder, binary dump (for cmd/hwtrace)</li>
<li><a href="/twbg.dot">/twbg.dot</a> — H/W-TWBG in Graphviz format</li>
<li><a href="/locktable">/locktable</a> — lock table, paper notation</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — profiling</li>
</ul></body></html>
`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		lm.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, lm.MetricsSnapshot())
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		events, total := lm.History()
		writeJSON(w, map[string]any{"total": total, "events": events})
	})
	mux.HandleFunc("/activations", func(w http.ResponseWriter, r *http.Request) {
		reports, total := lm.Activations()
		writeJSON(w, map[string]any{"total": total, "activations": reports})
	})
	mux.HandleFunc("/postmortems", func(w http.ResponseWriter, r *http.Request) {
		if lm.Journal() == nil {
			http.NotFound(w, r)
			return
		}
		reports, total := lm.Postmortems()
		writeJSON(w, map[string]any{"total": total, "postmortems": reports})
	})
	mux.HandleFunc("/costmodel", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, lm.CostModel())
	})
	mux.HandleFunc("/nearmiss", func(w http.ResponseWriter, r *http.Request) {
		jr := lm.Journal()
		if jr == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, journal.NearMisses(jr.Snapshot()))
	})
	mux.HandleFunc("/journal/stream", func(w http.ResponseWriter, r *http.Request) {
		serveJournalStream(lm, w, r)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		jr := lm.Journal()
		if jr == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		journal.WriteTrace(w, jr.Snapshot())
	})
	mux.HandleFunc("/journal.bin", func(w http.ResponseWriter, r *http.Request) {
		jr := lm.Journal()
		if jr == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="journal.bin"`)
		journal.Encode(w, jr.Snapshot())
	})
	mux.HandleFunc("/twbg.dot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
		fmt.Fprint(w, lm.DOT())
	})
	mux.HandleFunc("/locktable", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, lm.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
